#!/usr/bin/env python3
"""CI gate for the disk-backed storage layer and its buffer pool.

Compares the BENCH_storage.json emitted by `bench_storage --smoke` against
the recorded baseline (bench/baselines/storage_smoke.json). Charged costs
are deterministic (they are cost-model arithmetic, not wall time), so every
gate here is exact or a hard ratio floor — a failure means the storage or
accounting code changed, never CI jitter. Gated invariants:

  - dataset_pages >= 4 * pool_pages: the workloads actually exceed the
    pool; a shrunken dataset would make the cache ratios meaningless;
  - reexec: charged(nocache)/charged(LRU) and charged(nocache)/charged(2Q)
    meet the re-scan caching floor (the buffer pool must turn the bouquet
    re-execution ladder's repeat reads into cheap buffer hits);
  - reexec rows_emitted matches the baseline exactly (seeded dataset);
  - scan_mix: charged(LRU)/charged(2Q) meets the scan-resistance floor
    (2Q must keep the hot set cheaper than LRU under sequential floods);
  - parity: charged_bit_equal, rows_equal, and accounting_exact are all
    true — scalar and batch engines charge bit-identical costs over paged
    storage, and charged page reads/hits equal the buffer manager's
    miss/hit counters exactly.

Usage: check_storage_smoke.py <BENCH_storage.json> [baseline.json]
Exit code 0 on pass, 1 on regression or malformed input.
"""

import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir, "bench", "baselines", "storage_smoke.json")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    bench_path = argv[1]
    baseline_path = argv[2] if len(argv) > 2 else DEFAULT_BASELINE

    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        base = json.load(f)

    failures = []

    pool = bench["pool_pages"]
    dataset = bench["dataset_pages"]
    print(f"dataset {dataset} pages over a {pool}-page pool "
          f"({dataset / pool:.1f}x)")
    if dataset < 4 * pool:
        failures.append(
            f"dataset_pages {dataset} < 4 * pool_pages {pool} — the "
            f"workloads no longer exceed the pool")

    re = bench["reexec"]
    refloor = base["reexec"]
    print(f"reexec: nocache/lru {re['ratio_lru']:.2f}x "
          f"nocache/2q {re['ratio_2q']:.2f}x rows {re['rows_emitted']}")
    for policy in ("lru", "2q"):
        ratio = re[f"ratio_{policy}"]
        floor = refloor["min_ratio"]
        if ratio < floor:
            failures.append(
                f"reexec: nocache/{policy} charged ratio {ratio:.2f}x < "
                f"floor {floor}x — the buffer pool no longer absorbs "
                f"bouquet re-execution re-reads")
    if re["rows_emitted"] != refloor["expected_rows"]:
        failures.append(
            f"reexec: {re['rows_emitted']} rows emitted != expected "
            f"{refloor['expected_rows']} — seeded dataset or scan drifted")

    mix = bench["scan_mix"]
    mixfloor = base["scan_mix"]
    print(f"scan_mix: lru/2q {mix['lru_over_2q']:.2f}x")
    if mix["lru_over_2q"] < mixfloor["min_lru_over_2q"]:
        failures.append(
            f"scan_mix: lru/2q charged ratio {mix['lru_over_2q']:.2f}x < "
            f"floor {mixfloor['min_lru_over_2q']}x — 2Q lost its scan "
            f"resistance")

    par = bench["parity"]
    for key, msg in (
            ("charged_bit_equal",
             "engines no longer charge bit-identical costs on paged "
             "storage"),
            ("rows_equal", "engines emitted different row counts"),
            ("accounting_exact",
             "charged page reads/hits diverged from the buffer manager's "
             "miss/hit counters")):
        if not par[key]:
            failures.append(f"parity: {key} is false — {msg}")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if not failures:
        print("storage smoke: OK")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""CI perf gate for incremental POSP compilation.

Compares the BENCH_compile.json emitted by `bench_compile_time --smoke`
against the recorded baseline (bench/baselines/compile_smoke.json). The
gated metric is dp_calls on the fixed 2D/res-100 template: it counts how
many grid points the recost-first fast path failed to certify and is fully
deterministic (no wall-clock noise), so any increase is a real regression
in fast-path coverage. memoryless dp_calls must also still equal the point
count (the reference path must not silently start skipping).

Usage: check_compile_smoke.py <BENCH_compile.json> [baseline.json]
Exit code 0 on pass, 1 on regression or malformed input.
"""

import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir, "bench", "baselines", "compile_smoke.json")


def templates_by_name(doc):
    return {t["name"]: t for t in doc.get("templates", [])}


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    bench_path = argv[1]
    baseline_path = argv[2] if len(argv) > 2 else DEFAULT_BASELINE

    with open(bench_path) as f:
        bench = templates_by_name(json.load(f))
    with open(baseline_path) as f:
        baseline = templates_by_name(json.load(f))

    failures = []
    for name, base in baseline.items():
        cur = bench.get(name)
        if cur is None:
            failures.append(f"{name}: missing from {bench_path}")
            continue
        got_dp = cur["incremental"]["dp_calls"]
        max_dp = base["max_dp_calls"]
        points = cur["points"]
        print(f"{name}: incremental dp_calls {got_dp} "
              f"(baseline ceiling {max_dp}, {points} points)")
        if got_dp > max_dp:
            failures.append(
                f"{name}: incremental dp_calls {got_dp} > baseline ceiling "
                f"{max_dp} — fast-path coverage regressed")
        if cur["incremental"]["audit_failures"] != 0:
            failures.append(
                f"{name}: {cur['incremental']['audit_failures']} audit "
                f"failures — incremental diagram diverged from the full DP")
        if "memoryless" in cur and cur["memoryless"]["dp_calls"] != points:
            failures.append(
                f"{name}: memoryless dp_calls "
                f"{cur['memoryless']['dp_calls']} != points {points} — "
                f"reference path is not memoryless")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if not failures:
        print("compile smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

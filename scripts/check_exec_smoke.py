#!/usr/bin/env python3
"""CI perf + parity gate for the vectorized batch executor.

Compares the BENCH_exec.json emitted by `bench_exec --smoke` against the
recorded baseline (bench/baselines/exec_smoke.json). Gated invariants,
per section ("scan" and "join"):

  - charged_bit_equal is true: the batch engine's final charged cost is
    bit-identical to the scalar oracle's (the metering-tape replay
    contract — this is exact, not a tolerance check);
  - rows_equal is true: both engines emitted the same number of rows;
  - rows_emitted matches the baseline exactly (the data and plans are
    deterministic, so any drift means an engine or generator change);
  - speedup meets a deliberately conservative floor (CI noise margin —
    this catches a vectorization collapse, not jitter; the reproduction
    numbers in BENCH_exec.json at the repo root are the honest ones).

Usage: check_exec_smoke.py <BENCH_exec.json> [baseline.json]
Exit code 0 on pass, 1 on regression or malformed input.
"""

import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir, "bench", "baselines", "exec_smoke.json")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    bench_path = argv[1]
    baseline_path = argv[2] if len(argv) > 2 else DEFAULT_BASELINE

    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        base = json.load(f)

    failures = []
    for name in ("scan", "join"):
        sec = bench[name]
        floor = base[name]
        print(f"{name}: scalar {sec['scalar_seconds'] * 1e3:.2f}ms "
              f"batch {sec['batch_seconds'] * 1e3:.2f}ms "
              f"speedup {sec['speedup']:.2f}x "
              f"rows {sec['rows_emitted']} "
              f"charged {'bit-equal' if sec['charged_bit_equal'] else 'DIVERGED'}")
        if not sec["charged_bit_equal"]:
            failures.append(
                f"{name}: charged cost diverged between engines — the "
                f"metering-tape replay is no longer bit-exact")
        if not sec["rows_equal"]:
            failures.append(
                f"{name}: engines emitted different row counts")
        if sec["rows_emitted"] != floor["expected_rows"]:
            failures.append(
                f"{name}: {sec['rows_emitted']} rows emitted != expected "
                f"{floor['expected_rows']} — deterministic result drifted")
        if sec["speedup"] < floor["min_speedup"]:
            failures.append(
                f"{name}: speedup {sec['speedup']:.2f}x < floor "
                f"{floor['min_speedup']}x — batch engine throughput "
                f"collapsed")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if not failures:
        print("exec smoke: OK")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Self-test gate for the bouquet-* lint checks (tools/lint/).

Drives the lint engine over the fixtures in tests/static/lint/fixtures/ and
compares actual findings against the `// expect-lint: <check>[, <check>]`
markers embedded in each fixture, line by line:

  * fail_*.cc    — negative fixtures: the engine must report EXACTLY the
                   marked (line, check) pairs — nothing more (false
                   positives), nothing less (the check rotted).
  * control_*.cc — positive controls: no markers allowed, and the engine
                   must report zero findings (the escape hatches work).

This mirrors the thread-safety probe gate (tests/static/check_probes.cmake):
a lint whose negative fixture stops firing is indistinguishable from a lint
that never ran, so the fixtures are executable documentation AND the rot
detector. Exit codes: 0 = all fixtures behave, 1 = mismatch, 2 = usage.

The gate is engine-agnostic: anything that emits clang-tidy-style
`file:line:col: warning: msg [check]` lines works, so the same fixtures
validate both tools/lint/bouquet_lint.py and the clang-tidy plugin.
"""

import argparse
import os
import re
import subprocess
import sys

EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z0-9_,\- ]+)")
FINDING_RE = re.compile(r"^(.*?):(\d+):\d+: warning: .*\[([a-z0-9-]+)\]\s*$")


def expected_findings(path):
    """Sorted (line, check) pairs declared by expect-lint markers."""
    expected = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = EXPECT_RE.search(line)
            if m:
                for check in m.group(1).split(","):
                    expected.append((lineno, check.strip()))
    return sorted(expected)


def actual_findings(engine_cmd, root, schema, fixture):
    """Sorted (line, check) pairs the engine reports for one fixture.

    Each fixture runs in its own engine invocation so cross-file state
    (e.g. BOUQUET_CHARGED field collection) stays per-fixture.
    """
    cmd = list(engine_cmd) + ["--root", root, "--schema", schema, fixture]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        print(f"error: engine failed on {fixture} "
              f"(exit {proc.returncode}):\n{proc.stderr}", file=sys.stderr)
        sys.exit(2)
    found = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            found.append((int(m.group(2)), m.group(3)))
    return sorted(found)


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", required=True, help="repo root")
    ap.add_argument("--schema", required=True, help="trace_schema.json path")
    ap.add_argument("--engine", default=None,
                    help="lint engine command (default: python3 "
                    "<root>/tools/lint/bouquet_lint.py)")
    ap.add_argument("fixtures", nargs="+", help="fixture .cc files")
    args = ap.parse_args(argv)

    engine_cmd = (args.engine.split() if args.engine else
                  [sys.executable,
                   os.path.join(args.root, "tools", "lint",
                                "bouquet_lint.py")])

    failures = 0
    for fixture in sorted(args.fixtures):
        name = os.path.basename(fixture)
        expected = expected_findings(fixture)
        is_control = name.startswith("control_")
        if is_control and expected:
            print(f"FAIL {name}: control fixtures must not carry "
                  "expect-lint markers")
            failures += 1
            continue
        if not is_control and not expected:
            print(f"FAIL {name}: negative fixture has no expect-lint "
                  "markers — it cannot prove anything")
            failures += 1
            continue
        actual = actual_findings(engine_cmd, args.root, args.schema, fixture)
        if actual == expected:
            what = ("clean" if is_control else
                    f"{len(expected)} expected finding(s)")
            print(f"ok   {name}: {what}")
            continue
        failures += 1
        print(f"FAIL {name}:")
        missing = [p for p in expected if p not in actual]
        surplus = [p for p in actual if p not in expected]
        for line, check in missing:
            print(f"  expected but not reported: line {line} [{check}]")
        for line, check in surplus:
            print(f"  reported but not expected: line {line} [{check}]")

    if failures:
        print(f"check_lint_fixtures: {failures} fixture(s) misbehaved",
              file=sys.stderr)
        return 1
    print(f"check_lint_fixtures: all {len(args.fixtures)} fixtures behave")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env bash
# Static-analysis gate, runnable locally and in CI with the same config.
#
#   scripts/run_static_analysis.sh [--strict] [--build-dir DIR]
#                                  [--skip clang-tidy|cppcheck|thread-safety|lint]
#
# Four passes:
#   clang-tidy     — .clang-tidy config (bugprone/concurrency/performance/
#                    misc-const-correctness) over src/, tests/, bench/, and
#                    examples/, zero findings required.
#   cppcheck       — warning+portability+performance over the same scope,
#                    zero findings required.
#   thread-safety  — full Clang build with BOUQUET_THREAD_SAFETY=ON
#                    (-Werror=thread-safety); configuring it also runs the
#                    tests/static/ negative-compilation probe gate.
#   lint           — the bouquet-* domain checks (tools/lint/): fixture
#                    self-test (every check fires on its negative fixture,
#                    escapes hold on the control) then a zero-findings sweep
#                    over src/. Runs the portable python engine always; when
#                    the clang-tidy plugin was built (CI installs the Clang
#                    dev headers), additionally loads it into clang-tidy and
#                    re-runs the bouquet-* checks AST-accurately.
#
# Default mode skips a pass whose tool is not installed (local dev boxes);
# --strict (used by CI) fails instead, so CI can never silently lose a pass.
# python3 is required for the lint pass even without --strict: it is the
# engine of record for the bouquet-* checks, not an optional extra.

set -euo pipefail
cd "$(dirname "$0")/.."

STRICT=0
BUILD_DIR=build-static
declare -A SKIP=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --strict) STRICT=1 ;;
    --build-dir) BUILD_DIR=$2; shift ;;
    --skip) SKIP[$2]=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

FAILURES=()

missing_tool() {
  local tool=$1 pass=$2
  if [[ $STRICT -eq 1 ]]; then
    echo "ERROR: $tool not found but required for the '$pass' pass (--strict)" >&2
    FAILURES+=("$pass (tool missing)")
  else
    echo "SKIP: $tool not found; skipping the '$pass' pass" >&2
  fi
}

# Sources the gate covers: the library proper plus the tests, benches, and
# examples that ship with it. tests/static/ is excluded — its probes and
# lint fixtures are DELIBERATE violations compiled outside the build graph
# (they have no compile_commands entries, and linting them would demand
# "fixing" code whose entire job is to be wrong).
mapfile -t SOURCES < <(find src tests bench examples \
                         \( -name '*.cc' -o -name '*.cpp' \) \
                         -not -path 'tests/static/*' | sort)
# The bouquet-* plugin sweep mirrors the portable engine's scope: src only.
mapfile -t LINT_SOURCES < <(find src -name '*.cc' | sort)

# --- compile database ------------------------------------------------------
# CMAKE_EXPORT_COMPILE_COMMANDS is always ON (top-level CMakeLists), so any
# configured build dir works; make a dedicated one to keep flags canonical.
# Benchmarks/examples stay ON so their sources appear in the database.
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  mkdir -p "$BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        > "$BUILD_DIR/configure.log" 2>&1 \
    || { cat "$BUILD_DIR/configure.log" >&2; exit 1; }
fi

# --- pass 1: clang-tidy ----------------------------------------------------
if [[ -z ${SKIP[clang-tidy]:-} ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy ($(clang-tidy --version | head -1)) =="
    if ! clang-tidy -p "$BUILD_DIR" --quiet "${SOURCES[@]}"; then
      FAILURES+=("clang-tidy")
    fi
  else
    missing_tool clang-tidy clang-tidy
  fi
fi

# --- pass 2: cppcheck ------------------------------------------------------
if [[ -z ${SKIP[cppcheck]:-} ]]; then
  if command -v cppcheck >/dev/null 2>&1; then
    echo "== cppcheck ($(cppcheck --version)) =="
    if ! cppcheck --enable=warning,performance,portability \
                  --std=c++20 --language=c++ --inline-suppr \
                  --suppress=missingIncludeSystem \
                  --suppress=unusedFunction \
                  --error-exitcode=2 \
                  -I src "${SOURCES[@]}"; then
      FAILURES+=("cppcheck")
    fi
  else
    missing_tool cppcheck cppcheck
  fi
fi

# --- pass 3: Clang thread-safety build ------------------------------------
if [[ -z ${SKIP[thread-safety]:-} ]]; then
  if command -v clang++ >/dev/null 2>&1; then
    echo "== thread-safety build (clang++ -Werror=thread-safety) =="
    TS_DIR="$BUILD_DIR-tsa"
    # Configure runs the tests/static/ probe gate under enforcement; the
    # build proves the whole tree is warning-free under the analysis.
    if cmake -B "$TS_DIR" -S . -DCMAKE_CXX_COMPILER=clang++ \
             -DCMAKE_BUILD_TYPE=RelWithDebInfo -DBOUQUET_THREAD_SAFETY=ON \
             -DBOUQUET_BUILD_BENCHMARKS=OFF -DBOUQUET_BUILD_EXAMPLES=OFF \
      && cmake --build "$TS_DIR" -j"$(nproc)"; then
      ctest --test-dir "$TS_DIR" -R test_static_probe_gate \
            --output-on-failure || FAILURES+=("thread-safety probe gate")
    else
      FAILURES+=("thread-safety build")
    fi
  else
    missing_tool clang++ thread-safety
  fi
fi

# --- pass 4: bouquet-* domain lint -----------------------------------------
if [[ -z ${SKIP[lint]:-} ]]; then
  if command -v python3 >/dev/null 2>&1; then
    echo "== bouquet lint: fixture self-test (tools/lint) =="
    if ! python3 scripts/check_lint_fixtures.py --root . \
           --schema scripts/trace_schema.json \
           tests/static/lint/fixtures/*.cc; then
      FAILURES+=("lint fixture gate")
    fi
    echo "== bouquet lint: zero-findings sweep over src/ =="
    if ! python3 tools/lint/run_lint.py --root .; then
      FAILURES+=("lint src sweep")
    fi
    # AST-accurate second opinion when the plugin was built (CI's
    # static-analysis job installs the Clang dev headers and caches the
    # plugin build). Its absence is not a failure even under --strict: the
    # python engine above is the engine of record, and the plugin is a
    # stricter re-check where the toolchain allows it.
    PLUGIN=""
    for so in "$BUILD_DIR"/tools/lint/libbouquet_tidy.so \
              build/tools/lint/libbouquet_tidy.so; do
      if [[ -f $so ]]; then PLUGIN=$so; break; fi
    done
    if [[ -n $PLUGIN ]] && command -v clang-tidy >/dev/null 2>&1; then
      echo "== bouquet lint: clang-tidy plugin ($PLUGIN) =="
      if ! clang-tidy -load "$PLUGIN" -p "$BUILD_DIR" --quiet \
             --checks='-*,bouquet-*' --warnings-as-errors='bouquet-*' \
             "${LINT_SOURCES[@]}"; then
        FAILURES+=("lint plugin sweep")
      fi
    else
      echo "note: clang-tidy plugin not built; the python engine served as" \
           "the lint backend" >&2
    fi
  else
    missing_tool python3 lint
  fi
fi

# --- verdict ---------------------------------------------------------------
if [[ ${#FAILURES[@]} -gt 0 ]]; then
  echo
  echo "static analysis FAILED: ${FAILURES[*]}" >&2
  exit 1
fi
echo
echo "static analysis clean"

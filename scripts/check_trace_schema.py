#!/usr/bin/env python3
"""Validates an obs::Tracer JSONL export against scripts/trace_schema.json.

Usage: check_trace_schema.py TRACE.jsonl [--schema trace_schema.json]

Checks, per line/span:
  * the line parses as a JSON object with exactly the required fields;
  * field types match the schema (ids are non-negative ints, span_id > 0,
    name is a non-empty string, start/dur are non-negative numbers);
  * attrs values are numbers or the strings "inf"/"-inf"/"nan" (the JSONL
    encoding of non-finite doubles); sattrs values are strings;
  * span_id values are unique.

Cross-span checks:
  * every non-zero parent_id refers to a span in the export, and the child's
    trace_id matches its parent's (referential integrity of the span tree;
    parents referencing spans evicted from the ring buffer are reported as
    warnings only when --allow-dropped is given, errors otherwise);
  * the budget invariant: on every span the schema lists, finite charged
    must satisfy charged <= budget * (1 + epsilon) + granule_slack.

Exit code 0 = valid, 1 = any error. Stdlib only (no pip installs).
"""

import argparse
import json
import math
import os
import sys

REQUIRED_FIELDS = ("span_id", "parent_id", "trace_id", "name", "start",
                   "dur", "attrs", "sattrs")
NONFINITE_STRINGS = ("inf", "-inf", "nan")


def load_schema(path):
    with open(path, "r", encoding="utf-8") as f:
        schema = json.load(f)
    for key in ("required_fields", "budget_invariant", "known_span_names"):
        if key not in schema:
            raise ValueError(f"schema {path} is missing '{key}'")
    return schema


def attr_number(value):
    """Numeric value of an attrs entry, decoding the non-finite strings."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str) and value in NONFINITE_STRINGS:
        return float(value)  # float("inf") / float("-inf") / float("nan")
    return None


def check_span(obj, lineno, errors):
    """Per-span structural checks; returns True if usable for later passes."""
    if not isinstance(obj, dict):
        errors.append(f"line {lineno}: not a JSON object")
        return False
    ok = True
    for field in REQUIRED_FIELDS:
        if field not in obj:
            errors.append(f"line {lineno}: missing field '{field}'")
            ok = False
    if not ok:
        return False
    extras = set(obj) - set(REQUIRED_FIELDS)
    if extras:
        errors.append(f"line {lineno}: unexpected fields {sorted(extras)}")
        ok = False
    for field in ("span_id", "parent_id", "trace_id"):
        v = obj[field]
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            errors.append(f"line {lineno}: {field} must be a non-negative "
                          f"integer, got {v!r}")
            ok = False
    if isinstance(obj["span_id"], int) and obj["span_id"] == 0:
        errors.append(f"line {lineno}: span_id must be positive")
        ok = False
    if not isinstance(obj["name"], str) or not obj["name"]:
        errors.append(f"line {lineno}: name must be a non-empty string")
        ok = False
    for field in ("start", "dur"):
        v = obj[field]
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            errors.append(f"line {lineno}: {field} must be a number")
            ok = False
        elif not math.isfinite(v) or v < 0:
            errors.append(f"line {lineno}: {field} must be finite and "
                          f">= 0, got {v!r}")
            ok = False
    if not isinstance(obj["attrs"], dict):
        errors.append(f"line {lineno}: attrs must be an object")
        ok = False
    else:
        for k, v in obj["attrs"].items():
            if attr_number(v) is None:
                errors.append(f"line {lineno}: attrs[{k!r}] must be a number "
                              f"or one of {NONFINITE_STRINGS}, got {v!r}")
                ok = False
    if not isinstance(obj["sattrs"], dict):
        errors.append(f"line {lineno}: sattrs must be an object")
        ok = False
    else:
        for k, v in obj["sattrs"].items():
            if not isinstance(v, str):
                errors.append(f"line {lineno}: sattrs[{k!r}] must be a "
                              f"string, got {v!r}")
                ok = False
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="JSONL trace file to validate")
    ap.add_argument("--schema",
                    default=os.path.join(os.path.dirname(
                        os.path.abspath(__file__)), "trace_schema.json"))
    ap.add_argument("--allow-dropped", action="store_true",
                    help="demote dangling parent references to warnings "
                         "(for exports from a wrapped ring buffer)")
    ap.add_argument("--require-names", nargs="*", default=[],
                    help="span names that must each appear at least once")
    args = ap.parse_args()

    schema = load_schema(args.schema)
    inv = schema["budget_invariant"]
    budget_names = set(inv["applies_to"])
    epsilon = float(inv["epsilon"])
    slack = float(inv.get("granule_slack", 0.0))
    known_names = set(schema["known_span_names"])

    errors, warnings = [], []
    spans = []
    seen_ids = {}
    with open(args.trace, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"line {lineno}: invalid JSON: {e}")
                continue
            if not check_span(obj, lineno, errors):
                continue
            sid = obj["span_id"]
            if sid in seen_ids:
                errors.append(f"line {lineno}: duplicate span_id {sid} "
                              f"(first seen on line {seen_ids[sid]})")
            else:
                seen_ids[sid] = lineno
            if obj["name"] not in known_names:
                warnings.append(f"line {lineno}: unknown span name "
                                f"{obj['name']!r} (not in schema)")
            spans.append((lineno, obj))

    if not spans and not errors:
        errors.append("trace contains no spans")

    by_id = {obj["span_id"]: obj for _, obj in spans}
    for lineno, obj in spans:
        pid = obj["parent_id"]
        if pid != 0:
            parent = by_id.get(pid)
            if parent is None:
                msg = (f"line {lineno}: parent_id {pid} not in export "
                       f"(span {obj['span_id']} {obj['name']!r})")
                (warnings if args.allow_dropped else errors).append(msg)
            elif parent["trace_id"] != obj["trace_id"]:
                errors.append(f"line {lineno}: trace_id {obj['trace_id']} "
                              f"differs from parent's "
                              f"{parent['trace_id']}")
        if obj["name"] in budget_names:
            if attr_number(obj["attrs"].get("build_failed")):
                continue  # aborted before charging: no budget/charged attrs
            budget = attr_number(obj["attrs"].get("budget"))
            charged = attr_number(obj["attrs"].get("charged"))
            if budget is None or charged is None:
                errors.append(f"line {lineno}: {obj['name']} span must carry "
                              f"numeric budget and charged attrs")
                continue
            if math.isfinite(budget) and math.isfinite(charged):
                if charged > budget * (1.0 + epsilon) + slack:
                    errors.append(
                        f"line {lineno}: budget invariant violated: "
                        f"charged={charged} > budget={budget} * "
                        f"(1+{epsilon}) + {slack}")
            elif math.isfinite(budget) and not math.isfinite(charged):
                errors.append(f"line {lineno}: non-finite charged "
                              f"{charged} under finite budget {budget}")

    present = {obj["name"] for _, obj in spans}
    for name in args.require_names:
        if name not in present:
            errors.append(f"required span name {name!r} never appears")

    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    n_checked = sum(1 for _, o in spans if o["name"] in budget_names)
    if errors:
        print(f"{args.trace}: INVALID ({len(errors)} errors, "
              f"{len(spans)} spans)", file=sys.stderr)
        return 1
    print(f"{args.trace}: OK ({len(spans)} spans, {n_checked} budget-checked,"
          f" {len(warnings)} warnings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""CI perf gate for the cross-query feedback loop.

Compares the BENCH_feedback.json emitted by `bench_feedback --smoke`
against the recorded baseline (bench/baselines/feedback_smoke.json):

  warm     — repeat traffic must trigger at least the baseline's warm runs
             and skipped contours, and the warm real-data run must return
             the cold run's result rows (canonicalized for plan-dependent
             column order).
  shrink   — the feedback-shrunken compile must cost strictly fewer
             optimizer DP calls than the declared-range compile (its whole
             point), with the full compile at the expected size.
  oracle   — the warm-start MSO-bound property must hold over at least the
             baseline's run count with zero violations.
  shootout — all five policies present; the bouquet's MSO must stay under
             the baseline ceiling and every reported metric finite.

Every gated quantity is deterministic (counts, not wall clock), so any
change is a real behavioral regression.

Usage: check_feedback_smoke.py <BENCH_feedback.json> [baseline.json]
Exit code 0 on pass, 1 on regression or malformed input.
"""

import json
import math
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir, "bench", "baselines", "feedback_smoke.json")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    bench_path = argv[1]
    baseline_path = argv[2] if len(argv) > 2 else DEFAULT_BASELINE

    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        base = json.load(f)

    failures = []

    warm = bench.get("warm", {})
    wbase = base["warm"]
    print(f"warm: {warm.get('warm_runs', 0)} warm runs, "
          f"{warm.get('contours_skipped', 0)} contours skipped, "
          f"rows_identical={warm.get('rows_identical')}")
    if warm.get("warm_runs", 0) < wbase["min_warm_runs"]:
        failures.append(
            f"warm: warm_runs {warm.get('warm_runs', 0)} < "
            f"{wbase['min_warm_runs']} — repeat traffic no longer "
            f"warm-starts")
    if warm.get("contours_skipped", 0) < wbase["min_contours_skipped"]:
        failures.append(
            f"warm: contours_skipped {warm.get('contours_skipped', 0)} < "
            f"{wbase['min_contours_skipped']} — warm search stopped "
            f"skipping the ladder prefix")
    if warm.get("rows_identical") is not True:
        failures.append(
            "warm: rows_identical is not true — the warm run changed the "
            "query result")
    if warm.get("driver_contours_skipped", 0) < 1:
        failures.append(
            "warm: driver_contours_skipped < 1 — real-data warm start "
            "executed the full ladder")

    shrink = bench.get("shrink", {})
    sbase = base["shrink"]
    print(f"shrink: dp_calls {shrink.get('full_dp_calls', 0)} full -> "
          f"{shrink.get('shrunken_dp_calls', 0)} shrunken")
    if shrink.get("full_points", 0) != sbase["full_points"]:
        failures.append(
            f"shrink: full_points {shrink.get('full_points', 0)} != "
            f"{sbase['full_points']} — smoke grid changed; re-record the "
            f"baseline")
    if not (0 < shrink.get("shrunken_dp_calls", 0)
            < shrink.get("full_dp_calls", 0)):
        failures.append(
            f"shrink: shrunken_dp_calls {shrink.get('shrunken_dp_calls', 0)} "
            f"not in (0, full_dp_calls {shrink.get('full_dp_calls', 0)}) — "
            f"the shrunken box no longer saves compile work")

    oracle = bench.get("oracle", {})
    obase = base["oracle"]
    runs = oracle.get("warm_runs", 0) + oracle.get("mispredicted_runs", 0)
    print(f"oracle: {runs} seeded warm runs, "
          f"{oracle.get('violations', -1)} violations")
    if runs < obase["min_runs"]:
        failures.append(
            f"oracle: only {runs} seeded runs < {obase['min_runs']}")
    if oracle.get("violations", -1) != 0:
        failures.append(
            f"oracle: {oracle.get('violations', -1)} violations — a warm "
            f"start broke completion or the Theorem 3 bound")

    shootout = {row.get("policy"): row for row in bench.get("shootout", [])}
    missing = [p for p in base["shootout"]["policies"]
               if p not in shootout]
    if missing:
        failures.append(f"shootout: missing policies {missing}")
    for name, row in shootout.items():
        for key in ("mso", "aso", "max_harm"):
            v = row.get(key)
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                failures.append(f"shootout: {name}.{key} = {v!r} not finite")
    bq = shootout.get("bouquet")
    if bq is not None:
        print(f"shootout: bouquet MSO {bq['mso']:.3f} "
              f"(ceiling {base['shootout']['max_bouquet_mso']})")
        if bq["mso"] > base["shootout"]["max_bouquet_mso"]:
            failures.append(
                f"shootout: bouquet MSO {bq['mso']:.3f} > ceiling "
                f"{base['shootout']['max_bouquet_mso']} — the bouquet lost "
                f"its robustness edge")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if not failures:
        print("feedback smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""CI perf gate for the src/net/ serving layer.

Compares the BENCH_serve.json emitted by `bench_service_throughput
--serve-smoke` against the recorded baseline
(bench/baselines/serve_smoke.json). Gated invariants:

  serve phase (generous queue bound, bursty single-template load):
    - every request completes, none error;
    - compilations stay at or below the baseline ceiling (compile count
      must be << request count: the amortization claim of the serving
      layer, paper Section 4.2 made operational);
    - mean batch size meets a floor (the batching window actually
      coalesces same-template requests);
    - open-loop QPS meets a deliberately conservative floor (CI noise
      margin — this catches order-of-magnitude collapses, not jitter).

  overload phase (tiny queue bound, slow batch window):
    - at least baseline-many DEGRADED responses (MSO-safe shedding fired);
    - observed peak queue depth never exceeded the configured bound
      (queue depth is bounded by construction);
    - every request still completed (overload degrades cost, never
      availability) and no extra compilations happened under overload
      (the safe-plan path must never trigger a compile storm).

Usage: check_serve_smoke.py <BENCH_serve.json> [baseline.json]
Exit code 0 on pass, 1 on regression or malformed input.
"""

import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir, "bench", "baselines", "serve_smoke.json")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    bench_path = argv[1]
    baseline_path = argv[2] if len(argv) > 2 else DEFAULT_BASELINE

    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        base = json.load(f)

    serve = bench["serve"]
    over = bench["overload"]
    bs = base["serve"]
    bo = base["overload"]

    failures = []

    print(f"serve: {serve['requests']} req @ {serve['qps']:.1f} req/s, "
          f"p50 {serve['p50_ms']:.2f}ms p99 {serve['p99_ms']:.2f}ms, "
          f"{serve['compilations']} compilations, "
          f"mean batch {serve['mean_batch_size']:.2f}")
    if serve["completed"] != serve["requests"]:
        failures.append(
            f"serve: only {serve['completed']}/{serve['requests']} "
            f"requests completed")
    if serve["errors"] != 0:
        failures.append(f"serve: {serve['errors']} wire errors")
    if serve["compilations"] > bs["max_compilations"]:
        failures.append(
            f"serve: {serve['compilations']} compilations > ceiling "
            f"{bs['max_compilations']} — template cache amortization broke")
    if serve["mean_batch_size"] < bs["min_mean_batch_size"]:
        failures.append(
            f"serve: mean batch size {serve['mean_batch_size']:.2f} < floor "
            f"{bs['min_mean_batch_size']} — batching window not coalescing")
    if serve["qps"] < bs["min_qps"]:
        failures.append(
            f"serve: {serve['qps']:.1f} req/s < floor {bs['min_qps']} — "
            f"serving throughput collapsed")

    print(f"overload: {over['completed']}/{over['requests']} completed, "
          f"{over['degraded']} degraded (shed {over['shed']}), peak queue "
          f"{over['peak_queue_depth']} (bound {over['max_queue_depth']})")
    if over["completed"] != over["requests"]:
        failures.append(
            f"overload: only {over['completed']}/{over['requests']} "
            f"requests completed — shedding dropped requests instead of "
            f"degrading them")
    if over["degraded"] < bo["min_degraded"]:
        failures.append(
            f"overload: {over['degraded']} degraded responses < floor "
            f"{bo['min_degraded']} — load shedding never engaged")
    if over["peak_queue_depth"] > over["max_queue_depth"]:
        failures.append(
            f"overload: peak queue depth {over['peak_queue_depth']} > "
            f"configured bound {over['max_queue_depth']} — queue bound "
            f"violated")
    if over["degraded"] != over["shed"]:
        failures.append(
            f"overload: degraded responses {over['degraded']} != router "
            f"sheds {over['shed']} — shed accounting diverged")
    if over["compilations"] > bs["max_compilations"]:
        failures.append(
            f"overload: compilations rose to {over['compilations']} under "
            f"overload — safe-plan path triggered compiles")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if not failures:
        print("serve smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

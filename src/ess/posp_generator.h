// Exhaustive POSP generation: optimize the query at every ESS grid point.
//
// The task is embarrassingly parallel (Section 4.2 of the paper), so the
// generator optionally shards the grid across threads, each with its own
// QueryOptimizer instance, and merges per-shard results through signature
// interning. Two parallel backends exist:
//   * `num_threads > 1`: spawns ad-hoc std::threads (legacy path).
//   * `pool != nullptr`: shards across a shared ThreadPool (the service
//     layer's path; nest-safe, so a pool task may itself generate a POSP).
// Both backends produce a diagram bit-identical to the serial one: plans are
// interned in order of first occurrence over the linear grid order, which is
// invariant to how the grid is chunked (shards are merged in linear order).
//
// Thread-safety: the query, catalog, and grid are only read; every shard
// owns a private QueryOptimizer; the diagram is assembled single-threaded
// after the shards join. No shared mutable state is reachable from workers.

#ifndef BOUQUET_ESS_POSP_GENERATOR_H_
#define BOUQUET_ESS_POSP_GENERATOR_H_

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "ess/ess_grid.h"
#include "ess/plan_diagram.h"
#include "optimizer/cost_model.h"
#include "query/query_spec.h"

namespace bouquet {

struct PospOptions {
  /// Ad-hoc thread count; honored exactly (no hardware_concurrency clamp) so
  /// sharding behavior is reproducible across machines. Ignored when `pool`
  /// is set.
  int num_threads = 1;
  /// When set, grid rows are partitioned across this pool instead of ad-hoc
  /// threads. The pool is borrowed, not owned.
  ThreadPool* pool = nullptr;
  /// Grids smaller than this stay serial (per-shard optimizer construction
  /// is not free). Lower it in tests to force multi-shard runs.
  uint64_t min_shard_points = 256;
};

/// Statistics of a generation run (compile-time overheads, Section 6.1).
struct PospStats {
  long long optimizer_calls = 0;
  double wall_seconds = 0.0;
};

/// Optimizes every grid point; the returned diagram's costs form the PIC.
/// The grid must outlive the returned diagram.
PlanDiagram GeneratePosp(const QuerySpec& query, const Catalog& catalog,
                         CostParams params, const EssGrid& grid,
                         const PospOptions& options = {},
                         PospStats* stats = nullptr);

}  // namespace bouquet

#endif  // BOUQUET_ESS_POSP_GENERATOR_H_

// Exhaustive POSP generation: optimize the query at every ESS grid point.
//
// The task is embarrassingly parallel (Section 4.2 of the paper), so the
// generator optionally shards the grid across threads, each with its own
// QueryOptimizer instance, and merges per-shard results through signature
// interning.

#ifndef BOUQUET_ESS_POSP_GENERATOR_H_
#define BOUQUET_ESS_POSP_GENERATOR_H_

#include "catalog/catalog.h"
#include "ess/ess_grid.h"
#include "ess/plan_diagram.h"
#include "optimizer/cost_model.h"
#include "query/query_spec.h"

namespace bouquet {

struct PospOptions {
  int num_threads = 1;
};

/// Statistics of a generation run (compile-time overheads, Section 6.1).
struct PospStats {
  long long optimizer_calls = 0;
  double wall_seconds = 0.0;
};

/// Optimizes every grid point; the returned diagram's costs form the PIC.
/// The grid must outlive the returned diagram.
PlanDiagram GeneratePosp(const QuerySpec& query, const Catalog& catalog,
                         CostParams params, const EssGrid& grid,
                         const PospOptions& options = {},
                         PospStats* stats = nullptr);

}  // namespace bouquet

#endif  // BOUQUET_ESS_POSP_GENERATOR_H_

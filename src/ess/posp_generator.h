// Exhaustive POSP generation: optimize the query at every ESS grid point.
//
// The task is embarrassingly parallel (Section 4.2 of the paper), so the
// generator optionally shards the grid across threads, each with its own
// QueryOptimizer instance, and merges per-shard results through signature
// interning. Two parallel backends exist:
//   * `num_threads > 1`: spawns ad-hoc std::threads (legacy path).
//   * `pool != nullptr`: shards across a shared ThreadPool (the service
//     layer's path; nest-safe, so a pool task may itself generate a POSP).
// Both backends produce a diagram bit-identical to the serial one: plans are
// interned in order of first occurrence over the linear grid order, which is
// invariant to how the grid is chunked (shards are merged in linear order).
//
// Incremental compilation (on by default): POSP diagrams are massively
// redundant — a handful of plans tile huge grid regions (Harish et al.,
// VLDB'07) — so each shard walks its points in linear (axis-major) order and,
// before running the full DP, recosts its already-materialized winner plans
// at the new point. When some candidate's recost c* <= the optimistic scalar
// DP bound (optimizer/dp_bound), the point is served without a DP call:
// bound <= optimal <= c* always holds (additive cost formulas are
// float-monotone in child costs and recosting reproduces the enumerator's
// exact float derivation), so the comparison can only succeed when all three
// coincide bit-for-bit. The bound additionally reports whether its minimum
// was uniquely attained; ambiguous points — where structurally different
// plans tie at the optimum bit-exactly and the DP's argmin depends on its
// enumeration order — always take the full DP. Skipped points reuse a
// plan the shard's DP already materialized, so signature interning order —
// first DP occurrence in linear order — is unchanged, and the emitted
// diagram is byte-identical to a memoryless run. A seeded deterministic
// audit additionally re-runs the full DP on a random sample of skipped
// points and counts disagreements (none expected; see PospStats).
//
// Thread-safety: the query, catalog, and grid are only read; every shard
// owns a private QueryOptimizer (and DP bound); the diagram is assembled
// single-threaded after the shards join. No shared mutable state is
// reachable from workers.
//
// Shrunken ESS boxes: the generator is agnostic to where the grid's axes
// came from — the feedback layer (src/feedback/warm_start.h) may hand it a
// grid built over the observed selectivity support instead of the declared
// ranges (EssGrid's explicit-box constructor). Fewer points and a tighter
// cost range mean both fewer DP calls and better recost-skip locality;
// bench_feedback --smoke measures the effect against the full-box compile.

#ifndef BOUQUET_ESS_POSP_GENERATOR_H_
#define BOUQUET_ESS_POSP_GENERATOR_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "ess/ess_grid.h"
#include "ess/plan_diagram.h"
#include "optimizer/cost_model.h"
#include "query/query_spec.h"

namespace bouquet {

struct PospOptions {
  /// Ad-hoc thread count; honored exactly (no hardware_concurrency clamp) so
  /// sharding behavior is reproducible across machines. With a pool it only
  /// raises the shard-count ceiling (the pool supplies the workers).
  int num_threads = 1;
  /// When set, grid rows are partitioned across this pool instead of ad-hoc
  /// threads. The pool is borrowed, not owned.
  ThreadPool* pool = nullptr;
  /// Grids smaller than this stay serial (per-shard optimizer construction
  /// is not free), and no shard is ever smaller than this (the tail is
  /// absorbed by the last shard). Lower it in tests to force multi-shard
  /// runs.
  uint64_t min_shard_points = 256;
  /// Master switch for the recost-first fast path + invariant-subplan memo
  /// reuse across points. Off = the memoryless behavior (one full DP per
  /// point); the output diagram is identical either way.
  bool incremental = true;
  /// Fraction of *skipped* points whose plan+cost are re-derived by a full
  /// DP and compared (differential audit). Deterministic in (audit_seed,
  /// point index), hence shard-independent. 0 disables the audit.
  double audit_fraction = 0.01;
  uint64_t audit_seed = 0x5eed5eedULL;
};

/// Statistics of a generation run (compile-time overheads, Section 6.1).
struct PospStats {
  /// Full DP invocations (== dp_calls; kept under its historical name for
  /// dashboards). Audit re-derivations are counted separately.
  long long optimizer_calls = 0;
  long long dp_calls = 0;      ///< points served by a full DP
  long long recost_hits = 0;   ///< points served by the recost fast path
  long long memo_hits = 0;     ///< DP subproblems reused across points
  long long audit_checks = 0;  ///< skipped points re-derived by a full DP
  long long audit_failures = 0;  ///< audit disagreements (expected 0)
  long long shards = 0;          ///< parallel shards actually run
  double wall_seconds = 0.0;
};

/// Optimizes every grid point; the returned diagram's costs form the PIC.
/// The grid must outlive the returned diagram.
PlanDiagram GeneratePosp(const QuerySpec& query, const Catalog& catalog,
                         CostParams params, const EssGrid& grid,
                         const PospOptions& options = {},
                         PospStats* stats = nullptr);

}  // namespace bouquet

#endif  // BOUQUET_ESS_POSP_GENERATOR_H_

// Anorexic plan-diagram reduction (Harish, Darera, Haritsa, VLDB 2007).
//
// Plans "swallow" other plans' ESS regions whenever the cost penalty at every
// swallowed point stays within a (1+lambda) factor of optimal. The paper uses
// lambda = 20%, which empirically collapses diagrams with tens-to-hundreds of
// plans down to ~10 ("anorexic levels") — the key to a small multi-D MSO
// bound (Section 3.3).

#ifndef BOUQUET_ESS_ANOREXIC_H_
#define BOUQUET_ESS_ANOREXIC_H_

#include <vector>

#include "ess/plan_diagram.h"
#include "optimizer/optimizer.h"

namespace bouquet {

/// Outcome of a reduction pass.
struct AnorexicResult {
  /// New plan assignment; same indexing as the diagram when reducing the
  /// full grid, or aligned with `points` when a subset was given.
  std::vector<int> plan_at;
  /// Retained plan ids, ascending.
  std::vector<int> retained;
  int plans_before = 0;
  int plans_after = 0;
};

/// Greedy cost-bounded reduction over the whole grid (points == nullptr) or
/// a subset of grid points. `opt` must be the optimizer for the diagram's
/// query (used for abstract plan recosting).
AnorexicResult AnorexicReduce(const PlanDiagram& diagram, QueryOptimizer* opt,
                              double lambda,
                              const std::vector<uint64_t>* points = nullptr);

}  // namespace bouquet

#endif  // BOUQUET_ESS_ANOREXIC_H_

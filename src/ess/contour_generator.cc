#include "ess/contour_generator.h"

#include <algorithm>
#include <cassert>

#include "common/math_util.h"
#include "optimizer/optimizer.h"

namespace bouquet {

namespace {

class ContourPospBuilder {
 public:
  ContourPospBuilder(const QuerySpec& query, const Catalog& catalog,
                     CostParams params, const EssGrid& grid, double ratio)
      : opt_(query, catalog, params), grid_(grid), ratio_(ratio) {}

  SparsePosp Build() {
    const GridPoint lo = grid_.Origin();
    const GridPoint hi = grid_.MaxCorner();
    result_.cmin = CostAt(lo);
    result_.cmax = CostAt(hi);
    result_.steps = GeometricSteps(result_.cmin, result_.cmax, ratio_);
    Recurse(lo, hi);
    result_.optimizer_calls = calls_;
    return std::move(result_);
  }

 private:
  // Optimizes (memoized) and records the point; returns its optimal cost.
  double CostAt(const GridPoint& p) {
    const uint64_t linear = grid_.LinearIndex(p);
    auto it = result_.entries.find(linear);
    if (it != result_.entries.end()) return it->second.second;
    ++calls_;
    const Plan plan = opt_.OptimizeAt(grid_.SelectivityAt(p));
    const int id = Intern(plan);
    result_.entries.emplace(linear, std::make_pair(id, plan.cost));
    return plan.cost;
  }

  int Intern(const Plan& plan) {
    auto it = sig_to_id_.find(plan.signature);
    if (it != sig_to_id_.end()) return it->second;
    const int id = static_cast<int>(result_.plans.size());
    result_.plans.push_back(plan);
    sig_to_id_.emplace(plan.signature, id);
    return id;
  }

  // True when some isocost step falls inside [clo, chi].
  bool ContourPasses(double clo, double chi) const {
    for (double s : result_.steps) {
      if (s >= clo && s <= chi) return true;
    }
    return false;
  }

  void OptimizeBox(const GridPoint& lo, const GridPoint& hi) {
    GridPoint p = lo;
    for (;;) {
      CostAt(p);
      int d = grid_.dims() - 1;
      for (; d >= 0; --d) {
        if (++p[d] <= hi[d]) break;
        p[d] = lo[d];
      }
      if (d < 0) break;
    }
  }

  void Recurse(const GridPoint& lo, const GridPoint& hi) {
    const double clo = CostAt(lo);
    const double chi = CostAt(hi);
    if (!ContourPasses(clo, chi)) return;  // cube lies between contours

    // Small enough: optimize every point (the "band").
    int longest = -1;
    int longest_len = 0;
    for (int d = 0; d < grid_.dims(); ++d) {
      const int len = hi[d] - lo[d] + 1;
      if (len > longest_len) {
        longest_len = len;
        longest = d;
      }
    }
    if (longest_len <= 3) {
      OptimizeBox(lo, hi);
      return;
    }
    // Split the longest dimension.
    const int mid = lo[longest] + (longest_len - 1) / 2;
    GridPoint hi1 = hi;
    hi1[longest] = mid;
    GridPoint lo2 = lo;
    lo2[longest] = mid + 1;
    Recurse(lo, hi1);
    Recurse(lo2, hi);
  }

  QueryOptimizer opt_;
  const EssGrid& grid_;
  double ratio_;
  SparsePosp result_;
  std::unordered_map<std::string, int> sig_to_id_;
  long long calls_ = 0;
};

}  // namespace

SparsePosp GenerateContourPosp(const QuerySpec& query, const Catalog& catalog,
                               CostParams params, const EssGrid& grid,
                               double ratio) {
  ContourPospBuilder builder(query, catalog, params, grid, ratio);
  return builder.Build();
}

std::vector<std::vector<uint64_t>> ExtractSparseContours(
    const SparsePosp& posp, const EssGrid& grid) {
  const int m = static_cast<int>(posp.steps.size());
  // Band assignment: smallest k with cost <= IC_k.
  std::vector<std::vector<uint64_t>> bands(m);
  for (const auto& [linear, entry] : posp.entries) {
    const double c = entry.second;
    for (int k = 0; k < m; ++k) {
      if (c <= posp.steps[k] * (1.0 + 1e-12)) {
        bands[k].push_back(linear);
        break;
      }
    }
  }
  // Contour k = componentwise-maximal points of band k.
  std::vector<std::vector<uint64_t>> contours(m);
  for (int k = 0; k < m; ++k) {
    std::vector<GridPoint> pts;
    pts.reserve(bands[k].size());
    for (uint64_t l : bands[k]) pts.push_back(grid.PointAt(l));
    for (size_t i = 0; i < pts.size(); ++i) {
      bool maximal = true;
      for (size_t j = 0; j < pts.size() && maximal; ++j) {
        if (i == j) continue;
        // pts[i] strictly dominated by pts[j]?
        if (EssGrid::Dominates(pts[i], pts[j]) && pts[i] != pts[j]) {
          maximal = false;
        }
      }
      if (maximal) contours[k].push_back(bands[k][i]);
    }
    std::sort(contours[k].begin(), contours[k].end());
  }
  return contours;
}

}  // namespace bouquet

// Contour-focused POSP generation (Section 4.2 of the paper).
//
// Exhaustive POSP generation optimizes every grid point; but the bouquet only
// needs the plans lying on the isocost contours. This generator recursively
// subdivides the ESS into hypercubes, pruning cubes whose corner costs show
// that no contour passes through them (valid by Plan Cost Monotonicity), and
// optimizing only the narrow band of points around each contour.

#ifndef BOUQUET_ESS_CONTOUR_GENERATOR_H_
#define BOUQUET_ESS_CONTOUR_GENERATOR_H_

#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "ess/ess_grid.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "query/query_spec.h"

namespace bouquet {

/// Sparse POSP: only the points near contours carry plan/cost entries.
struct SparsePosp {
  /// point -> (plan id, optimal cost)
  std::unordered_map<uint64_t, std::pair<int, double>> entries;
  std::vector<Plan> plans;
  std::vector<double> steps;  ///< isocost ladder IC_1..IC_m
  double cmin = 0.0;
  double cmax = 0.0;
  long long optimizer_calls = 0;
};

/// Runs the recursive subdivision. `ratio` is the isocost common ratio
/// (r = 2 in the paper).
SparsePosp GenerateContourPosp(const QuerySpec& query, const Catalog& catalog,
                               CostParams params, const EssGrid& grid,
                               double ratio);

/// Extracts per-contour point sets from a sparse POSP: contour k holds the
/// componentwise-maximal optimized points whose cost lies in
/// (IC_{k-1}, IC_k].
std::vector<std::vector<uint64_t>> ExtractSparseContours(
    const SparsePosp& posp, const EssGrid& grid);

}  // namespace bouquet

#endif  // BOUQUET_ESS_CONTOUR_GENERATOR_H_

#include "ess/plan_diagram.h"

#include <algorithm>
#include <cassert>

namespace bouquet {

PlanDiagram::PlanDiagram(const EssGrid* grid)
    : grid_(grid),
      plan_at_(grid->num_points(), -1),
      cost_at_(grid->num_points(), 0.0) {}

int PlanDiagram::InternPlan(const Plan& plan) {
  auto it = sig_to_id_.find(plan.signature);
  if (it != sig_to_id_.end()) return it->second;
  const int id = static_cast<int>(plans_.size());
  plans_.push_back(plan);
  sig_to_id_.emplace(plan.signature, id);
  return id;
}

int PlanDiagram::FindPlan(const std::string& signature) const {
  auto it = sig_to_id_.find(signature);
  return it == sig_to_id_.end() ? -1 : it->second;
}

void PlanDiagram::Set(uint64_t point, int plan_id, double optimal_cost) {
  assert(plan_id >= 0 && plan_id < num_plans());
  plan_at_[point] = plan_id;
  cost_at_[point] = optimal_cost;
}

double PlanDiagram::Cmin() const {
  return *std::min_element(cost_at_.begin(), cost_at_.end());
}

double PlanDiagram::Cmax() const {
  return *std::max_element(cost_at_.begin(), cost_at_.end());
}

std::vector<double> PlanDiagram::RegionFractions() const {
  std::vector<double> frac(num_plans(), 0.0);
  for (int p : plan_at_) {
    if (p >= 0) frac[p] += 1.0;
  }
  const double n = static_cast<double>(plan_at_.size());
  for (auto& f : frac) f /= n;
  return frac;
}

void PlanDiagram::SetAssignments(std::vector<int> plan_at) {
  assert(plan_at.size() == plan_at_.size());
  plan_at_ = std::move(plan_at);
}

}  // namespace bouquet

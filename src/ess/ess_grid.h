// The discretized Error-prone Selectivity Space (ESS).
//
// Each error dimension of a query contributes one log-spaced axis spanning
// its declared [lo, hi] selectivity range (selectivity behavior is
// multiplicative, hence the log spacing — the paper's figures are log-log).
// Grid points are addressed both as per-dimension index vectors and as
// flattened linear indexes.

#ifndef BOUQUET_ESS_ESS_GRID_H_
#define BOUQUET_ESS_ESS_GRID_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "optimizer/selectivity.h"
#include "query/query_spec.h"

namespace bouquet {

/// Per-dimension grid indexes of one ESS location.
using GridPoint = std::vector<int>;

/// A D-dimensional log-spaced selectivity grid.
class EssGrid {
 public:
  /// One resolution per error dimension of the query.
  EssGrid(const QuerySpec& query, std::vector<int> resolutions);

  /// Explicit-box overload: axes span the given per-dimension [lo, hi]
  /// instead of the query's declared ranges. Used by the feedback layer to
  /// compile over a shrunken ESS box (observed selectivity support plus a
  /// guard band); callers must keep lo/hi inside the declared ranges so
  /// SnapToGrid clamping stays meaningful.
  EssGrid(const QuerySpec& query, std::vector<int> resolutions,
          const DimVector& lo, const DimVector& hi);

  /// Default resolutions chosen by dimensionality (1D:100, 2D:64, 3D:20,
  /// 4D:12, 5D:8, >=6D:6) so exhaustive POSP stays tractable.
  static EssGrid WithDefaultResolution(const QuerySpec& query);
  static int DefaultResolutionForDims(int dims);

  int dims() const { return static_cast<int>(axes_.size()); }
  int resolution(int d) const { return static_cast<int>(axes_[d].size()); }
  uint64_t num_points() const { return num_points_; }
  const std::vector<double>& axis(int d) const { return axes_[d]; }

  /// Selectivity vector at a grid point.
  DimVector SelectivityAt(const GridPoint& p) const;
  DimVector SelectivityAt(uint64_t linear) const;

  /// Allocation-free variant for per-point hot loops: writes the vector into
  /// *out (resized to dims() if needed).
  void SelectivityAt(uint64_t linear, DimVector* out) const;

  uint64_t LinearIndex(const GridPoint& p) const;
  GridPoint PointAt(uint64_t linear) const;

  /// Linear index of p with dimension d's index replaced by idx.
  uint64_t LinearWithDim(uint64_t linear, int d, int idx) const;

  /// Index of the largest axis value <= s on dimension d (clamped to 0).
  int AxisFloor(int d, double s) const;
  /// Index of the smallest axis value >= s on dimension d (clamped to max).
  int AxisCeil(int d, double s) const;

  /// True if a <= b componentwise (a is in the third quadrant of b).
  static bool Dominates(const GridPoint& a, const GridPoint& b);

  /// Invokes fn(linear_index, point) over the whole grid in linear order.
  void ForEach(
      const std::function<void(uint64_t, const GridPoint&)>& fn) const;

  /// The origin (all-zero) and the principal-diagonal corner (all-max).
  GridPoint Origin() const { return GridPoint(dims(), 0); }
  GridPoint MaxCorner() const;

 private:
  std::vector<std::vector<double>> axes_;
  std::vector<uint64_t> strides_;
  uint64_t num_points_ = 1;
};

}  // namespace bouquet

#endif  // BOUQUET_ESS_ESS_GRID_H_

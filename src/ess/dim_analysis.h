// Error-dimension sensitivity analysis and elimination.
//
// Section 8(iii) of the paper: "The partial derivatives of the POSP plan
// cost functions along each dimension can be computed on a low resolution
// mapping of the ESS, and any dimension with a small derivative across all
// the plans can be eliminated since its cost impact is marginal."
//
// Bouquet identification is exponential in dimensionality, so dropping
// cost-insensitive dimensions before POSP generation is the main lever for
// keeping compile-time overheads down on complex queries.

#ifndef BOUQUET_ESS_DIM_ANALYSIS_H_
#define BOUQUET_ESS_DIM_ANALYSIS_H_

#include <vector>

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "query/query_spec.h"

namespace bouquet {

/// Sensitivity of the optimal cost to one error dimension.
struct DimSensitivity {
  int dim = 0;
  /// max over probe points of  cost(d = hi) / cost(d = lo) - 1.
  double max_relative_impact = 0.0;
};

/// Probes each dimension on a low-resolution lattice (the other dimensions
/// held at lattice positions) and measures how much the optimal cost moves
/// across the dimension's full range. `lattice_per_dim` controls probe
/// density (total probe optimizations ~= D * lattice^(D-1) * 2, capped).
std::vector<DimSensitivity> MeasureDimSensitivity(const QuerySpec& query,
                                                  const Catalog& catalog,
                                                  CostParams params,
                                                  int lattice_per_dim = 3);

/// Returns a copy of the query with every dimension whose maximum relative
/// cost impact is below `threshold` removed from error_dims (the predicate
/// itself stays; its selectivity reverts to the optimizer's estimate, fixed
/// at the geometric midpoint of the former range). Removed dimension
/// indexes (into the original error_dims) are reported via *removed.
QuerySpec EliminateWeakDimensions(const QuerySpec& query,
                                  const Catalog& catalog, CostParams params,
                                  double threshold,
                                  std::vector<int>* removed = nullptr,
                                  int lattice_per_dim = 3);

}  // namespace bouquet

#endif  // BOUQUET_ESS_DIM_ANALYSIS_H_

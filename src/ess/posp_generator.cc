#include "ess/posp_generator.h"

#include "common/lint.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "optimizer/dp_bound.h"
#include "optimizer/optimizer.h"

namespace bouquet {

namespace {

// Wall-clock telemetry only: feeds PospStats::wall_seconds, never the plan
// diagram, cost derivations, or the audit sampling (which is seeded).
BOUQUET_NONDETERMINISM_OK std::chrono::steady_clock::time_point WallNow() {
  return std::chrono::steady_clock::now();
}

// SplitMix64: deterministic, shard-independent audit sampling keyed only by
// (seed, linear point index).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

bool AuditSampled(uint64_t seed, uint64_t point, double fraction) {
  if (fraction <= 0.0) return false;
  const uint64_t h = Mix64(seed ^ (point * 0x9E3779B97F4A7C15ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < fraction;
}

struct ShardResult {
  // Per point in the shard: signature id into local_plans + cost.
  std::vector<int> local_plan;
  std::vector<double> cost;
  std::vector<Plan> local_plans;
  std::unordered_map<std::string, int> sig_to_local;
  long long dp_calls = 0;
  long long recost_hits = 0;
  long long memo_hits = 0;
  long long audit_checks = 0;
  long long audit_failures = 0;
};

void RunShard(const QuerySpec& query, const Catalog& catalog,
              CostParams params, const EssGrid& grid,
              const PospOptions& options, uint64_t begin, uint64_t end,
              ShardResult* out) {
  QueryOptimizer opt(query, catalog, params);
  std::unique_ptr<DpLowerBound> bound;
  if (options.incremental) {
    bound = std::make_unique<DpLowerBound>(query, catalog, CostModel(params));
  }

  out->local_plan.resize(end - begin);
  out->cost.resize(end - begin);

  auto intern_local = [&](const Plan& plan) {
    auto it = out->sig_to_local.find(plan.signature);
    if (it != out->sig_to_local.end()) return it->second;
    const int id = static_cast<int>(out->local_plans.size());
    out->local_plans.push_back(plan);
    out->sig_to_local.emplace(plan.signature, id);
    return id;
  };

  DimVector sels;
  size_t last_hit = 0;  // previous point's winner: the best first guess
  for (uint64_t i = begin; i < end; ++i) {
    grid.SelectivityAt(i, &sels);
    int id = -1;
    double cost = 0.0;

    if (bound != nullptr && !out->local_plans.empty()) {
      // Fast path: certify a known plan optimal without running the DP.
      // bound <= optimal <= recost(P) holds for every plan P, so
      // recost(P) <= bound forces all three equal bit-for-bit — and when
      // the bound's minimum was uniquely attained, the optimum is unique,
      // so P is *the* plan the DP would emit. Exact-cost ties (which the
      // DP breaks by enumeration order, unreproducible by recosting) mark
      // the bound ambiguous and the point takes the full DP. Plan choice
      // is piecewise-constant over the grid, so the previous point's
      // winner almost always hits on the first recost.
      bool ambiguous = false;
      const double lb = bound->BoundAt(sels, &ambiguous);
      if (!ambiguous && std::isfinite(lb)) {
        const size_t k = out->local_plans.size();
        for (size_t step = 0; step < k; ++step) {
          const size_t p = (last_hit + step) % k;
          const double c = opt.CostPlanAt(*out->local_plans[p].root, sels);
          if (c <= lb) {
            id = static_cast<int>(p);
            cost = c;
            break;
          }
        }
      }
      if (id >= 0) {
        ++out->recost_hits;
        if (AuditSampled(options.audit_seed, i, options.audit_fraction)) {
          ++out->audit_checks;
          const Plan ref = opt.OptimizeAt(sels);
          if (ref.signature != out->local_plans[id].signature ||
              ref.cost != cost) {
            ++out->audit_failures;
            // Correctness over speed: emit the DP's own answer.
            id = intern_local(ref);
            cost = ref.cost;
          }
        }
      }
    }

    if (id < 0) {
      const Plan plan = opt.OptimizeAt(sels);
      ++out->dp_calls;
      id = intern_local(plan);
      cost = plan.cost;
    }
    out->local_plan[i - begin] = id;
    out->cost[i - begin] = cost;
    last_hit = static_cast<size_t>(id);
  }
  out->memo_hits = opt.memo_hits();
}

// Interns shard results into the diagram in linear-shard order. Because a
// plan's global id becomes "first shard containing it, first point within
// that shard" — exactly its first occurrence in linear grid order — the
// merged diagram is identical to a serial run regardless of chunking. (The
// fast path preserves this: skipped points only reuse plans the shard's DP
// already materialized, so local_plans order stays first-occurrence order.)
void MergeShards(const std::vector<ShardResult>& results, uint64_t chunk,
                 PlanDiagram* diagram, PospStats* agg) {
  for (size_t t = 0; t < results.size(); ++t) {
    const uint64_t begin = chunk * t;
    const ShardResult& r = results[t];
    std::vector<int> local_to_global(r.local_plans.size());
    for (size_t p = 0; p < r.local_plans.size(); ++p) {
      local_to_global[p] = diagram->InternPlan(r.local_plans[p]);
    }
    for (size_t i = 0; i < r.local_plan.size(); ++i) {
      diagram->Set(begin + i, local_to_global[r.local_plan[i]], r.cost[i]);
    }
    agg->dp_calls += r.dp_calls;
    agg->recost_hits += r.recost_hits;
    agg->memo_hits += r.memo_hits;
    agg->audit_checks += r.audit_checks;
    agg->audit_failures += r.audit_failures;
  }
  agg->shards += static_cast<long long>(results.size());
}

}  // namespace

PlanDiagram GeneratePosp(const QuerySpec& query, const Catalog& catalog,
                         CostParams params, const EssGrid& grid,
                         const PospOptions& options, PospStats* stats) {
  const auto t0 = WallNow();
  const uint64_t n = grid.num_points();

  PlanDiagram diagram(&grid);
  PospStats agg;

  if (options.pool != nullptr && n >= options.min_shard_points && n > 1) {
    // Pool-backed sharding: enough chunks for load balance, but never a
    // shard smaller than min_shard_points — the tail is folded into the
    // last shard instead of becoming its own (a single-point tail would pay
    // a full per-shard optimizer construction for one DP call).
    const uint64_t max_shards = std::max<uint64_t>(
        2 * (static_cast<uint64_t>(options.pool->size()) + 1),
        static_cast<uint64_t>(std::max(1, options.num_threads)));
    const uint64_t min_chunk =
        std::max<uint64_t>(1, options.min_shard_points);
    const uint64_t shards =
        std::min(max_shards, std::max<uint64_t>(1, n / min_chunk));
    const uint64_t chunk = n / shards;
    std::vector<ShardResult> results(shards);
    options.pool->ParallelFor(0, shards, 1, [&](uint64_t sb, uint64_t se) {
      for (uint64_t s = sb; s < se; ++s) {
        const uint64_t begin = chunk * s;
        const uint64_t end = (s + 1 == shards) ? n : begin + chunk;
        RunShard(query, catalog, params, grid, options, begin, end,
                 &results[s]);
      }
    });
    MergeShards(results, chunk, &diagram, &agg);
  } else if (options.pool == nullptr && options.num_threads > 1 &&
             n >= options.min_shard_points) {
    const int threads =
        std::min<int>(options.num_threads,
                      static_cast<int>(std::min<uint64_t>(n, 64)));
    std::vector<ShardResult> results(threads);
    std::vector<std::thread> workers;
    const uint64_t chunk = (n + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      const uint64_t begin = chunk * t;
      const uint64_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      workers.emplace_back(RunShard, std::cref(query), std::cref(catalog),
                           params, std::cref(grid), std::cref(options), begin,
                           end, &results[t]);
    }
    for (auto& w : workers) w.join();
    results.resize(workers.size());
    MergeShards(results, chunk, &diagram, &agg);
  } else {
    // Serial: one shard spanning the whole grid (the fast path sees the
    // longest possible prefix of known plans).
    std::vector<ShardResult> results(1);
    RunShard(query, catalog, params, grid, options, 0, n, &results[0]);
    MergeShards(results, n, &diagram, &agg);
  }

  if (stats != nullptr) {
    *stats = agg;
    stats->optimizer_calls = agg.dp_calls;
    stats->wall_seconds =
        std::chrono::duration<double>(WallNow() - t0)
            .count();
  }
  return diagram;
}

}  // namespace bouquet

#include "ess/posp_generator.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "optimizer/optimizer.h"

namespace bouquet {

namespace {

struct ShardResult {
  // Per point in the shard: signature id into local_plans + cost.
  std::vector<int> local_plan;
  std::vector<double> cost;
  std::vector<Plan> local_plans;
  std::unordered_map<std::string, int> sig_to_local;
  long long calls = 0;
};

void RunShard(const QuerySpec& query, const Catalog& catalog,
              CostParams params, const EssGrid& grid, uint64_t begin,
              uint64_t end, ShardResult* out) {
  QueryOptimizer opt(query, catalog, params);
  out->local_plan.resize(end - begin);
  out->cost.resize(end - begin);
  for (uint64_t i = begin; i < end; ++i) {
    const Plan plan = opt.OptimizeAt(grid.SelectivityAt(i));
    auto it = out->sig_to_local.find(plan.signature);
    int id;
    if (it == out->sig_to_local.end()) {
      id = static_cast<int>(out->local_plans.size());
      out->local_plans.push_back(plan);
      out->sig_to_local.emplace(plan.signature, id);
    } else {
      id = it->second;
    }
    out->local_plan[i - begin] = id;
    out->cost[i - begin] = plan.cost;
  }
  out->calls = static_cast<long long>(end - begin);
}

// Interns shard results into the diagram in linear-shard order. Because a
// plan's global id becomes "first shard containing it, first point within
// that shard" — exactly its first occurrence in linear grid order — the
// merged diagram is identical to a serial run regardless of chunking.
long long MergeShards(const std::vector<ShardResult>& results, uint64_t chunk,
                      PlanDiagram* diagram) {
  long long calls = 0;
  for (size_t t = 0; t < results.size(); ++t) {
    const uint64_t begin = chunk * t;
    const ShardResult& r = results[t];
    std::vector<int> local_to_global(r.local_plans.size());
    for (size_t p = 0; p < r.local_plans.size(); ++p) {
      local_to_global[p] = diagram->InternPlan(r.local_plans[p]);
    }
    for (size_t i = 0; i < r.local_plan.size(); ++i) {
      diagram->Set(begin + i, local_to_global[r.local_plan[i]], r.cost[i]);
    }
    calls += r.calls;
  }
  return calls;
}

}  // namespace

PlanDiagram GeneratePosp(const QuerySpec& query, const Catalog& catalog,
                         CostParams params, const EssGrid& grid,
                         const PospOptions& options, PospStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t n = grid.num_points();

  PlanDiagram diagram(&grid);
  long long calls = 0;

  if (options.pool != nullptr && n >= options.min_shard_points && n > 1) {
    // Pool-backed sharding: enough chunks for load balance, but each chunk
    // large enough to amortize its private optimizer's construction.
    const uint64_t max_shards =
        std::max<uint64_t>(1, 2 * (static_cast<uint64_t>(
                                       options.pool->size()) +
                                   1));
    const uint64_t min_chunk = std::max<uint64_t>(1, options.min_shard_points);
    const uint64_t chunk =
        std::max(min_chunk, (n + max_shards - 1) / max_shards);
    const uint64_t shards = (n + chunk - 1) / chunk;
    std::vector<ShardResult> results(shards);
    options.pool->ParallelFor(0, shards, 1, [&](uint64_t sb, uint64_t se) {
      for (uint64_t s = sb; s < se; ++s) {
        const uint64_t begin = chunk * s;
        const uint64_t end = std::min(n, begin + chunk);
        RunShard(query, catalog, params, grid, begin, end, &results[s]);
      }
    });
    calls = MergeShards(results, chunk, &diagram);
  } else if (options.pool == nullptr && options.num_threads > 1 &&
             n >= options.min_shard_points) {
    const int threads =
        std::min<int>(options.num_threads,
                      static_cast<int>(std::min<uint64_t>(n, 64)));
    std::vector<ShardResult> results(threads);
    std::vector<std::thread> workers;
    const uint64_t chunk = (n + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      const uint64_t begin = chunk * t;
      const uint64_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      workers.emplace_back(RunShard, std::cref(query), std::cref(catalog),
                           params, std::cref(grid), begin, end, &results[t]);
    }
    for (auto& w : workers) w.join();
    results.resize(workers.size());
    calls = MergeShards(results, chunk, &diagram);
  } else {
    QueryOptimizer opt(query, catalog, params);
    for (uint64_t i = 0; i < n; ++i) {
      const Plan plan = opt.OptimizeAt(grid.SelectivityAt(i));
      diagram.Set(i, diagram.InternPlan(plan), plan.cost);
    }
    calls = static_cast<long long>(n);
  }

  if (stats != nullptr) {
    stats->optimizer_calls = calls;
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return diagram;
}

}  // namespace bouquet

#include "ess/dim_analysis.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"
#include "optimizer/optimizer.h"

namespace bouquet {

namespace {

// Lattice values for one dimension: `count` log-spaced points over its range
// (LogSpace pins the endpoints exactly to dim.lo / dim.hi).
std::vector<double> LatticeValues(const ErrorDimension& dim, int count) {
  return LogSpace(dim.lo, dim.hi, count);
}

}  // namespace

std::vector<DimSensitivity> MeasureDimSensitivity(const QuerySpec& query,
                                                  const Catalog& catalog,
                                                  CostParams params,
                                                  int lattice_per_dim) {
  const int dims = query.NumDims();
  QueryOptimizer opt(query, catalog, params);
  std::vector<DimSensitivity> out(dims);

  // Probe budget guard: cap the lattice enumeration per dimension.
  constexpr long long kMaxProbesPerDim = 512;

  for (int d = 0; d < dims; ++d) {
    out[d].dim = d;
    // Enumerate lattice combinations of the other dimensions.
    std::vector<std::vector<double>> other_values;
    for (int e = 0; e < dims; ++e) {
      if (e == d) continue;
      other_values.push_back(
          LatticeValues(query.error_dims[e], lattice_per_dim));
    }
    std::vector<int> idx(other_values.size(), 0);
    long long probes = 0;
    bool done = false;
    while (!done && probes < kMaxProbesPerDim) {
      DimVector point(dims);
      int oi = 0;
      for (int e = 0; e < dims; ++e) {
        if (e == d) continue;
        point[e] = other_values[oi][idx[oi]];
        ++oi;
      }
      point[d] = query.error_dims[d].lo;
      const double c_lo = opt.OptimizeAt(point).cost;
      point[d] = query.error_dims[d].hi;
      const double c_hi = opt.OptimizeAt(point).cost;
      assert(c_lo > 0.0);
      out[d].max_relative_impact =
          std::max(out[d].max_relative_impact, c_hi / c_lo - 1.0);
      ++probes;
      // Odometer over the other dimensions.
      done = true;
      for (size_t k = 0; k < idx.size(); ++k) {
        if (++idx[k] < static_cast<int>(other_values[k].size())) {
          done = false;
          break;
        }
        idx[k] = 0;
      }
      if (idx.empty()) done = true;
    }
  }
  return out;
}

QuerySpec EliminateWeakDimensions(const QuerySpec& query,
                                  const Catalog& catalog, CostParams params,
                                  double threshold, std::vector<int>* removed,
                                  int lattice_per_dim) {
  const std::vector<DimSensitivity> sens =
      MeasureDimSensitivity(query, catalog, params, lattice_per_dim);
  QuerySpec reduced = query;
  reduced.error_dims.clear();
  if (removed != nullptr) removed->clear();
  for (int d = 0; d < query.NumDims(); ++d) {
    if (sens[d].max_relative_impact >= threshold) {
      reduced.error_dims.push_back(query.error_dims[d]);
      continue;
    }
    if (removed != nullptr) removed->push_back(d);
    // Pin the dropped predicate's selectivity at the geometric midpoint of
    // its former range (the cost impact of the choice is below threshold by
    // construction).
    const ErrorDimension& dim = query.error_dims[d];
    const double mid = std::sqrt(dim.lo * dim.hi);
    if (dim.kind == DimKind::kSelection) {
      reduced.filters[dim.predicate_index].default_selectivity = mid;
    } else {
      reduced.joins[dim.predicate_index].default_selectivity = mid;
    }
  }
  return reduced;
}

}  // namespace bouquet

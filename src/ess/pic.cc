#include "ess/pic.h"

namespace bouquet {

long long CountPicViolations(const PlanDiagram& diagram, double tolerance) {
  const EssGrid& grid = diagram.grid();
  long long violations = 0;
  grid.ForEach([&](uint64_t linear, const GridPoint& p) {
    const double c = diagram.cost_at(linear);
    for (int d = 0; d < grid.dims(); ++d) {
      if (p[d] + 1 >= grid.resolution(d)) continue;
      const uint64_t succ = grid.LinearWithDim(linear, d, p[d] + 1);
      if (diagram.cost_at(succ) < c * (1.0 - tolerance)) ++violations;
    }
  });
  return violations;
}

bool IsPicMonotone(const PlanDiagram& diagram, double tolerance) {
  return CountPicViolations(diagram, tolerance) == 0;
}

PicViolation FirstPicViolation(const PlanDiagram& diagram, double tolerance) {
  const EssGrid& grid = diagram.grid();
  PicViolation v;
  grid.ForEach([&](uint64_t linear, const GridPoint& p) {
    if (v.found) return;
    const double c = diagram.cost_at(linear);
    for (int d = 0; d < grid.dims(); ++d) {
      if (p[d] + 1 >= grid.resolution(d)) continue;
      const uint64_t succ = grid.LinearWithDim(linear, d, p[d] + 1);
      const double sc = diagram.cost_at(succ);
      if (sc < c * (1.0 - tolerance)) {
        v.found = true;
        v.point = linear;
        v.dim = d;
        v.cost = c;
        v.successor_cost = sc;
        return;
      }
    }
  });
  return v;
}

std::vector<PicSample> PicSlice(const PlanDiagram& diagram, int dim,
                                const GridPoint& at) {
  const EssGrid& grid = diagram.grid();
  std::vector<PicSample> out;
  out.reserve(grid.resolution(dim));
  GridPoint p = at;
  for (int i = 0; i < grid.resolution(dim); ++i) {
    p[dim] = i;
    const uint64_t linear = grid.LinearIndex(p);
    out.push_back({grid.axis(dim)[i], diagram.cost_at(linear),
                   diagram.plan_at(linear)});
  }
  return out;
}

}  // namespace bouquet

#include "ess/ess_grid.h"

#include <algorithm>
#include <cassert>

#include "common/math_util.h"

namespace bouquet {

EssGrid::EssGrid(const QuerySpec& query, std::vector<int> resolutions) {
  assert(resolutions.size() == query.error_dims.size());
  axes_.reserve(resolutions.size());
  for (size_t d = 0; d < resolutions.size(); ++d) {
    const ErrorDimension& dim = query.error_dims[d];
    axes_.push_back(LogSpace(dim.lo, dim.hi, resolutions[d]));
  }
  strides_.resize(axes_.size());
  num_points_ = 1;
  // Last dimension is the fastest-varying.
  for (int d = static_cast<int>(axes_.size()) - 1; d >= 0; --d) {
    strides_[d] = num_points_;
    num_points_ *= axes_[d].size();
  }
}

EssGrid::EssGrid(const QuerySpec& query, std::vector<int> resolutions,
                 const DimVector& lo, const DimVector& hi) {
  assert(resolutions.size() == query.error_dims.size());
  assert(lo.size() == resolutions.size() && hi.size() == resolutions.size());
  (void)query;
  axes_.reserve(resolutions.size());
  for (size_t d = 0; d < resolutions.size(); ++d) {
    assert(lo[d] > 0.0 && hi[d] > lo[d]);
    axes_.push_back(LogSpace(lo[d], hi[d], resolutions[d]));
  }
  strides_.resize(axes_.size());
  num_points_ = 1;
  for (int d = static_cast<int>(axes_.size()) - 1; d >= 0; --d) {
    strides_[d] = num_points_;
    num_points_ *= axes_[d].size();
  }
}

int EssGrid::DefaultResolutionForDims(int dims) {
  switch (dims) {
    case 1:
      return 100;
    case 2:
      return 64;
    case 3:
      return 20;
    case 4:
      return 12;
    case 5:
      return 8;
    default:
      return 6;
  }
}

EssGrid EssGrid::WithDefaultResolution(const QuerySpec& query) {
  const int d = query.NumDims();
  return EssGrid(query, std::vector<int>(d, DefaultResolutionForDims(d)));
}

DimVector EssGrid::SelectivityAt(const GridPoint& p) const {
  DimVector out(dims());
  for (int d = 0; d < dims(); ++d) out[d] = axes_[d][p[d]];
  return out;
}

DimVector EssGrid::SelectivityAt(uint64_t linear) const {
  return SelectivityAt(PointAt(linear));
}

void EssGrid::SelectivityAt(uint64_t linear, DimVector* out) const {
  out->resize(dims());
  for (int d = 0; d < dims(); ++d) {
    const auto& ax = axes_[d];
    (*out)[d] = ax[linear / strides_[d] % ax.size()];
  }
}

uint64_t EssGrid::LinearIndex(const GridPoint& p) const {
  uint64_t idx = 0;
  for (int d = 0; d < dims(); ++d) {
    assert(p[d] >= 0 && p[d] < resolution(d));
    idx += strides_[d] * static_cast<uint64_t>(p[d]);
  }
  return idx;
}

GridPoint EssGrid::PointAt(uint64_t linear) const {
  GridPoint p(dims());
  for (int d = 0; d < dims(); ++d) {
    p[d] = static_cast<int>(linear / strides_[d]);
    linear %= strides_[d];
  }
  return p;
}

uint64_t EssGrid::LinearWithDim(uint64_t linear, int d, int idx) const {
  const int cur = static_cast<int>(linear / strides_[d] %
                                   static_cast<uint64_t>(resolution(d)));
  return linear + (static_cast<int64_t>(idx) - cur) *
                      static_cast<int64_t>(strides_[d]);
}

int EssGrid::AxisFloor(int d, double s) const {
  const auto& ax = axes_[d];
  const int i = LowerIndex(ax, s);
  return std::max(0, i);
}

int EssGrid::AxisCeil(int d, double s) const {
  const auto& ax = axes_[d];
  auto it = std::lower_bound(ax.begin(), ax.end(), s);
  if (it == ax.end()) return static_cast<int>(ax.size()) - 1;
  return static_cast<int>(it - ax.begin());
}

bool EssGrid::Dominates(const GridPoint& a, const GridPoint& b) {
  assert(a.size() == b.size());
  for (size_t d = 0; d < a.size(); ++d) {
    if (a[d] > b[d]) return false;
  }
  return true;
}

void EssGrid::ForEach(
    const std::function<void(uint64_t, const GridPoint&)>& fn) const {
  GridPoint p(dims(), 0);
  for (uint64_t i = 0; i < num_points_; ++i) {
    fn(i, p);
    // Odometer increment, last dimension fastest.
    for (int d = dims() - 1; d >= 0; --d) {
      if (++p[d] < resolution(d)) break;
      p[d] = 0;
    }
  }
}

GridPoint EssGrid::MaxCorner() const {
  GridPoint p(dims());
  for (int d = 0; d < dims(); ++d) p[d] = resolution(d) - 1;
  return p;
}

}  // namespace bouquet

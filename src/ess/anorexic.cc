#include "ess/anorexic.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>

namespace bouquet {

namespace {

// Lazily computed cost rows: costs[plan][i] = cost of plan at points[i].
class CostCache {
 public:
  CostCache(const PlanDiagram& diagram, QueryOptimizer* opt,
            const std::vector<uint64_t>& points)
      : diagram_(diagram), opt_(opt), points_(points),
        rows_(diagram.num_plans()) {}

  const std::vector<double>& Row(int plan_id) {
    auto& row = rows_[plan_id];
    if (row.empty() && !points_.empty()) {
      row.resize(points_.size());
      const PlanNode& root = *diagram_.plan(plan_id).root;
      for (size_t i = 0; i < points_.size(); ++i) {
        row[i] = opt_->CostPlanAt(root,
                                  diagram_.grid().SelectivityAt(points_[i]));
      }
    }
    return row;
  }

 private:
  const PlanDiagram& diagram_;
  QueryOptimizer* opt_;
  const std::vector<uint64_t>& points_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace

AnorexicResult AnorexicReduce(const PlanDiagram& diagram, QueryOptimizer* opt,
                              double lambda,
                              const std::vector<uint64_t>* points) {
  std::vector<uint64_t> all_points;
  if (points == nullptr) {
    all_points.resize(diagram.grid().num_points());
    std::iota(all_points.begin(), all_points.end(), 0);
    points = &all_points;
  }
  const std::vector<uint64_t>& pts = *points;

  AnorexicResult result;
  result.plan_at.resize(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    result.plan_at[i] = diagram.plan_at(pts[i]);
  }

  // Plans present on the point set, with region sizes.
  std::vector<int> region_size(diagram.num_plans(), 0);
  for (int p : result.plan_at) region_size[p]++;
  std::vector<int> present;
  for (int p = 0; p < diagram.num_plans(); ++p) {
    if (region_size[p] > 0) present.push_back(p);
  }
  result.plans_before = static_cast<int>(present.size());

  // Victims considered smallest-region first (CostGreedy order).
  std::vector<int> order = present;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (region_size[a] != region_size[b]) {
      return region_size[a] < region_size[b];
    }
    return a < b;
  });

  std::set<int> retained(present.begin(), present.end());
  CostCache cache(diagram, opt, pts);

  // Points currently owned by each plan (indices into pts).
  std::vector<std::vector<int>> owned(diagram.num_plans());
  for (size_t i = 0; i < pts.size(); ++i) {
    owned[result.plan_at[i]].push_back(static_cast<int>(i));
  }

  for (int victim : order) {
    if (retained.size() <= 1) break;
    if (owned[victim].empty()) continue;
    // Find, for every owned point, a retained replacement within (1+lambda)
    // of the optimal cost.
    std::vector<int> replacement(owned[victim].size(), -1);
    bool coverable = true;
    for (size_t k = 0; k < owned[victim].size() && coverable; ++k) {
      const int i = owned[victim][k];
      const double budget = (1.0 + lambda) * diagram.cost_at(pts[i]);
      double best_cost = budget;
      for (int cand : retained) {
        if (cand == victim) continue;
        const double c = cache.Row(cand)[i];
        if (c <= best_cost) {
          best_cost = c;
          replacement[k] = cand;
        }
      }
      if (replacement[k] < 0) coverable = false;
    }
    if (!coverable) continue;
    // Swallow: hand every point to its replacement.
    for (size_t k = 0; k < owned[victim].size(); ++k) {
      const int i = owned[victim][k];
      result.plan_at[i] = replacement[k];
      owned[replacement[k]].push_back(i);
    }
    owned[victim].clear();
    retained.erase(victim);
  }

  result.retained.assign(retained.begin(), retained.end());
  result.plans_after = static_cast<int>(result.retained.size());
  return result;
}

}  // namespace bouquet

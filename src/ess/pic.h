// POSP Infimum Curve/Surface (PIC) helpers.
//
// The PIC is the per-point optimal cost stored inside a PlanDiagram; this
// module adds the analyses the bouquet machinery needs: Plan Cost
// Monotonicity validation and 1D profile extraction for plotting.

#ifndef BOUQUET_ESS_PIC_H_
#define BOUQUET_ESS_PIC_H_

#include <vector>

#include "ess/plan_diagram.h"

namespace bouquet {

/// Checks that the PIC is monotone non-decreasing along every +axis
/// direction (the PCM assumption of Section 2). `tolerance` forgives
/// floating-point jitter, relative.
bool IsPicMonotone(const PlanDiagram& diagram, double tolerance = 1e-9);

/// Number of adjacent point pairs violating monotonicity (diagnostics).
long long CountPicViolations(const PlanDiagram& diagram,
                             double tolerance = 1e-9);

/// 1D slice of the PIC along dimension `dim`, holding the other dimensions
/// at the given point's indexes. Returns (selectivity, cost, plan id) rows.
struct PicSample {
  double selectivity;
  double cost;
  int plan_id;
};
std::vector<PicSample> PicSlice(const PlanDiagram& diagram, int dim,
                                const GridPoint& at);

}  // namespace bouquet

#endif  // BOUQUET_ESS_PIC_H_

// POSP Infimum Curve/Surface (PIC) helpers.
//
// The PIC is the per-point optimal cost stored inside a PlanDiagram; this
// module adds the analyses the bouquet machinery needs: Plan Cost
// Monotonicity validation and 1D profile extraction for plotting.

#ifndef BOUQUET_ESS_PIC_H_
#define BOUQUET_ESS_PIC_H_

#include <vector>

#include "ess/plan_diagram.h"

namespace bouquet {

/// Checks that the PIC is monotone non-decreasing along every +axis
/// direction (the PCM assumption of Section 2). `tolerance` forgives
/// floating-point jitter, relative.
bool IsPicMonotone(const PlanDiagram& diagram, double tolerance = 1e-9);

/// Number of adjacent point pairs violating monotonicity (diagnostics).
long long CountPicViolations(const PlanDiagram& diagram,
                             double tolerance = 1e-9);

/// First monotonicity-violating adjacent pair in linear grid order, for
/// failure diagnostics (the property harness reports it verbatim).
struct PicViolation {
  bool found = false;
  uint64_t point = 0;          ///< linear index of the violating point
  int dim = -1;                ///< axis along which the successor is cheaper
  double cost = 0.0;           ///< PIC at `point`
  double successor_cost = 0.0; ///< PIC at the +1 successor on `dim`
};
PicViolation FirstPicViolation(const PlanDiagram& diagram,
                               double tolerance = 1e-9);

/// 1D slice of the PIC along dimension `dim`, holding the other dimensions
/// at the given point's indexes. Returns (selectivity, cost, plan id) rows.
struct PicSample {
  double selectivity;
  double cost;
  int plan_id;
};
std::vector<PicSample> PicSlice(const PlanDiagram& diagram, int dim,
                                const GridPoint& at);

}  // namespace bouquet

#endif  // BOUQUET_ESS_PIC_H_

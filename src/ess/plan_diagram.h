// Plan diagrams: the optimizer's choice and optimal cost at every ESS point.
//
// The cost field doubles as the POSP Infimum Curve/Surface (PIC): since each
// point stores the *optimal* plan's cost, the per-point cost array is exactly
// the infimum over all POSP plan cost surfaces.

#ifndef BOUQUET_ESS_PLAN_DIAGRAM_H_
#define BOUQUET_ESS_PLAN_DIAGRAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ess/ess_grid.h"
#include "optimizer/plan.h"

namespace bouquet {

/// Dense plan diagram over an EssGrid.
class PlanDiagram {
 public:
  /// The grid must outlive the diagram.
  explicit PlanDiagram(const EssGrid* grid);

  const EssGrid& grid() const { return *grid_; }

  /// Interns a plan by signature; returns its stable id.
  int InternPlan(const Plan& plan);

  /// Id of a plan with this signature, or -1.
  int FindPlan(const std::string& signature) const;

  void Set(uint64_t point, int plan_id, double optimal_cost);

  int plan_at(uint64_t point) const { return plan_at_[point]; }
  double cost_at(uint64_t point) const { return cost_at_[point]; }
  const std::vector<double>& costs() const { return cost_at_; }
  const std::vector<int>& assignments() const { return plan_at_; }

  int num_plans() const { return static_cast<int>(plans_.size()); }
  const Plan& plan(int id) const { return plans_[id]; }
  const std::vector<Plan>& plans() const { return plans_; }

  /// Minimum / maximum optimal cost over the space (Cmin, Cmax). By PCM
  /// these are the origin and principal-diagonal corner costs.
  double Cmin() const;
  double Cmax() const;

  /// Fraction of grid points assigned to each plan id.
  std::vector<double> RegionFractions() const;

  /// Overrides the plan assignment (anorexic reduction result). The array
  /// must cover the full grid.
  void SetAssignments(std::vector<int> plan_at);

 private:
  const EssGrid* grid_;
  std::vector<int> plan_at_;
  std::vector<double> cost_at_;
  std::vector<Plan> plans_;
  std::unordered_map<std::string, int> sig_to_id_;
};

}  // namespace bouquet

#endif  // BOUQUET_ESS_PLAN_DIAGRAM_H_

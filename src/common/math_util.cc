#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bouquet {

std::vector<double> LogSpace(double lo, double hi, int count) {
  assert(lo > 0 && lo <= hi && count >= 1);
  std::vector<double> out(count);
  if (count == 1) {
    out[0] = hi;
    return out;
  }
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (int i = 0; i < count; ++i) {
    out[i] = std::exp(llo + (lhi - llo) * double(i) / double(count - 1));
  }
  // Pin endpoints exactly so grid boundaries match the declared range.
  out.front() = lo;
  out.back() = hi;
  return out;
}

std::vector<double> LinSpace(double lo, double hi, int count) {
  assert(lo <= hi && count >= 1);
  std::vector<double> out(count);
  if (count == 1) {
    out[0] = hi;
    return out;
  }
  for (int i = 0; i < count; ++i) {
    out[i] = lo + (hi - lo) * double(i) / double(count - 1);
  }
  out.front() = lo;
  out.back() = hi;
  return out;
}

std::vector<double> GeometricSteps(double cmin, double cmax, double ratio) {
  assert(cmin > 0 && cmax >= cmin && ratio > 1.0);
  // Release-mode guard: ratio is a public knob; ratio <= 1 would divide the
  // ladder into infinitely many steps (and the int cast below is UB on the
  // resulting +inf). Degrade to the single-step ladder {cmax}.
  if (!(ratio > 1.0) || !(cmin > 0.0) || !(cmax >= cmin)) {
    return {cmax};
  }
  // Anchored at IC_m = cmax and walking down by the ratio, the number of
  // steps m must satisfy IC_1/r < cmin <= IC_1 (Section 3.1), i.e.
  // m-1 <= log_r(cmax/cmin) < m: m = floor(t) + 1 (with jitter guard so
  // exact powers of r still satisfy the strict lower bound). Ratios barely
  // above 1 could demand millions of steps; 4096 is far beyond any sane
  // ladder and bounds the allocation.
  const double t = std::log(cmax / cmin) / std::log(ratio);
  const int m = std::min(
      4096, std::max(1, static_cast<int>(std::floor(t + 1e-9)) + 1));
  std::vector<double> steps(m);
  double c = cmax;
  for (int k = m - 1; k >= 0; --k) {
    steps[k] = c;
    c /= ratio;
  }
  return steps;
}

int LowerIndex(const std::vector<double>& sorted, double v) {
  auto it = std::upper_bound(sorted.begin(), sorted.end(), v);
  return static_cast<int>(it - sorted.begin()) - 1;
}

bool ApproxEqual(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

double TheoremOneBound(double ratio) {
  assert(ratio > 1.0);
  return ratio * ratio / (ratio - 1.0);
}

}  // namespace bouquet

#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace bouquet {

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n, '\0');
  vsnprintf(out.data(), n + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string FormatSci(double v, int significant) {
  if (v == 0.0) return "0";
  const double av = std::fabs(v);
  if (av >= 1e-3 && av < 1e5) {
    return StrPrintf("%.*g", significant, v);
  }
  return StrPrintf("%.*e", significant - 1, v);
}

std::string FormatPct(double selectivity, int significant) {
  return StrPrintf("%.*g%%", significant, selectivity * 100.0);
}

}  // namespace bouquet

// Numeric helpers shared across the ESS/bouquet machinery: log-spaced grids
// (selectivity axes are logarithmic, matching the paper's log-log plots) and
// geometric cost-step progressions (the isocost ladder of Section 3.1).

#ifndef BOUQUET_COMMON_MATH_UTIL_H_
#define BOUQUET_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <vector>

namespace bouquet {

/// Returns `count` log-spaced values covering [lo, hi] inclusive.
/// Requires 0 < lo <= hi and count >= 1 (count==1 yields {hi}).
std::vector<double> LogSpace(double lo, double hi, int count);

/// Returns `count` linearly spaced values covering [lo, hi] inclusive.
std::vector<double> LinSpace(double lo, double hi, int count);

/// Geometric isocost ladder of Section 3.1: returns steps IC_1..IC_m with
/// common ratio r such that IC_m == cmax and IC_1 >= cmin > IC_1 / r.
/// Requires cmax >= cmin > 0 and r > 1.
std::vector<double> GeometricSteps(double cmin, double cmax, double ratio);

/// Index of the largest element of `sorted` that is <= v, or -1 if none.
int LowerIndex(const std::vector<double>& sorted, double v);

/// True when |a-b| <= tol * max(1, |a|, |b|).
bool ApproxEqual(double a, double b, double tol = 1e-9);

/// The worst-case multiplier r^2/(r-1) of Theorem 1 for a given ratio.
double TheoremOneBound(double ratio);

}  // namespace bouquet

#endif  // BOUQUET_COMMON_MATH_UTIL_H_

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace bouquet {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void ThreadPool::Post(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    assert(!stopping_ && "Post after ThreadPool destruction began");
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      // Inline predicate loop: both operands are GUARDED_BY(mu_), so the
      // analysis proves the condition-variable predicate runs under the
      // lock (a lambda-based wait would hide that from it).
      while (!stopping_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain the queue before shutting down so fire-and-forget helpers
      // (e.g. ParallelFor stragglers) always run their (no-op) epilogue.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    uint64_t begin, uint64_t end, uint64_t grain,
    const std::function<void(uint64_t, uint64_t)>& body) {
  if (begin >= end) return;
  grain = std::max<uint64_t>(1, grain);
  const uint64_t total = (end - begin + grain - 1) / grain;
  if (total == 1) {
    body(begin, end);
    return;
  }

  struct LoopState {
    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> done{0};
    uint64_t total, begin, end, grain;
    std::function<void(uint64_t, uint64_t)> body;
    // mu orders the final done/cv handshake only; `done` itself is an
    // atomic (acq_rel publishes body effects to the joining waiter), so it
    // carries no GUARDED_BY.
    Mutex mu;
    CondVar cv;
  };
  auto st = std::make_shared<LoopState>();
  st->total = total;
  st->begin = begin;
  st->end = end;
  st->grain = grain;
  st->body = body;

  auto run_chunks = [st] {
    for (;;) {
      const uint64_t c = st->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= st->total) return;
      const uint64_t b = st->begin + c * st->grain;
      const uint64_t e = std::min(st->end, b + st->grain);
      st->body(b, e);
      if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 == st->total) {
        // Lock before notifying: the waiter checks the predicate under mu,
        // so this cannot slip between its check and its block.
        MutexLock lock(&st->mu);
        st->cv.NotifyAll();
      }
    }
  };

  // Helpers are best-effort: the caller claims chunks too, so completion
  // never depends on a helper being scheduled (deadlock-free under nesting).
  const uint64_t helpers =
      std::min<uint64_t>(static_cast<uint64_t>(workers_.size()), total - 1);
  for (uint64_t i = 0; i < helpers; ++i) Post(run_chunks);
  run_chunks();

  MutexLock lock(&st->mu);
  while (st->done.load(std::memory_order_acquire) != st->total) {
    st->cv.Wait(&st->mu);
  }
}

}  // namespace bouquet

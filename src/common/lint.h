// Annotation vocabulary for the bouquet-* domain lint checks (tools/lint/).
//
// The MSO guarantee (paper Theorem 3) survives only while cost-budgeted
// execution is exact and repeatable: the scalar engine, the batch metering
// tape, and the buffer-manager accounting simulation must produce
// bit-identical charged cost, abort points, and page counters. PR 7/8
// enforce that dynamically (differential harness, fuzz gate); the lint
// checks enforce the same invariants at analysis time, and this header is
// the shared vocabulary both enforcement engines key on:
//
//   * the clang-tidy plugin (tools/lint/, loaded with -load) matches the
//     [[clang::annotate("bouquet::…")]] attributes these macros expand to;
//   * the portable engine (tools/lint/bouquet_lint.py, used where Clang
//     dev headers are unavailable) matches the macro tokens themselves.
//
// Under non-Clang compilers the attributes vanish (GCC would warn about the
// unknown scoped attribute under -Wall otherwise); the macros stay visible
// to the portable engine either way, so enforcement never depends on the
// configured compiler.
//
// Statement-granular escapes use the standard clang-tidy comment forms —
// `// NOLINT(bouquet-…): reason` / `// NOLINTNEXTLINE(bouquet-…)` — which
// both engines honor. Every escape must carry a justification; the checks
// and their rationale are cataloged in DESIGN.md §13.

#ifndef BOUQUET_COMMON_LINT_H_
#define BOUQUET_COMMON_LINT_H_

#if defined(__clang__)
#define BOUQUET_LINT_ANNOTATE(tag) [[clang::annotate("bouquet::" tag)]]
#else
#define BOUQUET_LINT_ANNOTATE(tag)
#endif

/// Tags a field as MSO-charge-critical (the CostMeter accumulator, the
/// context page counters). bouquet-charge-order then restricts mutations to
/// single scalar adds (`f += unit`, `++f`) or literal resets (`f = 0`):
/// bulk sums, `std::accumulate`/`std::reduce`, and reassociable compound
/// right-hand sides would change floating-point association, so replayed
/// charges could diverge from the scalar engine's in the last bit — enough
/// to move a budget-abort point across engines.
#define BOUQUET_CHARGED BOUQUET_LINT_ANNOTATE("charged")

/// Escape hatch for bouquet-determinism, placed on the function (or type)
/// whose body legitimately touches a nondeterministic source inside an
/// accounting-critical module. Legitimate means telemetry-only: wall-clock
/// spans, duration stats — values that never feed charged cost, abort
/// decisions, replay state, or anything the differential harness compares.
/// Each use must carry a comment saying why the value cannot reach
/// accounting state.
#define BOUQUET_NONDETERMINISM_OK BOUQUET_LINT_ANNOTATE("nondeterminism_ok")

#endif  // BOUQUET_COMMON_LINT_H_

// Compile-time concurrency contracts: Clang Thread Safety Analysis
// capability wrappers for the concurrent subsystems (thread pool, bouquet
// service/cache, storage index caches).
//
// The raw std::mutex / std::shared_mutex / std::condition_variable types
// carry no static contract: nothing ties a lock to the state it guards, so
// lock-discipline bugs are only caught when TSan happens to execute the
// racing path. The wrappers below attach Clang's capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so that
//
//   * every guarded field names its lock        (GUARDED_BY(mu_)),
//   * every *Locked() helper names its contract (REQUIRES(mu_)),
//   * every acquisition site is checked at compile time,
//
// and a guarded-field access without the guarding capability is a hard
// build error under `-Werror=thread-safety` (the default-ON
// BOUQUET_THREAD_SAFETY CMake option, enforced whenever the compiler is
// Clang; see tests/static/ for the negative-compilation probes that keep
// the gate honest). Under GCC (or with the option OFF) every macro expands
// to nothing and the wrappers are zero-cost aliases for the std types.
//
// Usage mirrors Abseil's Mutex surface:
//
//   class Cache {
//     Mutex mu_;
//     std::map<K, V> entries_ GUARDED_BY(mu_);
//     void EvictLocked() REQUIRES(mu_);
//    public:
//     V* Get(const K& k) {
//       MutexLock lock(&mu_);
//       ...
//     }
//   };
//
// Lock-ordering contracts (ACQUIRED_BEFORE / ACQUIRED_AFTER) are checked by
// the -Wthread-safety-beta group, which we enable as warnings (not errors):
// the beta checks are useful signal but not yet stable enough to gate on.

#ifndef BOUQUET_COMMON_SYNCHRONIZATION_H_
#define BOUQUET_COMMON_SYNCHRONIZATION_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// --------------------------------------------------------------------------
// Attribute macros. Active only under Clang with the thread-safety
// attributes available; no-ops everywhere else (GCC, MSVC, analyzers that
// do not know the attributes).
// --------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BOUQUET_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef BOUQUET_THREAD_ANNOTATION_
#define BOUQUET_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a class as a capability (lockable) type; `x` is the capability
/// kind shown in diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) BOUQUET_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY BOUQUET_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define GUARDED_BY(x) BOUQUET_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define PT_GUARDED_BY(x) BOUQUET_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function precondition: caller holds the capability exclusively.
#define REQUIRES(...) \
  BOUQUET_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function precondition: caller holds the capability at least shared.
#define REQUIRES_SHARED(...) \
  BOUQUET_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively (and did not hold it).
#define ACQUIRE(...) \
  BOUQUET_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared.
#define ACQUIRE_SHARED(...) \
  BOUQUET_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the (exclusive or shared) capability.
#define RELEASE(...) \
  BOUQUET_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a shared hold of the capability.
#define RELEASE_SHARED(...) \
  BOUQUET_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  BOUQUET_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Function acquires the capability shared iff it returns `b`.
#define TRY_ACQUIRE_SHARED(b, ...) \
  BOUQUET_THREAD_ANNOTATION_(try_acquire_shared_capability(b, __VA_ARGS__))

/// Function must be called with the capability *not* held (deadlock guard).
#define EXCLUDES(...) BOUQUET_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) BOUQUET_THREAD_ANNOTATION_(lock_returned(x))

/// Declares this capability must be acquired before the named ones
/// (checked by -Wthread-safety-beta).
#define ACQUIRED_BEFORE(...) \
  BOUQUET_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Declares this capability must be acquired after the named ones.
#define ACQUIRED_AFTER(...) \
  BOUQUET_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define ASSERT_CAPABILITY(x) BOUQUET_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Use only where the
/// discipline is real but inexpressible (and say why in a comment).
#define NO_THREAD_SAFETY_ANALYSIS \
  BOUQUET_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace bouquet {

// --------------------------------------------------------------------------
// Capability types.
// --------------------------------------------------------------------------

/// std::mutex carrying the "mutex" capability. Prefer MutexLock over
/// manual Lock/Unlock pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex carrying the "shared_mutex" capability: exclusive
/// writers, concurrent readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// --------------------------------------------------------------------------
// RAII holders.
// --------------------------------------------------------------------------

/// Scoped exclusive hold of a Mutex (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped exclusive hold of a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped shared (reader) hold of a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// --------------------------------------------------------------------------
// Condition variable bound to Mutex.
// --------------------------------------------------------------------------

/// std::condition_variable over Mutex. Waits require the capability, so the
/// classic bug — a wait predicate reading guarded state without the lock —
/// is a compile error:
///
///   MutexLock lock(&mu_);
///   while (!stopping_ && queue_.empty()) cv_.Wait(&mu_);
///
/// (Write the predicate loop inline as above rather than behind a lambda:
/// the analysis does not propagate capabilities into lambda bodies.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the re-acquired mutex
  }

  /// Wait with a relative timeout (deadline-driven loops, e.g. the net
  /// router's batch-window dispatcher). Returns false on timeout. Like
  /// Wait, the mutex is re-acquired before returning either way, so the
  /// caller must still re-check its predicate.
  bool WaitFor(Mutex* mu, std::chrono::nanoseconds timeout) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(lock, timeout);
    lock.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bouquet

#endif  // BOUQUET_COMMON_SYNCHRONIZATION_H_

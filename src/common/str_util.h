// Small string/formatting helpers used by reports and plan signatures.

#ifndef BOUQUET_COMMON_STR_UTIL_H_
#define BOUQUET_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace bouquet {

/// Joins the pieces with the separator ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep);

/// Formats a double compactly in scientific-ish style ("1.2e+04", "3.46").
std::string FormatSci(double v, int significant = 3);

/// Formats a selectivity as a percentage string ("0.015%", "6.5%").
std::string FormatPct(double selectivity, int significant = 3);

/// printf-style formatting into std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace bouquet

#endif  // BOUQUET_COMMON_STR_UTIL_H_

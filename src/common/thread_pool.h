// Fixed-size thread pool shared by the service layer, parallel POSP
// generation, and the benches.
//
// Design notes:
//   * The pool is deliberately work-stealing-free: a single FIFO queue plus
//     N workers keeps behavior easy to reason about under sanitizers.
//   * `ParallelFor` is safe to call from inside a pool task: the calling
//     thread claims and executes chunks itself, so the loop completes even
//     when every worker is busy (helpers that arrive late become no-ops).
//     This is what lets a BouquetService request running *on* the pool
//     compile a POSP grid *across* the pool without deadlocking.
//   * Thread counts are honored exactly (no hardware_concurrency clamp):
//     determinism tests rely on real sharding even on single-core machines.
//
// Thread-safety contract: Post/Submit/ParallelFor may be called from any
// thread, including pool workers. Tasks must not block waiting for a task
// queued *behind* them (use ParallelFor, whose caller self-executes, for
// fork/join patterns). The destructor drains already-queued tasks, then
// joins. The queue and stop flag are GUARDED_BY(mu_) — the lock discipline
// is enforced at compile time via common/synchronization.h, not just by
// TSan at runtime.

#ifndef BOUQUET_COMMON_THREAD_POOL_H_
#define BOUQUET_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/synchronization.h"

namespace bouquet {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped below at 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Tasks queued but not yet claimed by a worker. A point-in-time reading
  /// for backlog gauges (service_queue_depth); it is stale by the time the
  /// caller looks at it and must not be used for control flow.
  size_t queue_depth() const;

  /// Fire-and-forget task submission.
  void Post(std::function<void()> task);

  /// Task submission with a future for the result.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    Post([task] { (*task)(); });
    return fut;
  }

  /// Splits [begin, end) into chunks of at most `grain` indexes and runs
  /// `body(chunk_begin, chunk_end)` across the pool *and* the calling
  /// thread. Returns once every chunk has finished. Chunk boundaries are
  /// deterministic: chunk c covers [begin + c*grain, begin + (c+1)*grain).
  /// `body` must be safe to invoke concurrently on disjoint chunks.
  void ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                   const std::function<void(uint64_t, uint64_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
};

}  // namespace bouquet

#endif  // BOUQUET_COMMON_THREAD_POOL_H_

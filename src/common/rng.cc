#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace bouquet {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  assert(n > 0);
  if (theta <= 0.0) return 1 + NextUint64(n);
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    double zetan = 0.0;
    // Exact zeta for small n, Euler-Maclaurin approximation for large n.
    if (n <= 10000) {
      for (uint64_t i = 1; i <= n; ++i) zetan += 1.0 / std::pow(double(i), theta);
    } else {
      for (uint64_t i = 1; i <= 10000; ++i) {
        zetan += 1.0 / std::pow(double(i), theta);
      }
      if (theta != 1.0) {
        zetan += (std::pow(double(n), 1.0 - theta) -
                  std::pow(10000.0, 1.0 - theta)) /
                 (1.0 - theta);
      } else {
        zetan += std::log(double(n) / 10000.0);
      }
    }
    zipf_zetan_ = zetan;
    zipf_alpha_ = 1.0 / (1.0 - theta);
    double zeta2 = 1.0 + (theta == 1.0 ? 0.5 : std::pow(2.0, -theta));
    zipf_eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
                (1.0 - zeta2 / zetan);
  }
  // Gray et al. "Quickly generating billion-record synthetic databases".
  const double u = NextDouble();
  const double uz = u * zipf_zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, zipf_theta_)) return 2;
  const uint64_t v = 1 + static_cast<uint64_t>(
                             double(zipf_n_) *
                             std::pow(zipf_eta_ * u - zipf_eta_ + 1.0,
                                      zipf_alpha_));
  return v > zipf_n_ ? zipf_n_ : v;
}

double Rng::NextGaussian(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_spare_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  gauss_spare_ = mag * std::sin(2.0 * M_PI * u2);
  have_gauss_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(NextUint64(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace bouquet

// Lightweight Status / Result<T> error-propagation types.
//
// The library avoids exceptions on engine paths (optimizer, executor): fallible
// public entry points return Result<T>, and internal executor operators use
// explicit status enums. Result<T> is a minimal StatusOr-style wrapper.

#ifndef BOUQUET_COMMON_STATUS_H_
#define BOUQUET_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace bouquet {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

/// Error-or-success outcome of an operation that returns no value.
///
/// [[nodiscard]]: silently dropping a Status swallows the only error signal
/// a fallible call emits (the library is exception-free by policy). The
/// compiler flags discarded values under -Wall/-Wunused-result, and the
/// bouquet-discarded-status lint check (tools/lint/) enforces the same rule
/// across every translation unit including casts-to-void escape attempts.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_.empty() ? "error" : message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error wrapper; holds T on success, Status otherwise.
/// [[nodiscard]] for the same reason as Status: a dropped Result<T> hides
/// both the error and the value the caller asked for.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors absl::StatusOr.
  Result(T value) : data_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).ok() && "Result given OK status, no value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace bouquet

#endif  // BOUQUET_COMMON_STATUS_H_

// Deterministic pseudo-random number generation for data generators and
// randomized tests. All generators in the library are seeded explicitly so
// every experiment is exactly repeatable (a property the paper emphasizes).

#ifndef BOUQUET_COMMON_RNG_H_
#define BOUQUET_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace bouquet {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// Used instead of <random> engines so that generated datasets are identical
/// across standard-library implementations.
///
/// Thread-safety: NOT thread-safe — every draw mutates `state_` (and the
/// Zipf/Gaussian caches). Use one Rng per thread, derived from a base seed
/// (e.g. `Rng(seed + worker_index)`); never share an instance across
/// concurrent workers, or determinism *and* data-race freedom are lost.
/// Nothing on the parallel POSP path uses an Rng: generation touches only
/// const query/catalog/grid state plus per-shard optimizers (audited for
/// the concurrent service layer).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p);

  /// Zipf-distributed value in [1, n] with exponent theta (theta=0 uniform).
  /// Uses the rejection-inversion free approximation via precomputed CDF for
  /// small n, harmonic approximation otherwise.
  uint64_t NextZipf(uint64_t n, double theta);

  /// Gaussian with given mean/stddev (Box-Muller).
  double NextGaussian(double mean, double stddev);

  /// Returns a shuffled copy of [0, n).
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t state_[4];
  // Cached Zipf parameters so consecutive draws with same (n, theta) reuse
  // the normalization constant.
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zipf_zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
  bool have_gauss_ = false;
  double gauss_spare_ = 0.0;
};

}  // namespace bouquet

#endif  // BOUQUET_COMMON_RNG_H_

#include "feedback/feedback_store.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/str_util.h"

namespace bouquet {
namespace {

constexpr char kHeader[] = "# bouquet-feedback v1";

// FNV-1a 64 over the record body; the same construction template_key.cc
// uses for template hashes. Local copy to keep feedback/ below service/ in
// the layering.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string Checksummed(const std::string& body) {
  return body + StrPrintf(" %016llx\n",
                          static_cast<unsigned long long>(Fnv1a(body)));
}

// Splits a whitespace-separated line into tokens.
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

bool ParseHex64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 16);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

// Hex-float (%a) parse for exact selectivity round-trip.
bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

FeedbackStore::FeedbackStore() = default;

FeedbackStore::FeedbackStore(std::string path) : path_(std::move(path)) {}

Result<std::unique_ptr<FeedbackStore>> FeedbackStore::Open(
    const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("feedback store path is empty");
  }
  std::unique_ptr<FeedbackStore> store(new FeedbackStore(path));
  Status s = store->Recover();
  if (!s.ok()) return s;
  // A torn tail was dropped during replay: compact immediately so the
  // garbage cannot shadow (or corrupt the parse of) future appends.
  if (store->dropped_records_.load(std::memory_order_relaxed) > 0) {
    s = store->Compact();
    if (!s.ok()) return s;
  }
  MutexLock lock(&store->log_mu_);
  store->log_ = std::fopen(path.c_str(), "a");
  if (store->log_ == nullptr) {
    return Status::Internal(
        StrPrintf("feedback store: cannot open '%s' for append: %s",
                  path.c_str(), std::strerror(errno)));
  }
  if (std::ftell(store->log_) == 0) {
    std::fprintf(store->log_, "%s\n", kHeader);
    std::fflush(store->log_);
  }
  return store;
}

FeedbackStore::~FeedbackStore() {
  if (file_backed()) {
    // Snapshot-compact on shutdown (ISSUE contract); best-effort.
    Compact().ok();
  }
  MutexLock lock(&log_mu_);
  if (log_ != nullptr) {
    std::fclose(log_);
    log_ = nullptr;
  }
}

void FeedbackStore::Absorb(uint64_t hash, const DimVector& sels,
                           int final_contour) {
  Shard& shard = ShardFor(hash);
  MutexLock lock(&shard.mu);
  TemplateFeedback& fb = shard.templates[hash];
  if (fb.support.empty()) {
    fb.support.resize(sels.size());
    for (size_t d = 0; d < sels.size(); ++d) {
      fb.support[d] = {sels[d], sels[d]};
    }
  } else if (fb.support.size() == sels.size()) {
    for (size_t d = 0; d < sels.size(); ++d) {
      if (sels[d] < fb.support[d].lo) fb.support[d].lo = sels[d];
      if (sels[d] > fb.support[d].hi) fb.support[d].hi = sels[d];
    }
  } else {
    // Dimensionality changed under the same hash (should be impossible —
    // the template key encodes the ESS shape); keep the first shape.
    return;
  }
  ++fb.observations;
  if (final_contour > fb.max_final_contour) {
    fb.max_final_contour = final_contour;
  }
}

Status FeedbackStore::Record(const FeedbackObservation& obs) {
  if (obs.selectivities.empty()) {
    return Status::InvalidArgument("feedback observation has no dimensions");
  }
  for (double s : obs.selectivities) {
    if (!std::isfinite(s) || s <= 0.0) {
      return Status::InvalidArgument(
          "feedback observation has a non-finite or non-positive "
          "selectivity");
    }
  }
  Absorb(obs.template_hash, obs.selectivities, obs.final_contour);
  records_.fetch_add(1, std::memory_order_relaxed);
  if (!file_backed()) return Status::Ok();

  std::string body =
      StrPrintf("obs %016llx %d %d",
                static_cast<unsigned long long>(obs.template_hash),
                obs.final_contour,
                static_cast<int>(obs.selectivities.size()));
  for (double s : obs.selectivities) body += StrPrintf(" %a", s);
  return AppendLine(body);
}

Status FeedbackStore::AppendLine(const std::string& body) {
  const std::string line = Checksummed(body);
  MutexLock lock(&log_mu_);
  if (log_ == nullptr) return Status::Ok();  // recovery/compaction window
  if (std::fwrite(line.data(), 1, line.size(), log_) != line.size()) {
    return Status::Internal("feedback store: log append failed");
  }
  std::fflush(log_);
  log_appends_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

bool FeedbackStore::Lookup(uint64_t template_hash,
                           TemplateFeedback* out) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const Shard& shard = ShardFor(template_hash);
  MutexLock lock(&shard.mu);
  auto it = shard.templates.find(template_hash);
  if (it == shard.templates.end() || it->second.support.empty()) {
    return false;
  }
  if (out != nullptr) *out = it->second;
  lookup_hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status FeedbackStore::Recover() {
  std::FILE* f = std::fopen(path_.c_str(), "r");
  if (f == nullptr) return Status::Ok();  // fresh store
  std::string line;
  bool corrupt = false;
  uint64_t recovered = 0, dropped = 0;
  int ch;
  while (!corrupt) {
    line.clear();
    while ((ch = std::fgetc(f)) != EOF && ch != '\n') {
      line.push_back(static_cast<char>(ch));
    }
    const bool at_eof = (ch == EOF);
    if (line.empty() && at_eof) break;
    // A final line without a terminating newline is a torn append.
    if (at_eof) {
      corrupt = true;
      ++dropped;
      break;
    }
    if (line.empty() || line[0] == '#') continue;
    // Strip and verify the trailing checksum field.
    const size_t sp = line.find_last_of(' ');
    uint64_t want = 0;
    if (sp == std::string::npos || !ParseHex64(line.substr(sp + 1), &want) ||
        Fnv1a(line.substr(0, sp)) != want) {
      corrupt = true;
      ++dropped;
      break;
    }
    const std::vector<std::string> tok = Tokens(line.substr(0, sp));
    bool ok = false;
    if (tok.size() >= 4 && (tok[0] == "obs" || tok[0] == "tpl")) {
      uint64_t hash = 0;
      long contour = 0, dims = 0;
      if (tok[0] == "obs" && ParseHex64(tok[1], &hash) &&
          ParseInt(tok[2], &contour) && ParseInt(tok[3], &dims) &&
          dims > 0 && tok.size() == static_cast<size_t>(4 + dims)) {
        DimVector sels(static_cast<size_t>(dims));
        ok = true;
        for (long d = 0; d < dims && ok; ++d) {
          ok = ParseDouble(tok[static_cast<size_t>(4 + d)], &sels[d]);
        }
        if (ok) Absorb(hash, sels, static_cast<int>(contour));
      } else if (tok[0] == "tpl" && tok.size() >= 5) {
        long obs_count = 0;
        if (ParseHex64(tok[1], &hash) && ParseInt(tok[2], &obs_count) &&
            ParseInt(tok[3], &contour) && ParseInt(tok[4], &dims) &&
            dims > 0 && obs_count > 0 &&
            tok.size() == static_cast<size_t>(5 + 2 * dims)) {
          TemplateFeedback fb;
          fb.observations = static_cast<uint64_t>(obs_count);
          fb.max_final_contour = static_cast<int>(contour);
          fb.support.resize(static_cast<size_t>(dims));
          ok = true;
          for (long d = 0; d < dims && ok; ++d) {
            ok = ParseDouble(tok[static_cast<size_t>(5 + 2 * d)],
                             &fb.support[static_cast<size_t>(d)].lo) &&
                 ParseDouble(tok[static_cast<size_t>(6 + 2 * d)],
                             &fb.support[static_cast<size_t>(d)].hi);
          }
          if (ok) {
            Shard& shard = ShardFor(hash);
            MutexLock lock(&shard.mu);
            TemplateFeedback& dst = shard.templates[hash];
            if (dst.support.empty()) {
              dst = fb;
            } else if (dst.support.size() == fb.support.size()) {
              dst.observations += fb.observations;
              if (fb.max_final_contour > dst.max_final_contour) {
                dst.max_final_contour = fb.max_final_contour;
              }
              for (size_t d = 0; d < fb.support.size(); ++d) {
                if (fb.support[d].lo < dst.support[d].lo) {
                  dst.support[d].lo = fb.support[d].lo;
                }
                if (fb.support[d].hi > dst.support[d].hi) {
                  dst.support[d].hi = fb.support[d].hi;
                }
              }
            }
          }
        }
      }
    }
    if (!ok) {
      // Structurally valid checksum over an unparseable body: still a
      // corrupt record; stop here like any torn tail.
      corrupt = true;
      ++dropped;
      break;
    }
    ++recovered;
  }
  if (corrupt) {
    // Count the unread remainder of the file as dropped too.
    while ((ch = std::fgetc(f)) != EOF) {
      if (ch == '\n') ++dropped;
    }
  }
  std::fclose(f);
  recovered_records_.store(recovered, std::memory_order_relaxed);
  dropped_records_.store(dropped, std::memory_order_relaxed);
  return Status::Ok();
}

Status FeedbackStore::Compact() {
  if (!file_backed()) return Status::Ok();
  const std::string tmp = path_ + ".tmp";
  // Hold the log mutex across the whole snapshot+rename so concurrent
  // Record() appends land either in the old log (rewritten away, but
  // already folded into the in-memory aggregates we snapshot) or in the
  // reopened one. Shard mutexes are only ever taken *under* log_mu_ here
  // (Record takes them disjointly, never the other way), so the order is
  // acyclic.
  MutexLock lock(&log_mu_);
  std::FILE* out = std::fopen(tmp.c_str(), "w");
  if (out == nullptr) {
    return Status::Internal(
        StrPrintf("feedback store: cannot open '%s': %s", tmp.c_str(),
                  std::strerror(errno)));
  }
  std::fprintf(out, "%s\n", kHeader);
  for (Shard& shard : shards_) {
    MutexLock shard_lock(&shard.mu);
    for (const auto& [hash, fb] : shard.templates) {
      if (fb.support.empty()) continue;
      std::string body =
          StrPrintf("tpl %016llx %llu %d %d",
                    static_cast<unsigned long long>(hash),
                    static_cast<unsigned long long>(fb.observations),
                    fb.max_final_contour,
                    static_cast<int>(fb.support.size()));
      for (const DimSupport& s : fb.support) {
        body += StrPrintf(" %a %a", s.lo, s.hi);
      }
      const std::string line = Checksummed(body);
      std::fwrite(line.data(), 1, line.size(), out);
    }
  }
  if (std::fflush(out) != 0) {
    std::fclose(out);
    std::remove(tmp.c_str());
    return Status::Internal("feedback store: compaction flush failed");
  }
  std::fclose(out);
  if (log_ != nullptr) {
    std::fclose(log_);
    log_ = nullptr;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(
        StrPrintf("feedback store: rename '%s' -> '%s' failed: %s",
                  tmp.c_str(), path_.c_str(), std::strerror(errno)));
  }
  log_ = std::fopen(path_.c_str(), "a");
  if (log_ == nullptr) {
    return Status::Internal("feedback store: reopen after compaction failed");
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

FeedbackStoreStats FeedbackStore::stats() const {
  FeedbackStoreStats s;
  s.records = records_.load(std::memory_order_relaxed);
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.lookup_hits = lookup_hits_.load(std::memory_order_relaxed);
  s.log_appends = log_appends_.load(std::memory_order_relaxed);
  s.recovered_records = recovered_records_.load(std::memory_order_relaxed);
  s.dropped_records = dropped_records_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    s.templates += shard.templates.size();
  }
  return s;
}

}  // namespace bouquet

// Warm-start and ESS-box-shrinking policy derived from feedback.
//
// Warm start is a pure contour skip. The ladder normally climbs from
// contour 0; with feedback we seed it at the contour whose budget already
// covers the optimal cost at a conservative "seed" location (the per-dim
// observed *minimum* selectivity), minus a safety margin. q_run still
// starts at the dimension lows, so plan pruning and selectivity discovery
// are untouched — only the cheap prefix of the ladder is skipped.
//
// Safety (the clamp argument; see DESIGN.md §14):
//   * Completion is unconditional. Every grid location inside the region of
//     contour j is dominated by some contour-j frontier point p (the
//     coverage property contours.h documents), and by plan cost monotonicity
//     plus the anorexic swallow bound, cost_P(q_a) <= cost_P(p) <=
//     (1+lambda)·IC_j — so even a mispredicted warm start completes at its
//     starting contour.
//   * The Theorem-3 MSO bound is preserved whenever the seed is dominated by
//     the actual location q_a: then C(seed) <= PIC(q_a), so the start
//     contour is at most band(q_a) and the warm run is exactly the cold
//     run's tail — total cost can only shrink. The per-dim *minimum*
//     observed selectivity makes the seed maximally likely to be dominated;
//     the safety margin backs it off further. Both cases are enforced by the
//     warm_start property-harness oracle (src/testing/oracles.h).
//
// Box shrinking reuses the same support: the compile-time ESS box tightens
// to the observed [lo, hi] inflated by a multiplicative guard band and
// clamped into the declared range, with resolutions scaled down
// proportionally to the shrunken log-range. The template cache key stays
// the ORIGINAL query's key (the signature encodes declared ranges), so a
// shrunken compile is an internal optimization, invisible to lookups.

#ifndef BOUQUET_FEEDBACK_WARM_START_H_
#define BOUQUET_FEEDBACK_WARM_START_H_

#include <vector>

#include "bouquet/bouquet.h"
#include "feedback/feedback_store.h"
#include "optimizer/selectivity.h"
#include "query/query_spec.h"

namespace bouquet {

struct WarmStartPolicy {
  /// Observations required before feedback is acted on at all.
  uint64_t min_observations = 3;
  /// Contours to back off below the learned start (>= 0).
  int safety_margin = 1;
  /// Multiplicative inflation of the observed support before box
  /// shrinking: [lo/guard_band, hi*guard_band], clamped into the declared
  /// range. Must be >= 1.
  double guard_band = 4.0;
  /// Enables warm-started contour search.
  bool warm_contours = true;
  /// Enables compile-time ESS-box shrinking.
  bool shrink_box = true;
  /// Floor for shrunken per-dimension grid resolutions.
  int min_resolution = 4;
};

/// Shrunken per-dimension selectivity bounds for an EssGrid compile.
struct EssBox {
  DimVector lo;
  DimVector hi;
};

/// Derives the conservative warm-start seed (per-dim observed minimum
/// selectivity). Returns false when the feedback is unusable: too few
/// observations, empty/degenerate support, or no completed run on record.
bool WarmStartSeed(const TemplateFeedback& fb, const WarmStartPolicy& policy,
                   DimVector* seed);

/// First contour whose budget covers `seed_cost`, minus `safety_margin`,
/// clamped to [0, contours). Returns 0 when seed_cost is non-finite or no
/// contour covers it (cold start).
int WarmStartContour(const PlanBouquet& bouquet, double seed_cost,
                     int safety_margin);

/// Computes the shrunken ESS box: observed support inflated by the guard
/// band and clamped into the declared [lo, hi]. Returns false (and leaves
/// *box empty) when feedback is unusable or no dimension actually shrinks.
bool ShrunkenBox(const QuerySpec& query, const TemplateFeedback& fb,
                 const WarmStartPolicy& policy, EssBox* box);

/// Scales per-dimension resolutions down proportionally to the shrunken
/// log-range: res' = max(min_resolution, ceil(res * logratio)). Keeps the
/// grid density (points per decade) roughly constant.
std::vector<int> ShrunkenResolutions(const QuerySpec& query,
                                     const EssBox& box,
                                     const std::vector<int>& resolutions,
                                     int min_resolution);

}  // namespace bouquet

#endif  // BOUQUET_FEEDBACK_WARM_START_H_

// Cross-query selectivity feedback store (ROADMAP item 5).
//
// Production traffic repeats: the same query template arrives many times
// with different constants, and every bouquet run *discovers* selectivity
// information (q_run outcomes, final contour reached) that the next request
// for the same template can exploit. This store records those outcomes per
// template key — aggregated as per-ESS-dimension observed selectivity
// support [lo, hi], observation count, and the maximum final contour — and
// serves them back to the service layer, which uses them to
//
//   (a) warm-start the contour ladder (src/feedback/warm_start.h),
//   (b) shrink the compile-time ESS box to the observed support, and
//   (c) report learned-vs-robust baselines in bench_feedback.
//
// Concurrency: a sharded in-memory map (16 shards keyed by template hash)
// with one Mutex per shard, annotated per the src/common/synchronization.h
// capability contract. The on-disk log has its own mutex; Record() updates
// memory and appends to the log under *disjoint* critical sections (no lock
// nesting), so a crash between the two loses at most the last observation —
// the log is redundancy, not the source of truth for the running process.
//
// Durability: an append-only text log, one checksummed record per line
// (serialize.cc idiom: space-separated fields, '#' comments, hex floats for
// exact round-trip). Recovery is truncation-tolerant in the WAL sense: replay
// stops at the first malformed or checksum-failing line and everything after
// it is dropped (a torn tail means later bytes are suspect). Compact()
// snapshots the aggregated state to <path>.tmp and renames it over the log,
// purging any recovered-around garbage; the destructor compacts on shutdown.

#ifndef BOUQUET_FEEDBACK_FEEDBACK_STORE_H_
#define BOUQUET_FEEDBACK_FEEDBACK_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "optimizer/selectivity.h"

namespace bouquet {

/// Observed selectivity support on one ESS dimension: the min/max actual
/// selectivity seen across all recorded runs of a template.
struct DimSupport {
  double lo = 0.0;
  double hi = 0.0;
};

/// Aggregated feedback for one template key.
struct TemplateFeedback {
  uint64_t observations = 0;
  /// Largest final contour any recorded run completed at; -1 when no
  /// recorded run completed on the ladder (fallback/native only).
  int max_final_contour = -1;
  /// Per-ESS-dimension observed selectivity support.
  std::vector<DimSupport> support;
};

/// One run outcome to record: the discovered (or actual) selectivities and
/// the contour the run completed at (-1 if it never completed a contour).
struct FeedbackObservation {
  uint64_t template_hash = 0;
  DimVector selectivities;
  int final_contour = -1;
};

struct FeedbackStoreStats {
  uint64_t records = 0;
  uint64_t lookups = 0;
  uint64_t lookup_hits = 0;
  uint64_t templates = 0;
  uint64_t log_appends = 0;
  uint64_t recovered_records = 0;  ///< replayed from the log at Open()
  uint64_t dropped_records = 0;    ///< torn/corrupt tail lines dropped
  uint64_t compactions = 0;
};

class FeedbackStore {
 public:
  /// Memory-only store (no durability); always usable.
  FeedbackStore();

  /// Opens (or creates) a file-backed store at `path`, replaying any
  /// existing log with truncation-tolerant recovery. If the replay dropped
  /// corrupt records the log is immediately compacted so the garbage tail
  /// cannot shadow future appends.
  static Result<std::unique_ptr<FeedbackStore>> Open(const std::string& path);

  /// Compacts (when file-backed) and closes the log.
  ~FeedbackStore();

  FeedbackStore(const FeedbackStore&) = delete;
  FeedbackStore& operator=(const FeedbackStore&) = delete;

  /// Records one run outcome: folds it into the in-memory aggregate and,
  /// when file-backed, appends a checksummed `obs` line to the log.
  /// Rejects observations with empty or non-finite selectivities.
  Status Record(const FeedbackObservation& obs);

  /// Fetches the aggregate for a template; returns false when the template
  /// has never been observed (or dimensionality is unknown).
  bool Lookup(uint64_t template_hash, TemplateFeedback* out) const;

  /// Snapshot-compacts the log: writes one aggregated `tpl` line per
  /// template to <path>.tmp and renames it over the log. No-op (OK) for
  /// memory-only stores.
  Status Compact();

  bool file_backed() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  FeedbackStoreStats stats() const;

 private:
  static constexpr int kNumShards = 16;

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, TemplateFeedback> templates GUARDED_BY(mu);
  };

  explicit FeedbackStore(std::string path);

  Shard& ShardFor(uint64_t hash) {
    return shards_[hash % kNumShards];
  }
  const Shard& ShardFor(uint64_t hash) const {
    return shards_[hash % kNumShards];
  }

  /// Folds one observation into the in-memory aggregate.
  void Absorb(uint64_t hash, const DimVector& sels, int final_contour);

  /// Replays the log at path_; returns recovered/dropped counts via stats.
  Status Recover();

  Status AppendLine(const std::string& body) EXCLUDES(log_mu_);

  std::string path_;
  Mutex log_mu_;
  std::FILE* log_ GUARDED_BY(log_mu_) = nullptr;

  Shard shards_[kNumShards];

  std::atomic<uint64_t> records_{0};
  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> lookup_hits_{0};
  std::atomic<uint64_t> log_appends_{0};
  std::atomic<uint64_t> recovered_records_{0};
  std::atomic<uint64_t> dropped_records_{0};
  std::atomic<uint64_t> compactions_{0};
};

}  // namespace bouquet

#endif  // BOUQUET_FEEDBACK_FEEDBACK_STORE_H_

#include "feedback/warm_start.h"

#include <algorithm>
#include <cmath>

namespace bouquet {

bool WarmStartSeed(const TemplateFeedback& fb, const WarmStartPolicy& policy,
                   DimVector* seed) {
  if (fb.observations < policy.min_observations) return false;
  if (fb.support.empty()) return false;
  if (fb.max_final_contour < 0) return false;  // nothing ever completed
  DimVector s(fb.support.size());
  for (size_t d = 0; d < fb.support.size(); ++d) {
    const double lo = fb.support[d].lo;
    if (!std::isfinite(lo) || lo <= 0.0) return false;
    s[d] = lo;  // per-dim observed minimum: maximally likely dominated
  }
  if (seed != nullptr) *seed = std::move(s);
  return true;
}

int WarmStartContour(const PlanBouquet& bouquet, double seed_cost,
                     int safety_margin) {
  if (!std::isfinite(seed_cost) || seed_cost <= 0.0) return 0;
  if (bouquet.contours.empty()) return 0;
  constexpr double kEps = 1e-12;  // same slack BandOf uses
  int band = static_cast<int>(bouquet.contours.size()) - 1;
  for (size_t k = 0; k < bouquet.contours.size(); ++k) {
    if (seed_cost <= bouquet.contours[k].step_cost * (1.0 + kEps)) {
      band = static_cast<int>(k);
      break;
    }
  }
  return std::max(0, band - std::max(0, safety_margin));
}

bool ShrunkenBox(const QuerySpec& query, const TemplateFeedback& fb,
                 const WarmStartPolicy& policy, EssBox* box) {
  if (box != nullptr) {
    box->lo.clear();
    box->hi.clear();
  }
  if (fb.observations < policy.min_observations) return false;
  if (fb.support.size() != static_cast<size_t>(query.NumDims())) return false;
  const double band = std::max(1.0, policy.guard_band);
  EssBox out;
  out.lo.resize(fb.support.size());
  out.hi.resize(fb.support.size());
  bool any_shrunk = false;
  for (size_t d = 0; d < fb.support.size(); ++d) {
    const ErrorDimension& dim = query.error_dims[d];
    double lo = fb.support[d].lo / band;
    double hi = fb.support[d].hi * band;
    if (!std::isfinite(lo) || !std::isfinite(hi) || lo <= 0.0 || hi < lo) {
      return false;
    }
    lo = std::max(lo, dim.lo);
    hi = std::min(hi, dim.hi);
    if (hi <= lo) {  // degenerate after clamping: keep the declared range
      lo = dim.lo;
      hi = dim.hi;
    }
    out.lo[d] = lo;
    out.hi[d] = hi;
    if (lo > dim.lo * (1.0 + 1e-12) || hi < dim.hi * (1.0 - 1e-12)) {
      any_shrunk = true;
    }
  }
  if (!any_shrunk) return false;
  if (box != nullptr) *box = std::move(out);
  return true;
}

std::vector<int> ShrunkenResolutions(const QuerySpec& query,
                                     const EssBox& box,
                                     const std::vector<int>& resolutions,
                                     int min_resolution) {
  std::vector<int> out = resolutions;
  const int floor_res = std::max(2, min_resolution);
  for (size_t d = 0; d < out.size() && d < box.lo.size(); ++d) {
    const ErrorDimension& dim = query.error_dims[d];
    const double full = std::log(dim.hi / dim.lo);
    const double shrunk = std::log(box.hi[d] / box.lo[d]);
    if (!(full > 0.0) || !(shrunk > 0.0)) {
      out[d] = floor_res;
      continue;
    }
    const double ratio = std::min(1.0, shrunk / full);
    out[d] = std::max(
        floor_res, static_cast<int>(std::ceil(resolutions[d] * ratio)));
  }
  return out;
}

}  // namespace bouquet

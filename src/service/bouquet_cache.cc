#include "service/bouquet_cache.h"

#include <algorithm>
#include <cassert>

#include "service/template_key.h"

namespace bouquet {

void FinishCompiledBouquet(CompiledBouquet* c, const Catalog& catalog,
                           CostParams cost_params, SimOptions sim_options) {
  assert(c->grid && c->diagram && c->bouquet);
  if (!c->optimizer) {
    c->optimizer =
        std::make_unique<QueryOptimizer>(c->query, catalog, cost_params);
  }
  c->simulator = std::make_unique<BouquetSimulator>(
      *c->bouquet, *c->diagram, c->optimizer.get(), sim_options);
}

BouquetCache::BouquetCache(size_t capacity, int num_shards)
    : capacity_(std::max<size_t>(1, capacity)) {
  const int n = std::max(1, num_shards);
  per_shard_capacity_ = std::max<size_t>(1, (capacity_ + n - 1) / n);
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

BouquetCache::Shard& BouquetCache::ShardFor(const std::string& key) {
  return *shards_[TemplateHash(key) % shards_.size()];
}

std::shared_ptr<const CompiledBouquet> BouquetCache::Get(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void BouquetCache::EvictIfFullLocked(Shard& shard) {
  if (shard.lru.size() < per_shard_capacity_) return;
  // Inspect the victim's warm flag before dropping it: an evicted
  // warm-started bundle must stay distinguishable in the stats.
  const auto& victim = shard.lru.back().second;
  if (victim != nullptr && victim->warm_started) {
    warm_evictions_.fetch_add(1, std::memory_order_relaxed);
    warm_live_.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.index.erase(shard.lru.back().first);
  shard.lru.pop_back();
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void BouquetCache::Put(const std::string& key,
                       std::shared_ptr<const CompiledBouquet> value) {
  const bool warm = value != nullptr && value->warm_started;
  if (warm) warm_inserts_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    const auto& old = it->second->second;
    const bool was_warm = old != nullptr && old->warm_started;
    if (was_warm != warm) {
      warm_live_.fetch_add(warm ? 1 : -1, std::memory_order_relaxed);
    }
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  EvictIfFullLocked(shard);
  if (warm) warm_live_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

size_t BouquetCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->lru.size();
  }
  return total;
}

CacheStats BouquetCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.warm_inserts = warm_inserts_.load(std::memory_order_relaxed);
  s.warm_evictions = warm_evictions_.load(std::memory_order_relaxed);
  const int64_t live = warm_live_.load(std::memory_order_relaxed);
  s.warm_entries = live > 0 ? static_cast<uint64_t>(live) : 0;
  s.entries = size();
  return s;
}

void BouquetCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (const auto& [key, value] : shard->lru) {
      if (value != nullptr && value->warm_started) {
        warm_live_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace bouquet

// Template-keyed cache of compiled bouquet bundles.
//
// A CompiledBouquet is everything the run-time phase needs, compiled once
// per query template and shared (immutably) by every concurrent invocation:
// the ESS grid, the exhaustive plan diagram, the bouquet, a private
// QueryOptimizer used during construction, and a ready BouquetSimulator
// whose const Run* methods are safe to call from many threads at once.
//
// BouquetCache is a sharded LRU map from template signature to bundle.
// Sharding keeps lock hold times short under concurrent lookups; capacity
// is split evenly across shards (so eviction order is strictly LRU only
// within a shard — use num_shards = 1 when exact global LRU matters, e.g.
// in tests). Hit/miss/eviction/insert counters are atomics readable without
// locking. Entries are handed out as shared_ptr<const CompiledBouquet>, so
// an evicted bundle stays alive until its last in-flight request drops it.
//
// Thread-safety: all methods may be called concurrently. Each shard's LRU
// list and key index are GUARDED_BY the shard mutex (statically enforced
// via common/synchronization.h); the counters are lock-free atomics.

#ifndef BOUQUET_SERVICE_BOUQUET_CACHE_H_
#define BOUQUET_SERVICE_BOUQUET_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bouquet/bouquet.h"
#include "common/synchronization.h"
#include "bouquet/simulator.h"
#include "ess/ess_grid.h"
#include "ess/plan_diagram.h"
#include "ess/posp_generator.h"
#include "optimizer/optimizer.h"
#include "query/query_spec.h"

namespace bouquet {

/// One immutable compiled bundle. Members reference one another (the
/// diagram indexes the grid, the optimizer binds `query`, the simulator
/// binds bouquet + diagram), so the struct is created once via the service
/// or `MakeCompiledBouquet` and never moved afterwards.
struct CompiledBouquet {
  QuerySpec query;  ///< the template the bundle was compiled for
  std::unique_ptr<EssGrid> grid;
  std::unique_ptr<PlanDiagram> diagram;
  std::unique_ptr<PlanBouquet> bouquet;
  std::unique_ptr<QueryOptimizer> optimizer;
  std::unique_ptr<BouquetSimulator> simulator;
  PospStats posp_stats;          ///< POSP-generation share of compile time
  double compile_seconds = 0.0;  ///< full pipeline wall time
  bool warm_started = false;     ///< loaded from disk, not compiled
  /// Compiled over a feedback-shrunken ESS box (observed selectivity
  /// support + guard band) instead of the query's declared ranges. The
  /// cache key is unchanged — the signature encodes the declared ranges —
  /// so this is invisible to lookups.
  bool shrunken_box = false;
};

/// Builds the optimizer + simulator tail of a bundle whose grid/diagram/
/// bouquet members are already populated (shared by compile and warm-start).
void FinishCompiledBouquet(CompiledBouquet* c, const Catalog& catalog,
                           CostParams cost_params, SimOptions sim_options);

/// Counter snapshot (monotonic except `entries`/`warm_entries`).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t inserts = 0;
  uint64_t entries = 0;
  /// Warm-started bundles (CompiledBouquet::warm_started), tracked
  /// separately so feedback/file-driven warm starts stay observable at
  /// eviction time: `warm_entries` is the live count, `warm_evictions`
  /// counts warm bundles evicted by LRU pressure (a high value means the
  /// cache is churning away exactly the entries warm-starting paid for).
  uint64_t warm_inserts = 0;
  uint64_t warm_evictions = 0;
  uint64_t warm_entries = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class BouquetCache {
 public:
  /// `capacity` total entries, split across `num_shards` LRU shards (each
  /// shard holds at least one entry).
  explicit BouquetCache(size_t capacity, int num_shards = 8);

  /// Returns the bundle for `key` (bumping its recency) or nullptr.
  std::shared_ptr<const CompiledBouquet> Get(const std::string& key);

  /// Inserts/overwrites `key`, evicting the shard's LRU entry if full.
  void Put(const std::string& key,
           std::shared_ptr<const CompiledBouquet> value);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  CacheStats stats() const;
  void Clear();

 private:
  struct Shard {
    Mutex mu;
    // Front = most recently used. The map points into the list.
    std::list<std::pair<std::string, std::shared_ptr<const CompiledBouquet>>>
        lru GUARDED_BY(mu);
    std::unordered_map<std::string, decltype(lru)::iterator> index
        GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& key);

  /// Pops the shard's LRU entry when it is at capacity. Split out so the
  /// eviction policy carries an explicit capability contract.
  void EvictIfFullLocked(Shard& shard) REQUIRES(shard.mu);

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> warm_inserts_{0};
  std::atomic<uint64_t> warm_evictions_{0};
  std::atomic<int64_t> warm_live_{0};
};

}  // namespace bouquet

#endif  // BOUQUET_SERVICE_BOUQUET_CACHE_H_

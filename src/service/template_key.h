// Query-template signatures for the bouquet cache.
//
// The paper's deployment model (Section 4.2) is form-based "canned" queries:
// the query *structure* is fixed while the constants of the error-prone
// predicates vary per invocation. Two invocations share one compiled bouquet
// iff they agree on everything the compile-time artifacts depend on:
//   * relations, join graph, and non-error selection predicates (including
//     their constants — those shift the error-free selectivities),
//   * error-dimension declarations (kind, predicate, [lo, hi] range),
//   * aggregate block, grid resolutions, cost-model constants, and bouquet
//     parameters (ratio, lambda, anorexic flag).
// Constants of predicates that *are* error dimensions are deliberately
// excluded: compile time injects selectivities there, so the artifact is
// valid for every binding — that exclusion is what makes the cache amortize
// across a form's invocations. The query's display name is also excluded
// (identity is structural).

#ifndef BOUQUET_SERVICE_TEMPLATE_KEY_H_
#define BOUQUET_SERVICE_TEMPLATE_KEY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bouquet/bouquet.h"
#include "optimizer/cost_model.h"
#include "query/query_spec.h"

namespace bouquet {

/// Canonical template signature; equal strings <=> shareable artifacts.
std::string TemplateSignature(const QuerySpec& query,
                              const std::vector<int>& resolutions,
                              const CostParams& cost_params,
                              const BouquetParams& bouquet_params);

/// FNV-1a 64-bit hash of a signature (shard selection, compact logging).
uint64_t TemplateHash(const std::string& signature);

}  // namespace bouquet

#endif  // BOUQUET_SERVICE_TEMPLATE_KEY_H_

#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "bouquet/serialize.h"
#include "common/str_util.h"
#include "ess/posp_generator.h"
#include "service/template_key.h"

namespace bouquet {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

BouquetService::BouquetService(const Catalog& catalog, ServiceOptions options)
    : catalog_(&catalog),
      options_(options),
      pool_(options.num_threads),
      cache_(options.cache_capacity, options.cache_shards) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    ins_.requests =
        m->GetCounter("service_requests_total", "Requests served");
    ins_.cache_hits = m->GetCounter("service_cache_hits_total",
                                    "Requests served from the bouquet cache");
    ins_.cache_misses =
        m->GetCounter("service_cache_misses_total",
                      "Requests that compiled their template bundle");
    ins_.shared_compiles =
        m->GetCounter("service_shared_compiles_total",
                      "Requests deduplicated onto another compile "
                      "(single-flight followers)");
    ins_.compile_seconds =
        m->GetHistogram("service_compile_seconds",
                        "Template compile latency (leader compiles only)",
                        obs::CompileLatencyBuckets());
    ins_.cache_hit_rate = m->GetGauge(
        "service_cache_hit_rate", "cache_hits / requests, cumulative");
    ins_.suboptimality = m->GetHistogram(
        "bouquet_suboptimality",
        "Per-run SubOpt = total cost / optimal cost at q_a (simulated runs)",
        obs::SubOptimalityBuckets());
    ins_.plan_executions = m->GetCounter(
        "bouquet_executions_total",
        "Plan executions issued across all requests (both modes)");
    ins_.contour_crossings =
        m->GetCounter("bouquet_contour_crossings_total",
                      "Isocost contours crossed without completing, summed "
                      "over requests");
    ins_.spills = m->GetCounter(
        "bouquet_spills_total", "Spill-mode learning executions issued");
    ins_.fallbacks = m->GetCounter(
        "bouquet_fallbacks_total",
        "Simulated runs that violated the guarantee and fell back");
    ins_.batches = m->GetCounter("service_batches_total",
                                 "Same-template batches served by RunBatch");
    ins_.batch_requests = m->GetCounter(
        "service_batch_requests_total", "Requests served inside batches");
    ins_.sheds = m->GetCounter(
        "service_shed_total",
        "Requests served degraded by the precompiled MSO-safe plan");
    ins_.inflight = m->GetGauge("service_inflight_requests",
                                "Requests currently executing");
    ins_.queue_depth = m->GetGauge("service_queue_depth",
                                   "Tasks waiting in the service pool");
    if (options_.feedback != nullptr) {
      ins_.feedback_lookups = m->GetCounter(
          "feedback_lookups_total", "Feedback store lookups before runs");
      ins_.feedback_hits = m->GetCounter(
          "feedback_hits_total",
          "Feedback lookups that produced a usable warm-start seed");
      ins_.feedback_records = m->GetCounter(
          "feedback_records_total", "Run outcomes recorded into feedback");
      ins_.feedback_warm_runs = m->GetCounter(
          "feedback_warm_runs_total",
          "Runs that warm-started the ladder above contour 0");
      ins_.feedback_contours_skipped = m->GetCounter(
          "feedback_contours_skipped_total",
          "Contours skipped up-front by warm starts, summed over runs");
      ins_.feedback_box_shrinks = m->GetCounter(
          "feedback_box_shrinks_total",
          "Template compiles over a feedback-shrunken ESS box");
    }
    ins_.cache_warm_entries = m->GetGauge(
        "service_cache_warm_entries",
        "Warm-started bundles resident in the cache (sampled)");
    ins_.cache_warm_evictions = m->GetGauge(
        "service_cache_warm_evictions",
        "Warm-started bundles evicted by LRU pressure (sampled)");
  }
  // Disk-backed databases: route buffer-pool counters and page-fault spans
  // to the same sinks as the service's own instruments.
  if (options_.database != nullptr &&
      options_.database->storage() != nullptr &&
      (options_.metrics != nullptr || options_.tracer != nullptr)) {
    options_.database->storage()->buffer()->SetObservability(
        options_.metrics, options_.tracer);
  }
}

BouquetService::InflightScope::InflightScope(BouquetService* s) : s_(s) {
  const int64_t now =
      s_->inflight_now_.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t peak = s_->inflight_peak_.load(std::memory_order_relaxed);
  while (now > peak && !s_->inflight_peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  if (s_->ins_.inflight != nullptr) {
    s_->ins_.inflight->Set(static_cast<double>(now));
    s_->ins_.queue_depth->Set(static_cast<double>(s_->pool_.queue_depth()));
  }
}

BouquetService::InflightScope::~InflightScope() {
  const int64_t now =
      s_->inflight_now_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (s_->ins_.inflight != nullptr) {
    s_->ins_.inflight->Set(static_cast<double>(now));
  }
}

std::vector<int> BouquetService::ResolutionsFor(const QuerySpec& query) const {
  const int dims = query.NumDims();
  const int res = options_.grid_resolution > 0
                      ? options_.grid_resolution
                      : EssGrid::DefaultResolutionForDims(dims);
  return std::vector<int>(dims, res);
}

std::string BouquetService::KeyFor(const QuerySpec& query) const {
  return TemplateSignature(query, ResolutionsFor(query), options_.cost_params,
                           options_.bouquet_params);
}

std::shared_ptr<const CompiledBouquet> BouquetService::Compile(
    const QuerySpec& query) {
  const auto t0 = std::chrono::steady_clock::now();
  auto c = std::make_shared<CompiledBouquet>();
  c->query = query;
  // Feedback-driven ESS-box shrinking: when the store has enough repeat
  // observations for this template, compile over the observed selectivity
  // support (plus guard band) instead of the declared ranges. The cache key
  // — which encodes the declared ranges — is unchanged, and SnapToGrid
  // clamps out-of-box actuals to the grid edge, so correctness (ladder
  // completion) is unaffected; only the grid the POSP explores shrinks.
  EssBox box;
  bool shrunk = false;
  if (options_.feedback != nullptr && options_.feedback_policy.shrink_box) {
    TemplateFeedback tf;
    if (options_.feedback->Lookup(TemplateHash(KeyFor(query)), &tf)) {
      shrunk = ShrunkenBox(query, tf, options_.feedback_policy, &box);
    }
  }
  if (shrunk) {
    c->grid = std::make_unique<EssGrid>(
        c->query,
        ShrunkenResolutions(query, box, ResolutionsFor(query),
                            options_.feedback_policy.min_resolution),
        box.lo, box.hi);
    c->shrunken_box = true;
  } else {
    c->grid = std::make_unique<EssGrid>(c->query, ResolutionsFor(query));
  }
  PospOptions posp;
  posp.pool = &pool_;
  posp.min_shard_points = options_.min_shard_points;
  c->diagram = std::make_unique<PlanDiagram>(
      GeneratePosp(c->query, *catalog_, options_.cost_params, *c->grid, posp,
                   &c->posp_stats));
  c->optimizer = std::make_unique<QueryOptimizer>(c->query, *catalog_,
                                                  options_.cost_params);
  c->bouquet = std::make_unique<PlanBouquet>(
      BuildBouquet(*c->diagram, c->optimizer.get(), options_.bouquet_params));
  FinishCompiledBouquet(c.get(), *catalog_, options_.cost_params,
                        options_.sim_options);
  c->compile_seconds = SecondsSince(t0);
  return c;
}

void BouquetService::RecordCompileStatsLocked(const CompiledBouquet& c) {
  ++stats_.cache_misses;
  ++stats_.compilations;
  if (c.shrunken_box) {
    ++stats_.feedback_box_shrinks;
    if (ins_.feedback_box_shrinks != nullptr) {
      ins_.feedback_box_shrinks->Inc();
    }
  }
  stats_.compile_seconds += c.compile_seconds;
  stats_.posp_dp_calls += c.posp_stats.dp_calls;
  stats_.posp_recost_hits += c.posp_stats.recost_hits;
  stats_.posp_memo_hits += c.posp_stats.memo_hits;
  stats_.posp_audit_checks += c.posp_stats.audit_checks;
  stats_.posp_audit_failures += c.posp_stats.audit_failures;
}

Result<std::shared_ptr<const CompiledBouquet>> BouquetService::GetOrCompile(
    const QuerySpec& query, ServiceResult* result, const obs::Span* parent) {
  const std::string key = KeyFor(query);
  if (result != nullptr) result->template_hash = TemplateHash(key);
  const auto t0 = std::chrono::steady_clock::now();

  if (auto c = cache_.Get(key)) {
    if (result != nullptr) {
      result->cache_hit = true;
      result->compile_seconds = SecondsSince(t0);
    }
    if (ins_.cache_hits != nullptr) ins_.cache_hits->Inc();
    MutexLock lock(&stats_mu_);
    ++stats_.cache_hits;
    return c;
  }

  const Status valid = query.Validate(*catalog_);
  if (!valid.ok()) return valid;

  std::promise<std::shared_ptr<const CompiledBouquet>> promise;
  std::shared_future<std::shared_ptr<const CompiledBouquet>> fut;
  bool leader = false;
  {
    MutexLock lock(&inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      fut = it->second;
    } else if (auto c = cache_.Get(key)) {
      // A leader finished between the unlocked lookup and here.
      if (result != nullptr) {
        result->cache_hit = true;
        result->compile_seconds = SecondsSince(t0);
      }
      if (ins_.cache_hits != nullptr) ins_.cache_hits->Inc();
      MutexLock slock(&stats_mu_);
      ++stats_.cache_hits;
      return c;
    } else {
      leader = true;
      fut = promise.get_future().share();
      inflight_.emplace(key, fut);
    }
  }

  if (leader) {
    obs::Span compile_span =
        obs::Tracer::Begin(options_.tracer, "service.compile", parent);
    auto c = Compile(query);
    if (compile_span.enabled()) {
      compile_span.Num("compile_seconds", c->compile_seconds)
          .Num("num_plans", static_cast<double>(c->diagram->num_plans()))
          .Num("num_contours",
               static_cast<double>(c->bouquet->contours.size()));
      compile_span.End();
    }
    cache_.Put(key, c);
    {
      MutexLock lock(&inflight_mu_);
      inflight_.erase(key);
    }
    promise.set_value(c);
    if (result != nullptr) {
      result->compiled = true;
      result->compile_seconds = SecondsSince(t0);
    }
    if (ins_.cache_misses != nullptr) ins_.cache_misses->Inc();
    if (ins_.compile_seconds != nullptr) {
      ins_.compile_seconds->Observe(c->compile_seconds);
    }
    MutexLock lock(&stats_mu_);
    RecordCompileStatsLocked(*c);
    return c;
  }

  // Single-flight follower: block until the leader publishes the bundle.
  auto c = fut.get();
  if (result != nullptr) {
    result->shared_compile = true;
    result->compile_seconds = SecondsSince(t0);
  }
  if (ins_.shared_compiles != nullptr) ins_.shared_compiles->Inc();
  MutexLock lock(&stats_mu_);
  ++stats_.shared_compiles;
  return c;
}

uint64_t BouquetService::SnapToGrid(const EssGrid& grid,
                                    const DimVector& actual) const {
  GridPoint p(grid.dims());
  for (int d = 0; d < grid.dims(); ++d) {
    const double s = actual[d];
    const int lo = grid.AxisFloor(d, s);
    const int hi = grid.AxisCeil(d, s);
    if (lo == hi) {
      p[d] = lo;
    } else {
      // Nearest neighbor in log space (the axes are log-spaced).
      const double dlo = std::log(s / grid.axis(d)[lo]);
      const double dhi = std::log(grid.axis(d)[hi] / s);
      p[d] = dlo <= dhi ? lo : hi;
    }
  }
  return grid.LinearIndex(p);
}

Status BouquetService::ValidateRequest(const ServiceRequest& request) const {
  if (request.mode == ExecutionMode::kSimulate &&
      static_cast<int>(request.actual_selectivities.size()) !=
          request.query.NumDims()) {
    return Status::InvalidArgument(StrPrintf(
        "request has %zu actual selectivities, query has %d error dims",
        request.actual_selectivities.size(), request.query.NumDims()));
  }
  if (request.mode == ExecutionMode::kRealData &&
      options_.database == nullptr) {
    return Status::FailedPrecondition(
        "kRealData requires ServiceOptions::database");
  }
  return Status::Ok();
}

Result<ServiceResult> BouquetService::Run(const ServiceRequest& request) {
  const auto t0 = std::chrono::steady_clock::now();
  ServiceResult r;
  r.mode = request.mode;

  const Status valid = ValidateRequest(request);
  if (!valid.ok()) return valid;
  InflightScope inflight(this);

  // Admit the request into the counters *before* GetOrCompile bumps the
  // hit/miss/shared counters: a stats() snapshot taken mid-request must
  // never show cache_hits + cache_misses + shared_compiles > requests
  // (it used to, transiently, which let CacheHitRate() exceed 1.0).
  {
    MutexLock lock(&stats_mu_);
    ++stats_.requests;
  }
  if (ins_.requests != nullptr) ins_.requests->Inc();

  obs::Span req_span = obs::Tracer::Begin(options_.tracer, "service.request");
  req_span.Num("mode",
               request.mode == ExecutionMode::kSimulate ? 0.0 : 1.0);

  auto bundle_or = GetOrCompile(request.query, &r, &req_span);
  if (!bundle_or.ok()) return bundle_or.status();
  std::shared_ptr<const CompiledBouquet> c = std::move(bundle_or).value();

  ExecuteWithBundle(request, c, &req_span, t0, &r);
  return r;
}

int BouquetService::FeedbackStartContour(const CompiledBouquet& c,
                                         uint64_t template_hash,
                                         const obs::Span* parent) {
  FeedbackStore* fb = options_.feedback;
  if (fb == nullptr || !options_.feedback_policy.warm_contours) return 0;
  obs::Span span =
      obs::Tracer::Begin(options_.tracer, "feedback.lookup", parent);
  TemplateFeedback tf;
  DimVector seed;
  int start = 0;
  bool hit = false;
  if (fb->Lookup(template_hash, &tf) &&
      tf.support.size() == static_cast<size_t>(c.grid->dims()) &&
      WarmStartSeed(tf, options_.feedback_policy, &seed)) {
    hit = true;
    // Snap the seed DOWN per dimension: the seed cost must understate the
    // cost at the seed, never overstate it, so that seed <= q_a implies
    // C(seed) <= PIC(q_a) and the warm start stays inside the bound
    // (feedback/warm_start.h).
    GridPoint p(c.grid->dims());
    for (int d = 0; d < c.grid->dims(); ++d) {
      p[d] = c.grid->AxisFloor(d, seed[d]);
    }
    const double seed_cost = c.diagram->cost_at(c.grid->LinearIndex(p));
    start = WarmStartContour(*c.bouquet, seed_cost,
                             options_.feedback_policy.safety_margin);
  }
  if (ins_.feedback_lookups != nullptr) {
    ins_.feedback_lookups->Inc();
    if (hit) ins_.feedback_hits->Inc();
    if (start > 0) {
      ins_.feedback_warm_runs->Inc();
      ins_.feedback_contours_skipped->Inc(static_cast<uint64_t>(start));
    }
  }
  {
    MutexLock lock(&stats_mu_);
    ++stats_.feedback_lookups;
    if (hit) ++stats_.feedback_hits;
    if (start > 0) {
      ++stats_.feedback_warm_runs;
      stats_.feedback_contours_skipped += static_cast<uint64_t>(start);
    }
  }
  if (span.enabled()) {
    span.Flag("hit", hit).Num("start_contour", static_cast<double>(start));
    span.End();
  }
  return start;
}

void BouquetService::RecordFeedback(const ServiceRequest& request,
                                    const CompiledBouquet& c,
                                    const ServiceResult& r,
                                    const obs::Span* parent) {
  FeedbackStore* fb = options_.feedback;
  if (fb == nullptr) return;
  FeedbackObservation observed;
  observed.template_hash = r.template_hash;
  const int num_contours = static_cast<int>(c.bouquet->contours.size());
  if (request.mode == ExecutionMode::kSimulate) {
    if (!r.sim.completed || r.sim.fallback_used) return;
    // Simulation knows q_a exactly: record the snapped actual location.
    observed.selectivities = c.grid->SelectivityAt(
        SnapToGrid(*c.grid, request.actual_selectivities));
    observed.final_contour =
        std::min(r.sim.final_contour, num_contours - 1);
  } else {
    if (!r.real.completed || r.real.discovered_selectivities.empty()) return;
    // Real data: record the discovered q_run lower bounds — conservative
    // by construction, exactly what the min-support seed wants.
    observed.selectivities = r.real.discovered_selectivities;
    observed.final_contour =
        std::min(r.real.contours_crossed, num_contours - 1);
  }
  obs::Span span =
      obs::Tracer::Begin(options_.tracer, "feedback.record", parent);
  const Status s = fb->Record(observed);
  if (s.ok()) {
    if (ins_.feedback_records != nullptr) ins_.feedback_records->Inc();
    MutexLock lock(&stats_mu_);
    ++stats_.feedback_records;
  }
  if (span.enabled()) {
    span.Flag("ok", s.ok())
        .Num("final_contour", static_cast<double>(observed.final_contour));
    span.End();
  }
}

void BouquetService::ExecuteWithBundle(
    const ServiceRequest& request,
    const std::shared_ptr<const CompiledBouquet>& c, obs::Span* req_span,
    std::chrono::steady_clock::time_point t0, ServiceResult* out) {
  ServiceResult& r = *out;
  const auto e0 = std::chrono::steady_clock::now();
  const int warm_start = FeedbackStartContour(*c, r.template_hash, req_span);
  if (request.mode == ExecutionMode::kSimulate) {
    const uint64_t qa = SnapToGrid(*c->grid, request.actual_selectivities);
    r.sim = warm_start > 0 ? c->simulator->RunOptimizedWarm(qa, warm_start)
                           : c->simulator->RunOptimized(qa);
    c->simulator->EmitTrace(r.sim, qa, options_.tracer, req_span);
    if (ins_.suboptimality != nullptr) {
      ins_.suboptimality->Observe(c->simulator->SubOpt(r.sim, qa));
    }
  } else {
    // Per-request optimizer + driver: both are bound to this request's
    // constants and neither is shared across threads.
    QueryOptimizer run_opt(request.query, *catalog_, options_.cost_params);
    BouquetDriver driver(*c->bouquet, *c->diagram, &run_opt,
                         options_.database);
    driver.SetObservability(options_.tracer, options_.metrics, req_span);
    driver.SetWarmStart(warm_start);
    r.real = driver.RunOptimized();
  }
  RecordFeedback(request, *c, r, req_span);
  r.execute_seconds = SecondsSince(e0);
  r.latency_seconds = SecondsSince(t0);
  r.compiled_bundle = c;

  if (req_span->enabled()) {
    req_span->Num("template_hash", static_cast<double>(r.template_hash))
        .Flag("cache_hit", r.cache_hit)
        .Flag("compiled", r.compiled)
        .Flag("shared_compile", r.shared_compile)
        .Num("compile_seconds", r.compile_seconds)
        .Num("execute_seconds", r.execute_seconds);
    req_span->End();
  }

  // Per-request run-phase aggregates, folded into both the ServiceStats
  // snapshot and (when attached) the metrics registry.
  uint64_t executions = 0, crossings = 0, spills = 0, fallbacks = 0;
  if (request.mode == ExecutionMode::kSimulate) {
    executions = static_cast<uint64_t>(r.sim.num_executions);
    crossings = static_cast<uint64_t>(std::max(r.sim.final_contour, 0));
    for (const SimStep& s : r.sim.steps) {
      // The simulator stamps learned_dim on every step, including the
      // completing one; only aborted steps actually spill-learned.
      if (!s.completed && s.learned_dim >= 0) ++spills;
    }
    if (r.sim.fallback_used) fallbacks = 1;
  } else {
    executions = static_cast<uint64_t>(r.real.num_executions);
    crossings = static_cast<uint64_t>(std::max(r.real.contours_crossed, 0));
    for (const DriverStep& s : r.real.steps) {
      if (s.spilled) ++spills;
    }
  }
  if (ins_.plan_executions != nullptr) {
    ins_.plan_executions->Inc(executions);
    ins_.contour_crossings->Inc(crossings);
    ins_.spills->Inc(spills);
    ins_.fallbacks->Inc(fallbacks);
  }

  {
    MutexLock lock(&stats_mu_);
    stats_.execute_seconds += r.execute_seconds;
    stats_.latency_seconds += r.latency_seconds;
    stats_.plan_executions += executions;
    stats_.contour_crossings += crossings;
    stats_.spills += spills;
    stats_.fallbacks += fallbacks;
    if (ins_.cache_hit_rate != nullptr) {
      ins_.cache_hit_rate->Set(stats_.CacheHitRate());
    }
  }
}

Result<std::vector<ServiceResult>> BouquetService::RunBatch(
    const std::vector<ServiceRequest>& requests, const obs::Span* parent) {
  if (requests.empty()) {
    return Status::InvalidArgument("RunBatch: empty batch");
  }
  const std::string key = KeyFor(requests.front().query);
  for (const ServiceRequest& request : requests) {
    const Status valid = ValidateRequest(request);
    if (!valid.ok()) return valid;
    if (KeyFor(request.query) != key) {
      return Status::InvalidArgument(
          "RunBatch: requests span multiple template keys");
    }
  }
  InflightScope inflight(this);

  const auto t0 = std::chrono::steady_clock::now();
  {
    MutexLock lock(&stats_mu_);
    stats_.requests += requests.size();
    ++stats_.batches;
    stats_.batch_requests += requests.size();
  }
  if (ins_.requests != nullptr) {
    ins_.requests->Inc(requests.size());
    ins_.batches->Inc();
    ins_.batch_requests->Inc(requests.size());
  }

  obs::Span batch_span =
      obs::Tracer::Begin(options_.tracer, "service.batch", parent);
  batch_span.Num("batch_size", static_cast<double>(requests.size()));

  // One bundle acquisition for the whole batch: the opener pays the compile
  // (or the single-flight wait), every other member is by construction a
  // cache hit on the shared bundle.
  ServiceResult leader;
  auto bundle_or = GetOrCompile(requests.front().query, &leader, &batch_span);
  if (!bundle_or.ok()) return bundle_or.status();
  std::shared_ptr<const CompiledBouquet> c = std::move(bundle_or).value();
  if (requests.size() > 1) {
    const uint64_t followers = requests.size() - 1;
    if (ins_.cache_hits != nullptr) ins_.cache_hits->Inc(followers);
    MutexLock lock(&stats_mu_);
    stats_.cache_hits += followers;
  }

  std::vector<ServiceResult> results(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ServiceResult& r = results[i];
    r.mode = requests[i].mode;
    r.template_hash = leader.template_hash;
    if (i == 0) {
      r.cache_hit = leader.cache_hit;
      r.shared_compile = leader.shared_compile;
      r.compiled = leader.compiled;
      r.compile_seconds = leader.compile_seconds;
    } else {
      r.cache_hit = true;
    }
    obs::Span req_span =
        obs::Tracer::Begin(options_.tracer, "service.request", &batch_span);
    req_span.Num("mode", 0.0).Num("batch_index", static_cast<double>(i));
    ExecuteWithBundle(requests[i], c, &req_span, t0, &r);
  }
  batch_span.End();
  return results;
}

Result<ServiceResult> BouquetService::RunSafePlan(
    const ServiceRequest& request, const obs::Span* parent) {
  const auto t0 = std::chrono::steady_clock::now();
  if (request.mode != ExecutionMode::kSimulate) {
    return Status::InvalidArgument(
        "RunSafePlan supports simulation mode only");
  }
  const Status valid = ValidateRequest(request);
  if (!valid.ok()) return valid;
  InflightScope inflight(this);

  const std::string key = KeyFor(request.query);
  ServiceResult r;
  r.mode = request.mode;
  r.degraded = true;
  r.template_hash = TemplateHash(key);

  // Cache-only on purpose: shedding exists to bound work under overload, so
  // it must never fault in a multi-second compile.
  std::shared_ptr<const CompiledBouquet> c = cache_.Get(key);
  if (c == nullptr) {
    return Status::FailedPrecondition(
        "RunSafePlan: template not compiled (safe plan unavailable)");
  }
  r.cache_hit = true;

  {
    MutexLock lock(&stats_mu_);
    ++stats_.requests;
    ++stats_.cache_hits;
    ++stats_.sheds;
  }
  if (ins_.requests != nullptr) {
    ins_.requests->Inc();
    ins_.cache_hits->Inc();
    ins_.sheds->Inc();
  }

  obs::Span span =
      obs::Tracer::Begin(options_.tracer, "service.safe_plan", parent);
  const auto e0 = std::chrono::steady_clock::now();
  const uint64_t qa = SnapToGrid(*c->grid, request.actual_selectivities);
  r.sim = c->simulator->RunSafe(qa);
  r.execute_seconds = SecondsSince(e0);
  r.latency_seconds = SecondsSince(t0);
  r.compiled_bundle = c;

  if (span.enabled()) {
    span.Num("template_hash", static_cast<double>(r.template_hash))
        .Num("safe_plan", static_cast<double>(c->simulator->safe_plan()))
        .Num("safe_budget", c->simulator->safe_budget())
        .Num("charged", r.sim.total_cost)
        .Flag("completed", r.sim.completed);
    span.End();
  }

  if (ins_.plan_executions != nullptr) {
    ins_.plan_executions->Inc(static_cast<uint64_t>(r.sim.num_executions));
  }
  {
    MutexLock lock(&stats_mu_);
    stats_.execute_seconds += r.execute_seconds;
    stats_.latency_seconds += r.latency_seconds;
    stats_.plan_executions += static_cast<uint64_t>(r.sim.num_executions);
    if (ins_.cache_hit_rate != nullptr) {
      ins_.cache_hit_rate->Set(stats_.CacheHitRate());
    }
  }
  return r;
}

std::future<Result<ServiceResult>> BouquetService::Submit(
    ServiceRequest request) {
  return pool_.Submit(
      [this, request = std::move(request)] { return Run(request); });
}

Status BouquetService::WarmStart(const QuerySpec& query,
                                 const std::string& path) {
  auto loaded_or = LoadBouquetFromFile(query, path);
  if (!loaded_or.ok()) return loaded_or.status();
  LoadedBouquet loaded = std::move(loaded_or).value();

  const std::vector<int> want = ResolutionsFor(query);
  for (int d = 0; d < loaded.grid->dims(); ++d) {
    if (loaded.grid->resolution(d) != want[d]) {
      return Status::FailedPrecondition(StrPrintf(
          "warm-start grid resolution %d on dim %d, service expects %d",
          loaded.grid->resolution(d), d, want[d]));
    }
  }

  auto c = std::make_shared<CompiledBouquet>();
  c->query = query;
  c->grid = std::move(loaded.grid);
  c->diagram = std::move(loaded.diagram);
  c->bouquet = std::move(loaded.bouquet);
  c->warm_started = true;
  FinishCompiledBouquet(c.get(), *catalog_, options_.cost_params,
                        options_.sim_options);
  cache_.Put(KeyFor(query), c);
  {
    MutexLock lock(&stats_mu_);
    ++stats_.warm_starts;
  }
  return Status::Ok();
}

ServiceStats BouquetService::stats() const {
  ServiceStats s;
  {
    MutexLock lock(&stats_mu_);
    s = stats_;
  }
  // Sampled outside stats_mu_ (a leaf lock: the pool's mutex must not be
  // taken under it).
  s.inflight_requests = static_cast<uint64_t>(
      std::max<int64_t>(0, inflight_now_.load(std::memory_order_relaxed)));
  s.peak_inflight_requests = static_cast<uint64_t>(
      std::max<int64_t>(0, inflight_peak_.load(std::memory_order_relaxed)));
  s.queue_depth = pool_.queue_depth();
  const CacheStats cs = cache_.stats();
  s.cache_warm_entries = cs.warm_entries;
  s.cache_warm_evictions = cs.warm_evictions;
  if (ins_.cache_warm_entries != nullptr) {
    ins_.cache_warm_entries->Set(static_cast<double>(cs.warm_entries));
    ins_.cache_warm_evictions->Set(static_cast<double>(cs.warm_evictions));
  }
  if (options_.database != nullptr &&
      options_.database->storage() != nullptr) {
    const storage::BufferStats b =
        options_.database->storage()->buffer()->stats();
    s.buffer_hits = b.hits;
    s.buffer_misses = b.misses;
    s.buffer_evictions = b.evictions;
    s.buffer_writebacks = b.writebacks;
    s.buffer_pinned_peak = b.pinned_peak;
  }
  return s;
}

}  // namespace bouquet

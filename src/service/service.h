// BouquetService: the concurrent serving front end for plan bouquets.
//
// The paper's deployment model (Section 4.2) is form-based query templates
// whose expensive ESS exploration is amortized across many invocations.
// This layer makes that amortization operational at serving scale:
//
//   * requests run on a shared fixed ThreadPool (`Submit` is async,
//     `Run` synchronous);
//   * compiled {EssGrid, PlanDiagram, PlanBouquet, BouquetSimulator}
//     bundles live in a template-keyed sharded LRU BouquetCache;
//   * concurrent first requests for the same template are deduplicated
//     (single-flight): exactly one thread compiles, the rest wait on the
//     shared future;
//   * the compiling thread parallelizes POSP generation by partitioning
//     ESS grid rows across the same pool (nest-safe ParallelFor);
//   * cold starts can be avoided by warm-starting templates from bouquet
//     files written by bouquet/serialize.
//
// Execution is cost-model simulation by default (the paper's own metric
// substrate); when a Database is supplied, requests with bound constants
// may instead run the real-data BouquetDriver. Either way executions of
// distinct requests proceed concurrently: the CompiledBouquet bundle is
// immutable after construction and BouquetSimulator's Run* methods are
// const and thread-safe.
//
// Thread-safety: all public methods may be called from any thread. The
// catalog (and database, if any) are borrowed and must outlive the service;
// they are treated as read-only except for the Database's internal lazy
// index caches, which are mutex-protected.

#ifndef BOUQUET_SERVICE_SERVICE_H_
#define BOUQUET_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bouquet/bouquet.h"
#include "bouquet/driver.h"
#include "bouquet/simulator.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "common/thread_pool.h"
#include "feedback/feedback_store.h"
#include "feedback/warm_start.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/bouquet_cache.h"
#include "storage/index.h"

namespace bouquet {

struct ServiceOptions {
  int num_threads = 4;           ///< pool size (requests + POSP shards)
  size_t cache_capacity = 64;    ///< compiled templates kept resident
  int cache_shards = 8;
  /// Per-dimension ESS resolution; 0 = EssGrid defaults by dimensionality.
  int grid_resolution = 0;
  /// POSP shard-size floor handed to GeneratePosp (lower in tests).
  uint64_t min_shard_points = 256;
  CostParams cost_params = CostParams::Postgres();
  BouquetParams bouquet_params;
  SimOptions sim_options;
  /// Optional real-data backend for ExecutionMode::kRealData requests.
  Database* database = nullptr;
  /// Optional observability sinks (borrowed; must outlive the service; null
  /// = off). Requests become "service.request" span trees — compiles,
  /// driver/simulator steps, and operator spans nest underneath — and the
  /// registry gains service_* and bouquet_driver_* instruments.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional cross-query selectivity feedback store (borrowed; must
  /// outlive the service; null = feedback off). When set, every finished
  /// request records its observed selectivities + final contour
  /// ("feedback.record" span), and every execution consults the store
  /// first ("feedback.lookup"): repeat templates warm-start the contour
  /// ladder at the learned neighborhood and compile over a shrunken ESS
  /// box, per `feedback_policy`. The store may be shared across services.
  FeedbackStore* feedback = nullptr;
  WarmStartPolicy feedback_policy;
};

enum class ExecutionMode {
  kSimulate,  ///< cost-model partial executions (BouquetSimulator)
  kRealData,  ///< Volcano executor over the Database (BouquetDriver)
};

/// One query instance: the template plus its actual selectivity location.
struct ServiceRequest {
  QuerySpec query;
  /// q_a, one entry per error dimension (snapped to the nearest grid
  /// point). Required for kSimulate; ignored by kRealData, where the truth
  /// emerges from the data.
  DimVector actual_selectivities;
  ExecutionMode mode = ExecutionMode::kSimulate;
};

/// Per-request outcome + instrumentation.
struct ServiceResult {
  uint64_t template_hash = 0;
  bool cache_hit = false;        ///< bundle came straight from the cache
  bool shared_compile = false;   ///< waited on another request's compile
  bool compiled = false;         ///< this request ran the compilation
  double compile_seconds = 0.0;  ///< obtaining the bundle (compile or wait)
  double execute_seconds = 0.0;
  double latency_seconds = 0.0;
  ExecutionMode mode = ExecutionMode::kSimulate;
  /// Served by the precompiled MSO-safe plan (RunSafePlan under load shed):
  /// one bounded execution instead of the bouquet ladder.
  bool degraded = false;
  SimResult sim;        ///< kSimulate outcome
  DriverResult real;    ///< kRealData outcome
  std::shared_ptr<const CompiledBouquet> compiled_bundle;
};

/// Aggregate service counters (snapshot).
struct ServiceStats {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;      ///< led to a compilation by this request
  uint64_t shared_compiles = 0;   ///< deduplicated by single-flight
  uint64_t compilations = 0;
  /// Bundles installed by WarmStart() (file loads). Disjoint from
  /// `compilations`/`cache_misses` by construction: a warm-started bundle
  /// is Put directly into the cache and never runs Compile, so
  /// compilations == cache_misses always holds and warm_starts never
  /// inflates either (regression-tested in test_service). Feedback-driven
  /// contour warm starts are the separate `feedback_warm_runs` below.
  uint64_t warm_starts = 0;
  /// POSP compilation counters, summed over this service's compilations
  /// (see PospStats): full DP invocations, points served by the recost
  /// fast path, DP subproblems reused from the invariant-subplan memo, and
  /// differential-audit outcomes.
  long long posp_dp_calls = 0;
  long long posp_recost_hits = 0;
  long long posp_memo_hits = 0;
  long long posp_audit_checks = 0;
  long long posp_audit_failures = 0;
  double compile_seconds = 0.0;   ///< sum over compilations only
  double execute_seconds = 0.0;
  double latency_seconds = 0.0;
  /// Run-time-phase aggregates summed over finished requests (both modes):
  /// plan executions issued, contours crossed without completing, spill-mode
  /// learning executions, and guarantee fallbacks (simulated runs only —
  /// the real-data driver reports fallbacks via its own metric counter).
  uint64_t plan_executions = 0;
  uint64_t contour_crossings = 0;
  uint64_t spills = 0;
  uint64_t fallbacks = 0;
  /// Serving-layer aggregates: RunBatch invocations, requests served inside
  /// them, and requests shed to the safe plan (RunSafePlan).
  uint64_t batches = 0;
  uint64_t batch_requests = 0;
  uint64_t sheds = 0;
  /// Instantaneous load, sampled at stats() time: requests currently
  /// executing (plus the lifetime high-water mark) and pool tasks queued.
  uint64_t inflight_requests = 0;
  uint64_t peak_inflight_requests = 0;
  uint64_t queue_depth = 0;
  /// Feedback-store integration counters (all zero without
  /// ServiceOptions::feedback). A "hit" is a lookup that produced a usable
  /// warm-start seed; a "warm run" actually started above contour 0.
  uint64_t feedback_lookups = 0;
  uint64_t feedback_hits = 0;
  uint64_t feedback_records = 0;
  uint64_t feedback_warm_runs = 0;
  uint64_t feedback_contours_skipped = 0;
  uint64_t feedback_box_shrinks = 0;  ///< compiles over a shrunken ESS box
  /// Warm-started cache entries (CompiledBouquet::warm_started), sampled
  /// from the BouquetCache at stats() time: live now, and evicted by LRU
  /// pressure over the cache's lifetime.
  uint64_t cache_warm_entries = 0;
  uint64_t cache_warm_evictions = 0;
  /// Buffer-pool counters, sampled at stats() time from the database's
  /// StorageManager (all zero when the database is in-memory or absent).
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
  uint64_t buffer_evictions = 0;
  uint64_t buffer_writebacks = 0;
  uint64_t buffer_pinned_peak = 0;

  double CacheHitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(cache_hits) / requests;
  }
};

class BouquetService {
 public:
  /// The catalog (and options.database) must outlive the service.
  explicit BouquetService(const Catalog& catalog, ServiceOptions options = {});

  /// Serves one request on the calling thread (compiling/waiting for the
  /// template bundle as needed).
  Result<ServiceResult> Run(const ServiceRequest& request);

  /// Queues the request on the pool; returns immediately.
  std::future<Result<ServiceResult>> Submit(ServiceRequest request);

  /// Serves a same-template batch on the calling thread: one GetOrCompile
  /// (single-flight) then one execution per request. All requests must
  /// share the template key (the serving layer's router guarantees this);
  /// results align index-for-index with `requests`. Emits a "service.batch"
  /// span under `parent` with per-request "service.request" children.
  Result<std::vector<ServiceResult>> RunBatch(
      const std::vector<ServiceRequest>& requests,
      const obs::Span* parent = nullptr);

  /// Degraded fast path for load shedding: serves the request with the
  /// template's precompiled MSO-safe plan — one bounded-cost execution, no
  /// selectivity discovery. Cache-only: fails (FailedPrecondition) when the
  /// template has not been compiled yet, so shedding never triggers a
  /// compile storm. Simulation mode only.
  Result<ServiceResult> RunSafePlan(const ServiceRequest& request,
                                    const obs::Span* parent = nullptr);

  /// Cache key of a query under this service's configuration.
  std::string KeyFor(const QuerySpec& query) const;

  /// Returns the compiled bundle for the query's template, compiling it
  /// (single-flight) on a miss. `result`, when given, receives the
  /// cache_hit/shared_compile/compiled/compile_seconds fields. When tracing
  /// is on, a leader compile emits a "service.compile" span under `parent`.
  Result<std::shared_ptr<const CompiledBouquet>> GetOrCompile(
      const QuerySpec& query, ServiceResult* result = nullptr,
      const obs::Span* parent = nullptr);

  /// Loads a bundle previously written by SaveBouquetToFile and installs it
  /// under the query's template key. The file's grid resolution must match
  /// this service's configuration (the key encodes it).
  Status WarmStart(const QuerySpec& query, const std::string& path);

  ServiceStats stats() const;
  const BouquetCache& cache() const { return cache_; }
  ThreadPool* pool() { return &pool_; }
  const ServiceOptions& options() const { return options_; }

 private:
  std::vector<int> ResolutionsFor(const QuerySpec& query) const;
  std::shared_ptr<const CompiledBouquet> Compile(const QuerySpec& query);
  uint64_t SnapToGrid(const EssGrid& grid, const DimVector& actual) const;

  Status ValidateRequest(const ServiceRequest& request) const;
  /// Consults the feedback store for a warm-start contour ("feedback.lookup"
  /// span); returns 0 (cold) without a store, a usable seed, or coverage.
  int FeedbackStartContour(const CompiledBouquet& c, uint64_t template_hash,
                           const obs::Span* parent);
  /// Records a finished request's outcome into the feedback store
  /// ("feedback.record" span); no-op without a store or on failed runs.
  void RecordFeedback(const ServiceRequest& request,
                      const CompiledBouquet& c, const ServiceResult& r,
                      const obs::Span* parent);
  /// Everything after the bundle is in hand: execution, span attributes,
  /// run-phase stat folding. Shared by Run and RunBatch.
  void ExecuteWithBundle(const ServiceRequest& request,
                         const std::shared_ptr<const CompiledBouquet>& bundle,
                         obs::Span* req_span,
                         std::chrono::steady_clock::time_point t0,
                         ServiceResult* r);

  /// RAII inflight accounting (gauge + high-water mark + queue sample).
  class InflightScope {
   public:
    explicit InflightScope(BouquetService* s);
    ~InflightScope();

   private:
    BouquetService* s_;
  };

  /// Folds one compilation's timings and POSP counters into stats_.
  void RecordCompileStatsLocked(const CompiledBouquet& c) REQUIRES(stats_mu_);

  // Pre-resolved metric instruments (null without options_.metrics).
  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* shared_compiles = nullptr;
    obs::Histogram* compile_seconds = nullptr;
    obs::Gauge* cache_hit_rate = nullptr;
    obs::Histogram* suboptimality = nullptr;
    // Run-phase aggregates covering both execution modes (the real-data
    // driver additionally exposes its own finer-grained bouquet_driver_*).
    obs::Counter* plan_executions = nullptr;
    obs::Counter* contour_crossings = nullptr;
    obs::Counter* spills = nullptr;
    obs::Counter* fallbacks = nullptr;
    // Serving-layer instruments.
    obs::Counter* batches = nullptr;
    obs::Counter* batch_requests = nullptr;
    obs::Counter* sheds = nullptr;
    obs::Gauge* inflight = nullptr;
    obs::Gauge* queue_depth = nullptr;
    // Feedback-store integration.
    obs::Counter* feedback_lookups = nullptr;
    obs::Counter* feedback_hits = nullptr;
    obs::Counter* feedback_records = nullptr;
    obs::Counter* feedback_warm_runs = nullptr;
    obs::Counter* feedback_contours_skipped = nullptr;
    obs::Counter* feedback_box_shrinks = nullptr;
    obs::Gauge* cache_warm_entries = nullptr;
    obs::Gauge* cache_warm_evictions = nullptr;
  };

  const Catalog* catalog_;
  ServiceOptions options_;
  Instruments ins_;
  ThreadPool pool_;
  BouquetCache cache_;

  // Lock order (see DESIGN.md "Concurrency contracts"): single-flight
  // inflight_mu_ may be held while taking a cache-shard mutex (the
  // double-checked Get) or stats_mu_; never the reverse. stats_mu_ is a
  // leaf: nothing else is acquired under it.
  Mutex inflight_mu_;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const CompiledBouquet>>>
      inflight_ GUARDED_BY(inflight_mu_);

  mutable Mutex stats_mu_ ACQUIRED_AFTER(inflight_mu_);
  ServiceStats stats_ GUARDED_BY(stats_mu_);

  // Instantaneous load (lock-free; snapshotted into ServiceStats).
  std::atomic<int64_t> inflight_now_{0};
  std::atomic<int64_t> inflight_peak_{0};
};

}  // namespace bouquet

#endif  // BOUQUET_SERVICE_SERVICE_H_

#include "service/template_key.h"

#include <cinttypes>
#include <cstdio>

#include "common/str_util.h"

namespace bouquet {

namespace {

// Hex-float formatting so double-valued knobs round-trip exactly into the
// key (two templates differing in lambda by 1 ulp are different templates).
std::string Hex(double v) { return StrPrintf("%a", v); }

// True if `query.filters[i]` / `query.joins[i]` is an error dimension.
bool IsErrorDim(const QuerySpec& query, DimKind kind, int index) {
  for (const auto& dim : query.error_dims) {
    if (dim.kind == kind && dim.predicate_index == index) return true;
  }
  return false;
}

}  // namespace

std::string TemplateSignature(const QuerySpec& query,
                              const std::vector<int>& resolutions,
                              const CostParams& cost_params,
                              const BouquetParams& bouquet_params) {
  std::string s;
  s.reserve(256);
  s += "T:";
  for (const auto& t : query.tables) {
    s += t;
    s += ',';
  }
  s += "|J:";
  for (size_t i = 0; i < query.joins.size(); ++i) {
    const JoinPredicate& j = query.joins[i];
    s += j.left_table + '.' + j.left_column + '=' + j.right_table + '.' +
         j.right_column;
    if (!IsErrorDim(query, DimKind::kJoin, static_cast<int>(i))) {
      s += '@' + Hex(j.default_selectivity);
    }
    s += ',';
  }
  s += "|F:";
  for (size_t i = 0; i < query.filters.size(); ++i) {
    const SelectionPredicate& f = query.filters[i];
    s += f.table + '.' + f.column + CompareOpName(f.op);
    if (!IsErrorDim(query, DimKind::kSelection, static_cast<int>(i))) {
      // Non-error predicates keep their binding: it shifts their
      // (estimated) selectivity and therefore the whole POSP geography.
      s += f.has_constant() ? StrPrintf("%" PRId64, f.constant) : "?";
      s += '@' + Hex(f.default_selectivity);
    }
    s += ',';
  }
  s += "|D:";
  for (const auto& d : query.error_dims) {
    s += StrPrintf("%c%d[%s,%s],", d.kind == DimKind::kJoin ? 'j' : 's',
                   d.predicate_index, Hex(d.lo).c_str(), Hex(d.hi).c_str());
  }
  s += "|A:";
  if (query.aggregate.enabled) {
    s += StrPrintf("f%d(", static_cast<int>(query.aggregate.func));
    s += query.aggregate.agg_table + '.' + query.aggregate.agg_column + ")g:";
    for (const auto& g : query.aggregate.group_by) {
      s += g.first + '.' + g.second + ',';
    }
  }
  s += "|R:";
  for (int r : resolutions) s += StrPrintf("%d,", r);
  s += "|C:" + Hex(cost_params.seq_page_cost) + ',' +
       Hex(cost_params.random_page_cost) + ',' +
       Hex(cost_params.cpu_tuple_cost) + ',' +
       Hex(cost_params.cpu_index_tuple_cost) + ',' +
       Hex(cost_params.cpu_operator_cost) + ',' +
       Hex(cost_params.page_size_bytes) + ',' +
       Hex(cost_params.work_mem_bytes) + ',' + Hex(cost_params.hash_op_factor);
  s += "|B:" + Hex(bouquet_params.ratio) + ',' + Hex(bouquet_params.lambda) +
       ',' + (bouquet_params.anorexic ? '1' : '0');
  return s;
}

uint64_t TemplateHash(const std::string& signature) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : signature) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace bouquet

#include "robustness/pao.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace bouquet {

PaoResult PaoSelect(const PlanDiagram& diagram, QueryOptimizer* opt,
                    const PaoOptions& options) {
  const EssGrid& grid = diagram.grid();
  const uint64_t n = grid.num_points();
  const int dims = grid.dims();
  const int samples = std::max(1, options.samples);
  const double q = std::clamp(options.quantile, 0.0, 1.0);
  const double spread = std::max(0.0, options.spread);

  PaoResult res;
  res.plan_at.assign(n, 0);
  std::vector<bool> used(static_cast<size_t>(diagram.num_plans()), false);

  std::vector<uint64_t> sample_pts(static_cast<size_t>(samples));
  std::vector<int> candidates;
  std::vector<double> ratios(static_cast<size_t>(samples));
  GridPoint sp(dims);
  for (uint64_t qe = 0; qe < n; ++qe) {
    const DimVector center = grid.SelectivityAt(qe);
    // Per-point deterministic stream: selection is independent of the
    // order q_e values are evaluated in.
    Rng rng(options.seed ^ (qe * 0x9e3779b97f4a7c15ull));

    candidates.clear();
    candidates.push_back(diagram.plan_at(qe));
    for (int s = 0; s < samples; ++s) {
      for (int d = 0; d < dims; ++d) {
        const double u = (2.0 * rng.NextDouble() - 1.0) * spread;
        const double sel = center[static_cast<size_t>(d)] * std::pow(10.0, u);
        sp[d] = grid.AxisFloor(d, sel);
      }
      const uint64_t linear = grid.LinearIndex(sp);
      sample_pts[static_cast<size_t>(s)] = linear;
      const int pid = diagram.plan_at(linear);
      if (std::find(candidates.begin(), candidates.end(), pid) ==
          candidates.end()) {
        candidates.push_back(pid);
      }
    }

    int best = candidates[0];
    double best_quantile = std::numeric_limits<double>::infinity();
    for (int pid : candidates) {
      const PlanNode& root = *diagram.plan(pid).root;
      for (int s = 0; s < samples; ++s) {
        const uint64_t linear = sample_pts[static_cast<size_t>(s)];
        ratios[static_cast<size_t>(s)] =
            opt->CostPlanAt(root, grid.SelectivityAt(linear)) /
            diagram.cost_at(linear);
      }
      std::sort(ratios.begin(), ratios.end());
      const int idx = std::min(
          samples - 1, static_cast<int>(std::ceil(q * samples)) - 1);
      const double qv = ratios[static_cast<size_t>(std::max(0, idx))];
      if (qv < best_quantile) {
        best_quantile = qv;
        best = pid;
      }
    }
    res.plan_at[qe] = best;
    used[static_cast<size_t>(best)] = true;
  }
  for (bool u : used) res.distinct_plans += u ? 1 : 0;
  return res;
}

}  // namespace bouquet

// The NAT baseline: the classical compile-time optimizer.
//
// NAT estimates selectivities once (at q_e) and executes that single plan at
// the true location q_a. Over the uniform (q_e, q_a) model of Section 2, its
// policy is simply the plan diagram itself: the plan chosen at estimate point
// q_e is the diagram's optimal plan at q_e.

#ifndef BOUQUET_ROBUSTNESS_NATIVE_H_
#define BOUQUET_ROBUSTNESS_NATIVE_H_

#include "robustness/metrics.h"

namespace bouquet {

/// Robustness profile of the native optimizer over the diagram's ESS.
RobustnessProfile ComputeNativeProfile(const PlanDiagram& diagram,
                                       QueryOptimizer* opt);

/// Differential ground truth for plan-diagram validation: re-optimizes each
/// of `points` with a freshly constructed optimizer (independent of however
/// the diagram was produced — serial, ad-hoc threads, or pool shards) and
/// returns the native-optimal costs, aligned with `points`. A diagram whose
/// stored PIC disagrees with these values was corrupted somewhere between
/// enumeration and assembly.
std::vector<double> BruteForceOptimalCosts(const QuerySpec& query,
                                           const Catalog& catalog,
                                           CostParams params,
                                           const EssGrid& grid,
                                           const std::vector<uint64_t>& points);

}  // namespace bouquet

#endif  // BOUQUET_ROBUSTNESS_NATIVE_H_

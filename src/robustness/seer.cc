#include "robustness/seer.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace bouquet {

namespace {

// Deterministic safety-check point set: all ESS corners plus a uniform
// stride over the grid, capped at max_points.
std::vector<uint64_t> SafetyPoints(const EssGrid& grid, int max_points) {
  const uint64_t n = grid.num_points();
  if (n <= static_cast<uint64_t>(max_points)) {
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  std::set<uint64_t> pts;
  // Corners: every combination of {0, max} per dimension (capped at 2^10).
  const int dims = grid.dims();
  if (dims <= 10) {
    for (int mask = 0; mask < (1 << dims); ++mask) {
      GridPoint p(dims);
      for (int d = 0; d < dims; ++d) {
        p[d] = (mask >> d) & 1 ? grid.resolution(d) - 1 : 0;
      }
      pts.insert(grid.LinearIndex(p));
    }
  }
  const uint64_t stride = n / static_cast<uint64_t>(max_points) + 1;
  for (uint64_t i = 0; i < n; i += stride) pts.insert(i);
  return std::vector<uint64_t>(pts.begin(), pts.end());
}

}  // namespace

SeerResult SeerReduce(const PlanDiagram& diagram, QueryOptimizer* opt,
                      double lambda, int max_safety_points) {
  const EssGrid& grid = diagram.grid();
  const uint64_t n = grid.num_points();

  SeerResult result;
  result.plan_at.resize(n);
  for (uint64_t i = 0; i < n; ++i) result.plan_at[i] = diagram.plan_at(i);

  std::vector<int> region_size(diagram.num_plans(), 0);
  for (int p : result.plan_at) region_size[p]++;
  std::vector<int> present;
  for (int p = 0; p < diagram.num_plans(); ++p) {
    if (region_size[p] > 0) present.push_back(p);
  }
  result.plans_before = static_cast<int>(present.size());

  const std::vector<uint64_t> safety = SafetyPoints(grid, max_safety_points);

  // Cost rows over the safety set, computed lazily per plan.
  std::vector<std::vector<double>> safety_cost(diagram.num_plans());
  auto safety_row = [&](int pid) -> const std::vector<double>& {
    auto& row = safety_cost[pid];
    if (row.empty()) {
      row.resize(safety.size());
      const PlanNode& root = *diagram.plan(pid).root;
      for (size_t i = 0; i < safety.size(); ++i) {
        row[i] = opt->CostPlanAt(root, grid.SelectivityAt(safety[i]));
      }
    }
    return row;
  };

  // Victims smallest-region first.
  std::vector<int> order = present;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (region_size[a] != region_size[b]) {
      return region_size[a] < region_size[b];
    }
    return a < b;
  });
  std::set<int> retained(present.begin(), present.end());

  for (int victim : order) {
    if (retained.size() <= 1) break;
    // A single replacement must cover the whole victim region (SEER replaces
    // plan-by-plan) and be globally safe: cost within (1+lambda) of the
    // victim everywhere in the ESS.
    const std::vector<double>& vrow = safety_row(victim);
    int replacement = -1;
    for (int cand : retained) {
      if (cand == victim) continue;
      const std::vector<double>& crow = safety_row(cand);
      bool safe = true;
      for (size_t i = 0; i < safety.size() && safe; ++i) {
        if (crow[i] > (1.0 + lambda) * vrow[i]) safe = false;
      }
      if (safe) {
        replacement = cand;
        break;
      }
    }
    if (replacement < 0) continue;
    for (uint64_t i = 0; i < n; ++i) {
      if (result.plan_at[i] == victim) result.plan_at[i] = replacement;
    }
    region_size[replacement] += region_size[victim];
    region_size[victim] = 0;
    retained.erase(victim);
  }

  result.plans_after = static_cast<int>(retained.size());
  return result;
}

}  // namespace bouquet

// Sampling-based probably-approximately-optimal (PAO) plan selection
// (after Trummer & Koch's probabilistic robust-optimization line of work).
//
// Instead of trusting the point estimate q_e, PAO treats the true
// selectivities as a random variable centered (in log space) on q_e,
// draws a deterministic sample of locations from that neighborhood, and
// picks the plan whose (1-delta)-quantile of the sub-optimality ratio
// cost_P(q)/PIC(q) over the sample is smallest: with probability 1-delta
// (under the modeled distribution) the chosen plan's sub-optimality does
// not exceed the reported quantile. Like PARQO — and unlike the bouquet —
// this is an a-priori hedge with no runtime guarantee once q_a falls
// outside the modeled distribution; the shootout quantifies exactly that.
//
// Sampling is fully deterministic: the per-point stream is seeded from
// (options.seed, q_e), so results are independent of evaluation order.

#ifndef BOUQUET_ROBUSTNESS_PAO_H_
#define BOUQUET_ROBUSTNESS_PAO_H_

#include <cstdint>
#include <vector>

#include "ess/plan_diagram.h"
#include "optimizer/optimizer.h"

namespace bouquet {

struct PaoOptions {
  /// Locations sampled per estimate point.
  int samples = 32;
  /// Quantile of the cost ratio minimized (1 - delta).
  double quantile = 0.9;
  /// Log10 half-width of the sampling neighborhood around q_e: each
  /// dimension's selectivity is scaled by 10^u, u uniform in
  /// [-spread, spread], then clamped to the axis range.
  double spread = 1.0;
  /// Base seed of the deterministic sampling streams.
  uint64_t seed = 0x9a0;
};

struct PaoResult {
  std::vector<int> plan_at;  ///< per-q_e selected plan (diagram plan id)
  int distinct_plans = 0;
};

PaoResult PaoSelect(const PlanDiagram& diagram, QueryOptimizer* opt,
                    const PaoOptions& options = {});

}  // namespace bouquet

#endif  // BOUQUET_ROBUSTNESS_PAO_H_

// PARQO-style penalty-aware robust plan selection (after Xiu et al.,
// "PARQO: Penalty-Aware Robust Query Optimization", 2024).
//
// PARQO keeps the classical estimate-then-execute discipline but replaces
// "pick the plan that is optimal at the estimate q_e" with "pick the plan
// that minimizes *expected penalty* over an uncertainty neighborhood of
// q_e": penalty(P, q) = cost_P(q) - PIC(q), weighted by a kernel that
// decays with distance from the estimate. The selected plan hedges against
// nearby estimation error but — unlike the bouquet — retains no runtime
// guarantee: a q_a outside the modeled neighborhood can still be arbitrarily
// sub-optimal, which is exactly what the shootout (bench_feedback --smoke)
// quantifies via MSO/ASO/MaxHarm against native, SEER, PAO, and bouquet.
//
// This reimplements the published *contract* on our ESS machinery: the
// uncertainty neighborhood is a Chebyshev window in grid-index space (the
// grid is log-spaced, so a fixed index window is a fixed multiplicative
// selectivity window), candidates are the POSP plans appearing in the
// window, and the kernel is geometric decay in Chebyshev distance.

#ifndef BOUQUET_ROBUSTNESS_PARQO_H_
#define BOUQUET_ROBUSTNESS_PARQO_H_

#include <vector>

#include "ess/plan_diagram.h"
#include "optimizer/optimizer.h"

namespace bouquet {

struct ParqoOptions {
  /// Chebyshev half-width of the uncertainty window, in grid steps.
  int neighborhood = 2;
  /// Weight of a window point at Chebyshev distance d is decay^d.
  double decay = 0.5;
};

struct ParqoResult {
  std::vector<int> plan_at;  ///< per-q_e selected plan (diagram plan id)
  int distinct_plans = 0;
};

/// Selects, for every estimate location q_e, the penalty-minimizing plan
/// over the uncertainty window. Deterministic; uses `opt` for plan
/// recosting (single-threaded, like every optimizer consumer).
ParqoResult ParqoSelect(const PlanDiagram& diagram, QueryOptimizer* opt,
                        const ParqoOptions& options = {});

}  // namespace bouquet

#endif  // BOUQUET_ROBUSTNESS_PARQO_H_

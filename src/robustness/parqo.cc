#include "robustness/parqo.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bouquet {
namespace {

// Enumerates the Chebyshev window around `center`, invoking
// fn(linear, chebyshev_distance) for each in-grid point.
template <typename Fn>
void ForWindow(const EssGrid& grid, const GridPoint& center, int radius,
               Fn&& fn) {
  const int dims = grid.dims();
  GridPoint p(dims);
  // Odometer over [-radius, radius]^dims offsets, clamped by the grid.
  std::vector<int> off(dims, -radius);
  for (;;) {
    bool in_grid = true;
    int dist = 0;
    for (int d = 0; d < dims && in_grid; ++d) {
      const int idx = center[d] + off[d];
      if (idx < 0 || idx >= grid.resolution(d)) {
        in_grid = false;
        break;
      }
      p[d] = idx;
      dist = std::max(dist, std::abs(off[d]));
    }
    if (in_grid) fn(grid.LinearIndex(p), dist);
    int d = dims - 1;
    while (d >= 0 && ++off[d] > radius) {
      off[d] = -radius;
      --d;
    }
    if (d < 0) break;
  }
}

}  // namespace

ParqoResult ParqoSelect(const PlanDiagram& diagram, QueryOptimizer* opt,
                        const ParqoOptions& options) {
  const EssGrid& grid = diagram.grid();
  const uint64_t n = grid.num_points();
  const int radius = std::max(0, options.neighborhood);
  const double decay = std::clamp(options.decay, 0.0, 1.0);

  ParqoResult res;
  res.plan_at.assign(n, 0);
  std::vector<bool> used(static_cast<size_t>(diagram.num_plans()), false);

  std::vector<int> candidates;
  std::vector<uint64_t> window;
  std::vector<double> weights;
  for (uint64_t qe = 0; qe < n; ++qe) {
    const GridPoint center = grid.PointAt(qe);

    window.clear();
    weights.clear();
    candidates.clear();
    ForWindow(grid, center, radius, [&](uint64_t linear, int dist) {
      window.push_back(linear);
      weights.push_back(std::pow(decay, dist));
      const int pid = diagram.plan_at(linear);
      if (std::find(candidates.begin(), candidates.end(), pid) ==
          candidates.end()) {
        candidates.push_back(pid);
      }
    });

    int best = diagram.plan_at(qe);
    double best_penalty = std::numeric_limits<double>::infinity();
    for (int pid : candidates) {
      const PlanNode& root = *diagram.plan(pid).root;
      double penalty = 0.0;
      for (size_t i = 0; i < window.size(); ++i) {
        const double cost = opt->CostPlanAt(root, grid.SelectivityAt(window[i]));
        const double pic = diagram.cost_at(window[i]);
        penalty += weights[i] * std::max(0.0, cost - pic);
      }
      if (penalty < best_penalty) {
        best_penalty = penalty;
        best = pid;
      }
    }
    res.plan_at[qe] = best;
    used[static_cast<size_t>(best)] = true;
  }
  for (bool u : used) res.distinct_plans += u ? 1 : 0;
  return res;
}

}  // namespace bouquet

#include "robustness/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bouquet {

RobustnessProfile ComputeAssignmentProfile(
    const PlanDiagram& diagram, QueryOptimizer* opt,
    const std::vector<int>& plan_at_qe) {
  const EssGrid& grid = diagram.grid();
  const uint64_t n = grid.num_points();
  assert(plan_at_qe.size() == n);

  // Region weight of each distinct plan in the policy.
  std::vector<double> weight(diagram.num_plans(), 0.0);
  for (int p : plan_at_qe) weight[p] += 1.0;
  for (auto& w : weight) w /= static_cast<double>(n);

  RobustnessProfile prof;
  prof.subopt_worst.assign(n, 0.0);
  prof.subopt_avg.assign(n, 0.0);
  std::vector<double> max_cost(n, 0.0);
  std::vector<double> avg_cost(n, 0.0);

  for (int pid = 0; pid < diagram.num_plans(); ++pid) {
    if (weight[pid] <= 0.0) continue;
    ++prof.num_plans;
    const PlanNode& root = *diagram.plan(pid).root;
    for (uint64_t i = 0; i < n; ++i) {
      const double c = opt->CostPlanAt(root, grid.SelectivityAt(i));
      max_cost[i] = std::max(max_cost[i], c);
      avg_cost[i] += weight[pid] * c;
    }
  }

  double aso_sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    const double pic = diagram.cost_at(i);
    assert(pic > 0.0);
    prof.subopt_worst[i] = max_cost[i] / pic;
    prof.subopt_avg[i] = avg_cost[i] / pic;
    aso_sum += prof.subopt_avg[i];
    if (prof.subopt_worst[i] > prof.mso) {
      prof.mso = prof.subopt_worst[i];
      prof.mso_point = i;
    }
  }
  prof.aso = aso_sum / static_cast<double>(n);
  return prof;
}

BouquetProfile ComputeBouquetProfile(const BouquetSimulator& simulator,
                                     bool optimized) {
  const uint64_t n = simulator.diagram().grid().num_points();
  BouquetProfile prof;
  prof.subopt.assign(n, 0.0);
  double aso_sum = 0.0;
  double exec_sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    const SimResult run =
        optimized ? simulator.RunOptimized(i) : simulator.RunBasic(i);
    prof.subopt[i] = simulator.SubOpt(run, i);
    prof.any_fallback |= run.fallback_used;
    aso_sum += prof.subopt[i];
    exec_sum += run.num_executions;
    if (prof.subopt[i] > prof.mso) {
      prof.mso = prof.subopt[i];
      prof.mso_point = i;
    }
  }
  prof.aso = aso_sum / static_cast<double>(n);
  prof.avg_executions = exec_sum / static_cast<double>(n);
  return prof;
}

namespace {
bool HarmEntryValid(double subopt, double native_worst) {
  return std::isfinite(subopt) && std::isfinite(native_worst) &&
         native_worst > 0.0;
}
}  // namespace

double MaxHarm(const std::vector<double>& subopt,
               const std::vector<double>& native_worst) {
  assert(subopt.size() == native_worst.size());
  // Empty input: no location can be harmed, so MaxHarm is 0 ("no harm"),
  // not the -1 lower bound of the harm expression (which only makes sense
  // once at least one location exists). Degenerate entries — zero or
  // non-finite native_worst (an uninitialized or failed profile slot), or
  // non-finite subopt — are SKIPPED under the same convention: a location
  // whose native baseline is meaningless cannot witness harm, and letting
  // it through would poison the aggregate with inf/NaN. If every entry is
  // degenerate the result is again 0.0.
  if (subopt.empty()) return 0.0;
  double mh = -1.0;
  bool any = false;
  for (size_t i = 0; i < subopt.size(); ++i) {
    if (!HarmEntryValid(subopt[i], native_worst[i])) continue;
    any = true;
    mh = std::max(mh, subopt[i] / native_worst[i] - 1.0);
  }
  return any ? mh : 0.0;
}

double HarmFraction(const std::vector<double>& subopt,
                    const std::vector<double>& native_worst) {
  assert(subopt.size() == native_worst.size());
  if (subopt.empty()) return 0.0;
  // Same skip convention as MaxHarm: degenerate entries leave both the
  // numerator and the denominator, so a profile with failed slots reports
  // the harm fraction of the locations that actually have a baseline.
  size_t harmed = 0, valid = 0;
  for (size_t i = 0; i < subopt.size(); ++i) {
    if (!HarmEntryValid(subopt[i], native_worst[i])) continue;
    ++valid;
    if (subopt[i] > native_worst[i] * (1.0 + 1e-9)) ++harmed;
  }
  if (valid == 0) return 0.0;
  return static_cast<double>(harmed) / static_cast<double>(valid);
}

std::vector<double> EnhancementDistribution(
    const std::vector<double>& subopt,
    const std::vector<double>& native_worst, int num_buckets) {
  assert(subopt.size() == native_worst.size());
  // At least the harm bucket and one enhancement bucket must exist; callers
  // asking for fewer get the minimum shape rather than UB below.
  num_buckets = std::max(num_buckets, 2);
  std::vector<double> buckets(num_buckets, 0.0);
  for (size_t i = 0; i < subopt.size(); ++i) {
    int b;
    if (subopt[i] <= 0.0) {
      // Degenerate entry (e.g. an uninitialized profile slot): the
      // enhancement ratio is infinite, which belongs in the top bucket —
      // std::log10(inf) would otherwise produce an out-of-range index.
      b = num_buckets - 1;
    } else {
      const double enhancement = native_worst[i] / subopt[i];
      if (enhancement < 1.0) {
        b = 0;  // harm
      } else {
        b = 1 + static_cast<int>(std::floor(std::log10(enhancement)));
        b = std::min(b, num_buckets - 1);
      }
    }
    buckets[b] += 1.0;
  }
  if (!subopt.empty()) {
    for (auto& b : buckets) b /= static_cast<double>(subopt.size());
  }
  return buckets;
}

}  // namespace bouquet

// Robustness metrics: SubOpt, MSO, ASO, MaxHarm (Section 2 of the paper).
//
// For estimate-based policies (native optimizer, SEER), the per-q_a
// statistics are computed in O(|plans| * |ESS|) rather than |ESS|^2 by
// grouping estimate locations by their chosen plan:
//   SubOpt_worst(q_a) = max_P c_P(q_a) / PIC(q_a)
//   E_qe[SubOpt(q_e, q_a)] = sum_P w_P c_P(q_a) / PIC(q_a),
// where w_P is the fraction of estimate locations choosing P.

#ifndef BOUQUET_ROBUSTNESS_METRICS_H_
#define BOUQUET_ROBUSTNESS_METRICS_H_

#include <cstdint>
#include <vector>

#include "bouquet/simulator.h"
#include "ess/plan_diagram.h"
#include "optimizer/optimizer.h"

namespace bouquet {

/// Per-location robustness profile of an estimate-based policy.
struct RobustnessProfile {
  std::vector<double> subopt_worst;  ///< per q_a: worst case over q_e
  std::vector<double> subopt_avg;    ///< per q_a: expectation over q_e
  double mso = 0.0;
  uint64_t mso_point = 0;  ///< arg max q_a
  double aso = 0.0;
  int num_plans = 0;  ///< distinct plans in the policy
};

/// Profile of a policy defined by a per-estimate-point plan assignment
/// (plan_at_qe[i] = diagram plan id chosen when the estimate is point i).
RobustnessProfile ComputeAssignmentProfile(const PlanDiagram& diagram,
                                           QueryOptimizer* opt,
                                           const std::vector<int>& plan_at_qe);

/// Per-location profile of the bouquet algorithm (q_e is a don't-care).
struct BouquetProfile {
  std::vector<double> subopt;  ///< per q_a: SubOpt(*, q_a)
  double mso = 0.0;
  uint64_t mso_point = 0;
  double aso = 0.0;
  double avg_executions = 0.0;
  bool any_fallback = false;  ///< true if any run violated the guarantee
};

/// Simulates the bouquet at every grid location.
BouquetProfile ComputeBouquetProfile(const BouquetSimulator& simulator,
                                     bool optimized);

/// MaxHarm (Equation 5): max over q_a of subopt(q_a)/native_worst(q_a) - 1.
/// `subopt` is the policy's per-q_a sub-optimality (worst-case for
/// estimate-based policies, SubOpt(*,q_a) for the bouquet). Empty inputs
/// yield 0.0 (no location, no harm).
///
/// Degenerate-entry convention (tested in test_metrics): entries with zero
/// or non-finite `native_worst` (an uninitialized/failed profile slot) or
/// non-finite `subopt` are skipped — a location without a meaningful native
/// baseline cannot witness harm, and a single such slot must not poison the
/// shootout aggregate with inf/NaN. All-degenerate input yields 0.0.
double MaxHarm(const std::vector<double>& subopt,
               const std::vector<double>& native_worst);

/// Fraction of locations where the policy is harmful (ratio > 1).
/// Degenerate entries are skipped from both numerator and denominator
/// (same convention as MaxHarm); all-degenerate input yields 0.0.
double HarmFraction(const std::vector<double>& subopt,
                    const std::vector<double>& native_worst);

/// Figure 16: histogram over q_a of the robustness enhancement factor
/// native_worst(q_a)/subopt(q_a), bucketed by decades:
/// bucket 0: < 1x (harm), bucket 1: [1,10), bucket 2: [10,100), ...
/// Returns bucket fractions (sum = 1). `num_buckets` is clamped to >= 2
/// (harm + one enhancement decade); non-positive subopt entries count as
/// infinite enhancement and land in the top bucket.
std::vector<double> EnhancementDistribution(
    const std::vector<double>& subopt,
    const std::vector<double>& native_worst, int num_buckets = 5);

}  // namespace bouquet

#endif  // BOUQUET_ROBUSTNESS_METRICS_H_

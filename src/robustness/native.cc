#include "robustness/native.h"

namespace bouquet {

RobustnessProfile ComputeNativeProfile(const PlanDiagram& diagram,
                                       QueryOptimizer* opt) {
  return ComputeAssignmentProfile(diagram, opt, diagram.assignments());
}

std::vector<double> BruteForceOptimalCosts(
    const QuerySpec& query, const Catalog& catalog, CostParams params,
    const EssGrid& grid, const std::vector<uint64_t>& points) {
  QueryOptimizer opt(query, catalog, params);
  std::vector<double> costs;
  costs.reserve(points.size());
  for (uint64_t p : points) {
    costs.push_back(opt.OptimizeAt(grid.SelectivityAt(p)).cost);
  }
  return costs;
}

}  // namespace bouquet

#include "robustness/native.h"

namespace bouquet {

RobustnessProfile ComputeNativeProfile(const PlanDiagram& diagram,
                                       QueryOptimizer* opt) {
  return ComputeAssignmentProfile(diagram, opt, diagram.assignments());
}

}  // namespace bouquet

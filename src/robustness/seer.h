// SEER baseline: robust plan selection via globally-safe plan-diagram
// reduction (Harish, Darera, Haritsa, PVLDB 2008).
//
// SEER replaces a plan's ESS region with another plan only when the
// replacement is *globally* safe: its cost must stay within (1+lambda) of the
// replaced plan's cost everywhere in the ESS, not just on the swallowed
// region. This guarantees MaxHarm <= lambda relative to the native optimizer
// while shrinking the plan cardinality to anorexic levels — but, as the paper
// observes, it cannot materially improve the worst (q_e, q_a) combinations,
// so its MSO stays close to NAT's.
//
// The original implementation is not publicly available; this reimplements
// the published contract, checking global safety exhaustively on small grids
// and on a deterministic sample (corners + strided points) on large ones
// (the LiteSEER variant's approach).

#ifndef BOUQUET_ROBUSTNESS_SEER_H_
#define BOUQUET_ROBUSTNESS_SEER_H_

#include <vector>

#include "ess/plan_diagram.h"
#include "optimizer/optimizer.h"

namespace bouquet {

struct SeerResult {
  std::vector<int> plan_at;  ///< reduced per-point assignment
  int plans_before = 0;
  int plans_after = 0;
};

/// Runs the globally-safe reduction. `max_safety_points` caps the number of
/// ESS locations used for the global safety check (exhaustive when the grid
/// is at most that large).
SeerResult SeerReduce(const PlanDiagram& diagram, QueryOptimizer* opt,
                      double lambda, int max_safety_points = 4096);

}  // namespace bouquet

#endif  // BOUQUET_ROBUSTNESS_SEER_H_

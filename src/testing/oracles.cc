#include "testing/oracles.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "bouquet/bounds.h"
#include "bouquet/serialize.h"
#include "bouquet/simulator.h"
#include "common/math_util.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "ess/pic.h"
#include "ess/posp_generator.h"
#include "feedback/warm_start.h"
#include "robustness/metrics.h"
#include "robustness/native.h"
#include "testing/exec_differential.h"

namespace bouquet {

const char* FuzzMutationName(FuzzMutation m) {
  switch (m) {
    case FuzzMutation::kNone:
      return "none";
    case FuzzMutation::kContourRatio:
      return "contour_ratio";
    case FuzzMutation::kPicSpike:
      return "pic_spike";
    case FuzzMutation::kBudgetDeflate:
      return "budget_deflate";
  }
  return "?";
}

bool ParseFuzzMutation(const std::string& name, FuzzMutation* out) {
  for (FuzzMutation m :
       {FuzzMutation::kNone, FuzzMutation::kContourRatio,
        FuzzMutation::kPicSpike, FuzzMutation::kBudgetDeflate}) {
    if (name == FuzzMutationName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

bool InvariantReport::ok() const {
  return pic_monotone.ok && contour_ratio.ok && mso_bound.ok &&
         anorexic_lambda.ok && roundtrip.ok && metamorphic.ok &&
         exec_differential.ok && warm_start.ok;
}

std::string InvariantReport::FirstFailure() const {
  if (!pic_monotone.ok) return "pic_monotone: " + pic_monotone.detail;
  if (!contour_ratio.ok) return "contour_ratio: " + contour_ratio.detail;
  if (!mso_bound.ok) return "mso_bound: " + mso_bound.detail;
  if (!anorexic_lambda.ok) return "anorexic_lambda: " + anorexic_lambda.detail;
  if (!roundtrip.ok) return "roundtrip: " + roundtrip.detail;
  if (!metamorphic.ok) return "metamorphic: " + metamorphic.detail;
  if (!exec_differential.ok) {
    return "exec_differential: " + exec_differential.detail;
  }
  if (!warm_start.ok) return "warm_start: " + warm_start.detail;
  return "";
}

namespace {

// Marks a result failed with the first offending detail only.
void Fail(OracleResult* r, std::string detail) {
  if (!r->ok) return;
  r->ok = false;
  r->detail = std::move(detail);
}

void ApplyDiagramMutation(PlanDiagram* diagram, FuzzMutation mutation) {
  if (mutation != FuzzMutation::kPicSpike) return;
  const uint64_t n = diagram->grid().num_points();
  if (n < 2) return;
  const uint64_t mid = n / 2;
  diagram->Set(mid, diagram->plan_at(mid), diagram->cost_at(mid) * 10.0);
}

void ApplyBouquetMutation(PlanBouquet* bouquet, FuzzMutation mutation) {
  if (bouquet->contours.empty()) return;
  if (mutation == FuzzMutation::kContourRatio) {
    BouquetContour& c = bouquet->contours[bouquet->contours.size() / 2];
    c.step_cost *= 1.37;
    c.budget *= 1.37;
  } else if (mutation == FuzzMutation::kBudgetDeflate) {
    for (auto& c : bouquet->contours) c.budget *= 0.45;
  }
}

OracleResult CheckPicMonotone(const PlanDiagram& diagram, double tol) {
  OracleResult r;
  if (!IsPicMonotone(diagram, tol)) {
    const PicViolation v = FirstPicViolation(diagram, tol);
    Fail(&r, StrPrintf("PIC not monotone: %lld violating pairs, first at "
                       "point %llu dim %d (cost %.17g > successor %.17g)",
                       CountPicViolations(diagram, tol),
                       static_cast<unsigned long long>(v.point), v.dim,
                       v.cost, v.successor_cost));
  }
  return r;
}

OracleResult CheckContourRatio(const PlanBouquet& bouquet,
                               const PlanDiagram& diagram, double tol) {
  OracleResult r;
  const auto& contours = bouquet.contours;
  if (contours.empty()) {
    Fail(&r, "bouquet has no contours");
    return r;
  }
  const double ratio = bouquet.params.ratio;
  const double cmin = diagram.Cmin();
  const double cmax = diagram.Cmax();
  if (!ApproxEqual(contours.back().step_cost, cmax, tol)) {
    Fail(&r, StrPrintf("ladder not anchored at Cmax: IC_m=%.17g Cmax=%.17g",
                       contours.back().step_cost, cmax));
  }
  if (contours.front().step_cost * (1.0 + tol) < cmin ||
      contours.front().step_cost >= cmin * ratio * (1.0 + tol)) {
    Fail(&r, StrPrintf("IC_1=%.17g outside [Cmin, Cmin*r) = [%.17g, %.17g)",
                       contours.front().step_cost, cmin, cmin * ratio));
  }
  for (size_t k = 1; k < contours.size(); ++k) {
    const double got = contours[k].step_cost / contours[k - 1].step_cost;
    if (!ApproxEqual(got, ratio, tol)) {
      Fail(&r, StrPrintf("adjacent cost ratio IC_%zu/IC_%zu = %.17g, "
                         "expected r = %g",
                         k + 1, k, got, ratio));
      break;
    }
  }
  const double inflation =
      bouquet.params.anorexic ? 1.0 + bouquet.params.lambda : 1.0;
  for (size_t k = 0; k < contours.size(); ++k) {
    if (!ApproxEqual(contours[k].budget, contours[k].step_cost * inflation,
                     tol)) {
      Fail(&r, StrPrintf("contour %zu budget %.17g != step %.17g * %g",
                         k + 1, contours[k].budget, contours[k].step_cost,
                         inflation));
      break;
    }
  }
  return r;
}

OracleResult CheckMsoBound(const FuzzInstance& inst, const EssGrid& grid,
                           const PlanDiagram& diagram,
                           const PlanBouquet& bouquet, QueryOptimizer* opt,
                           const OracleOptions& options,
                           InvariantReport* report) {
  OracleResult r;
  // Restart accounting matches the Theorem 3 analysis exactly; the default
  // continuation mode can only be cheaper (asserted below).
  SimOptions restart;
  restart.continue_same_plan = false;
  const BouquetSimulator sim(bouquet, diagram, opt, restart);
  const BouquetSimulator sim_cont(bouquet, diagram, opt);

  const double bound = BouquetMsoBound(bouquet);
  report->mso_bound_value = bound;
  const uint64_t n = grid.num_points();
  double mso = 0.0;
  for (uint64_t qa = 0; qa < n; ++qa) {
    const SimResult run = sim.RunBasic(qa);
    if (!run.completed || run.fallback_used) {
      Fail(&r, StrPrintf("basic run at point %llu %s",
                         static_cast<unsigned long long>(qa),
                         run.fallback_used ? "used the fallback"
                                           : "did not complete"));
      continue;
    }
    const double subopt = sim.SubOpt(run, qa);
    mso = std::max(mso, subopt);
    if (subopt < 1.0 - 1e-6) {
      Fail(&r, StrPrintf("impossible sub-optimality %.17g < 1 at point %llu",
                         subopt, static_cast<unsigned long long>(qa)));
    }
    if (subopt > bound * (1.0 + 1e-6)) {
      Fail(&r, StrPrintf("MSO bound violated at point %llu: SubOpt %.17g > "
                         "rho*(1+lambda)*r^2/(r-1) = %.17g",
                         static_cast<unsigned long long>(qa), subopt, bound));
    }
    // Continuation and the optimized algorithm keep the guarantee alive.
    const SimResult cont = sim_cont.RunBasic(qa);
    if (cont.total_cost > run.total_cost * (1.0 + 1e-9)) {
      Fail(&r, StrPrintf("continuation costlier than restart at point %llu "
                         "(%.17g > %.17g)",
                         static_cast<unsigned long long>(qa), cont.total_cost,
                         run.total_cost));
    }
    const SimResult opt_run = sim_cont.RunOptimized(qa);
    if (!opt_run.completed || opt_run.fallback_used) {
      Fail(&r, StrPrintf("optimized run failed at point %llu",
                         static_cast<unsigned long long>(qa)));
    } else if (sim_cont.SubOpt(opt_run, qa) < 1.0 - 1e-6) {
      Fail(&r, StrPrintf("optimized sub-optimality < 1 at point %llu",
                         static_cast<unsigned long long>(qa)));
    }
  }
  report->mso = mso;

  // Differential PIC validation: the diagram's stored optimal costs must
  // agree with a from-scratch re-optimization at sampled points.
  if (options.differential_samples > 0) {
    std::vector<uint64_t> points;
    const uint64_t stride =
        std::max<uint64_t>(1, n / static_cast<uint64_t>(
                                      options.differential_samples));
    for (uint64_t p = 0; p < n; p += stride) points.push_back(p);
    points.push_back(n - 1);
    const std::vector<double> truth = BruteForceOptimalCosts(
        inst.query, inst.catalog, inst.cost_params, grid, points);
    for (size_t i = 0; i < points.size(); ++i) {
      if (!ApproxEqual(diagram.cost_at(points[i]), truth[i],
                       options.tolerance)) {
        Fail(&r, StrPrintf("diagram PIC %.17g disagrees with brute-force "
                           "optimal %.17g at point %llu",
                           diagram.cost_at(points[i]), truth[i],
                           static_cast<unsigned long long>(points[i])));
        break;
      }
    }
  }
  return r;
}

OracleResult CheckAnorexicLambda(const EssGrid& grid,
                                 const PlanDiagram& diagram,
                                 const PlanBouquet& bouquet,
                                 QueryOptimizer* opt, double tol) {
  OracleResult r;
  const double lambda =
      bouquet.params.anorexic ? bouquet.params.lambda : 0.0;
  for (size_t k = 0; k < bouquet.contours.size(); ++k) {
    const auto& c = bouquet.contours[k];
    for (size_t i = 0; i < c.points.size(); ++i) {
      if (!bouquet.params.anorexic &&
          c.plan_at[i] != diagram.plan_at(c.points[i])) {
        Fail(&r, StrPrintf("non-anorexic bouquet reassigned point %llu",
                           static_cast<unsigned long long>(c.points[i])));
        return r;
      }
      const double cost = opt->CostPlanAt(
          *diagram.plan(c.plan_at[i]).root, grid.SelectivityAt(c.points[i]));
      const double limit = (1.0 + lambda) * diagram.cost_at(c.points[i]);
      if (cost > limit * (1.0 + tol)) {
        Fail(&r, StrPrintf("swallowed plan %d costs %.17g > (1+lambda)*PIC "
                           "= %.17g at contour %zu point %llu",
                           c.plan_at[i], cost, limit, k + 1,
                           static_cast<unsigned long long>(c.points[i])));
        return r;
      }
    }
  }
  return r;
}

// Bit-exact structural equality of two diagrams over the same-shaped grid.
bool DiagramsIdentical(const PlanDiagram& a, const PlanDiagram& b,
                       std::string* why) {
  if (a.num_plans() != b.num_plans()) {
    *why = StrPrintf("plan counts differ (%d vs %d)", a.num_plans(),
                     b.num_plans());
    return false;
  }
  for (int p = 0; p < a.num_plans(); ++p) {
    if (a.plan(p).signature != b.plan(p).signature) {
      *why = StrPrintf("plan %d signature differs", p);
      return false;
    }
  }
  for (uint64_t i = 0; i < a.grid().num_points(); ++i) {
    if (a.plan_at(i) != b.plan_at(i) || a.cost_at(i) != b.cost_at(i)) {
      *why = StrPrintf("point %llu differs (plan %d/%d cost %.17g/%.17g)",
                       static_cast<unsigned long long>(i), a.plan_at(i),
                       b.plan_at(i), a.cost_at(i), b.cost_at(i));
      return false;
    }
  }
  return true;
}

bool BouquetsIdentical(const PlanBouquet& a, const PlanBouquet& b,
                       std::string* why) {
  if (a.contours.size() != b.contours.size()) {
    *why = "contour counts differ";
    return false;
  }
  if (a.plan_ids != b.plan_ids || a.cmin != b.cmin || a.cmax != b.cmax) {
    *why = "plan union or cost anchors differ";
    return false;
  }
  for (size_t k = 0; k < a.contours.size(); ++k) {
    const auto& ca = a.contours[k];
    const auto& cb = b.contours[k];
    if (ca.step_cost != cb.step_cost || ca.budget != cb.budget ||
        ca.points != cb.points || ca.plan_at != cb.plan_at ||
        ca.plan_ids != cb.plan_ids) {
      *why = StrPrintf("contour %zu differs", k + 1);
      return false;
    }
  }
  return true;
}

bool SimResultsIdentical(const SimResult& a, const SimResult& b) {
  if (a.completed != b.completed || a.fallback_used != b.fallback_used ||
      a.total_cost != b.total_cost || a.num_executions != b.num_executions ||
      a.final_plan != b.final_plan || a.final_contour != b.final_contour ||
      a.steps.size() != b.steps.size()) {
    return false;
  }
  for (size_t i = 0; i < a.steps.size(); ++i) {
    if (a.steps[i].plan_id != b.steps[i].plan_id ||
        a.steps[i].budget != b.steps[i].budget ||
        a.steps[i].charged != b.steps[i].charged ||
        a.steps[i].completed != b.steps[i].completed) {
      return false;
    }
  }
  return true;
}

OracleResult CheckRoundTrip(const FuzzInstance& inst, const EssGrid& grid,
                            const PlanDiagram& diagram,
                            const PlanBouquet& bouquet, QueryOptimizer* opt,
                            int replays) {
  OracleResult r;
  std::stringstream stream;
  const Status saved = SaveBouquet(diagram, bouquet, stream);
  if (!saved.ok()) {
    Fail(&r, "save failed: " + saved.ToString());
    return r;
  }
  Result<LoadedBouquet> loaded = LoadBouquet(inst.query, stream);
  if (!loaded.ok()) {
    Fail(&r, "load failed: " + loaded.status().ToString());
    return r;
  }
  // Grid geometry restores exactly (hex float encoding).
  if (loaded->grid->num_points() != grid.num_points() ||
      loaded->grid->dims() != grid.dims()) {
    Fail(&r, "grid shape changed across the round trip");
    return r;
  }
  for (int d = 0; d < grid.dims(); ++d) {
    if (loaded->grid->axis(d) != grid.axis(d)) {
      Fail(&r, StrPrintf("axis %d values changed across the round trip", d));
      return r;
    }
  }
  std::string why;
  if (!DiagramsIdentical(diagram, *loaded->diagram, &why)) {
    Fail(&r, "diagram not restored: " + why);
    return r;
  }
  if (!BouquetsIdentical(bouquet, *loaded->bouquet, &why)) {
    Fail(&r, "bouquet not restored: " + why);
    return r;
  }
  // Re-execution identity: simulations over the loaded artifacts replay
  // the exact step sequences of the originals.
  const BouquetSimulator sim(bouquet, diagram, opt);
  QueryOptimizer opt2(inst.query, inst.catalog, inst.cost_params);
  const BouquetSimulator sim2(*loaded->bouquet, *loaded->diagram, &opt2);
  const uint64_t n = grid.num_points();
  const uint64_t stride =
      std::max<uint64_t>(1, n / std::max(1, replays));
  for (uint64_t qa = 0; qa < n; qa += stride) {
    if (!SimResultsIdentical(sim.RunBasic(qa), sim2.RunBasic(qa)) ||
        !SimResultsIdentical(sim.RunOptimized(qa), sim2.RunOptimized(qa))) {
      Fail(&r, StrPrintf("replay diverged at point %llu after the round trip",
                         static_cast<unsigned long long>(qa)));
      return r;
    }
  }
  return r;
}

OracleResult CheckMetamorphic(const FuzzInstance& inst, const EssGrid& grid,
                              const PlanDiagram& diagram,
                              const PlanBouquet& bouquet,
                              const OracleOptions& options) {
  OracleResult r;
  std::string why;

  // Rule 1: permuting thread/chunk counts in parallel POSP compilation
  // yields bit-identical diagrams and bouquets (PR 1's identity assertion,
  // generalized to random instances).
  {
    PospOptions threads;
    threads.num_threads = 3;
    threads.min_shard_points = 1;
    const PlanDiagram d_threads = GeneratePosp(
        inst.query, inst.catalog, inst.cost_params, grid, threads);
    if (!DiagramsIdentical(diagram, d_threads, &why)) {
      Fail(&r, "3-thread POSP diverged from serial: " + why);
      return r;
    }
    ThreadPool pool(2);
    PospOptions pooled;
    pooled.pool = &pool;
    pooled.min_shard_points = 1;
    const PlanDiagram d_pool = GeneratePosp(
        inst.query, inst.catalog, inst.cost_params, grid, pooled);
    if (!DiagramsIdentical(diagram, d_pool, &why)) {
      Fail(&r, "pooled POSP diverged from serial: " + why);
      return r;
    }
    // Rule 1b: the incremental fast path is invisible in the output — a
    // memoryless run (one full DP per point, no memo, no recost skips)
    // produces a byte-identical diagram, and a high-rate differential audit
    // of the skipped points finds no disagreement.
    PospOptions memoryless;
    memoryless.incremental = false;
    PospStats memoryless_stats;
    const PlanDiagram d_memoryless =
        GeneratePosp(inst.query, inst.catalog, inst.cost_params, grid,
                     memoryless, &memoryless_stats);
    if (!DiagramsIdentical(diagram, d_memoryless, &why)) {
      Fail(&r, "memoryless POSP diverged from incremental: " + why);
      return r;
    }
    PospOptions audited;
    audited.audit_fraction = 0.25;
    PospStats audited_stats;
    const PlanDiagram d_audited =
        GeneratePosp(inst.query, inst.catalog, inst.cost_params, grid,
                     audited, &audited_stats);
    if (!DiagramsIdentical(diagram, d_audited, &why)) {
      Fail(&r, "audited incremental POSP diverged: " + why);
      return r;
    }
    if (audited_stats.audit_failures != 0) {
      Fail(&r, StrPrintf("differential audit caught %lld fast-path "
                         "disagreements",
                         audited_stats.audit_failures));
      return r;
    }
    if (audited_stats.dp_calls + audited_stats.recost_hits !=
            static_cast<long long>(grid.num_points()) ||
        memoryless_stats.dp_calls !=
            static_cast<long long>(grid.num_points())) {
      Fail(&r, "POSP point accounting broken (dp_calls + recost_hits != "
               "points)");
      return r;
    }

    QueryOptimizer opt_threads(inst.query, inst.catalog, inst.cost_params);
    QueryOptimizer opt_pool(inst.query, inst.catalog, inst.cost_params);
    const PlanBouquet b_threads =
        BuildBouquet(d_threads, &opt_threads, inst.bouquet_params);
    const PlanBouquet b_pool =
        BuildBouquet(d_pool, &opt_pool, inst.bouquet_params);
    if (!BouquetsIdentical(bouquet, b_threads, &why) ||
        !BouquetsIdentical(bouquet, b_pool, &why)) {
      Fail(&r, "bouquet not invariant to POSP sharding: " + why);
      return r;
    }
  }

  // Rule 2: refining the grid never increases MSO-bound violations (both
  // counts are expected to be zero; the relation is what must hold).
  {
    auto count_violations = [&](const EssGrid& g, const PlanDiagram& d,
                                const PlanBouquet& b,
                                QueryOptimizer* o) -> long long {
      SimOptions restart;
      restart.continue_same_plan = false;
      const BouquetSimulator sim(b, d, o, restart);
      const double bound = BouquetMsoBound(b);
      long long violations = 0;
      for (uint64_t qa = 0; qa < g.num_points(); ++qa) {
        const SimResult run = sim.RunBasic(qa);
        if (!run.completed || run.fallback_used ||
            sim.SubOpt(run, qa) > bound * (1.0 + 1e-6)) {
          ++violations;
        }
      }
      return violations;
    };
    QueryOptimizer opt_coarse(inst.query, inst.catalog, inst.cost_params);
    const long long coarse =
        count_violations(grid, diagram, bouquet, &opt_coarse);

    std::vector<int> fine_res = inst.resolutions;
    for (int& res : fine_res) res *= 2;
    const EssGrid fine_grid(inst.query, fine_res);
    const PlanDiagram fine_diagram = GeneratePosp(
        inst.query, inst.catalog, inst.cost_params, fine_grid);
    QueryOptimizer opt_fine(inst.query, inst.catalog, inst.cost_params);
    const PlanBouquet fine_bouquet =
        BuildBouquet(fine_diagram, &opt_fine, inst.bouquet_params);
    const long long fine =
        count_violations(fine_grid, fine_diagram, fine_bouquet, &opt_fine);
    if (fine > coarse) {
      Fail(&r, StrPrintf("grid refinement increased MSO-bound violations "
                         "(%lld -> %lld)",
                         coarse, fine));
      return r;
    }
  }
  (void)options;
  return r;
}

// Feedback warm starts are a pure contour skip (feedback/warm_start.h), so
// two properties must hold against the same restart-accounting simulator the
// mso_bound oracle uses:
//   1. completion, unconditionally: every location inside a skipped
//      contour's region is dominated by a frontier point, so PCM plus the
//      anorexic budget keeps some bouquet plan within budget for q_a no
//      matter how wrong the seed was;
//   2. the Theorem 3 bound, whenever the seed is dominated by q_a: the
//      clamp C(seed) <= PIC(q_a) puts the start at or below q_a's band, so
//      the warm run is exactly a cold run's tail and inherits its bound.
// A mispredicted seed (the ESS max corner) deliberately exercises (1)
// without (2).
OracleResult CheckWarmStart(const EssGrid& grid, const PlanDiagram& diagram,
                            const PlanBouquet& bouquet, QueryOptimizer* opt,
                            const OracleOptions& options) {
  OracleResult r;
  if (options.warm_start_samples <= 0 || bouquet.contours.empty()) return r;
  SimOptions restart;
  restart.continue_same_plan = false;
  const BouquetSimulator sim(bouquet, diagram, opt, restart);
  const double bound = BouquetMsoBound(bouquet);
  const uint64_t n = grid.num_points();
  const uint64_t stride = std::max<uint64_t>(
      1, n / static_cast<uint64_t>(options.warm_start_samples));
  for (uint64_t qa = 0; qa < n; qa += stride) {
    // Dominated seeds: the componentwise-halved location and q_a itself.
    GridPoint half = grid.PointAt(qa);
    for (int& c : half) c /= 2;
    const uint64_t dominated[2] = {grid.LinearIndex(half), qa};
    for (const uint64_t seed : dominated) {
      for (const int margin : {0, 1}) {
        const int start =
            WarmStartContour(bouquet, diagram.cost_at(seed), margin);
        const SimResult run = sim.RunOptimizedWarm(qa, start);
        if (!run.completed || run.fallback_used) {
          Fail(&r, StrPrintf(
                       "warm run (seed %llu, start %d) at point %llu %s",
                       static_cast<unsigned long long>(seed), start,
                       static_cast<unsigned long long>(qa),
                       run.fallback_used ? "used the fallback"
                                         : "did not complete"));
          continue;
        }
        const double subopt = sim.SubOpt(run, qa);
        if (subopt < 1.0 - 1e-6) {
          Fail(&r, StrPrintf("impossible warm sub-optimality %.17g < 1 at "
                             "point %llu (seed %llu)",
                             subopt, static_cast<unsigned long long>(qa),
                             static_cast<unsigned long long>(seed)));
        }
        if (subopt > bound * (1.0 + 1e-6)) {
          Fail(&r, StrPrintf(
                       "warm start broke the MSO bound at point %llu: "
                       "SubOpt %.17g > %.17g (seed %llu, start %d)",
                       static_cast<unsigned long long>(qa), subopt, bound,
                       static_cast<unsigned long long>(seed), start));
        }
      }
    }
    // Misprediction: a max-corner seed may start above q_a's band; the run
    // forfeits the bound but must still complete within its budgets.
    const int wild =
        WarmStartContour(bouquet, diagram.cost_at(n - 1), /*safety_margin=*/0);
    const SimResult run = sim.RunOptimizedWarm(qa, wild);
    if (!run.completed || run.fallback_used) {
      Fail(&r, StrPrintf("mispredicted warm run (start %d) at point %llu %s",
                         wild, static_cast<unsigned long long>(qa),
                         run.fallback_used ? "used the fallback"
                                           : "did not complete"));
    }
  }
  return r;
}

}  // namespace

InvariantReport CheckInvariants(const FuzzInstance& instance,
                                const OracleOptions& options) {
  const EssGrid grid(instance.query, instance.resolutions);
  PlanDiagram diagram = GeneratePosp(instance.query, instance.catalog,
                                     instance.cost_params, grid);
  ApplyDiagramMutation(&diagram, options.mutation);
  QueryOptimizer opt(instance.query, instance.catalog, instance.cost_params);
  PlanBouquet bouquet = BuildBouquet(diagram, &opt, instance.bouquet_params);
  ApplyBouquetMutation(&bouquet, options.mutation);

  InvariantReport report;
  report.grid_points = grid.num_points();
  report.num_contours = static_cast<int>(bouquet.contours.size());
  report.rho = bouquet.rho();
  report.num_plans = diagram.num_plans();

  report.pic_monotone = CheckPicMonotone(diagram, options.tolerance);
  report.contour_ratio = CheckContourRatio(bouquet, diagram,
                                           options.tolerance);
  report.mso_bound =
      CheckMsoBound(instance, grid, diagram, bouquet, &opt, options, &report);
  report.anorexic_lambda = CheckAnorexicLambda(grid, diagram, bouquet, &opt,
                                               options.tolerance);
  report.roundtrip = CheckRoundTrip(instance, grid, diagram, bouquet, &opt,
                                    options.roundtrip_replays);
  if (options.metamorphic && options.mutation == FuzzMutation::kNone) {
    report.metamorphic =
        CheckMetamorphic(instance, grid, diagram, bouquet, options);
  }
  if (options.exec_differential && options.mutation == FuzzMutation::kNone) {
    ExecDifferentialOptions exec_opts;
    exec_opts.max_rows_per_table = options.exec_differential_rows;
    const ExecDiffResult diff = CheckExecDifferential(instance, exec_opts);
    report.exec_differential.ok = diff.ok;
    report.exec_differential.detail = diff.detail;
  }
  if (options.mutation == FuzzMutation::kNone) {
    report.warm_start = CheckWarmStart(grid, diagram, bouquet, &opt, options);
  }
  return report;
}

}  // namespace bouquet

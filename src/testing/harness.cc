#include "testing/harness.h"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>

#include "common/str_util.h"
#include "service/template_key.h"

namespace bouquet {

FuzzConfig FuzzConfig::FromEnv() {
  FuzzConfig config;
  if (const char* iters = std::getenv("BOUQUET_FUZZ_ITERS")) {
    config.iterations = std::max(1, std::atoi(iters));
  }
  if (const char* seed = std::getenv("BOUQUET_FUZZ_SEED")) {
    config.base_seed = std::strtoull(seed, nullptr, 0);
  }
  if (const char* dir = std::getenv("BOUQUET_REPRO_DIR")) {
    config.repro_dir = dir;
  }
  return config;
}

std::string FuzzReport::Summary() const {
  std::string s = StrPrintf(
      "%d instances, %llu grid points, checksum 0x%" PRIx64
      ", max bound utilization %.3f, %zu failure(s)",
      instances, static_cast<unsigned long long>(total_grid_points),
      instance_checksum, max_bound_utilization, failures.size());
  for (const auto& f : failures) {
    s += "\n  " + f.instance + " -> " + f.detail;
    if (!f.repro_path.empty()) s += " [repro: " + f.repro_path + "]";
  }
  return s;
}

FuzzReport RunFuzz(const FuzzConfig& config) {
  FuzzReport report;
  for (int i = 0; i < config.iterations; ++i) {
    const uint64_t seed = config.base_seed + static_cast<uint64_t>(i);
    const FuzzInstance instance = GenerateFuzzInstance(seed, config.gen);

    OracleOptions options;
    options.mutation = config.mutation;
    options.differential_samples = config.differential_samples;
    options.metamorphic = config.metamorphic_every > 0 &&
                          i % config.metamorphic_every == 0;
    const InvariantReport check = CheckInvariants(instance, options);

    ++report.instances;
    report.total_grid_points += check.grid_points;
    report.instance_checksum =
        report.instance_checksum * 1099511628211ULL ^
        TemplateHash(TemplateSignature(instance.query, instance.resolutions,
                                       instance.cost_params,
                                       instance.bouquet_params));
    if (check.mso_bound_value > 0.0) {
      report.max_bound_utilization =
          std::max(report.max_bound_utilization,
                   check.mso / check.mso_bound_value);
    }
    if (check.ok()) continue;

    FuzzFailure failure;
    failure.spec = {seed, config.gen, config.mutation};
    failure.instance = instance.Describe();
    if (config.shrink) {
      const ShrinkResult shrunk = ShrinkFailure(failure.spec);
      failure.shrunk = shrunk.minimal;
      failure.oracle = shrunk.oracle;
      failure.detail = shrunk.detail;
    } else {
      failure.shrunk = failure.spec;
      failure.detail = check.FirstFailure();
      const size_t colon = failure.detail.find(':');
      failure.oracle = colon == std::string::npos
                           ? failure.detail
                           : failure.detail.substr(0, colon);
    }
    if (!config.repro_dir.empty()) {
      failure.repro_path = StrPrintf("%s/fuzz_0x%" PRIx64 ".repro",
                                     config.repro_dir.c_str(), seed);
      if (!WriteRepro(failure.shrunk, failure.oracle, failure.detail,
                      failure.repro_path)
               .ok()) {
        failure.repro_path.clear();
      }
    }
    report.failures.push_back(std::move(failure));
    if (static_cast<int>(report.failures.size()) >= config.max_failures) {
      break;
    }
  }
  return report;
}

}  // namespace bouquet

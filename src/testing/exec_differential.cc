#include "testing/exec_differential.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "executor/builder.h"
#include "executor/exec_context.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan.h"
#include "storage/datagen.h"

namespace bouquet {

namespace {

// Log-maps the instance's nominal row counts (which can span millions)
// into [cap/8, cap] so relative table-size ratios survive the scale-down.
std::map<std::string, int64_t> ScaleRowCounts(const FuzzInstance& instance,
                                              int64_t cap) {
  std::map<std::string, int64_t> rows;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const std::string& name : instance.query.tables) {
    const double l = std::log(
        std::max(2.0, instance.catalog.GetTable(name).stats.row_count));
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  const int64_t floor_rows = std::max<int64_t>(8, cap / 8);
  for (const std::string& name : instance.query.tables) {
    const double l = std::log(
        std::max(2.0, instance.catalog.GetTable(name).stats.row_count));
    const double frac = hi > lo ? (l - lo) / (hi - lo) : 1.0;
    rows[name] = floor_rows +
                 static_cast<int64_t>(frac * static_cast<double>(cap -
                                                                 floor_rows));
  }
  return rows;
}

// Binds one selection predicate's constant from the (data-synced) catalog
// histogram so its actual selectivity is ~`target`; returns the achieved
// selectivity (best effort for kEqual).
double BindOneFilter(SelectionPredicate* f, const Catalog& catalog,
                     double target) {
  const TableInfo& t = catalog.GetTable(f->table);
  const ColumnStats& cs = t.columns[t.ColumnIndex(f->column)].stats;
  const Histogram& hist = cs.histogram;
  if (hist.empty()) {  // degenerate column; any constant keeps builds valid
    f->constant = cs.min_value;
    return 1.0;
  }
  switch (f->op) {
    case CompareOp::kLess:
      f->constant = hist.Quantile(target);
      return hist.SelectivityLess(f->constant);
    case CompareOp::kLessEqual:
      f->constant = hist.Quantile(target);
      return hist.SelectivityLessEqual(f->constant);
    case CompareOp::kGreater:
      f->constant = hist.Quantile(1.0 - target);
      return 1.0 - hist.SelectivityLessEqual(f->constant);
    case CompareOp::kGreaterEqual:
      f->constant = hist.Quantile(1.0 - target);
      return 1.0 - hist.SelectivityLess(f->constant);
    case CompareOp::kEqual:
      f->constant = hist.Quantile(target);
      return cs.EqualitySelectivity();
  }
  return 0.0;
}

}  // namespace

ExecDataset MaterializeInstance(const FuzzInstance& instance,
                                int64_t max_rows_per_table) {
  ExecDataset ds;
  ds.query = instance.query;
  Rng rng(instance.seed ^ 0x9E3779B97F4A7C15ull);

  // Join graph orientation is parent.pk = child.fk (generators.cc), so the
  // right table of each join predicate references the left table's keys.
  std::map<std::string, std::string> parent_of;
  for (const JoinPredicate& j : ds.query.joins) {
    parent_of[j.right_table] = j.left_table;
  }

  const std::map<std::string, int64_t> row_counts =
      ScaleRowCounts(instance, std::max<int64_t>(16, max_rows_per_table));

  // Generated tables list parents before children (chain/star with the hub
  // first), so iterating in query order makes every parent's keys available
  // when its children need them.
  std::map<std::string, std::vector<int64_t>> pk_of;
  for (const std::string& name : ds.query.tables) {
    const TableInfo& info = instance.catalog.GetTable(name);
    const int64_t n = row_counts.at(name);
    std::vector<std::string> col_names;
    col_names.reserve(info.columns.size());
    for (const ColumnInfo& c : info.columns) col_names.push_back(c.name);

    std::vector<std::vector<int64_t>> cols;
    for (const ColumnInfo& c : info.columns) {
      if (c.name == "pk") {
        cols.push_back(datagen::Sequential(n));
      } else if (c.name == "fk") {
        auto parent = parent_of.find(name);
        if (parent != parent_of.end() && pk_of.count(parent->second) > 0) {
          // Imperfect integrity on purpose: dangling keys exercise the
          // join paths where probes find no match.
          cols.push_back(datagen::ForeignKey(&rng, n, pk_of[parent->second],
                                             /*match_fraction=*/0.92));
        } else {
          cols.push_back(datagen::Uniform(&rng, n, 1, std::max<int64_t>(2, n)));
        }
      } else {
        // Data columns: skewed or uniform, domain scaled from the nominal
        // NDV so histograms have usable spread at the reduced row count.
        const int64_t domain = std::max<int64_t>(
            4, std::min<int64_t>(static_cast<int64_t>(c.stats.ndv), 4 * n));
        cols.push_back(rng.NextBool(0.5)
                           ? datagen::Zipf(&rng, n, domain,
                                           0.2 + rng.NextDouble())
                           : datagen::Uniform(&rng, n, 1, domain));
      }
    }

    DataTable t(name, col_names);
    t.Reserve(n);
    std::vector<int64_t> row(cols.size());
    for (int64_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < cols.size(); ++c) row[c] = cols[c][i];
      t.AppendRow(row);
    }
    t.FinalizeBulkLoad();
    const int pk_col = [&] {
      for (size_t c = 0; c < col_names.size(); ++c) {
        if (col_names[c] == "pk") return static_cast<int>(c);
      }
      return 0;
    }();
    DataTable* stored = ds.db.AddTable(std::move(t));
    pk_of[name] = stored->column(pk_col);
    stored->SyncCatalog(&ds.catalog, info.stats.row_width_bytes,
                        /*indexed=*/true, /*histogram_buckets=*/64);
  }

  // Bind every selection constant against the real data. Error selection
  // dims get targets inside their declared [lo, hi] range (clamped away
  // from the degenerate endpoints) and record the achieved selectivity;
  // other filters get unremarkable mid-range targets.
  std::vector<bool> is_error_filter(ds.query.filters.size(), false);
  ds.achieved.assign(ds.query.error_dims.size(), 0.0);
  for (size_t d = 0; d < ds.query.error_dims.size(); ++d) {
    const ErrorDimension& dim = ds.query.error_dims[d];
    if (dim.kind != DimKind::kSelection) continue;
    is_error_filter[dim.predicate_index] = true;
    const double lo = std::max(0.02, dim.lo);
    const double hi = std::max(lo, std::min(0.98, dim.hi));
    const double target = lo + (hi - lo) * rng.NextDouble();
    ds.achieved[d] = BindOneFilter(&ds.query.filters[dim.predicate_index],
                                   ds.catalog, target);
  }
  for (size_t i = 0; i < ds.query.filters.size(); ++i) {
    if (is_error_filter[i]) continue;
    BindOneFilter(&ds.query.filters[i], ds.catalog,
                  0.1 + 0.8 * rng.NextDouble());
  }
  return ds;
}

namespace {

// Per-node counter snapshot, aligned with CollectNodes() preorder.
struct NodeSnap {
  bool present = false;
  int64_t tuples_out = 0;
  int64_t tuples_scanned = 0;
  bool finished = false;
};

struct RunSnap {
  int status = 0;
  bool build_failed = false;
  int64_t rows_emitted = 0;
  double charged = 0.0;
  int64_t page_reads = 0;
  int64_t page_hits = 0;
  /// Non-empty when the run's charged page counters diverged from the
  /// buffer manager's miss/hit counters (paged runs only).
  std::string accounting;
  std::vector<Row> rows;
  std::vector<NodeSnap> nodes;
};

RunSnap RunOne(ExecEngine engine, const PlanNode& root, ExecDataset* ds,
               const CostModel* cm, double budget, int batch_size,
               bool spill) {
  ExecContext ctx;
  ctx.query = &ds->query;
  ctx.catalog = &ds->catalog;
  ctx.db = &ds->db;
  ctx.cost_model = cm;
  ctx.batch_size = batch_size;

  // Paged runs: identical cold replacement state for every run, so the
  // scalar oracle and the batch replay face the same hit/miss sequence.
  storage::BufferManager* bm =
      ds->db.storage() != nullptr ? ds->db.storage()->buffer() : nullptr;
  if (bm != nullptr) bm->ResetForTest();

  RunSnap s;
  const ExecutionOutcome out =
      spill ? ExecuteSpilledWith(engine, root, &ctx, budget)
            : ExecutePlanWith(engine, root, &ctx, budget, &s.rows);
  s.status = static_cast<int>(out.status);
  s.build_failed = out.build_failed;
  s.rows_emitted = out.rows_emitted;
  s.charged = out.cost_charged;
  s.page_reads = out.page_reads;
  s.page_hits = out.page_hits;
  if (bm != nullptr) {
    // Accounting oracle: what the meter charged as page I/O must be exactly
    // what the replacement simulation decided. Index builds, spills, and
    // maintenance reads never call Access(), so any drift here is a bug in
    // the hot path's charge placement.
    const storage::BufferStats bs = bm->stats();
    if (bs.misses != static_cast<uint64_t>(out.page_reads) ||
        bs.hits != static_cast<uint64_t>(out.page_hits)) {
      s.accounting = StrPrintf(
          "charged reads/hits %lld/%lld vs buffer misses/hits %llu/%llu",
          static_cast<long long>(out.page_reads),
          static_cast<long long>(out.page_hits),
          static_cast<unsigned long long>(bs.misses),
          static_cast<unsigned long long>(bs.hits));
    }
  }
  for (const PlanNode* n : CollectNodes(root)) {
    const NodeCounters* nc = ctx.instr.Find(n);
    NodeSnap ns;
    if (nc != nullptr) {
      ns.present = true;
      ns.tuples_out = nc->tuples_out;
      ns.tuples_scanned = nc->tuples_scanned;
      ns.finished = nc->finished;
    }
    s.nodes.push_back(ns);
  }
  return s;
}

// First divergence between a scalar-oracle snapshot and a batch snapshot,
// or "" when they agree everywhere. `charged` is compared bit-exact.
std::string CompareSnaps(const RunSnap& oracle, const RunSnap& batch) {
  if (!oracle.accounting.empty()) {
    return "scalar accounting: " + oracle.accounting;
  }
  if (!batch.accounting.empty()) {
    return "batch accounting: " + batch.accounting;
  }
  if (oracle.page_reads != batch.page_reads ||
      oracle.page_hits != batch.page_hits) {
    return StrPrintf("page reads/hits %lld/%lld vs %lld/%lld",
                     static_cast<long long>(oracle.page_reads),
                     static_cast<long long>(oracle.page_hits),
                     static_cast<long long>(batch.page_reads),
                     static_cast<long long>(batch.page_hits));
  }
  if (oracle.build_failed != batch.build_failed) {
    return StrPrintf("build_failed %d vs %d", static_cast<int>(oracle.build_failed),
                     static_cast<int>(batch.build_failed));
  }
  if (oracle.status != batch.status) {
    return StrPrintf("status %d vs %d", oracle.status, batch.status);
  }
  if (oracle.charged != batch.charged) {
    return StrPrintf("charged %.17g vs %.17g", oracle.charged, batch.charged);
  }
  if (oracle.rows_emitted != batch.rows_emitted) {
    return StrPrintf("rows_emitted %lld vs %lld",
                     static_cast<long long>(oracle.rows_emitted),
                     static_cast<long long>(batch.rows_emitted));
  }
  if (oracle.rows.size() != batch.rows.size()) {
    return StrPrintf("materialized rows %zu vs %zu", oracle.rows.size(),
                     batch.rows.size());
  }
  for (size_t i = 0; i < oracle.rows.size(); ++i) {
    if (oracle.rows[i] != batch.rows[i]) {
      return StrPrintf("row %zu differs", i);
    }
  }
  if (oracle.nodes.size() != batch.nodes.size()) {
    return StrPrintf("node set %zu vs %zu", oracle.nodes.size(),
                     batch.nodes.size());
  }
  for (size_t i = 0; i < oracle.nodes.size(); ++i) {
    const NodeSnap& a = oracle.nodes[i];
    const NodeSnap& b = batch.nodes[i];
    if (a.present != b.present || a.tuples_out != b.tuples_out ||
        a.tuples_scanned != b.tuples_scanned || a.finished != b.finished) {
      return StrPrintf(
          "node %zu counters (present %d/%d out %lld/%lld scanned %lld/%lld "
          "finished %d/%d)",
          i, static_cast<int>(a.present), static_cast<int>(b.present),
          static_cast<long long>(a.tuples_out),
          static_cast<long long>(b.tuples_out),
          static_cast<long long>(a.tuples_scanned),
          static_cast<long long>(b.tuples_scanned),
          static_cast<int>(a.finished), static_cast<int>(b.finished));
    }
  }
  return "";
}

}  // namespace

ExecDiffResult CheckExecDifferential(const FuzzInstance& instance,
                                     const ExecDifferentialOptions& options) {
  ExecDiffResult r;
  ExecDataset ds = MaterializeInstance(instance, options.max_rows_per_table);

  // Paged mode: re-home the materialized tables onto disk-backed slotted
  // pages behind a buffer pool. The catalog (already synced from identical
  // data) and bound constants carry over unchanged.
  std::unique_ptr<storage::StorageManager> sm;
  if (!options.paged_data_dir.empty()) {
    storage::StorageOptions so;
    so.data_dir = options.paged_data_dir;
    so.pool_pages = options.paged_pool_pages;
    so.policy = options.paged_policy;
    sm = std::make_unique<storage::StorageManager>(so);
    for (const std::string& name : ds.query.tables) {
      auto imported = sm->ImportTable(ds.db.table(name));
      if (!imported.ok()) {
        r.ok = false;
        r.detail = StrPrintf("paged import of %s failed: %s", name.c_str(),
                             imported.status().message().c_str());
        return r;
      }
    }
    Database paged_db;
    paged_db.AttachStorage(sm.get());
    ds.db = std::move(paged_db);
  }

  const CostModel cm(instance.cost_params);
  QueryOptimizer opt(ds.query, ds.catalog, instance.cost_params);

  // Candidate optimization points: ESS corners plus the native defaults.
  const int nd = ds.query.NumDims();
  std::vector<DimVector> points;
  DimVector all_lo(nd), all_hi(nd), mid(nd);
  for (int d = 0; d < nd; ++d) {
    all_lo[d] = ds.query.error_dims[d].lo;
    all_hi[d] = ds.query.error_dims[d].hi;
    mid[d] = std::sqrt(all_lo[d] * all_hi[d]);
  }
  points.push_back(all_lo);
  points.push_back(all_hi);
  points.push_back(mid);
  points.push_back(opt.DefaultDims());

  std::vector<Plan> plans;
  for (const DimVector& p : points) {
    if (static_cast<int>(plans.size()) >= options.max_plans) break;
    Plan plan = opt.OptimizeAt(p);
    bool dup = false;
    for (const Plan& seen : plans) dup = dup || seen.signature == plan.signature;
    if (!dup) plans.push_back(std::move(plan));
  }

  const double inf = std::numeric_limits<double>::infinity();
  for (const Plan& plan : plans) {
    ++r.plans_checked;

    // Reference full run under the scalar oracle; its total charge anchors
    // the budget sweep.
    const RunSnap full = RunOne(ExecEngine::kScalar, *plan.root, &ds, &cm,
                                inf, /*batch_size=*/1024, /*spill=*/false);
    const double total = full.charged;

    // Budget sweep: unlimited, below-first-charge (abort on tuple one),
    // interior fractions, and the nextafter boundaries around the total
    // charge (abort exactly at the final charge vs completing).
    std::vector<double> budgets = {inf, total * 1e-9,
                                   std::nextafter(total, 0.0),
                                   std::nextafter(total, inf), total};
    for (int i = 1; i <= options.budget_sweeps; ++i) {
      budgets.push_back(total * static_cast<double>(i) /
                        static_cast<double>(options.budget_sweeps + 1));
    }

    for (const double budget : budgets) {
      const RunSnap oracle =
          budget == inf ? full
                        : RunOne(ExecEngine::kScalar, *plan.root, &ds, &cm,
                                 budget, 1024, false);
      for (const int bsz : options.batch_sizes) {
        const RunSnap batch = RunOne(ExecEngine::kBatch, *plan.root, &ds, &cm,
                                     budget, bsz, false);
        ++r.runs_compared;
        const std::string diff = CompareSnaps(oracle, batch);
        if (!diff.empty()) {
          r.ok = false;
          r.detail = StrPrintf(
              "plan %s budget %.17g batch_size %d: %s", plan.signature.c_str(),
              budget, bsz, diff.c_str());
          return r;
        }
      }
    }

    if (!options.check_spill) continue;
    for (size_t d = 0; d < ds.query.error_dims.size(); ++d) {
      const ErrorDimension& dim = ds.query.error_dims[d];
      const PlanNode* sub = FindPredicateNode(
          *plan.root, dim.kind == DimKind::kJoin, dim.predicate_index);
      if (sub == nullptr) continue;
      const RunSnap sfull = RunOne(ExecEngine::kScalar, *sub, &ds, &cm, inf,
                                   1024, /*spill=*/true);
      const std::vector<double> sbudgets = {inf, sfull.charged * 0.5,
                                            std::nextafter(sfull.charged,
                                                           0.0)};
      for (const double budget : sbudgets) {
        const RunSnap oracle =
            budget == inf ? sfull
                          : RunOne(ExecEngine::kScalar, *sub, &ds, &cm,
                                   budget, 1024, true);
        for (const int bsz : options.batch_sizes) {
          const RunSnap batch =
              RunOne(ExecEngine::kBatch, *sub, &ds, &cm, budget, bsz, true);
          ++r.runs_compared;
          const std::string diff = CompareSnaps(oracle, batch);
          if (!diff.empty()) {
            r.ok = false;
            r.detail = StrPrintf(
                "spill dim %zu plan %s budget %.17g batch_size %d: %s", d,
                plan.signature.c_str(), budget, bsz, diff.c_str());
            return r;
          }
        }
      }
    }
  }
  return r;
}

}  // namespace bouquet

// Seeded random instance generation for the property-based invariant
// harness.
//
// An "instance" is everything the compile-time pipeline consumes: a random
// schema/catalog (row counts, NDVs, Zipf-skewed equi-depth histograms), a
// random SPJ(A) query template over it (chain or star join graph, optional
// filters with histogram-bound constants), 1-3 error-prone selectivity
// dimensions with random log-spans, per-dimension grid resolutions, and the
// cost-model / bouquet parameterization. Generation is a pure function of
// (seed, options) via the library Rng, so every instance — and hence every
// harness failure — is exactly replayable from a seed.

#ifndef BOUQUET_TESTING_GENERATORS_H_
#define BOUQUET_TESTING_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bouquet/bouquet.h"
#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "query/query_spec.h"

namespace bouquet {

/// Knobs bounding the generated instance space. The shrinker minimizes
/// failing instances by walking these downward, so every field must keep the
/// generator total (any in-range combination yields a valid instance).
struct FuzzGenOptions {
  int max_tables = 5;            ///< join-graph size cap (>= 2)
  int max_dims = 3;              ///< ESS dimensionality cap (>= 1)
  int max_resolution = 14;       ///< per-dim grid resolution cap (>= 3)
  uint64_t max_grid_points = 1200;  ///< total-grid-size cap (>= 27)
  double max_zipf_theta = 1.2;   ///< histogram value-skew cap (0 = uniform)
  bool allow_join_dims = true;   ///< permit error dims on join predicates
  bool allow_aggregates = true;  ///< permit an SPJA aggregate block
};

/// A fully materialized random pipeline input.
struct FuzzInstance {
  uint64_t seed = 0;
  Catalog catalog;
  QuerySpec query;
  std::vector<int> resolutions;  ///< one per error dimension
  CostParams cost_params;
  BouquetParams bouquet_params;

  /// One-line description for failure messages, e.g.
  /// "seed=0x2a tables=3 dims=2 grid=12x9 ratio=2 lambda=0.2".
  std::string Describe() const;
};

/// Deterministically generates one instance. The result always passes
/// QuerySpec::Validate against its own catalog.
FuzzInstance GenerateFuzzInstance(uint64_t seed,
                                  const FuzzGenOptions& options = {});

}  // namespace bouquet

#endif  // BOUQUET_TESTING_GENERATORS_H_

// Invariant oracles: the paper's guarantees as machine-checked properties.
//
// Each oracle compiles nothing itself — CheckInvariants runs the real
// pipeline (EssGrid -> GeneratePosp -> BuildBouquet -> BouquetSimulator) on
// a generated instance and then interrogates the artifacts:
//   * pic_monotone    — Plan Cost Monotonicity of the PIC (Section 2
//                       assumption; prerequisite for everything below).
//   * contour_ratio   — the isocost ladder is geometric with the configured
//                       ratio, anchored at Cmax with IC_1/r < Cmin <= IC_1
//                       (Section 3.1), and budgets carry exactly the
//                       (1+lambda) anorexic inflation.
//   * mso_bound       — simulated MSO over every grid point stays within
//                       Theorem 3's rho*(1+lambda)*r^2/(r-1) (= 4rho(1+l)
//                       at r=2), no run falls back, no run beats the
//                       optimum; the PIC itself is differentially verified
//                       against brute-force re-optimization
//                       (robustness/BruteForceOptimalCosts).
//   * anorexic_lambda — every contour point's assigned (possibly swallowed)
//                       plan costs within (1+lambda) of that point's POSP
//                       optimum (Harish et al., VLDB 2007).
//   * roundtrip       — serialize -> deserialize -> re-execute is an
//                       identity: artifacts compare bit-exact and replayed
//                       simulations produce identical step sequences.
//   * metamorphic     — (optional) refining the grid never increases
//                       MSO-bound violations, and permuting thread/chunk
//                       counts in parallel POSP compilation yields
//                       bit-identical diagrams and bouquets.
//   * exec_differential — the instance's bouquet plans, materialized onto
//                       real generated data, execute bit-identically under
//                       the scalar and vectorized engines: same charged
//                       cost, same abort points across budget sweeps, same
//                       result rows and per-node counters (see
//                       testing/exec_differential.h).
//   * warm_start      — feedback warm-started runs (contour skip derived
//                       from a seed location, feedback/warm_start.h) always
//                       complete without fallback, and when the seed is
//                       dominated by q_a the run's sub-optimality stays
//                       within the same Theorem 3 bound as a cold run;
//                       mispredicted seeds (beyond q_a) must still
//                       complete, they just forfeit the bound.
//
// Mutation injection deliberately corrupts one artifact mid-pipeline so the
// harness can prove it would catch a real bug (the PR's mutation test).

#ifndef BOUQUET_TESTING_ORACLES_H_
#define BOUQUET_TESTING_ORACLES_H_

#include <cstdint>
#include <string>

#include "testing/generators.h"

namespace bouquet {

/// Deliberate pipeline corruptions for harness self-tests.
enum class FuzzMutation {
  kNone = 0,
  /// Multiplies one interior contour's step cost by 1.37, breaking the
  /// geometric ladder (caught by contour_ratio).
  kContourRatio,
  /// Multiplies the PIC at one interior grid point by 10, breaking PCM
  /// (caught by pic_monotone).
  kPicSpike,
  /// Halves every contour budget, voiding the completion guarantee (caught
  /// by mso_bound via fallbacks / bound violation).
  kBudgetDeflate,
};

const char* FuzzMutationName(FuzzMutation m);
/// Inverse of FuzzMutationName; returns false on an unknown name.
bool ParseFuzzMutation(const std::string& name, FuzzMutation* out);

struct OracleOptions {
  FuzzMutation mutation = FuzzMutation::kNone;
  /// Grid points re-optimized from scratch for the differential PIC check
  /// (sampled evenly; 0 disables).
  int differential_samples = 48;
  /// Grid points replayed through the deserialized artifacts.
  int roundtrip_replays = 4;
  /// Enables the (expensive) metamorphic rules; ignored under mutation,
  /// whose corruptions void the relations the rules rely on.
  bool metamorphic = false;
  /// Enables the batch-vs-scalar execution differential (real data
  /// materialization + budget sweeps). Skipped under mutation — the
  /// corruptions target compile-time artifacts the executor never reads,
  /// so running it there only adds cost.
  bool exec_differential = true;
  /// Per-table row cap for the materialized differential data.
  int64_t exec_differential_rows = 256;
  /// q_a points sampled (evenly) for the warm-start oracle; each is paired
  /// with dominated, exact, and mispredicted seeds. 0 disables. Skipped
  /// under mutation, whose corruptions void the ladder the clamp rests on.
  int warm_start_samples = 12;
  double tolerance = 1e-9;
};

struct OracleResult {
  bool ok = true;
  std::string detail;  ///< first violation, empty when ok
};

/// Outcome of one instance check, plus telemetry for summaries.
struct InvariantReport {
  OracleResult pic_monotone;
  OracleResult contour_ratio;
  OracleResult mso_bound;
  OracleResult anorexic_lambda;
  OracleResult roundtrip;
  OracleResult metamorphic;
  OracleResult exec_differential;
  OracleResult warm_start;

  uint64_t grid_points = 0;
  int num_contours = 0;
  int rho = 0;
  int num_plans = 0;
  double mso = 0.0;              ///< simulated (basic-algorithm) MSO
  double mso_bound_value = 0.0;  ///< Theorem 3 bound for this bouquet

  bool ok() const;
  /// "oracle_name: detail" of the first failing oracle, or "".
  std::string FirstFailure() const;
};

/// Runs the full compile+simulate pipeline on the instance and evaluates
/// every oracle.
InvariantReport CheckInvariants(const FuzzInstance& instance,
                                const OracleOptions& options = {});

}  // namespace bouquet

#endif  // BOUQUET_TESTING_ORACLES_H_

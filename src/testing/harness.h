// The fuzz gate: N randomized instances through every oracle.
//
// Tier-1 runs 100 instances from a fixed base seed; the scheduled CI job
// scales that to 10k via BOUQUET_FUZZ_ITERS. Each failure is shrunk to a
// minimal configuration and dumped as a replayable `.repro` file, so a red
// gate always comes with a one-command reproduction.

#ifndef BOUQUET_TESTING_HARNESS_H_
#define BOUQUET_TESTING_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/shrinker.h"

namespace bouquet {

struct FuzzConfig {
  uint64_t base_seed = 0xB007CE7;  ///< instance i uses seed base_seed + i
  int iterations = 100;
  /// Every Nth instance additionally runs the (expensive) metamorphic
  /// rules; 0 disables them.
  int metamorphic_every = 10;
  int differential_samples = 48;
  /// Injected into every instance (mutation self-tests); kNone in the gate.
  FuzzMutation mutation = FuzzMutation::kNone;
  FuzzGenOptions gen;
  bool shrink = true;
  /// Directory receiving fuzz_<seed>.repro files; "" disables dumping.
  std::string repro_dir;
  /// Failures after which the run stops early (each one shrinks, which
  /// costs dozens of pipeline compiles).
  int max_failures = 5;

  /// Defaults overridden by BOUQUET_FUZZ_ITERS / BOUQUET_FUZZ_SEED /
  /// BOUQUET_REPRO_DIR when set.
  static FuzzConfig FromEnv();
};

struct FuzzFailure {
  ReproSpec spec;          ///< as generated
  ReproSpec shrunk;        ///< after minimization
  std::string oracle;      ///< failing oracle name
  std::string detail;      ///< failure detail of the shrunk spec
  std::string repro_path;  ///< written .repro file ("" if dumping disabled)
  std::string instance;    ///< FuzzInstance::Describe() of the original
};

struct FuzzReport {
  int instances = 0;
  uint64_t total_grid_points = 0;
  /// Order-sensitive mix of every instance's template hash; equal across
  /// runs iff the generated instance stream was identical (determinism
  /// assertions in the tests).
  uint64_t instance_checksum = 0;
  /// max over instances of simulated MSO / Theorem-3 bound (tightness
  /// telemetry; always <= 1 on a green run).
  double max_bound_utilization = 0.0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

FuzzReport RunFuzz(const FuzzConfig& config);

}  // namespace bouquet

#endif  // BOUQUET_TESTING_HARNESS_H_

#include "testing/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "catalog/histogram.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace bouquet {

namespace {

// Column layout shared by every generated table: a primary key, a foreign
// key used as the join target, and two data columns carrying histograms.
const char* const kColumns[] = {"pk", "fk", "a", "b"};

// Log-uniform draw in [lo, hi].
double LogUniform(Rng& rng, double lo, double hi) {
  return lo * std::pow(hi / lo, rng.NextDouble());
}

// Builds a Zipf-skewed equi-depth histogram over `ndv` distinct values and
// syncs the column's min/max to the sampled domain.
void AttachHistogram(ColumnInfo* col, Rng& rng, double max_theta) {
  const uint64_t n = static_cast<uint64_t>(
      std::max(2.0, std::min(col->stats.ndv, 100000.0)));
  const double theta = rng.NextDouble() * max_theta;
  std::vector<int64_t> values;
  values.reserve(512);
  for (int i = 0; i < 512; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextZipf(n, theta)));
  }
  col->stats.histogram = Histogram::Build(values, 24);
  col->stats.min_value = col->stats.histogram.min_value();
  col->stats.max_value = col->stats.histogram.max_value();
}

JoinPredicate MakeJoin(const std::string& lt, const std::string& rt) {
  JoinPredicate j;
  j.left_table = lt;
  j.left_column = "pk";
  j.right_table = rt;
  j.right_column = "fk";
  return j;
}

}  // namespace

std::string FuzzInstance::Describe() const {
  std::string res;
  for (size_t d = 0; d < resolutions.size(); ++d) {
    res += (d ? "x" : "") + StrPrintf("%d", resolutions[d]);
  }
  return StrPrintf("seed=0x%llx tables=%d dims=%d grid=%s ratio=%g "
                   "lambda=%g anorexic=%d",
                   static_cast<unsigned long long>(seed),
                   static_cast<int>(query.tables.size()), query.NumDims(),
                   res.c_str(), bouquet_params.ratio, bouquet_params.lambda,
                   bouquet_params.anorexic ? 1 : 0);
}

FuzzInstance GenerateFuzzInstance(uint64_t seed,
                                  const FuzzGenOptions& options) {
  FuzzGenOptions opts = options;
  opts.max_tables = std::max(2, opts.max_tables);
  opts.max_dims = std::max(1, opts.max_dims);
  opts.max_resolution = std::max(3, opts.max_resolution);
  opts.max_grid_points = std::max<uint64_t>(27, opts.max_grid_points);

  Rng rng(seed);
  FuzzInstance inst;
  inst.seed = seed;

  // ---- Schema / catalog.
  const int num_tables =
      2 + static_cast<int>(rng.NextInt64(0, opts.max_tables - 2));
  for (int i = 0; i < num_tables; ++i) {
    const std::string name = StrPrintf("t%d", i);
    const double rows = LogUniform(rng, 1e3, 1e6);
    const double width = 32.0 + static_cast<double>(rng.NextInt64(0, 224));
    TableInfo t = Catalog::MakeTable(
        name, rows, width, {kColumns, kColumns + 4},
        /*default_ndv=*/std::max(8.0, rows / 10.0),
        /*indexed=*/rng.NextBool(0.8));
    t.columns[0].stats.ndv = rows;  // pk
    t.columns[1].stats.ndv = LogUniform(rng, std::max(2.0, rows / 100.0),
                                        rows);  // fk
    for (int c = 2; c < 4; ++c) {  // a, b
      t.columns[c].stats.ndv = LogUniform(rng, 8.0, rows);
      AttachHistogram(&t.columns[c], rng, opts.max_zipf_theta);
    }
    inst.catalog.AddTable(std::move(t));
    inst.query.tables.push_back(name);
  }
  inst.query.name = StrPrintf("fuzz_0x%llx",
                              static_cast<unsigned long long>(seed));

  // ---- Join graph: chain, or star with t0 as the hub.
  const bool star = num_tables >= 3 && rng.NextBool(0.4);
  for (int i = 1; i < num_tables; ++i) {
    inst.query.joins.push_back(star
                                   ? MakeJoin("t0", inst.query.tables[i])
                                   : MakeJoin(inst.query.tables[i - 1],
                                              inst.query.tables[i]));
  }

  // ---- Selection predicates: per table, a range filter on a data column,
  // either bound to a histogram-derived constant or to an abstract default
  // selectivity.
  static const CompareOp kOps[] = {CompareOp::kLess, CompareOp::kLessEqual,
                                   CompareOp::kGreater,
                                   CompareOp::kGreaterEqual};
  for (int i = 0; i < num_tables; ++i) {
    if (!rng.NextBool(0.6)) continue;
    SelectionPredicate f;
    f.table = inst.query.tables[i];
    f.column = rng.NextBool(0.5) ? "a" : "b";
    f.op = kOps[rng.NextUint64(4)];
    const TableInfo& t = inst.catalog.GetTable(f.table);
    const Histogram& h =
        t.columns[t.ColumnIndex(f.column)].stats.histogram;
    if (rng.NextBool(0.5) && !h.empty()) {
      // Keep the bound away from the domain edges so the estimated
      // selectivity stays comfortably inside (0, 1).
      f.constant = h.Quantile(0.05 + 0.9 * rng.NextDouble());
    } else {
      f.default_selectivity = std::pow(10.0, -2.0 * rng.NextDouble());
    }
    inst.query.filters.push_back(std::move(f));
  }

  // ---- Error dimensions over distinct predicates.
  std::vector<ErrorDimension> pool;
  for (size_t i = 0; i < inst.query.filters.size(); ++i) {
    ErrorDimension d;
    d.kind = DimKind::kSelection;
    d.predicate_index = static_cast<int>(i);
    d.label = inst.query.filters[i].table + "." + inst.query.filters[i].column;
    pool.push_back(std::move(d));
  }
  if (opts.allow_join_dims) {
    for (size_t i = 0; i < inst.query.joins.size(); ++i) {
      ErrorDimension d;
      d.kind = DimKind::kJoin;
      d.predicate_index = static_cast<int>(i);
      d.label = inst.query.joins[i].left_table + "." +
                inst.query.joins[i].left_column + "=" +
                inst.query.joins[i].right_table + "." +
                inst.query.joins[i].right_column;
      pool.push_back(std::move(d));
    }
  }
  if (pool.empty()) {
    // No filters materialized and join dims are disallowed: force one
    // abstract filter so the instance still has an ESS.
    SelectionPredicate f;
    f.table = "t0";
    f.column = "a";
    f.default_selectivity = 1.0 / 3.0;
    inst.query.filters.push_back(f);
    ErrorDimension d;
    d.kind = DimKind::kSelection;
    d.predicate_index = static_cast<int>(inst.query.filters.size()) - 1;
    d.label = "t0.a";
    pool.push_back(std::move(d));
  }
  const int want =
      1 + static_cast<int>(rng.NextInt64(0, opts.max_dims - 1));
  const std::vector<uint32_t> order =
      rng.Permutation(static_cast<uint32_t>(pool.size()));
  const int dims = std::min<int>(want, static_cast<int>(pool.size()));
  for (int d = 0; d < dims; ++d) {
    ErrorDimension dim = pool[order[d]];
    // hi in [1e-2, 1], spanning 1-4 decades below it (floored at 1e-7 so
    // log-spaced axes never underflow the resolver's positivity contract).
    dim.hi = std::pow(10.0, -2.0 * rng.NextDouble());
    const double span = 1.0 + 3.0 * rng.NextDouble();
    dim.lo = std::max(dim.hi * std::pow(10.0, -span), 1e-7);
    inst.query.error_dims.push_back(std::move(dim));
  }

  // ---- Optional SPJA aggregate (sits above every error node).
  if (opts.allow_aggregates && rng.NextBool(0.25)) {
    inst.query.aggregate.enabled = true;
    inst.query.aggregate.group_by = {{"t0", "a"}};
    inst.query.aggregate.func = AggregateSpec::Func::kCount;
  }

  // ---- Grid resolutions: generous in 1D, modest per-dim beyond, with a
  // hard cap on total points so exhaustive POSP stays cheap.
  for (int d = 0; d < dims; ++d) {
    const int cap =
        dims == 1 ? std::max(8, opts.max_resolution * 4) : opts.max_resolution;
    inst.resolutions.push_back(
        3 + static_cast<int>(rng.NextInt64(0, cap - 3)));
  }
  for (;;) {
    uint64_t product = 1;
    for (int r : inst.resolutions) product *= static_cast<uint64_t>(r);
    if (product <= opts.max_grid_points) break;
    auto largest = std::max_element(inst.resolutions.begin(),
                                    inst.resolutions.end());
    if (*largest <= 3) break;
    *largest = std::max(3, *largest / 2);
  }

  // ---- Parameterization.
  static const double kRatios[] = {1.5, 2.0, 2.5, 3.0};
  static const double kLambdas[] = {0.1, 0.2, 0.3};
  inst.bouquet_params.ratio = kRatios[rng.NextUint64(4)];
  inst.bouquet_params.lambda = kLambdas[rng.NextUint64(3)];
  inst.bouquet_params.anorexic = rng.NextBool(0.8);
  inst.cost_params =
      rng.NextBool(0.3) ? CostParams::Commercial() : CostParams::Postgres();

  assert(inst.query.Validate(inst.catalog).ok());
  assert(static_cast<int>(inst.resolutions.size()) == inst.query.NumDims());
  return inst;
}

}  // namespace bouquet

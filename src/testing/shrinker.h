// Failure minimization and replayable .repro files.
//
// A harness failure is fully described by a ReproSpec: the instance seed,
// the generator bounds, and the injected mutation (if any). Because
// generation is a pure function of (seed, options), shrinking walks the
// *configuration space* downward — smaller grids, fewer tables, fewer
// dimensions, less skew — regenerating and re-checking each candidate, and
// keeps the smallest spec that still fails. The result is dumped to a
// line-oriented `.repro` file that LoadRepro/CheckRepro replay exactly.

#ifndef BOUQUET_TESTING_SHRINKER_H_
#define BOUQUET_TESTING_SHRINKER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "testing/oracles.h"

namespace bouquet {

/// Everything needed to regenerate and re-check one instance.
struct ReproSpec {
  uint64_t seed = 0;
  FuzzGenOptions gen;
  FuzzMutation mutation = FuzzMutation::kNone;
};

/// Regenerates the spec's instance and runs every oracle (metamorphic rules
/// excluded: shrinking re-checks many candidates and only needs the failing
/// invariant to reproduce).
InvariantReport CheckRepro(const ReproSpec& spec);

struct ShrinkResult {
  ReproSpec minimal;
  int attempts = 0;    ///< candidate evaluations performed
  int reductions = 0;  ///< accepted shrink steps
  std::string oracle;  ///< failing oracle of the minimal spec
  std::string detail;  ///< its failure detail
};

/// Bisects the failing spec to a local minimum: each accepted step must
/// still fail some oracle. If `failing` does not actually fail, the result
/// is the input with an empty `oracle`.
ShrinkResult ShrinkFailure(const ReproSpec& failing, int max_attempts = 48);

/// Writes / reads the versioned `.repro` format ('#'-prefixed lines carry
/// non-replayed diagnostics such as the failing oracle).
Status WriteRepro(const ReproSpec& spec, const std::string& oracle,
                  const std::string& detail, const std::string& path);
Result<ReproSpec> LoadRepro(const std::string& path);

}  // namespace bouquet

#endif  // BOUQUET_TESTING_SHRINKER_H_

// Batch-vs-scalar execution differential oracle.
//
// The vectorized batch engine (executor/batch.h) claims *bit-compatible*
// cost accounting with the tuple-at-a-time scalar engine: identical
// `cost_charged` doubles, identical abort points across any budget, and
// identical per-node tuple counters — the properties Theorem 3's MSO
// guarantee rests on. This module turns that claim into a machine-checked
// property over generated instances:
//
//   1. MaterializeInstance() turns a FuzzInstance's abstract schema into
//      real DataTables (sequential PKs, PK->FK join columns honoring the
//      instance's join graph, skewed data columns), syncs a catalog from
//      the data, and binds every selection constant against the real
//      histograms — so the very instances that drive the compile-time
//      oracles also drive real executions.
//   2. CheckExecDifferential() optimizes the instance at several ESS
//      corners (deduped by plan signature), runs each plan under both
//      engines, and compares: full runs, budget sweeps including
//      abort-at-the-first-tuple and std::nextafter boundary budgets
//      (abort exactly at the last charge), spill-mode subtree executions,
//      and degenerate batch sizes (1, 3, non-powers of two).
//
// Any divergence is reported with the plan signature, budget, and batch
// size that produced it, so a failure is directly replayable.

#ifndef BOUQUET_TESTING_EXEC_DIFFERENTIAL_H_
#define BOUQUET_TESTING_EXEC_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/query_spec.h"
#include "storage/index.h"
#include "testing/generators.h"

namespace bouquet {

/// Materialized real data for one fuzz instance.
struct ExecDataset {
  Database db;
  /// Synced from the generated data (real histograms, real row counts) —
  /// NOT the instance's abstract catalog.
  Catalog catalog;
  /// Copy of the instance query with every selection constant bound.
  QuerySpec query;
  /// Selectivities actually achieved for the error selection dimensions
  /// (join dimensions report their data-driven value as 0; they need no
  /// constant binding).
  std::vector<double> achieved;
};

struct ExecDifferentialOptions {
  /// Per-table row-count cap. Nominal fuzz cardinalities (up to millions)
  /// are log-mapped into [cap/8, cap] so relative size ratios — which drive
  /// join-order and operator choice — survive the scale-down.
  int64_t max_rows_per_table = 320;
  /// Deduped ESS-corner plans to execute (all-lo, all-hi, mid, defaults).
  int max_plans = 3;
  /// Interior budget fractions swept per plan, in addition to the always-on
  /// boundary budgets (0-ish, first-charge, nextafter(C) from both sides).
  int budget_sweeps = 4;
  /// Batch sizes exercised for every budget; deliberately degenerate.
  std::vector<int> batch_sizes = {1, 3, 7, 1024};
  /// Also differential-test spill-mode subtree executions for every error
  /// dimension whose predicate node exists in the plan.
  bool check_spill = true;
  /// When non-empty, the materialized tables are imported into disk-backed
  /// .btbl files under this directory and both engines execute over paged
  /// storage (pool/policy below). Every run starts from
  /// BufferManager::ResetForTest() so both engines replay against an
  /// identical cold pool, and an accounting oracle asserts that the charged
  /// page reads/hits of each run equal the buffer manager's miss/hit
  /// counters exactly (the property the I/O-charged MSO costs rest on).
  std::string paged_data_dir;
  size_t paged_pool_pages = 16;
  storage::EvictionPolicyKind paged_policy = storage::EvictionPolicyKind::k2Q;
};

/// Outcome of one differential check.
struct ExecDiffResult {
  bool ok = true;
  std::string detail;  ///< first divergence, empty when ok
  int plans_checked = 0;
  int runs_compared = 0;  ///< total (engine-pair, budget, batch-size) runs
};

/// Generates real tables for the instance's schema and binds its filters.
/// Deterministic in `instance.seed`.
ExecDataset MaterializeInstance(const FuzzInstance& instance,
                                int64_t max_rows_per_table);

/// Runs the full differential described above. Deterministic.
ExecDiffResult CheckExecDifferential(const FuzzInstance& instance,
                                     const ExecDifferentialOptions& options =
                                         ExecDifferentialOptions());

}  // namespace bouquet

#endif  // BOUQUET_TESTING_EXEC_DIFFERENTIAL_H_

#include "testing/shrinker.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/str_util.h"

namespace bouquet {

InvariantReport CheckRepro(const ReproSpec& spec) {
  OracleOptions options;
  options.mutation = spec.mutation;
  options.metamorphic = false;
  // Shrinking re-checks dozens of candidates; a light differential sample
  // keeps that cheap while preserving the oracle set.
  options.differential_samples = 8;
  options.roundtrip_replays = 2;
  return CheckInvariants(GenerateFuzzInstance(spec.seed, spec.gen), options);
}

namespace {

// The downward moves, in preference order: grid size first (the dominant
// cost), then structure, then feature flags.
std::vector<ReproSpec> ShrinkCandidates(const ReproSpec& cur) {
  std::vector<ReproSpec> out;
  auto push = [&](ReproSpec next) { out.push_back(std::move(next)); };
  if (cur.gen.max_resolution > 3) {
    ReproSpec next = cur;
    next.gen.max_resolution = std::max(3, cur.gen.max_resolution / 2);
    push(next);
  }
  if (cur.gen.max_grid_points > 27) {
    ReproSpec next = cur;
    next.gen.max_grid_points = std::max<uint64_t>(27,
                                                  cur.gen.max_grid_points / 4);
    push(next);
  }
  if (cur.gen.max_tables > 2) {
    ReproSpec next = cur;
    next.gen.max_tables = cur.gen.max_tables - 1;
    push(next);
  }
  if (cur.gen.max_dims > 1) {
    ReproSpec next = cur;
    next.gen.max_dims = cur.gen.max_dims - 1;
    push(next);
  }
  if (cur.gen.allow_aggregates) {
    ReproSpec next = cur;
    next.gen.allow_aggregates = false;
    push(next);
  }
  if (cur.gen.allow_join_dims) {
    ReproSpec next = cur;
    next.gen.allow_join_dims = false;
    push(next);
  }
  if (cur.gen.max_zipf_theta > 0.0) {
    ReproSpec next = cur;
    next.gen.max_zipf_theta = 0.0;
    push(next);
  }
  return out;
}

std::string OracleNameOf(const std::string& first_failure) {
  const size_t colon = first_failure.find(':');
  return colon == std::string::npos ? first_failure
                                    : first_failure.substr(0, colon);
}

}  // namespace

ShrinkResult ShrinkFailure(const ReproSpec& failing, int max_attempts) {
  ShrinkResult result;
  result.minimal = failing;

  InvariantReport report = CheckRepro(failing);
  ++result.attempts;
  if (report.ok()) return result;  // nothing to shrink
  result.oracle = OracleNameOf(report.FirstFailure());
  result.detail = report.FirstFailure();

  bool progressed = true;
  while (progressed && result.attempts < max_attempts) {
    progressed = false;
    for (const ReproSpec& candidate : ShrinkCandidates(result.minimal)) {
      if (result.attempts >= max_attempts) break;
      const InvariantReport cand_report = CheckRepro(candidate);
      ++result.attempts;
      if (cand_report.ok()) continue;  // candidate no longer fails; skip
      result.minimal = candidate;
      result.oracle = OracleNameOf(cand_report.FirstFailure());
      result.detail = cand_report.FirstFailure();
      ++result.reductions;
      progressed = true;
      break;  // restart from the shrunk spec
    }
  }
  return result;
}

Status WriteRepro(const ReproSpec& spec, const std::string& oracle,
                  const std::string& detail, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open repro file for writing: " + path);
  }
  out << "# bouquet-fuzz repro v1\n";
  out << "# oracle " << oracle << "\n";
  out << "# detail " << detail << "\n";
  out << StrPrintf("seed 0x%" PRIx64 "\n", spec.seed);
  out << "max_tables " << spec.gen.max_tables << "\n";
  out << "max_dims " << spec.gen.max_dims << "\n";
  out << "max_resolution " << spec.gen.max_resolution << "\n";
  out << "max_grid_points " << spec.gen.max_grid_points << "\n";
  out << StrPrintf("max_zipf_theta %a\n", spec.gen.max_zipf_theta);
  out << "allow_join_dims " << (spec.gen.allow_join_dims ? 1 : 0) << "\n";
  out << "allow_aggregates " << (spec.gen.allow_aggregates ? 1 : 0) << "\n";
  out << "mutation " << FuzzMutationName(spec.mutation) << "\n";
  if (!out.good()) {
    return Status::Internal("short write to repro file: " + path);
  }
  return Status::Ok();
}

Result<ReproSpec> LoadRepro(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open repro file: " + path);
  }
  ReproSpec spec;
  bool have_seed = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key, value;
    fields >> key >> value;
    if (key.empty() || value.empty()) {
      return Status::InvalidArgument("malformed repro line: " + line);
    }
    if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), nullptr, 0);
      have_seed = true;
    } else if (key == "max_tables") {
      spec.gen.max_tables = std::atoi(value.c_str());
    } else if (key == "max_dims") {
      spec.gen.max_dims = std::atoi(value.c_str());
    } else if (key == "max_resolution") {
      spec.gen.max_resolution = std::atoi(value.c_str());
    } else if (key == "max_grid_points") {
      spec.gen.max_grid_points = std::strtoull(value.c_str(), nullptr, 0);
    } else if (key == "max_zipf_theta") {
      spec.gen.max_zipf_theta = std::strtod(value.c_str(), nullptr);
    } else if (key == "allow_join_dims") {
      spec.gen.allow_join_dims = value != "0";
    } else if (key == "allow_aggregates") {
      spec.gen.allow_aggregates = value != "0";
    } else if (key == "mutation") {
      if (!ParseFuzzMutation(value, &spec.mutation)) {
        return Status::InvalidArgument("unknown mutation: " + value);
      }
    } else {
      return Status::InvalidArgument("unknown repro key: " + key);
    }
  }
  if (!have_seed) {
    return Status::InvalidArgument("repro file missing seed: " + path);
  }
  return spec;
}

}  // namespace bouquet

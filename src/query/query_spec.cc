#include "query/query_spec.h"

#include "common/str_util.h"
#include "query/join_graph.h"

namespace bouquet {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLess:
      return "<";
    case CompareOp::kLessEqual:
      return "<=";
    case CompareOp::kGreater:
      return ">";
    case CompareOp::kGreaterEqual:
      return ">=";
    case CompareOp::kEqual:
      return "=";
  }
  return "?";
}

double AggregateSpec::EstimateGroups(const Catalog& catalog,
                                     double input_rows) const {
  double groups = 1.0;
  for (const auto& [table, column] : group_by) {
    const TableInfo& t = catalog.GetTable(table);
    groups *= t.columns[t.ColumnIndex(column)].stats.ndv < 1.0
                  ? 1.0
                  : t.columns[t.ColumnIndex(column)].stats.ndv;
  }
  groups = groups < input_rows ? groups : input_rows;
  return groups < 1.0 ? 1.0 : groups;
}

int QuerySpec::TableIndex(const std::string& table) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i] == table) return static_cast<int>(i);
  }
  return -1;
}

Status QuerySpec::Validate(const Catalog& catalog) const {
  if (tables.empty()) {
    return Status::InvalidArgument("query has no tables");
  }
  if (tables.size() > 20) {
    return Status::InvalidArgument("too many tables (max 20)");
  }
  if (joins.size() > 64) {
    return Status::InvalidArgument("too many join predicates (max 64)");
  }
  for (const auto& t : tables) {
    if (!catalog.HasTable(t)) {
      return Status::NotFound(StrPrintf("unknown table '%s'", t.c_str()));
    }
  }
  for (const auto& j : joins) {
    if (TableIndex(j.left_table) < 0 || TableIndex(j.right_table) < 0) {
      return Status::InvalidArgument("join references table not in query");
    }
    if (j.left_table == j.right_table) {
      return Status::InvalidArgument("self-join predicates unsupported");
    }
    if (catalog.GetTable(j.left_table).ColumnIndex(j.left_column) < 0 ||
        catalog.GetTable(j.right_table).ColumnIndex(j.right_column) < 0) {
      return Status::NotFound("join references unknown column");
    }
  }
  for (const auto& f : filters) {
    if (TableIndex(f.table) < 0) {
      return Status::InvalidArgument("filter references table not in query");
    }
    if (catalog.GetTable(f.table).ColumnIndex(f.column) < 0) {
      return Status::NotFound(StrPrintf("unknown column '%s.%s'",
                                        f.table.c_str(), f.column.c_str()));
    }
  }
  for (const auto& d : error_dims) {
    const int limit = d.kind == DimKind::kSelection
                          ? static_cast<int>(filters.size())
                          : static_cast<int>(joins.size());
    if (d.predicate_index < 0 || d.predicate_index >= limit) {
      return Status::OutOfRange("error dimension predicate index out of range");
    }
    if (!(d.lo > 0.0) || !(d.lo <= d.hi) || d.hi > 1.0) {
      return Status::InvalidArgument(
          "error dimension range must satisfy 0 < lo <= hi <= 1");
    }
  }
  if (aggregate.enabled) {
    for (const auto& [table, column] : aggregate.group_by) {
      if (TableIndex(table) < 0 ||
          catalog.GetTable(table).ColumnIndex(column) < 0) {
        return Status::NotFound("aggregate group-by column unknown");
      }
    }
    if (aggregate.func != AggregateSpec::Func::kCount) {
      if (TableIndex(aggregate.agg_table) < 0 ||
          catalog.GetTable(aggregate.agg_table)
                  .ColumnIndex(aggregate.agg_column) < 0) {
        return Status::NotFound("aggregate input column unknown");
      }
    }
  }
  if (tables.size() > 1) {
    JoinGraph graph(*this);
    const uint64_t all = (uint64_t{1} << tables.size()) - 1;
    if (!graph.IsConnectedSubset(all)) {
      return Status::InvalidArgument("join graph is not connected");
    }
  }
  return Status::Ok();
}

}  // namespace bouquet

// Workload history of selectivity estimation errors.
//
// Section 4.1 of the paper lists three ways to identify the error-prone
// dimensions of a query: uncertainty-modeling rules, a log of the errors
// encountered by similar queries in the workload history, or the fallback of
// making every predicate a dimension. This module implements the second:
// record (estimated, actual) selectivity pairs per predicate signature
// during normal operation, then derive ESS dimensions — with data-driven
// ranges — for the predicates whose history shows material errors.

#ifndef BOUQUET_QUERY_ERROR_LOG_H_
#define BOUQUET_QUERY_ERROR_LOG_H_

#include <map>
#include <string>
#include <vector>

#include "query/query_spec.h"

namespace bouquet {

/// Accumulated history for one predicate signature.
struct PredicateErrorStats {
  long long observations = 0;
  double max_error_factor = 1.0;  ///< max(est/act, act/est) seen
  double min_actual = 1.0;
  double max_actual = 0.0;

  void Add(double estimated, double actual);
};

/// Selectivity error log keyed by predicate signature.
class SelectivityErrorLog {
 public:
  /// Canonical signatures: "table.column op" / "t1.c1 = t2.c2" (join
  /// endpoints ordered lexicographically so the key is orientation-free).
  static std::string FilterKey(const SelectionPredicate& filter);
  static std::string JoinKey(const JoinPredicate& join);

  /// Records one observation. Selectivities must lie in (0, 1].
  void Record(const std::string& key, double estimated, double actual);

  /// History for a key (zeroed stats when never seen).
  const PredicateErrorStats& Stats(const std::string& key) const;

  /// Keys whose worst observed error factor meets the threshold.
  std::vector<std::string> ErrorProneKeys(double factor_threshold) const;

  /// Derives ESS dimensions for `query`: one per predicate whose history
  /// shows an error factor >= `factor_threshold`. Ranges cover the observed
  /// actuals widened by `margin_decades` on both sides (clamped to (0, 1]).
  std::vector<ErrorDimension> SuggestDimensions(
      const QuerySpec& query, double factor_threshold,
      double margin_decades = 1.0) const;

  size_t num_keys() const { return stats_.size(); }

 private:
  std::map<std::string, PredicateErrorStats> stats_;
  static const PredicateErrorStats kEmpty;
};

}  // namespace bouquet

#endif  // BOUQUET_QUERY_ERROR_LOG_H_

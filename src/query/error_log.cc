#include "query/error_log.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bouquet {

const PredicateErrorStats SelectivityErrorLog::kEmpty;

void PredicateErrorStats::Add(double estimated, double actual) {
  assert(estimated > 0.0 && estimated <= 1.0);
  assert(actual > 0.0 && actual <= 1.0);
  ++observations;
  const double factor =
      estimated > actual ? estimated / actual : actual / estimated;
  max_error_factor = std::max(max_error_factor, factor);
  min_actual = std::min(min_actual, actual);
  max_actual = std::max(max_actual, actual);
}

std::string SelectivityErrorLog::FilterKey(const SelectionPredicate& f) {
  return f.table + "." + f.column + " " + CompareOpName(f.op);
}

std::string SelectivityErrorLog::JoinKey(const JoinPredicate& j) {
  const std::string a = j.left_table + "." + j.left_column;
  const std::string b = j.right_table + "." + j.right_column;
  return a < b ? a + " = " + b : b + " = " + a;
}

void SelectivityErrorLog::Record(const std::string& key, double estimated,
                                 double actual) {
  stats_[key].Add(estimated, actual);
}

const PredicateErrorStats& SelectivityErrorLog::Stats(
    const std::string& key) const {
  auto it = stats_.find(key);
  return it == stats_.end() ? kEmpty : it->second;
}

std::vector<std::string> SelectivityErrorLog::ErrorProneKeys(
    double factor_threshold) const {
  std::vector<std::string> out;
  for (const auto& [key, s] : stats_) {
    if (s.max_error_factor >= factor_threshold) out.push_back(key);
  }
  return out;
}

std::vector<ErrorDimension> SelectivityErrorLog::SuggestDimensions(
    const QuerySpec& query, double factor_threshold,
    double margin_decades) const {
  const double margin = std::pow(10.0, margin_decades);
  std::vector<ErrorDimension> dims;
  auto range_from = [&](const PredicateErrorStats& s, ErrorDimension* d) {
    d->lo = std::clamp(s.min_actual / margin, 1e-12, 1.0);
    d->hi = std::clamp(s.max_actual * margin, d->lo, 1.0);
  };
  for (size_t f = 0; f < query.filters.size(); ++f) {
    const PredicateErrorStats& s = Stats(FilterKey(query.filters[f]));
    if (s.observations == 0 || s.max_error_factor < factor_threshold) {
      continue;
    }
    ErrorDimension d;
    d.kind = DimKind::kSelection;
    d.predicate_index = static_cast<int>(f);
    d.label = FilterKey(query.filters[f]);
    range_from(s, &d);
    dims.push_back(std::move(d));
  }
  for (size_t j = 0; j < query.joins.size(); ++j) {
    const PredicateErrorStats& s = Stats(JoinKey(query.joins[j]));
    if (s.observations == 0 || s.max_error_factor < factor_threshold) {
      continue;
    }
    ErrorDimension d;
    d.kind = DimKind::kJoin;
    d.predicate_index = static_cast<int>(j);
    d.label = JoinKey(query.joins[j]);
    range_from(s, &d);
    dims.push_back(std::move(d));
  }
  return dims;
}

}  // namespace bouquet

// Declarative query specification: the unit of work the whole pipeline
// (optimizer -> ESS -> bouquet) operates on.
//
// Queries are conjunctive select-project-join blocks, matching the paper's
// workload (Section 6): a set of base relations, equi-join predicates forming
// a join graph, selection predicates on base columns, and a declaration of
// which predicate selectivities are error-prone (the ESS dimensions).

#ifndef BOUQUET_QUERY_QUERY_SPEC_H_
#define BOUQUET_QUERY_QUERY_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"

namespace bouquet {

enum class CompareOp { kLess, kLessEqual, kGreater, kGreaterEqual, kEqual };

const char* CompareOpName(CompareOp op);

/// `table.column op constant` selection predicate. If `constant` is unset
/// (kNoConstant), the predicate is purely abstract (cost-model experiments)
/// and its selectivity comes from `default_selectivity` or injection.
struct SelectionPredicate {
  static constexpr int64_t kNoConstant = INT64_MIN;

  std::string table;
  std::string column;
  CompareOp op = CompareOp::kLess;
  int64_t constant = kNoConstant;
  /// Optimizer's estimate when the predicate is not an error dimension and no
  /// histogram/constant is available; < 0 means "derive from catalog stats".
  double default_selectivity = -1.0;

  bool has_constant() const { return constant != kNoConstant; }
};

/// Equi-join predicate `left.column = right.column`.
struct JoinPredicate {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
  /// Optimizer's estimate when not an error dimension; < 0 means "derive from
  /// catalog NDVs" (Selinger's 1/max(ndv_l, ndv_r)).
  double default_selectivity = -1.0;
};

/// Which predicate a selectivity error dimension is attached to.
enum class DimKind { kSelection, kJoin };

/// One error-prone selectivity dimension of the ESS.
struct ErrorDimension {
  DimKind kind = DimKind::kJoin;
  int predicate_index = 0;  ///< into filters or joins, per `kind`
  double lo = 1e-4;         ///< smallest selectivity in the ESS range
  double hi = 1.0;          ///< largest selectivity (schematic cap, Sec. 4.1)
  std::string label;        ///< for reports, e.g. "p_retailprice"
};

/// Optional grouped aggregation on top of the join block (the benchmark
/// queries are SPJA; the aggregate sits above every error-prone node, so it
/// never participates in selectivity discovery).
struct AggregateSpec {
  enum class Func { kCount, kSum, kMin, kMax };

  bool enabled = false;
  /// Group-by columns as (table, column) names; empty = scalar aggregate.
  std::vector<std::pair<std::string, std::string>> group_by;
  Func func = Func::kCount;
  /// Aggregated column (ignored for kCount).
  std::string agg_table;
  std::string agg_column;

  /// Estimated output group count: the product of the group columns' NDVs,
  /// capped by the input cardinality (classical independence estimate).
  /// Shared by the enumerator and the recoster so their costs agree.
  double EstimateGroups(const Catalog& catalog, double input_rows) const;
};

/// A full query specification.
struct QuerySpec {
  std::string name;
  std::vector<std::string> tables;
  std::vector<JoinPredicate> joins;
  std::vector<SelectionPredicate> filters;
  std::vector<ErrorDimension> error_dims;
  AggregateSpec aggregate;

  int TableIndex(const std::string& table) const;

  /// Validates internal consistency against a catalog: tables exist, columns
  /// exist, predicate/dimension indexes in range, join graph connected.
  Status Validate(const Catalog& catalog) const;

  /// Dimensionality of the error-prone selectivity space.
  int NumDims() const { return static_cast<int>(error_dims.size()); }
};

}  // namespace bouquet

#endif  // BOUQUET_QUERY_QUERY_SPEC_H_

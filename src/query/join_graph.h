// Join-graph utilities: connectivity tests used by the plan enumerator and
// geometry builders (chain / star / branch / cycle) used by the workload
// definitions, mirroring the join-graph taxonomy of the paper's Table 2.

#ifndef BOUQUET_QUERY_JOIN_GRAPH_H_
#define BOUQUET_QUERY_JOIN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query_spec.h"

namespace bouquet {

/// Adjacency view over a QuerySpec's join predicates, with table indexes as
/// vertex ids and subset bitmasks for the DP enumerator.
class JoinGraph {
 public:
  explicit JoinGraph(const QuerySpec& query);

  int num_tables() const { return num_tables_; }

  /// True if the table subset (bitmask) induces a connected subgraph.
  bool IsConnectedSubset(uint64_t subset) const;

  /// True if at least one join predicate crosses between the two subsets.
  bool HasCrossingJoin(uint64_t left, uint64_t right) const;

  /// All join predicate indexes with one endpoint in `left` and the other in
  /// `right`.
  std::vector<int> CrossingJoins(uint64_t left, uint64_t right) const;

  /// All join predicate indexes with both endpoints inside `subset`.
  std::vector<int> InternalJoins(uint64_t subset) const;

  /// Endpoint table indexes of join predicate j.
  std::pair<int, int> JoinEndpoints(int join_idx) const {
    return {join_left_[join_idx], join_right_[join_idx]};
  }

  /// Classification of the graph shape, for workload reporting:
  /// "chain", "star", "cycle", "branch" (tree that is neither chain nor
  /// star), or "general".
  std::string Geometry() const;

 private:
  int num_tables_;
  std::vector<int> join_left_;
  std::vector<int> join_right_;
  std::vector<uint64_t> adjacency_;  // adjacency_[t] = bitmask of neighbors
};

}  // namespace bouquet

#endif  // BOUQUET_QUERY_JOIN_GRAPH_H_

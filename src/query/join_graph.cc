#include "query/join_graph.h"

#include <algorithm>
#include <cassert>

namespace bouquet {

JoinGraph::JoinGraph(const QuerySpec& query)
    : num_tables_(static_cast<int>(query.tables.size())),
      adjacency_(query.tables.size(), 0) {
  for (const auto& j : query.joins) {
    const int l = query.TableIndex(j.left_table);
    const int r = query.TableIndex(j.right_table);
    assert(l >= 0 && r >= 0);
    join_left_.push_back(l);
    join_right_.push_back(r);
    adjacency_[l] |= uint64_t{1} << r;
    adjacency_[r] |= uint64_t{1} << l;
  }
}

bool JoinGraph::IsConnectedSubset(uint64_t subset) const {
  if (subset == 0) return false;
  // BFS from the lowest set bit, constrained to `subset`.
  const int start = __builtin_ctzll(subset);
  uint64_t visited = uint64_t{1} << start;
  uint64_t frontier = visited;
  while (frontier != 0) {
    uint64_t next = 0;
    uint64_t f = frontier;
    while (f != 0) {
      const int t = __builtin_ctzll(f);
      f &= f - 1;
      next |= adjacency_[t] & subset & ~visited;
    }
    visited |= next;
    frontier = next;
  }
  return visited == subset;
}

bool JoinGraph::HasCrossingJoin(uint64_t left, uint64_t right) const {
  for (size_t i = 0; i < join_left_.size(); ++i) {
    const uint64_t lbit = uint64_t{1} << join_left_[i];
    const uint64_t rbit = uint64_t{1} << join_right_[i];
    if (((lbit & left) && (rbit & right)) || ((lbit & right) && (rbit & left)))
      return true;
  }
  return false;
}

std::vector<int> JoinGraph::CrossingJoins(uint64_t left, uint64_t right) const {
  std::vector<int> out;
  for (size_t i = 0; i < join_left_.size(); ++i) {
    const uint64_t lbit = uint64_t{1} << join_left_[i];
    const uint64_t rbit = uint64_t{1} << join_right_[i];
    if (((lbit & left) && (rbit & right)) ||
        ((lbit & right) && (rbit & left))) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> JoinGraph::InternalJoins(uint64_t subset) const {
  std::vector<int> out;
  for (size_t i = 0; i < join_left_.size(); ++i) {
    const uint64_t lbit = uint64_t{1} << join_left_[i];
    const uint64_t rbit = uint64_t{1} << join_right_[i];
    if ((lbit & subset) && (rbit & subset)) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::string JoinGraph::Geometry() const {
  const int n = num_tables_;
  const int e = static_cast<int>(join_left_.size());
  if (n <= 1) return "single";
  std::vector<int> degree(n, 0);
  for (size_t i = 0; i < join_left_.size(); ++i) {
    degree[join_left_[i]]++;
    degree[join_right_[i]]++;
  }
  const int max_deg = *std::max_element(degree.begin(), degree.end());
  if (e == n) return "cycle";
  if (e > n) return "general";
  // e == n-1: a tree.
  if (max_deg <= 2) return "chain";
  if (max_deg == n - 1) return "star";
  return "branch";
}

}  // namespace bouquet

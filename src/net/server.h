// BouquetServer: the async epoll serving layer over BouquetService.
//
// Thread architecture (one process):
//
//   acceptor ──┬─> reactor 0 (epoll) ──┐
//              ├─> reactor 1 (epoll) ──┼──> RequestRouter ──> service pool
//              └─> ...                 │    (batching, WFQ,    (RunBatch /
//        round-robin fd handoff        │     token buckets,     safe plan)
//                                      │     shedding)              │
//              reactor outboxes <──────┴────────── responses ───────┘
//
// Reactors own their connections exclusively (no per-connection locks);
// cross-thread response delivery goes through a per-reactor outbox that any
// thread may append to before waking the reactor's epoll loop. The router
// decides each QUERY's fate: batch (normal), reject (throttled/draining),
// or shed to the service's precompiled MSO-safe plan (DEGRADED response)
// when the backlog bound is hit — so queue depth stays bounded and overload
// degrades per-request cost, never availability.
//
// Live observability: METRICS and TRACE_DUMP frames serve the Prometheus
// text export and the tracer's JSONL over the wire (the /metrics endpoint,
// rather than the old dump-on-exit), and the span taxonomy gains net.accept
// / net.request / net.batch.
//
// Shutdown: RequestShutdown() (any thread, including a reactor handling a
// SHUTDOWN frame) flags the supervisor; Wait() performs the graceful drain:
// stop accepting -> router drain (in-flight batches finish, queued requests
// answered) -> reactor write-flush grace -> join -> optional trace export.

#ifndef BOUQUET_NET_SERVER_H_
#define BOUQUET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/router.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/query_spec.h"
#include "service/service.h"

namespace bouquet {
namespace net {

struct ServerOptions {
  uint16_t port = 0;  ///< 0 = ephemeral (recover via port())
  int num_reactors = 2;
  int listen_backlog = 128;
  uint32_t max_payload = kMaxPayloadBytes;
  RouterOptions router;
  /// JSONL trace export written during graceful shutdown (empty = off).
  std::string trace_path;
  /// Borrowed observability sinks (may be null; typically the same ones
  /// handed to the BouquetService).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class BouquetServer {
 public:
  /// The service (and its catalog) must outlive the server.
  BouquetServer(BouquetService* service, ServerOptions options);
  ~BouquetServer();
  BouquetServer(const BouquetServer&) = delete;
  BouquetServer& operator=(const BouquetServer&) = delete;

  /// Makes `query.name` invocable over the wire. Callable before or after
  /// Start (the registry is reader-writer locked).
  Status RegisterTemplate(const QuerySpec& query);

  /// Binds, then spawns the acceptor and reactor threads.
  Status Start();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  /// Flags the supervisor to begin graceful shutdown. Nonblocking; safe
  /// from any thread, including reactors.
  void RequestShutdown();

  /// Blocks until shutdown is requested, then performs the graceful drain
  /// and join. Safe to call from multiple threads; exactly one performs the
  /// teardown.
  void Wait();

  const RequestRouter& router() const { return *router_; }

 private:
  struct Reactor {
    int index = 0;
    EventLoop loop;
    std::thread thread;
    // Reactor-thread-only state.
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
    // Cross-thread handoff: accepted fds and outbound bytes.
    Mutex mu;
    std::deque<int> pending_accepts GUARDED_BY(mu);
    std::deque<std::pair<uint64_t, std::vector<uint8_t>>> outbox
        GUARDED_BY(mu);
    std::atomic<bool> stop{false};
  };

  void AcceptorLoop();
  void ReactorLoop(Reactor& reactor);
  void AdoptPending(Reactor& reactor);
  void DrainOutbox(Reactor& reactor);
  void HandleFrame(Reactor& reactor, Connection& conn, const Frame& frame);
  void HandleQuery(Reactor& reactor, Connection& conn, const Frame& frame);
  void CloseConnection(Reactor& reactor, uint64_t conn_id);
  /// Arms/disarms EPOLLOUT to match conn.want_write().
  void UpdateWriteInterest(Reactor& reactor, Connection& conn);
  /// Reactor-thread send: queue + flush + write-interest update.
  void SendNow(Reactor& reactor, Connection& conn,
               std::vector<uint8_t> bytes);
  void SendError(Reactor& reactor, Connection& conn, uint64_t request_id,
                 WireError code, const std::string& message);

  /// Thread-safe response delivery into a reactor's outbox.
  void SendToConn(int reactor_index, uint64_t conn_id,
                  std::vector<uint8_t> bytes);

  /// Router callbacks.
  void ExecuteBatch(const std::string& template_name,
                    std::vector<RoutedRequest> batch);
  void ShedToSafePlan(RoutedRequest request);

  bool LookupTemplate(const std::string& name, QuerySpec* out) const;
  void DoShutdown();

  BouquetService* const service_;
  const ServerOptions options_;

  struct Instruments {
    obs::Counter* connections = nullptr;
    obs::Gauge* connections_open = nullptr;
    obs::Counter* frames = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* responses = nullptr;
    obs::Counter* error_responses = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Histogram* request_latency = nullptr;
  };
  Instruments ins_;

  mutable SharedMutex registry_mu_;
  std::unordered_map<std::string, QuerySpec> registry_
      GUARDED_BY(registry_mu_);

  std::unique_ptr<RequestRouter> router_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<int> open_conns_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_accepting_{false};

  // Supervisor handshake: RequestShutdown flags, Wait tears down once.
  Mutex state_mu_;
  CondVar state_cv_;
  bool shutdown_requested_ GUARDED_BY(state_mu_) = false;
  bool teardown_claimed_ GUARDED_BY(state_mu_) = false;
  bool shutdown_done_ GUARDED_BY(state_mu_) = false;
};

}  // namespace net
}  // namespace bouquet

#endif  // BOUQUET_NET_SERVER_H_

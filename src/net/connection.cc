#include "net/connection.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

namespace bouquet {
namespace net {

Connection::Connection(int fd, uint64_t id, uint32_t max_payload)
    : fd_(fd), id_(id), decoder_(max_payload) {}

Connection::~Connection() {
  if (fd_ >= 0) close(fd_);
}

Connection::IoResult Connection::ReadFrames(std::vector<Frame>* out) {
  uint8_t buf[16384];
  for (;;) {
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!decoder_.Feed(buf, static_cast<size_t>(n)).ok()) {
        return IoResult::kProtocolError;
      }
      Frame frame;
      while (decoder_.Next(&frame)) out->push_back(std::move(frame));
      continue;
    }
    if (n == 0) return IoResult::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
    if (errno == EINTR) continue;
    return IoResult::kError;
  }
}

void Connection::QueueWrite(std::vector<uint8_t> bytes) {
  if (bytes.empty()) return;
  outbox_.push_back(std::move(bytes));
}

Connection::IoResult Connection::Flush() {
  while (!outbox_.empty()) {
    const std::vector<uint8_t>& front = outbox_.front();
    const ssize_t n = send(fd_, front.data() + front_written_,
                           front.size() - front_written_, MSG_NOSIGNAL);
    if (n > 0) {
      front_written_ += static_cast<size_t>(n);
      if (front_written_ == front.size()) {
        outbox_.pop_front();
        front_written_ = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoResult::kOk;  // partial write; resume when EPOLLOUT fires
    }
    if (n < 0 && errno == EINTR) continue;
    return IoResult::kError;  // EPIPE/ECONNRESET and friends
  }
  return IoResult::kOk;
}

size_t Connection::pending_write_bytes() const {
  size_t total = 0;
  for (const auto& b : outbox_) total += b.size();
  return total - front_written_;
}

}  // namespace net
}  // namespace bouquet

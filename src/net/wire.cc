#include "net/wire.h"

#include <cstring>

#include "common/str_util.h"

namespace bouquet {
namespace net {

namespace {

// Selectivity vectors are bounded by the ESS dimensionality (the paper tops
// out at 5D); 64 leaves generous headroom while keeping QUERY parsing
// allocation-bounded independent of the frame ceiling.
constexpr uint16_t kMaxSelectivities = 64;
constexpr uint32_t kMaxTemplateName = 4096;
constexpr uint32_t kMaxErrorMessage = 4096;

Status Malformed(const char* what) {
  return Status::InvalidArgument(StrPrintf("malformed frame: %s", what));
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kHelloAck: return "HELLO_ACK";
    case FrameType::kQuery: return "QUERY";
    case FrameType::kResult: return "RESULT";
    case FrameType::kMetrics: return "METRICS";
    case FrameType::kMetricsText: return "METRICS_TEXT";
    case FrameType::kTraceDump: return "TRACE_DUMP";
    case FrameType::kTraceJsonl: return "TRACE_JSONL";
    case FrameType::kShutdown: return "SHUTDOWN";
    case FrameType::kGoodbye: return "GOODBYE";
    case FrameType::kError: return "ERROR";
  }
  return "UNKNOWN";
}

// ---------------------------------------------------------------- WireWriter

void WireWriter::U16(uint16_t v) {
  bytes_.push_back(static_cast<uint8_t>(v));
  bytes_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

// ---------------------------------------------------------------- WireReader

bool WireReader::U8(uint8_t* out) {
  if (len_ - pos_ < 1) return false;
  *out = data_[pos_++];
  return true;
}

bool WireReader::U16(uint16_t* out) {
  if (len_ - pos_ < 2) return false;
  *out = static_cast<uint16_t>(data_[pos_] |
                               (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return true;
}

bool WireReader::U32(uint32_t* out) {
  if (len_ - pos_ < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return true;
}

bool WireReader::U64(uint64_t* out) {
  if (len_ - pos_ < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return true;
}

bool WireReader::F64(double* out) {
  uint64_t bits = 0;
  if (!U64(&bits)) return false;
  std::memcpy(out, &bits, sizeof(*out));
  return true;
}

bool WireReader::Str(std::string* out, uint32_t max_len) {
  uint32_t n = 0;
  if (!U32(&n)) return false;
  if (n > max_len || len_ - pos_ < n) return false;
  out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

// --------------------------------------------------------------- FrameDecoder

std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  out.push_back(static_cast<uint8_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Status FrameDecoder::Feed(const uint8_t* data, size_t len) {
  if (broken_) return Malformed("decoder already broken");
  buf_.insert(buf_.end(), data, data + len);
  // Validate every frame header visible in the buffer — not just the one at
  // pos_ — so a hostile declared length latches `broken` the moment its
  // header lands, even when it sits behind complete frames in the same
  // chunk. Breaking releases the buffer, so memory held across Feed calls
  // is bounded by the frames Next() has yet to pop plus one partial frame
  // whose validated declared length is <= max_payload.
  size_t walk = pos_;
  while (buf_.size() - walk >= 4) {
    uint32_t declared = 0;
    for (int i = 0; i < 4; ++i) {
      declared |= static_cast<uint32_t>(buf_[walk + i]) << (8 * i);
    }
    if (declared > max_payload_) {
      broken_ = true;
      buf_.clear();
      buf_.shrink_to_fit();
      pos_ = 0;
      return Malformed("declared payload exceeds ceiling");
    }
    if (buf_.size() - walk < kFrameHeaderBytes + declared) break;
    walk += kFrameHeaderBytes + declared;
  }
  return Status::Ok();
}

bool FrameDecoder::Next(Frame* out) {
  if (broken_) return false;
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return false;
  uint32_t declared = 0;
  for (int i = 0; i < 4; ++i) {
    declared |= static_cast<uint32_t>(buf_[pos_ + i]) << (8 * i);
  }
  if (declared > max_payload_) {  // unreachable after Feed, kept as belt
    broken_ = true;
    buf_.clear();
    pos_ = 0;
    return false;
  }
  if (avail < kFrameHeaderBytes + declared) return false;
  out->type = buf_[pos_ + 4];
  out->payload.assign(buf_.begin() + pos_ + kFrameHeaderBytes,
                      buf_.begin() + pos_ + kFrameHeaderBytes + declared);
  pos_ += kFrameHeaderBytes + declared;
  Compact();
  return true;
}

void FrameDecoder::Compact() {
  // Reclaim the consumed prefix once it dominates the buffer, amortizing
  // the memmove while keeping residency bounded by one in-flight frame.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + pos_);
    pos_ = 0;
  }
}

// ------------------------------------------------------------------ Messages

std::vector<uint8_t> EncodeHello(const HelloMsg& msg, FrameType type) {
  WireWriter w;
  w.U32(msg.version);
  return EncodeFrame(type, w.bytes());
}

Status DecodeHello(const Frame& frame, HelloMsg* out) {
  WireReader r(frame.payload);
  if (!r.U32(&out->version) || !r.AtEnd()) return Malformed("HELLO payload");
  return Status::Ok();
}

std::vector<uint8_t> EncodeQuery(const QueryMsg& msg) {
  WireWriter w;
  w.U64(msg.request_id);
  w.U32(msg.tenant_id);
  w.Str(msg.template_name);
  w.U16(static_cast<uint16_t>(msg.selectivities.size()));
  for (double s : msg.selectivities) w.F64(s);
  return EncodeFrame(FrameType::kQuery, w.bytes());
}

Status DecodeQuery(const Frame& frame, QueryMsg* out) {
  WireReader r(frame.payload);
  uint16_t n = 0;
  if (!r.U64(&out->request_id) || !r.U32(&out->tenant_id) ||
      !r.Str(&out->template_name, kMaxTemplateName) || !r.U16(&n)) {
    return Malformed("QUERY payload");
  }
  if (n > kMaxSelectivities) return Malformed("QUERY selectivity count");
  out->selectivities.resize(n);
  for (uint16_t i = 0; i < n; ++i) {
    if (!r.F64(&out->selectivities[i])) return Malformed("QUERY selectivity");
  }
  if (!r.AtEnd()) return Malformed("QUERY trailing bytes");
  return Status::Ok();
}

std::vector<uint8_t> EncodeResult(const ResultMsg& msg) {
  WireWriter w;
  w.U64(msg.request_id);
  w.U8(msg.flags);
  w.U32(msg.num_executions);
  w.F64(msg.total_cost);
  w.F64(msg.server_seconds);
  return EncodeFrame(FrameType::kResult, w.bytes());
}

Status DecodeResult(const Frame& frame, ResultMsg* out) {
  WireReader r(frame.payload);
  if (!r.U64(&out->request_id) || !r.U8(&out->flags) ||
      !r.U32(&out->num_executions) || !r.F64(&out->total_cost) ||
      !r.F64(&out->server_seconds) || !r.AtEnd()) {
    return Malformed("RESULT payload");
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeError(const ErrorMsg& msg) {
  WireWriter w;
  w.U64(msg.request_id);
  w.U8(msg.code);
  w.Str(msg.message);
  return EncodeFrame(FrameType::kError, w.bytes());
}

Status DecodeError(const Frame& frame, ErrorMsg* out) {
  WireReader r(frame.payload);
  if (!r.U64(&out->request_id) || !r.U8(&out->code) ||
      !r.Str(&out->message, kMaxErrorMessage) || !r.AtEnd()) {
    return Malformed("ERROR payload");
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeText(FrameType type, const std::string& text) {
  WireWriter w;
  w.Str(text);
  return EncodeFrame(type, w.bytes());
}

Status DecodeText(const Frame& frame, std::string* out) {
  WireReader r(frame.payload);
  if (!r.Str(out, kMaxPayloadBytes) || !r.AtEnd()) {
    return Malformed("text payload");
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace bouquet

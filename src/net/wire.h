// Wire protocol for the bouquet serving layer: a small length-prefixed
// binary framing plus the message vocabulary the server speaks.
//
// Frame layout (little-endian):
//
//   | u32 payload_len | u8 type | payload_len bytes |
//
// The per-message payloads are composed from fixed-width integers, IEEE-754
// doubles (bit-cast through u64), and u32-length-prefixed strings. The
// vocabulary mirrors the deployment model of Section 4.2: clients name a
// *template* registered on the server and send only the per-invocation
// constants (the actual selectivities of the error-prone predicates), so a
// request is a few dozen bytes against a compiled bundle that cost seconds.
//
//   HELLO / HELLO_ACK   version handshake
//   QUERY / RESULT      one bouquet execution (request_id echoed back)
//   METRICS / METRICS_TEXT   live Prometheus text ("/metrics" over the wire)
//   TRACE_DUMP / TRACE_JSONL live tracer export
//   SHUTDOWN / GOODBYE  graceful drain handshake
//   ERROR               typed failure (malformed, throttled, overloaded, ...)
//
// FrameDecoder is an incremental, allocation-bounded parser designed for
// non-blocking sockets: feed it whatever bytes arrived, pull out complete
// frames, and it latches into a broken state (connection must close) on
// oversized or structurally impossible input. Memory is bounded by
// header + max_payload regardless of what a malicious peer sends.
//
// Thread-safety: none of these types are thread-safe; each connection owns
// its decoder and is driven by exactly one reactor thread.

#ifndef BOUQUET_NET_WIRE_H_
#define BOUQUET_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace bouquet {
namespace net {

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kQuery = 3,
  kResult = 4,
  kMetrics = 5,
  kMetricsText = 6,
  kTraceDump = 7,
  kTraceJsonl = 8,
  kShutdown = 9,
  kGoodbye = 10,
  kError = 11,
};

const char* FrameTypeName(FrameType type);

/// Protocol version carried in HELLO/HELLO_ACK.
constexpr uint32_t kWireVersion = 1;

/// Hard payload ceiling (1 MiB): larger frames are a protocol violation.
constexpr uint32_t kMaxPayloadBytes = 1u << 20;

/// u32 length + u8 type.
constexpr size_t kFrameHeaderBytes = 5;

/// One complete frame (type + raw payload).
struct Frame {
  uint8_t type = 0;
  std::vector<uint8_t> payload;
};

/// Error codes carried by ERROR frames.
enum class WireError : uint8_t {
  kMalformed = 1,        ///< frame/payload failed to parse
  kUnknownTemplate = 2,  ///< QUERY named a template the server has not loaded
  kThrottled = 3,        ///< tenant token bucket empty (admission control)
  kOverloaded = 4,       ///< queue bound exceeded and no safe plan available
  kShuttingDown = 5,     ///< server is draining
  kInternal = 6,
};

// ---------------------------------------------------------------------------
// Payload primitives.
// ---------------------------------------------------------------------------

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);
  /// u32 length prefix + raw bytes.
  void Str(const std::string& s);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked little-endian payload reader. Every getter returns false
/// (leaving the output untouched) once the payload is exhausted or a length
/// prefix overruns it; decoding then fails without ever reading out of
/// bounds.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit WireReader(const std::vector<uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  bool U8(uint8_t* out);
  bool U16(uint16_t* out);
  bool U32(uint32_t* out);
  bool U64(uint64_t* out);
  bool F64(double* out);
  bool Str(std::string* out, uint32_t max_len);

  bool AtEnd() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Serializes a full frame (header + payload).
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload);

/// Incremental frame parser for a byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  /// Appends received bytes. Returns an error (and latches `broken`) when
  /// the stream declares a payload above the ceiling; all later calls fail.
  Status Feed(const uint8_t* data, size_t len);

  /// Extracts the next complete frame; false when more bytes are needed.
  bool Next(Frame* out);

  bool broken() const { return broken_; }
  /// Bytes currently buffered (tests assert this stays <= header + max).
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  void Compact();

  uint32_t max_payload_;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
  bool broken_ = false;
};

// ---------------------------------------------------------------------------
// Messages.
// ---------------------------------------------------------------------------

struct HelloMsg {
  uint32_t version = kWireVersion;
};

/// One query invocation against a registered template.
struct QueryMsg {
  uint64_t request_id = 0;  ///< client-chosen, echoed in RESULT/ERROR
  uint32_t tenant_id = 0;   ///< admission-control + fair-queuing identity
  std::string template_name;
  /// Per-invocation constants: the actual selectivity of each error-prone
  /// predicate (one entry per ESS dimension of the template).
  std::vector<double> selectivities;
};

/// RESULT flag bits.
enum ResultFlag : uint8_t {
  kResultCompleted = 1u << 0,
  kResultDegraded = 1u << 1,  ///< served by the MSO-safe plan under shed
  kResultCacheHit = 1u << 2,
  kResultCompiled = 1u << 3,  ///< this request paid the template compile
};

struct ResultMsg {
  uint64_t request_id = 0;
  uint8_t flags = 0;
  uint32_t num_executions = 0;
  double total_cost = 0.0;      ///< cost-model units charged by the run
  double server_seconds = 0.0;  ///< arrival -> response enqueue
};

struct ErrorMsg {
  uint64_t request_id = 0;  ///< 0 when not tied to a QUERY
  uint8_t code = 0;         ///< WireError
  std::string message;
};

std::vector<uint8_t> EncodeHello(const HelloMsg& msg, FrameType type);
Status DecodeHello(const Frame& frame, HelloMsg* out);

std::vector<uint8_t> EncodeQuery(const QueryMsg& msg);
Status DecodeQuery(const Frame& frame, QueryMsg* out);

std::vector<uint8_t> EncodeResult(const ResultMsg& msg);
Status DecodeResult(const Frame& frame, ResultMsg* out);

std::vector<uint8_t> EncodeError(const ErrorMsg& msg);
Status DecodeError(const Frame& frame, ErrorMsg* out);

/// METRICS_TEXT and TRACE_JSONL both carry one string payload.
std::vector<uint8_t> EncodeText(FrameType type, const std::string& text);
Status DecodeText(const Frame& frame, std::string* out);

}  // namespace net
}  // namespace bouquet

#endif  // BOUQUET_NET_WIRE_H_

#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <unordered_set>

namespace bouquet {
namespace net {

namespace {

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

BouquetServer::BouquetServer(BouquetService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    ins_.connections =
        m->GetCounter("net_connections_total", "Connections accepted");
    ins_.connections_open =
        m->GetGauge("net_connections_open", "Connections currently open");
    ins_.frames = m->GetCounter("net_frames_total", "Frames received");
    ins_.protocol_errors = m->GetCounter(
        "net_protocol_errors_total",
        "Malformed frames/payloads and framing violations from peers");
    ins_.responses =
        m->GetCounter("net_responses_total", "RESULT frames sent");
    ins_.error_responses =
        m->GetCounter("net_error_responses_total", "ERROR frames sent");
    ins_.degraded = m->GetCounter(
        "net_degraded_total",
        "RESULT frames served degraded by the MSO-safe plan");
    ins_.request_latency = m->GetHistogram(
        "net_request_latency_seconds",
        "QUERY arrival to RESULT enqueue (server side)",
        obs::NetLatencyBuckets());
  }
  router_ = std::make_unique<RequestRouter>(
      options_.router,
      [this](const std::string& template_name,
             std::vector<RoutedRequest> batch) {
        // Hop to the service pool; the shared_ptr detour is only because
        // std::function requires copyable callables and batches are
        // move-only (they carry spans).
        auto shared = std::make_shared<std::vector<RoutedRequest>>(
            std::move(batch));
        service_->pool()->Post([this, template_name, shared] {
          ExecuteBatch(template_name, std::move(*shared));
          router_->OnBatchDone();
        });
      },
      [this](RoutedRequest request) { ShedToSafePlan(std::move(request)); },
      options_.metrics);
}

BouquetServer::~BouquetServer() {
  RequestShutdown();
  Wait();
}

Status BouquetServer::RegisterTemplate(const QuerySpec& query) {
  if (query.name.empty()) {
    return Status::InvalidArgument("template has no name");
  }
  WriterMutexLock lock(&registry_mu_);
  registry_[query.name] = query;
  return Status::Ok();
}

bool BouquetServer::LookupTemplate(const std::string& name,
                                   QuerySpec* out) const {
  ReaderMutexLock lock(&registry_mu_);
  auto it = registry_.find(name);
  if (it == registry_.end()) return false;
  *out = it->second;
  return true;
}

Status BouquetServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  auto listen_or = ListenLoopback(options_.port, options_.listen_backlog);
  if (!listen_or.ok()) return listen_or.status();
  listen_fd_ = listen_or.value();
  auto port_or = LocalPort(listen_fd_);
  if (!port_or.ok()) return port_or.status();
  port_ = port_or.value();

  const int n = std::max(1, options_.num_reactors);
  for (int i = 0; i < n; ++i) {
    auto reactor = std::make_unique<Reactor>();
    reactor->index = i;
    if (!reactor->loop.ok()) {
      reactors_.clear();
      return Status::Internal("epoll/eventfd creation failed");
    }
    reactors_.push_back(std::move(reactor));
  }
  for (auto& reactor : reactors_) {
    Reactor* r = reactor.get();
    r->thread = std::thread([this, r] { ReactorLoop(*r); });
  }
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  return Status::Ok();
}

void BouquetServer::AcceptorLoop() {
  size_t next = 0;
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 100) <= 0) continue;
    for (;;) {
      const int fd =
          accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN and transient errors: back to poll
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Reactor& reactor = *reactors_[next++ % reactors_.size()];
      {
        MutexLock lock(&reactor.mu);
        reactor.pending_accepts.push_back(fd);
      }
      reactor.loop.Wake();
    }
  }
}

void BouquetServer::AdoptPending(Reactor& reactor) {
  std::deque<int> fds;
  {
    MutexLock lock(&reactor.mu);
    fds.swap(reactor.pending_accepts);
  }
  for (int fd : fds) {
    if (reactor.stop.load(std::memory_order_acquire)) {
      close(fd);
      continue;
    }
    const uint64_t id =
        next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>(fd, id, options_.max_payload);
    if (!reactor.loop.Add(fd, EPOLLIN, conn.get()).ok()) {
      continue;  // conn destructor closes the fd
    }
    obs::Span span = obs::Tracer::Begin(options_.tracer, "net.accept");
    span.Num("conn_id", static_cast<double>(id))
        .Num("reactor", static_cast<double>(reactor.index));
    span.End();
    if (ins_.connections != nullptr) ins_.connections->Inc();
    const int open = open_conns_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (ins_.connections_open != nullptr) {
      ins_.connections_open->Set(static_cast<double>(open));
    }
    reactor.conns.emplace(id, std::move(conn));
  }
}

void BouquetServer::DrainOutbox(Reactor& reactor) {
  std::deque<std::pair<uint64_t, std::vector<uint8_t>>> items;
  {
    MutexLock lock(&reactor.mu);
    items.swap(reactor.outbox);
  }
  std::unordered_set<uint64_t> touched;
  for (auto& [id, bytes] : items) {
    auto it = reactor.conns.find(id);
    if (it == reactor.conns.end()) continue;  // peer left before the answer
    it->second->QueueWrite(std::move(bytes));
    touched.insert(id);
  }
  for (uint64_t id : touched) {
    auto it = reactor.conns.find(id);
    if (it == reactor.conns.end()) continue;
    if (it->second->Flush() == Connection::IoResult::kError) {
      CloseConnection(reactor, id);
    } else {
      UpdateWriteInterest(reactor, *it->second);
    }
  }
}

void BouquetServer::UpdateWriteInterest(Reactor& reactor, Connection& conn) {
  const uint32_t events =
      EPOLLIN | (conn.want_write() ? EPOLLOUT : 0u);
  reactor.loop.Mod(conn.fd(), events, &conn);
}

void BouquetServer::CloseConnection(Reactor& reactor, uint64_t conn_id) {
  auto it = reactor.conns.find(conn_id);
  if (it == reactor.conns.end()) return;
  reactor.loop.Del(it->second->fd());
  reactor.conns.erase(it);
  const int open = open_conns_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (ins_.connections_open != nullptr) {
    ins_.connections_open->Set(static_cast<double>(open));
  }
}

void BouquetServer::SendNow(Reactor& reactor, Connection& conn,
                            std::vector<uint8_t> bytes) {
  conn.QueueWrite(std::move(bytes));
  if (conn.Flush() == Connection::IoResult::kError) {
    CloseConnection(reactor, conn.id());
    return;
  }
  UpdateWriteInterest(reactor, conn);
}

void BouquetServer::SendError(Reactor& reactor, Connection& conn,
                              uint64_t request_id, WireError code,
                              const std::string& message) {
  ErrorMsg err;
  err.request_id = request_id;
  err.code = static_cast<uint8_t>(code);
  err.message = message;
  if (ins_.error_responses != nullptr) ins_.error_responses->Inc();
  SendNow(reactor, conn, EncodeError(err));
}

void BouquetServer::ReactorLoop(Reactor& reactor) {
  std::vector<ReadyEvent> events;
  while (!reactor.stop.load(std::memory_order_acquire)) {
    AdoptPending(reactor);
    DrainOutbox(reactor);
    events.clear();
    if (reactor.loop.Poll(100, &events) < 0) break;
    for (const ReadyEvent& ev : events) {
      Connection* conn = static_cast<Connection*>(ev.tag);
      if (conn == nullptr) continue;
      const uint64_t id = conn->id();
      bool close_conn = (ev.events & (EPOLLERR | EPOLLHUP)) != 0;
      if (!close_conn && (ev.events & EPOLLIN) != 0) {
        std::vector<Frame> frames;
        const Connection::IoResult res = conn->ReadFrames(&frames);
        for (const Frame& frame : frames) {
          // HandleFrame never closes `conn` itself (SendNow may, on a dead
          // socket); re-check liveness between frames.
          if (reactor.conns.find(id) == reactor.conns.end()) break;
          HandleFrame(reactor, *conn, frame);
        }
        if (reactor.conns.find(id) == reactor.conns.end()) continue;
        if (res == Connection::IoResult::kProtocolError) {
          if (ins_.protocol_errors != nullptr) ins_.protocol_errors->Inc();
          close_conn = true;
        } else if (res != Connection::IoResult::kOk) {
          close_conn = true;
        }
      }
      if (!close_conn && (ev.events & EPOLLOUT) != 0) {
        if (conn->Flush() == Connection::IoResult::kError) {
          close_conn = true;
        } else {
          UpdateWriteInterest(reactor, *conn);
        }
      }
      if (close_conn) CloseConnection(reactor, id);
    }
  }

  // Drain grace: responses already queued (or racing in via the outbox) get
  // up to 500 ms of flush attempts before the sockets close.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  for (;;) {
    AdoptPending(reactor);  // closes stragglers (stop flag is set)
    DrainOutbox(reactor);
    bool pending = false;
    for (auto& [id, conn] : reactor.conns) {
      conn->Flush();
      if (conn->want_write()) pending = true;
    }
    if (!pending || std::chrono::steady_clock::now() >= deadline) break;
    events.clear();
    reactor.loop.Poll(10, &events);
  }
  const int closed = static_cast<int>(reactor.conns.size());
  for (auto& [id, conn] : reactor.conns) reactor.loop.Del(conn->fd());
  reactor.conns.clear();
  if (closed > 0) {
    const int open =
        open_conns_.fetch_sub(closed, std::memory_order_relaxed) - closed;
    if (ins_.connections_open != nullptr) {
      ins_.connections_open->Set(static_cast<double>(open));
    }
  }
}

void BouquetServer::HandleFrame(Reactor& reactor, Connection& conn,
                                const Frame& frame) {
  if (ins_.frames != nullptr) ins_.frames->Inc();
  switch (static_cast<FrameType>(frame.type)) {
    case FrameType::kHello: {
      HelloMsg hello;
      if (!DecodeHello(frame, &hello).ok()) {
        if (ins_.protocol_errors != nullptr) ins_.protocol_errors->Inc();
        SendError(reactor, conn, 0, WireError::kMalformed, "bad HELLO");
        return;
      }
      HelloMsg ack;
      ack.version = kWireVersion;
      SendNow(reactor, conn, EncodeHello(ack, FrameType::kHelloAck));
      return;
    }
    case FrameType::kQuery:
      HandleQuery(reactor, conn, frame);
      return;
    case FrameType::kMetrics: {
      if (options_.metrics == nullptr) {
        SendError(reactor, conn, 0, WireError::kInternal,
                  "metrics registry not attached");
        return;
      }
      std::string text = options_.metrics->ExportPrometheus();
      const size_t cap = options_.max_payload - 64;
      if (text.size() > cap) text.resize(cap);
      SendNow(reactor, conn, EncodeText(FrameType::kMetricsText, text));
      return;
    }
    case FrameType::kTraceDump: {
      if (options_.tracer == nullptr) {
        SendError(reactor, conn, 0, WireError::kInternal,
                  "tracer not attached");
        return;
      }
      std::ostringstream os;
      options_.tracer->ExportJsonl(os);
      std::string text = os.str();
      const size_t cap = options_.max_payload - 64;
      if (text.size() > cap) {
        // Truncate on a line boundary: every remaining line stays valid
        // JSON for the schema checker.
        const size_t nl = text.rfind('\n', cap);
        text.resize(nl == std::string::npos ? 0 : nl + 1);
      }
      SendNow(reactor, conn, EncodeText(FrameType::kTraceJsonl, text));
      return;
    }
    case FrameType::kShutdown:
      SendNow(reactor, conn, EncodeFrame(FrameType::kGoodbye, {}));
      RequestShutdown();
      return;
    default:
      if (ins_.protocol_errors != nullptr) ins_.protocol_errors->Inc();
      SendError(reactor, conn, 0, WireError::kMalformed,
                "unexpected frame type");
      return;
  }
}

void BouquetServer::HandleQuery(Reactor& reactor, Connection& conn,
                                const Frame& frame) {
  QueryMsg query;
  if (!DecodeQuery(frame, &query).ok()) {
    if (ins_.protocol_errors != nullptr) ins_.protocol_errors->Inc();
    SendError(reactor, conn, 0, WireError::kMalformed, "bad QUERY payload");
    return;
  }
  QuerySpec spec;
  if (!LookupTemplate(query.template_name, &spec)) {
    SendError(reactor, conn, query.request_id, WireError::kUnknownTemplate,
              "template not registered: " + query.template_name);
    return;
  }
  if (static_cast<int>(query.selectivities.size()) != spec.NumDims()) {
    SendError(reactor, conn, query.request_id, WireError::kMalformed,
              "selectivity count does not match template dimensions");
    return;
  }
  for (double s : query.selectivities) {
    if (!std::isfinite(s) || s <= 0.0 || s > 1.0) {
      SendError(reactor, conn, query.request_id, WireError::kMalformed,
                "selectivities must lie in (0, 1]");
      return;
    }
  }

  RoutedRequest request;
  request.arrival = std::chrono::steady_clock::now();
  request.span = obs::Tracer::Begin(options_.tracer, "net.request");
  request.span.Num("tenant", static_cast<double>(query.tenant_id))
      .Str("template", query.template_name);

  const int reactor_index = reactor.index;
  const uint64_t conn_id = conn.id();
  const uint64_t request_id = query.request_id;
  const auto arrival = request.arrival;
  request.query = std::move(query);
  request.respond = [this, reactor_index, conn_id, request_id,
                     arrival](const ResultMsg& msg) {
    ResultMsg out = msg;
    out.request_id = request_id;
    out.server_seconds =
        SecondsBetween(arrival, std::chrono::steady_clock::now());
    if (ins_.responses != nullptr) ins_.responses->Inc();
    if ((out.flags & kResultDegraded) != 0 && ins_.degraded != nullptr) {
      ins_.degraded->Inc();
    }
    if (ins_.request_latency != nullptr) {
      ins_.request_latency->Observe(out.server_seconds);
    }
    SendToConn(reactor_index, conn_id, EncodeResult(out));
  };
  request.fail = [this, reactor_index, conn_id, request_id](
                     WireError code, const std::string& message) {
    ErrorMsg err;
    err.request_id = request_id;
    err.code = static_cast<uint8_t>(code);
    err.message = message;
    if (ins_.error_responses != nullptr) ins_.error_responses->Inc();
    SendToConn(reactor_index, conn_id, EncodeError(err));
  };
  router_->Submit(std::move(request));
}

void BouquetServer::SendToConn(int reactor_index, uint64_t conn_id,
                               std::vector<uint8_t> bytes) {
  if (reactor_index < 0 ||
      reactor_index >= static_cast<int>(reactors_.size())) {
    return;
  }
  Reactor& reactor = *reactors_[reactor_index];
  {
    MutexLock lock(&reactor.mu);
    reactor.outbox.emplace_back(conn_id, std::move(bytes));
  }
  reactor.loop.Wake();
}

void BouquetServer::ExecuteBatch(const std::string& template_name,
                                 std::vector<RoutedRequest> batch) {
  QuerySpec spec;
  if (!LookupTemplate(template_name, &spec)) {
    for (RoutedRequest& req : batch) {
      req.fail(WireError::kUnknownTemplate,
               "template vanished: " + template_name);
    }
    return;
  }
  obs::Span span = obs::Tracer::Begin(options_.tracer, "net.batch");
  span.Num("batch_size", static_cast<double>(batch.size()))
      .Str("template", template_name);

  std::vector<ServiceRequest> requests(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    requests[i].query = spec;
    requests[i].actual_selectivities = batch[i].query.selectivities;
    requests[i].mode = ExecutionMode::kSimulate;
  }
  auto results_or = service_->RunBatch(requests, &span);
  if (!results_or.ok()) {
    span.Flag("failed", true);
    for (RoutedRequest& req : batch) {
      req.fail(WireError::kInternal, results_or.status().message());
    }
    return;
  }
  const std::vector<ServiceResult>& results = results_or.value();
  for (size_t i = 0; i < batch.size(); ++i) {
    const ServiceResult& sr = results[i];
    ResultMsg msg;
    msg.flags = static_cast<uint8_t>(
        (sr.sim.completed ? kResultCompleted : 0) |
        (sr.cache_hit ? kResultCacheHit : 0) |
        (sr.compiled ? kResultCompiled : 0));
    msg.num_executions = static_cast<uint32_t>(sr.sim.num_executions);
    msg.total_cost = sr.sim.total_cost;
    batch[i].span.Flag("batched", true)
        .Num("executions", static_cast<double>(sr.sim.num_executions))
        .Flag("cache_hit", sr.cache_hit);
    batch[i].respond(msg);
  }
}

void BouquetServer::ShedToSafePlan(RoutedRequest request) {
  QuerySpec spec;
  if (!LookupTemplate(request.query.template_name, &spec)) {
    request.fail(WireError::kUnknownTemplate,
                 "template vanished: " + request.query.template_name);
    return;
  }
  ServiceRequest sreq;
  sreq.query = std::move(spec);
  sreq.actual_selectivities = request.query.selectivities;
  sreq.mode = ExecutionMode::kSimulate;
  request.span.Flag("degraded", true);
  auto result_or = service_->RunSafePlan(sreq, &request.span);
  if (!result_or.ok()) {
    request.fail(WireError::kOverloaded,
                 "shed failed: " + result_or.status().message());
    return;
  }
  const ServiceResult& sr = result_or.value();
  ResultMsg msg;
  msg.flags = static_cast<uint8_t>(
      kResultDegraded | (sr.sim.completed ? kResultCompleted : 0) |
      kResultCacheHit);
  msg.num_executions = static_cast<uint32_t>(sr.sim.num_executions);
  msg.total_cost = sr.sim.total_cost;
  request.respond(msg);
}

void BouquetServer::RequestShutdown() {
  {
    MutexLock lock(&state_mu_);
    shutdown_requested_ = true;
  }
  state_cv_.NotifyAll();
}

void BouquetServer::Wait() {
  {
    MutexLock lock(&state_mu_);
    while (!shutdown_requested_) state_cv_.Wait(&state_mu_);
    if (shutdown_done_) return;
    if (teardown_claimed_) {
      while (!shutdown_done_) state_cv_.Wait(&state_mu_);
      return;
    }
    teardown_claimed_ = true;
  }
  DoShutdown();
  {
    MutexLock lock(&state_mu_);
    shutdown_done_ = true;
  }
  state_cv_.NotifyAll();
}

void BouquetServer::DoShutdown() {
  // 1. Stop accepting (new connections are refused once the listener dies).
  stop_accepting_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Drain the router: already-admitted requests finish (their responses
  //    flow through still-running reactors); new QUERYs get kShuttingDown.
  if (router_ != nullptr) router_->Drain();
  // 3. Stop the reactors; each flushes pending writes (bounded grace) and
  //    closes its connections on the way out.
  for (auto& reactor : reactors_) {
    reactor->stop.store(true, std::memory_order_release);
    reactor->loop.Wake();
  }
  for (auto& reactor : reactors_) {
    if (reactor->thread.joinable()) reactor->thread.join();
  }
  // 4. Final trace export (the in-flight record, not just end-of-process).
  if (options_.tracer != nullptr && !options_.trace_path.empty()) {
    options_.tracer->ExportJsonlFile(options_.trace_path);
  }
}

}  // namespace net
}  // namespace bouquet

// BlockingClient: a minimal synchronous peer for the bouquet wire protocol.
//
// Used by the loopback mode of examples/bouquet_server, the serve-smoke
// bench, and the integration tests. One blocking socket, no threads: Query
// writes a frame and reads until the matching RESULT/ERROR arrives. The raw
// SendFrame/RecvFrame pair supports pipelined open-loop load generation
// (write a burst, then collect responses).
//
// Thread-safety: none; one client per thread.

#ifndef BOUQUET_NET_CLIENT_H_
#define BOUQUET_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace bouquet {
namespace net {

/// RESULT or ERROR, whichever the server sent for a QUERY.
struct QueryOutcome {
  bool ok = false;   ///< true: `result` is valid; false: `error` is
  ResultMsg result;
  ErrorMsg error;
};

class BlockingClient {
 public:
  /// Blocking loopback connect.
  static Result<BlockingClient> Connect(uint16_t port);

  BlockingClient() = default;
  ~BlockingClient();
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// HELLO -> HELLO_ACK version handshake.
  Status Hello();

  /// One synchronous QUERY; returns the RESULT or the server's ERROR.
  Result<QueryOutcome> Query(const QueryMsg& query);

  /// METRICS -> Prometheus text ("/metrics" over the wire).
  Result<std::string> MetricsText();

  /// TRACE_DUMP -> JSONL trace export.
  Result<std::string> TraceJsonl();

  /// SHUTDOWN -> GOODBYE (the server then drains).
  Status ShutdownServer();

  /// Raw frame I/O for pipelined load generation.
  Status SendFrame(const std::vector<uint8_t>& bytes);
  Result<Frame> RecvFrame();

 private:
  explicit BlockingClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace bouquet

#endif  // BOUQUET_NET_CLIENT_H_

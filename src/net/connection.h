// Per-connection state machine for the serving layer.
//
// A Connection owns one nonblocking socket plus the incremental frame
// decoder on the read side and a buffered outbox on the write side. It is
// deliberately single-threaded: exactly one reactor drives every method, so
// the class itself needs no locks (cross-thread response delivery goes
// through the reactor's outbox, see server.cc). That also makes it directly
// testable over a socketpair: tests shrink the kernel buffers and verify
// that reads resume mid-frame and writes resume mid-buffer.
//
// Read path:  ReadFrames() drains the socket until EAGAIN, feeding the
//             FrameDecoder; complete frames accumulate in `out`. A peer
//             declaring an oversized frame latches the decoder broken and
//             the connection reports kProtocolError (caller closes).
// Write path: QueueWrite() appends encoded frames; Flush() writes until
//             EAGAIN or empty. want_write() tells the reactor whether to
//             keep EPOLLOUT armed.

#ifndef BOUQUET_NET_CONNECTION_H_
#define BOUQUET_NET_CONNECTION_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "net/wire.h"

namespace bouquet {
namespace net {

class Connection {
 public:
  enum class IoResult {
    kOk,             ///< progressed; socket drained to EAGAIN
    kClosed,         ///< orderly EOF from the peer
    kError,          ///< hard socket error
    kProtocolError,  ///< stream violated framing (oversized declaration)
  };

  /// Takes ownership of `fd` (closed in the destructor).
  Connection(int fd, uint64_t id, uint32_t max_payload = kMaxPayloadBytes);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  uint64_t id() const { return id_; }

  /// Drains readable bytes, appending every complete frame to `out`.
  IoResult ReadFrames(std::vector<Frame>* out);

  /// Appends encoded bytes to the outbox (no I/O; call Flush after).
  void QueueWrite(std::vector<uint8_t> bytes);

  /// Writes queued bytes until EAGAIN or the outbox empties.
  IoResult Flush();

  /// Outbox still holds bytes (reactor arms EPOLLOUT while true).
  bool want_write() const { return !outbox_.empty(); }
  size_t pending_write_bytes() const;

 private:
  const int fd_;
  const uint64_t id_;
  FrameDecoder decoder_;
  std::deque<std::vector<uint8_t>> outbox_;
  size_t front_written_ = 0;  ///< bytes of outbox_.front() already on the wire
};

}  // namespace net
}  // namespace bouquet

#endif  // BOUQUET_NET_CONNECTION_H_

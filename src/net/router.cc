#include "net/router.h"

#include <algorithm>
#include <utility>

namespace bouquet {
namespace net {

namespace {

double NowSeconds(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration<double>(tp.time_since_epoch()).count();
}

}  // namespace

RequestRouter::RequestRouter(RouterOptions options, BatchExecutor executor,
                             ShedHandler shed, obs::MetricsRegistry* metrics)
    : options_(options),
      executor_(std::move(executor)),
      shed_(std::move(shed)) {
  if (metrics != nullptr) {
    ins_.requests = metrics->GetCounter(
        "net_requests_total", "QUERY frames reaching admission control");
    ins_.throttled = metrics->GetCounter(
        "net_throttled_total",
        "Requests rejected by the per-tenant token bucket");
    ins_.shed = metrics->GetCounter(
        "net_shed_total",
        "Requests shed to the MSO-safe plan (queue bound exceeded)");
    ins_.batches = metrics->GetCounter("net_batches_total",
                                       "Same-template batches dispatched");
    ins_.batched_requests = metrics->GetCounter(
        "net_batched_requests_total", "Requests dispatched inside batches");
    ins_.queue_depth = metrics->GetGauge(
        "net_queue_depth", "Admitted requests not yet dispatched");
    ins_.queue_depth_peak = metrics->GetGauge(
        "net_queue_depth_peak", "High-water mark of net_queue_depth");
    ins_.inflight_batches = metrics->GetGauge(
        "net_inflight_batches", "Batches currently executing on the pool");
    ins_.batch_size =
        metrics->GetHistogram("net_batch_size", "Requests per flushed batch",
                              obs::BatchSizeBuckets());
    ins_.queue_wait = metrics->GetHistogram(
        "net_queue_wait_seconds",
        "Arrival to batch-flush wait (admitted requests)",
        obs::NetLatencyBuckets());
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

RequestRouter::~RequestRouter() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  dispatcher_.join();

  // Wait out in-flight batches (their executors hold `this` via
  // OnBatchDone), then fail every stranded queued request so no respond
  // closure is silently dropped.
  std::vector<RoutedRequest> stranded;
  {
    MutexLock lock(&mu_);
    while (inflight_batches_ > 0) drain_cv_.Wait(&mu_);
    for (auto& [id, tenant] : tenants_) {
      for (auto& req : tenant.queue) stranded.push_back(std::move(req));
      tenant.queue.clear();
    }
    for (auto& [name, batch] : batches_) {
      for (auto& req : batch.requests) stranded.push_back(std::move(req));
    }
    batches_.clear();
    queued_ = 0;
  }
  for (auto& req : stranded) {
    req.fail(WireError::kShuttingDown, "server stopped");
  }
}

RequestRouter::Tenant& RequestRouter::TenantLocked(uint32_t tenant_id) {
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(tenant_id,
                      Tenant{TokenBucket(options_.tenant_rate,
                                         options_.tenant_burst),
                             options_.default_weight,
                             0.0,
                             {}})
             .first;
  }
  return it->second;
}

void RequestRouter::UpdateQueueGaugeLocked() {
  stats_.queue_depth = queued_;
  if (queued_ > stats_.peak_queue_depth) stats_.peak_queue_depth = queued_;
  if (ins_.queue_depth != nullptr) {
    ins_.queue_depth->Set(static_cast<double>(queued_));
    ins_.queue_depth_peak->Set(static_cast<double>(stats_.peak_queue_depth));
  }
}

void RequestRouter::SetTenant(uint32_t tenant_id, double rate_per_s,
                              double burst, double weight) {
  MutexLock lock(&mu_);
  Tenant& t = TenantLocked(tenant_id);
  t.bucket = TokenBucket(rate_per_s, burst);
  t.weight = std::max(1e-6, weight);
}

void RequestRouter::Submit(RoutedRequest request) {
  enum class Action { kQueued, kThrottled, kShed, kDrainReject };
  Action action;
  {
    MutexLock lock(&mu_);
    ++stats_.submitted;
    if (ins_.requests != nullptr) ins_.requests->Inc();
    if (draining_ || stop_) {
      action = Action::kDrainReject;
      ++stats_.rejected_draining;
    } else {
      Tenant& tenant = TenantLocked(request.query.tenant_id);
      const double now_s = NowSeconds(std::chrono::steady_clock::now());
      if (!tenant.bucket.TryTake(now_s)) {
        action = Action::kThrottled;
        ++stats_.throttled;
        if (ins_.throttled != nullptr) ins_.throttled->Inc();
      } else if (queued_ >= options_.max_queue_depth) {
        action = Action::kShed;
        ++stats_.shed;
        if (ins_.shed != nullptr) ins_.shed->Inc();
      } else {
        action = Action::kQueued;
        ++stats_.admitted;
        // A tenant returning from idle starts at the current virtual time:
        // no credit is banked while unbacklogged (start-time fair queuing).
        if (tenant.queue.empty()) {
          tenant.vtime = std::max(tenant.vtime, global_vtime_);
        }
        tenant.queue.push_back(std::move(request));
        ++queued_;
        UpdateQueueGaugeLocked();
      }
    }
  }
  switch (action) {
    case Action::kQueued:
      work_cv_.NotifyOne();
      break;
    case Action::kThrottled:
      request.fail(WireError::kThrottled, "tenant over admission rate");
      request.span.Flag("throttled", true);
      break;
    case Action::kShed:
      shed_(std::move(request));
      break;
    case Action::kDrainReject:
      request.fail(WireError::kShuttingDown, "server draining");
      break;
  }
}

void RequestRouter::FormBatchesLocked() {
  for (;;) {
    // WFQ: the backlogged tenant with the smallest virtual time whose head
    // request can still join its template's batch.
    Tenant* best = nullptr;
    for (auto& [id, tenant] : tenants_) {
      if (tenant.queue.empty()) continue;
      const std::string& tmpl = tenant.queue.front().query.template_name;
      auto bit = batches_.find(tmpl);
      if (bit != batches_.end() &&
          static_cast<int>(bit->second.requests.size()) >=
              options_.max_batch) {
        continue;  // full batch waiting on the inflight cap; stay queued
      }
      if (best == nullptr || tenant.vtime < best->vtime) best = &tenant;
    }
    if (best == nullptr) return;

    RoutedRequest req = std::move(best->queue.front());
    best->queue.pop_front();
    global_vtime_ = best->vtime;
    best->vtime += 1.0 / best->weight;

    Batch& batch = batches_[req.query.template_name];
    if (batch.requests.empty()) {
      batch.deadline =
          req.arrival + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                options_.batch_window_ms));
    }
    batch.requests.push_back(std::move(req));
  }
}

std::vector<std::pair<std::string, RequestRouter::Batch>>
RequestRouter::TakeFlushableLocked(std::chrono::steady_clock::time_point now,
                                   bool flush_all) {
  std::vector<std::pair<std::string, Batch>> out;
  for (auto it = batches_.begin(); it != batches_.end();) {
    Batch& batch = it->second;
    const bool due =
        flush_all ||
        static_cast<int>(batch.requests.size()) >= options_.max_batch ||
        now >= batch.deadline;
    if (!due || inflight_batches_ >= options_.max_inflight_batches) {
      ++it;
      continue;
    }
    const size_t n = batch.requests.size();
    ++inflight_batches_;
    ++stats_.batches;
    stats_.batched_requests += n;
    stats_.inflight_batches = inflight_batches_;
    queued_ -= n;
    if (ins_.batches != nullptr) {
      ins_.batches->Inc();
      ins_.batched_requests->Inc(n);
      ins_.inflight_batches->Set(inflight_batches_);
      ins_.batch_size->Observe(static_cast<double>(n));
      for (const RoutedRequest& req : batch.requests) {
        ins_.queue_wait->Observe(
            std::chrono::duration<double>(now - req.arrival).count());
      }
    }
    out.emplace_back(it->first, std::move(batch));
    it = batches_.erase(it);
  }
  UpdateQueueGaugeLocked();
  return out;
}

void RequestRouter::DispatcherLoop() {
  for (;;) {
    std::vector<std::pair<std::string, Batch>> flush;
    {
      MutexLock lock(&mu_);
      for (;;) {
        if (stop_) return;
        FormBatchesLocked();
        const auto now = std::chrono::steady_clock::now();
        flush = TakeFlushableLocked(now, draining_);
        if (!flush.empty()) break;
        if (draining_ && queued_ == 0 && inflight_batches_ == 0 &&
            batches_.empty()) {
          drain_cv_.NotifyAll();
        }
        // Nothing flushable: sleep until the nearest future batch deadline
        // (a capped-but-due batch instead rides the OnBatchDone notify).
        auto nearest = std::chrono::steady_clock::time_point::max();
        for (const auto& [name, batch] : batches_) {
          if (batch.deadline > now) {
            nearest = std::min(nearest, batch.deadline);
          }
        }
        if (nearest == std::chrono::steady_clock::time_point::max()) {
          work_cv_.Wait(&mu_);
        } else {
          work_cv_.WaitFor(&mu_, nearest - now);
        }
      }
    }
    for (auto& [name, batch] : flush) {
      executor_(name, std::move(batch.requests));
    }
  }
}

void RequestRouter::OnBatchDone() {
  // Notify while holding the mutex: the destructor's drain wait may be the
  // only thing keeping this object alive, and a post-unlock NotifyAll would
  // race with condvar destruction the moment the waiter sees
  // inflight_batches_ == 0. Signaling under the lock pins the waiter inside
  // Wait() until both broadcasts complete.
  MutexLock lock(&mu_);
  --inflight_batches_;
  stats_.inflight_batches = inflight_batches_;
  if (ins_.inflight_batches != nullptr) {
    ins_.inflight_batches->Set(inflight_batches_);
  }
  work_cv_.NotifyAll();
  drain_cv_.NotifyAll();
}

void RequestRouter::Drain() {
  {
    MutexLock lock(&mu_);
    draining_ = true;
  }
  work_cv_.NotifyAll();
  MutexLock lock(&mu_);
  while (queued_ > 0 || inflight_batches_ > 0 || !batches_.empty()) {
    drain_cv_.Wait(&mu_);
  }
}

RouterStats RequestRouter::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace net
}  // namespace bouquet

#include "net/event_loop.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/str_util.h"

namespace bouquet {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrPrintf("%s: %s", what, strerror(errno)));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr tag = the wakeup channel
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, void* tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = tag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(ADD)");
  }
  return Status::Ok();
}

Status EventLoop::Mod(int fd, uint32_t events, void* tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = tag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::Ok();
}

void EventLoop::Del(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

int EventLoop::Poll(int timeout_ms, std::vector<ReadyEvent>* out) {
  epoll_event events[64];
  int n;
  do {
    n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return -1;
  int delivered = 0;
  for (int i = 0; i < n; ++i) {
    if (events[i].data.ptr == nullptr) {
      uint64_t drain;
      while (read(wake_fd_, &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    out->push_back(ReadyEvent{events[i].data.ptr, events[i].events});
    ++delivered;
  }
  return delivered;
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  // A full eventfd counter still wakes the poller; the result is advisory.
  [[maybe_unused]] ssize_t rc = write(wake_fd_, &one, sizeof(one));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

Result<int> ListenLoopback(uint16_t port, int backlog) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int on = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind");
    close(fd);
    return st;
  }
  if (listen(fd, backlog) != 0) {
    const Status st = Errno("listen");
    close(fd);
    return st;
  }
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    close(fd);
    return nb;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> ConnectLoopback(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status st = Errno("connect");
    close(fd);
    return st;
  }
  const int on = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  return fd;
}

}  // namespace net
}  // namespace bouquet

// Thin epoll wrapper + socket utilities for the serving layer.
//
// EventLoop owns an epoll instance and an eventfd wakeup channel. Reactor
// threads block in Poll(); any thread may Wake() them (the response path:
// a pool thread finishes a batch, queues bytes on a connection, and wakes
// that connection's reactor to flush). Registration uses an opaque tag
// pointer (the reactor's per-connection state), delivered back with each
// ready event.
//
// Everything here is Linux-specific (epoll, eventfd, accept4); the serving
// layer is only built into Linux targets, matching the CI matrix.
//
// Thread-safety: Add/Mod/Del/Poll are called by the owning reactor thread
// only. Wake() may be called from any thread (epoll and eventfd are
// kernel-synchronized; no user-space lock is needed).

#ifndef BOUQUET_NET_EVENT_LOOP_H_
#define BOUQUET_NET_EVENT_LOOP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"

namespace bouquet {
namespace net {

/// One ready descriptor: the registration tag + the epoll event mask.
struct ReadyEvent {
  void* tag = nullptr;
  uint32_t events = 0;
};

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  Status Add(int fd, uint32_t events, void* tag);
  Status Mod(int fd, uint32_t events, void* tag);
  void Del(int fd);

  /// Blocks up to `timeout_ms` (-1 = indefinitely, 0 = nonblocking) and
  /// appends ready descriptors to `out`. Wakeups are consumed internally:
  /// a Wake() forces Poll to return but emits no ReadyEvent. Returns the
  /// number of external events delivered, or -1 on a hard epoll failure.
  int Poll(int timeout_ms, std::vector<ReadyEvent>* out);

  /// Interrupts a concurrent (or the next) Poll. Any thread.
  void Wake();

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
};

/// Marks `fd` O_NONBLOCK.
Status SetNonBlocking(int fd);

/// Creates a nonblocking loopback listener (SO_REUSEADDR); port 0 binds an
/// ephemeral port — recover it with LocalPort. Returns the listen fd.
Result<int> ListenLoopback(uint16_t port, int backlog);

/// The port a bound socket actually listens on.
Result<uint16_t> LocalPort(int fd);

/// Blocking loopback connect (client side). Returns the connected fd.
Result<int> ConnectLoopback(uint16_t port);

}  // namespace net
}  // namespace bouquet

#endif  // BOUQUET_NET_EVENT_LOOP_H_

// RequestRouter: the scheduling brain between the reactors and the
// BouquetService pool.
//
// Three policies compose here, all in the spirit of keeping the MSO story
// honest under load:
//
//  1. *Same-template batching.* Requests naming the same template are
//     coalesced for up to `batch_window_ms` (or `max_batch` requests) and
//     dispatched as one unit, so a burst against a cold template pays one
//     single-flight compile and the cache lookup/span overhead amortizes
//     across the burst.
//
//  2. *Admission control.* A token bucket per tenant (rate/burst) rejects
//     over-quota tenants outright (ERROR kThrottled), and weighted fair
//     queuing (virtual-time scheduling, weight w => w-proportional share)
//     decides which tenant's requests enter batches first when the system
//     is backlogged.
//
//  3. *MSO-safe load shedding.* When the admitted backlog would exceed
//     `max_queue_depth`, the request is not queued: the shed handler runs
//     it immediately through the service's precompiled safe plan (single
//     bounded-cost execution, response tagged DEGRADED). Queue depth is
//     therefore *bounded by construction*; overload degrades per-request
//     cost guarantees (from the bouquet MSO ladder to the safe plan's
//     worst-case bound) instead of degrading availability.
//
// Threading: reactor threads call Submit; a dedicated dispatcher thread
// forms and flushes batches; the executor callback runs batches on the
// service pool and calls OnBatchDone when finished. All mutable state is
// GUARDED_BY(mu_); the executor/shed callbacks are invoked *outside* the
// lock.

#ifndef BOUQUET_NET_ROUTER_H_
#define BOUQUET_NET_ROUTER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/synchronization.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bouquet {
namespace net {

/// Deterministic token bucket (time injected for testability).
class TokenBucket {
 public:
  /// rate <= 0 disables throttling (TryTake always succeeds).
  TokenBucket(double rate_per_s, double burst)
      : rate_(rate_per_s), burst_(burst), tokens_(burst) {}

  bool TryTake(double now_s) {
    if (rate_ <= 0.0) return true;
    if (last_s_ >= 0.0) {
      tokens_ = std::min(burst_, tokens_ + (now_s - last_s_) * rate_);
    }
    last_s_ = now_s;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_s_ = -1.0;
};

struct RouterOptions {
  /// How long the first request of a batch waits for same-template company.
  double batch_window_ms = 2.0;
  /// Flush immediately at this many requests, window notwithstanding.
  int max_batch = 32;
  /// Admitted-but-undispatched ceiling; beyond it requests are shed to the
  /// safe plan.
  size_t max_queue_depth = 1024;
  /// Batches allowed in flight on the pool at once (dispatch concurrency).
  int max_inflight_batches = 8;
  /// Default per-tenant token bucket; rate <= 0 disables throttling.
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;
  /// Default WFQ weight for tenants not configured via SetTenant.
  double default_weight = 1.0;
};

/// One admitted request traveling through the router. The span is the
/// net.request span opened at decode time; whoever responds ends it.
struct RoutedRequest {
  QueryMsg query;
  std::chrono::steady_clock::time_point arrival;
  obs::Span span;
  /// Deliver a RESULT to the peer. Must be callable from any thread.
  std::function<void(const ResultMsg&)> respond;
  /// Deliver an ERROR to the peer. Must be callable from any thread.
  std::function<void(WireError, const std::string&)> fail;
};

/// Counter/gauge snapshot.
struct RouterStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t throttled = 0;
  uint64_t shed = 0;
  uint64_t rejected_draining = 0;
  uint64_t batches = 0;
  uint64_t batched_requests = 0;
  uint64_t queue_depth = 0;       ///< current
  uint64_t peak_queue_depth = 0;
  uint64_t inflight_batches = 0;  ///< current
};

class RequestRouter {
 public:
  /// Runs one same-template batch (on the caller's choice of thread; the
  /// server submits to the service pool). Must eventually respond/fail
  /// every request and call OnBatchDone exactly once.
  using BatchExecutor =
      std::function<void(const std::string& template_name,
                         std::vector<RoutedRequest> batch)>;
  /// Handles a shed request (degraded safe-plan path). Runs inline on the
  /// submitting reactor thread; must be cheap and must respond/fail.
  using ShedHandler = std::function<void(RoutedRequest request)>;

  RequestRouter(RouterOptions options, BatchExecutor executor,
                ShedHandler shed, obs::MetricsRegistry* metrics = nullptr);
  ~RequestRouter();
  RequestRouter(const RequestRouter&) = delete;
  RequestRouter& operator=(const RequestRouter&) = delete;

  /// Admission decision + enqueue. May invoke fail (throttled/draining) or
  /// the shed handler inline before returning.
  void Submit(RoutedRequest request);

  /// Overrides one tenant's token bucket and WFQ weight.
  void SetTenant(uint32_t tenant_id, double rate_per_s, double burst,
                 double weight);

  /// Called by the batch executor when its batch has fully responded.
  void OnBatchDone();

  /// Stops admitting, flushes every open batch (windows ignored), and
  /// returns once all queues are empty and in-flight batches completed.
  void Drain();

  RouterStats stats() const;

 private:
  struct Tenant {
    TokenBucket bucket;
    double weight = 1.0;
    double vtime = 0.0;  ///< WFQ virtual finish time
    std::deque<RoutedRequest> queue;
  };

  struct Batch {
    std::vector<RoutedRequest> requests;
    std::chrono::steady_clock::time_point deadline;
  };

  void DispatcherLoop();
  /// WFQ step: moves queued requests into per-template batches.
  void FormBatchesLocked() REQUIRES(mu_);
  /// Flushes due/full batches up to the inflight cap. Returns the flushed
  /// batches for the caller to execute outside the lock.
  std::vector<std::pair<std::string, Batch>> TakeFlushableLocked(
      std::chrono::steady_clock::time_point now, bool flush_all)
      REQUIRES(mu_);
  Tenant& TenantLocked(uint32_t tenant_id) REQUIRES(mu_);
  void UpdateQueueGaugeLocked() REQUIRES(mu_);

  const RouterOptions options_;
  const BatchExecutor executor_;
  const ShedHandler shed_;

  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* throttled = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* batched_requests = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* queue_depth_peak = nullptr;
    obs::Gauge* inflight_batches = nullptr;
    obs::Histogram* batch_size = nullptr;
    obs::Histogram* queue_wait = nullptr;
  };
  Instruments ins_;

  mutable Mutex mu_;
  CondVar work_cv_;   ///< dispatcher wakeups (submit/batch-done/stop)
  CondVar drain_cv_;  ///< Drain() completion
  std::unordered_map<uint32_t, Tenant> tenants_ GUARDED_BY(mu_);
  /// Open batches keyed by template name (std::map: deterministic flush
  /// order for tests).
  std::map<std::string, Batch> batches_ GUARDED_BY(mu_);
  double global_vtime_ GUARDED_BY(mu_) = 0.0;
  size_t queued_ GUARDED_BY(mu_) = 0;  ///< tenant queues + open batches
  int inflight_batches_ GUARDED_BY(mu_) = 0;
  bool draining_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  RouterStats stats_ GUARDED_BY(mu_);

  std::thread dispatcher_;
};

}  // namespace net
}  // namespace bouquet

#endif  // BOUQUET_NET_ROUTER_H_

#include "net/client.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/str_util.h"
#include "net/event_loop.h"

namespace bouquet {
namespace net {

Result<BlockingClient> BlockingClient::Connect(uint16_t port) {
  auto fd_or = ConnectLoopback(port);
  if (!fd_or.ok()) return fd_or.status();
  return BlockingClient(fd_or.value());
}

BlockingClient::~BlockingClient() {
  if (fd_ >= 0) close(fd_);
}

BlockingClient::BlockingClient(BlockingClient&& other) noexcept {
  *this = std::move(other);
}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

Status BlockingClient::SendFrame(const std::vector<uint8_t>& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrPrintf("send failed: errno=%d", errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<Frame> BlockingClient::RecvFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  Frame frame;
  while (!decoder_.Next(&frame)) {
    uint8_t buf[16384];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::Internal("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrPrintf("recv failed: errno=%d", errno));
    }
    const Status fed = decoder_.Feed(buf, static_cast<size_t>(n));
    if (!fed.ok()) return fed;
  }
  return frame;
}

Status BlockingClient::Hello() {
  HelloMsg hello;
  Status s = SendFrame(EncodeHello(hello, FrameType::kHello));
  if (!s.ok()) return s;
  auto frame_or = RecvFrame();
  if (!frame_or.ok()) return frame_or.status();
  const Frame& frame = frame_or.value();
  if (static_cast<FrameType>(frame.type) != FrameType::kHelloAck) {
    return Status::Internal(
        StrPrintf("expected HELLO_ACK, got frame type %u", frame.type));
  }
  HelloMsg ack;
  s = DecodeHello(frame, &ack);
  if (!s.ok()) return s;
  if (ack.version != kWireVersion) {
    return Status::FailedPrecondition(
        StrPrintf("server speaks wire version %u, client %u", ack.version,
                  kWireVersion));
  }
  return Status::Ok();
}

Result<QueryOutcome> BlockingClient::Query(const QueryMsg& query) {
  const Status s = SendFrame(EncodeQuery(query));
  if (!s.ok()) return s;
  for (;;) {
    auto frame_or = RecvFrame();
    if (!frame_or.ok()) return frame_or.status();
    const Frame& frame = frame_or.value();
    QueryOutcome out;
    if (static_cast<FrameType>(frame.type) == FrameType::kResult) {
      const Status ds = DecodeResult(frame, &out.result);
      if (!ds.ok()) return ds;
      if (out.result.request_id != query.request_id) continue;
      out.ok = true;
      return out;
    }
    if (static_cast<FrameType>(frame.type) == FrameType::kError) {
      const Status ds = DecodeError(frame, &out.error);
      if (!ds.ok()) return ds;
      // request_id 0 marks connection-level errors; surface those too.
      if (out.error.request_id != 0 &&
          out.error.request_id != query.request_id) {
        continue;
      }
      out.ok = false;
      return out;
    }
    return Status::Internal(
        StrPrintf("unexpected frame type %u while awaiting RESULT",
                  frame.type));
  }
}

Result<std::string> BlockingClient::MetricsText() {
  Status s = SendFrame(EncodeFrame(FrameType::kMetrics, {}));
  if (!s.ok()) return s;
  auto frame_or = RecvFrame();
  if (!frame_or.ok()) return frame_or.status();
  const Frame& frame = frame_or.value();
  if (static_cast<FrameType>(frame.type) == FrameType::kError) {
    ErrorMsg err;
    // Best-effort decode of the peer's error payload on an already-failing
    // path: a malformed payload leaves err.message empty and the call still
    // returns the Internal status below.
    // NOLINTNEXTLINE(bouquet-discarded-status): best-effort diagnostics
    (void)DecodeError(frame, &err);
    return Status::Internal("METRICS failed: " + err.message);
  }
  if (static_cast<FrameType>(frame.type) != FrameType::kMetricsText) {
    return Status::Internal(
        StrPrintf("expected METRICS_TEXT, got frame type %u", frame.type));
  }
  std::string text;
  s = DecodeText(frame, &text);
  if (!s.ok()) return s;
  return text;
}

Result<std::string> BlockingClient::TraceJsonl() {
  Status s = SendFrame(EncodeFrame(FrameType::kTraceDump, {}));
  if (!s.ok()) return s;
  auto frame_or = RecvFrame();
  if (!frame_or.ok()) return frame_or.status();
  const Frame& frame = frame_or.value();
  if (static_cast<FrameType>(frame.type) == FrameType::kError) {
    ErrorMsg err;
    // NOLINTNEXTLINE(bouquet-discarded-status): best-effort diagnostics
    (void)DecodeError(frame, &err);
    return Status::Internal("TRACE_DUMP failed: " + err.message);
  }
  if (static_cast<FrameType>(frame.type) != FrameType::kTraceJsonl) {
    return Status::Internal(
        StrPrintf("expected TRACE_JSONL, got frame type %u", frame.type));
  }
  std::string text;
  s = DecodeText(frame, &text);
  if (!s.ok()) return s;
  return text;
}

Status BlockingClient::ShutdownServer() {
  const Status s = SendFrame(EncodeFrame(FrameType::kShutdown, {}));
  if (!s.ok()) return s;
  auto frame_or = RecvFrame();
  if (!frame_or.ok()) return frame_or.status();
  if (static_cast<FrameType>(frame_or.value().type) != FrameType::kGoodbye) {
    return Status::Internal(
        StrPrintf("expected GOODBYE, got frame type %u",
                  frame_or.value().type));
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace bouquet

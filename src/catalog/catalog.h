// The catalog: named tables, their columns, statistics and index metadata.
//
// This is the metadata substrate the optimizer consults. The experimental
// setup of the paper ("indexes on all columns featuring in the queries")
// is realized by marking columns indexed here.

#ifndef BOUQUET_CATALOG_CATALOG_H_
#define BOUQUET_CATALOG_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/stats.h"
#include "common/status.h"

namespace bouquet {

/// A column definition plus its statistics and index flag.
struct ColumnInfo {
  std::string name;
  ColumnStats stats;
  bool has_index = false;
};

/// A table definition: name, statistics, columns.
struct TableInfo {
  std::string name;
  TableStats stats;
  std::vector<ColumnInfo> columns;

  /// Index of the named column, or -1.
  int ColumnIndex(const std::string& column_name) const;
};

/// Registry of tables. Cheap to copy; treat as a value type.
class Catalog {
 public:
  /// Registers a table; returns its id. A duplicate name replaces the
  /// previous definition (used when re-attaching stats from generated data).
  int AddTable(TableInfo table);

  bool HasTable(const std::string& name) const;

  /// Looks up a table by name; asserts existence (callers validate first via
  /// HasTable or construct names from workload definitions).
  const TableInfo& GetTable(const std::string& name) const;
  TableInfo& GetMutableTable(const std::string& name);

  const TableInfo& GetTableById(int id) const { return tables_[id]; }
  int TableId(const std::string& name) const;

  int num_tables() const { return static_cast<int>(tables_.size()); }

  /// Convenience: builds a TableInfo with uniform-stat columns.
  /// Every column gets ndv/min/max and is indexed iff `indexed` is true.
  static TableInfo MakeTable(const std::string& name, double rows,
                             double width_bytes,
                             const std::vector<std::string>& columns,
                             double default_ndv, bool indexed = true);

 private:
  std::vector<TableInfo> tables_;
};

}  // namespace bouquet

#endif  // BOUQUET_CATALOG_CATALOG_H_

// Column- and table-level statistics consumed by the cost model.
//
// Statistics are deliberately decoupled from the physical storage layer: the
// optimizer-cost experiments (Figures 14-18) run purely on catalog metadata at
// benchmark scale (TPC-H 1GB / TPC-DS 100GB row counts), while the
// real-execution experiments (Table 3) attach stats computed from generated
// in-memory data.

#ifndef BOUQUET_CATALOG_STATS_H_
#define BOUQUET_CATALOG_STATS_H_

#include <cstdint>
#include <string>

#include "catalog/histogram.h"

namespace bouquet {

/// Per-column statistics.
struct ColumnStats {
  double ndv = 1.0;        ///< number of distinct values
  int64_t min_value = 0;   ///< domain minimum
  int64_t max_value = 0;   ///< domain maximum
  Histogram histogram;     ///< optional equi-depth histogram (may be empty)

  /// Estimated selectivity of an equality predicate `col = const` under the
  /// uniform-frequency assumption (Selinger's 1/NDV).
  double EqualitySelectivity() const { return 1.0 / (ndv < 1.0 ? 1.0 : ndv); }
};

/// Per-table statistics.
struct TableStats {
  double row_count = 0.0;
  double row_width_bytes = 64.0;

  /// Number of disk pages the table occupies under the given page size.
  double Pages(double page_size_bytes) const {
    const double p = row_count * row_width_bytes / page_size_bytes;
    return p < 1.0 ? 1.0 : p;
  }
};

}  // namespace bouquet

#endif  // BOUQUET_CATALOG_STATS_H_

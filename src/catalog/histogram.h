// Equi-depth histograms over int64-encoded column values.
//
// Histograms serve two roles in the reproduction:
//  * they supply "accurate" selectivity estimates for the predicates that the
//    paper treats as error-free (base-relation `column op constant`
//    predicates, Section 8(i)), and
//  * they let the data generators translate a desired selectivity into a
//    concrete predicate constant (quantile lookup), which is how the
//    real-execution experiments dial q_a.

#ifndef BOUQUET_CATALOG_HISTOGRAM_H_
#define BOUQUET_CATALOG_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace bouquet {

/// Equi-depth histogram: `buckets` boundaries splitting the sorted value
/// stream into equal-count runs.
class Histogram {
 public:
  Histogram() = default;

  /// Builds an equi-depth histogram with at most `num_buckets` buckets from
  /// the (unsorted) values.
  static Histogram Build(const std::vector<int64_t>& values, int num_buckets);

  bool empty() const { return total_count_ == 0; }
  int64_t total_count() const { return total_count_; }
  int64_t min_value() const { return min_; }
  int64_t max_value() const { return max_; }

  /// Estimated selectivity of `column < v` (fraction of rows strictly below).
  double SelectivityLess(int64_t v) const;

  /// Estimated selectivity of `column <= v`.
  double SelectivityLessEqual(int64_t v) const;

  /// Estimated selectivity of `lo <= column <= hi`.
  double SelectivityRange(int64_t lo, int64_t hi) const;

  /// Value v such that `column <= v` has selectivity approximately f
  /// (f in [0,1]). Inverse of SelectivityLessEqual.
  int64_t Quantile(double f) const;

 private:
  // bounds_[i] is the upper bound (inclusive) of bucket i; each bucket holds
  // ~total_count_/bounds_.size() rows. min_ is the global minimum.
  std::vector<int64_t> bounds_;
  int64_t min_ = 0;
  int64_t max_ = 0;
  int64_t total_count_ = 0;
};

}  // namespace bouquet

#endif  // BOUQUET_CATALOG_HISTOGRAM_H_

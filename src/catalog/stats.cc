#include "catalog/stats.h"

// Currently header-only; this translation unit anchors the module.

#include "catalog/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bouquet {

Histogram Histogram::Build(const std::vector<int64_t>& values,
                           int num_buckets) {
  Histogram h;
  if (values.empty() || num_buckets <= 0) return h;
  std::vector<int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  h.total_count_ = static_cast<int64_t>(sorted.size());
  h.min_ = sorted.front();
  h.max_ = sorted.back();
  const int nb = std::min<int>(num_buckets, static_cast<int>(sorted.size()));
  h.bounds_.resize(nb);
  for (int i = 0; i < nb; ++i) {
    // Upper bound of bucket i = value at the (i+1)/nb quantile position.
    size_t pos = static_cast<size_t>(
        std::llround(double(i + 1) / nb * double(sorted.size()))) ;
    if (pos == 0) pos = 1;
    h.bounds_[i] = sorted[std::min(pos, sorted.size()) - 1];
  }
  h.bounds_.back() = h.max_;
  return h;
}

double Histogram::SelectivityLess(int64_t v) const {
  if (empty()) return 0.0;
  if (v <= min_) return 0.0;
  if (v > max_) return 1.0;
  // Bucket fraction: buckets whose upper bound < v are fully below; the
  // straddling bucket contributes a linear interpolation.
  const double per_bucket = 1.0 / double(bounds_.size());
  double acc = 0.0;
  int64_t lo = min_;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    const int64_t hi = bounds_[i];
    if (v > hi) {
      acc += per_bucket;
      lo = hi;
      continue;
    }
    // v falls in (lo, hi]; interpolate within the bucket.
    if (hi > lo) {
      acc += per_bucket * double(v - lo) / double(hi - lo);
    }
    break;
  }
  return std::clamp(acc, 0.0, 1.0);
}

double Histogram::SelectivityLessEqual(int64_t v) const {
  if (empty()) return 0.0;
  if (v >= max_) return 1.0;
  return SelectivityLess(v + 1);
}

double Histogram::SelectivityRange(int64_t lo, int64_t hi) const {
  if (empty() || hi < lo) return 0.0;
  return std::max(0.0, SelectivityLessEqual(hi) - SelectivityLess(lo));
}

int64_t Histogram::Quantile(double f) const {
  if (empty()) return 0;
  f = std::clamp(f, 0.0, 1.0);
  const double nb = double(bounds_.size());
  const double pos = f * nb;  // in bucket units
  const int bucket = std::min<int>(static_cast<int>(pos), bounds_.size() - 1);
  const int64_t lo = bucket == 0 ? min_ : bounds_[bucket - 1];
  const int64_t hi = bounds_[bucket];
  const double frac = pos - bucket;
  return lo + static_cast<int64_t>(std::llround(frac * double(hi - lo)));
}

}  // namespace bouquet

#include "catalog/catalog.h"

#include <cassert>

namespace bouquet {

int TableInfo::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

int Catalog::AddTable(TableInfo table) {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name == table.name) {
      tables_[i] = std::move(table);
      return static_cast<int>(i);
    }
  }
  tables_.push_back(std::move(table));
  return static_cast<int>(tables_.size()) - 1;
}

bool Catalog::HasTable(const std::string& name) const {
  return TableId(name) >= 0;
}

int Catalog::TableId(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

const TableInfo& Catalog::GetTable(const std::string& name) const {
  const int id = TableId(name);
  assert(id >= 0 && "unknown table");
  return tables_[id];
}

TableInfo& Catalog::GetMutableTable(const std::string& name) {
  const int id = TableId(name);
  assert(id >= 0 && "unknown table");
  return tables_[id];
}

TableInfo Catalog::MakeTable(const std::string& name, double rows,
                             double width_bytes,
                             const std::vector<std::string>& columns,
                             double default_ndv, bool indexed) {
  TableInfo t;
  t.name = name;
  t.stats.row_count = rows;
  t.stats.row_width_bytes = width_bytes;
  for (const auto& c : columns) {
    ColumnInfo ci;
    ci.name = c;
    ci.stats.ndv = default_ndv;
    ci.stats.min_value = 0;
    ci.stats.max_value = static_cast<int64_t>(default_ndv) - 1;
    ci.has_index = indexed;
    t.columns.push_back(std::move(ci));
  }
  return t;
}

}  // namespace bouquet

#include "storage/datagen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bouquet {
namespace datagen {

std::vector<int64_t> Sequential(int64_t n, int64_t start) {
  std::vector<int64_t> out(n);
  for (int64_t i = 0; i < n; ++i) out[i] = start + i;
  return out;
}

std::vector<int64_t> Uniform(Rng* rng, int64_t n, int64_t lo, int64_t hi) {
  std::vector<int64_t> out(n);
  for (int64_t i = 0; i < n; ++i) out[i] = rng->NextInt64(lo, hi);
  return out;
}

std::vector<int64_t> Zipf(Rng* rng, int64_t n, int64_t domain, double theta) {
  assert(domain > 0);
  std::vector<int64_t> out(n);
  for (int64_t i = 0; i < n; ++i) {
    out[i] = static_cast<int64_t>(rng->NextZipf(domain, theta));
  }
  return out;
}

std::vector<int64_t> ForeignKey(Rng* rng, int64_t n,
                                const std::vector<int64_t>& parent_keys,
                                double match_fraction) {
  assert(!parent_keys.empty());
  std::vector<int64_t> out(n);
  int64_t dangling = -1;
  for (int64_t i = 0; i < n; ++i) {
    if (rng->NextBool(match_fraction)) {
      out[i] = parent_keys[rng->NextUint64(parent_keys.size())];
    } else {
      out[i] = dangling--;  // unique negative keys never match
    }
  }
  return out;
}

std::vector<int64_t> Gaussian(Rng* rng, int64_t n, double mean, double stddev,
                              int64_t lo, int64_t hi) {
  std::vector<int64_t> out(n);
  for (int64_t i = 0; i < n; ++i) {
    const double v = rng->NextGaussian(mean, stddev);
    out[i] = std::clamp(static_cast<int64_t>(std::llround(v)), lo, hi);
  }
  return out;
}

}  // namespace datagen
}  // namespace bouquet

#include "storage/dataset.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

#include "common/rng.h"
#include "common/str_util.h"
#include "storage/datagen.h"
#include "storage/paged_table.h"

namespace bouquet {
namespace storage {

namespace {

// Per-table Rng stream so generation order does not matter.
uint64_t TableSeed(const DatasetSpec& spec, int table_index) {
  return spec.seed ^ (0x9E3779B97F4A7C15ULL *
                      static_cast<uint64_t>(table_index + 1));
}

}  // namespace

std::vector<std::string> DatasetTableNames(const DatasetSpec& spec) {
  std::vector<std::string> names;
  names.push_back("fact");
  for (int i = 1; i < spec.num_tables; ++i) {
    names.push_back(StrPrintf("dim%d", i));
  }
  return names;
}

DataTable GenerateDatasetTable(const DatasetSpec& spec, int table_index) {
  const std::vector<std::string> names = DatasetTableNames(spec);
  const int64_t dim_n = spec.dim_rows > 0 ? spec.dim_rows
                                          : spec.rows_per_table;
  const int64_t n = table_index == 0 ? spec.rows_per_table : dim_n;
  Rng rng(TableSeed(spec, table_index));

  std::vector<std::string> cols;
  cols.push_back("pk");
  if (table_index == 0) {
    for (int i = 1; i < spec.num_tables; ++i) {
      cols.push_back(StrPrintf("fk%d", i));
    }
  }
  for (int c = 0; c < spec.data_columns; ++c) {
    cols.push_back(StrPrintf("c%d", c));
  }

  DataTable table(names[table_index], cols);
  int col = 0;
  table.mutable_column(col++) = datagen::Sequential(n, 1);
  if (table_index == 0) {
    // Every dimension uses sequential pks from 1, so fk generation does not
    // need the dimension tables materialized.
    const std::vector<int64_t> parent = datagen::Sequential(dim_n, 1);
    for (int i = 1; i < spec.num_tables; ++i) {
      table.mutable_column(col++) = datagen::ForeignKey(&rng, n, parent);
    }
  }
  for (int c = 0; c < spec.data_columns; ++c) {
    table.mutable_column(col++) =
        datagen::Zipf(&rng, n, spec.value_domain, spec.zipf_theta);
  }
  table.FinalizeBulkLoad();
  return table;
}

Status WriteOnDiskDataset(const std::string& data_dir,
                          const DatasetSpec& spec) {
  if (spec.num_tables < 1 || spec.rows_per_table < 1) {
    return Status::InvalidArgument("dataset spec needs >=1 table and row");
  }
  if (::mkdir(data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal(StrPrintf("mkdir %s: %s", data_dir.c_str(),
                                      std::strerror(errno)));
  }
  const std::vector<std::string> names = DatasetTableNames(spec);
  for (int i = 0; i < spec.num_tables; ++i) {
    const DataTable table = GenerateDatasetTable(spec, i);
    Status s = WriteTableFile(data_dir + "/" + names[i] + ".btbl", table);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace storage
}  // namespace bouquet

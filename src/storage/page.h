// Slotted 8 KB pages: the on-disk unit every cost the bouquet machinery
// reasons about is denominated in.
//
// Layout (little-endian, deterministic: pages are zero-filled before any
// write, so the same insert sequence produces byte-identical pages):
//
//   [0..16)   PageHeader {magic, page_no, num_slots, free_start, free_end,
//             flags}
//   [16..)    slot directory, growing up: one Slot{offset, length} per
//             record
//   [..8192)  record heap, growing down from the page end
//
// Records are opaque byte strings; the table layer stores one fixed-width
// row (num_columns * 8 bytes, values little-endian) per record, and the
// spill path reuses the same format for temp pages. A SlottedPage is a
// non-owning view over a frame buffer handed out by the buffer manager.

#ifndef BOUQUET_STORAGE_PAGE_H_
#define BOUQUET_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>

namespace bouquet {
namespace storage {

inline constexpr size_t kPageSize = 8192;
inline constexpr uint32_t kPageMagic = 0x42515047;  // "BQPG"

/// Identity of one page: which registered file, which page within it.
struct PageId {
  uint16_t file = 0;
  uint32_t page = 0;

  uint64_t key() const {
    return (static_cast<uint64_t>(file) << 32) | page;
  }
  friend bool operator==(const PageId& a, const PageId& b) {
    return a.file == b.file && a.page == b.page;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    // SplitMix64 finalizer over the packed key; good avalanche for the
    // frame table's open hashing.
    uint64_t x = id.key() + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

#pragma pack(push, 1)
struct PageHeader {
  uint32_t magic = kPageMagic;
  uint32_t page_no = 0;
  uint16_t num_slots = 0;
  uint16_t free_start = 0;  ///< first free byte above the slot directory
  uint16_t free_end = 0;    ///< one past the last free byte below the heap
  uint16_t flags = 0;
};

struct PageSlot {
  uint16_t offset = 0;
  uint16_t length = 0;
};
#pragma pack(pop)

static_assert(sizeof(PageHeader) == 16, "page header must be 16 bytes");
static_assert(sizeof(PageSlot) == 4, "slot entry must be 4 bytes");

/// Non-owning slotted-page view over one kPageSize frame buffer.
class SlottedPage {
 public:
  explicit SlottedPage(uint8_t* frame) : frame_(frame) {}

  PageHeader* header() { return reinterpret_cast<PageHeader*>(frame_); }
  const PageHeader* header() const {
    return reinterpret_cast<const PageHeader*>(frame_);
  }

  /// Zero-fills the frame and writes a fresh header — the determinism
  /// anchor: every byte of a page is defined before it reaches disk.
  void Init(uint32_t page_no) {
    std::memset(frame_, 0, kPageSize);
    PageHeader* h = header();
    h->magic = kPageMagic;
    h->page_no = page_no;
    h->num_slots = 0;
    h->free_start = sizeof(PageHeader);
    h->free_end = static_cast<uint16_t>(kPageSize);
  }

  bool valid() const { return header()->magic == kPageMagic; }
  int num_records() const { return header()->num_slots; }

  size_t free_bytes() const {
    const PageHeader* h = header();
    return h->free_end > h->free_start
               ? static_cast<size_t>(h->free_end - h->free_start)
               : 0;
  }

  /// True when a record of `length` bytes (plus its slot entry) fits.
  bool Fits(size_t length) const {
    return free_bytes() >= length + sizeof(PageSlot);
  }

  /// Appends a record; returns its slot id, or -1 when it does not fit.
  int Insert(const uint8_t* data, size_t length) {
    if (!Fits(length)) return -1;
    PageHeader* h = header();
    const int slot_id = h->num_slots;
    h->free_end = static_cast<uint16_t>(h->free_end - length);
    PageSlot* slot = SlotAt(slot_id);
    slot->offset = h->free_end;
    slot->length = static_cast<uint16_t>(length);
    std::memcpy(frame_ + slot->offset, data, length);
    h->num_slots++;
    h->free_start = static_cast<uint16_t>(h->free_start + sizeof(PageSlot));
    return slot_id;
  }

  /// Record bytes for a slot (no bounds check beyond the slot count; a
  /// negative or past-the-end slot returns nullptr).
  const uint8_t* Record(int slot_id, size_t* length) const {
    if (slot_id < 0 || slot_id >= num_records()) return nullptr;
    const PageSlot* slot = SlotAt(slot_id);
    if (length != nullptr) *length = slot->length;
    return frame_ + slot->offset;
  }

  /// Rows-per-page capacity for fixed-width records of `record_bytes`.
  static int Capacity(size_t record_bytes) {
    return static_cast<int>((kPageSize - sizeof(PageHeader)) /
                            (record_bytes + sizeof(PageSlot)));
  }

 private:
  PageSlot* SlotAt(int i) {
    return reinterpret_cast<PageSlot*>(frame_ + sizeof(PageHeader)) + i;
  }
  const PageSlot* SlotAt(int i) const {
    return reinterpret_cast<const PageSlot*>(frame_ + sizeof(PageHeader)) + i;
  }

  uint8_t* frame_;
};

}  // namespace storage
}  // namespace bouquet

#endif  // BOUQUET_STORAGE_PAGE_H_

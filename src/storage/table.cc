#include "storage/table.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace bouquet {

DataTable::DataTable(std::string name, std::vector<std::string> column_names)
    : name_(std::move(name)), column_names_(std::move(column_names)) {
  columns_.resize(column_names_.size());
}

int DataTable::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == column_name) return static_cast<int>(i);
  }
  return -1;
}

void DataTable::AppendRow(const std::vector<int64_t>& values) {
  assert(values.size() == columns_.size());
  for (size_t i = 0; i < values.size(); ++i) columns_[i].push_back(values[i]);
  ++num_rows_;
}

void DataTable::Reserve(int64_t rows) {
  for (auto& c : columns_) c.reserve(rows);
}

void DataTable::FinalizeBulkLoad() {
  assert(!columns_.empty());
  num_rows_ = static_cast<int64_t>(columns_[0].size());
  for (const auto& c : columns_) {
    assert(static_cast<int64_t>(c.size()) == num_rows_ &&
           "ragged bulk load");
    (void)c;
  }
}

ColumnStats ComputeColumnStatsFromValues(const std::vector<int64_t>& values,
                                         int histogram_buckets) {
  ColumnStats stats;
  if (values.empty()) return stats;
  std::unordered_set<int64_t> distinct;
  distinct.reserve(values.size());
  int64_t mn = values[0];
  int64_t mx = values[0];
  for (int64_t v : values) {
    distinct.insert(v);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  stats.ndv = static_cast<double>(distinct.size());
  stats.min_value = mn;
  stats.max_value = mx;
  stats.histogram = Histogram::Build(values, histogram_buckets);
  return stats;
}

ColumnStats DataTable::ComputeColumnStats(int col,
                                          int histogram_buckets) const {
  return ComputeColumnStatsFromValues(columns_[col], histogram_buckets);
}

void DataTable::SyncCatalog(Catalog* catalog, double row_width_bytes,
                            bool indexed, int histogram_buckets) const {
  TableInfo info;
  info.name = name_;
  info.stats.row_count = static_cast<double>(num_rows_);
  info.stats.row_width_bytes = row_width_bytes;
  for (int c = 0; c < num_columns(); ++c) {
    ColumnInfo ci;
    ci.name = column_names_[c];
    ci.stats = ComputeColumnStats(c, histogram_buckets);
    ci.has_index = indexed;
    info.columns.push_back(std::move(ci));
  }
  catalog->AddTable(std::move(info));
}

}  // namespace bouquet

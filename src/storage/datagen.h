// Generic synthetic column generators.
//
// These primitives are composed by workloads/tpch.cc into the scaled TPC-H
// tables used in the real-execution experiments. Two knobs matter to the
// reproduction: (a) value distributions with enough spread that quantile
// lookups can dial *any* selection selectivity, and (b) foreign keys with a
// controllable match fraction so join selectivities can be varied too.

#ifndef BOUQUET_STORAGE_DATAGEN_H_
#define BOUQUET_STORAGE_DATAGEN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace bouquet {

/// Column-vector generators; all deterministic under the provided Rng.
namespace datagen {

/// start, start+1, ..., start+n-1 (primary keys).
std::vector<int64_t> Sequential(int64_t n, int64_t start = 1);

/// Uniform integers in [lo, hi].
std::vector<int64_t> Uniform(Rng* rng, int64_t n, int64_t lo, int64_t hi);

/// Zipf-skewed integers over [1, domain] with exponent theta.
std::vector<int64_t> Zipf(Rng* rng, int64_t n, int64_t domain, double theta);

/// Foreign keys referencing `parent_keys`. Each row references a uniformly
/// chosen parent with probability `match_fraction`, and otherwise gets a
/// dangling negative key (never joins). match_fraction = 1 gives classic
/// PK-FK integrity.
std::vector<int64_t> ForeignKey(Rng* rng, int64_t n,
                                const std::vector<int64_t>& parent_keys,
                                double match_fraction = 1.0);

/// Rounded Gaussian values (prices and similar bell-ish attributes),
/// clamped to [lo, hi].
std::vector<int64_t> Gaussian(Rng* rng, int64_t n, double mean, double stddev,
                              int64_t lo, int64_t hi);

}  // namespace datagen

}  // namespace bouquet

#endif  // BOUQUET_STORAGE_DATAGEN_H_

// In-memory column-oriented tables.
//
// The execution substrate stores all data as int64-encoded columns (dates,
// prices-in-cents, keys, categorical codes). This is sufficient for the
// paper's workload — equi-joins and range/equality selections — while
// keeping the executor simple and fast enough that the wall-clock experiment
// (Table 3) runs in seconds.

#ifndef BOUQUET_STORAGE_TABLE_H_
#define BOUQUET_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"

namespace bouquet {

/// Statistics (ndv/min/max/histogram) over a materialized column — shared
/// by DataTable::ComputeColumnStats and the paged tables' streamed
/// catalog sync (storage/paged_table.h).
ColumnStats ComputeColumnStatsFromValues(const std::vector<int64_t>& values,
                                         int histogram_buckets = 64);

/// A named, fixed-schema, append-only columnar table.
class DataTable {
 public:
  DataTable(std::string name, std::vector<std::string> column_names);

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  int ColumnIndex(const std::string& column_name) const;
  const std::string& column_name(int i) const { return column_names_[i]; }

  const std::vector<int64_t>& column(int i) const { return columns_[i]; }
  std::vector<int64_t>& mutable_column(int i) { return columns_[i]; }

  int64_t value(int col, int64_t row) const { return columns_[col][row]; }

  /// Appends one row; `values` must match the column count.
  void AppendRow(const std::vector<int64_t>& values);

  /// Reserves capacity in every column.
  void Reserve(int64_t rows);

  /// Declares the row complete after bulk column writes (all columns must
  /// have equal length).
  void FinalizeBulkLoad();

  /// Computes statistics (ndv/min/max/histogram) for a column from the data.
  ColumnStats ComputeColumnStats(int col, int histogram_buckets = 64) const;

  /// Registers (or refreshes) this table in the catalog with statistics
  /// computed from the actual data — the "perfectly accurate metadata"
  /// configuration used for non-error predicates.
  void SyncCatalog(Catalog* catalog, double row_width_bytes,
                   bool indexed = true, int histogram_buckets = 64) const;

 private:
  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<std::vector<int64_t>> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace bouquet

#endif  // BOUQUET_STORAGE_TABLE_H_

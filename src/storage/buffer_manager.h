// Buffer manager: pinned frames over page files, with pluggable eviction
// (LRU and 2Q with a ghost queue) and replay-stable accounting.
//
// The design splits two concerns that are usually fused, because the batch
// executor's metering-tape contract (executor/batch.h) demands it:
//
//   * The ACCOUNTING layer — Access() — is a deterministic eviction-policy
//     simulation driven purely by the logical page-access sequence. It
//     decides hit vs miss (what the cost meter charges: a buffer hit costs
//     the CPU-discounted `buffer_hit_page_cost`, a miss a full page read)
//     and maintains hit/miss/eviction statistics. It never consults pin
//     state: pins at scalar access time and at batch replay time differ,
//     and a pin-aware victim choice would make the two engines' charges
//     diverge. The scalar engine calls Access() as it touches pages; the
//     batch engine records page events on the tape and resolves them —
//     through the same Access() — at replay, in the scalar engine's exact
//     order, so hit/miss decisions are bit-identical across engines.
//
//   * The PHYSICAL layer — Pin()/Unpin() — owns the actual frames and the
//     pread/pwrite traffic. Pin never fails and never waits for capacity:
//     if the policy evicts a page that is still pinned, the frame becomes a
//     "zombie" (non-resident but alive) reclaimed — with a writeback when
//     dirty — at its last Unpin. Physical frame count can therefore
//     overshoot the pool by at most the number of concurrent pins, which is
//     how eviction starvation under all-pages-pinned stays observable
//     (physical_frames() > pool) instead of deadlocking the thread pool.
//
// Frame invariant: a frame exists  ⟺  logically resident ∨ pinned. Pages
// never Access()ed (index builds, spill temp pages) stay out of the policy
// entirely: their frames exist only while pinned, so bulk maintenance work
// cannot pollute the replacement state the executors' charges depend on.
//
// Thread-safety: one capability-annotated Mutex guards policy, frames, and
// stats; disk I/O runs under it (coarse but TSan-clean — concurrent
// executions serialize on faults, and accounting stays atomic with its
// eviction side effects). Lock order: mu_ is acquired after any service/
// driver-level lock and before PageFile::mu_ and the observability leaf
// mutexes (tracer ring, histogram buckets).

#ifndef BOUQUET_STORAGE_BUFFER_MANAGER_H_
#define BOUQUET_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/synchronization.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace bouquet {
namespace storage {

enum class EvictionPolicyKind {
  kNone,  ///< no caching: every access is a miss (the bench baseline)
  kLru,
  k2Q,
};

std::string EvictionPolicyName(EvictionPolicyKind kind);

/// Cumulative counters (monotone except pinned_frames).
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;       ///< dirty frames written at evict/unpin
  uint64_t physical_reads = 0;   ///< actual preads (faults)
  uint64_t physical_writes = 0;  ///< actual pwrites
  uint64_t write_errors = 0;     ///< failed writeback pwrites (lost pages)
  uint64_t ghost_hits = 0;       ///< 2Q A1out promotions (counted as misses)
  uint64_t pinned_frames = 0;    ///< currently pinned (instantaneous)
  uint64_t pinned_peak = 0;      ///< high-water mark of pinned_frames
};

class BufferManager;

/// RAII pin handle. Movable; unpins (with the dirty flag) on destruction.
///
/// [[nodiscard]]: a discarded PageGuard is a pin/unpin pulse — the page is
/// released before any byte can be read, and the pointless churn perturbs
/// pinned_frames/pinned_peak telemetry. The bouquet-page-guard lint check
/// additionally requires that Pin()/PinNew() results are bound to a guard
/// rather than consumed as temporaries.
class [[nodiscard]] PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return bm_ != nullptr; }
  PageId id() const { return id_; }
  const uint8_t* data() const { return data_; }
  /// Marks the frame dirty; bytes reach disk at eviction/last-unpin.
  uint8_t* mutable_data() {
    dirty_ = true;
    return data_;
  }

  void Release();

 private:
  friend class BufferManager;
  PageGuard(BufferManager* bm, PageId id, uint8_t* data)
      : bm_(bm), id_(id), data_(data) {}

  BufferManager* bm_ = nullptr;
  PageId id_;
  uint8_t* data_ = nullptr;
  bool dirty_ = false;
};

class BufferManager {
 public:
  BufferManager(size_t pool_pages, EvictionPolicyKind kind);
  ~BufferManager();
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Registers a page file; the returned id names it in PageIds. The file
  /// must outlive the manager or be dropped first.
  uint16_t RegisterFile(PageFile* file) EXCLUDES(mu_);

  /// Unregisters a file and discards its frames (dirty pages of a dropped
  /// file are NOT written back — used for temp spill segments). Any
  /// still-pinned frame of the file is a caller bug (asserted in debug).
  void DropFile(uint16_t file_id) EXCLUDES(mu_);

  /// ACCOUNTING: records one logical access and returns hit (true) or miss
  /// (false). Drives the eviction policy; never performs I/O by itself.
  bool Access(PageId id) EXCLUDES(mu_);

  /// PHYSICAL: pins the page, faulting it from disk when no frame exists.
  /// Never fails for capacity reasons (see header comment); I/O errors
  /// return an invalid guard (callers treat the table as unreadable).
  PageGuard Pin(PageId id) EXCLUDES(mu_);

  /// PHYSICAL: pins a fresh all-zero frame for a page that will be written
  /// (temp spill pages); no disk read, frame starts dirty.
  PageGuard PinNew(PageId id) EXCLUDES(mu_);

  BufferStats stats() const EXCLUDES(mu_);
  size_t pool_pages() const { return pool_pages_; }
  EvictionPolicyKind policy_kind() const { return kind_; }
  /// Frames currently alive (resident + pinned-only); > pool_pages() means
  /// eviction is starved by pins.
  size_t physical_frames() const EXCLUDES(mu_);

  /// Drops every unpinned frame, clears the policy state and statistics.
  /// The differential harness calls this before every run so both engines
  /// start from an identical (cold) replacement state.
  void ResetForTest() EXCLUDES(mu_);

  /// Optional sinks: buffer_* counters/gauges move at event time, and every
  /// physical read emits a "storage.page_fault" span.
  void SetObservability(obs::MetricsRegistry* metrics, obs::Tracer* tracer)
      EXCLUDES(mu_);

 private:
  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    int pins = 0;
    bool dirty = false;
    bool resident = false;  ///< mirrors policy residency
  };

  // Pure replacement-policy simulation state. Keys are PageId::key().
  // Entries are resident pages; `where` locates a key's list node. The 2Q
  // ghost queue (A1out) holds evicted ids only — never frames.
  struct PolicyState {
    std::list<uint64_t> lru;                  // kLru: MRU at front
    std::list<uint64_t> a1in;                 // k2Q: FIFO, newest at front
    std::list<uint64_t> a1out;                // k2Q: ghost ids, newest front
    std::list<uint64_t> am;                   // k2Q: hot LRU, MRU at front
    std::unordered_map<uint64_t, std::pair<int, std::list<uint64_t>::iterator>>
        where;  // queue tag (0=lru/a1in, 1=am, 2=a1out) + node
  };

  bool AccessLocked(uint64_t key, std::vector<uint64_t>* evicted)
      REQUIRES(mu_);
  void ReclaimLocked(std::vector<uint64_t>* evicted) REQUIRES(mu_);
  void EvictLocked(uint64_t key) REQUIRES(mu_);
  void FreeFrameLocked(uint64_t key, Frame* f) REQUIRES(mu_);
  void WritebackLocked(uint64_t key, Frame* f) REQUIRES(mu_);
  void Unpin(PageId id, bool dirty) EXCLUDES(mu_);
  bool PolicyContainsLocked(uint64_t key) const REQUIRES(mu_);

  friend class PageGuard;

  const size_t pool_pages_;
  const EvictionPolicyKind kind_;
  const size_t kin_;   // 2Q: A1in capacity  (max(1, pool/4))
  const size_t kout_;  // 2Q: A1out capacity (max(1, pool/2))

  mutable Mutex mu_;
  std::unordered_map<uint64_t, Frame> frames_ GUARDED_BY(mu_);
  std::unordered_map<uint16_t, PageFile*> files_ GUARDED_BY(mu_);
  uint16_t next_file_id_ GUARDED_BY(mu_) = 1;
  PolicyState policy_ GUARDED_BY(mu_);
  BufferStats stats_ GUARDED_BY(mu_);

  // Observability (set once, read under mu_ on the fault path).
  obs::MetricsRegistry* metrics_ GUARDED_BY(mu_) = nullptr;
  obs::Tracer* tracer_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* ctr_hits_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* ctr_misses_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* ctr_evictions_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* ctr_writebacks_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* ctr_reads_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* ctr_writes_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* ctr_write_errors_ GUARDED_BY(mu_) = nullptr;
  obs::Gauge* g_pinned_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace storage
}  // namespace bouquet

#endif  // BOUQUET_STORAGE_BUFFER_MANAGER_H_

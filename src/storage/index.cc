#include "storage/index.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace bouquet {

const std::vector<uint32_t> HashIndex::kEmpty;

HashIndex HashIndex::BuildFromValues(const std::vector<int64_t>& values) {
  HashIndex idx;
  idx.map_.reserve(values.size());
  for (size_t r = 0; r < values.size(); ++r) {
    idx.map_[values[r]].push_back(static_cast<uint32_t>(r));
  }
  return idx;
}

HashIndex HashIndex::Build(const DataTable& table, int col) {
  return BuildFromValues(table.column(col));
}

const std::vector<uint32_t>& HashIndex::Lookup(int64_t key) const {
  auto it = map_.find(key);
  return it == map_.end() ? kEmpty : it->second;
}

SortedIndex SortedIndex::BuildFromValues(const std::vector<int64_t>& values) {
  SortedIndex idx;
  std::vector<uint32_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) { return values[a] < values[b]; });
  idx.values_.resize(values.size());
  idx.row_ids_.resize(values.size());
  for (size_t i = 0; i < order.size(); ++i) {
    idx.row_ids_[i] = order[i];
    idx.values_[i] = values[order[i]];
  }
  return idx;
}

SortedIndex SortedIndex::Build(const DataTable& table, int col) {
  return BuildFromValues(table.column(col));
}

std::vector<uint32_t> SortedIndex::Range(int64_t lo, int64_t hi) const {
  auto first = std::lower_bound(values_.begin(), values_.end(), lo);
  auto last = std::upper_bound(values_.begin(), values_.end(), hi);
  return std::vector<uint32_t>(row_ids_.begin() + (first - values_.begin()),
                               row_ids_.begin() + (last - values_.begin()));
}

int64_t SortedIndex::CountRange(int64_t lo, int64_t hi) const {
  auto first = std::lower_bound(values_.begin(), values_.end(), lo);
  auto last = std::upper_bound(values_.begin(), values_.end(), hi);
  return last - first;
}

Database::Database(Database&& other) noexcept {
  // Locking our own fresh mutex is redundant at runtime but lets the
  // analysis prove the guarded-map writes; other's lock is load-bearing
  // (its cached indexes must not move out from under a racing reader).
  WriterMutexLock self(&index_mu_);
  WriterMutexLock theirs(&other.index_mu_);
  tables_ = std::move(other.tables_);
  storage_ = other.storage_;
  paged_ = std::move(other.paged_);
  hash_indexes_ = std::move(other.hash_indexes_);
  sorted_indexes_ = std::move(other.sorted_indexes_);
}

Database& Database::operator=(Database&& other) noexcept {
  if (this == &other) return *this;
  // Self-then-other order: fine because moves are documented load-time
  // single-threaded (no cross-assignment cycle exists to deadlock).
  WriterMutexLock self(&index_mu_);
  WriterMutexLock theirs(&other.index_mu_);
  tables_ = std::move(other.tables_);
  storage_ = other.storage_;
  paged_ = std::move(other.paged_);
  hash_indexes_ = std::move(other.hash_indexes_);
  sorted_indexes_ = std::move(other.sorted_indexes_);
  return *this;
}

DataTable* Database::AddTable(DataTable table) {
  for (auto& t : tables_) {
    if (t->name() == table.name()) {
      *t = std::move(table);
      // Invalidate cached indexes for the replaced table under the writer
      // lock: erasing these maps used to run unlocked, racing concurrent
      // hash_index()/sorted_index() lookups of *other* tables (the maps
      // are shared even when the keys differ).
      WriterMutexLock lock(&index_mu_);
      for (auto it = hash_indexes_.begin(); it != hash_indexes_.end();) {
        it = it->first.first == t->name() ? hash_indexes_.erase(it)
                                          : std::next(it);
      }
      for (auto it = sorted_indexes_.begin(); it != sorted_indexes_.end();) {
        it = it->first.first == t->name() ? sorted_indexes_.erase(it)
                                          : std::next(it);
      }
      return t.get();
    }
  }
  tables_.push_back(std::make_unique<DataTable>(std::move(table)));
  return tables_.back().get();
}

void Database::AttachStorage(storage::StorageManager* sm) {
  storage_ = sm;
  for (const storage::PagedTable* pt : sm->tables()) {
    paged_[pt->name()] = pt;
    // Zero-row schema shell: every ColumnIndex-driven binding path in the
    // planners and executors resolves names against tables_; row data and
    // counts come from the paged view.
    std::vector<std::string> cols;
    cols.reserve(pt->num_columns());
    for (int c = 0; c < pt->num_columns(); ++c) {
      cols.push_back(pt->column_name(c));
    }
    AddTable(DataTable(pt->name(), std::move(cols)));
  }
}

const storage::PagedTable* Database::paged(const std::string& name) const {
  auto it = paged_.find(name);
  return it == paged_.end() ? nullptr : it->second;
}

bool Database::HasTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->name() == name) return true;
  }
  return false;
}

const DataTable& Database::table(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->name() == name) return *t;
  }
  assert(false && "unknown table");
  return *tables_.front();
}

const HashIndex& Database::hash_index(const std::string& table_name,
                                      int col) {
  const auto key = std::make_pair(table_name, col);
  {
    // Fast path: cache hits only need the shared lock, so concurrent
    // driver executions never serialize on already-built indexes.
    ReaderMutexLock lock(&index_mu_);
    const auto& cache = hash_indexes_;
    auto it = cache.find(key);
    if (it != cache.end()) return *it->second;
  }
  WriterMutexLock lock(&index_mu_);
  auto it = hash_indexes_.find(key);  // re-check: another writer may have won
  if (it == hash_indexes_.end()) {
    const storage::PagedTable* pt = paged(table_name);
    HashIndex built = pt ? HashIndex::BuildFromValues(pt->ReadColumn(col))
                         : HashIndex::Build(table(table_name), col);
    it = hash_indexes_
             .emplace(key, std::make_unique<HashIndex>(std::move(built)))
             .first;
  }
  return *it->second;
}

const SortedIndex& Database::sorted_index(const std::string& table_name,
                                          int col) {
  const auto key = std::make_pair(table_name, col);
  {
    ReaderMutexLock lock(&index_mu_);
    const auto& cache = sorted_indexes_;
    auto it = cache.find(key);
    if (it != cache.end()) return *it->second;
  }
  WriterMutexLock lock(&index_mu_);
  auto it = sorted_indexes_.find(key);
  if (it == sorted_indexes_.end()) {
    const storage::PagedTable* pt = paged(table_name);
    SortedIndex built = pt ? SortedIndex::BuildFromValues(pt->ReadColumn(col))
                           : SortedIndex::Build(table(table_name), col);
    it = sorted_indexes_
             .emplace(key, std::make_unique<SortedIndex>(std::move(built)))
             .first;
  }
  return *it->second;
}

void Database::SyncCatalog(Catalog* catalog, double default_width_bytes,
                           int histogram_buckets) const {
  for (const auto& t : tables_) {
    const storage::PagedTable* pt = paged(t->name());
    if (pt != nullptr) {
      // The shell is zero-row; real stats stream from disk through the
      // buffer pool (transient unaccounted pins).
      pt->SyncCatalog(catalog, default_width_bytes, /*indexed=*/true,
                      histogram_buckets);
    } else {
      t->SyncCatalog(catalog, default_width_bytes, /*indexed=*/true,
                     histogram_buckets);
    }
  }
}

}  // namespace bouquet

// Secondary indexes over DataTable columns.
//
// HashIndex backs equi-join index lookups (index nested-loop join);
// SortedIndex backs range-predicate index scans. The paper's experimental
// physical schema indexes every column featuring in the queries, so the
// Database registry below builds both kinds for all columns on demand.

#ifndef BOUQUET_STORAGE_INDEX_H_
#define BOUQUET_STORAGE_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/synchronization.h"
#include "storage/paged_table.h"
#include "storage/table.h"

namespace bouquet {

/// Equality index: value -> row ids.
class HashIndex {
 public:
  static HashIndex Build(const DataTable& table, int col);
  /// From a materialized column (paged tables stream columns through the
  /// buffer pool with ReadColumn and build from the values).
  static HashIndex BuildFromValues(const std::vector<int64_t>& values);

  /// Row ids with the given key (empty vector when absent).
  const std::vector<uint32_t>& Lookup(int64_t key) const;

 private:
  std::unordered_map<int64_t, std::vector<uint32_t>> map_;
  static const std::vector<uint32_t> kEmpty;
};

/// Ordered index: (value, row id) pairs sorted by value, for range scans.
class SortedIndex {
 public:
  static SortedIndex Build(const DataTable& table, int col);
  static SortedIndex BuildFromValues(const std::vector<int64_t>& values);

  /// Row ids of rows with lo <= value <= hi, in value order.
  std::vector<uint32_t> Range(int64_t lo, int64_t hi) const;

  /// Row ids of rows with value strictly below / above bounds etc. are
  /// expressed through Range with open-ended sentinels by the caller.
  int64_t CountRange(int64_t lo, int64_t hi) const;

 private:
  std::vector<int64_t> values_;   // sorted
  std::vector<uint32_t> row_ids_;  // aligned with values_
};

/// A database: tables plus lazily-built indexes.
///
/// Thread-safety: once loading is done (no more AddTable calls), concurrent
/// readers are safe — `table()` is read-only, and the lazy index caches
/// behind `hash_index()`/`sorted_index()` are guarded by a reader/writer
/// lock (cache hits take it shared, so concurrent driver executions do not
/// serialize; a returned index reference stays valid and immutable until
/// the table is replaced or the Database dies). AddTable must not race with
/// readers *of the replaced table* — it mutates that table in place and
/// drops its cached indexes — but its cache invalidation takes the writer
/// lock, so a concurrent lookup on a different table is safe.
class Database {
 public:
  Database() = default;
  /// Movable for load-time convenience only — a move must not race with
  /// readers of either operand (the mutex is not transferred, but both
  /// sides' caches are locked while the maps move).
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  /// Adds (or replaces) a table; returns a stable pointer.
  DataTable* AddTable(DataTable table);

  /// Attaches disk-backed storage (borrowed; must outlive the Database) and
  /// registers every table it has open: data resolves through the buffer
  /// pool via `paged()`, while a zero-row schema shell enters `tables_` so
  /// every column-binding path works unchanged. Load-time only, like
  /// AddTable. Index builds over paged tables stream their column through
  /// transient unaccounted pins (buffer_manager.h), so maintenance work
  /// never perturbs the replacement state the executors charge against.
  void AttachStorage(storage::StorageManager* sm);
  storage::StorageManager* storage() const { return storage_; }

  /// The paged view of `name`, or nullptr when the table is in-memory.
  const storage::PagedTable* paged(const std::string& name) const;

  bool HasTable(const std::string& name) const;
  const DataTable& table(const std::string& name) const;

  /// Hash index on (table, column); built and cached on first use.
  const HashIndex& hash_index(const std::string& table, int col);

  /// Sorted index on (table, column); built and cached on first use.
  const SortedIndex& sorted_index(const std::string& table, int col);

  /// Registers every table's statistics in the catalog.
  void SyncCatalog(Catalog* catalog, double default_width_bytes = 64.0,
                   int histogram_buckets = 64) const;

 private:
  // Guards the two lazy index caches (concurrent driver executions).
  // Hits are shared-lock lookups; misses upgrade to the writer lock to
  // build and cache. tables_ is deliberately unguarded: it is read-only
  // after loading (AddTable/moves are documented single-threaded).
  mutable SharedMutex index_mu_;
  // Deque-like stability via unique_ptr.
  std::vector<std::unique_ptr<DataTable>> tables_;
  // Disk-backed tables (read-only after AttachStorage, like tables_).
  storage::StorageManager* storage_ = nullptr;
  std::map<std::string, const storage::PagedTable*> paged_;
  std::map<std::pair<std::string, int>, std::unique_ptr<HashIndex>>
      hash_indexes_ GUARDED_BY(index_mu_);
  std::map<std::pair<std::string, int>, std::unique_ptr<SortedIndex>>
      sorted_indexes_ GUARDED_BY(index_mu_);
};

}  // namespace bouquet

#endif  // BOUQUET_STORAGE_INDEX_H_

#include "storage/page_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/str_util.h"

namespace bouquet {
namespace storage {

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::NotFound(
        StrPrintf("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal(
        StrPrintf("fstat %s: %s", path.c_str(), std::strerror(errno)));
  }
  if (st.st_size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::InvalidArgument(
        StrPrintf("%s: size %lld is not page-aligned", path.c_str(),
                  static_cast<long long>(st.st_size)));
  }
  auto f = std::make_unique<PageFile>();
  f->path_ = path;
  f->fd_ = fd;
  {
    MutexLock lock(&f->mu_);
    f->num_pages_ =
        static_cast<uint32_t>(st.st_size / static_cast<off_t>(kPageSize));
  }
  return f;
}

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(
        StrPrintf("create %s: %s", path.c_str(), std::strerror(errno)));
  }
  auto f = std::make_unique<PageFile>();
  f->path_ = path;
  f->fd_ = fd;
  return f;
}

Status PageFile::ReadPage(uint32_t page_no, uint8_t* frame) const {
  const off_t off = static_cast<off_t>(page_no) * kPageSize;
  size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n = ::pread(fd_, frame + done, kPageSize - done,
                              off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrPrintf("pread %s page %u: %s", path_.c_str(),
                                        page_no, std::strerror(errno)));
    }
    if (n == 0) {
      return Status::OutOfRange(StrPrintf("pread %s page %u: short read",
                                          path_.c_str(), page_no));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status PageFile::WritePage(uint32_t page_no, const uint8_t* frame) {
  const off_t off = static_cast<off_t>(page_no) * kPageSize;
  size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n = ::pwrite(fd_, frame + done, kPageSize - done,
                               off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrPrintf("pwrite %s page %u: %s", path_.c_str(),
                                        page_no, std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<uint32_t> PageFile::AllocatePage() {
  uint32_t page_no;
  {
    MutexLock lock(&mu_);
    page_no = num_pages_++;
  }
  // Materialize the page as zeros so Open()'s whole-pages invariant and
  // ReadPage on a never-written allocation both hold.
  uint8_t zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  const Status s = WritePage(page_no, zeros);
  if (!s.ok()) return s;
  return page_no;
}

uint32_t PageFile::num_pages() const {
  MutexLock lock(&mu_);
  return num_pages_;
}

Status PageFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::Internal(
        StrPrintf("fsync %s: %s", path_.c_str(), std::strerror(errno)));
  }
  return Status::Ok();
}

Status PageFile::CloseAndRemove() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty() && std::remove(path_.c_str()) != 0) {
    return Status::Internal(
        StrPrintf("remove %s: %s", path_.c_str(), std::strerror(errno)));
  }
  return Status::Ok();
}

}  // namespace storage
}  // namespace bouquet

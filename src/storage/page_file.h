// Page-granular file I/O: the physical layer under the buffer manager.
//
// A PageFile is a flat array of kPageSize pages addressed by page number,
// read and written with pread/pwrite so concurrent reactor threads never
// share a file offset. Allocation is append-only (AllocatePage), matching
// the deterministic table writer: a table file's bytes are a pure function
// of the rows written into it.
//
// Thread-safety: ReadPage/WritePage are positional and lock-free;
// AllocatePage and num_pages() serialize on a leaf Mutex.

#ifndef BOUQUET_STORAGE_PAGE_FILE_H_
#define BOUQUET_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/synchronization.h"
#include "storage/page.h"

namespace bouquet {
namespace storage {

class PageFile {
 public:
  PageFile() = default;
  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens an existing page file; fails unless the size is a whole number
  /// of pages.
  static Result<std::unique_ptr<PageFile>> Open(const std::string& path);

  /// Creates (truncating any previous content) an empty page file.
  static Result<std::unique_ptr<PageFile>> Create(const std::string& path);

  /// Reads page `page_no` into `frame` (kPageSize bytes).
  Status ReadPage(uint32_t page_no, uint8_t* frame) const;

  /// Writes `frame` to page `page_no`; the page must be allocated.
  Status WritePage(uint32_t page_no, const uint8_t* frame);

  /// Extends the file by one zero page; returns the new page number.
  Result<uint32_t> AllocatePage() EXCLUDES(mu_);

  uint32_t num_pages() const EXCLUDES(mu_);
  const std::string& path() const { return path_; }

  /// fsync; the benches skip it, the writer calls it once per table.
  Status Sync();

  /// Closes and deletes the file (temp spill segments).
  Status CloseAndRemove();

 private:
  std::string path_;
  int fd_ = -1;
  mutable Mutex mu_;
  uint32_t num_pages_ GUARDED_BY(mu_) = 0;
};

}  // namespace storage
}  // namespace bouquet

#endif  // BOUQUET_STORAGE_PAGE_FILE_H_

// Seeded on-disk dataset writer for the paged-storage layer.
//
// Composes the datagen column primitives into a star-schema dataset (one
// fact table with foreign keys into N-1 dimension tables, plus Zipf-skewed
// data columns for range predicates) and writes it through the
// deterministic .btbl writer (storage/paged_table.h). Generation is a pure
// function of the spec, so bench_storage runs and the storage tests see
// byte-identical files for the same seed — the on-disk twin of
// testing/generators.h.

#ifndef BOUQUET_STORAGE_DATASET_H_
#define BOUQUET_STORAGE_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace bouquet {
namespace storage {

/// Knobs for one generated dataset. Table 0 is the fact table
/// ("fact": pk, fk1..fk_{num_tables-1}, c0..); tables 1.. are dimensions
/// ("dim<i>": pk, c0..). pk is sequential from 1, fk_i references dim<i>'s
/// pk domain uniformly, data columns are Zipf-skewed over [1, value_domain].
struct DatasetSpec {
  uint64_t seed = 0xB0D1E5;
  int num_tables = 2;            ///< fact + (num_tables - 1) dimensions
  int64_t rows_per_table = 4096;
  /// Dimension-table row count; 0 means rows_per_table. Lets benchmarks
  /// size the one-shot-scan tables independently of the fact table.
  int64_t dim_rows = 0;
  int data_columns = 2;          ///< per table, beyond pk/fk
  double zipf_theta = 0.6;       ///< skew of data columns (0 = uniform)
  int64_t value_domain = 1000;   ///< data-column value range [1, domain]
};

/// Table names in generation order: {"fact", "dim1", ...}.
std::vector<std::string> DatasetTableNames(const DatasetSpec& spec);

/// Generates table `table_index` of the dataset in memory. Deterministic
/// in (spec, table_index) — each table draws from its own derived Rng
/// stream, so tables can be generated independently and in any order.
DataTable GenerateDatasetTable(const DatasetSpec& spec, int table_index);

/// Generates every table and writes <data_dir>/<name>.btbl, creating
/// data_dir if needed. A StorageManager with the same data_dir then serves
/// the dataset via OpenTable.
Status WriteOnDiskDataset(const std::string& data_dir,
                          const DatasetSpec& spec);

}  // namespace storage
}  // namespace bouquet

#endif  // BOUQUET_STORAGE_DATASET_H_

// Disk-backed tables over slotted pages, plus the StorageManager that owns
// the page files, the buffer pool, and the spill temp segments.
//
// File format (<data_dir>/<table>.btbl):
//   page 0            table meta: magic/version, row count, rows-per-page,
//                     column names (deterministically zero-padded)
//   pages 1..N        slotted data pages; one fixed-width row per record
//                     (num_columns * 8 bytes, values little-endian)
//
// The writer is deterministic: the same DataTable produces byte-identical
// files, so seeded datasets are reproducible across runs and machines
// (asserted in tests/test_storage.cc).
//
// Executors resolve a PagedTable through Database::paged(); the Database
// keeps a zero-row schema "shell" DataTable alongside so every existing
// column-binding path works unchanged. Data access goes through
// BufferManager::Pin; *accounting* (what the cost meter charges) goes
// through BufferManager::Access — see buffer_manager.h for why the two are
// decoupled. Maintenance reads (index builds, catalog stats) use
// ReadColumn, which pins pages transiently and never calls Access, so bulk
// work cannot pollute the replacement state.

#ifndef BOUQUET_STORAGE_PAGED_TABLE_H_
#define BOUQUET_STORAGE_PAGED_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/table.h"

namespace bouquet {
namespace storage {

/// Writes `table` as a .btbl page file at `path`. Deterministic;
/// overwrites any existing file; fsyncs before returning.
Status WriteTableFile(const std::string& path, const DataTable& table);

/// Read-only view of one on-disk table, resolved through a buffer pool.
class PagedTable {
 public:
  /// Parses the meta page. The file must already be registered with the
  /// buffer manager under `file_id`.
  static Result<std::unique_ptr<PagedTable>> Open(PageFile* file,
                                                  BufferManager* buffer,
                                                  uint16_t file_id);

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(column_names_.size()); }
  int ColumnIndex(const std::string& column_name) const;
  const std::string& column_name(int i) const { return column_names_[i]; }
  int rows_per_page() const { return rows_per_page_; }
  uint16_t file_id() const { return file_id_; }
  uint32_t num_data_pages() const { return num_data_pages_; }

  /// Data page (1-based: page 0 is meta) holding `row`, and its slot.
  uint32_t PageOfRow(int64_t row) const {
    return 1 + static_cast<uint32_t>(row / rows_per_page_);
  }
  int SlotOfRow(int64_t row) const {
    return static_cast<int>(row % rows_per_page_);
  }
  PageId PageIdOfRow(int64_t row) const {
    return PageId{file_id_, PageOfRow(row)};
  }

  BufferManager* buffer() const { return buffer_; }

  /// Pins the data page holding `row` (physical only — no accounting).
  PageGuard PinRowPage(int64_t row) const {
    return buffer_->Pin(PageIdOfRow(row));
  }

  /// One column value out of a pinned data page.
  int64_t ValueIn(const PageGuard& guard, int slot, int col) const;

  /// Decodes every column of a pinned data page into column-major scratch
  /// (scratch[c * rows_per_page + i]); returns the row count of the page.
  /// The batch engine's kernels then run over contiguous columns exactly as
  /// they do over in-memory vectors.
  int DecodePage(const PageGuard& guard, int64_t* scratch) const;

  /// Streams the whole column through transient unaccounted pins — index
  /// and catalog builds. (The column materializes in memory: secondary
  /// indexes remain in-memory structures in this codebase.)
  std::vector<int64_t> ReadColumn(int col) const;

  /// Registers this table in the catalog with statistics streamed from the
  /// pages — the paged twin of DataTable::SyncCatalog.
  void SyncCatalog(Catalog* catalog, double row_width_bytes,
                   bool indexed = true, int histogram_buckets = 64) const;

 private:
  PagedTable() = default;

  std::string name_;
  std::vector<std::string> column_names_;
  int64_t num_rows_ = 0;
  int rows_per_page_ = 1;
  uint32_t num_data_pages_ = 0;
  uint16_t file_id_ = 0;
  PageFile* file_ = nullptr;
  BufferManager* buffer_ = nullptr;
};

/// Options for a StorageManager.
struct StorageOptions {
  std::string data_dir;
  size_t pool_pages = 256;
  EvictionPolicyKind policy = EvictionPolicyKind::k2Q;
};

/// Owns the buffer pool, the open table files, and the spill temp
/// segments. Loading (OpenTable/ImportTable) is single-threaded like
/// Database loading; spill segment churn is mutex-guarded because spills
/// run on the service pool.
class StorageManager {
 public:
  explicit StorageManager(StorageOptions options);
  ~StorageManager();
  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  BufferManager* buffer() { return &buffer_; }
  const std::string& data_dir() const { return options_.data_dir; }

  /// Opens <data_dir>/<name>.btbl.
  Result<PagedTable*> OpenTable(const std::string& name);

  /// Writes the table to <data_dir>/<name>.btbl and opens it.
  Result<PagedTable*> ImportTable(const DataTable& table);

  /// nullptr when the table is not open.
  PagedTable* FindTable(const std::string& name) const;
  std::vector<PagedTable*> tables() const;

  /// Creates an empty temp page file registered with the pool; the id is
  /// the PageId::file for its pages.
  Result<uint16_t> CreateSpillFile() EXCLUDES(mu_);
  PageFile* spill_file(uint16_t file_id) const EXCLUDES(mu_);
  /// Drops the segment's frames and deletes the file.
  void DropSpillFile(uint16_t file_id) EXCLUDES(mu_);

 private:
  StorageOptions options_;
  BufferManager buffer_;
  std::map<std::string, std::unique_ptr<PagedTable>> tables_;
  std::vector<std::unique_ptr<PageFile>> table_files_;

  mutable Mutex mu_;
  std::map<uint16_t, std::unique_ptr<PageFile>> spill_files_ GUARDED_BY(mu_);
  uint64_t next_spill_seq_ GUARDED_BY(mu_) = 0;
};

/// Materializes rows into spill temp pages through the buffer pool. Pages
/// are written via PinNew (dirty frames, written back at unpin) and the
/// whole segment is deleted when the writer dies — the physical half of
/// the paper's spill-mode partial executions, with zero accounting impact
/// (jettisoned output is priced by the operators, not the disk).
class SpillWriter {
 public:
  SpillWriter(StorageManager* sm, size_t num_columns);
  ~SpillWriter();
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  bool ok() const { return sm_ != nullptr; }
  void Append(const std::vector<int64_t>& row);
  int64_t rows_written() const { return rows_written_; }
  uint32_t pages_written() const { return pages_written_; }

 private:
  void FinishPage();

  StorageManager* sm_ = nullptr;
  uint16_t file_id_ = 0;
  size_t num_columns_ = 0;
  int rows_in_page_cap_ = 0;
  PageGuard page_;
  int rows_in_page_ = 0;
  int64_t rows_written_ = 0;
  uint32_t pages_written_ = 0;
  std::vector<uint8_t> rec_buf_;
};

}  // namespace storage
}  // namespace bouquet

#endif  // BOUQUET_STORAGE_PAGED_TABLE_H_

#include "storage/buffer_manager.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

namespace bouquet {
namespace storage {

std::string EvictionPolicyName(EvictionPolicyKind kind) {
  switch (kind) {
    case EvictionPolicyKind::kNone:
      return "none";
    case EvictionPolicyKind::kLru:
      return "lru";
    case EvictionPolicyKind::k2Q:
      return "2q";
  }
  return "?";
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    bm_ = other.bm_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.bm_ = nullptr;
    other.data_ = nullptr;
    other.dirty_ = false;
  }
  return *this;
}

void PageGuard::Release() {
  if (bm_ != nullptr) {
    bm_->Unpin(id_, dirty_);
    bm_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
  }
}

BufferManager::BufferManager(size_t pool_pages, EvictionPolicyKind kind)
    : pool_pages_(pool_pages == 0 ? 1 : pool_pages),
      kind_(kind),
      kin_(pool_pages_ / 4 == 0 ? 1 : pool_pages_ / 4),
      kout_(pool_pages_ / 2 == 0 ? 1 : pool_pages_ / 2) {}

BufferManager::~BufferManager() {
  MutexLock lock(&mu_);
  for (auto& [key, f] : frames_) {
    assert(f.pins == 0 && "frame still pinned at BufferManager destruction");
    if (f.dirty) WritebackLocked(key, &f);
  }
}

uint16_t BufferManager::RegisterFile(PageFile* file) {
  MutexLock lock(&mu_);
  const uint16_t id = next_file_id_++;
  files_[id] = file;
  return id;
}

void BufferManager::DropFile(uint16_t file_id) {
  MutexLock lock(&mu_);
  files_.erase(file_id);
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (static_cast<uint16_t>(it->first >> 32) == file_id) {
      assert(it->second.pins == 0 && "dropping a file with pinned frames");
      if (it->second.resident) EvictLocked(it->first);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
  // Scrub any remaining residency/ghost entries of the file (resident pages
  // without frames are possible — accounting is decoupled from frames).
  auto scrub = [&](std::list<uint64_t>* q) {
    for (auto it = q->begin(); it != q->end();) {
      if (static_cast<uint16_t>(*it >> 32) == file_id) {
        policy_.where.erase(*it);
        it = q->erase(it);
      } else {
        ++it;
      }
    }
  };
  scrub(&policy_.lru);
  scrub(&policy_.a1in);
  scrub(&policy_.am);
  scrub(&policy_.a1out);
}

bool BufferManager::PolicyContainsLocked(uint64_t key) const {
  const auto it = policy_.where.find(key);
  return it != policy_.where.end() && it->second.first != 2;  // 2 = ghost
}

// Removes `key` from the resident policy state and syncs the physical
// layer: an unpinned frame is freed (writing back when dirty); a pinned
// frame merely loses residency and is reclaimed at its last Unpin.
void BufferManager::EvictLocked(uint64_t key) {
  stats_.evictions++;
  if (ctr_evictions_ != nullptr) ctr_evictions_->Inc();
  auto fit = frames_.find(key);
  if (fit == frames_.end()) return;  // logically resident, no frame
  Frame& f = fit->second;
  f.resident = false;
  if (f.pins == 0) {
    FreeFrameLocked(key, &f);
    frames_.erase(fit);
  }
}

void BufferManager::WritebackLocked(uint64_t key, Frame* f) {
  stats_.writebacks++;
  stats_.physical_writes++;
  if (ctr_writebacks_ != nullptr) ctr_writebacks_->Inc();
  if (ctr_writes_ != nullptr) ctr_writes_->Inc();
  const uint16_t file_id = static_cast<uint16_t>(key >> 32);
  const uint32_t page_no = static_cast<uint32_t>(key);
  auto it = files_.find(file_id);
  if (it != files_.end()) {
    // An I/O error here loses the page. There is no caller to surface the
    // Status to (eviction happens under unrelated accesses), so the error
    // is counted instead of dropped: write_errors diverging from zero tells
    // operators durable bytes are behind write traffic.
    const Status ws = it->second->WritePage(page_no, f->data.get());
    if (!ws.ok()) {
      stats_.write_errors++;
      if (ctr_write_errors_ != nullptr) ctr_write_errors_->Inc();
    }
  }
  f->dirty = false;
}

void BufferManager::FreeFrameLocked(uint64_t key, Frame* f) {
  if (f->dirty) WritebackLocked(key, f);
}

void BufferManager::ReclaimLocked(std::vector<uint64_t>* evicted) {
  if (kind_ == EvictionPolicyKind::kLru) {
    while (policy_.lru.size() > pool_pages_) {
      const uint64_t victim = policy_.lru.back();
      policy_.lru.pop_back();
      policy_.where.erase(victim);
      evicted->push_back(victim);
    }
    return;
  }
  // 2Q (Johnson & Shasha '94, simplified full version): keep A1in at Kin by
  // demoting its FIFO tail to the ghost queue; once A1in is within bound,
  // evict from the cold end of Am (no ghost — Am pages already proved
  // themselves once and must re-earn admission).
  while (policy_.a1in.size() + policy_.am.size() > pool_pages_) {
    if (policy_.a1in.size() > kin_ || policy_.am.empty()) {
      const uint64_t victim = policy_.a1in.back();
      policy_.a1in.pop_back();
      policy_.a1out.push_front(victim);
      policy_.where[victim] = {2, policy_.a1out.begin()};
      while (policy_.a1out.size() > kout_) {
        policy_.where.erase(policy_.a1out.back());
        policy_.a1out.pop_back();
      }
      evicted->push_back(victim);
    } else {
      const uint64_t victim = policy_.am.back();
      policy_.am.pop_back();
      policy_.where.erase(victim);
      evicted->push_back(victim);
    }
  }
}

bool BufferManager::AccessLocked(uint64_t key, std::vector<uint64_t>* evicted) {
  if (kind_ == EvictionPolicyKind::kNone) return false;  // always a miss
  if (kind_ == EvictionPolicyKind::kLru) {
    auto it = policy_.where.find(key);
    if (it != policy_.where.end()) {
      policy_.lru.splice(policy_.lru.begin(), policy_.lru, it->second.second);
      it->second.second = policy_.lru.begin();
      return true;
    }
    policy_.lru.push_front(key);
    policy_.where[key] = {0, policy_.lru.begin()};
    ReclaimLocked(evicted);
    return false;
  }
  // 2Q.
  auto it = policy_.where.find(key);
  if (it != policy_.where.end()) {
    switch (it->second.first) {
      case 1:  // Am: hit, refresh recency
        policy_.am.splice(policy_.am.begin(), policy_.am, it->second.second);
        it->second.second = policy_.am.begin();
        return true;
      case 0:  // A1in: hit, FIFO position unchanged (classic 2Q)
        return true;
      case 2:  // A1out ghost: miss, but promote straight to Am
        stats_.ghost_hits++;
        policy_.a1out.erase(it->second.second);
        policy_.am.push_front(key);
        it->second = {1, policy_.am.begin()};
        ReclaimLocked(evicted);
        return false;
    }
  }
  policy_.a1in.push_front(key);
  policy_.where[key] = {0, policy_.a1in.begin()};
  ReclaimLocked(evicted);
  return false;
}

bool BufferManager::Access(PageId id) {
  MutexLock lock(&mu_);
  std::vector<uint64_t> evicted;
  const bool hit = AccessLocked(id.key(), &evicted);
  if (hit) {
    stats_.hits++;
    if (ctr_hits_ != nullptr) ctr_hits_->Inc();
  } else {
    stats_.misses++;
    if (ctr_misses_ != nullptr) ctr_misses_->Inc();
    auto fit = frames_.find(id.key());
    if (fit != frames_.end()) fit->second.resident = true;
  }
  for (const uint64_t victim : evicted) EvictLocked(victim);
  return hit;
}

PageGuard BufferManager::Pin(PageId id) {
  MutexLock lock(&mu_);
  auto it = frames_.find(id.key());
  if (it == frames_.end()) {
    auto fileit = files_.find(id.file);
    if (fileit == files_.end()) return PageGuard();
    Frame f;
    f.data = std::make_unique<uint8_t[]>(kPageSize);
    {
      obs::Span fault = obs::Tracer::Begin(tracer_, "storage.page_fault");
      const Status s = fileit->second->ReadPage(id.page, f.data.get());
      fault.Num("file", static_cast<double>(id.file))
          .Num("page", static_cast<double>(id.page));
      if (!s.ok()) return PageGuard();
    }
    stats_.physical_reads++;
    if (ctr_reads_ != nullptr) ctr_reads_->Inc();
    f.resident = PolicyContainsLocked(id.key());
    it = frames_.emplace(id.key(), std::move(f)).first;
  }
  Frame& f = it->second;
  if (f.pins++ == 0) {
    stats_.pinned_frames++;
    stats_.pinned_peak = std::max(stats_.pinned_peak, stats_.pinned_frames);
    if (g_pinned_ != nullptr) {
      g_pinned_->Set(static_cast<double>(stats_.pinned_frames));
    }
  }
  return PageGuard(this, id, f.data.get());
}

PageGuard BufferManager::PinNew(PageId id) {
  MutexLock lock(&mu_);
  assert(frames_.find(id.key()) == frames_.end() &&
         "PinNew over an existing frame");
  Frame f;
  f.data = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(f.data.get(), 0, kPageSize);
  f.dirty = true;
  f.resident = PolicyContainsLocked(id.key());
  auto it = frames_.emplace(id.key(), std::move(f)).first;
  Frame& nf = it->second;
  if (nf.pins++ == 0) {
    stats_.pinned_frames++;
    stats_.pinned_peak = std::max(stats_.pinned_peak, stats_.pinned_frames);
    if (g_pinned_ != nullptr) {
      g_pinned_->Set(static_cast<double>(stats_.pinned_frames));
    }
  }
  return PageGuard(this, id, nf.data.get());
}

void BufferManager::Unpin(PageId id, bool dirty) {
  MutexLock lock(&mu_);
  auto it = frames_.find(id.key());
  assert(it != frames_.end() && "unpin of an unknown frame");
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (dirty) f.dirty = true;
  assert(f.pins > 0 && "unpin underflow");
  if (--f.pins == 0) {
    stats_.pinned_frames--;
    if (g_pinned_ != nullptr) {
      g_pinned_->Set(static_cast<double>(stats_.pinned_frames));
    }
    if (!f.resident) {  // zombie or never-resident frame: reclaim now
      FreeFrameLocked(id.key(), &f);
      frames_.erase(it);
    }
  }
}

BufferStats BufferManager::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

size_t BufferManager::physical_frames() const {
  MutexLock lock(&mu_);
  return frames_.size();
}

void BufferManager::ResetForTest() {
  MutexLock lock(&mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pins == 0) {
      // Test resets drop dirty bytes deliberately (spill temp data).
      it = frames_.erase(it);
    } else {
      it->second.resident = false;
      ++it;
    }
  }
  policy_ = PolicyState();
  const uint64_t pinned = stats_.pinned_frames;
  stats_ = BufferStats();
  stats_.pinned_frames = pinned;
  stats_.pinned_peak = pinned;
}

void BufferManager::SetObservability(obs::MetricsRegistry* metrics,
                                     obs::Tracer* tracer) {
  MutexLock lock(&mu_);
  metrics_ = metrics;
  tracer_ = tracer;
  if (metrics == nullptr) {
    ctr_hits_ = ctr_misses_ = ctr_evictions_ = ctr_writebacks_ = ctr_reads_ =
        ctr_writes_ = ctr_write_errors_ = nullptr;
    g_pinned_ = nullptr;
    return;
  }
  ctr_hits_ = metrics->GetCounter("buffer_hits_total",
                                  "Buffer-pool accounting hits");
  ctr_misses_ = metrics->GetCounter("buffer_misses_total",
                                    "Buffer-pool accounting misses");
  ctr_evictions_ = metrics->GetCounter("buffer_evictions_total",
                                       "Pages evicted by the policy");
  ctr_writebacks_ = metrics->GetCounter("buffer_writebacks_total",
                                        "Dirty frames written back");
  ctr_reads_ = metrics->GetCounter("buffer_physical_reads_total",
                                   "Page faults served by pread");
  ctr_writes_ = metrics->GetCounter("buffer_physical_writes_total",
                                    "Page writes issued by pwrite");
  ctr_write_errors_ = metrics->GetCounter("buffer_write_errors_total",
                                          "Failed writeback pwrites");
  g_pinned_ = metrics->GetGauge("buffer_pinned_frames",
                                "Frames currently pinned");
}

}  // namespace storage
}  // namespace bouquet

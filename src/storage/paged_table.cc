#include "storage/paged_table.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/str_util.h"

namespace bouquet {
namespace storage {

namespace {

constexpr uint32_t kTableMagic = 0x4251544D;  // "BQTM"
constexpr uint32_t kTableVersion = 1;

// Meta-page field offsets (page 0; zero-filled before writing).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffNumRows = 8;
constexpr size_t kOffRowsPerPage = 16;
constexpr size_t kOffNumDataPages = 20;
constexpr size_t kOffNumCols = 24;
constexpr size_t kOffNames = 28;

template <typename T>
void StoreLe(uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

template <typename T>
T LoadLe(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

Status WriteTableFile(const std::string& path, const DataTable& table) {
  if (table.num_columns() == 0) {
    return Status::InvalidArgument("cannot write a zero-column table");
  }
  const size_t record_bytes = static_cast<size_t>(table.num_columns()) * 8;
  const int rpp = SlottedPage::Capacity(record_bytes);
  if (rpp <= 0) {
    return Status::InvalidArgument(
        StrPrintf("row of %zu bytes does not fit a page", record_bytes));
  }
  auto created = PageFile::Create(path);
  if (!created.ok()) return created.status();
  PageFile* file = created.value().get();

  uint8_t frame[kPageSize];

  // Meta page.
  std::memset(frame, 0, kPageSize);
  StoreLe<uint32_t>(frame + kOffMagic, kTableMagic);
  StoreLe<uint32_t>(frame + kOffVersion, kTableVersion);
  StoreLe<int64_t>(frame + kOffNumRows, table.num_rows());
  StoreLe<uint32_t>(frame + kOffRowsPerPage, static_cast<uint32_t>(rpp));
  const uint32_t num_data_pages = static_cast<uint32_t>(
      (table.num_rows() + rpp - 1) / rpp);
  StoreLe<uint32_t>(frame + kOffNumDataPages, num_data_pages);
  StoreLe<uint32_t>(frame + kOffNumCols,
                    static_cast<uint32_t>(table.num_columns()));
  size_t off = kOffNames;
  auto put_name = [&](const std::string& s) -> bool {
    if (off + 2 + s.size() > kPageSize) return false;
    StoreLe<uint16_t>(frame + off, static_cast<uint16_t>(s.size()));
    std::memcpy(frame + off + 2, s.data(), s.size());
    off += 2 + s.size();
    return true;
  };
  if (!put_name(table.name())) {
    return Status::InvalidArgument("table name overflows the meta page");
  }
  for (int c = 0; c < table.num_columns(); ++c) {
    if (!put_name(table.column_name(c))) {
      return Status::InvalidArgument("column names overflow the meta page");
    }
  }
  Status s = file->WritePage(0, frame);
  if (!s.ok()) return s;

  // Data pages: rows in order, record = columns little-endian.
  std::vector<uint8_t> rec(record_bytes);
  int64_t row = 0;
  for (uint32_t pg = 0; pg < num_data_pages; ++pg) {
    SlottedPage page(frame);
    page.Init(pg + 1);
    const int64_t end = std::min<int64_t>(row + rpp, table.num_rows());
    for (; row < end; ++row) {
      for (int c = 0; c < table.num_columns(); ++c) {
        StoreLe<int64_t>(rec.data() + static_cast<size_t>(c) * 8,
                         table.value(c, row));
      }
      const int slot = page.Insert(rec.data(), rec.size());
      assert(slot >= 0 && "capacity formula disagrees with Insert");
      (void)slot;
    }
    s = file->WritePage(pg + 1, frame);
    if (!s.ok()) return s;
  }
  return file->Sync();
}

Result<std::unique_ptr<PagedTable>> PagedTable::Open(PageFile* file,
                                                     BufferManager* buffer,
                                                     uint16_t file_id) {
  uint8_t frame[kPageSize];
  Status s = file->ReadPage(0, frame);
  if (!s.ok()) return s;
  if (LoadLe<uint32_t>(frame + kOffMagic) != kTableMagic) {
    return Status::InvalidArgument(
        StrPrintf("%s: bad table magic", file->path().c_str()));
  }
  if (LoadLe<uint32_t>(frame + kOffVersion) != kTableVersion) {
    return Status::InvalidArgument(
        StrPrintf("%s: unsupported table version", file->path().c_str()));
  }
  auto t = std::unique_ptr<PagedTable>(new PagedTable());
  t->num_rows_ = LoadLe<int64_t>(frame + kOffNumRows);
  t->rows_per_page_ =
      static_cast<int>(LoadLe<uint32_t>(frame + kOffRowsPerPage));
  t->num_data_pages_ = LoadLe<uint32_t>(frame + kOffNumDataPages);
  const uint32_t ncols = LoadLe<uint32_t>(frame + kOffNumCols);
  if (t->rows_per_page_ <= 0 || ncols == 0) {
    return Status::InvalidArgument(
        StrPrintf("%s: corrupt table meta", file->path().c_str()));
  }
  size_t off = kOffNames;
  auto get_name = [&](std::string* out) -> bool {
    if (off + 2 > kPageSize) return false;
    const uint16_t len = LoadLe<uint16_t>(frame + off);
    if (off + 2 + len > kPageSize) return false;
    out->assign(reinterpret_cast<const char*>(frame + off + 2), len);
    off += 2 + static_cast<size_t>(len);
    return true;
  };
  if (!get_name(&t->name_)) {
    return Status::InvalidArgument("corrupt table name");
  }
  t->column_names_.resize(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    if (!get_name(&t->column_names_[c])) {
      return Status::InvalidArgument("corrupt column names");
    }
  }
  t->file_id_ = file_id;
  t->file_ = file;
  t->buffer_ = buffer;
  return t;
}

int PagedTable::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == column_name) return static_cast<int>(i);
  }
  return -1;
}

int64_t PagedTable::ValueIn(const PageGuard& guard, int slot, int col) const {
  const SlottedPage page(const_cast<uint8_t*>(guard.data()));
  size_t len = 0;
  const uint8_t* rec = page.Record(slot, &len);
  assert(rec != nullptr && static_cast<size_t>(col) * 8 + 8 <= len);
  int64_t v;
  std::memcpy(&v, rec + static_cast<size_t>(col) * 8, 8);
  return v;
}

int PagedTable::DecodePage(const PageGuard& guard, int64_t* scratch) const {
  const SlottedPage page(const_cast<uint8_t*>(guard.data()));
  const int n = page.num_records();
  const int ncols = num_columns();
  for (int i = 0; i < n; ++i) {
    size_t len = 0;
    const uint8_t* rec = page.Record(i, &len);
    for (int c = 0; c < ncols; ++c) {
      std::memcpy(&scratch[static_cast<size_t>(c) * rows_per_page_ + i],
                  rec + static_cast<size_t>(c) * 8, 8);
    }
  }
  return n;
}

std::vector<int64_t> PagedTable::ReadColumn(int col) const {
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(num_rows_));
  for (uint32_t pg = 1; pg <= num_data_pages_; ++pg) {
    PageGuard guard = buffer_->Pin(PageId{file_id_, pg});
    if (!guard.valid()) break;  // unreadable page: truncate (caller asserts)
    const SlottedPage page(const_cast<uint8_t*>(guard.data()));
    const int n = page.num_records();
    for (int i = 0; i < n; ++i) {
      size_t len = 0;
      const uint8_t* rec = page.Record(i, &len);
      int64_t v;
      std::memcpy(&v, rec + static_cast<size_t>(col) * 8, 8);
      out.push_back(v);
    }
  }
  return out;
}

void PagedTable::SyncCatalog(Catalog* catalog, double row_width_bytes,
                             bool indexed, int histogram_buckets) const {
  TableInfo info;
  info.name = name_;
  info.stats.row_count = static_cast<double>(num_rows_);
  info.stats.row_width_bytes = row_width_bytes;
  for (int c = 0; c < num_columns(); ++c) {
    ColumnInfo ci;
    ci.name = column_names_[c];
    ci.stats = ComputeColumnStatsFromValues(ReadColumn(c), histogram_buckets);
    ci.has_index = indexed;
    info.columns.push_back(std::move(ci));
  }
  catalog->AddTable(std::move(info));
}

StorageManager::StorageManager(StorageOptions options)
    : options_(std::move(options)),
      buffer_(options_.pool_pages, options_.policy) {
  // Best-effort: spill segments and imports need the directory to exist;
  // a failure here surfaces as the first Create/Open error instead.
  if (!options_.data_dir.empty()) {
    // NOLINTNEXTLINE(bouquet-discarded-status): EEXIST is the common case
    (void)::mkdir(options_.data_dir.c_str(), 0755);
  }
}

StorageManager::~StorageManager() {
  std::vector<uint16_t> spill_ids;
  {
    MutexLock lock(&mu_);
    for (const auto& [id, file] : spill_files_) spill_ids.push_back(id);
  }
  for (const uint16_t id : spill_ids) DropSpillFile(id);
}

Result<PagedTable*> StorageManager::OpenTable(const std::string& name) {
  auto opened = PageFile::Open(options_.data_dir + "/" + name + ".btbl");
  if (!opened.ok()) return opened.status();
  PageFile* file = opened.value().get();
  const uint16_t file_id = buffer_.RegisterFile(file);
  auto table = PagedTable::Open(file, &buffer_, file_id);
  if (!table.ok()) {
    buffer_.DropFile(file_id);
    return table.status();
  }
  PagedTable* raw = table.value().get();
  table_files_.push_back(std::move(opened.value()));
  tables_[name] = std::move(table.value());
  return raw;
}

Result<PagedTable*> StorageManager::ImportTable(const DataTable& table) {
  const Status s =
      WriteTableFile(options_.data_dir + "/" + table.name() + ".btbl", table);
  if (!s.ok()) return s;
  return OpenTable(table.name());
}

PagedTable* StorageManager::FindTable(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<PagedTable*> StorageManager::tables() const {
  std::vector<PagedTable*> out;
  out.reserve(tables_.size());
  for (const auto& [name, t] : tables_) out.push_back(t.get());
  return out;
}

Result<uint16_t> StorageManager::CreateSpillFile() {
  uint64_t seq;
  {
    MutexLock lock(&mu_);
    seq = next_spill_seq_++;
  }
  auto created = PageFile::Create(
      StrPrintf("%s/spill_%llu.tmp", options_.data_dir.c_str(),
                static_cast<unsigned long long>(seq)));
  if (!created.ok()) return created.status();
  // Lock order: the pool's mutex and mu_ are taken in disjoint regions
  // (never nested) so spill churn cannot invert against DropFile.
  const uint16_t id = buffer_.RegisterFile(created.value().get());
  {
    MutexLock lock(&mu_);
    spill_files_[id] = std::move(created.value());
  }
  return id;
}

PageFile* StorageManager::spill_file(uint16_t file_id) const {
  MutexLock lock(&mu_);
  const auto it = spill_files_.find(file_id);
  return it == spill_files_.end() ? nullptr : it->second.get();
}

void StorageManager::DropSpillFile(uint16_t file_id) {
  buffer_.DropFile(file_id);
  std::unique_ptr<PageFile> file;
  {
    MutexLock lock(&mu_);
    auto it = spill_files_.find(file_id);
    if (it == spill_files_.end()) return;
    file = std::move(it->second);
    spill_files_.erase(it);
  }
  // Temp spill segment teardown on a destructor-reachable path; a failed
  // unlink leaks a dead file in data_dir but cannot corrupt table state.
  // NOLINTNEXTLINE(bouquet-discarded-status): best-effort temp cleanup
  (void)file->CloseAndRemove();
}

SpillWriter::SpillWriter(StorageManager* sm, size_t num_columns)
    : num_columns_(num_columns),
      rows_in_page_cap_(SlottedPage::Capacity(num_columns * 8)),
      rec_buf_(num_columns * 8) {
  auto created = sm->CreateSpillFile();
  if (!created.ok()) return;  // !ok(): Append becomes a no-op
  sm_ = sm;
  file_id_ = created.value();
}

SpillWriter::~SpillWriter() {
  if (sm_ == nullptr) return;
  page_.Release();
  sm_->DropSpillFile(file_id_);
}

void SpillWriter::FinishPage() { page_.Release(); }

void SpillWriter::Append(const std::vector<int64_t>& row) {
  if (sm_ == nullptr) return;
  assert(row.size() == num_columns_);
  if (!page_.valid() || rows_in_page_ >= rows_in_page_cap_) {
    FinishPage();
    PageFile* file = sm_->spill_file(file_id_);
    auto allocated = file->AllocatePage();
    if (!allocated.ok()) {
      sm_ = nullptr;  // disk full etc.: drop the rest silently
      return;
    }
    page_ = sm_->buffer()->PinNew(PageId{file_id_, allocated.value()});
    SlottedPage(page_.mutable_data()).Init(allocated.value());
    rows_in_page_ = 0;
    pages_written_++;
  }
  for (size_t c = 0; c < num_columns_; ++c) {
    std::memcpy(rec_buf_.data() + c * 8, &row[c], 8);
  }
  SlottedPage page(page_.mutable_data());
  const int slot = page.Insert(rec_buf_.data(), rec_buf_.size());
  assert(slot >= 0);
  (void)slot;
  rows_in_page_++;
  rows_written_++;
}

}  // namespace storage
}  // namespace bouquet

#include "workloads/spaces.h"

#include <cstdio>
#include <cstdlib>
#include <cassert>
#include <cmath>

namespace bouquet {

namespace {

JoinPredicate J(const std::string& lt, const std::string& lc,
                const std::string& rt, const std::string& rc) {
  JoinPredicate j;
  j.left_table = lt;
  j.left_column = lc;
  j.right_table = rt;
  j.right_column = rc;
  return j;
}

SelectionPredicate F(const std::string& t, const std::string& c,
                     CompareOp op = CompareOp::kLess) {
  SelectionPredicate f;
  f.table = t;
  f.column = c;
  f.op = op;
  return f;
}

/// Join dimension capped at the PK-FK schematic limit: hi = 1/|PK relation|,
/// spanning `decades` decades below it.
ErrorDimension JoinDim(int join_idx, const Catalog& catalog,
                       const std::string& pk_table, const std::string& label,
                       double decades = 3.0) {
  ErrorDimension d;
  d.kind = DimKind::kJoin;
  d.predicate_index = join_idx;
  d.hi = 1.0 / catalog.GetTable(pk_table).stats.row_count;
  d.lo = d.hi * std::pow(10.0, -decades);
  d.label = label;
  return d;
}

ErrorDimension SelDim(int filter_idx, const std::string& label,
                      double lo = 1e-4, double hi = 1.0) {
  ErrorDimension d;
  d.kind = DimKind::kSelection;
  d.predicate_index = filter_idx;
  d.lo = lo;
  d.hi = hi;
  d.label = label;
  return d;
}

}  // namespace

QuerySpec MakeEqQuery(const Catalog& tpch) {
  (void)tpch;
  QuerySpec q;
  q.name = "EQ";
  q.tables = {"part", "lineitem", "orders"};
  q.joins = {J("part", "p_partkey", "lineitem", "l_partkey"),
             J("lineitem", "l_orderkey", "orders", "o_orderkey")};
  q.filters = {F("part", "p_retailprice")};
  q.error_dims = {SelDim(0, "p_retailprice", 1e-4, 1.0)};
  return q;
}

std::vector<NamedSpace> BenchmarkSpaces(const Catalog& tpch,
                                        const Catalog& tpcds) {
  std::vector<NamedSpace> spaces;

  // ---- 3D_H_Q5: chain(6) over region-nation-supplier-lineitem-orders-
  // customer; error dims on the three fact-side joins.
  {
    QuerySpec q;
    q.name = "3D_H_Q5";
    q.tables = {"region", "nation", "supplier", "lineitem", "orders",
                "customer"};
    q.joins = {J("region", "r_regionkey", "nation", "n_regionkey"),
               J("nation", "n_nationkey", "supplier", "s_nationkey"),
               J("supplier", "s_suppkey", "lineitem", "l_suppkey"),
               J("lineitem", "l_orderkey", "orders", "o_orderkey"),
               J("orders", "o_custkey", "customer", "c_custkey")};
    q.error_dims = {JoinDim(2, tpch, "supplier", "s_suppkey=l_suppkey"),
                    JoinDim(3, tpch, "orders", "l_orderkey=o_orderkey"),
                    JoinDim(4, tpch, "customer", "o_custkey=c_custkey")};
    spaces.push_back({q.name, "H", std::move(q)});
  }

  // ---- 3D_H_Q7: chain(6), traversed from the customer side.
  {
    QuerySpec q;
    q.name = "3D_H_Q7";
    q.tables = {"region", "nation", "customer", "orders", "lineitem",
                "supplier"};
    q.joins = {J("region", "r_regionkey", "nation", "n_regionkey"),
               J("nation", "n_nationkey", "customer", "c_nationkey"),
               J("customer", "c_custkey", "orders", "o_custkey"),
               J("orders", "o_orderkey", "lineitem", "l_orderkey"),
               J("lineitem", "l_suppkey", "supplier", "s_suppkey")};
    q.error_dims = {JoinDim(2, tpch, "customer", "c_custkey=o_custkey"),
                    JoinDim(3, tpch, "orders", "o_orderkey=l_orderkey"),
                    JoinDim(4, tpch, "supplier", "l_suppkey=s_suppkey")};
    spaces.push_back({q.name, "H", std::move(q)});
  }

  // ---- 4D_H_Q8: branch(8); lineitem is the hub (part, supplier, orders),
  // with the customer-nation-region tail and partsupp off part.
  {
    QuerySpec q;
    q.name = "4D_H_Q8";
    q.tables = {"part", "lineitem", "supplier", "orders", "customer",
                "nation", "region", "partsupp"};
    q.joins = {J("part", "p_partkey", "lineitem", "l_partkey"),
               J("lineitem", "l_suppkey", "supplier", "s_suppkey"),
               J("lineitem", "l_orderkey", "orders", "o_orderkey"),
               J("orders", "o_custkey", "customer", "c_custkey"),
               J("customer", "c_nationkey", "nation", "n_nationkey"),
               J("nation", "n_regionkey", "region", "r_regionkey"),
               J("partsupp", "ps_partkey", "part", "p_partkey")};
    q.error_dims = {JoinDim(0, tpch, "part", "p_partkey=l_partkey"),
                    JoinDim(1, tpch, "supplier", "l_suppkey=s_suppkey"),
                    JoinDim(2, tpch, "orders", "l_orderkey=o_orderkey"),
                    JoinDim(3, tpch, "customer", "o_custkey=c_custkey")};
    spaces.push_back({q.name, "H", std::move(q)});
  }

  // ---- 5D_H_Q7: chain(6) with all five joins error-prone.
  {
    QuerySpec q;
    q.name = "5D_H_Q7";
    q.tables = {"region", "nation", "supplier", "lineitem", "orders",
                "customer"};
    q.joins = {J("region", "r_regionkey", "nation", "n_regionkey"),
               J("nation", "n_nationkey", "supplier", "s_nationkey"),
               J("supplier", "s_suppkey", "lineitem", "l_suppkey"),
               J("lineitem", "l_orderkey", "orders", "o_orderkey"),
               J("orders", "o_custkey", "customer", "c_custkey")};
    q.error_dims = {JoinDim(0, tpch, "region", "r_regionkey=n_regionkey", 1),
                    JoinDim(1, tpch, "nation", "n_nationkey=s_nationkey", 1),
                    JoinDim(2, tpch, "supplier", "s_suppkey=l_suppkey"),
                    JoinDim(3, tpch, "orders", "l_orderkey=o_orderkey"),
                    JoinDim(4, tpch, "customer", "o_custkey=c_custkey")};
    spaces.push_back({q.name, "H", std::move(q)});
  }

  // ---- 3D_DS_Q15: chain(4): date_dim - catalog_sales - customer -
  // customer_address.
  {
    QuerySpec q;
    q.name = "3D_DS_Q15";
    q.tables = {"date_dim", "catalog_sales", "customer", "customer_address"};
    q.joins = {J("date_dim", "d_date_sk", "catalog_sales", "cs_sold_date_sk"),
               J("catalog_sales", "cs_ship_customer_sk", "customer",
                 "c_customer_sk"),
               J("customer", "c_current_addr_sk", "customer_address",
                 "ca_address_sk")};
    q.error_dims = {
        JoinDim(0, tpcds, "date_dim", "d_date_sk=cs_sold_date_sk"),
        JoinDim(1, tpcds, "customer", "cs_ship_customer_sk=c_customer_sk"),
        JoinDim(2, tpcds, "customer_address",
                "c_current_addr_sk=ca_address_sk")};
    spaces.push_back({q.name, "DS", std::move(q)});
  }

  // ---- 3D_DS_Q96: star(4) centered on store_sales.
  {
    QuerySpec q;
    q.name = "3D_DS_Q96";
    q.tables = {"store_sales", "household_demographics", "time_dim", "store"};
    q.joins = {J("store_sales", "ss_hdemo_sk", "household_demographics",
                 "hd_demo_sk"),
               J("store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk"),
               J("store_sales", "ss_store_sk", "store", "s_store_sk")};
    q.error_dims = {
        JoinDim(0, tpcds, "household_demographics", "ss_hdemo_sk=hd_demo_sk"),
        JoinDim(1, tpcds, "time_dim", "ss_sold_time_sk=t_time_sk"),
        JoinDim(2, tpcds, "store", "ss_store_sk=s_store_sk", 2)};
    spaces.push_back({q.name, "DS", std::move(q)});
  }

  // ---- 4D_DS_Q7: star(5) centered on store_sales.
  {
    QuerySpec q;
    q.name = "4D_DS_Q7";
    q.tables = {"store_sales", "item", "customer_demographics", "date_dim",
                "promotion"};
    q.joins = {J("store_sales", "ss_item_sk", "item", "i_item_sk"),
               J("store_sales", "ss_cdemo_sk", "customer_demographics",
                 "cd_demo_sk"),
               J("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
               J("store_sales", "ss_promo_sk", "promotion", "p_promo_sk")};
    q.error_dims = {
        JoinDim(0, tpcds, "item", "ss_item_sk=i_item_sk"),
        JoinDim(1, tpcds, "customer_demographics", "ss_cdemo_sk=cd_demo_sk"),
        JoinDim(2, tpcds, "date_dim", "ss_sold_date_sk=d_date_sk"),
        JoinDim(3, tpcds, "promotion", "ss_promo_sk=p_promo_sk", 2)};
    spaces.push_back({q.name, "DS", std::move(q)});
  }

  // ---- 4D_DS_Q26: star(5) centered on catalog_sales.
  {
    QuerySpec q;
    q.name = "4D_DS_Q26";
    q.tables = {"catalog_sales", "item", "customer_demographics", "date_dim",
                "promotion"};
    q.joins = {J("catalog_sales", "cs_item_sk", "item", "i_item_sk"),
               J("catalog_sales", "cs_bill_cdemo_sk", "customer_demographics",
                 "cd_demo_sk"),
               J("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"),
               J("catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk")};
    q.error_dims = {
        JoinDim(0, tpcds, "item", "cs_item_sk=i_item_sk"),
        JoinDim(1, tpcds, "customer_demographics",
                "cs_bill_cdemo_sk=cd_demo_sk"),
        JoinDim(2, tpcds, "date_dim", "cs_sold_date_sk=d_date_sk"),
        JoinDim(3, tpcds, "promotion", "cs_promo_sk=p_promo_sk", 2)};
    spaces.push_back({q.name, "DS", std::move(q)});
  }

  // ---- 4D_DS_Q91: branch(7) over catalog_returns and the customer tail.
  {
    QuerySpec q;
    q.name = "4D_DS_Q91";
    q.tables = {"call_center", "catalog_returns", "date_dim", "customer",
                "customer_demographics", "household_demographics",
                "customer_address"};
    q.joins = {J("catalog_returns", "cr_call_center_sk", "call_center",
                 "cc_call_center_sk"),
               J("catalog_returns", "cr_returned_date_sk", "date_dim",
                 "d_date_sk"),
               J("catalog_returns", "cr_returning_customer_sk", "customer",
                 "c_customer_sk"),
               J("customer", "c_current_cdemo_sk", "customer_demographics",
                 "cd_demo_sk"),
               J("customer", "c_current_hdemo_sk", "household_demographics",
                 "hd_demo_sk"),
               J("customer", "c_current_addr_sk", "customer_address",
                 "ca_address_sk")};
    q.error_dims = {
        JoinDim(1, tpcds, "date_dim", "cr_returned_date_sk=d_date_sk"),
        JoinDim(2, tpcds, "customer",
                "cr_returning_customer_sk=c_customer_sk"),
        JoinDim(3, tpcds, "customer_demographics",
                "c_current_cdemo_sk=cd_demo_sk"),
        JoinDim(5, tpcds, "customer_address",
                "c_current_addr_sk=ca_address_sk")};
    spaces.push_back({q.name, "DS", std::move(q)});
  }

  // ---- 5D_DS_Q19: branch(6) centered on store_sales with the customer
  // tail; all five joins error-prone.
  {
    QuerySpec q;
    q.name = "5D_DS_Q19";
    q.tables = {"store_sales", "date_dim", "item", "customer",
                "customer_address", "store"};
    q.joins = {J("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
               J("store_sales", "ss_item_sk", "item", "i_item_sk"),
               J("store_sales", "ss_customer_sk", "customer",
                 "c_customer_sk"),
               J("customer", "c_current_addr_sk", "customer_address",
                 "ca_address_sk"),
               J("store_sales", "ss_store_sk", "store", "s_store_sk")};
    q.error_dims = {
        JoinDim(0, tpcds, "date_dim", "ss_sold_date_sk=d_date_sk", 4),
        JoinDim(1, tpcds, "item", "ss_item_sk=i_item_sk", 4),
        JoinDim(2, tpcds, "customer", "ss_customer_sk=c_customer_sk", 4),
        JoinDim(3, tpcds, "customer_address",
                "c_current_addr_sk=ca_address_sk"),
        JoinDim(4, tpcds, "store", "ss_store_sk=s_store_sk", 2)};
    spaces.push_back({q.name, "DS", std::move(q)});
  }

  return spaces;
}

NamedSpace GetSpace(const std::string& name, const Catalog& tpch,
                    const Catalog& tpcds) {
  std::vector<NamedSpace> all = BenchmarkSpaces(tpch, tpcds);
  for (auto& s : all) {
    if (s.name == name) return s;
  }
  // Fail loudly even in NDEBUG builds: a silent empty space leads to
  // undefined behavior downstream, and the typo'd name deserves a message.
  std::fprintf(stderr, "GetSpace: unknown error space '%s'; valid names:",
               name.c_str());
  for (const auto& s : all) std::fprintf(stderr, " %s", s.name.c_str());
  std::fprintf(stderr, "\n");
  std::abort();
}

QuerySpec Make2DHQ8a(const Catalog& tpch) {
  (void)tpch;
  QuerySpec q;
  q.name = "2D_H_Q8a";
  q.tables = {"part", "lineitem", "orders"};
  q.joins = {J("part", "p_partkey", "lineitem", "l_partkey"),
             J("lineitem", "l_orderkey", "orders", "o_orderkey")};
  q.filters = {F("part", "p_retailprice"), F("orders", "o_totalprice")};
  q.error_dims = {SelDim(0, "p_retailprice", 1e-3, 1.0),
                  SelDim(1, "o_totalprice", 1e-3, 1.0)};
  return q;
}

QuerySpec Make3DHQ5b(const Catalog& tpch) {
  (void)tpch;
  QuerySpec q;
  q.name = "3D_H_Q5b";
  q.tables = {"region", "nation", "supplier", "lineitem", "orders",
              "customer"};
  q.joins = {J("region", "r_regionkey", "nation", "n_regionkey"),
             J("nation", "n_nationkey", "supplier", "s_nationkey"),
             J("supplier", "s_suppkey", "lineitem", "l_suppkey"),
             J("lineitem", "l_orderkey", "orders", "o_orderkey"),
             J("orders", "o_custkey", "customer", "c_custkey")};
  q.filters = {F("supplier", "s_acctbal"), F("orders", "o_totalprice"),
               F("customer", "c_acctbal")};
  q.error_dims = {SelDim(0, "s_acctbal", 1e-3), SelDim(1, "o_totalprice", 1e-3),
                  SelDim(2, "c_acctbal", 1e-3)};
  return q;
}

QuerySpec Make4DHQ8b(const Catalog& tpch) {
  (void)tpch;
  QuerySpec q;
  q.name = "4D_H_Q8b";
  q.tables = {"part", "lineitem", "supplier", "orders", "customer", "nation",
              "region", "partsupp"};
  q.joins = {J("part", "p_partkey", "lineitem", "l_partkey"),
             J("lineitem", "l_suppkey", "supplier", "s_suppkey"),
             J("lineitem", "l_orderkey", "orders", "o_orderkey"),
             J("orders", "o_custkey", "customer", "c_custkey"),
             J("customer", "c_nationkey", "nation", "n_nationkey"),
             J("nation", "n_regionkey", "region", "r_regionkey"),
             J("partsupp", "ps_partkey", "part", "p_partkey")};
  q.filters = {F("part", "p_retailprice"), F("supplier", "s_acctbal"),
               F("orders", "o_totalprice"), F("customer", "c_acctbal")};
  q.error_dims = {SelDim(0, "p_retailprice", 1e-3),
                  SelDim(1, "s_acctbal", 1e-3),
                  SelDim(2, "o_totalprice", 1e-3),
                  SelDim(3, "c_acctbal", 1e-3)};
  return q;
}

std::vector<double> BindSelectionConstants(QuerySpec* query,
                                           const Catalog& catalog,
                                           const std::vector<double>& target) {
  assert(target.size() == query->error_dims.size());
  std::vector<double> achieved(target.size(), 0.0);
  for (size_t d = 0; d < target.size(); ++d) {
    const ErrorDimension& dim = query->error_dims[d];
    assert(dim.kind == DimKind::kSelection &&
           "can only bind selection dimensions");
    SelectionPredicate& f = query->filters[dim.predicate_index];
    const TableInfo& t = catalog.GetTable(f.table);
    const Histogram& hist =
        t.columns[t.ColumnIndex(f.column)].stats.histogram;
    assert(!hist.empty() && "histogram required; sync catalog from data");
    switch (f.op) {
      case CompareOp::kLess:
      case CompareOp::kLessEqual:
        f.constant = hist.Quantile(target[d]);
        achieved[d] = f.op == CompareOp::kLess
                          ? hist.SelectivityLess(f.constant)
                          : hist.SelectivityLessEqual(f.constant);
        break;
      case CompareOp::kGreater:
      case CompareOp::kGreaterEqual:
        f.constant = hist.Quantile(1.0 - target[d]);
        achieved[d] = f.op == CompareOp::kGreater
                          ? 1.0 - hist.SelectivityLessEqual(f.constant)
                          : 1.0 - hist.SelectivityLess(f.constant);
        break;
      case CompareOp::kEqual:
        assert(false && "equality dims not supported by binding");
        break;
    }
  }
  return achieved;
}

}  // namespace bouquet

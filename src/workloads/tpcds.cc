#include "workloads/tpcds.h"

#include <algorithm>

namespace bouquet {

namespace {

TableInfo Meta(const std::string& name, double rows, double width,
               const std::vector<std::pair<std::string, double>>& cols) {
  TableInfo t;
  t.name = name;
  t.stats.row_count = rows;
  t.stats.row_width_bytes = width;
  for (const auto& [cname, ndv] : cols) {
    ColumnInfo ci;
    ci.name = cname;
    ci.stats.ndv = ndv;
    ci.stats.min_value = 0;
    ci.stats.max_value = static_cast<int64_t>(ndv);
    ci.has_index = true;
    t.columns.push_back(std::move(ci));
  }
  return t;
}

}  // namespace

Catalog MakeTpcdsCatalog(double sf) {
  Catalog c;
  const double fact = sf / 100.0;  // fact tables scale linearly from SF100
  const double store_sales = 288000000 * fact;
  const double catalog_sales = 144000000 * fact;
  const double catalog_returns = 14400000 * fact;
  // Dimension tables are (approximately) scale-invariant above SF 100.
  const double item = 204000;
  const double customer = 2000000;
  const double customer_address = 1000000;
  const double customer_demographics = 1920800;
  const double household_demographics = 7200;
  const double date_dim = 73049;
  const double time_dim = 86400;
  const double store = 402;
  const double promotion = 1000;
  const double call_center = 30;

  c.AddTable(Meta("date_dim", date_dim, 140,
                  {{"d_date_sk", date_dim},
                   {"d_year", 100},
                   {"d_moy", 12}}));
  c.AddTable(Meta("time_dim", time_dim, 60,
                  {{"t_time_sk", time_dim}, {"t_hour", 24}}));
  c.AddTable(Meta("item", item, 280,
                  {{"i_item_sk", item},
                   {"i_category", 10},
                   {"i_manufact_id", 1000},
                   {"i_current_price", 300}}));
  c.AddTable(Meta("customer", customer, 132,
                  {{"c_customer_sk", customer},
                   {"c_current_addr_sk", customer_address},
                   {"c_current_cdemo_sk", customer_demographics},
                   {"c_current_hdemo_sk", household_demographics},
                   {"c_birth_year", 100}}));
  c.AddTable(Meta("customer_address", customer_address, 110,
                  {{"ca_address_sk", customer_address},
                   {"ca_state", 52},
                   {"ca_gmt_offset", 24}}));
  c.AddTable(Meta("customer_demographics", customer_demographics, 42,
                  {{"cd_demo_sk", customer_demographics},
                   {"cd_gender", 2},
                   {"cd_education_status", 7}}));
  c.AddTable(Meta("household_demographics", household_demographics, 21,
                  {{"hd_demo_sk", household_demographics},
                   {"hd_dep_count", 10}}));
  c.AddTable(Meta("store", store, 263,
                  {{"s_store_sk", store}, {"s_state", 52}}));
  c.AddTable(Meta("promotion", promotion, 124,
                  {{"p_promo_sk", promotion}, {"p_channel_email", 2}}));
  c.AddTable(Meta("call_center", call_center, 305,
                  {{"cc_call_center_sk", call_center}, {"cc_class", 3}}));
  c.AddTable(Meta("store_sales", store_sales, 100,
                  {{"ss_sold_date_sk", date_dim},
                   {"ss_sold_time_sk", time_dim},
                   {"ss_item_sk", item},
                   {"ss_customer_sk", customer},
                   {"ss_cdemo_sk", customer_demographics},
                   {"ss_hdemo_sk", household_demographics},
                   {"ss_store_sk", store},
                   {"ss_promo_sk", promotion},
                   {"ss_sales_price", 100000}}));
  c.AddTable(Meta("catalog_sales", catalog_sales, 144,
                  {{"cs_sold_date_sk", date_dim},
                   {"cs_item_sk", item},
                   {"cs_bill_customer_sk", customer},
                   {"cs_ship_customer_sk", customer},
                   {"cs_bill_cdemo_sk", customer_demographics},
                   {"cs_promo_sk", promotion},
                   {"cs_sales_price", 100000}}));
  c.AddTable(Meta("catalog_returns", catalog_returns, 132,
                  {{"cr_returned_date_sk", date_dim},
                   {"cr_returning_customer_sk", customer},
                   {"cr_call_center_sk", call_center},
                   {"cr_return_amount", 100000}}));
  return c;
}

}  // namespace bouquet

// TPC-DS substrate: catalog metadata at benchmark scale.
//
// Only metadata is needed — the TPC-DS error spaces in the paper's
// evaluation are exercised purely through optimizer cost surfaces (Figures
// 14-18). Row counts follow the official TPC-DS scaling at SF = 100 (the
// paper's 100GB configuration) with fact tables scaling linearly.

#ifndef BOUQUET_WORKLOADS_TPCDS_H_
#define BOUQUET_WORKLOADS_TPCDS_H_

#include "catalog/catalog.h"

namespace bouquet {

/// TPC-DS catalog metadata at the given scale factor (100 == paper setup).
Catalog MakeTpcdsCatalog(double scale_factor = 100.0);

}  // namespace bouquet

#endif  // BOUQUET_WORKLOADS_TPCDS_H_

// The benchmark error spaces of the paper's evaluation (Table 2) plus the
// 1D example query EQ (Figure 1), the real-execution query 2D_H_Q8a
// (Section 6.7), and the selection-dimension variants 3D_H_Q5b / 4D_H_Q8b
// used on the commercial engine (Section 6.8).
//
// The spaces are structural replicas: join-graph geometry (chain / star /
// branch), relation count, and error-dimension count/kind match the paper's
// Table 2; join dimension ranges are capped at the PK-FK schematic limit
// (reciprocal of the PK relation's cardinality, Section 4.1).

#ifndef BOUQUET_WORKLOADS_SPACES_H_
#define BOUQUET_WORKLOADS_SPACES_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/query_spec.h"

namespace bouquet {

/// A named workload error space.
struct NamedSpace {
  std::string name;       ///< e.g. "3D_H_Q5"
  std::string benchmark;  ///< "H" or "DS"
  QuerySpec query;
};

/// The example query EQ of Figure 1: part x lineitem x orders with an
/// error-prone selection on p_retailprice (1D).
QuerySpec MakeEqQuery(const Catalog& tpch);

/// All ten multi-dimensional spaces of Table 2. `tpch` and `tpcds` supply
/// the PK cardinalities for the join-dimension caps.
std::vector<NamedSpace> BenchmarkSpaces(const Catalog& tpch,
                                        const Catalog& tpcds);

/// Looks up one space by name; asserts existence.
NamedSpace GetSpace(const std::string& name, const Catalog& tpch,
                    const Catalog& tpcds);

/// 2D selection-dimension query on the TPC-H schema for the real-execution
/// experiment (Table 3). Constants are unset; callers bind them via
/// BindSelectionConstants against generated data.
QuerySpec Make2DHQ8a(const Catalog& tpch);

/// Selection-dimension variants evaluated on the "commercial" cost model.
QuerySpec Make3DHQ5b(const Catalog& tpch);
QuerySpec Make4DHQ8b(const Catalog& tpch);

/// Binds each error selection predicate's constant so that its actual
/// selectivity equals `target[d]`, using the catalog histograms (which must
/// have been synced from real data). Returns the achieved selectivities.
std::vector<double> BindSelectionConstants(QuerySpec* query,
                                           const Catalog& catalog,
                                           const std::vector<double>& target);

}  // namespace bouquet

#endif  // BOUQUET_WORKLOADS_SPACES_H_

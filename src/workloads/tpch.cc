#include "workloads/tpch.h"

#include <cmath>

#include "common/rng.h"
#include "storage/datagen.h"

namespace bouquet {

namespace {

TableInfo Meta(const std::string& name, double rows, double width,
               const std::vector<std::pair<std::string, double>>& cols) {
  TableInfo t;
  t.name = name;
  t.stats.row_count = rows;
  t.stats.row_width_bytes = width;
  for (const auto& [cname, ndv] : cols) {
    ColumnInfo ci;
    ci.name = cname;
    ci.stats.ndv = ndv;
    ci.stats.min_value = 0;
    ci.stats.max_value = static_cast<int64_t>(ndv);
    ci.has_index = true;
    t.columns.push_back(std::move(ci));
  }
  return t;
}

}  // namespace

Catalog MakeTpchCatalog(double sf) {
  Catalog c;
  const double region = 5;
  const double nation = 25;
  const double supplier = 10000 * sf;
  const double customer = 150000 * sf;
  const double part = 200000 * sf;
  const double orders = 1500000 * sf;
  const double lineitem = 6000000 * sf;

  c.AddTable(Meta("region", region, 120,
                  {{"r_regionkey", region}, {"r_name", region}}));
  c.AddTable(Meta("nation", nation, 128,
                  {{"n_nationkey", nation},
                   {"n_regionkey", region},
                   {"n_name", nation}}));
  c.AddTable(Meta("supplier", supplier, 144,
                  {{"s_suppkey", supplier},
                   {"s_nationkey", nation},
                   {"s_acctbal", std::min(supplier, 100000.0)}}));
  c.AddTable(Meta("customer", customer, 160,
                  {{"c_custkey", customer},
                   {"c_nationkey", nation},
                   {"c_acctbal", std::min(customer, 100000.0)},
                   {"c_mktsegment", 5}}));
  c.AddTable(Meta("part", part, 156,
                  {{"p_partkey", part},
                   {"p_retailprice", std::min(part, 100000.0)},
                   {"p_size", 50},
                   {"p_brand", 25},
                   {"p_container", 40}}));
  c.AddTable(Meta("orders", orders, 128,
                  {{"o_orderkey", orders},
                   {"o_custkey", customer},
                   {"o_orderdate", 2406},
                   {"o_totalprice", std::min(orders, 1000000.0)}}));
  c.AddTable(Meta("partsupp", 800000 * sf, 144,
                  {{"ps_partkey", part},
                   {"ps_suppkey", supplier},
                   {"ps_supplycost", std::min(800000 * sf, 100000.0)}}));
  c.AddTable(Meta("lineitem", lineitem, 112,
                  {{"l_orderkey", orders},
                   {"l_partkey", part},
                   {"l_suppkey", supplier},
                   {"l_quantity", 50},
                   {"l_extendedprice", std::min(lineitem, 1000000.0)},
                   {"l_shipdate", 2526},
                   {"l_discount", 11}}));
  return c;
}

void MakeTpchDatabase(Database* db, const TpchDataOptions& options) {
  Rng rng(options.seed);
  const double ms = options.mini_scale;
  const int64_t n_supplier = std::max<int64_t>(10, llround(100 * ms));
  const int64_t n_customer = std::max<int64_t>(10, llround(1500 * ms));
  const int64_t n_part = std::max<int64_t>(10, llround(2000 * ms));
  const int64_t n_orders = std::max<int64_t>(20, llround(15000 * ms));
  const int64_t n_lineitem = std::max<int64_t>(50, llround(60000 * ms));

  {
    DataTable region("region", {"r_regionkey", "r_name"});
    region.mutable_column(0) = datagen::Sequential(5);
    region.mutable_column(1) = datagen::Sequential(5);
    region.FinalizeBulkLoad();
    db->AddTable(std::move(region));
  }
  {
    DataTable nation("nation", {"n_nationkey", "n_regionkey", "n_name"});
    nation.mutable_column(0) = datagen::Sequential(25);
    nation.mutable_column(1) = datagen::Uniform(&rng, 25, 1, 5);
    nation.mutable_column(2) = datagen::Sequential(25);
    nation.FinalizeBulkLoad();
    db->AddTable(std::move(nation));
  }
  {
    DataTable supplier("supplier", {"s_suppkey", "s_nationkey", "s_acctbal"});
    supplier.mutable_column(0) = datagen::Sequential(n_supplier);
    supplier.mutable_column(1) = datagen::Uniform(&rng, n_supplier, 1, 25);
    supplier.mutable_column(2) =
        datagen::Uniform(&rng, n_supplier, -99999, 999999);
    supplier.FinalizeBulkLoad();
    db->AddTable(std::move(supplier));
  }
  {
    DataTable customer("customer",
                       {"c_custkey", "c_nationkey", "c_acctbal",
                        "c_mktsegment"});
    customer.mutable_column(0) = datagen::Sequential(n_customer);
    customer.mutable_column(1) = datagen::Uniform(&rng, n_customer, 1, 25);
    customer.mutable_column(2) =
        datagen::Uniform(&rng, n_customer, -99999, 999999);
    customer.mutable_column(3) = datagen::Uniform(&rng, n_customer, 1, 5);
    customer.FinalizeBulkLoad();
    db->AddTable(std::move(customer));
  }
  {
    DataTable part("part", {"p_partkey", "p_retailprice", "p_size",
                            "p_brand", "p_container"});
    part.mutable_column(0) = datagen::Sequential(n_part);
    part.mutable_column(1) = datagen::Uniform(&rng, n_part, 90000, 2098799);
    part.mutable_column(2) = datagen::Uniform(&rng, n_part, 1, 50);
    part.mutable_column(3) = datagen::Uniform(&rng, n_part, 1, 25);
    part.mutable_column(4) = datagen::Uniform(&rng, n_part, 1, 40);
    part.FinalizeBulkLoad();
    db->AddTable(std::move(part));
  }
  const std::vector<int64_t> custkeys = datagen::Sequential(n_customer);
  {
    DataTable orders("orders", {"o_orderkey", "o_custkey", "o_orderdate",
                                "o_totalprice"});
    orders.mutable_column(0) = datagen::Sequential(n_orders);
    orders.mutable_column(1) =
        datagen::ForeignKey(&rng, n_orders, custkeys, 1.0);
    orders.mutable_column(2) = datagen::Uniform(&rng, n_orders, 1, 2406);
    orders.mutable_column(3) =
        datagen::Uniform(&rng, n_orders, 85000, 55550000);
    orders.FinalizeBulkLoad();
    db->AddTable(std::move(orders));
  }
  {
    const std::vector<int64_t> orderkeys = datagen::Sequential(n_orders);
    const std::vector<int64_t> partkeys = datagen::Sequential(n_part);
    const std::vector<int64_t> suppkeys = datagen::Sequential(n_supplier);
    DataTable lineitem("lineitem",
                       {"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
                        "l_extendedprice", "l_shipdate", "l_discount"});
    lineitem.mutable_column(0) =
        datagen::ForeignKey(&rng, n_lineitem, orderkeys, 1.0);
    lineitem.mutable_column(1) = datagen::ForeignKey(
        &rng, n_lineitem, partkeys, options.part_match_fraction);
    lineitem.mutable_column(2) =
        datagen::ForeignKey(&rng, n_lineitem, suppkeys, 1.0);
    lineitem.mutable_column(3) = datagen::Uniform(&rng, n_lineitem, 1, 50);
    lineitem.mutable_column(4) =
        datagen::Uniform(&rng, n_lineitem, 90000, 10500000);
    lineitem.mutable_column(5) = datagen::Uniform(&rng, n_lineitem, 1, 2526);
    lineitem.mutable_column(6) = datagen::Uniform(&rng, n_lineitem, 0, 10);
    lineitem.FinalizeBulkLoad();
    db->AddTable(std::move(lineitem));
  }
}

void SyncTpchCatalog(const Database& db, Catalog* catalog) {
  const std::vector<std::pair<std::string, double>> widths = {
      {"region", 120},   {"nation", 128},  {"supplier", 144},
      {"customer", 160}, {"part", 156},    {"orders", 128},
      {"lineitem", 112}};
  for (const auto& [name, width] : widths) {
    if (db.HasTable(name)) {
      db.table(name).SyncCatalog(catalog, width, /*indexed=*/true,
                                 /*histogram_buckets=*/128);
    }
  }
}

}  // namespace bouquet

// TPC-H substrate: catalog metadata at benchmark scale, and scaled-down
// synthetic data generation for the real-execution experiments.
//
// The optimizer-cost experiments (Figures 14-18) need only metadata — row
// counts, widths, NDVs — which MakeTpchCatalog supplies at any scale factor
// (1.0 == the paper's 1GB configuration). The wall-clock experiment
// (Table 3) additionally needs actual rows, generated deterministically by
// MakeTpchDatabase at a small scale so that execution runs in seconds; the
// catalog is then re-synced from the generated data so statistics are exact.

#ifndef BOUQUET_WORKLOADS_TPCH_H_
#define BOUQUET_WORKLOADS_TPCH_H_

#include "catalog/catalog.h"
#include "storage/index.h"

namespace bouquet {

/// TPC-H catalog metadata (tables/columns/stats) at the given scale factor.
/// All columns referenced by the workload queries are indexed ("hard-nut"
/// physical schema of Section 6).
Catalog MakeTpchCatalog(double scale_factor = 1.0);

/// Options for synthetic TPC-H data generation.
struct TpchDataOptions {
  uint64_t seed = 42;
  /// Mini scale factor: 1.0 produces lineitem=60k, orders=15k, part=2k,
  /// customer=1.5k, supplier=100 (i.e. ~TPC-H SF 0.01).
  double mini_scale = 1.0;
  /// Fraction of lineitem rows whose l_partkey matches some part row
  /// (controls the part-lineitem join selectivity in tests).
  double part_match_fraction = 1.0;
};

/// Generates the TPC-H tables region, nation, supplier, customer, part,
/// orders, lineitem into `db`.
void MakeTpchDatabase(Database* db, const TpchDataOptions& options = {});

/// Registers stats computed from generated data into `catalog` (exact
/// metadata for the error-free predicates).
void SyncTpchCatalog(const Database& db, Catalog* catalog);

}  // namespace bouquet

#endif  // BOUQUET_WORKLOADS_TPCH_H_

// Persistence for compiled bouquets.
//
// The paper's deployment story (Section 4.2) is "canned", form-based
// queries whose POSP exploration is precomputed offline. That only works if
// the compile-time artifacts survive process restarts, so this module
// serializes plan diagrams and bouquets to a line-oriented text format and
// loads them back. Plans round-trip structurally (operator tree, predicate
// indexes, presorted flags); costs and grid geometry are restored exactly
// (hex float encoding).
//
// The format is versioned and self-describing enough for forward debugging
// (one record per line, space-separated fields, '#' comments ignored).

#ifndef BOUQUET_BOUQUET_SERIALIZE_H_
#define BOUQUET_BOUQUET_SERIALIZE_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "bouquet/bouquet.h"
#include "common/status.h"
#include "ess/plan_diagram.h"

namespace bouquet {

/// A loaded compile-time bundle: the grid is owned here because the
/// serialized diagram references it.
struct LoadedBouquet {
  std::unique_ptr<EssGrid> grid;
  std::unique_ptr<PlanDiagram> diagram;
  std::unique_ptr<PlanBouquet> bouquet;
};

/// Writes the diagram + bouquet (which must index the same grid) to a
/// stream / file.
Status SaveBouquet(const PlanDiagram& diagram, const PlanBouquet& bouquet,
                   std::ostream& out);
Status SaveBouquetToFile(const PlanDiagram& diagram,
                         const PlanBouquet& bouquet,
                         const std::string& path);

/// Loads a bundle previously written by SaveBouquet. `query` must be the
/// same query the bundle was compiled for (dimension count is validated;
/// predicate indexes are trusted).
Result<LoadedBouquet> LoadBouquet(const QuerySpec& query, std::istream& in);
Result<LoadedBouquet> LoadBouquetFromFile(const QuerySpec& query,
                                          const std::string& path);

}  // namespace bouquet

#endif  // BOUQUET_BOUQUET_SERIALIZE_H_

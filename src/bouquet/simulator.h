// Cost-model-driven simulation of bouquet execution (run-time phase).
//
// The paper's headline metrics (MSO/ASO/MH, Figures 14-17) are computed over
// optimizer cost surfaces, exactly as done here: a partial execution of plan
// P with budget b at true location q_a completes iff cost_P(q_a) <= b, and
// otherwise consumes the full budget. The optimized variant additionally
// tracks the running location q_run, prunes plans outside its first quadrant,
// selects executions via the AxisPlans heuristic, models spill-based
// selectivity learning, and jumps contours early (Sections 5.1-5.3).
//
// Consecutive re-executions of the same plan resume rather than restart
// (matching the paper's 1D walkthrough where P1 runs continuously through
// IC1..IC4); disable via Options::continue_same_plan for the strictly
// restart-based accounting of the Theorem 3 analysis.

#ifndef BOUQUET_BOUQUET_SIMULATOR_H_
#define BOUQUET_BOUQUET_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "bouquet/bouquet.h"
#include "ess/plan_diagram.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"

namespace bouquet {

/// One cost-limited plan execution in a simulated run.
struct SimStep {
  int contour = 0;       ///< contour index (0-based)
  int plan_id = -1;      ///< diagram plan id
  double budget = 0.0;   ///< cost budget of this execution
  double charged = 0.0;  ///< cost actually charged
  bool completed = false;
  int learned_dim = -1;  ///< dimension spilled/learned, -1 for generic
};

/// Outcome of one simulated bouquet run.
struct SimResult {
  bool completed = false;
  bool fallback_used = false;  ///< guarantee violated (tests assert false)
  double total_cost = 0.0;
  int num_executions = 0;
  int final_plan = -1;
  int final_contour = -1;
  /// Contour the ladder actually started at (0 = cold; > 0 = warm start
  /// skipped that many cheap contours).
  int start_contour = 0;
  std::vector<SimStep> steps;
  /// Optimized runs only: q_run after each step (the running selectivity
  /// location of Section 5.2); empty for basic runs. The first-quadrant
  /// invariant requires every entry to be dominated by q_a.
  std::vector<GridPoint> qrun_trace;
};

/// Tuning knobs for the simulator.
struct SimOptions {
  bool continue_same_plan = true;
  /// Section 3.4: deterministic per-(plan,point) cost modeling error in
  /// [1/(1+delta), (1+delta)] applied to "actual" execution costs.
  double model_error_delta = 0.0;
  /// Cost-equivalence clustering width of the AxisPlans heuristic.
  double cost_group_width = 0.2;
};

/// Simulator bound to a bouquet + diagram. Precomputes the cost surface of
/// every bouquet plan over the full grid, so individual runs are O(grid-free)
/// lookups.
///
/// Thread-safety: construction uses the passed QueryOptimizer (not
/// thread-safe) and is single-threaded; afterwards the optimizer is not
/// retained and all state is immutable, so the const Run*/cost accessors may
/// be called from any number of threads concurrently (this is what lets
/// BouquetService share one simulator per cached template).
class BouquetSimulator {
 public:
  using Options = SimOptions;

  BouquetSimulator(const PlanBouquet& bouquet, const PlanDiagram& diagram,
                   QueryOptimizer* opt, Options options = {});

  /// Basic algorithm (Figure 7): every plan on every contour, in order.
  SimResult RunBasic(uint64_t qa) const;

  /// Optimized algorithm (Figure 13): q_run tracking + AxisPlans + spilling
  /// + early contour jumps.
  SimResult RunOptimized(uint64_t qa) const;

  /// Degraded-mode fast path for an overloaded server: one execution of the
  /// precomputed safe plan — the bouquet plan minimizing worst-case cost
  /// over the whole ESS — at its precomputed budget. Always completes, never
  /// discovers: total cost equals the safe plan's cost at q_a, bounded by
  /// safe_budget() regardless of where q_a actually lies. Trades the
  /// MSO-optimal discovery ladder for a single bounded execution.
  SimResult RunSafe(uint64_t qa) const;

  /// The precomputed safe plan (diagram plan id) and its worst-case cost
  /// bound over the ESS.
  int safe_plan() const { return safe_plan_; }
  double safe_budget() const { return safe_budget_; }

  /// Section 8 extension: when the optimizer's estimate is known to be an
  /// *under*-estimate of the true location, it seeds q_run and the starting
  /// contour, skipping the cheap discovery prefix. The caller must
  /// guarantee seed <= q_a componentwise; a violating seed voids the
  /// first-quadrant invariant (and hence the guarantee).
  SimResult RunOptimizedSeeded(uint64_t qa, const GridPoint& seed) const;

  /// Feedback-driven warm start (src/feedback/): the ladder begins at
  /// `start_contour` (clamped into [0, contours)) with q_run still at the
  /// dimension lows, so plan pruning and discovery are untouched — only the
  /// cheap prefix of the ladder is skipped. Completion is unconditional
  /// (every location inside a contour's region is dominated by one of its
  /// frontier points; see contours.h); the Theorem-3 MSO bound additionally
  /// holds whenever the feedback seed that chose `start_contour` is
  /// dominated by q_a (see feedback/warm_start.h for the clamp argument).
  SimResult RunOptimizedWarm(uint64_t qa, int start_contour) const;

  /// Sub-optimality of a run: total cost / actual optimal cost at q_a.
  double SubOpt(const SimResult& result, uint64_t qa) const;

  /// Replays a finished run into the tracer as a "sim.run" span with one
  /// "sim.step" child per SimStep (null tracer = no-op). The simulator has
  /// no wall clock of its own, so durations are zero; the value is the
  /// structure: budgets, charges, learned dims, and the final SubOpt,
  /// nested under `parent` (e.g. the service's request span).
  void EmitTrace(const SimResult& result, uint64_t qa, obs::Tracer* tracer,
                 const obs::Span* parent = nullptr) const;

  /// Estimated cost of a bouquet plan at a grid point.
  double EstimatedCost(int plan_id, uint64_t point) const;
  /// "Actual" cost: estimate distorted by the modeling-error factor.
  double ActualCost(int plan_id, uint64_t point) const;
  /// Actual optimal cost at a point (PIC distorted consistently).
  double ActualOptimal(uint64_t point) const;

  const PlanBouquet& bouquet() const { return *bouquet_; }
  const PlanDiagram& diagram() const { return *diagram_; }

 private:
  int DenseIndex(int plan_id) const;
  double ModelErrorFactor(int plan_id, uint64_t point) const;
  SimResult RunOptimizedFrom(uint64_t qa, GridPoint qrun,
                             size_t start_contour) const;
  // The AxisPlans selection heuristic; returns a diagram plan id from
  // `remaining`, preferring plans on the contour's axis intersections wrt
  // q_run, cheapest cost group, deepest error node.
  int PickPlan(const BouquetContour& contour, const GridPoint& qrun,
               const std::vector<int>& remaining,
               const std::vector<bool>& dim_learned) const;

  const PlanBouquet* bouquet_;
  const PlanDiagram* diagram_;
  Options options_;
  int safe_plan_ = -1;         // argmin over bouquet plans of max actual cost
  double safe_budget_ = 0.0;   // that minmax cost (worst-case bound)
  std::vector<int> dense_of_plan_;           // diagram plan id -> dense idx
  std::vector<int> plan_of_dense_;           // dense idx -> diagram plan id
  std::vector<std::vector<double>> est_cost_;  // [dense][point]
  std::vector<std::vector<int>> dim_depth_;    // [dense][dim] error-node depth
};

}  // namespace bouquet

#endif  // BOUQUET_BOUQUET_SIMULATOR_H_

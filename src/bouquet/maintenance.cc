#include "bouquet/maintenance.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace bouquet {

PlanDiagram MaintainDiagram(const PlanDiagram& old_diagram,
                            const QuerySpec& query,
                            const Catalog& new_catalog, CostParams params,
                            int validation_stride, MaintenanceStats* stats) {
  const EssGrid& grid = old_diagram.grid();
  const uint64_t n = grid.num_points();
  QueryOptimizer opt(query, new_catalog, params);
  MaintenanceStats local;

  PlanDiagram fresh(&grid);
  // Intern the old plan set up front so ids are stable.
  std::vector<int> old_to_fresh(old_diagram.num_plans());
  for (int pid = 0; pid < old_diagram.num_plans(); ++pid) {
    old_to_fresh[pid] = fresh.InternPlan(old_diagram.plan(pid));
  }

  // Pass 1: per point, recost only the *local* candidates — the point's own
  // old plan and the old plans of its +-1 grid neighbors. Catalog changes
  // shift plan-region boundaries locally, so the local candidate set covers
  // the new optimum except where genuinely new plans appear (pass 2).
  std::vector<double> best_cost(n, std::numeric_limits<double>::infinity());
  std::vector<int> best_plan(n, -1);
  const int dims = grid.dims();
  assert(dims <= 16 && "local candidate buffer sized for <= 16 dims");
  grid.ForEach([&](uint64_t linear, const GridPoint& p) {
    const DimVector sel = grid.SelectivityAt(linear);
    int candidates[1 + 2 * 16];
    int num_candidates = 0;
    candidates[num_candidates++] = old_diagram.plan_at(linear);
    for (int d = 0; d < dims; ++d) {
      for (int delta : {-1, +1}) {
        const int ni = p[d] + delta;
        if (ni < 0 || ni >= grid.resolution(d)) continue;
        const int cand =
            old_diagram.plan_at(grid.LinearWithDim(linear, d, ni));
        bool dup = false;
        for (int k = 0; k < num_candidates; ++k) {
          if (candidates[k] == cand) dup = true;
        }
        if (!dup) candidates[num_candidates++] = cand;
      }
    }
    for (int k = 0; k < num_candidates; ++k) {
      const int fresh_id = old_to_fresh[candidates[k]];
      const double c = opt.CostPlanAt(*fresh.plan(fresh_id).root, sel);
      ++local.recost_evaluations;
      if (c < best_cost[linear]) {
        best_cost[linear] = c;
        best_plan[linear] = fresh_id;
      }
    }
  });


  // Pass 2: sparse validation with fresh optimizations; adopt new plans and
  // fold them into the infimum.
  const int stride = std::max(1, validation_stride);
  std::vector<std::pair<uint64_t, double>> validated;
  for (uint64_t i = 0; i < n; i += stride) {
    const Plan optimal = opt.OptimizeAt(grid.SelectivityAt(i));
    ++local.optimizer_calls;
    assert(optimal.cost > 0.0);
    validated.emplace_back(i, optimal.cost);
    if (fresh.FindPlan(optimal.signature) < 0) {
      // Seed the newly-discovered plan at its validation point only; the
      // relaxation sweeps below spread it across its (connected) region.
      const int id = fresh.InternPlan(optimal);
      ++local.new_plans_adopted;
      if (optimal.cost < best_cost[i]) {
        best_cost[i] = optimal.cost;
        best_plan[i] = id;
      }
    } else if (optimal.cost < best_cost[i]) {
      best_cost[i] = optimal.cost;
      best_plan[i] = fresh.FindPlan(optimal.signature);
    }
  }

  // Pass 3: relaxation — plan regions tile the space, so propagating each
  // point's best plan to its neighbors until fixpoint recovers boundary
  // shifts larger than one cell. Converges in a few sweeps.
  for (int sweep = 0; sweep < 64; ++sweep) {
    bool changed = false;
    grid.ForEach([&](uint64_t linear, const GridPoint& p) {
      const DimVector sel = grid.SelectivityAt(linear);
      for (int d = 0; d < dims; ++d) {
        for (int delta : {-1, +1}) {
          const int ni = p[d] + delta;
          if (ni < 0 || ni >= grid.resolution(d)) continue;
          const int cand = best_plan[grid.LinearWithDim(linear, d, ni)];
          if (cand == best_plan[linear]) continue;
          const double c = opt.CostPlanAt(*fresh.plan(cand).root, sel);
          ++local.recost_evaluations;
          if (c < best_cost[linear] * (1 - 1e-12)) {
            best_cost[linear] = c;
            best_plan[linear] = cand;
            changed = true;
          }
        }
      }
    });
    if (!changed) break;
  }

  // Final validation-ratio report against the fresh optima sampled above.
  for (const auto& [i, optimal_cost] : validated) {
    local.worst_validation_ratio = std::max(
        local.worst_validation_ratio, best_cost[i] / optimal_cost);
  }

  for (uint64_t i = 0; i < n; ++i) {
    fresh.Set(i, best_plan[i], best_cost[i]);
  }
  if (stats != nullptr) *stats = local;
  return fresh;
}

}  // namespace bouquet

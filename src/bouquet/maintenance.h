// Incremental bouquet maintenance under database scale-up.
//
// Section 8 of the paper flags this as an open problem: when the database
// grows, the old ESS/bouquet is stale, but recomputing from scratch wastes
// work because the POSP plan *set* tends to be stable even when the cost
// surfaces shift. This module implements the candidate-recosting strategy:
//
//   1. keep the old diagram's plan set as candidates,
//   2. recost every candidate at every grid point against the new catalog
//      (recosting is 10-100x cheaper than a fresh optimizer call),
//   3. validate the recosted infimum on a sparse lattice with fresh
//      optimizations, adopting any newly-discovered plans and repeating the
//      recosting for them,
//   4. report the worst observed deviation so the caller can widen contour
//      budgets by that factor (preserving the completion guarantee).

#ifndef BOUQUET_BOUQUET_MAINTENANCE_H_
#define BOUQUET_BOUQUET_MAINTENANCE_H_

#include <memory>

#include "ess/plan_diagram.h"
#include "optimizer/optimizer.h"

namespace bouquet {

/// Outcome of an incremental diagram refresh.
struct MaintenanceStats {
  long long recost_evaluations = 0;  ///< candidate recosting work
  long long optimizer_calls = 0;     ///< fresh optimizations (sparse lattice)
  int new_plans_adopted = 0;         ///< plans the validation pass surfaced
  /// max over validated points of  recosted_infimum / fresh_optimal; 1.0
  /// means the candidate set stayed optimal everywhere sampled.
  double worst_validation_ratio = 1.0;
};

/// Refreshes `old_diagram` for a changed catalog without exhaustively
/// re-optimizing the grid. `validation_stride` controls the sparse lattice:
/// every stride-th grid point is verified with a fresh optimizer call.
/// The returned diagram indexes the same grid object as the old one.
PlanDiagram MaintainDiagram(const PlanDiagram& old_diagram,
                            const QuerySpec& query,
                            const Catalog& new_catalog, CostParams params,
                            int validation_stride = 16,
                            MaintenanceStats* stats = nullptr);

}  // namespace bouquet

#endif  // BOUQUET_BOUQUET_MAINTENANCE_H_

#include "bouquet/serialize.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/str_util.h"
#include "optimizer/plan_signature.h"

namespace bouquet {

namespace {

constexpr const char* kMagic = "bouquet-file";
constexpr int kVersion = 1;

// Hex-float encoding round-trips doubles exactly.
std::string Hex(double v) { return StrPrintf("%a", v); }

void WriteNode(const PlanNode& node, std::ostream& out) {
  out << "node " << static_cast<int>(node.op) << ' ' << node.table_idx << ' '
      << node.index_filter << ' ' << node.index_join << ' '
      << (node.left_presorted ? 1 : 0) << ' '
      << (node.right_presorted ? 1 : 0) << ' ' << Hex(node.est_rows) << ' '
      << Hex(node.est_cost) << ' ' << Hex(node.width) << ' '
      << node.filter_idxs.size();
  for (int f : node.filter_idxs) out << ' ' << f;
  out << ' ' << node.join_idxs.size();
  for (int j : node.join_idxs) out << ' ' << j;
  const int children = (node.left ? 1 : 0) + (node.right ? 1 : 0);
  assert(!(node.right && !node.left) && "right-only children unsupported");
  out << ' ' << children << '\n';
  if (node.left) WriteNode(*node.left, out);
  if (node.right) WriteNode(*node.right, out);
}

// Reads one token line already split into a stream.
PlanNodeRef ReadNode(std::istream& in, Status* status) {
  std::string tag;
  if (!(in >> tag) || tag != "node") {
    *status = Status::Internal("expected node record");
    return nullptr;
  }
  auto node = std::make_shared<PlanNode>();
  int op, lp, rp;
  long long nf, nj;
  std::string rows_hex, cost_hex, width_hex;
  if (!(in >> op >> node->table_idx >> node->index_filter >>
        node->index_join >> lp >> rp >> rows_hex >> cost_hex >> width_hex >>
        nf)) {
    *status = Status::Internal("truncated node record");
    return nullptr;
  }
  if (op < 0 || op > static_cast<int>(OpType::kHashAggregate) || nf < 0 ||
      nf > 4096) {
    *status = Status::Internal("node record out of range");
    return nullptr;
  }
  node->op = static_cast<OpType>(op);
  node->left_presorted = lp != 0;
  node->right_presorted = rp != 0;
  node->est_rows = std::strtod(rows_hex.c_str(), nullptr);
  node->est_cost = std::strtod(cost_hex.c_str(), nullptr);
  node->width = std::strtod(width_hex.c_str(), nullptr);
  node->filter_idxs.resize(nf);
  for (size_t i = 0; i < nf; ++i) {
    if (!(in >> node->filter_idxs[i])) {
      *status = Status::Internal("truncated filter list");
      return nullptr;
    }
  }
  if (!(in >> nj) || nj < 0 || nj > 4096) {
    *status = Status::Internal("truncated join-count");
    return nullptr;
  }
  node->join_idxs.resize(nj);
  for (size_t i = 0; i < nj; ++i) {
    if (!(in >> node->join_idxs[i])) {
      *status = Status::Internal("truncated join list");
      return nullptr;
    }
  }
  int children;
  if (!(in >> children)) {
    *status = Status::Internal("truncated children count");
    return nullptr;
  }
  if (children < 0 || children > 2) {
    *status = Status::Internal("invalid children count");
    return nullptr;
  }
  if (children >= 1) {
    node->left = ReadNode(in, status);
    if (!status->ok()) return nullptr;
  }
  if (children == 2) {
    node->right = ReadNode(in, status);
    if (!status->ok()) return nullptr;
  }
  return node;
}

// A loaded plan must reference only predicates/tables the query actually
// has — otherwise the executor builder indexes out of bounds.
Status ValidateLoadedPlan(const PlanNode& node, const QuerySpec& query) {
  // Structural arity: scans are leaves, joins binary, aggregates unary.
  if (node.is_scan() && (node.left || node.right)) {
    return Status::FailedPrecondition("scan node with children");
  }
  if (node.is_join() && (!node.left || !node.right || node.join_idxs.empty())) {
    return Status::FailedPrecondition("malformed join node");
  }
  if (node.is_aggregate() && (!node.left || node.right)) {
    return Status::FailedPrecondition("malformed aggregate node");
  }
  if (node.is_scan()) {
    if (node.table_idx < 0 ||
        node.table_idx >= static_cast<int>(query.tables.size())) {
      return Status::FailedPrecondition("plan references unknown table");
    }
  }
  for (int f : node.filter_idxs) {
    if (f < 0 || f >= static_cast<int>(query.filters.size())) {
      return Status::FailedPrecondition("plan references unknown filter");
    }
  }
  for (int j : node.join_idxs) {
    if (j < 0 || j >= static_cast<int>(query.joins.size())) {
      return Status::FailedPrecondition("plan references unknown join");
    }
  }
  if (node.index_filter >= static_cast<int>(query.filters.size()) ||
      node.index_join >= static_cast<int>(query.joins.size())) {
    return Status::FailedPrecondition("plan index qual out of range");
  }
  if (node.left) {
    Status s = ValidateLoadedPlan(*node.left, query);
    if (!s.ok()) return s;
  }
  if (node.right) {
    Status s = ValidateLoadedPlan(*node.right, query);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

Status SaveBouquet(const PlanDiagram& diagram, const PlanBouquet& bouquet,
                   std::ostream& out) {
  const EssGrid& grid = diagram.grid();
  out << kMagic << " v" << kVersion << '\n';
  out << "grid " << grid.dims();
  for (int d = 0; d < grid.dims(); ++d) out << ' ' << grid.resolution(d);
  out << '\n';

  out << "plans " << diagram.num_plans() << '\n';
  for (int p = 0; p < diagram.num_plans(); ++p) {
    const Plan& plan = diagram.plan(p);
    out << "plan " << p << ' ' << Hex(plan.cost) << ' ' << Hex(plan.rows)
        << '\n';
    WriteNode(*plan.root, out);
  }

  out << "assignments " << grid.num_points() << '\n';
  for (uint64_t i = 0; i < grid.num_points(); ++i) {
    out << diagram.plan_at(i) << ' ' << Hex(diagram.cost_at(i)) << '\n';
  }

  out << "bouquet " << Hex(bouquet.params.ratio) << ' '
      << Hex(bouquet.params.lambda) << ' '
      << (bouquet.params.anorexic ? 1 : 0) << ' ' << Hex(bouquet.cmin) << ' '
      << Hex(bouquet.cmax) << ' ' << bouquet.contours.size() << '\n';
  for (const auto& c : bouquet.contours) {
    out << "contour " << Hex(c.step_cost) << ' ' << Hex(c.budget) << ' '
        << c.points.size() << '\n';
    for (size_t i = 0; i < c.points.size(); ++i) {
      out << c.points[i] << ' ' << c.plan_at[i] << '\n';
    }
  }
  if (!out.good()) return Status::Internal("stream write failure");
  return Status::Ok();
}

Status SaveBouquetToFile(const PlanDiagram& diagram,
                         const PlanBouquet& bouquet,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open for writing: " + path);
  }
  return SaveBouquet(diagram, bouquet, out);
}

Result<LoadedBouquet> LoadBouquet(const QuerySpec& query, std::istream& in) {
  std::string magic, version;
  if (!(in >> magic >> version) || magic != kMagic || version != "v1") {
    return Status::InvalidArgument("not a bouquet-file v1 stream");
  }
  std::string tag;
  int dims;
  if (!(in >> tag >> dims) || tag != "grid") {
    return Status::Internal("missing grid record");
  }
  if (dims != query.NumDims()) {
    return Status::FailedPrecondition(
        StrPrintf("bundle has %d dims, query has %d", dims,
                  query.NumDims()));
  }
  std::vector<int> resolutions(dims);
  for (int d = 0; d < dims; ++d) {
    if (!(in >> resolutions[d]) || resolutions[d] <= 0) {
      return Status::Internal("bad grid resolutions");
    }
  }

  LoadedBouquet bundle;
  bundle.grid = std::make_unique<EssGrid>(query, resolutions);
  bundle.diagram = std::make_unique<PlanDiagram>(bundle.grid.get());

  int num_plans;
  if (!(in >> tag >> num_plans) || tag != "plans" || num_plans < 0) {
    return Status::Internal("missing plans record");
  }
  for (int p = 0; p < num_plans; ++p) {
    int id;
    std::string cost_hex, rows_hex;
    if (!(in >> tag >> id >> cost_hex >> rows_hex) || tag != "plan" ||
        id != p) {
      return Status::Internal("bad plan header");
    }
    Status st;
    Plan plan;
    plan.root = ReadNode(in, &st);
    if (!st.ok()) return st;
    st = ValidateLoadedPlan(*plan.root, query);
    if (!st.ok()) return st;
    plan.cost = std::strtod(cost_hex.c_str(), nullptr);
    plan.rows = std::strtod(rows_hex.c_str(), nullptr);
    plan.signature = PlanSignature(*plan.root);
    const int interned = bundle.diagram->InternPlan(plan);
    if (interned != p) {
      return Status::Internal("duplicate plan signature in bundle");
    }
  }

  uint64_t num_points;
  if (!(in >> tag >> num_points) || tag != "assignments" ||
      num_points != bundle.grid->num_points()) {
    return Status::Internal("assignment count mismatch");
  }
  for (uint64_t i = 0; i < num_points; ++i) {
    int plan;
    std::string cost_hex;
    if (!(in >> plan >> cost_hex) || plan < 0 || plan >= num_plans) {
      return Status::Internal("bad assignment record");
    }
    bundle.diagram->Set(i, plan, std::strtod(cost_hex.c_str(), nullptr));
  }

  bundle.bouquet = std::make_unique<PlanBouquet>();
  std::string ratio_hex, lambda_hex, cmin_hex, cmax_hex;
  int anorexic;
  size_t num_contours;
  if (!(in >> tag >> ratio_hex >> lambda_hex >> anorexic >> cmin_hex >>
        cmax_hex >> num_contours) ||
      tag != "bouquet") {
    return Status::Internal("missing bouquet record");
  }
  bundle.bouquet->params.ratio = std::strtod(ratio_hex.c_str(), nullptr);
  bundle.bouquet->params.lambda = std::strtod(lambda_hex.c_str(), nullptr);
  bundle.bouquet->params.anorexic = anorexic != 0;
  bundle.bouquet->cmin = std::strtod(cmin_hex.c_str(), nullptr);
  bundle.bouquet->cmax = std::strtod(cmax_hex.c_str(), nullptr);
  std::set<int> union_plans;
  for (size_t k = 0; k < num_contours; ++k) {
    std::string step_hex, budget_hex;
    size_t npoints;
    if (!(in >> tag >> step_hex >> budget_hex >> npoints) ||
        tag != "contour") {
      return Status::Internal("bad contour header");
    }
    BouquetContour c;
    c.step_cost = std::strtod(step_hex.c_str(), nullptr);
    c.budget = std::strtod(budget_hex.c_str(), nullptr);
    std::set<int> distinct;
    for (size_t i = 0; i < npoints; ++i) {
      uint64_t point;
      int plan;
      if (!(in >> point >> plan) || point >= num_points || plan < 0 ||
          plan >= num_plans) {
        return Status::Internal("bad contour point record");
      }
      c.points.push_back(point);
      c.plan_at.push_back(plan);
      distinct.insert(plan);
      union_plans.insert(plan);
    }
    c.plan_ids.assign(distinct.begin(), distinct.end());
    bundle.bouquet->contours.push_back(std::move(c));
  }
  bundle.bouquet->plan_ids.assign(union_plans.begin(), union_plans.end());
  return bundle;
}

Result<LoadedBouquet> LoadBouquetFromFile(const QuerySpec& query,
                                          const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open bouquet file: " + path);
  }
  return LoadBouquet(query, in);
}

}  // namespace bouquet

// Isocost contour identification on the discretized PIC.
//
// The isocost ladder IC_1..IC_m is a geometric progression (ratio r) anchored
// at IC_m = Cmax with IC_1/r < Cmin <= IC_1 (Section 3.1). On the discrete
// grid, the contour of IC_k is the componentwise-maximal frontier of the
// downward-closed region {q : PIC(q) <= IC_k}: exactly the points all of
// whose +1 grid successors cost more than IC_k. Every query location inside
// the region is dominated by some frontier point, which is what makes the
// per-contour execution guarantee work.

#ifndef BOUQUET_BOUQUET_CONTOURS_H_
#define BOUQUET_BOUQUET_CONTOURS_H_

#include <cstdint>
#include <vector>

#include "ess/plan_diagram.h"

namespace bouquet {

/// The isocost steps and the frontier point set of each step.
struct ContourSet {
  std::vector<double> step_costs;               ///< IC_1..IC_m
  std::vector<std::vector<uint64_t>> points;    ///< per step, frontier points
  double cmin = 0.0;
  double cmax = 0.0;
};

/// Identifies contours on the diagram's PIC with the given cost ratio.
ContourSet IdentifyContours(const PlanDiagram& diagram, double ratio);

/// The band index of a query location: smallest k with PIC(q) <= IC_k.
int BandOf(const ContourSet& contours, double pic_cost);

}  // namespace bouquet

#endif  // BOUQUET_BOUQUET_CONTOURS_H_

// Theoretical robustness bounds (Section 3 of the paper).

#ifndef BOUQUET_BOUQUET_BOUNDS_H_
#define BOUQUET_BOUQUET_BOUNDS_H_

#include "bouquet/bouquet.h"

namespace bouquet {

/// Theorem 1: MSO <= r^2/(r-1) in 1D (== 4 at the optimal r = 2).
double TheoremOneMso(double ratio);

/// Theorem 3 with anorexic inflation: MSO <= rho * (1+lambda) * r^2/(r-1).
double MultiDMsoBound(double ratio, int rho, double lambda);

/// Theorem 3 instantiated on a compiled bouquet: rho is the densest
/// contour's plan count; lambda contributes only when the anorexic pass
/// actually ran (budgets are uninflated otherwise).
double BouquetMsoBound(const PlanBouquet& bouquet);

/// The tighter Equation-8 bound used for Table 1: actual per-contour plan
/// counts n_i and budgets, against the oracle lower bound IC_{k-1}
/// (Cmin for the first band):
///   max_k  [ sum_{i<=k} n_i * budget_i ] / oracle_k.
double EquationEightBound(const PlanBouquet& bouquet);

/// Section 3.4: multiplicative MSO inflation under delta-bounded cost
/// modeling errors: (1+delta)^2.
double ModelErrorInflation(double delta);

}  // namespace bouquet

#endif  // BOUQUET_BOUQUET_BOUNDS_H_

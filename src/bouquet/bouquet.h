// Plan bouquet identification (compile-time phase, Section 4).
//
// Pipeline: isocost contours on the PIC -> anorexic reduction of the plans
// lying on the contours (lambda-swallowing) -> per-contour plan sets, with
// contour budgets inflated by (1+lambda) to account for the reduction.

#ifndef BOUQUET_BOUQUET_BOUQUET_H_
#define BOUQUET_BOUQUET_BOUQUET_H_

#include <cstdint>
#include <vector>

#include "bouquet/contours.h"
#include "ess/plan_diagram.h"
#include "optimizer/optimizer.h"

namespace bouquet {

struct BouquetParams {
  double ratio = 2.0;    ///< isocost common ratio (r = 2 is optimal, Thm 1/2)
  double lambda = 0.2;   ///< anorexic reduction threshold (20% in the paper)
  bool anorexic = true;  ///< disable to study the raw-POSP configuration
};

/// One isocost contour with its assigned (possibly reduced) plans.
struct BouquetContour {
  double step_cost = 0.0;          ///< IC_k
  double budget = 0.0;             ///< (1+lambda) * IC_k
  std::vector<uint64_t> points;    ///< frontier grid points
  std::vector<int> plan_at;        ///< plan id per point (aligned with points)
  std::vector<int> plan_ids;       ///< distinct plans on this contour
};

/// The complete bouquet.
struct PlanBouquet {
  BouquetParams params;
  double cmin = 0.0;
  double cmax = 0.0;
  std::vector<BouquetContour> contours;
  std::vector<int> plan_ids;  ///< union over contours (diagram plan ids)

  /// Plan density of the densest contour (the rho of Theorem 3).
  int rho() const;
  /// Total number of distinct plans in the bouquet.
  int cardinality() const { return static_cast<int>(plan_ids.size()); }
};

/// Builds the bouquet from an exhaustive plan diagram. `opt` is used for
/// abstract plan costing during the anorexic reduction.
PlanBouquet BuildBouquet(const PlanDiagram& diagram, QueryOptimizer* opt,
                         const BouquetParams& params = {});

}  // namespace bouquet

#endif  // BOUQUET_BOUQUET_BOUQUET_H_

#include "bouquet/bounds.h"

#include <algorithm>
#include <cassert>

#include "common/math_util.h"

namespace bouquet {

double TheoremOneMso(double ratio) { return TheoremOneBound(ratio); }

double MultiDMsoBound(double ratio, int rho, double lambda) {
  return static_cast<double>(rho) * (1.0 + lambda) * TheoremOneBound(ratio);
}

double BouquetMsoBound(const PlanBouquet& bouquet) {
  const double lambda = bouquet.params.anorexic ? bouquet.params.lambda : 0.0;
  return MultiDMsoBound(bouquet.params.ratio, bouquet.rho(), lambda);
}

double EquationEightBound(const PlanBouquet& bouquet) {
  double worst = 0.0;
  double cumulative = 0.0;
  for (size_t k = 0; k < bouquet.contours.size(); ++k) {
    const auto& c = bouquet.contours[k];
    cumulative += static_cast<double>(c.plan_ids.size()) * c.budget;
    // Oracle lower bound for q_a in band k: the optimal plan costs at least
    // IC_{k-1} (PCM); for the first band, at least Cmin.
    const double oracle =
        k == 0 ? bouquet.cmin : bouquet.contours[k - 1].step_cost;
    assert(oracle > 0.0);
    worst = std::max(worst, cumulative / oracle);
  }
  return worst;
}

double ModelErrorInflation(double delta) {
  return (1.0 + delta) * (1.0 + delta);
}

}  // namespace bouquet

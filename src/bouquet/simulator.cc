#include "bouquet/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bouquet {

namespace {

constexpr double kEps = 1e-9;

// SplitMix-style mix for the deterministic modeling-error factor.
uint64_t MixHash(uint64_t a, uint64_t b) {
  uint64_t z = a * 0x9e3779b97f4a7c15ULL + b + 0x7f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

BouquetSimulator::BouquetSimulator(const PlanBouquet& bouquet,
                                   const PlanDiagram& diagram,
                                   QueryOptimizer* opt, Options options)
    : bouquet_(&bouquet), diagram_(&diagram), options_(options) {
  dense_of_plan_.assign(diagram.num_plans(), -1);
  for (int pid : bouquet.plan_ids) {
    dense_of_plan_[pid] = static_cast<int>(plan_of_dense_.size());
    plan_of_dense_.push_back(pid);
  }
  const EssGrid& grid = diagram.grid();
  const uint64_t n = grid.num_points();
  est_cost_.resize(plan_of_dense_.size());
  for (size_t d = 0; d < plan_of_dense_.size(); ++d) {
    est_cost_[d].resize(n);
    const PlanNode& root = *diagram.plan(plan_of_dense_[d]).root;
    for (uint64_t i = 0; i < n; ++i) {
      est_cost_[d][i] = opt->CostPlanAt(root, grid.SelectivityAt(i));
    }
  }
  // Error-node depths per plan and dimension (Section 5.1 heuristic).
  const QuerySpec& q = opt->query();
  dim_depth_.resize(plan_of_dense_.size());
  for (size_t d = 0; d < plan_of_dense_.size(); ++d) {
    dim_depth_[d].resize(q.error_dims.size());
    const PlanNode& root = *diagram.plan(plan_of_dense_[d]).root;
    for (size_t dim = 0; dim < q.error_dims.size(); ++dim) {
      const ErrorDimension& ed = q.error_dims[dim];
      dim_depth_[d][dim] = ErrorNodeMaxDepth(
          root, ed.kind == DimKind::kJoin, ed.predicate_index);
    }
  }

  // Safe plan for degraded-mode serving: the bouquet plan whose worst-case
  // actual cost over the ESS is smallest. est_cost_ is already materialized,
  // so this is one scan; RunSafe then serves in O(1).
  safe_budget_ = std::numeric_limits<double>::infinity();
  for (size_t d = 0; d < plan_of_dense_.size(); ++d) {
    double worst = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      worst = std::max(worst, ActualCost(plan_of_dense_[d], i));
    }
    if (worst < safe_budget_) {
      safe_budget_ = worst;
      safe_plan_ = plan_of_dense_[d];
    }
  }
}

int BouquetSimulator::DenseIndex(int plan_id) const {
  const int d = dense_of_plan_[plan_id];
  assert(d >= 0 && "plan not in bouquet");
  return d;
}

double BouquetSimulator::EstimatedCost(int plan_id, uint64_t point) const {
  return est_cost_[DenseIndex(plan_id)][point];
}

double BouquetSimulator::ModelErrorFactor(int plan_id, uint64_t point) const {
  if (options_.model_error_delta <= 0.0) return 1.0;
  // Deterministic uniform draw in [-1, 1], mapped to (1+delta)^u.
  const uint64_t h = MixHash(static_cast<uint64_t>(plan_id) + 1, point);
  const double u = 2.0 * (static_cast<double>(h >> 11) * 0x1.0p-53) - 1.0;
  return std::pow(1.0 + options_.model_error_delta, u);
}

double BouquetSimulator::ActualCost(int plan_id, uint64_t point) const {
  return EstimatedCost(plan_id, point) * ModelErrorFactor(plan_id, point);
}

double BouquetSimulator::ActualOptimal(uint64_t point) const {
  const double pic = diagram_->cost_at(point);
  if (options_.model_error_delta <= 0.0) return pic;
  return pic * ModelErrorFactor(diagram_->plan_at(point), point);
}

SimResult BouquetSimulator::RunBasic(uint64_t qa) const {
  SimResult res;
  int last_plan = -1;
  double last_progress = 0.0;

  for (size_t k = 0; k < bouquet_->contours.size(); ++k) {
    const BouquetContour& contour = bouquet_->contours[k];
    // Order: resume the previously-running plan first when present.
    std::vector<int> order = contour.plan_ids;
    if (last_plan >= 0) {
      auto it = std::find(order.begin(), order.end(), last_plan);
      if (it != order.end()) std::rotate(order.begin(), it, it + 1);
    }
    for (int plan : order) {
      const double c = ActualCost(plan, qa);
      const double prior =
          (options_.continue_same_plan && plan == last_plan) ? last_progress
                                                             : 0.0;
      ++res.num_executions;
      SimStep step;
      step.contour = static_cast<int>(k);
      step.plan_id = plan;
      step.budget = contour.budget;
      if (c <= contour.budget * (1.0 + kEps)) {
        step.charged = c - prior;
        step.completed = true;
        res.total_cost += step.charged;
        res.steps.push_back(step);
        res.completed = true;
        res.final_plan = plan;
        res.final_contour = static_cast<int>(k);
        return res;
      }
      step.charged = contour.budget - prior;
      res.total_cost += step.charged;
      res.steps.push_back(step);
      last_plan = plan;
      last_progress = contour.budget;
    }
  }

  // Guarantee violated (should not happen): fall back to the optimal plan.
  res.fallback_used = true;
  res.total_cost += ActualOptimal(qa);
  res.completed = true;
  res.final_plan = diagram_->plan_at(qa);
  res.final_contour = static_cast<int>(bouquet_->contours.size()) - 1;
  return res;
}

SimResult BouquetSimulator::RunSafe(uint64_t qa) const {
  SimResult res;
  assert(safe_plan_ >= 0 && "bouquet has no plans");
  SimStep step;
  step.contour = static_cast<int>(bouquet_->contours.size()) - 1;
  step.plan_id = safe_plan_;
  step.budget = safe_budget_;
  step.charged = ActualCost(safe_plan_, qa);
  step.completed = true;
  res.steps.push_back(step);
  res.total_cost = step.charged;
  res.num_executions = 1;
  res.completed = true;
  res.final_plan = safe_plan_;
  res.final_contour = step.contour;
  return res;
}

int BouquetSimulator::PickPlan(const BouquetContour& contour,
                               const GridPoint& qrun,
                               const std::vector<int>& remaining,
                               const std::vector<bool>& dim_learned) const {
  assert(!remaining.empty());
  const EssGrid& grid = diagram_->grid();
  const uint64_t qrun_linear = grid.LinearIndex(qrun);

  // AxisPlans: plans whose contour points lie on an axis through q_run
  // (equal to q_run in every dimension but one).
  std::vector<int> axis_plans;
  for (size_t i = 0; i < contour.points.size(); ++i) {
    const GridPoint p = grid.PointAt(contour.points[i]);
    int diffs = 0;
    bool quadrant = true;
    for (size_t d = 0; d < p.size(); ++d) {
      if (p[d] < qrun[d]) {
        quadrant = false;
        break;
      }
      if (p[d] > qrun[d]) ++diffs;
    }
    if (!quadrant || diffs > 1) continue;
    const int plan = contour.plan_at[i];
    if (std::find(remaining.begin(), remaining.end(), plan) ==
        remaining.end()) {
      continue;
    }
    if (std::find(axis_plans.begin(), axis_plans.end(), plan) ==
        axis_plans.end()) {
      axis_plans.push_back(plan);
    }
  }
  const std::vector<int>& pool = axis_plans.empty() ? remaining : axis_plans;

  // Cheapest cost-equivalence group at q_run, then deepest error node among
  // not-yet-learned dimensions.
  double min_cost = std::numeric_limits<double>::infinity();
  for (int plan : pool) {
    min_cost = std::min(min_cost, EstimatedCost(plan, qrun_linear));
  }
  const double cutoff = min_cost * (1.0 + options_.cost_group_width);
  int best_plan = pool.front();
  int best_depth = -2;
  for (int plan : pool) {
    if (EstimatedCost(plan, qrun_linear) > cutoff) continue;
    int depth = -1;
    const auto& depths = dim_depth_[DenseIndex(plan)];
    for (size_t dim = 0; dim < depths.size(); ++dim) {
      if (!dim_learned[dim]) depth = std::max(depth, depths[dim]);
    }
    if (depth > best_depth) {
      best_depth = depth;
      best_plan = plan;
    }
  }
  return best_plan;
}

SimResult BouquetSimulator::RunOptimized(uint64_t qa) const {
  return RunOptimizedFrom(qa, GridPoint(diagram_->grid().dims(), 0), 0);
}

SimResult BouquetSimulator::RunOptimizedWarm(uint64_t qa,
                                             int start_contour) const {
  return RunOptimizedFrom(
      qa, GridPoint(diagram_->grid().dims(), 0),
      static_cast<size_t>(std::max(0, start_contour)));
}

SimResult BouquetSimulator::RunOptimizedSeeded(uint64_t qa,
                                               const GridPoint& seed) const {
  // Clamp the seed into the first quadrant of q_a so a (contract-violating)
  // over-estimate degrades to partial seeding instead of losing the
  // completion guarantee.
  const EssGrid& grid = diagram_->grid();
  const GridPoint qa_pt = grid.PointAt(qa);
  GridPoint start = seed;
  for (size_t d = 0; d < start.size(); ++d) {
    start[d] = std::min(start[d], qa_pt[d]);
  }
  return RunOptimizedFrom(qa, std::move(start), 0);
}

SimResult BouquetSimulator::RunOptimizedFrom(uint64_t qa, GridPoint qrun,
                                             size_t start_contour) const {
  SimResult res;
  const EssGrid& grid = diagram_->grid();
  const GridPoint qa_pt = grid.PointAt(qa);
  const int dims = grid.dims();

  std::vector<bool> dim_learned(dims, false);
  for (int d = 0; d < dims; ++d) dim_learned[d] = (qa_pt[d] == qrun[d]);

  int last_plan = -1;
  double last_progress = 0.0;

  // Clamp to the LAST contour, not one past it: a warm start beyond the
  // ladder still has to execute the Cmax contour to complete.
  size_t k = bouquet_->contours.empty()
                 ? 0
                 : std::min(start_contour, bouquet_->contours.size() - 1);
  res.start_contour = static_cast<int>(k);
  while (k < bouquet_->contours.size()) {
    const BouquetContour& contour = bouquet_->contours[k];
    const double budget = contour.budget;

    // Early skip: even the optimal plan at the (lower-bound) q_run exceeds
    // this contour's budget, so nothing here can complete.
    if (diagram_->cost_at(grid.LinearIndex(qrun)) > budget * (1.0 + kEps)) {
      ++k;
      continue;
    }

    std::vector<int> executed;
    bool advanced = false;
    while (!advanced) {
      // Candidates: plans with at least one contour point in the first
      // quadrant of q_run, not yet executed on this contour.
      std::vector<int> remaining;
      for (size_t i = 0; i < contour.points.size(); ++i) {
        const GridPoint p = grid.PointAt(contour.points[i]);
        bool quadrant = true;
        for (int d = 0; d < dims; ++d) {
          if (p[d] < qrun[d]) {
            quadrant = false;
            break;
          }
        }
        if (!quadrant) continue;
        const int plan = contour.plan_at[i];
        if (std::find(executed.begin(), executed.end(), plan) !=
                executed.end() ||
            std::find(remaining.begin(), remaining.end(), plan) !=
                remaining.end()) {
          continue;
        }
        remaining.push_back(plan);
      }
      if (remaining.empty()) {
        ++k;
        break;
      }

      const int plan = PickPlan(contour, qrun, remaining, dim_learned);
      // Learning dimension: deepest error node among unlearned dims.
      int learn_dim = -1;
      int learn_depth = -1;
      const auto& depths = dim_depth_[DenseIndex(plan)];
      for (int d = 0; d < dims; ++d) {
        if (dim_learned[d]) continue;
        if (depths[d] > learn_depth) {
          learn_depth = depths[d];
          learn_dim = d;
        }
      }

      const double c = ActualCost(plan, qa);
      const double prior =
          (options_.continue_same_plan && plan == last_plan) ? last_progress
                                                             : 0.0;
      ++res.num_executions;
      SimStep step;
      step.contour = static_cast<int>(k);
      step.plan_id = plan;
      step.budget = budget;
      step.learned_dim = learn_dim;
      if (c <= budget * (1.0 + kEps)) {
        step.charged = c - prior;
        step.completed = true;
        res.total_cost += step.charged;
        res.steps.push_back(step);
        res.qrun_trace.push_back(qrun);
        res.completed = true;
        res.final_plan = plan;
        res.final_contour = static_cast<int>(k);
        return res;
      }
      step.charged = budget - prior;
      res.total_cost += step.charged;
      res.steps.push_back(step);
      last_plan = plan;
      last_progress = budget;
      executed.push_back(plan);

      // Spill-based learning: move q_run along the learning dimension to the
      // furthest grid index still within budget (capped at the truth).
      if (learn_dim >= 0) {
        const int dense = DenseIndex(plan);
        int idx = qrun[learn_dim];
        const uint64_t base = grid.LinearIndex(qrun);
        for (int trial = idx + 1; trial <= qa_pt[learn_dim]; ++trial) {
          const uint64_t pt = grid.LinearWithDim(base, learn_dim, trial);
          if (est_cost_[dense][pt] > budget * (1.0 + kEps)) break;
          idx = trial;
        }
        qrun[learn_dim] = idx;
        if (idx == qa_pt[learn_dim]) dim_learned[learn_dim] = true;
      }
      res.qrun_trace.push_back(qrun);

      // Early contour change: optimal cost at q_run already exceeds the
      // current budget.
      if (diagram_->cost_at(grid.LinearIndex(qrun)) >
          budget * (1.0 + kEps)) {
        ++k;
        advanced = true;
      }
    }
  }

  // Guarantee violated (should not happen): fall back to the optimal plan.
  res.fallback_used = true;
  res.total_cost += ActualOptimal(qa);
  res.completed = true;
  res.final_plan = diagram_->plan_at(qa);
  res.final_contour = static_cast<int>(bouquet_->contours.size()) - 1;
  return res;
}

double BouquetSimulator::SubOpt(const SimResult& result, uint64_t qa) const {
  const double optimal = ActualOptimal(qa);
  assert(optimal > 0.0);
  return result.total_cost / optimal;
}

void BouquetSimulator::EmitTrace(const SimResult& result, uint64_t qa,
                                 obs::Tracer* tracer,
                                 const obs::Span* parent) const {
  if (tracer == nullptr) return;
  obs::Span run = tracer->StartSpan("sim.run", parent);
  for (const SimStep& step : result.steps) {
    obs::Span s = tracer->StartSpan("sim.step", &run);
    s.Num("contour", step.contour)
        .Num("plan_id", step.plan_id)
        .Num("budget", step.budget)
        .Num("charged", step.charged)
        .Flag("completed", step.completed)
        .Num("learned_dim", step.learned_dim);
    s.End();
  }
  run.Num("qa", static_cast<double>(qa))
      .Num("executions", result.num_executions)
      .Num("total_cost_units", result.total_cost)
      .Num("final_plan", result.final_plan)
      .Num("subopt", SubOpt(result, qa))
      .Flag("completed", result.completed)
      .Flag("fallback", result.fallback_used);
  run.End();
}

}  // namespace bouquet

#include "bouquet/driver.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "common/str_util.h"
#include "common/lint.h"
#include "optimizer/plan_signature.h"

namespace bouquet {

namespace {

constexpr double kRelEps = 1e-9;

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Wall-clock telemetry only: feeds DriverStep/DriverResult seconds fields
// and span attributes, never charged cost, contour decisions, q_run, or
// replay state (those ride the CostMeter and the instrumentation counters).
BOUQUET_NONDETERMINISM_OK std::chrono::steady_clock::time_point WallNow() {
  return std::chrono::steady_clock::now();
}

// "0.001,0.04,1" — the q_run snapshot attribute attached to trace events.
std::string FormatQrun(const DimVector& qrun) {
  std::string out;
  for (size_t d = 0; d < qrun.size(); ++d) {
    if (d > 0) out += ",";
    out += FormatSci(qrun[d], 4);
  }
  return out;
}

// Does the subtree evaluate any error dimension that is not yet learned,
// other than `exclude_dim`?
bool SubtreeHasUnlearnedDim(const PlanNode& node, const QuerySpec& q,
                            const std::vector<bool>& learned,
                            int exclude_dim) {
  for (size_t d = 0; d < q.error_dims.size(); ++d) {
    if (static_cast<int>(d) == exclude_dim || learned[d]) continue;
    const ErrorDimension& ed = q.error_dims[d];
    if (FindPredicateNode(node, ed.kind == DimKind::kJoin,
                          ed.predicate_index) != nullptr) {
      return true;
    }
  }
  return false;
}

}  // namespace

BouquetDriver::BouquetDriver(const PlanBouquet& bouquet,
                             const PlanDiagram& diagram, QueryOptimizer* opt,
                             Database* db)
    : bouquet_(&bouquet), diagram_(&diagram), opt_(opt), db_(db) {}

ExecContext BouquetDriver::MakeContext() {
  ExecContext ctx;
  ctx.query = &opt_->query();
  ctx.catalog = &opt_->catalog();
  ctx.db = db_;
  ctx.cost_model = &opt_->cost_model();
  ctx.metrics = metrics_;
  return ctx;
}

void BouquetDriver::SetObservability(obs::Tracer* tracer,
                                     obs::MetricsRegistry* metrics,
                                     const obs::Span* parent) {
  tracer_ = tracer;
  metrics_ = metrics;
  if (parent != nullptr && parent->enabled()) {
    trace_parent_ = parent->id();
    trace_id_ = parent->trace_id();
  } else {
    trace_parent_ = 0;
    trace_id_ = 0;
  }
  ins_ = Instruments{};
  if (metrics_ == nullptr) return;
  ins_.executions = metrics_->GetCounter(
      "bouquet_driver_executions_total",
      "Plan executions issued by the driver (partial, spill, and final)");
  ins_.contour_crossings = metrics_->GetCounter(
      "bouquet_driver_contour_crossings_total",
      "Isocost contours abandoned without the query completing");
  ins_.spills = metrics_->GetCounter(
      "bouquet_driver_spills_total",
      "Spill-mode (subtree-only) learning executions");
  ins_.fallbacks = metrics_->GetCounter(
      "bouquet_driver_fallbacks_total",
      "Safety-net unbounded executions after every contour budget was "
      "exhausted");
  ins_.dims_learned = metrics_->GetCounter(
      "bouquet_driver_dims_learned_total",
      "Error dimensions learned exactly from instrumentation counters");
  ins_.budget_utilization = metrics_->GetHistogram(
      "bouquet_driver_budget_utilization",
      "charged/budget ratio per budget-limited execution",
      obs::BudgetUtilizationBuckets());
}

void BouquetDriver::ObserveStep(const DriverStep& step, obs::Span* span) {
  if (span != nullptr && span->enabled()) {
    span->Num("contour", step.contour)
        .Num("plan_id", step.plan_id)
        .Num("budget", step.budget)
        .Num("charged", step.charged)
        .Num("wall_seconds", step.wall_seconds)
        .Num("page_reads", static_cast<double>(step.page_reads))
        .Num("page_hits", static_cast<double>(step.page_hits))
        .Flag("completed", step.completed)
        .Flag("spilled", step.spilled)
        .Num("learned_dim", step.learned_dim)
        .Str("signature", step.plan_signature);
    span->End();
  }
  if (ins_.executions != nullptr) ins_.executions->Inc();
  if (step.spilled && ins_.spills != nullptr) ins_.spills->Inc();
  if (ins_.budget_utilization != nullptr && std::isfinite(step.budget) &&
      step.budget > 0.0) {
    ins_.budget_utilization->Observe(step.charged / step.budget);
  }
}

DriverResult BouquetDriver::RunBasic() {
  DriverResult res;
  const auto t0 = WallNow();
  obs::Span run = obs::Tracer::BeginUnder(tracer_, "driver.run_basic",
                                          trace_parent_, trace_id_);

  for (size_t k = 0; k < bouquet_->contours.size(); ++k) {
    const BouquetContour& contour = bouquet_->contours[k];
    res.contours_crossed = static_cast<int>(k);
    obs::Span contour_span =
        obs::Tracer::Begin(tracer_, "driver.contour", &run);
    contour_span.Num("contour", static_cast<double>(k))
        .Num("budget", contour.budget)
        .Num("num_plans", static_cast<double>(contour.plan_ids.size()));
    for (int plan_id : contour.plan_ids) {
      const Plan& plan = diagram_->plan(plan_id);
      obs::Span step_span =
          obs::Tracer::Begin(tracer_, "driver.step", &contour_span);
      ExecContext ctx = MakeContext();
      ctx.tracer = tracer_;
      ctx.trace_parent = step_span.id();
      ctx.trace_id = step_span.trace_id();
      std::vector<Row> rows;
      const auto t1 = WallNow();
      const ExecutionOutcome out =
          ExecutePlanWith(engine_, *plan.root, &ctx, contour.budget, &rows);
      const auto t2 = WallNow();

      DriverStep step;
      step.contour = static_cast<int>(k);
      step.plan_id = plan_id;
      step.plan_signature = plan.signature;
      step.budget = contour.budget;
      step.charged = out.cost_charged;
      step.wall_seconds = Seconds(t1, t2);
      step.page_reads = out.page_reads;
      step.page_hits = out.page_hits;
      step.completed = out.status == ExecResult::kDone;
      res.total_cost_units += out.cost_charged;
      res.page_reads += out.page_reads;
      res.page_hits += out.page_hits;
      ++res.num_executions;
      res.steps.push_back(step);
      ObserveStep(step, &step_span);

      if (out.status == ExecResult::kDone) {
        res.completed = true;
        res.final_plan = plan_id;
        res.final_plan_signature = plan.signature;
        res.rows = std::move(rows);
        res.wall_seconds = Seconds(t0, t2);
        run.Num("contours_crossed", res.contours_crossed)
            .Num("executions", res.num_executions)
            .Num("total_cost_units", res.total_cost_units)
            .Flag("completed", true);
        return res;
      }
      // Aborted: intermediate results jettisoned (rows discarded).
    }
    // This contour's budgets were all exhausted: cross to the next one.
    if (ins_.contour_crossings != nullptr) ins_.contour_crossings->Inc();
  }

  // Safety net: every contour budget was exhausted (the true q_a lies above
  // the last contour, possible when the grid under-resolves the ESS). Run
  // the plan covering the ESS max corner — the plan guaranteed to handle the
  // largest q_a — without a budget. The diagram-level assignment is used
  // directly so this also works when the bouquet has no contours at all
  // (e.g. a degenerate cost range produced zero IC steps).
  if (ins_.fallbacks != nullptr) ins_.fallbacks->Inc();
  const uint64_t corner =
      diagram_->grid().LinearIndex(diagram_->grid().MaxCorner());
  int fallback = diagram_->plan_at(corner);
  if (!bouquet_->contours.empty()) {
    const BouquetContour& last = bouquet_->contours.back();
    for (size_t i = 0; i < last.points.size(); ++i) {
      if (last.points[i] == corner) {
        fallback = last.plan_at[i];
        break;
      }
    }
  }
  // All contours were crossed without completing; the fallback runs beyond
  // them (contour index = contours.size() marks "past the last contour").
  res.contours_crossed = static_cast<int>(bouquet_->contours.size());
  const Plan& plan = diagram_->plan(fallback);
  obs::Span step_span = obs::Tracer::Begin(tracer_, "driver.step", &run);
  ExecContext ctx = MakeContext();
  ctx.tracer = tracer_;
  ctx.trace_parent = step_span.id();
  ctx.trace_id = step_span.trace_id();
  std::vector<Row> rows;
  const auto t1 = WallNow();
  const ExecutionOutcome out = ExecutePlanWith(
      engine_, *plan.root, &ctx, std::numeric_limits<double>::infinity(),
      &rows);
  const auto t2 = WallNow();
  DriverStep step;
  step.contour = res.contours_crossed;
  step.plan_id = fallback;
  step.plan_signature = plan.signature;
  step.budget = std::numeric_limits<double>::infinity();
  step.charged = out.cost_charged;
  step.wall_seconds = Seconds(t1, t2);
  step.page_reads = out.page_reads;
  step.page_hits = out.page_hits;
  step.completed = out.status == ExecResult::kDone;
  res.steps.push_back(step);
  ++res.num_executions;
  res.total_cost_units += out.cost_charged;
  res.page_reads += out.page_reads;
  res.page_hits += out.page_hits;
  ObserveStep(step, &step_span);
  // A build failure (e.g. abstract predicates without constants) must not
  // masquerade as a successful empty result.
  res.completed = out.status == ExecResult::kDone;
  res.final_plan = fallback;
  if (res.completed) res.final_plan_signature = plan.signature;
  res.rows = std::move(rows);
  res.wall_seconds = Seconds(t0, t2);
  run.Num("contours_crossed", res.contours_crossed)
      .Num("executions", res.num_executions)
      .Num("total_cost_units", res.total_cost_units)
      .Flag("completed", res.completed)
      .Flag("fallback", true);
  return res;
}

bool BouquetDriver::HarvestSelectivities(const PlanNode& plan_root,
                                         ExecContext* ctx, DimVector* qrun,
                                         std::vector<bool>* learned) {
  const QuerySpec& q = opt_->query();
  bool moved = false;

  const std::vector<const PlanNode*> nodes = CollectNodes(plan_root);

  // Resolver with the current q_run injected: learned dims resolve to their
  // discovered (exact) selectivities, error-free predicates to their
  // accurate catalog estimates. Unlearned dims resolve to lower bounds, but
  // those block learning below anyway.
  SelectivityResolver accurate(q, opt_->catalog());

  for (size_t d = 0; d < q.error_dims.size(); ++d) {
    if ((*learned)[d]) continue;
    // Refresh with the current q_run so updates made earlier in this pass
    // are visible (Inject only rewrites the error-dim slots; cheap).
    accurate.Inject(*qrun);
    const ErrorDimension& ed = q.error_dims[d];
    const bool is_join = ed.kind == DimKind::kJoin;
    const PlanNode* node =
        FindPredicateNode(plan_root, is_join, ed.predicate_index);
    if (node == nullptr) continue;
    const NodeCounters* counters = ctx->instr.Find(node);
    if (counters == nullptr) continue;

    double denom = 0.0;
    if (!is_join) {
      // Selection: output = raw_rows * s_d * (other known filter sels).
      const TableInfo& t =
          opt_->catalog().GetTable(q.tables[node->table_idx]);
      denom = t.stats.row_count;
      for (int f : node->filter_idxs) {
        if (f == ed.predicate_index) continue;
        // Another unlearned error dimension on the same node blocks learning.
        bool is_error_dim = false;
        for (size_t e = 0; e < q.error_dims.size(); ++e) {
          if (q.error_dims[e].kind == DimKind::kSelection &&
              q.error_dims[e].predicate_index == f && !(*learned)[e]) {
            is_error_dim = true;
          }
        }
        if (is_error_dim) {
          denom = 0.0;
          break;
        }
        denom *= accurate.FilterSelectivity(f);
      }
    } else {
      // Join: output = |L| * |R| * s_d * (other sels at the node). Inputs
      // must be free of unlearned error dims.
      if (node->left == nullptr || node->right == nullptr) continue;
      if (SubtreeHasUnlearnedDim(*node->left, q, *learned, -1) ||
          SubtreeHasUnlearnedDim(*node->right, q, *learned, -1)) {
        continue;
      }
      // Recost at the *current* q_run — including any updates made earlier
      // in this very pass — so the input cardinalities reflect every
      // already-learned dimension (a stale snapshot would underestimate the
      // denominator and overshoot s_hat, breaching the first-quadrant
      // invariant). Inputs are error-free or fully learned here, so the
      // recosted child cardinalities are exact.
      const PlanCostDetail detail = opt_->RecostPlanAt(plan_root, *qrun);
      double lrows = -1.0, rrows = -1.0;
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i] == node->left.get()) lrows = detail.nodes[i].rows;
        if (nodes[i] == node->right.get()) rrows = detail.nodes[i].rows;
      }
      if (lrows < 0.0 || rrows < 0.0) continue;
      denom = lrows * rrows;
      for (int j : node->join_idxs) {
        if (j == ed.predicate_index) continue;
        bool is_error_dim = false;
        for (size_t e = 0; e < q.error_dims.size(); ++e) {
          if (q.error_dims[e].kind == DimKind::kJoin &&
              q.error_dims[e].predicate_index == j && !(*learned)[e]) {
            is_error_dim = true;
          }
        }
        if (is_error_dim) {
          denom = 0.0;
          break;
        }
        denom *= accurate.JoinSelectivity(j);
      }
    }
    if (denom <= 0.0) continue;

    const double s_hat = static_cast<double>(counters->tuples_out) / denom;
    const double clamped = std::clamp(s_hat, ed.lo, ed.hi);
    if (clamped > (*qrun)[d] * (1.0 + kRelEps)) {
      (*qrun)[d] = clamped;
      moved = true;
    }
    if (counters->finished) {
      (*learned)[d] = true;
      moved = true;
    }
  }
  return moved;
}

DriverResult BouquetDriver::RunOptimized() {
  DriverResult res;
  const QuerySpec& q = opt_->query();
  const EssGrid& grid = diagram_->grid();
  const int dims = q.NumDims();
  const auto t0 = WallNow();
  obs::Span run = obs::Tracer::BeginUnder(tracer_, "driver.run_optimized",
                                          trace_parent_, trace_id_);

  DimVector qrun(dims);
  std::vector<bool> learned(dims, false);
  for (int d = 0; d < dims; ++d) qrun[d] = q.error_dims[d].lo;

  auto all_learned = [&]() {
    return std::all_of(learned.begin(), learned.end(),
                       [](bool b) { return b; });
  };

  // Records q_run movement and newly-learned dimensions after a harvest
  // (trace event + dims-learned counter), comparing against `before`.
  auto observe_harvest = [&](const std::vector<bool>& before, bool moved) {
    int newly = 0;
    for (int d = 0; d < dims; ++d) {
      if (learned[d] && !before[d]) ++newly;
    }
    if (newly > 0 && ins_.dims_learned != nullptr) {
      ins_.dims_learned->Inc(static_cast<uint64_t>(newly));
    }
    if (tracer_ != nullptr && (moved || newly > 0)) {
      obs::Span ev = obs::Tracer::Begin(tracer_, "driver.qrun", &run);
      ev.Str("q_run", FormatQrun(qrun))
          .Num("dims_learned",
               static_cast<double>(
                   std::count(learned.begin(), learned.end(), true)));
      for (int d = 0; d < dims; ++d) {
        if (learned[d] && !before[d]) {
          ev.Num("learned_dim", static_cast<double>(d));
        }
      }
      ev.End();
    }
  };

  auto final_execution = [&](std::chrono::steady_clock::time_point t_begin) {
    const Plan plan = opt_->OptimizeAt(qrun);
    obs::Span step_span = obs::Tracer::Begin(tracer_, "driver.step", &run);
    ExecContext ctx = MakeContext();
    ctx.tracer = tracer_;
    ctx.trace_parent = step_span.id();
    ctx.trace_id = step_span.trace_id();
    std::vector<Row> rows;
    const auto t1 = WallNow();
    const ExecutionOutcome out = ExecutePlanWith(
        engine_, *plan.root, &ctx, std::numeric_limits<double>::infinity(),
        &rows);
    const auto t2 = WallNow();
    DriverStep step;
    step.contour = res.contours_crossed;
    // The plan optimal at the discovered q_run need not belong to the POSP,
    // so FindPlan may legitimately return the -1 sentinel. The signature is
    // recorded as the plan's canonical identity either way; -1 here means
    // "not interned in the diagram", never "unknown plan".
    step.plan_id = diagram_->FindPlan(plan.signature);
    step.plan_signature = plan.signature;
    assert(!plan.signature.empty() && "final plan must carry a signature");
    step.budget = std::numeric_limits<double>::infinity();
    step.charged = out.cost_charged;
    step.wall_seconds = Seconds(t1, t2);
    step.page_reads = out.page_reads;
    step.page_hits = out.page_hits;
    step.completed = out.status == ExecResult::kDone;
    res.steps.push_back(step);
    ++res.num_executions;
    res.total_cost_units += out.cost_charged;
    res.page_reads += out.page_reads;
    res.page_hits += out.page_hits;
    ObserveStep(step, &step_span);
    res.completed = out.status == ExecResult::kDone;
    res.final_plan = step.plan_id;
    if (res.completed) res.final_plan_signature = plan.signature;
    res.rows = std::move(rows);
    res.wall_seconds = Seconds(t_begin, t2);
    const std::vector<bool> before = learned;
    const bool moved = HarvestSelectivities(*plan.root, &ctx, &qrun, &learned);
    observe_harvest(before, moved);
    res.discovered_selectivities = qrun;
    run.Num("contours_crossed", res.contours_crossed)
        .Num("executions", res.num_executions)
        .Num("total_cost_units", res.total_cost_units)
        .Flag("completed", res.completed)
        .Str("q_run", FormatQrun(qrun));
  };

  // Crossing to contour k+1 without completing: metric + trace event.
  auto observe_crossing = [&](size_t from_k, const char* why) {
    if (ins_.contour_crossings != nullptr) ins_.contour_crossings->Inc();
    if (tracer_ != nullptr) {
      obs::Span ev = obs::Tracer::Begin(tracer_, "driver.contour_jump", &run);
      ev.Num("from_contour", static_cast<double>(from_k))
          .Str("reason", why);
      ev.End();
    }
  };

  size_t k = 0;
  if (warm_start_ > 0) {
    // Feedback warm start: skip the cheap contour prefix. Safe for any
    // clamped value — see SetWarmStart's contract. Clamp to the LAST
    // contour, not one past it: the Cmax contour must still execute.
    k = bouquet_->contours.empty()
            ? 0
            : std::min(static_cast<size_t>(warm_start_),
                       bouquet_->contours.size() - 1);
    res.warm_contours_skipped = static_cast<int>(k);
    run.Num("warm_start_contour", static_cast<double>(k));
  }
  while (k < bouquet_->contours.size()) {
    const BouquetContour& contour = bouquet_->contours[k];
    const double budget = contour.budget;
    res.contours_crossed = static_cast<int>(k);

    if (all_learned()) {
      final_execution(t0);
      return res;
    }
    // Early skip: optimal cost at the lower-bound location already exceeds
    // this contour's budget.
    if (opt_->OptimizeAt(qrun).cost > budget * (1.0 + kRelEps)) {
      observe_crossing(k, "early_skip");
      ++k;
      continue;
    }

    std::vector<int> executed;
    bool advanced = false;
    while (!advanced) {
      if (all_learned()) {
        final_execution(t0);
        return res;
      }
      // Candidate plans: contour points in the first quadrant of q_run.
      std::vector<int> remaining;
      for (size_t i = 0; i < contour.points.size(); ++i) {
        const DimVector p = grid.SelectivityAt(contour.points[i]);
        bool quadrant = true;
        for (int d = 0; d < dims; ++d) {
          if (p[d] < qrun[d] * (1.0 - kRelEps)) {
            quadrant = false;
            break;
          }
        }
        if (!quadrant) continue;
        const int plan = contour.plan_at[i];
        if (std::find(executed.begin(), executed.end(), plan) !=
                executed.end() ||
            std::find(remaining.begin(), remaining.end(), plan) !=
                remaining.end()) {
          continue;
        }
        remaining.push_back(plan);
      }
      if (remaining.empty()) {
        observe_crossing(k, "contour_exhausted");
        ++k;
        break;
      }

      // Pick: cheapest at q_run within a 20% group, deepest unlearned
      // error node.
      int chosen = remaining.front();
      {
        double min_cost = std::numeric_limits<double>::infinity();
        std::vector<double> costs(remaining.size());
        for (size_t i = 0; i < remaining.size(); ++i) {
          costs[i] =
              opt_->CostPlanAt(*diagram_->plan(remaining[i]).root, qrun);
          min_cost = std::min(min_cost, costs[i]);
        }
        int best_depth = -2;
        for (size_t i = 0; i < remaining.size(); ++i) {
          if (costs[i] > min_cost * 1.2) continue;
          const PlanNode& root = *diagram_->plan(remaining[i]).root;
          int depth = -1;
          for (int d = 0; d < dims; ++d) {
            if (learned[d]) continue;
            const ErrorDimension& ed = q.error_dims[d];
            depth = std::max(depth, ErrorNodeMaxDepth(
                                        root, ed.kind == DimKind::kJoin,
                                        ed.predicate_index));
          }
          if (depth > best_depth) {
            best_depth = depth;
            chosen = remaining[i];
          }
        }
      }

      // Learning dimension (deepest unlearned) and its spill subtree.
      const Plan& plan = diagram_->plan(chosen);
      int learn_dim = -1;
      int learn_depth = -1;
      for (int d = 0; d < dims; ++d) {
        if (learned[d]) continue;
        const ErrorDimension& ed = q.error_dims[d];
        const int depth = ErrorNodeMaxDepth(
            *plan.root, ed.kind == DimKind::kJoin, ed.predicate_index);
        if (depth > learn_depth) {
          learn_depth = depth;
          learn_dim = d;
        }
      }
      const PlanNode* spill_root = nullptr;
      if (learn_dim >= 0) {
        const ErrorDimension& ed = q.error_dims[learn_dim];
        spill_root = FindPredicateNode(
            *plan.root, ed.kind == DimKind::kJoin, ed.predicate_index);
      }
      const bool spill_is_full = spill_root == plan.root.get();

      obs::Span step_span = obs::Tracer::Begin(tracer_, "driver.step", &run);
      ExecContext ctx = MakeContext();
      ctx.tracer = tracer_;
      ctx.trace_parent = step_span.id();
      ctx.trace_id = step_span.trace_id();
      std::vector<Row> rows;
      const auto t1 = WallNow();
      ExecutionOutcome out;
      if (spill_root != nullptr && !spill_is_full) {
        out = ExecuteSpilledWith(engine_, *spill_root, &ctx, budget);
      } else {
        out = ExecutePlanWith(engine_, *plan.root, &ctx, budget, &rows);
      }
      const auto t2 = WallNow();

      DriverStep step;
      step.contour = static_cast<int>(k);
      step.plan_id = chosen;
      step.plan_signature = plan.signature;
      step.budget = budget;
      step.charged = out.cost_charged;
      step.wall_seconds = Seconds(t1, t2);
      step.page_reads = out.page_reads;
      step.page_hits = out.page_hits;
      step.spilled = spill_root != nullptr && !spill_is_full;
      step.learned_dim = learn_dim;
      step.completed =
          out.status == ExecResult::kDone && !step.spilled;
      res.steps.push_back(step);
      ++res.num_executions;
      res.total_cost_units += out.cost_charged;
      res.page_reads += out.page_reads;
      res.page_hits += out.page_hits;
      ObserveStep(step, &step_span);

      if (out.status == ExecResult::kDone && !step.spilled) {
        // A generic execution finished: this is the query result. Harvest
        // the completed run's counters first — they pin down the actual
        // selectivities exactly (useful for workload error logs).
        const std::vector<bool> before = learned;
        const bool moved =
            HarvestSelectivities(*plan.root, &ctx, &qrun, &learned);
        observe_harvest(before, moved);
        res.completed = true;
        res.final_plan = chosen;
        res.final_plan_signature = plan.signature;
        res.rows = std::move(rows);
        res.wall_seconds = Seconds(t0, t2);
        res.discovered_selectivities = qrun;
        run.Num("contours_crossed", res.contours_crossed)
            .Num("executions", res.num_executions)
            .Num("total_cost_units", res.total_cost_units)
            .Flag("completed", true)
            .Str("q_run", FormatQrun(qrun));
        return res;
      }

      const PlanNode& harvest_root =
          step.spilled ? *spill_root : *plan.root;
      {
        const std::vector<bool> before = learned;
        const bool moved =
            HarvestSelectivities(harvest_root, &ctx, &qrun, &learned);
        observe_harvest(before, moved);
      }
      executed.push_back(chosen);

      // Early contour change once the optimal cost at q_run exceeds the
      // budget.
      if (opt_->OptimizeAt(qrun).cost > budget * (1.0 + kRelEps)) {
        observe_crossing(k, "qrun_advanced");
        ++k;
        advanced = true;
      }
    }
  }

  // All contours exhausted: execute the optimal plan at the discovered
  // location to completion.
  res.contours_crossed = static_cast<int>(bouquet_->contours.size());
  final_execution(t0);
  return res;
}

DriverResult BouquetDriver::RunSinglePlan(const PlanNode& root) {
  DriverResult res;
  obs::Span run = obs::Tracer::BeginUnder(tracer_, "driver.run_single",
                                          trace_parent_, trace_id_);
  obs::Span step_span = obs::Tracer::Begin(tracer_, "driver.step", &run);
  ExecContext ctx = MakeContext();
  ctx.tracer = tracer_;
  ctx.trace_parent = step_span.id();
  ctx.trace_id = step_span.trace_id();
  const auto t1 = WallNow();
  const ExecutionOutcome out = ExecutePlanWith(
      engine_, root, &ctx, std::numeric_limits<double>::infinity(), &res.rows);
  const auto t2 = WallNow();
  res.completed = out.status == ExecResult::kDone;
  res.total_cost_units = out.cost_charged;
  res.wall_seconds = Seconds(t1, t2);
  res.num_executions = 1;
  res.page_reads = out.page_reads;
  res.page_hits = out.page_hits;

  // Plan identity: native runs execute arbitrary roots, so the plan may or
  // may not be interned in the diagram — FindPlan's -1 sentinel is valid.
  const std::string signature = PlanSignature(root);
  res.final_plan = diagram_->FindPlan(signature);
  if (res.completed) res.final_plan_signature = signature;

  DriverStep step;
  step.contour = DriverStep::kNoContour;  // unbudgeted native run
  step.plan_id = res.final_plan;
  step.plan_signature = signature;
  step.budget = std::numeric_limits<double>::infinity();
  step.charged = out.cost_charged;
  step.wall_seconds = res.wall_seconds;
  step.page_reads = out.page_reads;
  step.page_hits = out.page_hits;
  step.completed = res.completed;
  res.steps.push_back(step);
  ObserveStep(step, &step_span);
  run.Num("executions", 1.0)
      .Num("total_cost_units", res.total_cost_units)
      .Flag("completed", res.completed);
  return res;
}

ContourHistogram HistogramSteps(const std::vector<DriverStep>& steps) {
  ContourHistogram h;
  for (const DriverStep& step : steps) {
    if (step.contour < 0) {
      // kNoContour (and any other negative sentinel) buckets separately:
      // a native run is not a ladder execution.
      ++h.native;
      continue;
    }
    if (static_cast<size_t>(step.contour) >= h.by_contour.size()) {
      h.by_contour.resize(static_cast<size_t>(step.contour) + 1, 0);
    }
    ++h.by_contour[static_cast<size_t>(step.contour)];
  }
  return h;
}

}  // namespace bouquet

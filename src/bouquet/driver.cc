#include "bouquet/driver.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

namespace bouquet {

namespace {

constexpr double kRelEps = 1e-9;

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Does the subtree evaluate any error dimension that is not yet learned,
// other than `exclude_dim`?
bool SubtreeHasUnlearnedDim(const PlanNode& node, const QuerySpec& q,
                            const std::vector<bool>& learned,
                            int exclude_dim) {
  for (size_t d = 0; d < q.error_dims.size(); ++d) {
    if (static_cast<int>(d) == exclude_dim || learned[d]) continue;
    const ErrorDimension& ed = q.error_dims[d];
    if (FindPredicateNode(node, ed.kind == DimKind::kJoin,
                          ed.predicate_index) != nullptr) {
      return true;
    }
  }
  return false;
}

}  // namespace

BouquetDriver::BouquetDriver(const PlanBouquet& bouquet,
                             const PlanDiagram& diagram, QueryOptimizer* opt,
                             Database* db)
    : bouquet_(&bouquet), diagram_(&diagram), opt_(opt), db_(db) {}

ExecContext BouquetDriver::MakeContext() {
  ExecContext ctx;
  ctx.query = &opt_->query();
  ctx.catalog = &opt_->catalog();
  ctx.db = db_;
  ctx.cost_model = &opt_->cost_model();
  return ctx;
}

DriverResult BouquetDriver::RunBasic() {
  DriverResult res;
  const auto t0 = std::chrono::steady_clock::now();

  for (size_t k = 0; k < bouquet_->contours.size(); ++k) {
    const BouquetContour& contour = bouquet_->contours[k];
    res.contours_crossed = static_cast<int>(k);
    for (int plan_id : contour.plan_ids) {
      const Plan& plan = diagram_->plan(plan_id);
      ExecContext ctx = MakeContext();
      std::vector<Row> rows;
      const auto t1 = std::chrono::steady_clock::now();
      const ExecutionOutcome out =
          ExecutePlan(*plan.root, &ctx, contour.budget, &rows);
      const auto t2 = std::chrono::steady_clock::now();

      DriverStep step;
      step.contour = static_cast<int>(k);
      step.plan_id = plan_id;
      step.plan_signature = plan.signature;
      step.budget = contour.budget;
      step.charged = out.cost_charged;
      step.wall_seconds = Seconds(t1, t2);
      step.completed = out.status == ExecResult::kDone;
      res.total_cost_units += out.cost_charged;
      ++res.num_executions;
      res.steps.push_back(step);

      if (out.status == ExecResult::kDone) {
        res.completed = true;
        res.final_plan = plan_id;
        res.rows = std::move(rows);
        res.wall_seconds = Seconds(t0, t2);
        return res;
      }
      // Aborted: intermediate results jettisoned (rows discarded).
    }
  }

  // Safety net: unbounded execution of the plan covering the ESS max corner
  // on the last contour (the plan guaranteed to handle the largest q_a).
  const BouquetContour& last = bouquet_->contours.back();
  const uint64_t corner = diagram_->grid().LinearIndex(
      diagram_->grid().MaxCorner());
  int fallback = last.plan_ids.front();
  for (size_t i = 0; i < last.points.size(); ++i) {
    if (last.points[i] == corner) {
      fallback = last.plan_at[i];
      break;
    }
  }
  const Plan& plan = diagram_->plan(fallback);
  ExecContext ctx = MakeContext();
  std::vector<Row> rows;
  const auto t1 = std::chrono::steady_clock::now();
  const ExecutionOutcome out = ExecutePlan(
      *plan.root, &ctx, std::numeric_limits<double>::infinity(), &rows);
  const auto t2 = std::chrono::steady_clock::now();
  DriverStep step;
  step.contour = static_cast<int>(bouquet_->contours.size()) - 1;
  step.plan_id = fallback;
  step.plan_signature = plan.signature;
  step.budget = std::numeric_limits<double>::infinity();
  step.charged = out.cost_charged;
  step.wall_seconds = Seconds(t1, t2);
  step.completed = out.status == ExecResult::kDone;
  res.steps.push_back(step);
  ++res.num_executions;
  res.total_cost_units += out.cost_charged;
  // A build failure (e.g. abstract predicates without constants) must not
  // masquerade as a successful empty result.
  res.completed = out.status == ExecResult::kDone;
  res.final_plan = fallback;
  res.rows = std::move(rows);
  res.wall_seconds = Seconds(t0, t2);
  return res;
}

bool BouquetDriver::HarvestSelectivities(const PlanNode& plan_root,
                                         ExecContext* ctx, DimVector* qrun,
                                         std::vector<bool>* learned) {
  const QuerySpec& q = opt_->query();
  bool moved = false;

  const std::vector<const PlanNode*> nodes = CollectNodes(plan_root);

  // Resolver with the current q_run injected: learned dims resolve to their
  // discovered (exact) selectivities, error-free predicates to their
  // accurate catalog estimates. Unlearned dims resolve to lower bounds, but
  // those block learning below anyway.
  SelectivityResolver accurate(q, opt_->catalog());

  for (size_t d = 0; d < q.error_dims.size(); ++d) {
    if ((*learned)[d]) continue;
    // Refresh with the current q_run so updates made earlier in this pass
    // are visible (Inject only rewrites the error-dim slots; cheap).
    accurate.Inject(*qrun);
    const ErrorDimension& ed = q.error_dims[d];
    const bool is_join = ed.kind == DimKind::kJoin;
    const PlanNode* node =
        FindPredicateNode(plan_root, is_join, ed.predicate_index);
    if (node == nullptr) continue;
    const NodeCounters* counters = ctx->instr.Find(node);
    if (counters == nullptr) continue;

    double denom = 0.0;
    if (!is_join) {
      // Selection: output = raw_rows * s_d * (other known filter sels).
      const TableInfo& t =
          opt_->catalog().GetTable(q.tables[node->table_idx]);
      denom = t.stats.row_count;
      for (int f : node->filter_idxs) {
        if (f == ed.predicate_index) continue;
        // Another unlearned error dimension on the same node blocks learning.
        bool is_error_dim = false;
        for (size_t e = 0; e < q.error_dims.size(); ++e) {
          if (q.error_dims[e].kind == DimKind::kSelection &&
              q.error_dims[e].predicate_index == f && !(*learned)[e]) {
            is_error_dim = true;
          }
        }
        if (is_error_dim) {
          denom = 0.0;
          break;
        }
        denom *= accurate.FilterSelectivity(f);
      }
    } else {
      // Join: output = |L| * |R| * s_d * (other sels at the node). Inputs
      // must be free of unlearned error dims.
      if (node->left == nullptr || node->right == nullptr) continue;
      if (SubtreeHasUnlearnedDim(*node->left, q, *learned, -1) ||
          SubtreeHasUnlearnedDim(*node->right, q, *learned, -1)) {
        continue;
      }
      // Recost at the *current* q_run — including any updates made earlier
      // in this very pass — so the input cardinalities reflect every
      // already-learned dimension (a stale snapshot would underestimate the
      // denominator and overshoot s_hat, breaching the first-quadrant
      // invariant). Inputs are error-free or fully learned here, so the
      // recosted child cardinalities are exact.
      const PlanCostDetail detail = opt_->RecostPlanAt(plan_root, *qrun);
      double lrows = -1.0, rrows = -1.0;
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i] == node->left.get()) lrows = detail.nodes[i].rows;
        if (nodes[i] == node->right.get()) rrows = detail.nodes[i].rows;
      }
      if (lrows < 0.0 || rrows < 0.0) continue;
      denom = lrows * rrows;
      for (int j : node->join_idxs) {
        if (j == ed.predicate_index) continue;
        bool is_error_dim = false;
        for (size_t e = 0; e < q.error_dims.size(); ++e) {
          if (q.error_dims[e].kind == DimKind::kJoin &&
              q.error_dims[e].predicate_index == j && !(*learned)[e]) {
            is_error_dim = true;
          }
        }
        if (is_error_dim) {
          denom = 0.0;
          break;
        }
        denom *= accurate.JoinSelectivity(j);
      }
    }
    if (denom <= 0.0) continue;

    const double s_hat = static_cast<double>(counters->tuples_out) / denom;
    const double clamped = std::clamp(s_hat, ed.lo, ed.hi);
    if (clamped > (*qrun)[d] * (1.0 + kRelEps)) {
      (*qrun)[d] = clamped;
      moved = true;
    }
    if (counters->finished) {
      (*learned)[d] = true;
      moved = true;
    }
  }
  return moved;
}

DriverResult BouquetDriver::RunOptimized() {
  DriverResult res;
  const QuerySpec& q = opt_->query();
  const EssGrid& grid = diagram_->grid();
  const int dims = q.NumDims();
  const auto t0 = std::chrono::steady_clock::now();

  DimVector qrun(dims);
  std::vector<bool> learned(dims, false);
  for (int d = 0; d < dims; ++d) qrun[d] = q.error_dims[d].lo;

  auto all_learned = [&]() {
    return std::all_of(learned.begin(), learned.end(),
                       [](bool b) { return b; });
  };

  auto final_execution = [&](std::chrono::steady_clock::time_point t_begin) {
    const Plan plan = opt_->OptimizeAt(qrun);
    ExecContext ctx = MakeContext();
    std::vector<Row> rows;
    const auto t1 = std::chrono::steady_clock::now();
    const ExecutionOutcome out = ExecutePlan(
        *plan.root, &ctx, std::numeric_limits<double>::infinity(), &rows);
    const auto t2 = std::chrono::steady_clock::now();
    DriverStep step;
    step.contour = res.contours_crossed;
    step.plan_id = diagram_->FindPlan(plan.signature);
    step.plan_signature = plan.signature;
    step.budget = std::numeric_limits<double>::infinity();
    step.charged = out.cost_charged;
    step.wall_seconds = Seconds(t1, t2);
    step.completed = out.status == ExecResult::kDone;
    res.steps.push_back(step);
    ++res.num_executions;
    res.total_cost_units += out.cost_charged;
    res.completed = out.status == ExecResult::kDone;
    res.final_plan = step.plan_id;
    res.rows = std::move(rows);
    res.wall_seconds = Seconds(t_begin, t2);
    HarvestSelectivities(*plan.root, &ctx, &qrun, &learned);
    res.discovered_selectivities = qrun;
  };

  size_t k = 0;
  while (k < bouquet_->contours.size()) {
    const BouquetContour& contour = bouquet_->contours[k];
    const double budget = contour.budget;
    res.contours_crossed = static_cast<int>(k);

    if (all_learned()) {
      final_execution(t0);
      return res;
    }
    // Early skip: optimal cost at the lower-bound location already exceeds
    // this contour's budget.
    if (opt_->OptimizeAt(qrun).cost > budget * (1.0 + kRelEps)) {
      ++k;
      continue;
    }

    std::vector<int> executed;
    bool advanced = false;
    while (!advanced) {
      if (all_learned()) {
        final_execution(t0);
        return res;
      }
      // Candidate plans: contour points in the first quadrant of q_run.
      std::vector<int> remaining;
      for (size_t i = 0; i < contour.points.size(); ++i) {
        const DimVector p = grid.SelectivityAt(contour.points[i]);
        bool quadrant = true;
        for (int d = 0; d < dims; ++d) {
          if (p[d] < qrun[d] * (1.0 - kRelEps)) {
            quadrant = false;
            break;
          }
        }
        if (!quadrant) continue;
        const int plan = contour.plan_at[i];
        if (std::find(executed.begin(), executed.end(), plan) !=
                executed.end() ||
            std::find(remaining.begin(), remaining.end(), plan) !=
                remaining.end()) {
          continue;
        }
        remaining.push_back(plan);
      }
      if (remaining.empty()) {
        ++k;
        break;
      }

      // Pick: cheapest at q_run within a 20% group, deepest unlearned
      // error node.
      int chosen = remaining.front();
      {
        double min_cost = std::numeric_limits<double>::infinity();
        std::vector<double> costs(remaining.size());
        for (size_t i = 0; i < remaining.size(); ++i) {
          costs[i] =
              opt_->CostPlanAt(*diagram_->plan(remaining[i]).root, qrun);
          min_cost = std::min(min_cost, costs[i]);
        }
        int best_depth = -2;
        for (size_t i = 0; i < remaining.size(); ++i) {
          if (costs[i] > min_cost * 1.2) continue;
          const PlanNode& root = *diagram_->plan(remaining[i]).root;
          int depth = -1;
          for (int d = 0; d < dims; ++d) {
            if (learned[d]) continue;
            const ErrorDimension& ed = q.error_dims[d];
            depth = std::max(depth, ErrorNodeMaxDepth(
                                        root, ed.kind == DimKind::kJoin,
                                        ed.predicate_index));
          }
          if (depth > best_depth) {
            best_depth = depth;
            chosen = remaining[i];
          }
        }
      }

      // Learning dimension (deepest unlearned) and its spill subtree.
      const Plan& plan = diagram_->plan(chosen);
      int learn_dim = -1;
      int learn_depth = -1;
      for (int d = 0; d < dims; ++d) {
        if (learned[d]) continue;
        const ErrorDimension& ed = q.error_dims[d];
        const int depth = ErrorNodeMaxDepth(
            *plan.root, ed.kind == DimKind::kJoin, ed.predicate_index);
        if (depth > learn_depth) {
          learn_depth = depth;
          learn_dim = d;
        }
      }
      const PlanNode* spill_root = nullptr;
      if (learn_dim >= 0) {
        const ErrorDimension& ed = q.error_dims[learn_dim];
        spill_root = FindPredicateNode(
            *plan.root, ed.kind == DimKind::kJoin, ed.predicate_index);
      }
      const bool spill_is_full = spill_root == plan.root.get();

      ExecContext ctx = MakeContext();
      std::vector<Row> rows;
      const auto t1 = std::chrono::steady_clock::now();
      ExecutionOutcome out;
      if (spill_root != nullptr && !spill_is_full) {
        out = ExecuteSpilled(*spill_root, &ctx, budget);
      } else {
        out = ExecutePlan(*plan.root, &ctx, budget, &rows);
      }
      const auto t2 = std::chrono::steady_clock::now();

      DriverStep step;
      step.contour = static_cast<int>(k);
      step.plan_id = chosen;
      step.plan_signature = plan.signature;
      step.budget = budget;
      step.charged = out.cost_charged;
      step.wall_seconds = Seconds(t1, t2);
      step.spilled = spill_root != nullptr && !spill_is_full;
      step.learned_dim = learn_dim;
      step.completed =
          out.status == ExecResult::kDone && !step.spilled;
      res.steps.push_back(step);
      ++res.num_executions;
      res.total_cost_units += out.cost_charged;

      if (out.status == ExecResult::kDone && !step.spilled) {
        // A generic execution finished: this is the query result. Harvest
        // the completed run's counters first — they pin down the actual
        // selectivities exactly (useful for workload error logs).
        HarvestSelectivities(*plan.root, &ctx, &qrun, &learned);
        res.completed = true;
        res.final_plan = chosen;
        res.rows = std::move(rows);
        res.wall_seconds = Seconds(t0, t2);
        res.discovered_selectivities = qrun;
        return res;
      }

      const PlanNode& harvest_root =
          step.spilled ? *spill_root : *plan.root;
      HarvestSelectivities(harvest_root, &ctx, &qrun, &learned);
      executed.push_back(chosen);

      // Early contour change once the optimal cost at q_run exceeds the
      // budget.
      if (opt_->OptimizeAt(qrun).cost > budget * (1.0 + kRelEps)) {
        ++k;
        advanced = true;
      }
    }
  }

  // All contours exhausted: execute the optimal plan at the discovered
  // location to completion.
  final_execution(t0);
  return res;
}

DriverResult BouquetDriver::RunSinglePlan(const PlanNode& root) {
  DriverResult res;
  ExecContext ctx = MakeContext();
  const auto t1 = std::chrono::steady_clock::now();
  const ExecutionOutcome out = ExecutePlan(
      root, &ctx, std::numeric_limits<double>::infinity(), &res.rows);
  const auto t2 = std::chrono::steady_clock::now();
  res.completed = out.status == ExecResult::kDone;
  res.total_cost_units = out.cost_charged;
  res.wall_seconds = Seconds(t1, t2);
  res.num_executions = 1;
  return res;
}

}  // namespace bouquet

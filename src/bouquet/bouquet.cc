#include "bouquet/bouquet.h"

#include <algorithm>
#include <set>

#include "ess/anorexic.h"

namespace bouquet {

int PlanBouquet::rho() const {
  int r = 0;
  for (const auto& c : contours) {
    r = std::max(r, static_cast<int>(c.plan_ids.size()));
  }
  return r;
}

PlanBouquet BuildBouquet(const PlanDiagram& diagram, QueryOptimizer* opt,
                         const BouquetParams& params) {
  const ContourSet contours = IdentifyContours(diagram, params.ratio);

  // Union of contour points (deduplicated), for a single reduction pass.
  std::vector<uint64_t> union_points;
  for (const auto& pts : contours.points) {
    union_points.insert(union_points.end(), pts.begin(), pts.end());
  }
  std::sort(union_points.begin(), union_points.end());
  union_points.erase(
      std::unique(union_points.begin(), union_points.end()),
      union_points.end());

  // Plan assignment on the contour points: reduced or native.
  std::vector<int> assignment(union_points.size());
  if (params.anorexic && !union_points.empty()) {
    AnorexicResult red =
        AnorexicReduce(diagram, opt, params.lambda, &union_points);
    assignment = std::move(red.plan_at);
  } else {
    for (size_t i = 0; i < union_points.size(); ++i) {
      assignment[i] = diagram.plan_at(union_points[i]);
    }
  }
  auto assigned_plan = [&](uint64_t point) {
    const auto it = std::lower_bound(union_points.begin(),
                                     union_points.end(), point);
    return assignment[it - union_points.begin()];
  };

  PlanBouquet bouquet;
  bouquet.params = params;
  bouquet.cmin = contours.cmin;
  bouquet.cmax = contours.cmax;
  // The anorexic reduction licenses plans that are up to (1+lambda) above
  // optimal, so contour budgets are inflated accordingly (Section 4.3).
  const double inflation = params.anorexic ? (1.0 + params.lambda) : 1.0;

  std::set<int> union_plans;
  for (size_t k = 0; k < contours.step_costs.size(); ++k) {
    BouquetContour bc;
    bc.step_cost = contours.step_costs[k];
    bc.budget = bc.step_cost * inflation;
    bc.points = contours.points[k];
    bc.plan_at.reserve(bc.points.size());
    std::set<int> distinct;
    for (uint64_t p : bc.points) {
      const int plan = assigned_plan(p);
      bc.plan_at.push_back(plan);
      distinct.insert(plan);
      union_plans.insert(plan);
    }
    bc.plan_ids.assign(distinct.begin(), distinct.end());
    bouquet.contours.push_back(std::move(bc));
  }
  bouquet.plan_ids.assign(union_plans.begin(), union_plans.end());
  return bouquet;
}

}  // namespace bouquet

// Real-data bouquet execution driver (Section 6.7 / Table 3).
//
// Unlike the cost-based simulator, this driver actually runs the Volcano
// executor on generated data: plans are executed with cost-metered budgets,
// aborted executions jettison their intermediate results, per-node tuple
// counters feed the running selectivity location q_run, spill-mode
// executions run only the subtree up to the first error node, and the final
// completing execution returns the true query result rows.

#ifndef BOUQUET_BOUQUET_DRIVER_H_
#define BOUQUET_BOUQUET_DRIVER_H_

#include <string>
#include <vector>

#include "bouquet/bouquet.h"
#include "executor/builder.h"
#include "executor/exec_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"

namespace bouquet {

/// Log entry for one partial/full execution.
struct DriverStep {
  /// Sentinel `contour` value for unbudgeted native runs (RunSinglePlan):
  /// the step belongs to no ladder contour. Contour-indexed consumers must
  /// bucket it explicitly — use HistogramSteps() instead of indexing
  /// `by_contour[step.contour]` directly.
  static constexpr int kNoContour = -1;

  int contour = 0;
  int plan_id = -1;
  std::string plan_signature;
  double budget = 0.0;
  double charged = 0.0;     ///< cost units actually consumed
  double wall_seconds = 0.0;
  /// Buffer-pool page accesses charged during this execution (zero on
  /// in-memory databases); reads are misses, hits are cached pages.
  int64_t page_reads = 0;
  int64_t page_hits = 0;
  bool completed = false;
  bool spilled = false;
  int learned_dim = -1;
};

/// Outcome of a full bouquet-driven query execution.
struct DriverResult {
  bool completed = false;
  double total_cost_units = 0.0;
  double wall_seconds = 0.0;
  int num_executions = 0;
  int contours_crossed = 0;
  /// Contours skipped up-front by a feedback warm start (SetWarmStart);
  /// 0 for cold runs.
  int warm_contours_skipped = 0;
  /// Page-access totals summed over all steps (zero on in-memory data).
  int64_t page_reads = 0;
  int64_t page_hits = 0;
  /// Diagram plan id of the completing plan, or -1 (the sentinel) when that
  /// plan is not interned in the diagram — which legitimately happens when
  /// the optimized run's final execution optimizes at the discovered q_run
  /// and finds a plan outside the POSP. `final_plan_signature` is the
  /// canonical identity in either case and is always set on completion.
  int final_plan = -1;
  std::string final_plan_signature;
  std::vector<Row> rows;  ///< the query result
  std::vector<DriverStep> steps;
  /// Optimized runs only: the final q_run lower bounds per error dimension
  /// — the selectivities the discovery process learned. Feed these into a
  /// SelectivityErrorLog to improve future dimension identification.
  DimVector discovered_selectivities;
};

/// Steps bucketed by contour with the DriverStep::kNoContour sentinel kept
/// out of the indexed counts: `by_contour[k]` counts steps on contour k
/// (sized to the deepest contour seen), `native` counts sentinel steps.
/// Every contour-indexed reducer (bench tables, service aggregations) must
/// go through this instead of using `step.contour` as a raw index, which
/// would either crash or silently fold native runs into contour counts.
struct ContourHistogram {
  std::vector<int64_t> by_contour;
  int64_t native = 0;
};

ContourHistogram HistogramSteps(const std::vector<DriverStep>& steps);

/// Executes a query via its plan bouquet against real data.
///
/// Thread-safety: a driver instance is NOT thread-safe (it funnels every
/// execution through its single QueryOptimizer). The supported concurrency
/// pattern — used by BouquetService — is one driver + one optimizer per
/// request, all sharing the same const bouquet/diagram and a Database whose
/// lazy index caches are internally locked.
class BouquetDriver {
 public:
  /// All referenced objects must outlive the driver.
  BouquetDriver(const PlanBouquet& bouquet, const PlanDiagram& diagram,
                QueryOptimizer* opt, Database* db);

  /// Basic algorithm: every plan on every contour, generic executions.
  DriverResult RunBasic();

  /// Optimized algorithm: q_run tracking from instrumentation counters,
  /// spill-mode learning executions, early contour jumps, and a final
  /// full execution of the plan that is optimal at the discovered location.
  ///
  /// Known limitation (Section 5.2's "independent appearances" caveat): two
  /// error dimensions whose predicates are evaluated at the *same* plan node
  /// in every bouquet plan cannot be separated by node-level tuple counters,
  /// so neither is learned; execution then degrades gracefully to
  /// contour-climbing with full budgets (completion and the guarantee are
  /// unaffected, only the learning optimizations are lost).
  DriverResult RunOptimized();

  /// Executes a single plan to completion without budget (the NAT baseline
  /// and the oracle "optimal at q_a" comparison of Table 3). Emits exactly
  /// one DriverStep (contour -1 = "no contour, native run") so aggregations
  /// over `steps` count native runs like every other execution path.
  DriverResult RunSinglePlan(const PlanNode& root);

  /// Feedback warm start: the next RunOptimized() begins its ladder at
  /// `start_contour` (clamped into [0, contours)) instead of 0. q_run still
  /// starts at the dimension lows, so discovery and plan pruning behave as
  /// in a cold run — only the cheap contour prefix is skipped. Completion
  /// is unconditional (contour-region domination, see contours.h); the
  /// Theorem-3 MSO bound is preserved when the feedback seed that chose
  /// the contour is dominated by q_a (feedback/warm_start.h).
  void SetWarmStart(int start_contour) {
    warm_start_ = start_contour > 0 ? start_contour : 0;
  }

  /// Attaches observability sinks (either may be null). Spans nest under
  /// `parent` when given (e.g. the service's request span); pass nullptr
  /// for a self-rooted trace. Metric instruments are resolved once here so
  /// the run loops only touch pre-bound counters.
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics,
                        const obs::Span* parent = nullptr);

  /// Selects the execution engine for every subsequent (partial) execution.
  /// Defaults to the vectorized batch engine; both engines produce
  /// bit-identical cost accounting, step sequences, and result multisets
  /// (enforced by the differential harness), so this is a throughput knob
  /// and the scalar engine doubles as the differential-testing oracle.
  void SetEngine(ExecEngine engine) { engine_ = engine; }
  ExecEngine engine() const { return engine_; }

 private:
  ExecContext MakeContext();
  // Pre-resolved metric instruments (null when no registry is attached).
  struct Instruments {
    obs::Counter* executions = nullptr;
    obs::Counter* contour_crossings = nullptr;
    obs::Counter* spills = nullptr;
    obs::Counter* fallbacks = nullptr;
    obs::Counter* dims_learned = nullptr;
    obs::Histogram* budget_utilization = nullptr;
  };
  // Fills `span` (started before the execution so operator spans nest
  // under it) with the step's record, ends it, and updates the metrics.
  void ObserveStep(const DriverStep& step, obs::Span* span);
  // Updates q_run lower bounds from the instrumentation of a finished or
  // aborted execution of `plan_root`; returns true if any bound moved.
  bool HarvestSelectivities(const PlanNode& plan_root, ExecContext* ctx,
                            DimVector* qrun, std::vector<bool>* learned);

  const PlanBouquet* bouquet_;
  const PlanDiagram* diagram_;
  QueryOptimizer* opt_;
  Database* db_;
  ExecEngine engine_ = ExecEngine::kBatch;
  int warm_start_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments ins_;
  uint64_t trace_parent_ = 0;  ///< parent span id for the run root span
  uint64_t trace_id_ = 0;
};

}  // namespace bouquet

#endif  // BOUQUET_BOUQUET_DRIVER_H_

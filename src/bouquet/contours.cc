#include "bouquet/contours.h"

#include <cassert>

#include "common/math_util.h"

namespace bouquet {

ContourSet IdentifyContours(const PlanDiagram& diagram, double ratio) {
  const EssGrid& grid = diagram.grid();
  ContourSet out;
  out.cmin = diagram.Cmin();
  out.cmax = diagram.Cmax();
  out.step_costs = GeometricSteps(out.cmin, out.cmax, ratio);
  const int m = static_cast<int>(out.step_costs.size());
  out.points.resize(m);

  // Small relative slack so points exactly on a step stay inside it.
  constexpr double kEps = 1e-12;
  grid.ForEach([&](uint64_t linear, const GridPoint& p) {
    const double c = diagram.cost_at(linear);
    for (int k = 0; k < m; ++k) {
      const double step = out.step_costs[k];
      if (c > step * (1.0 + kEps)) continue;  // outside region k
      // Frontier test: every +1 successor must cost more than the step.
      bool frontier = true;
      for (int d = 0; d < grid.dims() && frontier; ++d) {
        if (p[d] + 1 >= grid.resolution(d)) continue;  // grid boundary
        const uint64_t succ = grid.LinearWithDim(linear, d, p[d] + 1);
        if (diagram.cost_at(succ) <= step * (1.0 + kEps)) frontier = false;
      }
      if (frontier) out.points[k].push_back(linear);
    }
  });
  return out;
}

int BandOf(const ContourSet& contours, double pic_cost) {
  constexpr double kEps = 1e-12;
  for (size_t k = 0; k < contours.step_costs.size(); ++k) {
    if (pic_cost <= contours.step_costs[k] * (1.0 + kEps)) {
      return static_cast<int>(k);
    }
  }
  return static_cast<int>(contours.step_costs.size()) - 1;
}

}  // namespace bouquet

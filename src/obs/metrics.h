// Runtime observability, part 2: a process-local metrics registry.
//
// Counters, gauges, and fixed-bucket histograms, named in the Prometheus
// style (snake_case, `_total` suffix for counters) and exportable both as
// Prometheus text exposition format (the examples/bouquet_server "/metrics"
// dump) and as a JSON object (machine-friendly for the bench harness and
// EXPERIMENTS.md table regeneration).
//
// Instruments are created once via Get* and returned as stable raw pointers
// owned by the registry (valid for the registry's lifetime), so the hot
// path is a single relaxed atomic add — no map lookup, no lock. The
// registry's name index is GUARDED_BY a Mutex from the capability layer
// (common/synchronization.h); histograms serialize their bucket updates
// through their own leaf Mutex.
//
// Thread-safety: all methods of all classes here may be called from any
// thread concurrently.

#ifndef BOUQUET_OBS_METRICS_H_
#define BOUQUET_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/synchronization.h"

namespace bouquet {
namespace obs {

/// Monotonically increasing count (lock-free).
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (lock-free).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // CAS loop instead of C++20 atomic<double>::fetch_add for portability
    // across the GCC/Clang versions the CI matrix builds with.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (cumulative buckets on export, Prometheus-style:
/// bucket i counts observations <= bounds[i], plus an implicit +Inf).
class Histogram {
 public:
  /// `bounds` must be strictly increasing; the +Inf bucket is implicit.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;    ///< upper bounds, +Inf excluded
    std::vector<uint64_t> counts;  ///< per-bucket (non-cumulative), +Inf last
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

 private:
  const std::vector<double> bounds_;
  mutable Mutex mu_;
  std::vector<uint64_t> counts_ GUARDED_BY(mu_);
  uint64_t count_ GUARDED_BY(mu_) = 0;
  double sum_ GUARDED_BY(mu_) = 0.0;
};

/// Named instruments with Prometheus/JSON export. Re-requesting an existing
/// name returns the same instrument (help/bounds of the first registration
/// win), so independent subsystems can share counters by name.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  /// Prometheus text exposition format (HELP/TYPE comments, cumulative
  /// histogram buckets with an +Inf bucket, _sum and _count series).
  std::string ExportPrometheus() const;

  /// One JSON object keyed by metric name; histograms expand to
  /// {"buckets":[{"le":..,"count":..},...],"count":..,"sum":..}.
  std::string ExportJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindLocked(const std::string& name) REQUIRES(mu_);

  mutable Mutex mu_;
  /// Registration order, preserved in exports for stable diffs.
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
};

/// Default compile-latency buckets (seconds): compile times range from
/// sub-millisecond warm paths to tens of seconds for 3D grids.
std::vector<double> CompileLatencyBuckets();

/// Default buckets for charged/budget utilization ratios; budgets are only
/// ever exceeded by one operator quantum, so the tail above 1.0 is short.
std::vector<double> BudgetUtilizationBuckets();

/// Default buckets for per-run sub-optimality (theory bound: 4rho(1+lambda)).
std::vector<double> SubOptimalityBuckets();

/// Default buckets for network request latency in seconds (0.1 ms – 10 s):
/// cache-warm simulated requests land sub-millisecond; cold compiles and
/// overload queueing push into whole seconds.
std::vector<double> NetLatencyBuckets();

/// Default buckets for same-template batch sizes (powers of two up to the
/// router's max_batch ceiling).
std::vector<double> BatchSizeBuckets();

}  // namespace obs
}  // namespace bouquet

#endif  // BOUQUET_OBS_METRICS_H_

// Runtime observability, part 1: a lightweight nested-span tracer.
//
// The bouquet guarantees (MSO <= 4rho(1+lambda), Theorem 3; q_run learning,
// Section 5.2) are statements about what the run-time phase *did*: budgets
// charged, contours crossed, spills issued, dimensions learned. The Tracer
// records exactly that as a tree of spans — compile -> request -> contour ->
// plan-execution step -> operator — into a fixed-capacity in-memory ring
// buffer (oldest spans dropped under pressure, never blocking the hot path)
// with JSONL export for offline analysis and schema-checked CI validation
// (scripts/check_trace_schema.py).
//
// Usage (null-safe: a null Tracer* yields disabled no-op spans, so
// instrumented code needs no branching):
//
//   obs::Span run = obs::Tracer::Begin(tracer, "driver.run_basic");
//   obs::Span step = obs::Tracer::Begin(tracer, "driver.step", &run);
//   step.Num("budget", b).Num("charged", c).Flag("completed", done);
//   step.End();   // stamps duration, pushes into the ring buffer
//
// Thread-safety: a Span is owned by one thread; Tracer::Push (called by
// Span::End) and the snapshot/export methods lock the ring-buffer Mutex and
// may be called from any thread concurrently (the concurrent BouquetService
// shares one tracer across all request threads).

#ifndef BOUQUET_OBS_TRACE_H_
#define BOUQUET_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"

namespace bouquet {
namespace obs {

/// One completed span. Numeric attributes carry the quantitative record
/// (budget, charged, plan_id, ...); string attributes carry identities
/// (plan signature, q_run snapshot).
struct TraceEvent {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span
  uint64_t trace_id = 0;   ///< shared by a root span and its descendants
  std::string name;
  double start_s = 0.0;  ///< seconds since the tracer's epoch
  double dur_s = 0.0;
  std::vector<std::pair<std::string, double>> num_attrs;
  std::vector<std::pair<std::string, std::string>> str_attrs;
};

class Tracer;

/// Movable handle for an in-flight span. A default-constructed (or
/// null-tracer) span is disabled: every method is a cheap no-op.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  bool enabled() const { return tracer_ != nullptr; }
  uint64_t id() const { return ev_.span_id; }
  uint64_t trace_id() const { return ev_.trace_id; }

  Span& Num(const char* key, double value);
  Span& Flag(const char* key, bool value) {
    return Num(key, value ? 1.0 : 0.0);
  }
  Span& Str(const char* key, std::string value);

  /// Stamps the duration and hands the event to the tracer. Idempotent
  /// (the destructor calls it too).
  void End();

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  TraceEvent ev_;
  std::chrono::steady_clock::time_point start_tp_;
};

/// Fixed-capacity ring buffer of completed spans.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 8192);

  /// Starts a span; `parent` (optional) provides the parent/trace linkage.
  Span StartSpan(const char* name, const Span* parent = nullptr);

  /// Starts a span under explicit ids — for spans whose parent handle is
  /// not reachable at the call site (e.g. the executor's finished-node hook
  /// parenting under the driver's step span).
  Span StartSpanUnder(const char* name, uint64_t parent_id,
                      uint64_t trace_id);

  /// Null-safe factory: a null tracer yields a disabled span.
  static Span Begin(Tracer* tracer, const char* name,
                    const Span* parent = nullptr) {
    // NOLINTNEXTLINE(bouquet-trace-name): forwarder; call sites are checked
    return tracer == nullptr ? Span() : tracer->StartSpan(name, parent);
  }
  static Span BeginUnder(Tracer* tracer, const char* name,
                         uint64_t parent_id, uint64_t trace_id) {
    return tracer == nullptr ? Span()
                             : tracer->StartSpanUnder(name, parent_id,
                                                      trace_id);
  }

  /// Completed spans, oldest first. (Copy: safe to inspect while other
  /// threads keep tracing.)
  std::vector<TraceEvent> Snapshot() const;

  /// One JSON object per line:
  ///   {"span_id":..,"parent_id":..,"trace_id":..,"name":"..","start":..,
  ///    "dur":..,"attrs":{..},"sattrs":{..}}
  /// Non-finite numeric attribute values are exported as the strings
  /// "inf"/"-inf"/"nan" (JSON numbers cannot represent them); consumers —
  /// and scripts/check_trace_schema.py — accept both forms.
  void ExportJsonl(std::ostream& os) const;
  Status ExportJsonlFile(const std::string& path) const;

  size_t capacity() const { return capacity_; }
  /// Spans evicted from the ring buffer since construction/Clear.
  uint64_t dropped() const;
  void Clear();

 private:
  friend class Span;
  void Push(TraceEvent event);
  double SinceEpoch(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double>(tp - epoch_).count();
  }

  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_id_{1};

  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);  ///< chronological, wraps
  size_t head_ GUARDED_BY(mu_) = 0;  ///< next write slot once full
  bool full_ GUARDED_BY(mu_) = false;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace bouquet

#endif  // BOUQUET_OBS_TRACE_H_

#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "common/str_util.h"

namespace bouquet {
namespace obs {

namespace {

// Shortest representation that parses back to exactly `v` ("0.1", not
// "0.10000000000000001") — bucket bounds double as grep targets in CI.
std::string RoundTrip(double v) {
  for (int prec = 15; prec <= 17; ++prec) {
    std::string s = StrPrintf("%.*g", prec, v);
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  return StrPrintf("%.17g", v);
}

std::string FmtDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return RoundTrip(v);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must be increasing");
  MutexLock lock(&mu_);
  counts_.assign(bounds_.size() + 1, 0);  // +1: the implicit +Inf bucket
}

void Histogram::Observe(double value) {
  const size_t b =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  MutexLock lock(&mu_);
  ++counts_[b];
  ++count_;
  sum_ += value;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  MutexLock lock(&mu_);
  s.counts = counts_;
  s.count = count_;
  s.sum = sum_;
  return s;
}

MetricsRegistry::Entry* MetricsRegistry::FindLocked(const std::string& name) {
  for (auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(&mu_);
  if (Entry* e = FindLocked(name)) {
    assert(e->kind == Kind::kCounter && "metric re-registered as a counter");
    return e->counter.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = Kind::kCounter;
  e->counter = std::make_unique<Counter>();
  Counter* out = e->counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock lock(&mu_);
  if (Entry* e = FindLocked(name)) {
    assert(e->kind == Kind::kGauge && "metric re-registered as a gauge");
    return e->gauge.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = Kind::kGauge;
  e->gauge = std::make_unique<Gauge>();
  Gauge* out = e->gauge.get();
  entries_.push_back(std::move(e));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  MutexLock lock(&mu_);
  if (Entry* e = FindLocked(name)) {
    assert(e->kind == Kind::kHistogram &&
           "metric re-registered as a histogram");
    return e->histogram.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = Kind::kHistogram;
  e->histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = e->histogram.get();
  entries_.push_back(std::move(e));
  return out;
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::string out;
  MutexLock lock(&mu_);
  for (const auto& e : entries_) {
    out += "# HELP " + e->name + " " + e->help + "\n";
    switch (e->kind) {
      case Kind::kCounter:
        out += "# TYPE " + e->name + " counter\n";
        out += e->name + " " +
               StrPrintf("%llu",
                         static_cast<unsigned long long>(
                             e->counter->value())) +
               "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + e->name + " gauge\n";
        out += e->name + " " + FmtDouble(e->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + e->name + " histogram\n";
        const Histogram::Snapshot s = e->histogram->snapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < s.counts.size(); ++i) {
          cumulative += s.counts[i];
          const std::string le =
              i < s.bounds.size() ? FmtDouble(s.bounds[i]) : "+Inf";
          out += e->name + "_bucket{le=\"" + le + "\"} " +
                 StrPrintf("%llu",
                           static_cast<unsigned long long>(cumulative)) +
                 "\n";
        }
        out += e->name + "_sum " + FmtDouble(s.sum) + "\n";
        out += e->name + "_count " +
               StrPrintf("%llu", static_cast<unsigned long long>(s.count)) +
               "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::string out = "{";
  MutexLock lock(&mu_);
  bool first = true;
  for (const auto& e : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + e->name + "\":";
    switch (e->kind) {
      case Kind::kCounter:
        out += StrPrintf("%llu",
                         static_cast<unsigned long long>(e->counter->value()));
        break;
      case Kind::kGauge: {
        const double v = e->gauge->value();
        out += std::isfinite(v) ? RoundTrip(v) : "null";
        break;
      }
      case Kind::kHistogram: {
        const Histogram::Snapshot s = e->histogram->snapshot();
        out += "{\"buckets\":[";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < s.counts.size(); ++i) {
          cumulative += s.counts[i];
          if (i > 0) out += ",";
          const std::string le = i < s.bounds.size()
                                     ? RoundTrip(s.bounds[i])
                                     : "\"inf\"";
          out += "{\"le\":" + le + ",\"count\":" +
                 StrPrintf("%llu",
                           static_cast<unsigned long long>(cumulative)) +
                 "}";
        }
        out += "],\"count\":" +
               StrPrintf("%llu", static_cast<unsigned long long>(s.count)) +
               ",\"sum\":" +
               (std::isfinite(s.sum) ? RoundTrip(s.sum) : "null") +
               "}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

std::vector<double> CompileLatencyBuckets() {
  return {0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
          30.0};
}

std::vector<double> BudgetUtilizationBuckets() {
  return {0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.01, 1.1, 1.5, 2.0};
}

std::vector<double> SubOptimalityBuckets() {
  return {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0};
}

std::vector<double> NetLatencyBuckets() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
          0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
}

std::vector<double> BatchSizeBuckets() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
}

}  // namespace obs
}  // namespace bouquet

#include "obs/trace.h"

#include <cmath>
#include <fstream>

#include "common/str_util.h"

namespace bouquet {
namespace obs {

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

// A double as a JSON value; non-finite values become quoted strings.
std::string JsonNumber(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  return StrPrintf("%.17g", v);
}

}  // namespace

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    ev_ = std::move(other.ev_);
    start_tp_ = other.start_tp_;
    other.tracer_ = nullptr;
  }
  return *this;
}

Span& Span::Num(const char* key, double value) {
  if (tracer_ != nullptr) ev_.num_attrs.emplace_back(key, value);
  return *this;
}

Span& Span::Str(const char* key, std::string value) {
  if (tracer_ != nullptr) ev_.str_attrs.emplace_back(key, std::move(value));
  return *this;
}

void Span::End() {
  if (tracer_ == nullptr) return;
  ev_.dur_s = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_tp_)
                  .count();
  tracer_->Push(std::move(ev_));
  tracer_ = nullptr;
}

Tracer::Tracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

Span Tracer::StartSpan(const char* name, const Span* parent) {
  const bool linked = parent != nullptr && parent->enabled();
  return StartSpanUnder(name, linked ? parent->id() : 0,
                        linked ? parent->trace_id() : 0);
}

Span Tracer::StartSpanUnder(const char* name, uint64_t parent_id,
                            uint64_t trace_id) {
  Span s;
  s.tracer_ = this;
  s.start_tp_ = std::chrono::steady_clock::now();
  s.ev_.span_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  s.ev_.parent_id = parent_id;
  // Root spans anchor a fresh trace; children inherit the root's id.
  s.ev_.trace_id = parent_id == 0 ? s.ev_.span_id : trace_id;
  s.ev_.name = name;
  s.ev_.start_s = SinceEpoch(s.start_tp_);
  return s;
}

void Tracer::Push(TraceEvent event) {
  MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  full_ = true;
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (full_) {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
  } else {
    out = ring_;
  }
  return out;
}

uint64_t Tracer::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

void Tracer::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  head_ = 0;
  full_ = false;
  dropped_ = 0;
}

void Tracer::ExportJsonl(std::ostream& os) const {
  for (const TraceEvent& e : Snapshot()) {
    os << "{\"span_id\":" << e.span_id << ",\"parent_id\":" << e.parent_id
       << ",\"trace_id\":" << e.trace_id << ",\"name\":\""
       << JsonEscape(e.name) << "\",\"start\":" << JsonNumber(e.start_s)
       << ",\"dur\":" << JsonNumber(e.dur_s) << ",\"attrs\":{";
    for (size_t i = 0; i < e.num_attrs.size(); ++i) {
      if (i > 0) os << ',';
      os << '"' << JsonEscape(e.num_attrs[i].first)
         << "\":" << JsonNumber(e.num_attrs[i].second);
    }
    os << "},\"sattrs\":{";
    for (size_t i = 0; i < e.str_attrs.size(); ++i) {
      if (i > 0) os << ',';
      os << '"' << JsonEscape(e.str_attrs[i].first) << "\":\""
         << JsonEscape(e.str_attrs[i].second) << '"';
    }
    os << "}}\n";
  }
}

Status Tracer::ExportJsonlFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os.is_open()) {
    return Status::Internal("cannot open trace export file: " + path);
  }
  ExportJsonl(os);
  os.flush();
  if (!os.good()) return Status::Internal("trace export write failed: " + path);
  return Status::Ok();
}

}  // namespace obs
}  // namespace bouquet

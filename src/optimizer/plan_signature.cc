#include "optimizer/plan_signature.h"

#include "common/str_util.h"

namespace bouquet {

namespace {

void SigRec(const PlanNode& node, std::string* out) {
  out->append(OpTypeShortName(node.op));
  if (node.is_aggregate()) {
    out->append("(");
    if (node.left) SigRec(*node.left, out);
    out->append(")");
    return;
  }
  if (node.op == OpType::kMergeJoin &&
      (node.left_presorted || node.right_presorted)) {
    // Pre-sorted inputs change the physical behavior (sorts are skipped),
    // so they are part of plan identity.
    out->append("{");
    out->append(node.left_presorted ? "s" : "-");
    out->append(node.right_presorted ? "s" : "-");
    out->append("}");
  }
  if (node.is_scan()) {
    out->append(StrPrintf("(t%d", node.table_idx));
    if (node.index_filter >= 0) {
      out->append(StrPrintf(";ix=f%d", node.index_filter));
    }
    if (!node.filter_idxs.empty()) {
      out->append(";");
      for (size_t i = 0; i < node.filter_idxs.size(); ++i) {
        if (i > 0) out->append(",");
        out->append(StrPrintf("f%d", node.filter_idxs[i]));
      }
    }
    out->append(")");
    return;
  }
  out->append("[");
  for (size_t i = 0; i < node.join_idxs.size(); ++i) {
    if (i > 0) out->append(",");
    out->append(StrPrintf("j%d", node.join_idxs[i]));
  }
  if (node.index_join >= 0) out->append(StrPrintf(";ixj%d", node.index_join));
  out->append("](");
  if (node.left) SigRec(*node.left, out);
  out->append(",");
  if (node.right) SigRec(*node.right, out);
  out->append(")");
}

}  // namespace

std::string PlanSignature(const PlanNode& root) {
  std::string out;
  out.reserve(128);
  SigRec(root, &out);
  return out;
}

}  // namespace bouquet

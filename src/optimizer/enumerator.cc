#include "optimizer/enumerator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>

#include "optimizer/plan_signature.h"

namespace bouquet {

namespace {

int EncodeOrder(int table_idx, int col_idx) {
  // 64K columns per table keeps the encoding collision-free for any schema
  // QuerySpec::Validate accepts (<= 20 tables fits comfortably in an int).
  assert(col_idx >= 0 && col_idx < (1 << 16));
  return table_idx * (1 << 16) + col_idx;
}

}  // namespace

PlanEnumerator::PlanEnumerator(const QuerySpec& query, const Catalog& catalog,
                               CostModel cost_model)
    : query_(&query),
      catalog_(&catalog),
      cm_(cost_model),
      graph_(query),
      num_tables_(static_cast<int>(query.tables.size())),
      card_(query, catalog) {
  join_lorder_.reserve(query.joins.size());
  join_rorder_.reserve(query.joins.size());
  for (const auto& j : query.joins) {
    const int lt = query.TableIndex(j.left_table);
    const int rt = query.TableIndex(j.right_table);
    join_lorder_.push_back(
        EncodeOrder(lt, card_.table(lt).ColumnIndex(j.left_column)));
    join_rorder_.push_back(
        EncodeOrder(rt, card_.table(rt).ColumnIndex(j.right_column)));
  }
  const uint64_t full = uint64_t{1} << num_tables_;
  connected_.resize(full, false);
  invariant_.resize(full, false);
  for (uint64_t s = 1; s < full; ++s) {
    connected_[s] = graph_.IsConnectedSubset(s);
    invariant_[s] = card_.SubsetDimMask(s) == 0;
  }
  memo_.resize(full);
  memo_ready_.assign(full, 0);
}

bool PlanEnumerator::OrderInteresting(int order, uint64_t subset) const {
  if (order == kNoOrder) return false;
  const auto& lmask = card_.join_lmasks();
  const auto& rmask = card_.join_rmasks();
  for (size_t j = 0; j < lmask.size(); ++j) {
    const bool l_in = (lmask[j] & subset) != 0;
    const bool r_in = (rmask[j] & subset) != 0;
    if (l_in == r_in) continue;  // internal or fully external join
    if (l_in && join_lorder_[j] == order) return true;
    if (r_in && join_rorder_[j] == order) return true;
  }
  return false;
}

std::vector<PlanEnumerator::Entry> PlanEnumerator::BuildScanEntries(
    int table, const SelectivityResolver& sel) const {
  const TableInfo& t = card_.table(table);
  const double raw_rows = t.stats.row_count;
  const double width = t.stats.row_width_bytes;
  const std::vector<int>& filters = card_.table_filters(table);
  const uint64_t self = uint64_t{1} << table;

  double out_sel = 1.0;
  for (int f : filters) out_sel *= sel.FilterSelectivity(f);
  const double out_rows = raw_rows * out_sel;

  auto make_scan = [&](OpType op, int index_filter, double cost,
                       int order) {
    auto node = std::make_shared<PlanNode>();
    node->op = op;
    node->table_idx = table;
    node->filter_idxs = filters;
    node->index_filter = index_filter;
    node->est_rows = out_rows;
    node->est_cost = cost;
    node->width = width;
    Entry e;
    e.plan = std::move(node);
    e.rows = out_rows;
    e.cost = cost;
    e.width = width;
    e.order = order;
    return e;
  };

  // Sequential scan: the unordered baseline.
  Entry best = make_scan(
      OpType::kSeqScan, -1,
      cm_.SeqScanCost(raw_rows, width, static_cast<int>(filters.size()),
                      out_rows),
      kNoOrder);

  // Index scans: one per indexed filtered column; the chosen filter becomes
  // the index qual and the output arrives sorted on that column.
  std::vector<Entry> order_entries;
  for (int f : filters) {
    const auto& pred = query_->filters[f];
    const int col = t.ColumnIndex(pred.column);
    const ColumnInfo& ci = t.columns[col];
    if (!ci.has_index) continue;
    const double matched = raw_rows * sel.FilterSelectivity(f);
    const double cost = cm_.IndexScanCost(
        raw_rows, width, matched, static_cast<int>(filters.size()) - 1,
        out_rows);
    const int order = EncodeOrder(table, col);
    if (cost < best.cost) {
      // Demote the displaced winner rather than dropping it: it may itself
      // carry an interesting order the new best does not.
      if (best.order != kNoOrder && best.order != order &&
          OrderInteresting(best.order, self)) {
        order_entries.push_back(best);
      }
      best = make_scan(OpType::kIndexScan, f, cost, order);
    } else if (OrderInteresting(order, self)) {
      // Costlier than the best scan, but its order can pay for a skipped
      // sort later.
      order_entries.push_back(make_scan(OpType::kIndexScan, f, cost, order));
    }
  }

  std::vector<Entry> entries;
  entries.push_back(std::move(best));
  for (auto& e : order_entries) {
    // Keep one (the cheapest) entry per distinct order.
    bool superseded = false;
    for (auto& kept : entries) {
      if (kept.order == e.order) {
        if (e.cost < kept.cost) kept = std::move(e);
        superseded = true;
        break;
      }
    }
    if (!superseded) entries.push_back(std::move(e));
  }
  return entries;
}

void PlanEnumerator::ComputeSubset(uint64_t s, const SelectivityResolver& sel,
                                   std::vector<std::vector<Entry>>* dp_out)
    const {
  std::vector<std::vector<Entry>>& dp = *dp_out;
  const auto& join_lmask = card_.join_lmasks();
  const auto& join_rmask = card_.join_rmasks();

  const double out_rows = card_.SubsetRows(s, sel);
  const double out_width = card_.SubsetWidth(s);

  // Deferred candidate: enough to materialize the plan node if it survives
  // the per-subset pruning.
  struct Cand {
    double cost = std::numeric_limits<double>::infinity();
    OpType op = OpType::kHashJoin;
    uint64_t s1 = 0;
    int e1 = 0, e2 = 0;
    int key_join = -1;    // merge key / index-lookup join
    bool lp = false, rp = false;
    int order = kNoOrder;
  };

  Cand best_overall;
  std::map<int, Cand> best_by_order;
  auto consider = [&](const Cand& c) {
    if (c.cost < best_overall.cost) best_overall = c;
    if (c.order != kNoOrder && OrderInteresting(c.order, s)) {
      auto it = best_by_order.find(c.order);
      if (it == best_by_order.end() || c.cost < it->second.cost) {
        best_by_order[c.order] = c;
      }
    }
  };

  for (uint64_t s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
    const uint64_t s2 = s ^ s1;
    if (!connected_[s1] || !connected_[s2]) continue;
    if (dp[s1].empty() || dp[s2].empty()) continue;

    // Crossing join predicates between s1 and s2.
    int cross[64];
    int num_cross = 0;
    for (size_t j = 0; j < join_lmask.size(); ++j) {
      const bool lr = (join_lmask[j] & s1) && (join_rmask[j] & s2);
      const bool rl = (join_lmask[j] & s2) && (join_rmask[j] & s1);
      if (lr || rl) cross[num_cross++] = static_cast<int>(j);
    }
    if (num_cross == 0) continue;

    for (int i1 = 0; i1 < static_cast<int>(dp[s1].size()); ++i1) {
      const Entry& l = dp[s1][i1];
      const InputEst le{l.rows, l.cost, l.width};
      for (int i2 = 0; i2 < static_cast<int>(dp[s2].size()); ++i2) {
        const Entry& r = dp[s2][i2];
        const InputEst re{r.rows, r.cost, r.width};

        // Hash join: right side builds; probe (left) order survives.
        consider({cm_.HashJoinCost(le, re, out_rows), OpType::kHashJoin,
                  s1, i1, i2, -1, false, false, l.order});
        // Materialized nested loops: outer order survives.
        consider({cm_.MaterialNLJoinCost(le, re, out_rows),
                  OpType::kMaterialNLJoin, s1, i1, i2, -1, false, false,
                  l.order});
        // Sort-merge join: any crossing predicate can be the key; inputs
        // already sorted on their key side skip the sort.
        for (int ci = 0; ci < num_cross; ++ci) {
          const int j = cross[ci];
          const bool left_holds_l = (join_lmask[j] & s1) != 0;
          const int lkey = left_holds_l ? join_lorder_[j] : join_rorder_[j];
          const int rkey = left_holds_l ? join_rorder_[j] : join_lorder_[j];
          const bool lp = l.order == lkey;
          const bool rp = r.order == rkey;
          consider({cm_.MergeJoinCost(le, re, out_rows, lp, rp),
                    OpType::kMergeJoin, s1, i1, i2, j, lp, rp, lkey});
        }
        // Index nested loops: inner must be a single base table with an
        // index on a crossing join column; outer order survives. Only the
        // base-table entry (i2 == 0 semantics irrelevant: inner rebuilt).
        if ((s2 & (s2 - 1)) == 0 && i2 == 0) {
          const int t2 = __builtin_ctzll(s2);
          const TableInfo& ti = card_.table(t2);
          const double raw = ti.stats.row_count;
          const int inner_quals =
              static_cast<int>(card_.table_filters(t2).size());
          for (int ci = 0; ci < num_cross; ++ci) {
            const int j = cross[ci];
            const int inner_order = (join_lmask[j] & s2) != 0
                                        ? join_lorder_[j]
                                        : join_rorder_[j];
            const ColumnInfo& col = ti.columns[inner_order % (1 << 16)];
            if (!col.has_index) continue;
            const double prefilter =
                l.rows * raw * sel.JoinSelectivity(j);
            consider({cm_.IndexNLJoinCost(le, raw, prefilter,
                                          inner_quals + num_cross - 1,
                                          out_rows),
                      OpType::kIndexNLJoin, s1, i1, i2, j, false, false,
                      l.order});
          }
        }
      }
    }
  }

  if (!std::isfinite(best_overall.cost)) return;

  // Materialize the survivors: the cheapest overall plus each strictly
  // order-distinct winner.
  auto materialize = [&](const Cand& c) {
    const uint64_t s2 = s ^ c.s1;
    auto node = std::make_shared<PlanNode>();
    node->op = c.op;
    node->left = dp[c.s1][c.e1].plan;
    for (size_t j = 0; j < join_lmask.size(); ++j) {
      const bool lr = (join_lmask[j] & c.s1) && (join_rmask[j] & s2);
      const bool rl = (join_lmask[j] & s2) && (join_rmask[j] & c.s1);
      if (lr || rl) node->join_idxs.push_back(static_cast<int>(j));
    }
    if (c.op == OpType::kMergeJoin) {
      // The merge key must be join_idxs[0] (executor contract).
      auto it = std::find(node->join_idxs.begin(), node->join_idxs.end(),
                          c.key_join);
      assert(it != node->join_idxs.end());
      std::iter_swap(node->join_idxs.begin(), it);
      node->left_presorted = c.lp;
      node->right_presorted = c.rp;
    }
    if (c.op == OpType::kIndexNLJoin) {
      node->index_join = c.key_join;
      // Inner child is an index-lookup scan node on the base table.
      const int t2 = __builtin_ctzll(s2);
      auto inner = std::make_shared<PlanNode>();
      inner->op = OpType::kIndexScan;
      inner->table_idx = t2;
      inner->filter_idxs = card_.table_filters(t2);
      inner->index_filter = -1;  // lookup key is the join, not a filter
      inner->est_rows = dp[s2][0].rows;
      inner->est_cost = 0.0;  // charged inside the join
      inner->width = dp[s2][0].width;
      node->right = std::move(inner);
    } else {
      node->right = dp[s2][c.e2].plan;
    }
    node->est_rows = out_rows;
    node->est_cost = c.cost;
    node->width = out_width;
    Entry e;
    e.plan = std::move(node);
    e.rows = out_rows;
    e.cost = c.cost;
    e.width = out_width;
    e.order = c.order;
    return e;
  };

  dp[s].push_back(materialize(best_overall));
  for (const auto& [order, cand] : best_by_order) {
    if (order == best_overall.order &&
        cand.cost >= best_overall.cost * (1 - 1e-12)) {
      continue;  // the overall winner already carries this order
    }
    dp[s].push_back(materialize(cand));
  }
}

Plan PlanEnumerator::Optimize(const SelectivityResolver& sel) const {
  ++invocations_;
  const uint64_t full = (uint64_t{1} << num_tables_) - 1;
  std::vector<std::vector<Entry>> dp(full + 1);

  for (int t = 0; t < num_tables_; ++t) {
    const uint64_t s = uint64_t{1} << t;
    if (invariant_[s] && memo_ready_[s]) {
      dp[s] = memo_[s];
      ++memo_hits_;
    } else {
      dp[s] = BuildScanEntries(t, sel);
      if (invariant_[s]) {
        memo_[s] = dp[s];
        memo_ready_[s] = 1;
      }
    }
  }

  // Ascending subset order respects DP dependencies (submask < mask).
  for (uint64_t s = 3; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singleton
    if (!connected_[s]) continue;
    if (invariant_[s] && memo_ready_[s]) {
      dp[s] = memo_[s];
      ++memo_hits_;
      continue;
    }
    ComputeSubset(s, sel, &dp);
    if (invariant_[s]) {
      // Cache even the empty outcome: it is equally deterministic.
      memo_[s] = dp[s];
      memo_ready_[s] = 1;
    }
  }

  assert(!dp[full].empty() && "join graph disconnected or no plan found");
  const Entry& top = dp[full][0];
  Plan plan;
  plan.root = top.plan;
  plan.cost = top.cost;
  plan.rows = top.rows;

  // Grouped aggregation sits above the join block (SPJA queries).
  if (query_->aggregate.enabled) {
    const double groups =
        query_->aggregate.EstimateGroups(*catalog_, top.rows);
    auto agg = std::make_shared<PlanNode>();
    agg->op = OpType::kHashAggregate;
    agg->left = top.plan;
    agg->est_rows = groups;
    agg->est_cost =
        cm_.AggregateCost({top.rows, top.cost, top.width}, groups);
    agg->width = 16.0 * (query_->aggregate.group_by.size() + 1);
    plan.root = std::move(agg);
    plan.cost = plan.root->est_cost;
    plan.rows = groups;
  }

  plan.signature = PlanSignature(*plan.root);
  return plan;
}

}  // namespace bouquet

#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace bouquet {

CostParams CostParams::Postgres() { return CostParams{}; }

CostParams CostParams::Commercial() {
  CostParams p;
  p.seq_page_cost = 1.0;
  p.random_page_cost = 2.5;           // assumes a larger buffer pool
  p.cpu_tuple_cost = 0.02;            // heavier per-tuple overheads
  p.cpu_index_tuple_cost = 0.004;
  p.cpu_operator_cost = 0.004;
  p.work_mem_bytes = 16.0 * 1024 * 1024;
  p.hash_op_factor = 1.2;             // more aggressive hash joins
  return p;
}

double CostModel::Pages(double rows, double width) const {
  const double pages = rows * width / p_.page_size_bytes;
  return pages < 1.0 ? 1.0 : pages;
}

double CostModel::SeqScanCost(double table_rows, double width, int num_quals,
                              double out_rows) const {
  const double io = p_.seq_page_cost * Pages(table_rows, width);
  const double cpu = table_rows * (p_.cpu_tuple_cost +
                                   num_quals * p_.cpu_operator_cost);
  return io + cpu + out_rows * p_.cpu_tuple_cost;
}

double CostModel::IndexScanCost(double table_rows, double width,
                                double matched_rows, int num_residual_quals,
                                double out_rows) const {
  (void)width;
  // B-tree descent: a few random pages plus comparison CPU.
  const double descent =
      p_.random_page_cost +
      4.0 * p_.cpu_operator_cost * std::log2(table_rows + 2.0);
  // Uncorrelated heap order: one random page per matched row (upper bound
  // used by the "hard-nut" configuration with indexes on every column).
  const double heap = matched_rows * p_.random_page_cost;
  const double cpu =
      matched_rows * (p_.cpu_index_tuple_cost + p_.cpu_tuple_cost +
                      num_residual_quals * p_.cpu_operator_cost);
  return descent + heap + cpu + out_rows * p_.cpu_tuple_cost;
}

double CostModel::IndexProbeCost(double inner_rows, double matches) const {
  const double descent =
      p_.random_page_cost +
      4.0 * p_.cpu_operator_cost * std::log2(inner_rows + 2.0);
  const double heap =
      matches * (p_.random_page_cost + p_.cpu_index_tuple_cost);
  return descent + heap;
}

double CostModel::IndexNLJoinCost(const InputEst& outer,
                                  double inner_table_rows,
                                  double prefilter_matches,
                                  int num_inner_quals,
                                  double out_rows) const {
  const double descent_each =
      p_.random_page_cost +
      4.0 * p_.cpu_operator_cost * std::log2(inner_table_rows + 2.0);
  const double probes = outer.rows * descent_each;
  const double heap = prefilter_matches *
                      (p_.random_page_cost + p_.cpu_index_tuple_cost +
                       num_inner_quals * p_.cpu_operator_cost);
  return outer.cost + probes + heap + out_rows * p_.cpu_tuple_cost;
}

double CostModel::MaterialNLJoinCost(const InputEst& outer,
                                     const InputEst& inner,
                                     double out_rows) const {
  const double materialize = inner.rows * p_.cpu_tuple_cost;
  const double scan_inner_per_outer = inner.rows * p_.cpu_operator_cost;
  return outer.cost + inner.cost + materialize +
         outer.rows * scan_inner_per_outer + out_rows * p_.cpu_tuple_cost;
}

double CostModel::HashJoinCost(const InputEst& outer, const InputEst& inner,
                               double out_rows) const {
  const double hash_op = p_.hash_op_factor * p_.cpu_operator_cost;
  const double build = inner.rows * (hash_op + p_.cpu_tuple_cost);
  const double probe = outer.rows * hash_op;
  double spill = 0.0;
  if (inner.rows * inner.width > p_.work_mem_bytes) {
    // Multi-batch: write and re-read both sides once.
    spill = 2.0 * p_.seq_page_cost *
            (Pages(inner.rows, inner.width) + Pages(outer.rows, outer.width));
  }
  return outer.cost + inner.cost + build + probe + spill +
         out_rows * p_.cpu_tuple_cost;
}

double CostModel::SortCost(double rows, double width) const {
  if (rows < 2.0) return p_.cpu_operator_cost;
  const double cpu = 2.0 * rows * std::log2(rows) * p_.cpu_operator_cost;
  double io = 0.0;
  if (rows * width > p_.work_mem_bytes) {
    // External merge sort: one write+read pass approximation.
    io = 3.0 * p_.seq_page_cost * Pages(rows, width);
  }
  return cpu + io;
}

double CostModel::AggregateCost(const InputEst& input,
                                double out_groups) const {
  const double hash_op = p_.hash_op_factor * p_.cpu_operator_cost;
  return input.cost + input.rows * (hash_op + p_.cpu_operator_cost) +
         out_groups * p_.cpu_tuple_cost;
}

double CostModel::MergeJoinCost(const InputEst& left, const InputEst& right,
                                double out_rows, bool left_presorted,
                                bool right_presorted) const {
  const double sorts =
      (left_presorted ? 0.0 : SortCost(left.rows, left.width)) +
      (right_presorted ? 0.0 : SortCost(right.rows, right.width));
  const double merge = (left.rows + right.rows) * p_.cpu_operator_cost;
  return left.cost + right.cost + sorts + merge +
         out_rows * p_.cpu_tuple_cost;
}

}  // namespace bouquet

// System-R style dynamic-programming plan enumerator with interesting
// orders.
//
// Enumerates bushy join trees over connected subgraphs of the join graph
// (DPsub), choosing among sequential/index scans and hash / sort-merge /
// index-nested-loop / materialized-nested-loop joins, priced by CostModel.
// Cardinalities follow the classical independence model: the cardinality of
// a relation subset is the product of base cardinalities, applicable filter
// selectivities, and internal join selectivities — which is exactly the model
// under which injected ESS selectivities are well-defined.
//
// Interesting orders: index scans emit rows sorted on their qual column and
// merge joins emit rows sorted on their key; hash/NL joins preserve the
// outer side's order. The DP therefore keeps, per relation subset, the
// cheapest plan overall plus the cheapest plan per sort order that can
// still benefit a pending join (so a future merge join can skip a sort).
//
// Invariant-subplan memoization: a DP subproblem whose tables, filters, and
// internal joins touch no error-prone predicate (CardinalityContext::
// SubsetDimMask == 0) has entries that are independent of the injected ESS
// location. Those entry vectors are computed once per enumerator and reused
// verbatim by every later Optimize() call — bit-identical by construction,
// since the cached vectors are exactly what a fresh run would recompute from
// the same inputs. Plan nodes are immutable shared trees, so reuse across
// returned plans is safe.

#ifndef BOUQUET_OPTIMIZER_ENUMERATOR_H_
#define BOUQUET_OPTIMIZER_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "optimizer/selectivity.h"
#include "query/join_graph.h"
#include "query/query_spec.h"

namespace bouquet {

/// Dynamic-programming enumerator bound to one (query, catalog, cost-model)
/// triple. Construction precomputes connectivity and predicate masks; each
/// Optimize() call then runs the DP for one selectivity assignment.
class PlanEnumerator {
 public:
  PlanEnumerator(const QuerySpec& query, const Catalog& catalog,
                 CostModel cost_model);

  /// Finds the cheapest plan under the resolver's current selectivities.
  Plan Optimize(const SelectivityResolver& sel) const;

  /// Number of optimizer invocations served so far (compile-time overhead
  /// accounting, Section 6.1).
  long long invocations() const { return invocations_; }

  /// Number of DP subproblems served from the invariant-subplan memo
  /// instead of being re-enumerated (summed over all Optimize() calls).
  long long memo_hits() const { return memo_hits_; }

 private:
  // Sort orders are encoded as table_idx * 65536 + column_idx; kNoOrder for
  // unordered streams.
  static constexpr int kNoOrder = -1;

  struct Entry {
    PlanNodeRef plan;
    double rows = 0.0;
    double cost = 0.0;
    double width = 0.0;
    int order = kNoOrder;
  };

  std::vector<Entry> BuildScanEntries(int table,
                                      const SelectivityResolver& sel) const;
  // Enumerates every join decomposition of subset `s` into (*dp)[s]
  // (the relocated DP loop body; leaves (*dp)[s] empty when no finite-cost
  // plan exists).
  void ComputeSubset(uint64_t s, const SelectivityResolver& sel,
                     std::vector<std::vector<Entry>>* dp) const;
  // True when a stream sorted on `order` could still feed a merge join with
  // a relation outside `subset`.
  bool OrderInteresting(int order, uint64_t subset) const;

  const QuerySpec* query_;
  const Catalog* catalog_;
  CostModel cm_;
  JoinGraph graph_;
  int num_tables_;
  CardinalityContext card_;            // shared cardinality derivations
  std::vector<int> join_lorder_;       // encoded left column
  std::vector<int> join_rorder_;       // encoded right column
  std::vector<bool> connected_;        // per subset
  std::vector<bool> invariant_;        // per subset: SubsetDimMask == 0
  mutable std::vector<std::vector<Entry>> memo_;  // invariant subsets only
  mutable std::vector<char> memo_ready_;
  mutable long long invocations_ = 0;
  mutable long long memo_hits_ = 0;
};

}  // namespace bouquet

#endif  // BOUQUET_OPTIMIZER_ENUMERATOR_H_

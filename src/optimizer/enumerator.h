// System-R style dynamic-programming plan enumerator with interesting
// orders.
//
// Enumerates bushy join trees over connected subgraphs of the join graph
// (DPsub), choosing among sequential/index scans and hash / sort-merge /
// index-nested-loop / materialized-nested-loop joins, priced by CostModel.
// Cardinalities follow the classical independence model: the cardinality of
// a relation subset is the product of base cardinalities, applicable filter
// selectivities, and internal join selectivities — which is exactly the model
// under which injected ESS selectivities are well-defined.
//
// Interesting orders: index scans emit rows sorted on their qual column and
// merge joins emit rows sorted on their key; hash/NL joins preserve the
// outer side's order. The DP therefore keeps, per relation subset, the
// cheapest plan overall plus the cheapest plan per sort order that can
// still benefit a pending join (so a future merge join can skip a sort).

#ifndef BOUQUET_OPTIMIZER_ENUMERATOR_H_
#define BOUQUET_OPTIMIZER_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "optimizer/selectivity.h"
#include "query/join_graph.h"
#include "query/query_spec.h"

namespace bouquet {

/// Dynamic-programming enumerator bound to one (query, catalog, cost-model)
/// triple. Construction precomputes connectivity and predicate masks; each
/// Optimize() call then runs the DP for one selectivity assignment.
class PlanEnumerator {
 public:
  PlanEnumerator(const QuerySpec& query, const Catalog& catalog,
                 CostModel cost_model);

  /// Finds the cheapest plan under the resolver's current selectivities.
  Plan Optimize(const SelectivityResolver& sel) const;

  /// Number of optimizer invocations served so far (compile-time overhead
  /// accounting, Section 6.1).
  long long invocations() const { return invocations_; }

 private:
  // Sort orders are encoded as table_idx * 256 + column_idx; kNoOrder for
  // unordered streams.
  static constexpr int kNoOrder = -1;

  struct Entry {
    PlanNodeRef plan;
    double rows = 0.0;
    double cost = 0.0;
    double width = 0.0;
    int order = kNoOrder;
  };

  std::vector<Entry> BuildScanEntries(int table,
                                      const SelectivityResolver& sel) const;
  double SubsetRows(uint64_t subset, const SelectivityResolver& sel) const;
  // True when a stream sorted on `order` could still feed a merge join with
  // a relation outside `subset`.
  bool OrderInteresting(int order, uint64_t subset) const;

  const QuerySpec* query_;
  const Catalog* catalog_;
  CostModel cm_;
  JoinGraph graph_;
  int num_tables_;
  std::vector<const TableInfo*> tables_;           // by query table index
  std::vector<std::vector<int>> table_filters_;    // filter idxs per table
  std::vector<uint64_t> join_lmask_;               // bit of left table
  std::vector<uint64_t> join_rmask_;               // bit of right table
  std::vector<int> join_lorder_;                   // encoded left column
  std::vector<int> join_rorder_;                   // encoded right column
  std::vector<bool> connected_;                    // per subset
  mutable long long invocations_ = 0;
};

}  // namespace bouquet

#endif  // BOUQUET_OPTIMIZER_ENUMERATOR_H_

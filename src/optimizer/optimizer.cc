#include "optimizer/optimizer.h"

#include <algorithm>

namespace bouquet {

QueryOptimizer::QueryOptimizer(const QuerySpec& query, const Catalog& catalog,
                               CostParams params)
    : query_(&query),
      catalog_(&catalog),
      cm_(params),
      enumerator_(query, catalog, cm_),
      resolver_(query, catalog),
      card_(query, catalog) {}

Result<std::unique_ptr<QueryOptimizer>> QueryOptimizer::Create(
    const QuerySpec& query, const Catalog& catalog, CostParams params) {
  Status s = query.Validate(catalog);
  if (!s.ok()) return s;
  return std::make_unique<QueryOptimizer>(query, catalog, params);
}

Plan QueryOptimizer::OptimizeAt(const DimVector& dims) {
  resolver_.Inject(dims);
  return enumerator_.Optimize(resolver_);
}

Plan QueryOptimizer::OptimizeDefault() {
  resolver_.ClearInjection();
  return enumerator_.Optimize(resolver_);
}

double QueryOptimizer::CostPlanAt(const PlanNode& root,
                                  const DimVector& dims) {
  resolver_.Inject(dims);
  return RecostPlanTotal(root, cm_, resolver_, card_);
}

PlanCostDetail QueryOptimizer::RecostPlanAt(const PlanNode& root,
                                            const DimVector& dims) {
  resolver_.Inject(dims);
  return RecostPlan(root, cm_, resolver_, card_);
}

DimVector QueryOptimizer::DefaultDims() const {
  DimVector dims;
  dims.reserve(query_->error_dims.size());
  for (const auto& d : query_->error_dims) {
    const double est =
        d.kind == DimKind::kSelection
            ? resolver_.DefaultFilterSelectivity(d.predicate_index)
            : resolver_.DefaultJoinSelectivity(d.predicate_index);
    dims.push_back(std::clamp(est, d.lo, d.hi));
  }
  return dims;
}

}  // namespace bouquet

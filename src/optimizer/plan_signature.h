// Canonical plan signatures.
//
// POSP construction must recognize "the same plan" across ESS locations, so
// plan identity is a structural signature over operators, tables, access
// paths and applied predicates — explicitly excluding cardinality and cost
// annotations, which vary with the injected selectivities.

#ifndef BOUQUET_OPTIMIZER_PLAN_SIGNATURE_H_
#define BOUQUET_OPTIMIZER_PLAN_SIGNATURE_H_

#include <string>

#include "optimizer/plan.h"

namespace bouquet {

/// Canonical structural signature ("HJ[j0](IS(t0;f1),SS(t2))" style).
std::string PlanSignature(const PlanNode& root);

}  // namespace bouquet

#endif  // BOUQUET_OPTIMIZER_PLAN_SIGNATURE_H_

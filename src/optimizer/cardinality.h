// Shared cardinality derivations for the optimizer stack.
//
// The enumerator, the recoster, and the DP lower bound must price the same
// logical quantities through the *same floating-point derivation*: the
// incremental POSP fast path (ess/posp_generator) proves a recosted plan
// optimal by comparing its recost against a DP lower bound, and only emits
// it when the two agree bit-for-bit with what a full DP run would store.
// Any re-association of the underlying products/sums would break that
// equality silently. CardinalityContext therefore centralizes:
//   * SubsetRows  — output cardinality of a joined relation subset, in the
//                   exact multiplication order the DP enumerator uses
//                   (tables ascending, per-table filters ascending, then
//                   internal joins ascending);
//   * SubsetWidth — output row width, summed in ascending table order;
//   * ScanRows    — base-table scan output, in BuildScanEntries' order
//                   (selectivity product first, then one multiply);
//   * per-subset error-dimension dependency masks, used by the invariant-
//     subplan memo (enumerator) and the bound cache (dp_bound) to decide
//     which DP subproblems are independent of the injected ESS location.

#ifndef BOUQUET_OPTIMIZER_CARDINALITY_H_
#define BOUQUET_OPTIMIZER_CARDINALITY_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/plan.h"
#include "optimizer/selectivity.h"
#include "query/query_spec.h"

namespace bouquet {

/// Bitmask of base tables referenced by a plan subtree (bits index into
/// QuerySpec::tables).
uint64_t PlanTableMask(const PlanNode& root);

/// Precomputed per-(query, catalog) cardinality machinery. Read-only after
/// construction; safe to share across threads.
class CardinalityContext {
 public:
  CardinalityContext(const QuerySpec& query, const Catalog& catalog);

  const QuerySpec& query() const { return *query_; }
  int num_tables() const { return num_tables_; }
  const TableInfo& table(int t) const { return *tables_[t]; }
  const std::vector<int>& table_filters(int t) const {
    return table_filters_[t];
  }
  const std::vector<uint64_t>& join_lmasks() const { return join_lmask_; }
  const std::vector<uint64_t>& join_rmasks() const { return join_rmask_; }

  /// Output cardinality of a relation subset under the classical
  /// independence model, multiplied in the DP enumerator's exact order.
  double SubsetRows(uint64_t subset, const SelectivityResolver& sel) const;

  /// Output row width of a subset, summed in ascending table order (the DP
  /// enumerator's order).
  double SubsetWidth(uint64_t subset) const;

  /// Scan output cardinality in BuildScanEntries' derivation order:
  /// raw_rows * (product of the table's filter selectivities).
  double ScanRows(int table, const SelectivityResolver& sel) const;

  /// Bitmask (bit d = error dimension d) of the ESS dimensions the subset's
  /// cardinalities and costs depend on: selection dims whose table is in the
  /// subset, join dims with both endpoint tables in the subset. A zero mask
  /// means every DP quantity for this subset is invariant across the ESS.
  uint32_t SubsetDimMask(uint64_t subset) const;

 private:
  const QuerySpec* query_;
  int num_tables_ = 0;
  std::vector<const TableInfo*> tables_;         // by query table index
  std::vector<std::vector<int>> table_filters_;  // filter idxs per table
  std::vector<uint64_t> join_lmask_;             // bit of left table
  std::vector<uint64_t> join_rmask_;             // bit of right table
  // Per error dimension: the table mask that must be fully contained in a
  // subset for the dimension to affect it (one bit for selection dims, two
  // for join dims).
  std::vector<uint64_t> dim_masks_;
};

}  // namespace bouquet

#endif  // BOUQUET_OPTIMIZER_CARDINALITY_H_

#include "optimizer/plan.h"

#include <algorithm>

#include "common/str_util.h"

namespace bouquet {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kSeqScan:
      return "SeqScan";
    case OpType::kIndexScan:
      return "IndexScan";
    case OpType::kIndexNLJoin:
      return "IndexNLJoin";
    case OpType::kMaterialNLJoin:
      return "NLJoin";
    case OpType::kHashJoin:
      return "HashJoin";
    case OpType::kMergeJoin:
      return "MergeJoin";
    case OpType::kHashAggregate:
      return "HashAggregate";
  }
  return "?";
}

const char* OpTypeShortName(OpType op) {
  switch (op) {
    case OpType::kSeqScan:
      return "SS";
    case OpType::kIndexScan:
      return "IS";
    case OpType::kIndexNLJoin:
      return "NL";
    case OpType::kMaterialNLJoin:
      return "NLM";
    case OpType::kHashJoin:
      return "HJ";
    case OpType::kMergeJoin:
      return "MJ";
    case OpType::kHashAggregate:
      return "AGG";
  }
  return "?";
}

namespace {

void CollectPreorder(const PlanNode& node,
                     std::vector<const PlanNode*>* out) {
  out->push_back(&node);
  if (node.left) CollectPreorder(*node.left, out);
  if (node.right) CollectPreorder(*node.right, out);
}

}  // namespace

std::vector<const PlanNode*> CollectNodes(const PlanNode& root) {
  std::vector<const PlanNode*> out;
  CollectPreorder(root, &out);
  return out;
}

int CountNodes(const PlanNode& root) {
  int n = 1;
  if (root.left) n += CountNodes(*root.left);
  if (root.right) n += CountNodes(*root.right);
  return n;
}

namespace {

bool NodeEvaluatesPredicate(const PlanNode& node, bool is_join_dim,
                            int pred_idx) {
  if (is_join_dim) {
    return std::find(node.join_idxs.begin(), node.join_idxs.end(), pred_idx) !=
           node.join_idxs.end();
  }
  return std::find(node.filter_idxs.begin(), node.filter_idxs.end(),
                   pred_idx) != node.filter_idxs.end();
}

int MaxDepthRec(const PlanNode& node, bool is_join_dim, int pred_idx,
                int depth) {
  int best = NodeEvaluatesPredicate(node, is_join_dim, pred_idx) ? depth : -1;
  if (node.left) {
    best = std::max(best,
                    MaxDepthRec(*node.left, is_join_dim, pred_idx, depth + 1));
  }
  if (node.right) {
    best = std::max(
        best, MaxDepthRec(*node.right, is_join_dim, pred_idx, depth + 1));
  }
  return best;
}

}  // namespace

int ErrorNodeMaxDepth(const PlanNode& root, bool is_join_dim, int pred_idx) {
  return MaxDepthRec(root, is_join_dim, pred_idx, 0);
}

const PlanNode* FindPredicateNode(const PlanNode& root, bool is_join_dim,
                                  int pred_idx) {
  // Prefer the deepest occurrence so spilled executions do the least
  // downstream work.
  const PlanNode* found = nullptr;
  if (root.left) found = FindPredicateNode(*root.left, is_join_dim, pred_idx);
  if (!found && root.right) {
    found = FindPredicateNode(*root.right, is_join_dim, pred_idx);
  }
  if (!found && NodeEvaluatesPredicate(root, is_join_dim, pred_idx)) {
    found = &root;
  }
  return found;
}

namespace {

void ExplainRec(const PlanNode& node,
                const std::vector<std::string>& table_names, int indent,
                std::string* out) {
  out->append(indent * 2, ' ');
  out->append(OpTypeName(node.op));
  if (node.is_scan() && node.table_idx >= 0 &&
      node.table_idx < static_cast<int>(table_names.size())) {
    out->append(" " + table_names[node.table_idx]);
    if (!node.filter_idxs.empty()) {
      std::vector<std::string> fs;
      for (int f : node.filter_idxs) fs.push_back(StrPrintf("f%d", f));
      out->append(" [" + Join(fs, ",") + "]");
    }
  }
  if (node.is_join() && !node.join_idxs.empty()) {
    std::vector<std::string> js;
    for (int j : node.join_idxs) js.push_back(StrPrintf("j%d", j));
    out->append(" [" + Join(js, ",") + "]");
  }
  out->append(StrPrintf("  (rows=%s cost=%s)",
                        FormatSci(node.est_rows).c_str(),
                        FormatSci(node.est_cost).c_str()));
  out->append("\n");
  if (node.left) ExplainRec(*node.left, table_names, indent + 1, out);
  if (node.right) ExplainRec(*node.right, table_names, indent + 1, out);
}

}  // namespace

std::string ExplainPlan(const PlanNode& root,
                        const std::vector<std::string>& table_names) {
  std::string out;
  ExplainRec(root, table_names, 0, &out);
  return out;
}

}  // namespace bouquet

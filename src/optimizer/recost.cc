#include "optimizer/recost.h"

#include <cassert>

#include "catalog/catalog.h"
#include "query/query_spec.h"

namespace bouquet {

namespace {

struct RecostState {
  const CostModel* cm;
  const SelectivityResolver* sel;
  const QuerySpec* query;
  const Catalog* catalog;
  const CardinalityContext* ctx;
  std::vector<NodeEstimate>* out;  // may be null
};

// Returns the subtree's estimate and accumulates its base-table mask into
// *mask_out, so join nodes can derive rows/width exactly as the enumerator
// did (from the subset, not from re-associated child products).
NodeEstimate RecostRec(const PlanNode& node, RecostState* st,
                       uint64_t* mask_out) {
  // Reserve this node's preorder slot before descending.
  size_t slot = 0;
  if (st->out != nullptr) {
    slot = st->out->size();
    st->out->emplace_back();
  }

  NodeEstimate est;
  const SelectivityResolver& sel = *st->sel;
  const CostModel& cm = *st->cm;

  if (node.is_scan()) {
    *mask_out = uint64_t{1} << node.table_idx;
    const TableInfo& t = st->ctx->table(node.table_idx);
    const double raw = t.stats.row_count;
    const double width = t.stats.row_width_bytes;
    double out_sel = 1.0;
    for (int f : node.filter_idxs) out_sel *= sel.FilterSelectivity(f);
    est.rows = raw * out_sel;
    est.width = width;
    if (node.op == OpType::kIndexScan && node.index_filter >= 0) {
      const double matched = raw * sel.FilterSelectivity(node.index_filter);
      est.cost = cm.IndexScanCost(
          raw, width, matched,
          static_cast<int>(node.filter_idxs.size()) - 1, est.rows);
    } else if (node.op == OpType::kIndexScan) {
      // Index-lookup inner of an index NL join: cost charged by the parent.
      est.cost = 0.0;
    } else {
      est.cost = cm.SeqScanCost(raw, width,
                                static_cast<int>(node.filter_idxs.size()),
                                est.rows);
    }
  } else if (node.is_aggregate()) {
    assert(node.left);
    uint64_t in_mask = 0;
    const NodeEstimate in = RecostRec(*node.left, st, &in_mask);
    *mask_out = in_mask;
    const double groups =
        st->query->aggregate.EstimateGroups(*st->catalog, in.rows);
    est.rows = groups;
    est.width = node.width;
    est.cost = st->cm->AggregateCost({in.rows, in.cost, in.width}, groups);
  } else {
    assert(node.left && node.right);
    uint64_t lmask = 0, rmask = 0;
    const NodeEstimate l = RecostRec(*node.left, st, &lmask);
    const NodeEstimate r = RecostRec(*node.right, st, &rmask);
    const uint64_t mask = lmask | rmask;
    *mask_out = mask;
    // Enumerator derivation: subset cardinality/width from the table mask.
    est.rows = st->ctx->SubsetRows(mask, sel);
    est.width = st->ctx->SubsetWidth(mask);
    const InputEst le{l.rows, l.cost, l.width};
    const InputEst re{r.rows, r.cost, r.width};
    switch (node.op) {
      case OpType::kHashJoin:
        est.cost = cm.HashJoinCost(le, re, est.rows);
        break;
      case OpType::kMergeJoin:
        est.cost = cm.MergeJoinCost(le, re, est.rows, node.left_presorted,
                                    node.right_presorted);
        break;
      case OpType::kMaterialNLJoin:
        est.cost = cm.MaterialNLJoinCost(le, re, est.rows);
        break;
      case OpType::kIndexNLJoin: {
        const TableInfo& t = st->ctx->table(node.right->table_idx);
        const double raw = t.stats.row_count;
        assert(node.index_join >= 0);
        const double prefilter =
            l.rows * raw * sel.JoinSelectivity(node.index_join);
        const int residual =
            static_cast<int>(node.right->filter_idxs.size()) +
            static_cast<int>(node.join_idxs.size()) - 1;
        est.cost = cm.IndexNLJoinCost(le, raw, prefilter, residual, est.rows);
        break;
      }
      default:
        assert(false && "not a join op");
    }
  }

  if (st->out != nullptr) (*st->out)[slot] = est;
  return est;
}

}  // namespace

PlanCostDetail RecostPlan(const PlanNode& root, const CostModel& cm,
                          const SelectivityResolver& sel,
                          const CardinalityContext& ctx) {
  PlanCostDetail detail;
  RecostState st{&cm, &sel, &sel.query(), &sel.catalog(), &ctx,
                 &detail.nodes};
  uint64_t mask = 0;
  const NodeEstimate top = RecostRec(root, &st, &mask);
  detail.total_cost = top.cost;
  return detail;
}

double RecostPlanTotal(const PlanNode& root, const CostModel& cm,
                       const SelectivityResolver& sel,
                       const CardinalityContext& ctx) {
  RecostState st{&cm, &sel, &sel.query(), &sel.catalog(), &ctx, nullptr};
  uint64_t mask = 0;
  return RecostRec(root, &st, &mask).cost;
}

PlanCostDetail RecostPlan(const PlanNode& root, const CostModel& cm,
                          const SelectivityResolver& sel) {
  const CardinalityContext ctx(sel.query(), sel.catalog());
  return RecostPlan(root, cm, sel, ctx);
}

double RecostPlanTotal(const PlanNode& root, const CostModel& cm,
                       const SelectivityResolver& sel) {
  const CardinalityContext ctx(sel.query(), sel.catalog());
  return RecostPlanTotal(root, cm, sel, ctx);
}

}  // namespace bouquet

// QueryOptimizer: the public optimizer facade bound to one query.
//
// Bundles the enumerator, a reusable selectivity resolver, and the recoster
// behind the two operations the bouquet pipeline needs at every ESS location:
//   * OptimizeAt(dims)  — "what is the optimal plan if the error-prone
//                          selectivities are exactly `dims`?"
//   * CostPlanAt(p, dims) — "what does plan p cost at `dims`?"

#ifndef BOUQUET_OPTIMIZER_OPTIMIZER_H_
#define BOUQUET_OPTIMIZER_OPTIMIZER_H_

#include <memory>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/enumerator.h"
#include "optimizer/plan.h"
#include "optimizer/recost.h"
#include "optimizer/selectivity.h"
#include "query/query_spec.h"

namespace bouquet {

/// Optimizer for a single query over a fixed catalog and cost model.
///
/// Thread-safety: NOT thread-safe — the selectivity resolver and the
/// enumerator's invocation counter mutate across calls. The concurrency
/// pattern used throughout (parallel POSP shards, BouquetService requests)
/// is per-thread clones: construct one QueryOptimizer per worker over the
/// same const QuerySpec/Catalog, which is cheap relative to a single
/// OptimizeAt call. The referenced query and catalog are only read, so any
/// number of clones may coexist.
class QueryOptimizer {
 public:
  /// The query and catalog must outlive the optimizer.
  QueryOptimizer(const QuerySpec& query, const Catalog& catalog,
                 CostParams params);

  /// Validates and constructs; preferred entry point for library users.
  static Result<std::unique_ptr<QueryOptimizer>> Create(
      const QuerySpec& query, const Catalog& catalog, CostParams params);

  const QuerySpec& query() const { return *query_; }
  const Catalog& catalog() const { return *catalog_; }
  const CostModel& cost_model() const { return cm_; }

  /// Optimal plan when the error-prone selectivities equal `dims`
  /// (dims.size() == query.NumDims()).
  Plan OptimizeAt(const DimVector& dims);

  /// Optimal plan at the native optimizer's own estimates (classical
  /// compile-time behavior; defines the NAT baseline's q_e).
  Plan OptimizeDefault();

  /// Cost of an arbitrary plan tree at `dims` (abstract plan costing).
  double CostPlanAt(const PlanNode& root, const DimVector& dims);

  /// Per-node recosting detail at `dims`.
  PlanCostDetail RecostPlanAt(const PlanNode& root, const DimVector& dims);

  /// The native optimizer's default estimate for every error dimension,
  /// clamped into the dimension's declared [lo, hi] range.
  DimVector DefaultDims() const;

  /// Total DP invocations served (compile-time overhead metric).
  long long invocations() const { return enumerator_.invocations(); }

  /// DP subproblems served from the enumerator's invariant-subplan memo
  /// instead of being re-enumerated (cross-point reuse metric).
  long long memo_hits() const { return enumerator_.memo_hits(); }

 private:
  const QuerySpec* query_;
  const Catalog* catalog_;
  CostModel cm_;
  PlanEnumerator enumerator_;
  SelectivityResolver resolver_;
  CardinalityContext card_;  // shared by all recosting calls
};

}  // namespace bouquet

#endif  // BOUQUET_OPTIMIZER_OPTIMIZER_H_

#include "optimizer/dp_bound.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace bouquet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int EncodeOrder(int table_idx, int col_idx) {
  assert(col_idx >= 0 && col_idx < (1 << 16));
  return table_idx * (1 << 16) + col_idx;
}

}  // namespace

DpLowerBound::DpLowerBound(const QuerySpec& query, const Catalog& catalog,
                           CostModel cost_model)
    : query_(&query),
      catalog_(&catalog),
      cm_(cost_model),
      graph_(query),
      num_tables_(static_cast<int>(query.tables.size())),
      card_(query, catalog),
      resolver_(query, catalog) {
  join_lorder_.reserve(query.joins.size());
  join_rorder_.reserve(query.joins.size());
  for (const auto& j : query.joins) {
    const int lt = query.TableIndex(j.left_table);
    const int rt = query.TableIndex(j.right_table);
    join_lorder_.push_back(
        EncodeOrder(lt, card_.table(lt).ColumnIndex(j.left_column)));
    join_rorder_.push_back(
        EncodeOrder(rt, card_.table(rt).ColumnIndex(j.right_column)));
  }

  // Track every order the DP can manufacture: index-scan orders on filtered
  // indexed columns, plus both key orders of every join (merge outputs).
  auto track = [&](int order) {
    for (int o : order_ids_) {
      if (o == order) return;
    }
    order_ids_.push_back(order);
  };
  std::vector<uint64_t> scan_order_mask(num_tables_, 0);
  for (int t = 0; t < num_tables_; ++t) {
    const TableInfo& ti = card_.table(t);
    for (int f : card_.table_filters(t)) {
      const int col = ti.ColumnIndex(query.filters[f].column);
      if (!ti.columns[col].has_index) continue;
      track(EncodeOrder(t, col));
    }
  }
  for (size_t j = 0; j < query.joins.size(); ++j) {
    track(join_lorder_[j]);
    track(join_rorder_[j]);
  }
  assert(order_ids_.size() <= 64 && "achievable-order mask is 64 bits");
  for (int t = 0; t < num_tables_; ++t) {
    const TableInfo& ti = card_.table(t);
    for (int f : card_.table_filters(t)) {
      const int col = ti.ColumnIndex(query.filters[f].column);
      if (!ti.columns[col].has_index) continue;
      scan_order_mask[t] |= uint64_t{1} << OrderBit(EncodeOrder(t, col));
    }
  }

  const uint64_t full = uint64_t{1} << num_tables_;
  connected_.resize(full, false);
  invariant_.resize(full, false);
  width_.assign(full, 0.0);
  achievable_.assign(full, 0);
  const auto& lmask = card_.join_lmasks();
  const auto& rmask = card_.join_rmasks();
  for (uint64_t s = 1; s < full; ++s) {
    connected_[s] = graph_.IsConnectedSubset(s);
    invariant_[s] = card_.SubsetDimMask(s) == 0;
    width_[s] = card_.SubsetWidth(s);
    uint64_t ach = 0;
    for (uint64_t bits = s; bits != 0; bits &= bits - 1) {
      ach |= scan_order_mask[__builtin_ctzll(bits)];
    }
    for (size_t j = 0; j < lmask.size(); ++j) {
      if ((lmask[j] & s) && (rmask[j] & s)) {
        ach |= uint64_t{1} << OrderBit(join_lorder_[j]);
        ach |= uint64_t{1} << OrderBit(join_rorder_[j]);
      }
    }
    achievable_[s] = ach;
  }
  memo_.assign(full, kInf);
  memo_ready_.assign(full, 0);
  lb_.assign(full, kInf);
  rows_.assign(full, 0.0);
  rows_ready_.assign(full, 0);
  tie_.assign(full, 0);
}

int DpLowerBound::OrderBit(int order) const {
  for (size_t i = 0; i < order_ids_.size(); ++i) {
    if (order_ids_[i] == order) return static_cast<int>(i);
  }
  return -1;
}

double DpLowerBound::RowsFor(uint64_t s) const {
  if ((s & (s - 1)) == 0) {
    return card_.ScanRows(__builtin_ctzll(s), resolver_);
  }
  return card_.SubsetRows(s, resolver_);
}

double DpLowerBound::BoundAt(const DimVector& dims, bool* ambiguous) {
  ++invocations_;
  resolver_.Inject(dims);
  const SelectivityResolver& sel = resolver_;
  const uint64_t full = (uint64_t{1} << num_tables_) - 1;
  const auto& join_lmask = card_.join_lmasks();
  const auto& join_rmask = card_.join_rmasks();

  // Singletons: exact minimum over the scan alternatives BuildScanEntries
  // enumerates, in its float derivation. A bit-equal tie between two scan
  // alternatives makes the subset's best entry enumeration-order-dependent,
  // so it marks the subset ambiguous. Invariant subsets keep their rows /
  // bound / tie flag across calls (selectivity-independent).
  for (int t = 0; t < num_tables_; ++t) {
    const uint64_t s = uint64_t{1} << t;
    if (!invariant_[s] || !rows_ready_[s]) {
      rows_[s] = card_.ScanRows(t, sel);
      rows_ready_[s] = invariant_[s] ? 1 : 0;
    }
    if (invariant_[s] && memo_ready_[s]) {
      lb_[s] = memo_[s];
      continue;
    }
    const TableInfo& ti = card_.table(t);
    const double raw = ti.stats.row_count;
    const double width = ti.stats.row_width_bytes;
    const std::vector<int>& filters = card_.table_filters(t);
    const double out_rows = rows_[s];
    double best = cm_.SeqScanCost(raw, width,
                                  static_cast<int>(filters.size()), out_rows);
    bool amb = false;
    for (int f : filters) {
      const int col = ti.ColumnIndex(query_->filters[f].column);
      if (!ti.columns[col].has_index) continue;
      const double matched = raw * sel.FilterSelectivity(f);
      const double cost = cm_.IndexScanCost(
          raw, width, matched, static_cast<int>(filters.size()) - 1,
          out_rows);
      if (cost < best) {
        best = cost;
        amb = false;
      } else if (std::isfinite(cost) && cost == best) {
        amb = true;
      }
    }
    lb_[s] = best;
    tie_[s] = amb ? 1 : 0;
    if (invariant_[s]) {
      memo_[s] = best;
      memo_ready_[s] = 1;
    }
  }

  for (uint64_t s = 3; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;
    if (!connected_[s]) continue;
    if (!invariant_[s] || !rows_ready_[s]) {
      rows_[s] = card_.SubsetRows(s, sel);
      rows_ready_[s] = invariant_[s] ? 1 : 0;
    }
    if (invariant_[s] && memo_ready_[s]) {
      lb_[s] = memo_[s];
      continue;
    }
    const double out_rows = rows_[s];
    double best = kInf;
    // Ambiguity of the subset's minimum: set directly when two candidates
    // attain `best` bit-equally, inherited from the winning candidate's
    // children otherwise (a tie below propagates to every plan built on
    // top of the tied subtree).
    bool amb = false;

    // consider(c, child_amb): fold one candidate into (best, amb).
    const auto consider = [&best, &amb](double c, bool child_amb) {
      if (c < best) {
        best = c;
        amb = child_amb;
      } else if (std::isfinite(c) && c == best) {
        amb = true;
      }
    };

    for (uint64_t s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
      const uint64_t s2 = s ^ s1;
      if (!connected_[s1] || !connected_[s2]) continue;
      if (!std::isfinite(lb_[s1]) || !std::isfinite(lb_[s2])) continue;

      int cross[64];
      int num_cross = 0;
      for (size_t j = 0; j < join_lmask.size(); ++j) {
        const bool lr = (join_lmask[j] & s1) && (join_rmask[j] & s2);
        const bool rl = (join_lmask[j] & s2) && (join_rmask[j] & s1);
        if (lr || rl) cross[num_cross++] = static_cast<int>(j);
      }
      if (num_cross == 0) continue;

      const InputEst le{rows_[s1], lb_[s1], width_[s1]};
      const InputEst re{rows_[s2], lb_[s2], width_[s2]};
      const bool pair_amb = tie_[s1] != 0 || tie_[s2] != 0;

      consider(cm_.HashJoinCost(le, re, out_rows), pair_amb);
      consider(cm_.MaterialNLJoinCost(le, re, out_rows), pair_amb);
      for (int ci = 0; ci < num_cross; ++ci) {
        const int j = cross[ci];
        const bool left_holds_l = (join_lmask[j] & s1) != 0;
        const int lkey = left_holds_l ? join_lorder_[j] : join_rorder_[j];
        const int rkey = left_holds_l ? join_rorder_[j] : join_lorder_[j];
        const int lbit = OrderBit(lkey);
        const int rbit = OrderBit(rkey);
        const bool lp = lbit >= 0 && (achievable_[s1] >> lbit) & 1;
        const bool rp = rbit >= 0 && (achievable_[s2] >> rbit) & 1;
        consider(cm_.MergeJoinCost(le, re, out_rows, lp, rp), pair_amb);
      }
      if ((s2 & (s2 - 1)) == 0) {
        const int t2 = __builtin_ctzll(s2);
        const TableInfo& ti = card_.table(t2);
        const double raw = ti.stats.row_count;
        const int inner_quals =
            static_cast<int>(card_.table_filters(t2).size());
        for (int ci = 0; ci < num_cross; ++ci) {
          const int j = cross[ci];
          const int inner_order = (join_lmask[j] & s2) != 0
                                      ? join_lorder_[j]
                                      : join_rorder_[j];
          const ColumnInfo& col = ti.columns[inner_order % (1 << 16)];
          if (!col.has_index) continue;
          const double prefilter =
              rows_[s1] * raw * sel.JoinSelectivity(j);
          // The index-lookup inner is rebuilt from scratch by the DP, so
          // only the outer side's tie flag matters here.
          consider(cm_.IndexNLJoinCost(le, raw, prefilter,
                                       inner_quals + num_cross - 1, out_rows),
                   tie_[s1] != 0);
        }
      }
    }

    lb_[s] = best;
    tie_[s] = amb ? 1 : 0;
    if (invariant_[s]) {
      memo_[s] = best;
      memo_ready_[s] = 1;
    }
  }

  double bound = lb_[full];
  if (query_->aggregate.enabled && std::isfinite(bound)) {
    const double groups =
        query_->aggregate.EstimateGroups(*catalog_, rows_[full]);
    bound = cm_.AggregateCost({rows_[full], bound, width_[full]}, groups);
  }
  if (ambiguous != nullptr) *ambiguous = tie_[full] != 0;
  return bound;
}

}  // namespace bouquet

// PostgreSQL-style cost model.
//
// Cost formulas are deliberately close (in structure and constants) to
// PostgreSQL 8.4's costsize.c, since the paper's main experiments run on a
// modified PostgreSQL 8.4. Costs are abstract units where sequentially
// reading one page costs 1.0. A second parameterization (`Commercial()`)
// models the paper's "COM" engine: same operator algebra, different
// constants, producing a differently-shaped POSP geography (Section 6.8).
//
// All formulas are monotone non-decreasing in input cardinalities, which is
// what gives the engine the Plan Cost Monotonicity (PCM) property the bouquet
// technique assumes (Section 2); tests/optimizer assert this by sweeping.

#ifndef BOUQUET_OPTIMIZER_COST_MODEL_H_
#define BOUQUET_OPTIMIZER_COST_MODEL_H_

#include <string>

namespace bouquet {

/// Tunable constants of the cost model.
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  /// Price of a page access that hits the buffer pool (paged storage).
  /// Modeled on PostgreSQL's effective_cache_size discounting: a hit still
  /// pays a small CPU fee for the lookup but skips the disk fetch entirely.
  double buffer_hit_page_cost = 0.1;
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;
  double page_size_bytes = 8192.0;
  double work_mem_bytes = 4.0 * 1024 * 1024;
  /// Hash table build/probe cost multiplier over cpu_operator_cost.
  double hash_op_factor = 1.5;

  /// PostgreSQL 8.4 defaults.
  static CostParams Postgres();
  /// The "COM" commercial-engine configuration: cheaper random IO (bigger
  /// buffer pool assumption), pricier CPU, larger work_mem.
  static CostParams Commercial();
};

/// Intermediate-result descriptor the cost functions consume.
struct InputEst {
  double rows = 0.0;        ///< estimated output cardinality
  double cost = 0.0;        ///< total cost of producing the input
  double width = 0.0;       ///< bytes per row
};

/// Stateless cost calculator over CostParams. Cardinalities are computed by
/// the caller (enumerator / recoster); these functions price operators.
class CostModel {
 public:
  explicit CostModel(CostParams params) : p_(params) {}

  const CostParams& params() const { return p_; }

  /// Pages occupied by `rows` rows of `width` bytes.
  double Pages(double rows, double width) const;

  /// Full sequential scan applying `num_quals` predicates, emitting out_rows.
  double SeqScanCost(double table_rows, double width, int num_quals,
                     double out_rows) const;

  /// B-tree index scan: `matched_rows` rows satisfy the index qual
  /// (uncorrelated heap order => one random page per match), then
  /// `num_residual_quals` residual predicates are applied.
  double IndexScanCost(double table_rows, double width, double matched_rows,
                       int num_residual_quals, double out_rows) const;

  /// Cost of one index probe into a table of `inner_rows` rows returning
  /// `matches` heap rows (used per outer tuple by index nested-loop join).
  double IndexProbeCost(double inner_rows, double matches) const;

  /// Index nested-loop join: outer streamed, one probe per outer row.
  /// `prefilter_matches` = outer.rows * inner_table_rows * join_sel (heap
  /// rows fetched before residual inner filters).
  double IndexNLJoinCost(const InputEst& outer, double inner_table_rows,
                         double prefilter_matches, int num_inner_quals,
                         double out_rows) const;

  /// Naive nested-loop join with materialized inner.
  double MaterialNLJoinCost(const InputEst& outer, const InputEst& inner,
                            double out_rows) const;

  /// Hash join; inner side is the build side. Spills when the build side
  /// exceeds work_mem.
  double HashJoinCost(const InputEst& outer, const InputEst& inner,
                      double out_rows) const;

  /// Sort-merge join. Inputs flagged presorted (an interesting order from
  /// an index scan or a child merge join) skip their sort cost.
  double MergeJoinCost(const InputEst& left, const InputEst& right,
                       double out_rows, bool left_presorted = false,
                       bool right_presorted = false) const;

  /// External-sort cost for an input (counted inside MergeJoinCost; exposed
  /// for the executor's budget accounting).
  double SortCost(double rows, double width) const;

  /// Hash aggregation over `input`, emitting `out_groups` rows.
  double AggregateCost(const InputEst& input, double out_groups) const;

 private:
  CostParams p_;
};

}  // namespace bouquet

#endif  // BOUQUET_OPTIMIZER_COST_MODEL_H_

// Physical plan trees.
//
// Plans are immutable shared trees annotated with the estimates computed at
// the optimization point. The same tree can later be *recosted* at any other
// ESS location (optimizer/recost.h) — the paper's "abstract plan costing"
// hook (Section 5.4) — so annotations are advisory, not identity.

#ifndef BOUQUET_OPTIMIZER_PLAN_H_
#define BOUQUET_OPTIMIZER_PLAN_H_

#include <memory>
#include <string>
#include <vector>

namespace bouquet {

enum class OpType {
  kSeqScan,
  kIndexScan,       // index qual on a selection predicate
  kIndexNLJoin,     // inner = base-table index lookup on the join key
  kMaterialNLJoin,  // naive nested loops over a materialized inner
  kHashJoin,        // inner (right) side builds
  kMergeJoin,       // both inputs sorted on the join key
  kHashAggregate,   // grouped aggregation atop the join block
};

const char* OpTypeName(OpType op);
/// Short display name used in figures ("NL", "HJ", "MJ", ...).
const char* OpTypeShortName(OpType op);

struct PlanNode;
using PlanNodeRef = std::shared_ptr<const PlanNode>;

/// One node of a physical plan tree.
struct PlanNode {
  OpType op = OpType::kSeqScan;
  PlanNodeRef left;   ///< outer child (joins) / null (scans)
  PlanNodeRef right;  ///< inner child (joins) / null (scans)

  // -- Scan fields --------------------------------------------------------
  int table_idx = -1;             ///< index into QuerySpec::tables
  std::vector<int> filter_idxs;   ///< selection predicates applied here
  int index_filter = -1;          ///< filter used as the index qual, or -1

  // -- Join fields --------------------------------------------------------
  std::vector<int> join_idxs;  ///< join predicates applied at this node;
                               ///< for merge joins, [0] is the sort key
  int index_join = -1;         ///< join predicate used as index lookup key
  /// Merge joins only: the input already arrives sorted on the key (an
  /// "interesting order" from an index scan or a child merge join), so the
  /// sort step — and its cost — is skipped.
  bool left_presorted = false;
  bool right_presorted = false;

  // -- Annotations (values at the optimization point) ---------------------
  double est_rows = 0.0;
  double est_cost = 0.0;
  double width = 0.0;

  bool is_scan() const {
    return op == OpType::kSeqScan || op == OpType::kIndexScan;
  }
  bool is_join() const {
    return op == OpType::kIndexNLJoin || op == OpType::kMaterialNLJoin ||
           op == OpType::kHashJoin || op == OpType::kMergeJoin;
  }
  bool is_aggregate() const { return op == OpType::kHashAggregate; }
};

/// A complete optimized plan: root plus the estimates at its optimization
/// point and its canonical signature.
struct Plan {
  PlanNodeRef root;
  double cost = 0.0;
  double rows = 0.0;
  std::string signature;
};

/// Preorder listing of the tree's nodes (root first).
std::vector<const PlanNode*> CollectNodes(const PlanNode& root);

/// Number of nodes in the tree.
int CountNodes(const PlanNode& root);

/// Depth (root = 0) of the shallowest node whose predicate set contains the
/// given error dimension's predicate; returns -1 when absent. "Deepest in the
/// plan tree" in the paper's Section 5.1 heuristic == largest depth value
/// here, so callers wanting the paper's notion use ErrorNodeMaxDepth.
int ErrorNodeMaxDepth(const PlanNode& root, bool is_join_dim, int pred_idx);

/// The subtree rooted at the node that evaluates the given predicate
/// (join predicate when is_join_dim, else selection predicate); nullptr when
/// the plan does not evaluate it. Used by spill-mode execution (Section 5.3).
const PlanNode* FindPredicateNode(const PlanNode& root, bool is_join_dim,
                                  int pred_idx);

/// Renders the tree as an indented explain-style string.
std::string ExplainPlan(const PlanNode& root,
                        const std::vector<std::string>& table_names);

}  // namespace bouquet

#endif  // BOUQUET_OPTIMIZER_PLAN_H_

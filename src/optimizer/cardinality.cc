#include "optimizer/cardinality.h"

#include <cassert>

namespace bouquet {

uint64_t PlanTableMask(const PlanNode& root) {
  if (root.is_scan()) return uint64_t{1} << root.table_idx;
  uint64_t mask = 0;
  if (root.left) mask |= PlanTableMask(*root.left);
  if (root.right) mask |= PlanTableMask(*root.right);
  return mask;
}

CardinalityContext::CardinalityContext(const QuerySpec& query,
                                       const Catalog& catalog)
    : query_(&query),
      num_tables_(static_cast<int>(query.tables.size())) {
  tables_.reserve(num_tables_);
  for (const auto& name : query.tables) {
    tables_.push_back(&catalog.GetTable(name));
  }
  table_filters_.resize(num_tables_);
  for (size_t f = 0; f < query.filters.size(); ++f) {
    table_filters_[query.TableIndex(query.filters[f].table)].push_back(
        static_cast<int>(f));
  }
  join_lmask_.reserve(query.joins.size());
  join_rmask_.reserve(query.joins.size());
  for (const auto& j : query.joins) {
    join_lmask_.push_back(uint64_t{1} << query.TableIndex(j.left_table));
    join_rmask_.push_back(uint64_t{1} << query.TableIndex(j.right_table));
  }
  assert(query.error_dims.size() <= 32 && "dim mask is 32 bits");
  dim_masks_.reserve(query.error_dims.size());
  for (const auto& d : query.error_dims) {
    if (d.kind == DimKind::kSelection) {
      const auto& pred = query.filters[d.predicate_index];
      dim_masks_.push_back(uint64_t{1} << query.TableIndex(pred.table));
    } else {
      dim_masks_.push_back(join_lmask_[d.predicate_index] |
                           join_rmask_[d.predicate_index]);
    }
  }
}

double CardinalityContext::SubsetRows(uint64_t subset,
                                      const SelectivityResolver& sel) const {
  double rows = 1.0;
  uint64_t s = subset;
  while (s != 0) {
    const int t = __builtin_ctzll(s);
    s &= s - 1;
    rows *= tables_[t]->stats.row_count;
    for (int f : table_filters_[t]) rows *= sel.FilterSelectivity(f);
  }
  for (size_t j = 0; j < join_lmask_.size(); ++j) {
    if ((join_lmask_[j] & subset) && (join_rmask_[j] & subset)) {
      rows *= sel.JoinSelectivity(static_cast<int>(j));
    }
  }
  return rows;
}

double CardinalityContext::SubsetWidth(uint64_t subset) const {
  double width = 0.0;
  for (uint64_t bits = subset; bits != 0; bits &= bits - 1) {
    width += tables_[__builtin_ctzll(bits)]->stats.row_width_bytes;
  }
  return width;
}

double CardinalityContext::ScanRows(int table,
                                    const SelectivityResolver& sel) const {
  double out_sel = 1.0;
  for (int f : table_filters_[table]) out_sel *= sel.FilterSelectivity(f);
  return tables_[table]->stats.row_count * out_sel;
}

uint32_t CardinalityContext::SubsetDimMask(uint64_t subset) const {
  uint32_t mask = 0;
  for (size_t d = 0; d < dim_masks_.size(); ++d) {
    if ((dim_masks_[d] & subset) == dim_masks_[d]) {
      mask |= uint32_t{1} << d;
    }
  }
  return mask;
}

}  // namespace bouquet

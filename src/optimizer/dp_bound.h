// Optimistic scalar DP: a cheap per-point lower bound on the optimal plan
// cost.
//
// DpLowerBound runs the same DPsub recurrence as PlanEnumerator but keeps a
// single scalar per relation subset — the minimum over all operator
// alternatives of the cost obtained by feeding each side's scalar bound as
// its input cost. Because every cost formula in CostModel is additive in its
// inputs' costs (monotone non-decreasing), and subset cardinalities/widths
// are fixed per point, the scalar is a true lower bound on the cost of every
// DP entry the enumerator would keep for that subset.
//
// The one optimism knob is sort-merge presorting: a real DP entry may pay a
// sort the bound skips. The bound only skips a sort when the required key
// order is *achievable* for that side's subset (an index scan on the key
// column, or a merge join on that key somewhere inside the subset) — a
// static overapproximation of the orders the DP can actually carry. This
// keeps the bound sound while making it bit-exactly tight whenever the
// optimal plan takes no presorted-merge savings the bound also grants:
// in that case every float in the bound recurrence is the same operation on
// the same operands as in the enumerator, so bound == optimal cost exactly.
// The incremental POSP fast path (ess/posp_generator) exploits exactly that
// equality: it skips a full DP only when a recosted candidate's cost c*
// satisfies c* <= bound, which — since bound <= opt <= c* always — can only
// fire when all three coincide bit-for-bit.

#ifndef BOUQUET_OPTIMIZER_DP_BOUND_H_
#define BOUQUET_OPTIMIZER_DP_BOUND_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/selectivity.h"
#include "query/join_graph.h"
#include "query/query_spec.h"

namespace bouquet {

/// Scalar optimistic-DP bound, bound to one (query, catalog, cost-model)
/// triple. Not thread-safe: each POSP shard owns its own instance (the
/// invariant-subset cache mutates on use).
class DpLowerBound {
 public:
  DpLowerBound(const QuerySpec& query, const Catalog& catalog,
               CostModel cost_model);

  /// Lower bound on the optimizer's final plan cost (aggregate included for
  /// SPJA queries) at the given ESS location. Returns +infinity when no
  /// finite-cost plan exists, which callers must treat as "never skip".
  ///
  /// `ambiguous`, when given, is set to true if the bound's minimum is
  /// attained by more than one (decomposition, operator) candidate with
  /// bit-equal cost anywhere along the winning chain. At a point where the
  /// bound is tight (bound == optimal cost), two structurally different
  /// optimal plans tie exactly iff their chains diverge at some subset with
  /// bit-equal bound candidates — so an unambiguous tight bound certifies
  /// the DP's argmin is unique, and a recost matching the bound identifies
  /// *the* plan the DP would emit (not merely *a* cost-equal plan). Callers
  /// must fall back to the full DP on ambiguity: the DP breaks exact ties
  /// by enumeration order, which recosting cannot reproduce.
  double BoundAt(const DimVector& dims, bool* ambiguous = nullptr);

  /// Number of BoundAt invocations served (stats plumbing).
  long long invocations() const { return invocations_; }

 private:
  static constexpr int kNoOrder = -1;

  // Rows in the enumerator's exact derivation: ScanRows order for
  // singletons, SubsetRows order for composites.
  double RowsFor(uint64_t s) const;

  const QuerySpec* query_;
  const Catalog* catalog_;
  CostModel cm_;
  JoinGraph graph_;
  int num_tables_;
  CardinalityContext card_;
  SelectivityResolver resolver_;
  std::vector<int> join_lorder_;
  std::vector<int> join_rorder_;
  std::vector<bool> connected_;   // per subset
  std::vector<bool> invariant_;   // per subset: SubsetDimMask == 0
  std::vector<double> width_;     // per subset, selectivity-independent
  // Per subset: bitmask (over order_ids_) of key orders some DP entry for
  // the subset *could* carry — overapproximated, see file comment.
  std::vector<uint64_t> achievable_;
  std::vector<int> order_ids_;    // encoded order -> bit, by scan of vector
  // Scalar bound + tie-flag cache for ESS-invariant subsets (valid across
  // points: an invariant subset's whole DP subtree is invariant).
  std::vector<double> memo_;
  std::vector<char> memo_ready_;
  // Per-point scratch, sized once. rows_ entries for invariant subsets are
  // computed once and kept (selectivity-independent). tie_[s] marks subsets
  // whose bound minimum is not uniquely attained (see BoundAt).
  std::vector<double> lb_;
  std::vector<double> rows_;
  std::vector<char> rows_ready_;
  std::vector<char> tie_;
  long long invocations_ = 0;

  int OrderBit(int order) const;  // -1 when the order is not tracked
};

}  // namespace bouquet

#endif  // BOUQUET_OPTIMIZER_DP_BOUND_H_

// Abstract plan recosting ("Foreign Plan Costing").
//
// Given a fixed physical plan tree and an arbitrary selectivity assignment,
// recomputes cardinalities and operator costs bottom-up using the same cost
// model the enumerator used. This is the paper's "abstract plan costing"
// engine hook (Section 5.4) and is the workhorse for the POSP infimum curve,
// contour plan coverage, native-optimizer supremum, and bouquet simulation.
//
// Derivation identity: recosting follows the *exact floating-point
// derivation* of the DP enumerator — join cardinalities and widths come from
// CardinalityContext::SubsetRows/SubsetWidth over the subtree's table mask
// (not from re-associated child products), scan cardinalities from the
// BuildScanEntries order. Consequently, recosting a plan tree the enumerator
// materialized yields bit-for-bit the cost the enumerator assigned it; the
// incremental POSP fast path (ess/posp_generator) depends on this equality
// and tests/test_recost_differential.cc enforces it.

#ifndef BOUQUET_OPTIMIZER_RECOST_H_
#define BOUQUET_OPTIMIZER_RECOST_H_

#include <vector>

#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "optimizer/selectivity.h"

namespace bouquet {

/// Per-node recosting outcome, aligned with CollectNodes() preorder.
struct NodeEstimate {
  double rows = 0.0;   ///< output cardinality at the recost point
  double cost = 0.0;   ///< cumulative cost of the subtree
  double width = 0.0;  ///< bytes per output row
};

/// Full recosting detail.
struct PlanCostDetail {
  double total_cost = 0.0;
  std::vector<NodeEstimate> nodes;  ///< preorder, root first
};

/// Recosts the tree under the resolver's current selectivities. The context
/// must be built over the same (query, catalog) as the resolver.
PlanCostDetail RecostPlan(const PlanNode& root, const CostModel& cm,
                          const SelectivityResolver& sel,
                          const CardinalityContext& ctx);

/// Cost-only variant (no per-node vector), cheaper for bulk sweeps.
double RecostPlanTotal(const PlanNode& root, const CostModel& cm,
                       const SelectivityResolver& sel,
                       const CardinalityContext& ctx);

/// Convenience overloads that build a CardinalityContext per call. Fine for
/// cold paths; hot loops should hold a context (QueryOptimizer does).
PlanCostDetail RecostPlan(const PlanNode& root, const CostModel& cm,
                          const SelectivityResolver& sel);
double RecostPlanTotal(const PlanNode& root, const CostModel& cm,
                       const SelectivityResolver& sel);

}  // namespace bouquet

#endif  // BOUQUET_OPTIMIZER_RECOST_H_

// Selectivity resolution with injection.
//
// This is the paper's "selectivity injection" optimizer hook (Sections 4.2,
// 5.4): every predicate selectivity the optimizer consumes flows through a
// SelectivityResolver, which serves catalog-derived defaults for error-free
// predicates and *injected* values for the declared error dimensions. The
// POSP generator optimizes the same query at thousands of ESS locations just
// by re-injecting.

#ifndef BOUQUET_OPTIMIZER_SELECTIVITY_H_
#define BOUQUET_OPTIMIZER_SELECTIVITY_H_

#include <vector>

#include "catalog/catalog.h"
#include "query/query_spec.h"

namespace bouquet {

/// One selectivity value per error dimension of a query, ordered as in
/// QuerySpec::error_dims.
using DimVector = std::vector<double>;

/// Resolves predicate selectivities: catalog defaults + injected overrides.
class SelectivityResolver {
 public:
  /// Computes catalog-derived defaults for every predicate. The referenced
  /// query and catalog must outlive the resolver.
  SelectivityResolver(const QuerySpec& query, const Catalog& catalog);

  /// Overrides the error-dimension predicates with the given values
  /// (dims.size() must equal query.NumDims()). Cheap; called per ESS point.
  void Inject(const DimVector& dims);

  /// Restores all predicates to their catalog defaults.
  void ClearInjection();

  double FilterSelectivity(int filter_idx) const {
    return filter_sel_[filter_idx];
  }
  double JoinSelectivity(int join_idx) const { return join_sel_[join_idx]; }

  const QuerySpec& query() const { return *query_; }
  const Catalog& catalog() const { return *catalog_; }

  /// The default (uninjected) selectivity of a predicate, as the classical
  /// optimizer would estimate it — used by the NAT baseline to locate q_e.
  double DefaultFilterSelectivity(int filter_idx) const {
    return default_filter_sel_[filter_idx];
  }
  double DefaultJoinSelectivity(int join_idx) const {
    return default_join_sel_[join_idx];
  }

 private:
  const QuerySpec* query_;
  const Catalog* catalog_;
  std::vector<double> default_filter_sel_;
  std::vector<double> default_join_sel_;
  std::vector<double> filter_sel_;
  std::vector<double> join_sel_;
};

}  // namespace bouquet

#endif  // BOUQUET_OPTIMIZER_SELECTIVITY_H_

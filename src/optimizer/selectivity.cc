#include "optimizer/selectivity.h"

#include <algorithm>
#include <cassert>

namespace bouquet {

namespace {

// PostgreSQL's magic default for inequality predicates lacking statistics
// (DEFAULT_INEQ_SEL); the paper's Section 1 cites the Selinger 1/10 and 1/3
// family of magic numbers.
constexpr double kDefaultInequalitySel = 1.0 / 3.0;

double FilterDefault(const SelectionPredicate& f, const Catalog& catalog) {
  if (f.default_selectivity >= 0.0) return f.default_selectivity;
  const TableInfo& t = catalog.GetTable(f.table);
  const ColumnInfo& c = t.columns[t.ColumnIndex(f.column)];
  if (f.op == CompareOp::kEqual) return c.stats.EqualitySelectivity();
  if (f.has_constant() && !c.stats.histogram.empty()) {
    switch (f.op) {
      case CompareOp::kLess:
        return c.stats.histogram.SelectivityLess(f.constant);
      case CompareOp::kLessEqual:
        return c.stats.histogram.SelectivityLessEqual(f.constant);
      case CompareOp::kGreater:
        return 1.0 - c.stats.histogram.SelectivityLessEqual(f.constant);
      case CompareOp::kGreaterEqual:
        return 1.0 - c.stats.histogram.SelectivityLess(f.constant);
      case CompareOp::kEqual:
        break;
    }
  }
  return kDefaultInequalitySel;
}

double JoinDefault(const JoinPredicate& j, const Catalog& catalog) {
  if (j.default_selectivity >= 0.0) return j.default_selectivity;
  const TableInfo& lt = catalog.GetTable(j.left_table);
  const TableInfo& rt = catalog.GetTable(j.right_table);
  const double lndv =
      std::max(1.0, lt.columns[lt.ColumnIndex(j.left_column)].stats.ndv);
  const double rndv =
      std::max(1.0, rt.columns[rt.ColumnIndex(j.right_column)].stats.ndv);
  return 1.0 / std::max(lndv, rndv);
}

}  // namespace

SelectivityResolver::SelectivityResolver(const QuerySpec& query,
                                         const Catalog& catalog)
    : query_(&query), catalog_(&catalog) {
  default_filter_sel_.reserve(query.filters.size());
  for (const auto& f : query.filters) {
    default_filter_sel_.push_back(FilterDefault(f, catalog));
  }
  default_join_sel_.reserve(query.joins.size());
  for (const auto& j : query.joins) {
    default_join_sel_.push_back(JoinDefault(j, catalog));
  }
  filter_sel_ = default_filter_sel_;
  join_sel_ = default_join_sel_;
}

void SelectivityResolver::Inject(const DimVector& dims) {
  assert(dims.size() == query_->error_dims.size());
  // Hot path (called once per recost/optimization): only the error-dim
  // slots ever differ from the defaults, so only they are written.
  for (size_t d = 0; d < dims.size(); ++d) {
    const ErrorDimension& dim = query_->error_dims[d];
    assert(dims[d] > 0.0 && dims[d] <= 1.0);
    if (dim.kind == DimKind::kSelection) {
      filter_sel_[dim.predicate_index] = dims[d];
    } else {
      join_sel_[dim.predicate_index] = dims[d];
    }
  }
}

void SelectivityResolver::ClearInjection() {
  for (const ErrorDimension& dim : query_->error_dims) {
    if (dim.kind == DimKind::kSelection) {
      filter_sel_[dim.predicate_index] =
          default_filter_sel_[dim.predicate_index];
    } else {
      join_sel_[dim.predicate_index] = default_join_sel_[dim.predicate_index];
    }
  }
}

}  // namespace bouquet

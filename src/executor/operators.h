// Volcano-style physical operators with budget-limited execution.
//
// Every Next() call may return kAborted when the context's CostMeter trips;
// the partial state (instrumentation counters) remains readable afterwards,
// which is exactly what the bouquet's cost-limited partial executions need.
// Rows are flat int64 vectors; each operator publishes its output schema as
// (query-table-index, column-index) pairs so predicates can be bound by the
// builder.
//
// Abort resumption contract: once a Next() call has returned kAborted the
// meter stays tripped, and every further Next() on any operator of the tree
// is a checked no-op — it returns kAborted again without charging the meter
// or moving any instrumentation counter. Partial executions are resumed by
// re-running the plan under a larger budget (the bouquet contract jettisons
// intermediate results), never by re-pulling an aborted iterator. The batch
// engine (batch.h) honors the same contract at NextBatch() granularity.

#ifndef BOUQUET_EXECUTOR_OPERATORS_H_
#define BOUQUET_EXECUTOR_OPERATORS_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "executor/exec_context.h"
#include "optimizer/plan.h"

namespace bouquet {

using Row = std::vector<int64_t>;

/// Outcome of pulling one row.
enum class ExecResult {
  kRow,      ///< *out holds a row
  kDone,     ///< input exhausted
  kAborted,  ///< cost budget exhausted mid-stream
};

/// Column slot in an operator's output row.
struct SchemaCol {
  int table_idx;  ///< index into QuerySpec::tables
  int col_idx;    ///< column index within that table
};

/// Abstract iterator.
class Operator {
 public:
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Pulls the next row into *out.
  virtual ExecResult Next(Row* out) = 0;

  const std::vector<SchemaCol>& schema() const { return schema_; }

  /// Position of (table, col) in the output row, or -1.
  int FindColumn(int table_idx, int col_idx) const;

 protected:
  Operator() = default;
  std::vector<SchemaCol> schema_;
};

/// Builds an operator tree for (a subtree of) a physical plan against real
/// data. Fails when a selection predicate lacks a constant (abstract
/// cost-model-only queries cannot be executed).
Result<std::unique_ptr<Operator>> BuildExecutor(const PlanNode& root,
                                                ExecContext* ctx);

/// Drains an operator to completion (or budget exhaustion), materializing at
/// most `max_rows` result rows into *rows (pass nullptr to count only).
/// Returns kDone or kAborted; row count is in *emitted.
ExecResult DrainOperator(Operator* op, std::vector<Row>* rows,
                         int64_t* emitted,
                         int64_t max_rows = INT64_MAX);

}  // namespace bouquet

#endif  // BOUQUET_EXECUTOR_OPERATORS_H_

#include "executor/builder.h"

#include "executor/batch.h"
#include "optimizer/plan_signature.h"
#include "storage/paged_table.h"

namespace bouquet {

namespace {

ExecutionOutcome RunTree(const PlanNode& root, ExecContext* ctx,
                         double budget, std::vector<Row>* results,
                         bool spilled) {
  ctx->meter.Reset();
  ctx->meter.set_budget(budget);
  ctx->instr.Reset();
  ctx->page_reads_charged = 0;
  ctx->page_hits_charged = 0;

  // Observability: one span for this (partial) execution; every finished
  // operator node becomes a child span carrying its counters. The hook and
  // timing are (re)configured per execution so a context reused with the
  // tracer later detached stops paying for them.
  obs::Span exec_span;
  if (ctx->tracer != nullptr) {
    exec_span = obs::Tracer::BeginUnder(ctx->tracer, "exec.plan",
                                        ctx->trace_parent, ctx->trace_id);
    ctx->instr.EnableTiming(true);
    obs::Tracer* tracer = ctx->tracer;
    const uint64_t parent = exec_span.id();
    const uint64_t trace = exec_span.trace_id();
    ctx->instr.SetFinishHook(
        [tracer, parent, trace](const PlanNode* node,
                                const NodeCounters& nc) {
          obs::Span s =
              obs::Tracer::BeginUnder(tracer, "exec.node", parent, trace);
          s.Num("op", static_cast<double>(static_cast<int>(node->op)))
              .Num("tuples_out", static_cast<double>(nc.tuples_out))
              .Num("tuples_scanned", static_cast<double>(nc.tuples_scanned))
              .Num("node_wall_seconds", nc.wall_seconds);
          s.End();
        });
  } else {
    ctx->instr.EnableTiming(false);
    ctx->instr.SetFinishHook(nullptr);
  }

  ExecutionOutcome out;
  auto built = BuildExecutor(root, ctx);
  if (!built.ok()) {
    out.status = ExecResult::kAborted;
    out.build_failed = true;
    out.build_status = built.status();
    if (exec_span.enabled()) {
      exec_span.Flag("build_failed", true)
          .Str("signature", PlanSignature(root));
      exec_span.End();
    }
    return out;
  }
  storage::StorageManager* sm =
      ctx->db != nullptr ? ctx->db->storage() : nullptr;
  if (spilled && sm != nullptr) {
    // Spill-mode subtree output is jettisoned from the accounting's point
    // of view, but it physically materializes into temp pages through the
    // same buffer pool — the writer drops the segment when it dies.
    storage::SpillWriter spill(sm, built->get()->schema().size());
    int64_t count = 0;
    Row r;
    ExecResult st;
    while ((st = (*built)->Next(&r)) == ExecResult::kRow) {
      ++count;
      if (spill.ok()) spill.Append(r);
    }
    out.rows_emitted = count;
    out.status = st;
  } else {
    out.status = DrainOperator(built->get(), results, &out.rows_emitted);
  }
  out.cost_charged = ctx->meter.charged();
  out.page_reads = ctx->page_reads_charged;
  out.page_hits = ctx->page_hits_charged;
  if (exec_span.enabled()) {
    exec_span.Num("budget", budget)
        .Num("charged", out.cost_charged)
        .Num("rows", static_cast<double>(out.rows_emitted))
        .Num("page_reads", static_cast<double>(out.page_reads))
        .Num("page_hits", static_cast<double>(out.page_hits))
        .Flag("completed", out.status == ExecResult::kDone)
        .Flag("spilled", spilled);
    exec_span.End();
  }
  return out;
}

}  // namespace

ExecutionOutcome ExecutePlan(const PlanNode& root, ExecContext* ctx,
                             double budget, std::vector<Row>* results) {
  return RunTree(root, ctx, budget, results, /*spilled=*/false);
}

ExecutionOutcome ExecuteSpilled(const PlanNode& subtree_root,
                                ExecContext* ctx, double budget) {
  return RunTree(subtree_root, ctx, budget, /*results=*/nullptr,
                 /*spilled=*/true);
}

ExecutionOutcome ExecutePlanWith(ExecEngine engine, const PlanNode& root,
                                 ExecContext* ctx, double budget,
                                 std::vector<Row>* results) {
  return engine == ExecEngine::kBatch
             ? ExecutePlanBatch(root, ctx, budget, results)
             : ExecutePlan(root, ctx, budget, results);
}

ExecutionOutcome ExecuteSpilledWith(ExecEngine engine,
                                    const PlanNode& subtree_root,
                                    ExecContext* ctx, double budget) {
  return engine == ExecEngine::kBatch
             ? ExecuteSpilledBatch(subtree_root, ctx, budget)
             : ExecuteSpilled(subtree_root, ctx, budget);
}

}  // namespace bouquet

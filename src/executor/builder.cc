#include "executor/builder.h"

namespace bouquet {

namespace {

ExecutionOutcome RunTree(const PlanNode& root, ExecContext* ctx,
                         double budget, std::vector<Row>* results) {
  ctx->meter.Reset();
  ctx->meter.set_budget(budget);
  ctx->instr.Reset();

  ExecutionOutcome out;
  auto built = BuildExecutor(root, ctx);
  if (!built.ok()) {
    out.status = ExecResult::kAborted;
    out.build_failed = true;
    out.build_status = built.status();
    return out;
  }
  out.status = DrainOperator(built->get(), results, &out.rows_emitted);
  out.cost_charged = ctx->meter.charged();
  return out;
}

}  // namespace

ExecutionOutcome ExecutePlan(const PlanNode& root, ExecContext* ctx,
                             double budget, std::vector<Row>* results) {
  return RunTree(root, ctx, budget, results);
}

ExecutionOutcome ExecuteSpilled(const PlanNode& subtree_root,
                                ExecContext* ctx, double budget) {
  return RunTree(subtree_root, ctx, budget, /*results=*/nullptr);
}

}  // namespace bouquet

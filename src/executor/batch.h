// Vectorized batch-at-a-time executor, bit-compatible with the scalar
// engine's cost accounting.
//
// The data plane works on fixed-size column batches: scans evaluate filters
// column-wise into selection vectors (branch-light compaction loops), joins
// build/probe open-addressed chained hash tables over columnar build sides,
// and rows move as per-column gathers instead of per-row std::vector
// copies. None of that touches the CostMeter directly.
//
// Cost accounting instead rides a *metering tape*: every operator emits
// MeterEvents describing the exact per-tuple charge sequence the scalar
// engine would have produced — same floating-point charge expressions, same
// order. Each output batch carries its tape plus per-row segment offsets;
// a consumer splices its child's segment for row j ahead of its own events
// for row j, reconstructing the scalar engine's global pipeline
// interleaving. Replaying the tape applies charges one tuple at a time
// (double addition is order-sensitive, so runs are never bulk-summed),
// which makes `charged`, the abort point, and the per-node tuple counters
// byte-identical to a scalar run of the same plan — the property Theorem 3
// (MSO) needs from budget-limited partial executions.
//
// Replay granularity: pipeline breakers (hash build, merge drain+sort,
// materialize, aggregate build) replay their phase's events eagerly per
// consumed input batch — every event of the phase is globally ordered
// before any later event, so this is order-safe and bounds post-abort
// wasted work to about one batch per operator. Pipelined events are
// replayed by the consumer: inner operators at most one child batch ahead,
// the root loop once per output batch. Data ahead of an abort is discarded,
// never accounted.

#ifndef BOUQUET_EXECUTOR_BATCH_H_
#define BOUQUET_EXECUTOR_BATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "executor/builder.h"
#include "executor/exec_context.h"
#include "optimizer/plan.h"

namespace bouquet {

namespace storage {
class BufferManager;
}  // namespace storage

namespace batch_internal {

/// Kinds of replayable accounting events.
enum class EvKind : uint8_t {
  kCharge,      ///< meter charge only
  kChargeScan,  ///< per successful unit: charge, then tuples_scanned++
  kChargeEmit,  ///< per successful unit: charge, then tuples_out++
  kFinish,      ///< Instrumentation::FinishNode (no charge)
  kPageSeq,     ///< paged storage: sequential access to (file, page)
  kPageRand,    ///< paged storage: random access to (file, page)
};

/// Charge-like events RLE-merge; structural events never do. Page events
/// are excluded because their charge is unknown until replay consults the
/// buffer pool (hit vs miss), so each access must stay an individual event
/// resolved in scalar charge order.
inline bool MergeableKind(EvKind k) {
  return k == EvKind::kCharge || k == EvKind::kChargeScan ||
         k == EvKind::kChargeEmit;
}

/// One run-length-encoded accounting event. `count` identical charges are
/// replayed one meter add at a time (never pre-summed), so RLE compresses
/// the tape without perturbing floating-point accumulation order.
struct MeterEvent {
  double unit = 0.0;
  uint32_t count = 1;
  uint16_t node = 0;  ///< node slot (BatchExecState registration order)
  EvKind kind = EvKind::kCharge;
  uint16_t file = 0;  ///< kPageSeq/kPageRand: page file id
  uint32_t page = 0;  ///< kPageSeq/kPageRand: page number
};

/// Append-only event sequence with merge-fences at row-segment boundaries.
class Tape {
 public:
  void Clear() {
    ev_.clear();
    fence_ = 0;
  }
  bool empty() const { return ev_.empty(); }
  size_t size() const { return ev_.size(); }
  const std::vector<MeterEvent>& events() const { return ev_; }

  void Charge(uint16_t node, double unit, uint32_t count = 1) {
    if (count > 0) Push(node, unit, count, EvKind::kCharge);
  }
  void ChargeScan(uint16_t node, double unit, uint32_t count = 1) {
    if (count > 0) Push(node, unit, count, EvKind::kChargeScan);
  }
  void ChargeEmit(uint16_t node, double unit) {
    Push(node, unit, 1, EvKind::kChargeEmit);
  }
  /// Records a page access whose price (hit vs miss) is resolved at replay
  /// time against the buffer pool's deterministic accounting state, in the
  /// exact position the scalar engine would have charged it.
  void PageSeq(uint16_t node, uint16_t file, uint32_t page) {
    ev_.push_back({0.0, 1, node, EvKind::kPageSeq, file, page});
  }
  void PageRand(uint16_t node, uint16_t file, uint32_t page) {
    ev_.push_back({0.0, 1, node, EvKind::kPageRand, file, page});
  }
  void Finish(uint16_t node) {
    ev_.push_back({0.0, 1, node, EvKind::kFinish});
    fence_ = ev_.size();
  }

  /// Forbids RLE-merging the next push into the current last event. Row
  /// segment boundaries must fence, or a later charge could be attributed
  /// to an earlier segment and replayed out of order after splicing.
  void Fence() { fence_ = ev_.size(); }

  /// Splices events [from, to) of another tape (a child row segment or
  /// tail) onto this one, preserving order. Only the first copied event can
  /// RLE-merge with this tape's tail: within any fence-free span the source
  /// already merged adjacent identical events, so the rest copy verbatim.
  void Append(const Tape& src, size_t from, size_t to) {
    if (from >= to) return;
    const MeterEvent* s = src.ev_.data();
    if (ev_.size() > fence_) {
      const MeterEvent& e = s[from];
      MeterEvent& b = ev_.back();
      if (b.kind == e.kind && b.node == e.node && b.unit == e.unit &&
          b.count <= UINT32_MAX - e.count && MergeableKind(e.kind)) {
        b.count += e.count;
        ++from;
      }
    }
    ev_.insert(ev_.end(), s + from, s + to);
  }

 private:
  void Push(uint16_t node, double unit, uint32_t count, EvKind k) {
    if (ev_.size() > fence_) {
      MeterEvent& b = ev_.back();
      if (b.kind == k && b.node == node && b.unit == unit &&
          b.count <= UINT32_MAX - count && MergeableKind(k)) {
        b.count += count;
        return;
      }
    }
    ev_.push_back({unit, count, node, k});
  }

  std::vector<MeterEvent> ev_;
  size_t fence_ = 0;
};

}  // namespace batch_internal

/// A batch of rows in columnar layout plus its metering tape. `seg_end[j]`
/// is the tape length after row j's events; events past `seg_end[n-1]` (the
/// tail) happened after the last emitted row (trailing failed scans, child
/// finishes) and are spliced after the consumer's own per-row events.
struct ColumnBatch {
  std::vector<std::vector<int64_t>> cols;
  int64_t n = 0;
  batch_internal::Tape tape;
  std::vector<uint32_t> seg_end;

  void Configure(size_t num_cols) {
    cols.assign(num_cols, {});
    Reset();
  }
  void Reset() {
    for (auto& c : cols) c.clear();
    n = 0;
    tape.Clear();
    seg_end.clear();
  }
  /// Declares the current tape position as the end of the next output row's
  /// event segment. Call once per appended row, after its events.
  void MarkRow() {
    ++n;
    tape.Fence();
    seg_end.push_back(static_cast<uint32_t>(tape.size()));
  }
  size_t SegBegin(int64_t j) const { return j == 0 ? 0 : seg_end[j - 1]; }
  size_t SegEnd(int64_t j) const { return seg_end[j]; }
  size_t TailBegin() const { return n == 0 ? 0 : seg_end[n - 1]; }
};

/// Per-execution state shared by a batch operator tree: node-slot registry,
/// cached counter pointers, the abort latch, and the tape replayer. Create
/// one per execution, after resetting the context's meter/instrumentation
/// (the entry points below do this; the registry caches NodeCounters
/// pointers, so it must not outlive an Instrumentation::Reset).
class BatchExecState {
 public:
  explicit BatchExecState(ExecContext* ctx) : ctx_(ctx) {}

  ExecContext* ctx() { return ctx_; }
  bool aborted() const { return aborted_; }

  uint16_t Register(const PlanNode* node) {
    nodes_.push_back(node);
    nc_.push_back(nullptr);
    return static_cast<uint16_t>(nodes_.size() - 1);
  }

  /// First-touch for a slot, in scalar ForNode order: called by every
  /// operator on its first NextBatch, before pulling children or emitting
  /// events, so counters exist for exactly the nodes a scalar run would
  /// have touched by the same point.
  void TouchSlot(uint16_t slot) {
    nc_[slot] = &ctx_->instr.Touch(nodes_[slot]);
  }

  /// Attaches the buffer pool for replay-time resolution of kPageSeq /
  /// kPageRand events and caches the three page prices from the context's
  /// cost params. Paged scan operators call this at construction; calling
  /// it repeatedly is harmless (idempotent for a fixed execution).
  void SetBuffer(storage::BufferManager* bm);

  /// Replays events onto the meter and counters in order. Returns false at
  /// (and latches) a budget abort. When `root_emits` is non-null, counts
  /// the successful kChargeEmit units of `root_slot` — the number of result
  /// rows that logically exist before the abort point.
  bool Replay(const std::vector<batch_internal::MeterEvent>& events,
              uint16_t root_slot = UINT16_MAX, int64_t* root_emits = nullptr);

  /// Batch telemetry (data-plane only; never feeds accounting).
  int64_t batches_produced = 0;
  int64_t rows_produced = 0;

 private:
  /// Infinite-budget replay: no add can trip the meter, so counters apply
  /// in bulk and the unit adds run as one flat dependent chain (identical
  /// add sequence, no per-event abort bookkeeping).
  bool ReplayNoAbort(const std::vector<batch_internal::MeterEvent>& events,
                     uint16_t root_slot, int64_t* root_emits, double charged);

  ExecContext* ctx_;
  std::vector<const PlanNode*> nodes_;
  std::vector<NodeCounters*> nc_;
  std::vector<double> units_;  ///< flat-replay scratch
  bool aborted_ = false;
  /// Paged storage (null for in-memory databases). Page events call
  /// BufferManager::Access here, in replay order — the same deterministic
  /// accounting sequence the scalar engine produces at access time.
  storage::BufferManager* buffer_ = nullptr;
  double page_hit_cost_ = 0.0;
  double page_seq_cost_ = 0.0;
  double page_rand_cost_ = 0.0;
};

/// A batch-at-a-time operator. NextBatch appends rows/events to a batch the
/// caller has Configure()d for this operator's schema and Reset() before
/// the call. Contract mirrors the scalar engine:
///   kRow     — more input may follow (n may legitimately be 0: pipelined
///              operators hand back after each consumed child batch so the
///              consumer can replay before the next pull);
///   kDone    — final batch; tape ends with this operator's Finish;
///   kAborted — the meter tripped during an eagerly replayed phase, or the
///              tree is being re-pulled after an abort (a checked no-op,
///              same as the scalar engine).
class BatchOp {
 public:
  virtual ~BatchOp() = default;
  BatchOp(const BatchOp&) = delete;
  BatchOp& operator=(const BatchOp&) = delete;

  virtual ExecResult NextBatch(ColumnBatch* out) = 0;

  const std::vector<SchemaCol>& schema() const { return schema_; }
  uint16_t slot() const { return slot_; }
  int FindColumn(int table_idx, int col_idx) const;

 protected:
  BatchOp(const PlanNode* node, BatchExecState* st)
      : node_(node), st_(st), slot_(st->Register(node)) {}

  const PlanNode* node_;
  BatchExecState* st_;
  uint16_t slot_;
  std::vector<SchemaCol> schema_;
  bool touched_ = false;
};

/// Builds a batch operator tree over `state` (which must outlive the tree).
/// Binding rules are shared with the scalar builder (executor/binding.h);
/// failure conditions are identical.
Result<std::unique_ptr<BatchOp>> BuildBatchExecutor(const PlanNode& root,
                                                    BatchExecState* state);

/// Batch-engine equivalents of ExecutePlan/ExecuteSpilled: same outcome
/// semantics, same meter/instrumentation side effects (bit-identical
/// `cost_charged`, abort points, and per-node counters), same "exec.plan" /
/// "exec.node" spans plus one "exec.batch" child span summarizing batch
/// shape, and a `bouquet_exec_batch_rows` histogram when ctx->metrics is
/// set.
ExecutionOutcome ExecutePlanBatch(const PlanNode& root, ExecContext* ctx,
                                  double budget,
                                  std::vector<Row>* results = nullptr);
ExecutionOutcome ExecuteSpilledBatch(const PlanNode& subtree_root,
                                     ExecContext* ctx, double budget);

}  // namespace bouquet

#endif  // BOUQUET_EXECUTOR_BATCH_H_

// Predicate/key binding shared by the scalar and batch executors.
//
// Both engines must bind filters, join keys, and residual equalities to the
// exact same row positions and index-qual ranges: the batch engine replays
// the scalar engine's per-tuple charge sequence (see batch.h), and any
// binding divergence would change which tuples are charged. Keeping the
// bound forms in one header makes "same binding" a structural property
// instead of a copy-discipline one.

#ifndef BOUQUET_EXECUTOR_BINDING_H_
#define BOUQUET_EXECUTOR_BINDING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "query/query_spec.h"

namespace bouquet {
namespace exec_internal {

/// A selection predicate bound to a row position.
struct BoundFilter {
  int pos;
  CompareOp op;
  int64_t constant;
};

inline bool EvalFilterValue(int64_t v, const BoundFilter& f) {
  switch (f.op) {
    case CompareOp::kLess:
      return v < f.constant;
    case CompareOp::kLessEqual:
      return v <= f.constant;
    case CompareOp::kGreater:
      return v > f.constant;
    case CompareOp::kGreaterEqual:
      return v >= f.constant;
    case CompareOp::kEqual:
      return v == f.constant;
  }
  return false;
}

inline bool EvalFilter(const std::vector<int64_t>& row, const BoundFilter& f) {
  return EvalFilterValue(row[f.pos], f);
}

inline bool EvalAll(const std::vector<int64_t>& row,
                    const std::vector<BoundFilter>& filters) {
  for (const auto& f : filters) {
    if (!EvalFilter(row, f)) return false;
  }
  return true;
}

/// An equi-join condition bound to positions in the combined row.
struct BoundEquality {
  int left_pos;   // position in combined (left ++ right) row
  int right_pos;  // position in combined row
};

/// Translates a filter predicate into an inclusive index-qual range.
Status FilterToRange(const SelectionPredicate& f, int64_t* lo, int64_t* hi);

}  // namespace exec_internal
}  // namespace bouquet

#endif  // BOUQUET_EXECUTOR_BINDING_H_

#include "executor/exec_context.h"

// Header-only module; this translation unit anchors it.

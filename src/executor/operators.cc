#include "executor/operators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "common/str_util.h"
#include "executor/binding.h"

namespace bouquet {

int Operator::FindColumn(int table_idx, int col_idx) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].table_idx == table_idx && schema_[i].col_idx == col_idx) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace {

using exec_internal::BoundEquality;
using exec_internal::BoundFilter;
using exec_internal::EvalAll;
using exec_internal::FilterToRange;

// ---------------------------------------------------------------------------
// Sequential scan
// ---------------------------------------------------------------------------

class SeqScanOp : public Operator {
 public:
  SeqScanOp(const PlanNode* node, ExecContext* ctx,
            std::vector<BoundFilter> filters)
      : node_(node), ctx_(ctx), filters_(std::move(filters)) {
    const std::string& tname = ctx->query->tables[node->table_idx];
    table_ = &ctx->db->table(tname);
    paged_ = ctx->db->paged(tname);
    const TableInfo& info = ctx->catalog->GetTable(tname);
    const auto& p = ctx->cost_model->params();
    if (paged_ != nullptr) {
      // Paged storage: I/O is charged per *actual* page access (hit vs miss
      // against the buffer pool), not amortized per row, so the per-row
      // charge is the pure CPU part.
      nrows_ = paged_->num_rows();
      per_row_charge_ =
          p.cpu_tuple_cost + filters_.size() * p.cpu_operator_cost;
    } else {
      nrows_ = table_->num_rows();
      per_row_charge_ =
          p.seq_page_cost * info.stats.row_width_bytes / p.page_size_bytes +
          p.cpu_tuple_cost + filters_.size() * p.cpu_operator_cost;
    }
    for (int c = 0; c < table_->num_columns(); ++c) {
      schema_.push_back({node->table_idx, c});
    }
    row_buf_.resize(table_->num_columns());
  }

  ExecResult Next(Row* out) override {
    // Re-pulling after a budget abort is a checked no-op (see operators.h):
    // the meter stays tripped, so report kAborted again without charging or
    // moving any counter.
    if (ctx_->meter.exhausted()) return ExecResult::kAborted;
    NodeCounters& nc = ctx_->instr.ForNode(node_);
    const auto& p = ctx_->cost_model->params();
    while (next_row_ < nrows_) {
      const int64_t r = next_row_;
      if (paged_ != nullptr) {
        const uint32_t pg = paged_->PageOfRow(r);
        if (pg != cur_page_) {
          // Accounting before pinning: Access() is the deterministic
          // replacement-state transition the batch engine replays in this
          // exact position, so it must happen whether or not the charge
          // fits the budget (the meter records the overshoot either way).
          guard_ = storage::PageGuard();
          const storage::PageId pid{paged_->file_id(), pg};
          const bool hit = paged_->buffer()->Access(pid);
          if (hit) {
            ctx_->page_hits_charged++;
          } else {
            ctx_->page_reads_charged++;
          }
          if (!ctx_->meter.Charge(hit ? p.buffer_hit_page_cost
                                      : p.seq_page_cost)) {
            return ExecResult::kAborted;
          }
          cur_page_ = pg;
          guard_ = paged_->buffer()->Pin(pid);
        }
      }
      if (!ctx_->meter.Charge(per_row_charge_)) return ExecResult::kAborted;
      next_row_ = r + 1;
      nc.tuples_scanned++;
      if (paged_ != nullptr) {
        const int slot = paged_->SlotOfRow(r);
        for (int c = 0; c < static_cast<int>(row_buf_.size()); ++c) {
          row_buf_[c] = paged_->ValueIn(guard_, slot, c);
        }
      } else {
        for (int c = 0; c < table_->num_columns(); ++c) {
          row_buf_[c] = table_->value(c, r);
        }
      }
      if (!EvalAll(row_buf_, filters_)) continue;
      if (!ctx_->meter.Charge(p.cpu_tuple_cost)) return ExecResult::kAborted;
      nc.tuples_out++;
      *out = row_buf_;
      return ExecResult::kRow;
    }
    guard_ = storage::PageGuard();
    ctx_->instr.FinishNode(node_);  // counters + wall time + span hook
    return ExecResult::kDone;
  }

 private:
  const PlanNode* node_;
  ExecContext* ctx_;
  const DataTable* table_;
  const storage::PagedTable* paged_;
  std::vector<BoundFilter> filters_;
  double per_row_charge_;
  int64_t nrows_;
  int64_t next_row_ = 0;
  uint32_t cur_page_ = 0;  // page 0 is meta — never a data page
  storage::PageGuard guard_;
  Row row_buf_;
};

// ---------------------------------------------------------------------------
// Index scan (selection qual via sorted index)
// ---------------------------------------------------------------------------

class IndexScanOp : public Operator {
 public:
  IndexScanOp(const PlanNode* node, ExecContext* ctx,
              std::vector<BoundFilter> filters, int64_t qual_lo,
              int64_t qual_hi, int qual_col)
      : node_(node), ctx_(ctx), filters_(std::move(filters)) {
    const std::string& tname = ctx->query->tables[node->table_idx];
    table_ = &ctx->db->table(tname);
    paged_ = ctx->db->paged(tname);
    nrows_ = paged_ != nullptr ? paged_->num_rows() : table_->num_rows();
    matches_ = ctx->db->sorted_index(tname, qual_col).Range(qual_lo, qual_hi);
    for (int c = 0; c < table_->num_columns(); ++c) {
      schema_.push_back({node->table_idx, c});
    }
    row_buf_.resize(table_->num_columns());
  }

  ExecResult Next(Row* out) override {
    // Re-pulling after a budget abort is a checked no-op (see operators.h):
    // the meter stays tripped, so report kAborted again without charging or
    // moving any counter.
    if (ctx_->meter.exhausted()) return ExecResult::kAborted;
    NodeCounters& nc = ctx_->instr.ForNode(node_);
    const auto& p = ctx_->cost_model->params();
    if (!descent_charged_) {
      descent_charged_ = true;
      const double descent =
          p.random_page_cost +
          4.0 * p.cpu_operator_cost * std::log2(nrows_ + 2.0);
      if (!ctx_->meter.Charge(descent)) return ExecResult::kAborted;
    }
    // Uncorrelated heap order: one random page access per match. On paged
    // storage the page part is priced by the buffer pool (hit vs miss) as
    // its own meter add; in memory it stays folded into the flat per-match
    // charge exactly as before (the FP grouping of each expression is what
    // the batch engine reproduces on its tape — keep them in sync).
    const double per_match_cpu =
        p.cpu_index_tuple_cost + p.cpu_tuple_cost +
        (filters_.size() > 0 ? filters_.size() - 1 : 0) * p.cpu_operator_cost;
    const double per_match = p.random_page_cost + p.cpu_index_tuple_cost +
                             p.cpu_tuple_cost +
                             (filters_.size() > 0 ? filters_.size() - 1 : 0) *
                                 p.cpu_operator_cost;
    while (next_ < matches_.size()) {
      // Peek — advance only after the charges landed, so the abort point
      // (and everything after it) is independent of batch lookahead.
      const uint32_t r = matches_[next_];
      if (paged_ != nullptr) {
        const storage::PageId pid = paged_->PageIdOfRow(r);
        const bool hit = paged_->buffer()->Access(pid);
        if (hit) {
          ctx_->page_hits_charged++;
        } else {
          ctx_->page_reads_charged++;
        }
        if (!ctx_->meter.Charge(hit ? p.buffer_hit_page_cost
                                    : p.random_page_cost)) {
          return ExecResult::kAborted;
        }
        if (!ctx_->meter.Charge(per_match_cpu)) return ExecResult::kAborted;
        if (!guard_.valid() || cur_page_ != pid.page) {
          guard_ = paged_->buffer()->Pin(pid);
          cur_page_ = pid.page;
        }
      } else {
        if (!ctx_->meter.Charge(per_match)) return ExecResult::kAborted;
      }
      ++next_;
      nc.tuples_scanned++;
      if (paged_ != nullptr) {
        const int slot = paged_->SlotOfRow(r);
        for (int c = 0; c < static_cast<int>(row_buf_.size()); ++c) {
          row_buf_[c] = paged_->ValueIn(guard_, slot, c);
        }
      } else {
        for (int c = 0; c < table_->num_columns(); ++c) {
          row_buf_[c] = table_->value(c, r);
        }
      }
      if (!EvalAll(row_buf_, filters_)) continue;
      if (!ctx_->meter.Charge(p.cpu_tuple_cost)) return ExecResult::kAborted;
      nc.tuples_out++;
      *out = row_buf_;
      return ExecResult::kRow;
    }
    guard_ = storage::PageGuard();
    ctx_->instr.FinishNode(node_);  // counters + wall time + span hook
    return ExecResult::kDone;
  }

 private:
  const PlanNode* node_;
  ExecContext* ctx_;
  const DataTable* table_;
  const storage::PagedTable* paged_;
  int64_t nrows_;
  std::vector<BoundFilter> filters_;
  std::vector<uint32_t> matches_;
  size_t next_ = 0;
  bool descent_charged_ = false;
  uint32_t cur_page_ = 0;  // page 0 is meta — never a data page
  storage::PageGuard guard_;
  Row row_buf_;
};

// ---------------------------------------------------------------------------
// Hash join (right child builds)
// ---------------------------------------------------------------------------

class HashJoinOp : public Operator {
 public:
  HashJoinOp(const PlanNode* node, ExecContext* ctx,
             std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
             int left_key_pos, int right_key_pos,
             std::vector<BoundEquality> residual)
      : node_(node),
        ctx_(ctx),
        left_(std::move(left)),
        right_(std::move(right)),
        left_key_pos_(left_key_pos),
        right_key_pos_(right_key_pos),
        residual_(std::move(residual)) {
    schema_ = left_->schema();
    schema_.insert(schema_.end(), right_->schema().begin(),
                   right_->schema().end());
  }

  ExecResult Next(Row* out) override {
    // Re-pulling after a budget abort is a checked no-op (see operators.h):
    // the meter stays tripped, so report kAborted again without charging or
    // moving any counter.
    if (ctx_->meter.exhausted()) return ExecResult::kAborted;
    NodeCounters& nc = ctx_->instr.ForNode(node_);
    const auto& p = ctx_->cost_model->params();
    const double hash_op = p.hash_op_factor * p.cpu_operator_cost;

    if (!built_) {
      Row r;
      int64_t build_rows = 0;
      size_t row_slots = 1;
      for (;;) {
        const ExecResult st = right_->Next(&r);
        if (st == ExecResult::kAborted) return ExecResult::kAborted;
        if (st == ExecResult::kDone) break;
        if (!ctx_->meter.Charge(hash_op + p.cpu_tuple_cost)) {
          return ExecResult::kAborted;
        }
        ++build_rows;
        row_slots = r.size();
        table_[r[right_key_pos_]].push_back(r);
      }
      // Multi-batch spill: when the build side exceeds work_mem the cost
      // model prices one extra write+read pass over both sides; charge the
      // build side now and amortize the probe side per row below (widths
      // approximated by 8B per slot, as in the merge-join sort charge).
      const double build_width = 8.0 * double(row_slots);
      if (double(build_rows) * build_width > p.work_mem_bytes) {
        const double build_pages =
            double(build_rows) * build_width / p.page_size_bytes;
        if (!ctx_->meter.Charge(2.0 * p.seq_page_cost *
                                std::max(1.0, build_pages))) {
          return ExecResult::kAborted;
        }
        probe_spill_charge_ =
            2.0 * p.seq_page_cost * build_width / p.page_size_bytes;
      }
      built_ = true;
    }

    for (;;) {
      // Emit remaining matches for the current probe row.
      while (bucket_ != nullptr && bucket_pos_ < bucket_->size()) {
        const Row& rrow = (*bucket_)[bucket_pos_++];
        Row combined = probe_row_;
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        bool ok = true;
        for (const auto& eq : residual_) {
          if (combined[eq.left_pos] != combined[eq.right_pos]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        if (!ctx_->meter.Charge(p.cpu_tuple_cost)) return ExecResult::kAborted;
        nc.tuples_out++;
        *out = std::move(combined);
        return ExecResult::kRow;
      }
      // Advance to the next probe row.
      const ExecResult st = left_->Next(&probe_row_);
      if (st == ExecResult::kAborted) return ExecResult::kAborted;
      if (st == ExecResult::kDone) {
        ctx_->instr.FinishNode(node_);  // counters + wall time + span hook
        return ExecResult::kDone;
      }
      if (!ctx_->meter.Charge(hash_op + probe_spill_charge_)) {
        return ExecResult::kAborted;
      }
      auto it = table_.find(probe_row_[left_key_pos_]);
      bucket_ = it == table_.end() ? nullptr : &it->second;
      bucket_pos_ = 0;
    }
  }

 private:
  const PlanNode* node_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  int left_key_pos_;
  int right_key_pos_;  // within the right child's own row
  std::vector<BoundEquality> residual_;

  std::unordered_map<int64_t, std::vector<Row>> table_;
  bool built_ = false;
  double probe_spill_charge_ = 0.0;  // per probe row when multi-batch
  Row probe_row_;
  const std::vector<Row>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Sort-merge join
// ---------------------------------------------------------------------------

class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(const PlanNode* node, ExecContext* ctx,
              std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
              int left_key_pos, int right_key_pos,
              std::vector<BoundEquality> residual)
      : node_(node),
        ctx_(ctx),
        left_(std::move(left)),
        right_(std::move(right)),
        left_key_pos_(left_key_pos),
        right_key_pos_(right_key_pos),
        residual_(std::move(residual)) {
    schema_ = left_->schema();
    schema_.insert(schema_.end(), right_->schema().begin(),
                   right_->schema().end());
  }

  ExecResult Next(Row* out) override {
    // Re-pulling after a budget abort is a checked no-op (see operators.h):
    // the meter stays tripped, so report kAborted again without charging or
    // moving any counter.
    if (ctx_->meter.exhausted()) return ExecResult::kAborted;
    NodeCounters& nc = ctx_->instr.ForNode(node_);
    const auto& p = ctx_->cost_model->params();

    if (!sorted_) {
      const ExecResult st = DrainAndSort();
      if (st == ExecResult::kAborted) return ExecResult::kAborted;
      sorted_ = true;
    }

    for (;;) {
      // Emit the cross product of the current equal-key groups.
      if (gi_ < gl_end_) {
        while (gj_ < gr_end_) {
          const Row& lrow = lrows_[gi_];
          const Row& rrow = rrows_[gj_++];
          Row combined = lrow;
          combined.insert(combined.end(), rrow.begin(), rrow.end());
          bool ok = true;
          for (const auto& eq : residual_) {
            if (combined[eq.left_pos] != combined[eq.right_pos]) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          if (!ctx_->meter.Charge(p.cpu_tuple_cost)) {
            return ExecResult::kAborted;
          }
          nc.tuples_out++;
          *out = std::move(combined);
          return ExecResult::kRow;
        }
        ++gi_;
        gj_ = gr_start_;
        continue;
      }
      // Find the next pair of equal-key groups.
      li_ = gl_end_;
      ri_ = gr_end_;
      if (li_ >= lrows_.size() || ri_ >= rrows_.size()) {
        ctx_->instr.FinishNode(node_);  // counters + wall time + span hook
        return ExecResult::kDone;
      }
      if (!ctx_->meter.Charge(p.cpu_operator_cost)) {
        return ExecResult::kAborted;
      }
      const int64_t lk = lrows_[li_][left_key_pos_];
      const int64_t rk = rrows_[ri_][right_key_pos_];
      if (lk < rk) {
        gl_end_ = li_ + 1;
        gi_ = gl_end_;  // empty group; just advance left
        gr_end_ = ri_;
        gj_ = gr_start_ = ri_;
        continue;
      }
      if (lk > rk) {
        gr_end_ = ri_ + 1;
        gl_end_ = li_;
        gi_ = li_;
        gj_ = gr_start_ = gr_end_;  // empty
        continue;
      }
      // Equal keys: delimit both groups.
      size_t le = li_;
      while (le < lrows_.size() && lrows_[le][left_key_pos_] == lk) ++le;
      size_t re = ri_;
      while (re < rrows_.size() && rrows_[re][right_key_pos_] == rk) ++re;
      gi_ = li_;
      gl_end_ = le;
      gr_start_ = ri_;
      gj_ = ri_;
      gr_end_ = re;
    }
  }

 private:
  ExecResult DrainAndSort() {
    const auto& p = ctx_->cost_model->params();
    Row r;
    for (;;) {
      const ExecResult st = left_->Next(&r);
      if (st == ExecResult::kAborted) return ExecResult::kAborted;
      if (st == ExecResult::kDone) break;
      lrows_.push_back(r);
    }
    for (;;) {
      const ExecResult st = right_->Next(&r);
      if (st == ExecResult::kAborted) return ExecResult::kAborted;
      if (st == ExecResult::kDone) break;
      rrows_.push_back(r);
    }
    // Charge sort costs in bulk (matches CostModel::SortCost's CPU term;
    // widths approximated by row slot count * 8B). Pre-sorted inputs — an
    // interesting order produced upstream — skip both the work and the
    // charge.
    const double lw = 8.0 * (lrows_.empty() ? 1 : lrows_[0].size());
    const double rw = 8.0 * (rrows_.empty() ? 1 : rrows_[0].size());
    double charge = 0.0;
    if (!node_->left_presorted) {
      charge += ctx_->cost_model->SortCost(double(lrows_.size()), lw);
      std::stable_sort(lrows_.begin(), lrows_.end(),
                       [this](const Row& a, const Row& b) {
                         return a[left_key_pos_] < b[left_key_pos_];
                       });
    }
    if (!node_->right_presorted) {
      charge += ctx_->cost_model->SortCost(double(rrows_.size()), rw);
      std::stable_sort(rrows_.begin(), rrows_.end(),
                       [this](const Row& a, const Row& b) {
                         return a[right_key_pos_] < b[right_key_pos_];
                       });
    }
    const bool ok = ctx_->meter.Charge(charge);
    assert(std::is_sorted(lrows_.begin(), lrows_.end(),
                          [this](const Row& a, const Row& b) {
                            return a[left_key_pos_] < b[left_key_pos_];
                          }) &&
           "left merge input not sorted (presorted flag wrong)");
    assert(std::is_sorted(rrows_.begin(), rrows_.end(),
                          [this](const Row& a, const Row& b) {
                            return a[right_key_pos_] < b[right_key_pos_];
                          }) &&
           "right merge input not sorted (presorted flag wrong)");
    (void)p;
    return ok ? ExecResult::kDone : ExecResult::kAborted;
  }

  const PlanNode* node_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  int left_key_pos_;
  int right_key_pos_;
  std::vector<BoundEquality> residual_;

  bool sorted_ = false;
  std::vector<Row> lrows_, rrows_;
  size_t li_ = 0, ri_ = 0;
  size_t gi_ = 0, gl_end_ = 0;
  size_t gj_ = 0, gr_start_ = 0, gr_end_ = 0;
};

// ---------------------------------------------------------------------------
// Index nested-loop join (inner = base table via hash index on join key)
// ---------------------------------------------------------------------------

class IndexNLJoinOp : public Operator {
 public:
  IndexNLJoinOp(const PlanNode* node, ExecContext* ctx,
                std::unique_ptr<Operator> left, int inner_table_idx,
                int inner_key_col, int outer_key_pos,
                std::vector<BoundFilter> inner_filters,
                std::vector<BoundEquality> residual)
      : node_(node),
        ctx_(ctx),
        left_(std::move(left)),
        inner_table_idx_(inner_table_idx),
        inner_key_col_(inner_key_col),
        outer_key_pos_(outer_key_pos),
        inner_filters_(std::move(inner_filters)),
        residual_(std::move(residual)) {
    const std::string& tname = ctx->query->tables[inner_table_idx];
    inner_ = &ctx->db->table(tname);
    paged_ = ctx->db->paged(tname);
    inner_rows_ =
        paged_ != nullptr ? paged_->num_rows() : inner_->num_rows();
    index_ = &ctx->db->hash_index(tname, inner_key_col_);
    schema_ = left_->schema();
    for (int c = 0; c < inner_->num_columns(); ++c) {
      schema_.push_back({inner_table_idx, c});
    }
    inner_buf_.resize(inner_->num_columns());
  }

  ExecResult Next(Row* out) override {
    // Re-pulling after a budget abort is a checked no-op (see operators.h):
    // the meter stays tripped, so report kAborted again without charging or
    // moving any counter.
    if (ctx_->meter.exhausted()) return ExecResult::kAborted;
    NodeCounters& nc = ctx_->instr.ForNode(node_);
    const auto& p = ctx_->cost_model->params();
    const double descent =
        p.random_page_cost +
        4.0 * p.cpu_operator_cost * std::log2(inner_rows_ + 2.0);
    // Same split as IndexScanOp: on paged storage the random page access is
    // its own buffer-pool-priced meter add; in memory the flat per-match
    // sum is unchanged (FP grouping mirrored by the batch engine's tape).
    const double per_match =
        p.random_page_cost + p.cpu_index_tuple_cost +
        (inner_filters_.size() + residual_.size()) * p.cpu_operator_cost;
    const double per_match_cpu =
        p.cpu_index_tuple_cost +
        (inner_filters_.size() + residual_.size()) * p.cpu_operator_cost;

    for (;;) {
      while (matches_ != nullptr && match_pos_ < matches_->size()) {
        // Peek — advance only after the charges landed (see IndexScanOp).
        const uint32_t r = (*matches_)[match_pos_];
        if (paged_ != nullptr) {
          const storage::PageId pid = paged_->PageIdOfRow(r);
          const bool hit = paged_->buffer()->Access(pid);
          if (hit) {
            ctx_->page_hits_charged++;
          } else {
            ctx_->page_reads_charged++;
          }
          if (!ctx_->meter.Charge(hit ? p.buffer_hit_page_cost
                                      : p.random_page_cost)) {
            return ExecResult::kAborted;
          }
          if (!ctx_->meter.Charge(per_match_cpu)) return ExecResult::kAborted;
          if (!guard_.valid() || cur_page_ != pid.page) {
            guard_ = paged_->buffer()->Pin(pid);
            cur_page_ = pid.page;
          }
        } else {
          if (!ctx_->meter.Charge(per_match)) return ExecResult::kAborted;
        }
        ++match_pos_;
        if (paged_ != nullptr) {
          const int slot = paged_->SlotOfRow(r);
          for (int c = 0; c < static_cast<int>(inner_buf_.size()); ++c) {
            inner_buf_[c] = paged_->ValueIn(guard_, slot, c);
          }
        } else {
          for (int c = 0; c < inner_->num_columns(); ++c) {
            inner_buf_[c] = inner_->value(c, r);
          }
        }
        if (!EvalAll(inner_buf_, inner_filters_)) continue;
        Row combined = outer_row_;
        combined.insert(combined.end(), inner_buf_.begin(), inner_buf_.end());
        bool ok = true;
        for (const auto& eq : residual_) {
          if (combined[eq.left_pos] != combined[eq.right_pos]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        if (!ctx_->meter.Charge(p.cpu_tuple_cost)) return ExecResult::kAborted;
        nc.tuples_out++;
        *out = std::move(combined);
        return ExecResult::kRow;
      }
      const ExecResult st = left_->Next(&outer_row_);
      if (st == ExecResult::kAborted) return ExecResult::kAborted;
      if (st == ExecResult::kDone) {
        guard_ = storage::PageGuard();
        ctx_->instr.FinishNode(node_);  // counters + wall time + span hook
        return ExecResult::kDone;
      }
      if (!ctx_->meter.Charge(descent)) return ExecResult::kAborted;
      matches_ = &index_->Lookup(outer_row_[outer_key_pos_]);
      match_pos_ = 0;
    }
  }

 private:
  const PlanNode* node_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> left_;
  int inner_table_idx_;
  int inner_key_col_;
  int outer_key_pos_;
  std::vector<BoundFilter> inner_filters_;
  std::vector<BoundEquality> residual_;

  const DataTable* inner_;
  const storage::PagedTable* paged_;
  int64_t inner_rows_;
  const HashIndex* index_;
  Row outer_row_;
  Row inner_buf_;
  uint32_t cur_page_ = 0;  // page 0 is meta — never a data page
  storage::PageGuard guard_;
  const std::vector<uint32_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Materialized nested-loop join
// ---------------------------------------------------------------------------

class MaterialNLJoinOp : public Operator {
 public:
  MaterialNLJoinOp(const PlanNode* node, ExecContext* ctx,
                   std::unique_ptr<Operator> left,
                   std::unique_ptr<Operator> right,
                   std::vector<BoundEquality> conditions)
      : node_(node),
        ctx_(ctx),
        left_(std::move(left)),
        right_(std::move(right)),
        conditions_(std::move(conditions)) {
    schema_ = left_->schema();
    schema_.insert(schema_.end(), right_->schema().begin(),
                   right_->schema().end());
  }

  ExecResult Next(Row* out) override {
    // Re-pulling after a budget abort is a checked no-op (see operators.h):
    // the meter stays tripped, so report kAborted again without charging or
    // moving any counter.
    if (ctx_->meter.exhausted()) return ExecResult::kAborted;
    NodeCounters& nc = ctx_->instr.ForNode(node_);
    const auto& p = ctx_->cost_model->params();

    if (!materialized_) {
      Row r;
      for (;;) {
        const ExecResult st = right_->Next(&r);
        if (st == ExecResult::kAborted) return ExecResult::kAborted;
        if (st == ExecResult::kDone) break;
        if (!ctx_->meter.Charge(p.cpu_tuple_cost)) {
          return ExecResult::kAborted;
        }
        inner_rows_.push_back(r);
      }
      materialized_ = true;
      have_outer_ = false;
    }

    for (;;) {
      if (!have_outer_) {
        const ExecResult st = left_->Next(&outer_row_);
        if (st == ExecResult::kAborted) return ExecResult::kAborted;
        if (st == ExecResult::kDone) {
          ctx_->instr.FinishNode(node_);  // counters + wall time + span hook
          return ExecResult::kDone;
        }
        have_outer_ = true;
        inner_pos_ = 0;
      }
      while (inner_pos_ < inner_rows_.size()) {
        if (!ctx_->meter.Charge(p.cpu_operator_cost)) {
          return ExecResult::kAborted;
        }
        const Row& rrow = inner_rows_[inner_pos_++];
        Row combined = outer_row_;
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        bool ok = true;
        for (const auto& eq : conditions_) {
          if (combined[eq.left_pos] != combined[eq.right_pos]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        if (!ctx_->meter.Charge(p.cpu_tuple_cost)) return ExecResult::kAborted;
        nc.tuples_out++;
        *out = std::move(combined);
        return ExecResult::kRow;
      }
      have_outer_ = false;
    }
  }

 private:
  const PlanNode* node_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  std::vector<BoundEquality> conditions_;

  bool materialized_ = false;
  std::vector<Row> inner_rows_;
  Row outer_row_;
  bool have_outer_ = false;
  size_t inner_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Hash aggregate
// ---------------------------------------------------------------------------

class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(const PlanNode* node, ExecContext* ctx,
                  std::unique_ptr<Operator> child,
                  std::vector<int> group_positions, int agg_position,
                  AggregateSpec::Func func)
      : node_(node),
        ctx_(ctx),
        child_(std::move(child)),
        group_positions_(std::move(group_positions)),
        agg_position_(agg_position),
        func_(func) {
    // Output: group columns (original identities) + one synthetic result
    // slot.
    for (int pos : group_positions_) {
      schema_.push_back(child_->schema()[pos]);
    }
    schema_.push_back({-1, -1});  // aggregate value
  }

  ExecResult Next(Row* out) override {
    // Re-pulling after a budget abort is a checked no-op (see operators.h):
    // the meter stays tripped, so report kAborted again without charging or
    // moving any counter.
    if (ctx_->meter.exhausted()) return ExecResult::kAborted;
    NodeCounters& nc = ctx_->instr.ForNode(node_);
    const auto& p = ctx_->cost_model->params();
    const double hash_op = p.hash_op_factor * p.cpu_operator_cost;

    if (!built_) {
      Row r;
      for (;;) {
        const ExecResult st = child_->Next(&r);
        if (st == ExecResult::kAborted) return ExecResult::kAborted;
        if (st == ExecResult::kDone) break;
        if (!ctx_->meter.Charge(hash_op + p.cpu_operator_cost)) {
          return ExecResult::kAborted;
        }
        Row key(group_positions_.size());
        for (size_t i = 0; i < group_positions_.size(); ++i) {
          key[i] = r[group_positions_[i]];
        }
        const int64_t value = agg_position_ >= 0 ? r[agg_position_] : 1;
        auto [it, inserted] = groups_.try_emplace(std::move(key), 0);
        switch (func_) {
          case AggregateSpec::Func::kCount:
            it->second += 1;
            break;
          case AggregateSpec::Func::kSum:
            it->second = inserted ? value : it->second + value;
            break;
          case AggregateSpec::Func::kMin:
            it->second = inserted ? value : std::min(it->second, value);
            break;
          case AggregateSpec::Func::kMax:
            it->second = inserted ? value : std::max(it->second, value);
            break;
        }
      }
      // Scalar COUNT over empty input emits one zero row (SQL semantics);
      // scalar SUM/MIN/MAX over empty input emit nothing (the engine has no
      // NULL representation).
      if (groups_.empty() && group_positions_.empty() &&
          func_ == AggregateSpec::Func::kCount) {
        groups_.try_emplace(Row{}, 0);
      }
      // Emit in ascending group-key order. Hash-map iteration order is
      // unspecified (bouquet-determinism), and under a budget abort the set
      // of rows emitted before the trip would depend on it; sorting makes
      // the output — and therefore the abort-truncated prefix — identical
      // across engines and standard libraries. The batch engine sorts the
      // same way.
      // NOLINTNEXTLINE(bouquet-determinism): drained into the sort below
      emit_rows_.assign(std::make_move_iterator(groups_.begin()),
                        std::make_move_iterator(groups_.end()));
      std::sort(emit_rows_.begin(), emit_rows_.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      groups_.clear();
      emit_ = 0;
      built_ = true;
    }

    if (emit_ == emit_rows_.size()) {
      ctx_->instr.FinishNode(node_);  // counters + wall time + span hook
      return ExecResult::kDone;
    }
    if (!ctx_->meter.Charge(p.cpu_tuple_cost)) return ExecResult::kAborted;
    const auto& row = emit_rows_[emit_];
    out->assign(row.first.begin(), row.first.end());
    out->push_back(row.second);
    ++emit_;
    nc.tuples_out++;
    return ExecResult::kRow;
  }

 private:
  struct RowHash {
    size_t operator()(const Row& r) const {
      size_t h = 1469598103934665603ULL;
      for (int64_t v : r) {
        h ^= static_cast<size_t>(v);
        h *= 1099511628211ULL;
      }
      return h;
    }
  };

  const PlanNode* node_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> child_;
  std::vector<int> group_positions_;
  int agg_position_;
  AggregateSpec::Func func_;

  bool built_ = false;
  std::unordered_map<Row, int64_t, RowHash> groups_;
  /// Sorted (group key, aggregate) pairs; emission order must be
  /// deterministic, see the comment at the sort.
  std::vector<std::pair<Row, int64_t>> emit_rows_;
  size_t emit_ = 0;
};

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

}  // namespace

namespace exec_internal {

// Translates a filter predicate into an inclusive index-qual range.
Status FilterToRange(const SelectionPredicate& f, int64_t* lo, int64_t* hi) {
  if (!f.has_constant()) {
    return Status::FailedPrecondition(
        "cannot execute abstract predicate without constant: " + f.table +
        "." + f.column);
  }
  *lo = INT64_MIN;
  *hi = INT64_MAX;
  switch (f.op) {
    case CompareOp::kLess:
      // `x < INT64_MIN` is unsatisfiable; guard the decrement overflow.
      if (f.constant == INT64_MIN) {
        *lo = 1;
        *hi = 0;  // empty range
      } else {
        *hi = f.constant - 1;
      }
      break;
    case CompareOp::kLessEqual:
      *hi = f.constant;
      break;
    case CompareOp::kGreater:
      // `x > INT64_MAX` is unsatisfiable; guard the increment overflow.
      if (f.constant == INT64_MAX) {
        *lo = 1;
        *hi = 0;  // empty range
      } else {
        *lo = f.constant + 1;
      }
      break;
    case CompareOp::kGreaterEqual:
      *lo = f.constant;
      break;
    case CompareOp::kEqual:
      *lo = *hi = f.constant;
      break;
  }
  return Status::Ok();
}

}  // namespace exec_internal

namespace {

Result<std::unique_ptr<Operator>> Build(const PlanNode& node,
                                        ExecContext* ctx) {
  const QuerySpec& q = *ctx->query;

  if (node.is_aggregate()) {
    auto child_res = Build(*node.left, ctx);
    if (!child_res.ok()) return child_res.status();
    std::unique_ptr<Operator> child = std::move(child_res.value());
    const AggregateSpec& spec = q.aggregate;
    std::vector<int> group_positions;
    for (const auto& [table, column] : spec.group_by) {
      const int t = q.TableIndex(table);
      const int c = ctx->db->table(q.tables[t]).ColumnIndex(column);
      const int pos = child->FindColumn(t, c);
      if (pos < 0) return Status::Internal("group-by column not in input");
      group_positions.push_back(pos);
    }
    int agg_position = -1;
    if (spec.func != AggregateSpec::Func::kCount) {
      const int t = q.TableIndex(spec.agg_table);
      const int c =
          ctx->db->table(q.tables[t]).ColumnIndex(spec.agg_column);
      agg_position = child->FindColumn(t, c);
      if (agg_position < 0) {
        return Status::Internal("aggregate column not in input");
      }
    }
    return std::unique_ptr<Operator>(std::make_unique<HashAggregateOp>(
        &node, ctx, std::move(child), std::move(group_positions),
        agg_position, spec.func));
  }

  if (node.is_scan()) {
    const std::string& tname = q.tables[node.table_idx];
    const DataTable& dt = ctx->db->table(tname);
    std::vector<BoundFilter> filters;
    for (int f : node.filter_idxs) {
      const auto& pred = q.filters[f];
      if (!pred.has_constant()) {
        return Status::FailedPrecondition(
            "cannot execute abstract predicate without constant: " +
            pred.table + "." + pred.column);
      }
      const int col = dt.ColumnIndex(pred.column);
      if (col < 0) return Status::NotFound("column missing in data table");
      filters.push_back({col, pred.op, pred.constant});
    }
    if (node.op == OpType::kIndexScan && node.index_filter >= 0) {
      const auto& pred = q.filters[node.index_filter];
      int64_t lo, hi;
      Status s = FilterToRange(pred, &lo, &hi);
      if (!s.ok()) return s;
      const int col = dt.ColumnIndex(pred.column);
      return std::unique_ptr<Operator>(std::make_unique<IndexScanOp>(
          &node, ctx, std::move(filters), lo, hi, col));
    }
    return std::unique_ptr<Operator>(
        std::make_unique<SeqScanOp>(&node, ctx, std::move(filters)));
  }

  // Joins: build the outer child first.
  auto left_res = Build(*node.left, ctx);
  if (!left_res.ok()) return left_res.status();
  std::unique_ptr<Operator> left = std::move(left_res.value());

  // Index NL join: inner is accessed via hash index, no child operator.
  if (node.op == OpType::kIndexNLJoin) {
    assert(node.index_join >= 0);
    const auto& jp = q.joins[node.index_join];
    const int inner_table = node.right->table_idx;
    const DataTable& inner_dt = ctx->db->table(q.tables[inner_table]);
    const bool inner_is_left = q.TableIndex(jp.left_table) == inner_table;
    const std::string& inner_col_name =
        inner_is_left ? jp.left_column : jp.right_column;
    const std::string& outer_col_name =
        inner_is_left ? jp.right_column : jp.left_column;
    const int outer_table =
        inner_is_left ? q.TableIndex(jp.right_table) : q.TableIndex(jp.left_table);
    const int inner_key_col = inner_dt.ColumnIndex(inner_col_name);
    const int outer_key_pos = left->FindColumn(
        outer_table,
        ctx->db->table(q.tables[outer_table]).ColumnIndex(outer_col_name));
    if (inner_key_col < 0 || outer_key_pos < 0) {
      return Status::Internal("index NL join key binding failed");
    }
    std::vector<BoundFilter> inner_filters;
    for (int f : node.right->filter_idxs) {
      const auto& pred = q.filters[f];
      if (!pred.has_constant()) {
        return Status::FailedPrecondition(
            "cannot execute abstract predicate without constant: " +
            pred.table + "." + pred.column);
      }
      const int col = inner_dt.ColumnIndex(pred.column);
      if (col < 0) {
        return Status::NotFound("column missing in data table: " +
                                pred.table + "." + pred.column);
      }
      inner_filters.push_back({col, pred.op, pred.constant});
    }
    // Residual join predicates: all join_idxs except the lookup key.
    std::vector<BoundEquality> residual;
    const size_t left_width = left->schema().size();
    for (int j : node.join_idxs) {
      if (j == node.index_join) continue;
      const auto& rp = q.joins[j];
      const int lt = q.TableIndex(rp.left_table);
      const int rt = q.TableIndex(rp.right_table);
      const int lcol = ctx->db->table(q.tables[lt]).ColumnIndex(rp.left_column);
      const int rcol =
          ctx->db->table(q.tables[rt]).ColumnIndex(rp.right_column);
      // One endpoint is in the outer schema, the other is the inner table.
      int pos_a = left->FindColumn(lt, lcol);
      int pos_b = left->FindColumn(rt, rcol);
      if (pos_a < 0) pos_a = static_cast<int>(left_width) + lcol;  // inner side
      if (pos_b < 0) pos_b = static_cast<int>(left_width) + rcol;
      residual.push_back({pos_a, pos_b});
    }
    return std::unique_ptr<Operator>(std::make_unique<IndexNLJoinOp>(
        &node, ctx, std::move(left), inner_table, inner_key_col,
        outer_key_pos, std::move(inner_filters), std::move(residual)));
  }

  auto right_res = Build(*node.right, ctx);
  if (!right_res.ok()) return right_res.status();
  std::unique_ptr<Operator> right = std::move(right_res.value());

  // Bind all join predicates to positions in the combined row.
  const size_t left_width = left->schema().size();
  auto bind_side = [&](const std::string& table, const std::string& column,
                       int* pos) -> bool {
    const int t = q.TableIndex(table);
    const int c = ctx->db->table(q.tables[t]).ColumnIndex(column);
    int p = left->FindColumn(t, c);
    if (p >= 0) {
      *pos = p;
      return true;  // found on the left side
    }
    p = right->FindColumn(t, c);
    if (p >= 0) {
      *pos = static_cast<int>(left_width) + p;
      return false;  // right side
    }
    *pos = -1;
    return false;
  };

  std::vector<BoundEquality> all_conditions;
  // For hash/merge we additionally need the first predicate's key positions
  // within each child's own row.
  int left_key_pos = -1;
  int right_key_pos = -1;
  for (size_t i = 0; i < node.join_idxs.size(); ++i) {
    const auto& jp = q.joins[node.join_idxs[i]];
    int pos_l, pos_r;
    bind_side(jp.left_table, jp.left_column, &pos_l);
    bind_side(jp.right_table, jp.right_column, &pos_r);
    if (pos_l < 0 || pos_r < 0) {
      return Status::Internal("join predicate binding failed");
    }
    if (i == 0) {
      // Orient: one side must be < left_width (outer), the other >=.
      const int a = std::min(pos_l, pos_r);
      const int b = std::max(pos_l, pos_r);
      if (a >= static_cast<int>(left_width) ||
          b < static_cast<int>(left_width)) {
        return Status::Internal("join key not crossing children");
      }
      left_key_pos = a;
      right_key_pos = b - static_cast<int>(left_width);
    } else {
      all_conditions.push_back({pos_l, pos_r});
    }
  }

  switch (node.op) {
    case OpType::kHashJoin:
      return std::unique_ptr<Operator>(std::make_unique<HashJoinOp>(
          &node, ctx, std::move(left), std::move(right), left_key_pos,
          right_key_pos, std::move(all_conditions)));
    case OpType::kMergeJoin:
      return std::unique_ptr<Operator>(std::make_unique<MergeJoinOp>(
          &node, ctx, std::move(left), std::move(right), left_key_pos,
          right_key_pos, std::move(all_conditions)));
    case OpType::kMaterialNLJoin: {
      // Re-add the first predicate as a plain condition.
      std::vector<BoundEquality> conds = std::move(all_conditions);
      conds.push_back({left_key_pos,
                       right_key_pos + static_cast<int>(left_width)});
      return std::unique_ptr<Operator>(std::make_unique<MaterialNLJoinOp>(
          &node, ctx, std::move(left), std::move(right), std::move(conds)));
    }
    default:
      return Status::Internal("unsupported join operator in builder");
  }
}

}  // namespace

Result<std::unique_ptr<Operator>> BuildExecutor(const PlanNode& root,
                                                ExecContext* ctx) {
  assert(ctx->query && ctx->db && ctx->catalog && ctx->cost_model);
  return Build(root, ctx);
}

ExecResult DrainOperator(Operator* op, std::vector<Row>* rows,
                         int64_t* emitted, int64_t max_rows) {
  int64_t count = 0;
  Row r;
  for (;;) {
    const ExecResult st = op->Next(&r);
    if (st == ExecResult::kRow) {
      ++count;
      if (rows != nullptr && count <= max_rows) rows->push_back(r);
      continue;
    }
    *emitted = count;
    return st;
  }
}

}  // namespace bouquet

// High-level execution entry points over the operator tree builder:
// budget-limited full-plan execution and spilled subtree execution.
//
// "Spilled" execution (Section 5.3 of the paper) runs only the subtree up to
// and including the first error-prone node and discards its output, so the
// entire cost budget is spent on learning that node's selectivity instead of
// on downstream processing.

#ifndef BOUQUET_EXECUTOR_BUILDER_H_
#define BOUQUET_EXECUTOR_BUILDER_H_

#include <vector>

#include "executor/operators.h"

namespace bouquet {

/// Result of one (possibly partial) plan execution.
struct ExecutionOutcome {
  ExecResult status = ExecResult::kDone;
  int64_t rows_emitted = 0;
  double cost_charged = 0.0;
  /// Paged storage only (zero on in-memory databases): page accesses the
  /// meter charged, split by buffer-pool outcome. reads = misses priced at
  /// seq/random_page_cost; hits priced at buffer_hit_page_cost.
  int64_t page_reads = 0;
  int64_t page_hits = 0;
  /// True when the operator tree could not even be built (e.g. an abstract
  /// predicate without a constant); distinct from a budget abort — retrying
  /// with a larger budget cannot help.
  bool build_failed = false;
  Status build_status;
};

/// Executes the full plan with the given cost budget. Result rows are
/// appended to *results when non-null. Resets the context's meter and
/// instrumentation first (a fresh partial execution; prior intermediate
/// results are "jettisoned" per the basic bouquet contract).
ExecutionOutcome ExecutePlan(const PlanNode& root, ExecContext* ctx,
                             double budget,
                             std::vector<Row>* results = nullptr);

/// Executes only the given subtree (spill mode), discarding its output.
/// The budget covers the subtree alone.
ExecutionOutcome ExecuteSpilled(const PlanNode& subtree_root, ExecContext* ctx,
                                double budget);

/// Which execution engine runs a plan. Both engines are bit-compatible in
/// cost accounting (identical `cost_charged`, abort points, and per-node
/// counters for the same plan/budget — see batch.h and the differential
/// harness in src/testing), so the choice is purely a throughput knob.
enum class ExecEngine {
  kScalar,  ///< tuple-at-a-time Volcano iterators (operators.h)
  kBatch,   ///< vectorized column batches with charge replay (batch.h)
};

/// Engine-dispatching variants of ExecutePlan/ExecuteSpilled.
ExecutionOutcome ExecutePlanWith(ExecEngine engine, const PlanNode& root,
                                 ExecContext* ctx, double budget,
                                 std::vector<Row>* results = nullptr);
ExecutionOutcome ExecuteSpilledWith(ExecEngine engine,
                                    const PlanNode& subtree_root,
                                    ExecContext* ctx, double budget);

}  // namespace bouquet

#endif  // BOUQUET_EXECUTOR_BUILDER_H_

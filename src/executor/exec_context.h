// Execution context: cost metering + shared state for a (partial) execution.
//
// The CostMeter charges the same abstract units the cost model prices plans
// in, so "running-cost(P) <= cost-budget(IC)" — the loop condition of the
// paper's bouquet algorithms (Figures 7 and 13) — is enforced consistently
// with the isocost contours computed at compile time.

#ifndef BOUQUET_EXECUTOR_EXEC_CONTEXT_H_
#define BOUQUET_EXECUTOR_EXEC_CONTEXT_H_

#include <cstdint>
#include <limits>

#include "catalog/catalog.h"
#include "common/lint.h"
#include "executor/instrument.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/cost_model.h"
#include "query/query_spec.h"
#include "storage/index.h"

namespace bouquet {

/// Accumulates abstract cost units; trips once the budget is exceeded.
class CostMeter {
 public:
  void set_budget(double budget) { budget_ = budget; }
  double budget() const { return budget_; }
  double charged() const { return charged_; }

  /// Adds `units`; returns false (and stays tripped) once charged > budget.
  bool Charge(double units) {
    charged_ += units;
    return charged_ <= budget_;
  }

  bool exhausted() const { return charged_ > budget_; }

  /// Replay support (batch engine): tape replay keeps the accumulator in a
  /// register across thousands of one-unit adds and writes it back here.
  /// `charged` must be the value a sequence of Charge() calls would have
  /// produced — this is a performance hatch, not a way to invent cost.
  void RestoreCharged(double charged) {
    // The one sanctioned non-add write: the tape replayer's register spill
    // back into the accumulator. The replay loop performs the adds one
    // event at a time (batch.cc Replay/ReplayNoAbort) so association is
    // unchanged, and the differential harness pins the value bit-exactly
    // against the scalar engine.
    charged_ = charged;  // NOLINT(bouquet-charge-order): replay writeback
  }

  void Reset() {
    charged_ = 0.0;
    budget_ = std::numeric_limits<double>::infinity();
  }

 private:
  /// BOUQUET_CHARGED: mutations restricted to one scalar add at a time so
  /// the FP association (and thus the abort point) is identical in every
  /// engine; see common/lint.h and tools/lint/.
  BOUQUET_CHARGED double charged_ = 0.0;
  double budget_ = std::numeric_limits<double>::infinity();
};

/// Everything an operator tree needs at run time. Owned by the caller; must
/// outlive the operators built against it.
struct ExecContext {
  const QuerySpec* query = nullptr;
  const Catalog* catalog = nullptr;
  Database* db = nullptr;  ///< non-const: index caches build lazily
  const CostModel* cost_model = nullptr;
  CostMeter meter;
  Instrumentation instr;
  /// Optional observability sink (null = tracing off, zero overhead).
  /// When set, ExecutePlan/ExecuteSpilled emit an "exec.plan" span under
  /// (trace_parent, trace_id) and every finished operator node becomes an
  /// "exec.node" child span via the instrumentation finish hook.
  obs::Tracer* tracer = nullptr;
  uint64_t trace_parent = 0;
  uint64_t trace_id = 0;
  /// Optional metrics registry (batch engine only): batch-size histograms.
  obs::MetricsRegistry* metrics = nullptr;
  /// Batch engine: rows per column batch. Any value >= 1 is legal (the
  /// differential harness runs degenerate sizes like 1 and 3); cost
  /// accounting is independent of the choice by construction.
  int batch_size = 1024;

  /// Paged-storage accounting (zero when the database is purely in-memory).
  /// Every buffer-pool Access() the meter charged for is counted here:
  /// misses charge seq/random_page_cost, hits charge buffer_hit_page_cost.
  /// The property oracle cross-checks page_reads_charged against the buffer
  /// manager's miss-count delta — only executors call Access, so the two
  /// must agree exactly.
  BOUQUET_CHARGED int64_t page_reads_charged = 0;
  BOUQUET_CHARGED int64_t page_hits_charged = 0;
};

}  // namespace bouquet

#endif  // BOUQUET_EXECUTOR_EXEC_CONTEXT_H_

#include "executor/instrument.h"

namespace bouquet {

const NodeCounters* Instrumentation::Find(const PlanNode* node) const {
  auto it = counters_.find(node);
  return it == counters_.end() ? nullptr : &it->second;
}

}  // namespace bouquet

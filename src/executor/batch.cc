#include "executor/batch.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "executor/binding.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/plan_signature.h"
#include "storage/buffer_manager.h"
#include "storage/paged_table.h"

namespace bouquet {

using batch_internal::EvKind;
using batch_internal::MeterEvent;
using batch_internal::Tape;

void BatchExecState::SetBuffer(storage::BufferManager* bm) {
  buffer_ = bm;
  const auto& p = ctx_->cost_model->params();
  page_hit_cost_ = p.buffer_hit_page_cost;
  page_seq_cost_ = p.seq_page_cost;
  page_rand_cost_ = p.random_page_cost;
}

bool BatchExecState::Replay(const std::vector<MeterEvent>& events,
                            uint16_t root_slot, int64_t* root_emits) {
  if (aborted_) return false;
  CostMeter& meter = ctx_->meter;
  // The dependent chain of one-unit adds is the replay hot path. Keep the
  // accumulator and budget in locals so they live in registers across the
  // whole tape: the counter stores below would otherwise force the compiler
  // to reload the meter through ctx_ on every single add. One add per
  // logical tuple, never a pre-summed bulk charge — double addition is
  // order-sensitive and the scalar engine adds one unit at a time.
  double charged = meter.charged();
  const double budget = meter.budget();
  if (budget == std::numeric_limits<double>::infinity()) {
    return ReplayNoAbort(events, root_slot, root_emits, charged);
  }
  // Single fused loop body: every charge kind shares the per-unit add loop
  // and differs only in which counter absorbs the completed units. The
  // kFinish test is almost never taken; the counter branches follow the
  // tape's short repeating kind pattern, so they predict well.
  NodeCounters* const* ncs = nc_.data();
  const PlanNode* const* nds = nodes_.data();
  const MeterEvent* e = events.data();
  const MeterEvent* const end = e + events.size();
  for (; e != end; ++e) {
    if (e->kind == EvKind::kFinish) {
      ctx_->instr.FinishNode(nds[e->node]);
      continue;
    }
    if (e->kind == EvKind::kPageSeq || e->kind == EvKind::kPageRand) {
      // Replay-time accounting: the Access() here is the same deterministic
      // replacement-state transition the scalar engine performs at access
      // time, executed in the identical (scalar charge) order — so hit/miss
      // outcomes, and therefore every subsequent add, match bit for bit.
      const bool hit =
          buffer_->Access(storage::PageId{e->file, e->page});
      if (hit) {
        ctx_->page_hits_charged++;
      } else {
        ctx_->page_reads_charged++;
      }
      charged += hit ? page_hit_cost_
                     : (e->kind == EvKind::kPageSeq ? page_seq_cost_
                                                    : page_rand_cost_);
      if (!(charged <= budget)) {
        meter.RestoreCharged(charged);
        aborted_ = true;
        return false;
      }
      continue;
    }
    const double unit = e->unit;
    const uint32_t count = e->count;
    uint32_t done = 0;
    while (done < count) {
      charged += unit;
      if (!(charged <= budget)) break;
      ++done;
    }
    if (e->kind == EvKind::kChargeScan) {
      assert(ncs[e->node] != nullptr && "charge before touch");
      ncs[e->node]->AddScanned(done);
    } else if (e->kind == EvKind::kChargeEmit) {
      assert(ncs[e->node] != nullptr && "charge before touch");
      ncs[e->node]->AddOut(done);
      if (root_emits != nullptr && e->node == root_slot) *root_emits += done;
    }
    if (done < count) {
      meter.RestoreCharged(charged);
      aborted_ = true;
      return false;
    }
  }
  meter.RestoreCharged(charged);
  return true;
}

// With an infinite budget no add can trip the meter (units are finite, and
// even an accumulator that saturates to +inf still satisfies charged <=
// budget), so the per-unit abort checks — whose variable trip counts cost a
// branch mispredict per event — are dead. Counters absorb whole events, and
// the unit values expand into a flat scratch array (branch-light broadcast
// stores, overwrite slack below) consumed by one long dependent-add loop:
// the exact same add sequence the event-by-event path performs, bit for bit.
bool BatchExecState::ReplayNoAbort(const std::vector<MeterEvent>& events,
                                   uint16_t root_slot, int64_t* root_emits,
                                   double charged) {
  NodeCounters* const* ncs = nc_.data();
  const PlanNode* const* nds = nodes_.data();
  size_t total = 0;
  for (const MeterEvent& e : events) {
    if (e.kind != EvKind::kFinish) total += e.count;
  }
  // Grow-only scratch (+8: broadcast stores may overshoot the tail). A
  // plain resize would shrink and re-grow across calls, value-initializing
  // the delta every time.
  if (units_.size() < total + 8) units_.resize(total + 8);
  double* u = units_.data();
  size_t idx = 0;
  for (const MeterEvent& e : events) {
    if (e.kind == EvKind::kFinish) {
      ctx_->instr.FinishNode(nds[e.node]);
      continue;
    }
    if (e.kind == EvKind::kPageSeq || e.kind == EvKind::kPageRand) {
      // Access() runs in event order here too; only the meter adds are
      // deferred to the flat loop below, which walks u[] in the same order.
      const bool hit = buffer_->Access(storage::PageId{e.file, e.page});
      if (hit) {
        ctx_->page_hits_charged++;
      } else {
        ctx_->page_reads_charged++;
      }
      u[idx++] = hit ? page_hit_cost_
                     : (e.kind == EvKind::kPageSeq ? page_seq_cost_
                                                   : page_rand_cost_);
      continue;
    }
    const double unit = e.unit;
    const uint32_t count = e.count;
    // Unconditional 8-wide stores; idx advances by the true count, so any
    // overshoot lands in slack or is overwritten by the next event. Typical
    // RLE runs are short, so the wide block keeps the loop trip count near
    // one and the branch predictable.
    for (uint32_t i = 0; i < count; i += 8) {
      double* w = u + idx + i;
      w[0] = w[1] = w[2] = w[3] = w[4] = w[5] = w[6] = w[7] = unit;
    }
    idx += count;
    if (e.kind == EvKind::kChargeScan) {
      assert(ncs[e.node] != nullptr && "charge before touch");
      ncs[e.node]->AddScanned(count);
    } else if (e.kind == EvKind::kChargeEmit) {
      assert(ncs[e.node] != nullptr && "charge before touch");
      ncs[e.node]->AddOut(count);
      if (root_emits != nullptr && e.node == root_slot) *root_emits += count;
    }
  }
  // One add per logical tuple, in tape order — never reassociated (no
  // fast-math in this build) and never bulk-summed.
  for (size_t k = 0; k < idx; ++k) charged += u[k];
  ctx_->meter.RestoreCharged(charged);
  return true;
}

int BatchOp::FindColumn(int table_idx, int col_idx) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].table_idx == table_idx && schema_[i].col_idx == col_idx) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace {

using exec_internal::BoundEquality;
using exec_internal::BoundFilter;
using exec_internal::EvalFilterValue;
using exec_internal::FilterToRange;

// ---------------------------------------------------------------------------
// Selection-vector kernels. Sequential scans normalize every comparison to
// an unsigned range test at build time (RangePred below), fuse up to four
// predicates into one compare-and-store pass over the whole chunk — no
// loop-carried dependence, so it vectorizes — then extract survivors from
// packed 64-bit words, which costs time proportional to the survivor count
// rather than the chunk. (A compact-as-you-filter cascade is serial through
// the selection-vector write index on every pass; separate per-predicate
// byte-mask passes pay the mask store/reload three times over.)
// ---------------------------------------------------------------------------

/// A comparison normalized to `(uint64_t)(v - lo) < span`: membership in the
/// half-open unsigned window starting at lo. Always-true and always-false
/// predicates are resolved at build time and never reach the kernels.
struct RangePred {
  int pos = 0;        ///< column index in the table
  int64_t lo = 0;     ///< inclusive lower bound
  uint64_t span = 0;  ///< hi - lo + 1 (never wraps: full range is resolved)
};

inline uint8_t InRange(int64_t v, const RangePred& r) {
  return static_cast<uint8_t>(static_cast<uint64_t>(v) -
                                  static_cast<uint64_t>(r.lo) <
                              r.span);
}

/// One fused pass for 1..4 predicates: byte mask of the conjunction.
/// Additional predicates (rare) AND in with PredAndRange passes. Column
/// pointers are hoisted into __restrict locals — the byte store would
/// otherwise be presumed to alias both the pointer array and the column
/// data, forcing reloads and blocking vectorization.
void PredFused(const int64_t* const* cols, const RangePred* r, size_t nr,
               int chunk, uint8_t* __restrict pr) {
  const int64_t* __restrict c0 = cols[0];
  const RangePred r0 = r[0];
  if (nr == 1) {
    for (int i = 0; i < chunk; ++i) pr[i] = InRange(c0[i], r0);
    return;
  }
  const int64_t* __restrict c1 = cols[1];
  const RangePred r1 = r[1];
  if (nr == 2) {
    for (int i = 0; i < chunk; ++i) {
      pr[i] = InRange(c0[i], r0) & InRange(c1[i], r1);
    }
    return;
  }
  const int64_t* __restrict c2 = cols[2];
  const RangePred r2 = r[2];
  if (nr == 3) {
    for (int i = 0; i < chunk; ++i) {
      pr[i] = InRange(c0[i], r0) & InRange(c1[i], r1) & InRange(c2[i], r2);
    }
    return;
  }
  const int64_t* __restrict c3 = cols[3];
  const RangePred r3 = r[3];
  for (int i = 0; i < chunk; ++i) {
    pr[i] = InRange(c0[i], r0) & InRange(c1[i], r1) & InRange(c2[i], r2) &
            InRange(c3[i], r3);
  }
}

void PredAndRange(const int64_t* __restrict col, const RangePred& r, int chunk,
                  uint8_t* __restrict pr) {
  for (int i = 0; i < chunk; ++i) pr[i] &= InRange(col[i], r);
}

/// Extracts survivor positions from a 0/1 byte mask. Each 64-byte group is
/// packed into one word (the multiply gathers byte j into bit 56+j with no
/// cross-term carries, since all bytes are 0 or 1), then set bits are walked
/// with countr_zero. `pr` must be zero-padded to a multiple of 64 bytes.
int SelFromPred(const uint8_t* pr, int chunk, int32_t* sel) {
  int m = 0;
  for (int g = 0; g < chunk; g += 64) {
    uint64_t w = 0;
    for (int j = 0; j < 64; j += 8) {
      uint64_t b;
      std::memcpy(&b, pr + g + j, 8);
      w |= ((b * 0x0102040810204080ull) >> 56) << j;
    }
    while (w != 0) {
      sel[m++] = g + std::countr_zero(w);
      w &= w - 1;
    }
  }
  return m;
}

// Indirect variants for index scans, where the chunk is a slice of the index
// match list rather than a contiguous row range.
template <typename Pred>
inline int SelInitIdxT(const int64_t* col, const uint32_t* idx, int chunk,
                       int32_t* sel, Pred pred) {
  int m = 0;
  for (int i = 0; i < chunk; ++i) {
    sel[m] = i;
    m += pred(col[idx[i]]) ? 1 : 0;
  }
  return m;
}

template <typename Pred>
inline int SelRefineIdxT(const int64_t* col, const uint32_t* idx, int32_t* sel,
                         int m, Pred pred) {
  int m2 = 0;
  for (int k = 0; k < m; ++k) {
    const int32_t i = sel[k];
    sel[m2] = i;
    m2 += pred(col[idx[i]]) ? 1 : 0;
  }
  return m2;
}

int SelInitIdx(const int64_t* col, const uint32_t* idx, int chunk,
               const BoundFilter& f, int32_t* sel) {
  const int64_t c = f.constant;
  switch (f.op) {
    case CompareOp::kLess:
      return SelInitIdxT(col, idx, chunk, sel, [c](int64_t v) { return v < c; });
    case CompareOp::kLessEqual:
      return SelInitIdxT(col, idx, chunk, sel,
                         [c](int64_t v) { return v <= c; });
    case CompareOp::kGreater:
      return SelInitIdxT(col, idx, chunk, sel, [c](int64_t v) { return v > c; });
    case CompareOp::kGreaterEqual:
      return SelInitIdxT(col, idx, chunk, sel,
                         [c](int64_t v) { return v >= c; });
    case CompareOp::kEqual:
      return SelInitIdxT(col, idx, chunk, sel,
                         [c](int64_t v) { return v == c; });
  }
  return 0;
}

int SelRefineIdx(const int64_t* col, const uint32_t* idx, const BoundFilter& f,
                 int32_t* sel, int m) {
  const int64_t c = f.constant;
  switch (f.op) {
    case CompareOp::kLess:
      return SelRefineIdxT(col, idx, sel, m, [c](int64_t v) { return v < c; });
    case CompareOp::kLessEqual:
      return SelRefineIdxT(col, idx, sel, m, [c](int64_t v) { return v <= c; });
    case CompareOp::kGreater:
      return SelRefineIdxT(col, idx, sel, m, [c](int64_t v) { return v > c; });
    case CompareOp::kGreaterEqual:
      return SelRefineIdxT(col, idx, sel, m, [c](int64_t v) { return v >= c; });
    case CompareOp::kEqual:
      return SelRefineIdxT(col, idx, sel, m, [c](int64_t v) { return v == c; });
  }
  return 0;
}

inline uint64_t HashKey(int64_t k) {
  uint64_t x = static_cast<uint64_t>(k) * 0x9E3779B97F4A7C15ull;
  x ^= x >> 32;
  return x;
}

// ---------------------------------------------------------------------------
// Sequential scan
// ---------------------------------------------------------------------------

class BatchSeqScanOp : public BatchOp {
 public:
  BatchSeqScanOp(const PlanNode* node, BatchExecState* st,
                 std::vector<BoundFilter> filters)
      : BatchOp(node, st) {
    ExecContext* ctx = st->ctx();
    const std::string& tname = ctx->query->tables[node->table_idx];
    table_ = &ctx->db->table(tname);
    paged_ = ctx->db->paged(tname);
    const TableInfo& info = ctx->catalog->GetTable(tname);
    const auto& p = ctx->cost_model->params();
    // The charge prices every bound filter, whether or not the normalized
    // form below still needs to evaluate it — same formula as the scalar
    // scan, which likewise charges independently of short-circuiting.
    if (paged_ != nullptr) {
      // Paged storage: I/O rides the tape as kPageSeq events priced at
      // replay; the per-row charge is the pure CPU part (same expression
      // grouping as the scalar SeqScanOp).
      nrows_ = paged_->num_rows();
      per_row_charge_ =
          p.cpu_tuple_cost + filters.size() * p.cpu_operator_cost;
      st->SetBuffer(paged_->buffer());
      scratch_.resize(static_cast<size_t>(table_->num_columns()) *
                      static_cast<size_t>(paged_->rows_per_page()));
    } else {
      nrows_ = table_->num_rows();
      per_row_charge_ =
          p.seq_page_cost * info.stats.row_width_bytes / p.page_size_bytes +
          p.cpu_tuple_cost + filters.size() * p.cpu_operator_cost;
    }
    // Conjunctive predicates on the same column intersect into one range
    // (a BETWEEN pair costs the kernels a single window test). The scalar
    // engine evaluates the original conjunction term by term; the surviving
    // set is identical either way.
    struct ColRange {
      int pos;
      int64_t lo;
      int64_t hi;
    };
    std::vector<ColRange> merged;
    for (const BoundFilter& f : filters) {
      int64_t lo = INT64_MIN;
      int64_t hi = INT64_MAX;
      switch (f.op) {
        case CompareOp::kLess:
          // `x < INT64_MIN` is unsatisfiable; guard the decrement overflow.
          if (f.constant == INT64_MIN) never_match_ = true;
          else hi = f.constant - 1;
          break;
        case CompareOp::kLessEqual:
          hi = f.constant;
          break;
        case CompareOp::kGreater:
          // `x > INT64_MAX` is unsatisfiable; guard the increment overflow.
          if (f.constant == INT64_MAX) never_match_ = true;
          else lo = f.constant + 1;
          break;
        case CompareOp::kGreaterEqual:
          lo = f.constant;
          break;
        case CompareOp::kEqual:
          lo = hi = f.constant;
          break;
      }
      if (never_match_) break;
      ColRange* cr = nullptr;
      for (ColRange& c : merged) {
        if (c.pos == f.pos) {
          cr = &c;
          break;
        }
      }
      if (cr != nullptr) {
        cr->lo = std::max(cr->lo, lo);
        cr->hi = std::min(cr->hi, hi);
      } else if (lo != INT64_MIN || hi != INT64_MAX) {  // skip always-true
        merged.push_back({f.pos, lo, hi});
      }
    }
    for (const ColRange& c : merged) {
      if (c.lo > c.hi) {  // empty intersection
        never_match_ = true;
        break;
      }
      ranges_.push_back(
          {c.pos, c.lo,
           static_cast<uint64_t>(c.hi) - static_cast<uint64_t>(c.lo) + 1});
    }
    for (int c = 0; c < table_->num_columns(); ++c) {
      schema_.push_back({node->table_idx, c});
    }
  }

  ExecResult NextBatch(ColumnBatch* out) override {
    if (st_->aborted() || st_->ctx()->meter.exhausted()) {
      return ExecResult::kAborted;
    }
    if (!touched_) {
      st_->TouchSlot(slot_);
      touched_ = true;
    }
    const auto& p = st_->ctx()->cost_model->params();
    const int bsz = std::max(1, st_->ctx()->batch_size);
    const int ncols = table_->num_columns();
    const int64_t nrows = nrows_;
    while (out->n < bsz) {
      if (next_row_ >= nrows) {
        guard_ = storage::PageGuard();
        out->tape.Finish(slot_);
        return ExecResult::kDone;
      }
      const int64_t base = next_row_;
      int chunk = static_cast<int>(
          std::min<int64_t>(bsz - out->n, nrows - base));
      int64_t col_base = base;
      if (paged_ != nullptr) {
        // Clip the chunk to the page holding `base` so each chunk maps to
        // exactly one kPageSeq event, positioned before the chunk's
        // per-row charges — the scalar page-crossing order.
        const int rpp = paged_->rows_per_page();
        const int64_t in_page = base % rpp;
        chunk = static_cast<int>(
            std::min<int64_t>(chunk, rpp - in_page));
        const uint32_t pg = paged_->PageOfRow(base);
        if (pg != emitted_page_) {
          out->tape.PageSeq(slot_, paged_->file_id(), pg);
          emitted_page_ = pg;
        }
        if (pg != decoded_page_) {
          guard_ = paged_->PinRowPage(base);
          paged_->DecodePage(guard_, scratch_.data());
          decoded_page_ = pg;
        }
        col_base = in_page;
      }
      // In paged mode the decoded page's columns are contiguous in scratch
      // (column-major, rows_per_page apart), so the same kernels run over
      // either source through one pointer per column.
      const auto col_ptr = [&](int c) -> const int64_t* {
        return paged_ != nullptr
                   ? scratch_.data() +
                         static_cast<size_t>(c) *
                             static_cast<size_t>(paged_->rows_per_page()) +
                         col_base
                   : table_->column(c).data() + base;
      };
      next_row_ += chunk;
      sel_.resize(static_cast<size_t>(chunk));
      int m;
      if (never_match_) {
        m = 0;
      } else if (ranges_.empty()) {
        m = chunk;
        for (int i = 0; i < chunk; ++i) sel_[i] = i;
      } else {
        // Accounting never observes predicate evaluation order: the tape
        // depends only on the surviving set, which equals the scalar
        // engine's short-circuit conjunction.
        const int padded = (chunk + 63) & ~63;
        pred_.resize(static_cast<size_t>(padded));
        std::fill(pred_.begin() + chunk, pred_.end(), uint8_t{0});
        const int64_t* cols[4] = {nullptr, nullptr, nullptr, nullptr};
        const size_t head = std::min<size_t>(ranges_.size(), 4);
        for (size_t fi = 0; fi < head; ++fi) {
          cols[fi] = col_ptr(ranges_[fi].pos);
        }
        PredFused(cols, ranges_.data(), head, chunk, pred_.data());
        for (size_t fi = 4; fi < ranges_.size(); ++fi) {
          PredAndRange(col_ptr(ranges_[fi].pos), ranges_[fi], chunk,
                       pred_.data());
        }
        m = SelFromPred(pred_.data(), chunk, sel_.data());
      }
      // Events: one RLE run of per-row scan charges up to (and including)
      // each surviving row, an emit charge per survivor, and a trailing run
      // for rows scanned after the last survivor.
      int32_t prev = -1;
      for (int k = 0; k < m; ++k) {
        const int32_t i = sel_[k];
        out->tape.ChargeScan(slot_, per_row_charge_,
                             static_cast<uint32_t>(i - prev));
        out->tape.ChargeEmit(slot_, p.cpu_tuple_cost);
        out->MarkRow();
        prev = i;
      }
      if (chunk - 1 > prev) {
        out->tape.ChargeScan(slot_, per_row_charge_,
                             static_cast<uint32_t>(chunk - 1 - prev));
      }
      for (int c = 0; c < ncols; ++c) {
        const int64_t* src = col_ptr(c);
        auto& dst = out->cols[c];
        const size_t old = dst.size();
        dst.resize(old + static_cast<size_t>(m));
        int64_t* d = dst.data() + old;
        for (int k = 0; k < m; ++k) d[k] = src[sel_[k]];
      }
    }
    return ExecResult::kRow;
  }

 private:
  const DataTable* table_;
  const storage::PagedTable* paged_;
  std::vector<RangePred> ranges_;
  bool never_match_ = false;
  double per_row_charge_;
  int64_t nrows_;
  int64_t next_row_ = 0;
  uint32_t emitted_page_ = 0;  // page 0 is meta — never a data page
  uint32_t decoded_page_ = 0;
  storage::PageGuard guard_;
  std::vector<int64_t> scratch_;  // decoded page, column-major
  std::vector<int32_t> sel_;
  std::vector<uint8_t> pred_;
};

// ---------------------------------------------------------------------------
// Index scan
// ---------------------------------------------------------------------------

class BatchIndexScanOp : public BatchOp {
 public:
  BatchIndexScanOp(const PlanNode* node, BatchExecState* st,
                   std::vector<BoundFilter> filters, int64_t qual_lo,
                   int64_t qual_hi, int qual_col)
      : BatchOp(node, st), filters_(std::move(filters)) {
    ExecContext* ctx = st->ctx();
    const std::string& tname = ctx->query->tables[node->table_idx];
    table_ = &ctx->db->table(tname);
    paged_ = ctx->db->paged(tname);
    nrows_ = paged_ != nullptr ? paged_->num_rows() : table_->num_rows();
    matches_ = ctx->db->sorted_index(tname, qual_col).Range(qual_lo, qual_hi);
    const auto& p = ctx->cost_model->params();
    per_match_ = p.random_page_cost + p.cpu_index_tuple_cost +
                 p.cpu_tuple_cost +
                 (filters_.size() > 0 ? filters_.size() - 1 : 0) *
                     p.cpu_operator_cost;
    // Paged split (same expression grouping as the scalar IndexScanOp): the
    // random page part becomes a kPageRand event per match, priced at
    // replay; the CPU part stays a per-match tape charge.
    per_match_cpu_ =
        p.cpu_index_tuple_cost + p.cpu_tuple_cost +
        (filters_.size() > 0 ? filters_.size() - 1 : 0) * p.cpu_operator_cost;
    if (paged_ != nullptr) {
      st->SetBuffer(paged_->buffer());
      row_buf_.resize(table_->num_columns());
    }
    for (int c = 0; c < table_->num_columns(); ++c) {
      schema_.push_back({node->table_idx, c});
    }
  }

  ExecResult NextBatch(ColumnBatch* out) override {
    if (st_->aborted() || st_->ctx()->meter.exhausted()) {
      return ExecResult::kAborted;
    }
    if (!touched_) {
      st_->TouchSlot(slot_);
      touched_ = true;
    }
    const auto& p = st_->ctx()->cost_model->params();
    if (!descent_charged_) {
      descent_charged_ = true;
      out->tape.Charge(slot_,
                       p.random_page_cost +
                           4.0 * p.cpu_operator_cost *
                               std::log2(nrows_ + 2.0));
    }
    const int bsz = std::max(1, st_->ctx()->batch_size);
    const int ncols = table_->num_columns();
    if (paged_ != nullptr) return NextBatchPaged(out, bsz, ncols);
    while (out->n < bsz) {
      if (next_ >= matches_.size()) {
        out->tape.Finish(slot_);
        return ExecResult::kDone;
      }
      const size_t base = next_;
      const int chunk = static_cast<int>(std::min<size_t>(
          static_cast<size_t>(bsz - out->n), matches_.size() - base));
      next_ += static_cast<size_t>(chunk);
      const uint32_t* idx = matches_.data() + base;
      sel_.resize(static_cast<size_t>(chunk));
      int m;
      if (filters_.empty()) {
        m = chunk;
        for (int i = 0; i < chunk; ++i) sel_[i] = i;
      } else {
        m = SelInitIdx(table_->column(filters_[0].pos).data(), idx, chunk,
                       filters_[0], sel_.data());
        for (size_t fi = 1; fi < filters_.size(); ++fi) {
          m = SelRefineIdx(table_->column(filters_[fi].pos).data(), idx,
                           filters_[fi], sel_.data(), m);
        }
      }
      int32_t prev = -1;
      for (int k = 0; k < m; ++k) {
        const int32_t i = sel_[k];
        out->tape.ChargeScan(slot_, per_match_,
                             static_cast<uint32_t>(i - prev));
        out->tape.ChargeEmit(slot_, p.cpu_tuple_cost);
        out->MarkRow();
        prev = i;
      }
      if (chunk - 1 > prev) {
        out->tape.ChargeScan(slot_, per_match_,
                             static_cast<uint32_t>(chunk - 1 - prev));
      }
      for (int c = 0; c < ncols; ++c) {
        const int64_t* src = table_->column(c).data();
        auto& dst = out->cols[c];
        const size_t old = dst.size();
        dst.resize(old + static_cast<size_t>(m));
        int64_t* d = dst.data() + old;
        for (int k = 0; k < m; ++k) d[k] = src[idx[sel_[k]]];
      }
    }
    return ExecResult::kRow;
  }

 private:
  // Paged storage walks matches one at a time: every match interleaves a
  // kPageRand event with its CPU charge, so the RLE runs of the in-memory
  // path degenerate to length 1 anyway and the row's values have to come
  // out of a pinned page. Tape order per match — page event, ChargeScan,
  // then ChargeEmit for survivors — mirrors the scalar charge order.
  ExecResult NextBatchPaged(ColumnBatch* out, int bsz, int ncols) {
    const auto& p = st_->ctx()->cost_model->params();
    while (out->n < bsz) {
      if (next_ >= matches_.size()) {
        guard_ = storage::PageGuard();
        out->tape.Finish(slot_);
        return ExecResult::kDone;
      }
      const uint32_t r = matches_[next_++];
      const storage::PageId pid = paged_->PageIdOfRow(r);
      out->tape.PageRand(slot_, pid.file, pid.page);
      out->tape.ChargeScan(slot_, per_match_cpu_, 1);
      if (!guard_.valid() || cur_page_ != pid.page) {
        guard_ = paged_->buffer()->Pin(pid);
        cur_page_ = pid.page;
      }
      const int slot_in_page = paged_->SlotOfRow(r);
      for (int c = 0; c < ncols; ++c) {
        row_buf_[c] = paged_->ValueIn(guard_, slot_in_page, c);
      }
      bool pass = true;
      for (const auto& f : filters_) {
        if (!EvalFilterValue(row_buf_[f.pos], f)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      out->tape.ChargeEmit(slot_, p.cpu_tuple_cost);
      for (int c = 0; c < ncols; ++c) out->cols[c].push_back(row_buf_[c]);
      out->MarkRow();
    }
    return ExecResult::kRow;
  }

  const DataTable* table_;
  const storage::PagedTable* paged_;
  int64_t nrows_;
  std::vector<BoundFilter> filters_;
  std::vector<uint32_t> matches_;
  double per_match_;
  double per_match_cpu_;
  size_t next_ = 0;
  bool descent_charged_ = false;
  uint32_t cur_page_ = 0;  // page 0 is meta — never a data page
  storage::PageGuard guard_;
  Row row_buf_;
  std::vector<int32_t> sel_;
};

// ---------------------------------------------------------------------------
// Hash join (right child builds)
// ---------------------------------------------------------------------------

class BatchHashJoinOp : public BatchOp {
 public:
  BatchHashJoinOp(const PlanNode* node, BatchExecState* st,
                  std::unique_ptr<BatchOp> left, std::unique_ptr<BatchOp> right,
                  int left_key_pos, int right_key_pos,
                  std::vector<BoundEquality> residual)
      : BatchOp(node, st),
        left_(std::move(left)),
        right_(std::move(right)),
        left_key_pos_(left_key_pos),
        right_key_pos_(right_key_pos),
        residual_(std::move(residual)) {
    schema_ = left_->schema();
    schema_.insert(schema_.end(), right_->schema().begin(),
                   right_->schema().end());
    lbatch_.Configure(left_->schema().size());
    rbatch_.Configure(right_->schema().size());
  }

  ExecResult NextBatch(ColumnBatch* out) override {
    if (st_->aborted() || st_->ctx()->meter.exhausted()) {
      return ExecResult::kAborted;
    }
    if (!touched_) {
      st_->TouchSlot(slot_);
      touched_ = true;
    }
    if (!built_) {
      if (Build() == ExecResult::kAborted) return ExecResult::kAborted;
      built_ = true;
    }
    // Probe exactly one left batch per call: the consumer must replay our
    // tape before we pull again (replay-granularity invariant, batch.h).
    lbatch_.Reset();
    const ExecResult st = left_->NextBatch(&lbatch_);
    if (st == ExecResult::kAborted) return ExecResult::kAborted;
    ProbeBatch(out);
    if (st == ExecResult::kDone) {
      out->tape.Finish(slot_);
      return ExecResult::kDone;
    }
    return ExecResult::kRow;
  }

 private:
  // Drains the build side, replaying [right row events + build charge] per
  // consumed batch so a budget abort surfaces at the same tuple a scalar
  // build would stop at.
  ExecResult Build() {
    const auto& p = st_->ctx()->cost_model->params();
    const double hash_op = p.hash_op_factor * p.cpu_operator_cost;
    const size_t rcols = right_->schema().size();
    bcols_.assign(rcols, {});
    Tape phase;
    int64_t build_rows = 0;
    for (;;) {
      rbatch_.Reset();
      const ExecResult st = right_->NextBatch(&rbatch_);
      if (st == ExecResult::kAborted) return ExecResult::kAborted;
      phase.Clear();
      for (int64_t j = 0; j < rbatch_.n; ++j) {
        phase.Append(rbatch_.tape, rbatch_.SegBegin(j), rbatch_.SegEnd(j));
        phase.Charge(slot_, hash_op + p.cpu_tuple_cost);
      }
      phase.Append(rbatch_.tape, rbatch_.TailBegin(), rbatch_.tape.size());
      if (!st_->Replay(phase.events())) return ExecResult::kAborted;
      for (size_t c = 0; c < rcols; ++c) {
        bcols_[c].insert(bcols_[c].end(), rbatch_.cols[c].begin(),
                         rbatch_.cols[c].end());
      }
      build_rows += rbatch_.n;
      if (st == ExecResult::kDone) break;
    }
    // Multi-batch spill charge — expressions identical to the scalar engine.
    const size_t row_slots = build_rows > 0 ? rcols : size_t{1};
    const double build_width = 8.0 * static_cast<double>(row_slots);
    if (static_cast<double>(build_rows) * build_width > p.work_mem_bytes) {
      const double build_pages =
          static_cast<double>(build_rows) * build_width / p.page_size_bytes;
      Tape t;
      t.Charge(slot_,
               2.0 * p.seq_page_cost * std::max(1.0, build_pages));
      if (!st_->Replay(t.events())) return ExecResult::kAborted;
      probe_spill_charge_ =
          2.0 * p.seq_page_cost * build_width / p.page_size_bytes;
    }
    // Chain table. Prepending in reverse row order makes each chain yield
    // ascending row indices, i.e. insertion order — the same per-key match
    // order the scalar engine's bucket vectors produce.
    size_t nb = 16;
    while (nb < static_cast<size_t>(build_rows) * 2) nb <<= 1;
    mask_ = nb - 1;
    head_.assign(nb, -1);
    next_.resize(static_cast<size_t>(build_rows));
    const int64_t* keys = bcols_[right_key_pos_].data();
    for (int64_t i = build_rows - 1; i >= 0; --i) {
      const size_t b = HashKey(keys[i]) & mask_;
      next_[i] = head_[b];
      head_[b] = static_cast<int32_t>(i);
    }
    return ExecResult::kDone;
  }

  // Two-pass probe: pass 1 walks the hash chains emitting tape events and
  // collecting matched (probe row, build row) pairs; pass 2 materializes the
  // output as one tight gather loop per column. The tape sees the identical
  // event sequence either way — only the data plane is restructured.
  void ProbeBatch(ColumnBatch* out) {
    const auto& p = st_->ctx()->cost_model->params();
    const double hash_op = p.hash_op_factor * p.cpu_operator_cost;
    const double probe_charge = hash_op + probe_spill_charge_;
    const int lw = static_cast<int>(left_->schema().size());
    const size_t rw = right_->schema().size();
    const int64_t* lkeys =
        lbatch_.n > 0 ? lbatch_.cols[left_key_pos_].data() : nullptr;
    const int64_t* bkeys = next_.empty() ? nullptr : bcols_[right_key_pos_].data();
    match_l_.clear();
    match_b_.clear();
    for (int64_t j = 0; j < lbatch_.n; ++j) {
      out->tape.Append(lbatch_.tape, lbatch_.SegBegin(j), lbatch_.SegEnd(j));
      out->tape.Charge(slot_, probe_charge);
      const int64_t key = lkeys[j];
      for (int32_t i = head_[HashKey(key) & mask_]; i >= 0; i = next_[i]) {
        if (bkeys[i] != key) continue;
        bool ok = true;
        for (const auto& eq : residual_) {
          if (Combined(j, i, eq.left_pos, lw) !=
              Combined(j, i, eq.right_pos, lw)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        out->tape.ChargeEmit(slot_, p.cpu_tuple_cost);
        match_l_.push_back(static_cast<int32_t>(j));
        match_b_.push_back(i);
        out->MarkRow();
      }
    }
    out->tape.Append(lbatch_.tape, lbatch_.TailBegin(), lbatch_.tape.size());
    const size_t nm = match_l_.size();
    for (int c = 0; c < lw; ++c) {
      const int64_t* src = lbatch_.cols[c].data();
      auto& dst = out->cols[c];
      const size_t old = dst.size();
      dst.resize(old + nm);
      int64_t* d = dst.data() + old;
      for (size_t k = 0; k < nm; ++k) d[k] = src[match_l_[k]];
    }
    for (size_t c = 0; c < rw; ++c) {
      const int64_t* src = bcols_[c].data();
      auto& dst = out->cols[lw + static_cast<int>(c)];
      const size_t old = dst.size();
      dst.resize(old + nm);
      int64_t* d = dst.data() + old;
      for (size_t k = 0; k < nm; ++k) d[k] = src[match_b_[k]];
    }
  }

  int64_t Combined(int64_t j, int32_t i, int pos, int lw) const {
    return pos < lw ? lbatch_.cols[pos][j] : bcols_[pos - lw][i];
  }

  std::unique_ptr<BatchOp> left_;
  std::unique_ptr<BatchOp> right_;
  int left_key_pos_;
  int right_key_pos_;  // within the right child's own row
  std::vector<BoundEquality> residual_;

  bool built_ = false;
  double probe_spill_charge_ = 0.0;
  std::vector<std::vector<int64_t>> bcols_;  // columnar build store
  std::vector<int32_t> head_;
  std::vector<int32_t> next_;
  size_t mask_ = 0;
  ColumnBatch lbatch_, rbatch_;
  std::vector<int32_t> match_l_, match_b_;  // probe-pass match pairs
};

// ---------------------------------------------------------------------------
// Sort-merge join
// ---------------------------------------------------------------------------

class BatchMergeJoinOp : public BatchOp {
 public:
  BatchMergeJoinOp(const PlanNode* node, BatchExecState* st,
                   std::unique_ptr<BatchOp> left,
                   std::unique_ptr<BatchOp> right, int left_key_pos,
                   int right_key_pos, std::vector<BoundEquality> residual)
      : BatchOp(node, st),
        left_(std::move(left)),
        right_(std::move(right)),
        left_key_pos_(left_key_pos),
        right_key_pos_(right_key_pos),
        residual_(std::move(residual)) {
    schema_ = left_->schema();
    schema_.insert(schema_.end(), right_->schema().begin(),
                   right_->schema().end());
  }

  ExecResult NextBatch(ColumnBatch* out) override {
    if (st_->aborted() || st_->ctx()->meter.exhausted()) {
      return ExecResult::kAborted;
    }
    if (!touched_) {
      st_->TouchSlot(slot_);
      touched_ = true;
    }
    if (!sorted_) {
      if (DrainAndSort() == ExecResult::kAborted) return ExecResult::kAborted;
      sorted_ = true;
    }
    return EmitMerge(out);
  }

 private:
  ExecResult DrainSide(BatchOp* side, std::vector<std::vector<int64_t>>* cols,
                       int64_t* nrows) {
    cols->assign(side->schema().size(), {});
    ColumnBatch in;
    in.Configure(side->schema().size());
    for (;;) {
      in.Reset();
      const ExecResult st = side->NextBatch(&in);
      if (st == ExecResult::kAborted) return ExecResult::kAborted;
      // The merge join adds no charge of its own during the drain; the
      // child's events replay verbatim.
      if (!st_->Replay(in.tape.events())) return ExecResult::kAborted;
      for (size_t c = 0; c < cols->size(); ++c) {
        (*cols)[c].insert((*cols)[c].end(), in.cols[c].begin(),
                          in.cols[c].end());
      }
      *nrows += in.n;
      if (st == ExecResult::kDone) return ExecResult::kDone;
    }
  }

  void SortSide(std::vector<std::vector<int64_t>>* cols, int key_pos,
                int64_t n) {
    perm_.resize(static_cast<size_t>(n));
    for (int64_t k = 0; k < n; ++k) perm_[k] = k;
    const int64_t* key = (*cols)[key_pos].data();
    // stable_sort with the scalar comparator => identical permutation to
    // stable-sorting the rows themselves.
    std::stable_sort(perm_.begin(), perm_.end(),
                     [key](int64_t a, int64_t b) { return key[a] < key[b]; });
    std::vector<int64_t> tmp(static_cast<size_t>(n));
    for (auto& col : *cols) {
      for (int64_t k = 0; k < n; ++k) tmp[k] = col[perm_[k]];
      col.swap(tmp);
    }
  }

  ExecResult DrainAndSort() {
    if (DrainSide(left_.get(), &lcols_, &nl_) == ExecResult::kAborted) {
      return ExecResult::kAborted;
    }
    if (DrainSide(right_.get(), &rcols_, &nr_) == ExecResult::kAborted) {
      return ExecResult::kAborted;
    }
    const double lw =
        8.0 * static_cast<double>(nl_ == 0 ? size_t{1} : left_->schema().size());
    const double rw = 8.0 * static_cast<double>(
                                nr_ == 0 ? size_t{1} : right_->schema().size());
    double charge = 0.0;
    const CostModel* cm = st_->ctx()->cost_model;
    if (!node_->left_presorted) {
      charge += cm->SortCost(static_cast<double>(nl_), lw);
      SortSide(&lcols_, left_key_pos_, nl_);
    }
    if (!node_->right_presorted) {
      charge += cm->SortCost(static_cast<double>(nr_), rw);
      SortSide(&rcols_, right_key_pos_, nr_);
    }
    // The scalar engine charges the (possibly zero) sort total in one call.
    Tape t;
    t.Charge(slot_, charge);
    return st_->Replay(t.events()) ? ExecResult::kDone : ExecResult::kAborted;
  }

  int64_t Combined(int64_t li, int64_t rj, int pos) const {
    const int lw = static_cast<int>(left_->schema().size());
    return pos < lw ? lcols_[pos][li] : rcols_[pos - lw][rj];
  }

  ExecResult EmitMerge(ColumnBatch* out) {
    const auto& p = st_->ctx()->cost_model->params();
    const int bsz = std::max(1, st_->ctx()->batch_size);
    const int lw = static_cast<int>(left_->schema().size());
    const int rw = static_cast<int>(right_->schema().size());
    const int64_t* lkey = nl_ > 0 ? lcols_[left_key_pos_].data() : nullptr;
    const int64_t* rkey = nr_ > 0 ? rcols_[right_key_pos_].data() : nullptr;
    // Two-pass (see BatchHashJoinOp::ProbeBatch): the emit loop records
    // matched row pairs; columns materialize in one gather per column right
    // before handing the batch back.
    pairs_l_.clear();
    pairs_r_.clear();
    const auto flush = [&] {
      const size_t nm = pairs_l_.size();
      for (int c = 0; c < lw; ++c) {
        const int64_t* src = lcols_[c].data();
        auto& dst = out->cols[c];
        const size_t old = dst.size();
        dst.resize(old + nm);
        int64_t* d = dst.data() + old;
        for (size_t k = 0; k < nm; ++k) d[k] = src[pairs_l_[k]];
      }
      for (int c = 0; c < rw; ++c) {
        const int64_t* src = rcols_[c].data();
        auto& dst = out->cols[lw + c];
        const size_t old = dst.size();
        dst.resize(old + nm);
        int64_t* d = dst.data() + old;
        for (size_t k = 0; k < nm; ++k) d[k] = src[pairs_r_[k]];
      }
    };
    for (;;) {
      // Emit the cross product of the current equal-key groups.
      if (gi_ < gl_end_) {
        while (gj_ < gr_end_) {
          if (out->n >= bsz) {
            flush();
            return ExecResult::kRow;
          }
          const int64_t rj = gj_++;
          bool ok = true;
          for (const auto& eq : residual_) {
            if (Combined(gi_, rj, eq.left_pos) !=
                Combined(gi_, rj, eq.right_pos)) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          out->tape.ChargeEmit(slot_, p.cpu_tuple_cost);
          pairs_l_.push_back(gi_);
          pairs_r_.push_back(rj);
          out->MarkRow();
        }
        ++gi_;
        gj_ = gr_start_;
        continue;
      }
      // Find the next pair of equal-key groups (scalar state machine).
      li_ = gl_end_;
      ri_ = gr_end_;
      if (li_ >= nl_ || ri_ >= nr_) {
        out->tape.Finish(slot_);
        flush();
        return ExecResult::kDone;
      }
      out->tape.Charge(slot_, p.cpu_operator_cost);
      const int64_t lk = lkey[li_];
      const int64_t rk = rkey[ri_];
      if (lk < rk) {
        gl_end_ = li_ + 1;
        gi_ = gl_end_;  // empty group; just advance left
        gr_end_ = ri_;
        gj_ = gr_start_ = ri_;
        continue;
      }
      if (lk > rk) {
        gr_end_ = ri_ + 1;
        gl_end_ = li_;
        gi_ = li_;
        gj_ = gr_start_ = gr_end_;  // empty
        continue;
      }
      int64_t le = li_;
      while (le < nl_ && lkey[le] == lk) ++le;
      int64_t re = ri_;
      while (re < nr_ && rkey[re] == rk) ++re;
      gi_ = li_;
      gl_end_ = le;
      gr_start_ = ri_;
      gj_ = ri_;
      gr_end_ = re;
    }
  }

  std::unique_ptr<BatchOp> left_;
  std::unique_ptr<BatchOp> right_;
  int left_key_pos_;
  int right_key_pos_;
  std::vector<BoundEquality> residual_;

  bool sorted_ = false;
  std::vector<std::vector<int64_t>> lcols_, rcols_;
  int64_t nl_ = 0, nr_ = 0;
  std::vector<int64_t> perm_;
  std::vector<int64_t> pairs_l_, pairs_r_;  // emit-pass match pairs
  int64_t li_ = 0, ri_ = 0;
  int64_t gi_ = 0, gl_end_ = 0;
  int64_t gj_ = 0, gr_start_ = 0, gr_end_ = 0;
};

// ---------------------------------------------------------------------------
// Index nested-loop join
// ---------------------------------------------------------------------------

class BatchIndexNLJoinOp : public BatchOp {
 public:
  BatchIndexNLJoinOp(const PlanNode* node, BatchExecState* st,
                     std::unique_ptr<BatchOp> left, int inner_table_idx,
                     int inner_key_col, int outer_key_pos,
                     std::vector<BoundFilter> inner_filters,
                     std::vector<BoundEquality> residual)
      : BatchOp(node, st),
        left_(std::move(left)),
        inner_key_col_(inner_key_col),
        outer_key_pos_(outer_key_pos),
        inner_filters_(std::move(inner_filters)),
        residual_(std::move(residual)) {
    ExecContext* ctx = st->ctx();
    const std::string& tname = ctx->query->tables[inner_table_idx];
    inner_ = &ctx->db->table(tname);
    paged_ = ctx->db->paged(tname);
    inner_rows_ =
        paged_ != nullptr ? paged_->num_rows() : inner_->num_rows();
    index_ = &ctx->db->hash_index(tname, inner_key_col_);
    schema_ = left_->schema();
    for (int c = 0; c < inner_->num_columns(); ++c) {
      schema_.push_back({inner_table_idx, c});
      inner_cols_.push_back(inner_->column(c).data());
    }
    if (paged_ != nullptr) {
      st->SetBuffer(paged_->buffer());
      inner_buf_.resize(inner_->num_columns());
    }
    lbatch_.Configure(left_->schema().size());
  }

  ExecResult NextBatch(ColumnBatch* out) override {
    if (st_->aborted() || st_->ctx()->meter.exhausted()) {
      return ExecResult::kAborted;
    }
    if (!touched_) {
      st_->TouchSlot(slot_);
      touched_ = true;
    }
    const auto& p = st_->ctx()->cost_model->params();
    const double descent =
        p.random_page_cost +
        4.0 * p.cpu_operator_cost * std::log2(inner_rows_ + 2.0);
    // Same split as the scalar IndexNLJoinOp (expression grouping mirrored):
    // paged storage turns the random page part into a kPageRand event.
    const double per_match =
        p.random_page_cost + p.cpu_index_tuple_cost +
        (inner_filters_.size() + residual_.size()) * p.cpu_operator_cost;
    const double per_match_cpu =
        p.cpu_index_tuple_cost +
        (inner_filters_.size() + residual_.size()) * p.cpu_operator_cost;
    const int lw = static_cast<int>(left_->schema().size());
    const int iw = static_cast<int>(inner_cols_.size());
    // One left batch per call (replay-granularity invariant, batch.h).
    lbatch_.Reset();
    const ExecResult st = left_->NextBatch(&lbatch_);
    if (st == ExecResult::kAborted) return ExecResult::kAborted;
    // Two-pass (see BatchHashJoinOp::ProbeBatch): events + match pairs
    // first, then per-column bulk gathers. Paged inner rows can't be
    // gathered by pointer later, so pass 1 stashes their values.
    match_l_.clear();
    match_r_.clear();
    inner_gather_.clear();
    for (int64_t j = 0; j < lbatch_.n; ++j) {
      out->tape.Append(lbatch_.tape, lbatch_.SegBegin(j), lbatch_.SegEnd(j));
      out->tape.Charge(slot_, descent);
      const auto& matches = index_->Lookup(lbatch_.cols[outer_key_pos_][j]);
      for (const uint32_t r : matches) {
        if (paged_ != nullptr) {
          const storage::PageId pid = paged_->PageIdOfRow(r);
          out->tape.PageRand(slot_, pid.file, pid.page);
          out->tape.Charge(slot_, per_match_cpu);
          if (!guard_.valid() || cur_page_ != pid.page) {
            guard_ = paged_->buffer()->Pin(pid);
            cur_page_ = pid.page;
          }
          const int slot_in_page = paged_->SlotOfRow(r);
          for (int c = 0; c < iw; ++c) {
            inner_buf_[c] = paged_->ValueIn(guard_, slot_in_page, c);
          }
        } else {
          out->tape.Charge(slot_, per_match);
        }
        bool pass = true;
        for (const auto& f : inner_filters_) {
          const int64_t v =
              paged_ != nullptr ? inner_buf_[f.pos] : inner_cols_[f.pos][r];
          if (!EvalFilterValue(v, f)) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        for (const auto& eq : residual_) {
          if (Combined(j, r, eq.left_pos, lw) !=
              Combined(j, r, eq.right_pos, lw)) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        out->tape.ChargeEmit(slot_, p.cpu_tuple_cost);
        match_l_.push_back(static_cast<int32_t>(j));
        match_r_.push_back(r);
        if (paged_ != nullptr) {
          inner_gather_.insert(inner_gather_.end(), inner_buf_.begin(),
                               inner_buf_.end());
        }
        out->MarkRow();
      }
    }
    out->tape.Append(lbatch_.tape, lbatch_.TailBegin(), lbatch_.tape.size());
    const size_t nm = match_l_.size();
    for (int c = 0; c < lw; ++c) {
      const int64_t* src = lbatch_.cols[c].data();
      auto& dst = out->cols[c];
      const size_t old = dst.size();
      dst.resize(old + nm);
      int64_t* d = dst.data() + old;
      for (size_t k = 0; k < nm; ++k) d[k] = src[match_l_[k]];
    }
    for (int c = 0; c < iw; ++c) {
      auto& dst = out->cols[lw + c];
      const size_t old = dst.size();
      dst.resize(old + nm);
      int64_t* d = dst.data() + old;
      if (paged_ != nullptr) {
        const int64_t* vals = inner_gather_.data();
        for (size_t k = 0; k < nm; ++k) {
          d[k] = vals[k * static_cast<size_t>(iw) + c];
        }
      } else {
        const int64_t* src = inner_cols_[c];
        for (size_t k = 0; k < nm; ++k) d[k] = src[match_r_[k]];
      }
    }
    if (st == ExecResult::kDone) {
      guard_ = storage::PageGuard();
      out->tape.Finish(slot_);
      return ExecResult::kDone;
    }
    return ExecResult::kRow;
  }

 private:
  int64_t Combined(int64_t j, uint32_t r, int pos, int lw) const {
    if (pos < lw) return lbatch_.cols[pos][j];
    // Paged inner rows are staged in inner_buf_ (filled for the match being
    // tested); in-memory inners read the column directly.
    return paged_ != nullptr ? inner_buf_[pos - lw] : inner_cols_[pos - lw][r];
  }

  std::unique_ptr<BatchOp> left_;
  int inner_key_col_;
  int outer_key_pos_;
  std::vector<BoundFilter> inner_filters_;
  std::vector<BoundEquality> residual_;

  const DataTable* inner_;
  const storage::PagedTable* paged_;
  int64_t inner_rows_;
  const HashIndex* index_;
  std::vector<const int64_t*> inner_cols_;
  uint32_t cur_page_ = 0;  // page 0 is meta — never a data page
  storage::PageGuard guard_;
  Row inner_buf_;
  std::vector<int64_t> inner_gather_;  // survivor inner values, row-major
  ColumnBatch lbatch_;
  std::vector<int32_t> match_l_;
  std::vector<uint32_t> match_r_;
};

// ---------------------------------------------------------------------------
// Materialized nested-loop join
// ---------------------------------------------------------------------------

class BatchMaterialNLJoinOp : public BatchOp {
 public:
  BatchMaterialNLJoinOp(const PlanNode* node, BatchExecState* st,
                        std::unique_ptr<BatchOp> left,
                        std::unique_ptr<BatchOp> right,
                        std::vector<BoundEquality> conditions)
      : BatchOp(node, st),
        left_(std::move(left)),
        right_(std::move(right)),
        conditions_(std::move(conditions)) {
    schema_ = left_->schema();
    schema_.insert(schema_.end(), right_->schema().begin(),
                   right_->schema().end());
    lbatch_.Configure(left_->schema().size());
  }

  ExecResult NextBatch(ColumnBatch* out) override {
    if (st_->aborted() || st_->ctx()->meter.exhausted()) {
      return ExecResult::kAborted;
    }
    if (!touched_) {
      st_->TouchSlot(slot_);
      touched_ = true;
    }
    const auto& p = st_->ctx()->cost_model->params();
    if (!materialized_) {
      if (Materialize() == ExecResult::kAborted) return ExecResult::kAborted;
      materialized_ = true;
    }
    const int lw = static_cast<int>(left_->schema().size());
    const int rw = static_cast<int>(right_->schema().size());
    // One left batch per call (replay-granularity invariant, batch.h).
    lbatch_.Reset();
    const ExecResult st = left_->NextBatch(&lbatch_);
    if (st == ExecResult::kAborted) return ExecResult::kAborted;
    const int64_t ninner = ninner_;
    sel_.resize(static_cast<size_t>(ninner));
    for (int64_t j = 0; j < lbatch_.n; ++j) {
      out->tape.Append(lbatch_.tape, lbatch_.SegBegin(j), lbatch_.SegEnd(j));
      // Selection vector over the materialized inner: each condition either
      // compares an inner column against a value fixed by the outer row or
      // two inner columns against each other.
      int m = static_cast<int>(ninner);
      for (int64_t i = 0; i < ninner; ++i) sel_[i] = static_cast<int32_t>(i);
      for (const auto& eq : conditions_) {
        const int64_t* a_col =
            eq.left_pos < lw ? nullptr : icols_[eq.left_pos - lw].data();
        const int64_t a_const =
            eq.left_pos < lw ? lbatch_.cols[eq.left_pos][j] : 0;
        const int64_t* b_col =
            eq.right_pos < lw ? nullptr : icols_[eq.right_pos - lw].data();
        const int64_t b_const =
            eq.right_pos < lw ? lbatch_.cols[eq.right_pos][j] : 0;
        int m2 = 0;
        for (int k = 0; k < m; ++k) {
          const int32_t i = sel_[k];
          const int64_t va = a_col != nullptr ? a_col[i] : a_const;
          const int64_t vb = b_col != nullptr ? b_col[i] : b_const;
          sel_[m2] = i;
          m2 += va == vb ? 1 : 0;
        }
        m = m2;
      }
      // Per inner row the scalar engine charges cpu_operator_cost before
      // testing the conditions, then cpu_tuple_cost per emit.
      int32_t prev = -1;
      for (int k = 0; k < m; ++k) {
        const int32_t i = sel_[k];
        out->tape.Charge(slot_, p.cpu_operator_cost,
                         static_cast<uint32_t>(i - prev));
        out->tape.ChargeEmit(slot_, p.cpu_tuple_cost);
        out->MarkRow();
        prev = i;
      }
      if (ninner - 1 > prev) {
        out->tape.Charge(slot_, p.cpu_operator_cost,
                         static_cast<uint32_t>(ninner - 1 - prev));
      }
      // Bulk output: the outer row's values repeat m times, inner columns
      // gather through the surviving selection vector.
      for (int c = 0; c < lw; ++c) {
        out->cols[c].resize(out->cols[c].size() + static_cast<size_t>(m),
                            lbatch_.cols[c][j]);
      }
      for (int c = 0; c < rw; ++c) {
        const int64_t* src = icols_[c].data();
        auto& dst = out->cols[lw + c];
        const size_t old = dst.size();
        dst.resize(old + static_cast<size_t>(m));
        int64_t* d = dst.data() + old;
        for (int k = 0; k < m; ++k) d[k] = src[sel_[k]];
      }
    }
    out->tape.Append(lbatch_.tape, lbatch_.TailBegin(), lbatch_.tape.size());
    if (st == ExecResult::kDone) {
      out->tape.Finish(slot_);
      return ExecResult::kDone;
    }
    return ExecResult::kRow;
  }

 private:
  ExecResult Materialize() {
    const auto& p = st_->ctx()->cost_model->params();
    const size_t rcols = right_->schema().size();
    icols_.assign(rcols, {});
    ColumnBatch in;
    in.Configure(rcols);
    Tape phase;
    for (;;) {
      in.Reset();
      const ExecResult st = right_->NextBatch(&in);
      if (st == ExecResult::kAborted) return ExecResult::kAborted;
      phase.Clear();
      for (int64_t j = 0; j < in.n; ++j) {
        phase.Append(in.tape, in.SegBegin(j), in.SegEnd(j));
        phase.Charge(slot_, p.cpu_tuple_cost);
      }
      phase.Append(in.tape, in.TailBegin(), in.tape.size());
      if (!st_->Replay(phase.events())) return ExecResult::kAborted;
      for (size_t c = 0; c < rcols; ++c) {
        icols_[c].insert(icols_[c].end(), in.cols[c].begin(),
                         in.cols[c].end());
      }
      ninner_ += in.n;
      if (st == ExecResult::kDone) return ExecResult::kDone;
    }
  }

  std::unique_ptr<BatchOp> left_;
  std::unique_ptr<BatchOp> right_;
  std::vector<BoundEquality> conditions_;

  bool materialized_ = false;
  std::vector<std::vector<int64_t>> icols_;
  int64_t ninner_ = 0;
  ColumnBatch lbatch_;
  std::vector<int32_t> sel_;
};

// ---------------------------------------------------------------------------
// Hash aggregate
// ---------------------------------------------------------------------------

// Must stay bit-identical to the scalar HashAggregateOp's private RowHash:
// with the same hasher, same key insertion sequence, and the same
// std::unordered_map implementation, the two engines iterate groups in the
// same order and therefore emit identical row sequences.
struct AggRowHash {
  size_t operator()(const Row& r) const {
    size_t h = 1469598103934665603ULL;
    for (int64_t v : r) {
      h ^= static_cast<size_t>(v);
      h *= 1099511628211ULL;
    }
    return h;
  }
};

class BatchHashAggregateOp : public BatchOp {
 public:
  BatchHashAggregateOp(const PlanNode* node, BatchExecState* st,
                       std::unique_ptr<BatchOp> child,
                       std::vector<int> group_positions, int agg_position,
                       AggregateSpec::Func func)
      : BatchOp(node, st),
        child_(std::move(child)),
        group_positions_(std::move(group_positions)),
        agg_position_(agg_position),
        func_(func) {
    for (int pos : group_positions_) {
      schema_.push_back(child_->schema()[pos]);
    }
    schema_.push_back({-1, -1});  // aggregate value
    key_buf_.resize(group_positions_.size());
  }

  ExecResult NextBatch(ColumnBatch* out) override {
    if (st_->aborted() || st_->ctx()->meter.exhausted()) {
      return ExecResult::kAborted;
    }
    if (!touched_) {
      st_->TouchSlot(slot_);
      touched_ = true;
    }
    const auto& p = st_->ctx()->cost_model->params();
    if (!built_) {
      if (Build() == ExecResult::kAborted) return ExecResult::kAborted;
      built_ = true;
    }
    const int bsz = std::max(1, st_->ctx()->batch_size);
    const int gcols = static_cast<int>(group_positions_.size());
    while (emit_ != emit_rows_.size() && out->n < bsz) {
      const auto& row = emit_rows_[emit_];
      out->tape.ChargeEmit(slot_, p.cpu_tuple_cost);
      for (int c = 0; c < gcols; ++c) {
        out->cols[c].push_back(row.first[c]);
      }
      out->cols[gcols].push_back(row.second);
      out->MarkRow();
      ++emit_;
    }
    if (emit_ == emit_rows_.size()) {
      out->tape.Finish(slot_);
      return ExecResult::kDone;
    }
    return ExecResult::kRow;
  }

 private:
  ExecResult Build() {
    const auto& p = st_->ctx()->cost_model->params();
    const double hash_op = p.hash_op_factor * p.cpu_operator_cost;
    ColumnBatch in;
    in.Configure(child_->schema().size());
    Tape phase;
    for (;;) {
      in.Reset();
      const ExecResult st = child_->NextBatch(&in);
      if (st == ExecResult::kAborted) return ExecResult::kAborted;
      phase.Clear();
      for (int64_t j = 0; j < in.n; ++j) {
        phase.Append(in.tape, in.SegBegin(j), in.SegEnd(j));
        phase.Charge(slot_, hash_op + p.cpu_operator_cost);
      }
      phase.Append(in.tape, in.TailBegin(), in.tape.size());
      if (!st_->Replay(phase.events())) return ExecResult::kAborted;
      for (int64_t j = 0; j < in.n; ++j) {
        for (size_t g = 0; g < group_positions_.size(); ++g) {
          key_buf_[g] = in.cols[group_positions_[g]][j];
        }
        const int64_t value =
            agg_position_ >= 0 ? in.cols[agg_position_][j] : 1;
        auto [it, inserted] = groups_.try_emplace(key_buf_, 0);
        switch (func_) {
          case AggregateSpec::Func::kCount:
            it->second += 1;
            break;
          case AggregateSpec::Func::kSum:
            it->second = inserted ? value : it->second + value;
            break;
          case AggregateSpec::Func::kMin:
            it->second = inserted ? value : std::min(it->second, value);
            break;
          case AggregateSpec::Func::kMax:
            it->second = inserted ? value : std::max(it->second, value);
            break;
        }
      }
      if (st == ExecResult::kDone) break;
    }
    // COUNT over empty ungrouped input emits one zero row (SQL semantics),
    // matching the scalar engine.
    if (groups_.empty() && group_positions_.empty() &&
        func_ == AggregateSpec::Func::kCount) {
      groups_.try_emplace(Row{}, 0);
    }
    // Deterministic emission order, identical to the scalar engine's sort:
    // hash-map iteration order is unspecified (bouquet-determinism), and
    // the abort-truncated result prefix must not depend on it.
    // NOLINTNEXTLINE(bouquet-determinism): drained into the sort below
    emit_rows_.assign(std::make_move_iterator(groups_.begin()),
                      std::make_move_iterator(groups_.end()));
    std::sort(emit_rows_.begin(), emit_rows_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    groups_.clear();
    emit_ = 0;
    return ExecResult::kDone;
  }

  std::unique_ptr<BatchOp> child_;
  std::vector<int> group_positions_;
  int agg_position_;
  AggregateSpec::Func func_;

  bool built_ = false;
  Row key_buf_;
  std::unordered_map<Row, int64_t, AggRowHash> groups_;
  /// Sorted (group key, aggregate) pairs; see the sort comment in Build().
  std::vector<std::pair<Row, int64_t>> emit_rows_;
  size_t emit_ = 0;
};

// ---------------------------------------------------------------------------
// Builder — mirrors the scalar Build() in operators.cc line for line; any
// divergence here would bind predicates to different positions and break
// charge-sequence equivalence.
// ---------------------------------------------------------------------------

Result<std::unique_ptr<BatchOp>> BuildBatch(const PlanNode& node,
                                            BatchExecState* state) {
  ExecContext* ctx = state->ctx();
  const QuerySpec& q = *ctx->query;

  if (node.is_aggregate()) {
    auto child_res = BuildBatch(*node.left, state);
    if (!child_res.ok()) return child_res.status();
    std::unique_ptr<BatchOp> child = std::move(child_res.value());
    const AggregateSpec& spec = q.aggregate;
    std::vector<int> group_positions;
    for (const auto& [table, column] : spec.group_by) {
      const int t = q.TableIndex(table);
      const int c = ctx->db->table(q.tables[t]).ColumnIndex(column);
      const int pos = child->FindColumn(t, c);
      if (pos < 0) return Status::Internal("group-by column not in input");
      group_positions.push_back(pos);
    }
    int agg_position = -1;
    if (spec.func != AggregateSpec::Func::kCount) {
      const int t = q.TableIndex(spec.agg_table);
      const int c = ctx->db->table(q.tables[t]).ColumnIndex(spec.agg_column);
      agg_position = child->FindColumn(t, c);
      if (agg_position < 0) {
        return Status::Internal("aggregate column not in input");
      }
    }
    return std::unique_ptr<BatchOp>(std::make_unique<BatchHashAggregateOp>(
        &node, state, std::move(child), std::move(group_positions),
        agg_position, spec.func));
  }

  if (node.is_scan()) {
    const std::string& tname = q.tables[node.table_idx];
    const DataTable& dt = ctx->db->table(tname);
    std::vector<BoundFilter> filters;
    for (int f : node.filter_idxs) {
      const auto& pred = q.filters[f];
      if (!pred.has_constant()) {
        return Status::FailedPrecondition(
            "cannot execute abstract predicate without constant: " +
            pred.table + "." + pred.column);
      }
      const int col = dt.ColumnIndex(pred.column);
      if (col < 0) return Status::NotFound("column missing in data table");
      filters.push_back({col, pred.op, pred.constant});
    }
    if (node.op == OpType::kIndexScan && node.index_filter >= 0) {
      const auto& pred = q.filters[node.index_filter];
      int64_t lo, hi;
      Status s = FilterToRange(pred, &lo, &hi);
      if (!s.ok()) return s;
      const int col = dt.ColumnIndex(pred.column);
      return std::unique_ptr<BatchOp>(std::make_unique<BatchIndexScanOp>(
          &node, state, std::move(filters), lo, hi, col));
    }
    return std::unique_ptr<BatchOp>(
        std::make_unique<BatchSeqScanOp>(&node, state, std::move(filters)));
  }

  // Joins: build the outer child first.
  auto left_res = BuildBatch(*node.left, state);
  if (!left_res.ok()) return left_res.status();
  std::unique_ptr<BatchOp> left = std::move(left_res.value());

  if (node.op == OpType::kIndexNLJoin) {
    assert(node.index_join >= 0);
    const auto& jp = q.joins[node.index_join];
    const int inner_table = node.right->table_idx;
    const DataTable& inner_dt = ctx->db->table(q.tables[inner_table]);
    const bool inner_is_left = q.TableIndex(jp.left_table) == inner_table;
    const std::string& inner_col_name =
        inner_is_left ? jp.left_column : jp.right_column;
    const std::string& outer_col_name =
        inner_is_left ? jp.right_column : jp.left_column;
    const int outer_table = inner_is_left ? q.TableIndex(jp.right_table)
                                          : q.TableIndex(jp.left_table);
    const int inner_key_col = inner_dt.ColumnIndex(inner_col_name);
    const int outer_key_pos = left->FindColumn(
        outer_table,
        ctx->db->table(q.tables[outer_table]).ColumnIndex(outer_col_name));
    if (inner_key_col < 0 || outer_key_pos < 0) {
      return Status::Internal("index NL join key binding failed");
    }
    std::vector<BoundFilter> inner_filters;
    for (int f : node.right->filter_idxs) {
      const auto& pred = q.filters[f];
      if (!pred.has_constant()) {
        return Status::FailedPrecondition(
            "cannot execute abstract predicate without constant: " +
            pred.table + "." + pred.column);
      }
      const int col = inner_dt.ColumnIndex(pred.column);
      if (col < 0) {
        return Status::NotFound("column missing in data table: " + pred.table +
                                "." + pred.column);
      }
      inner_filters.push_back({col, pred.op, pred.constant});
    }
    std::vector<BoundEquality> residual;
    const size_t left_width = left->schema().size();
    for (int j : node.join_idxs) {
      if (j == node.index_join) continue;
      const auto& rp = q.joins[j];
      const int lt = q.TableIndex(rp.left_table);
      const int rt = q.TableIndex(rp.right_table);
      const int lcol = ctx->db->table(q.tables[lt]).ColumnIndex(rp.left_column);
      const int rcol =
          ctx->db->table(q.tables[rt]).ColumnIndex(rp.right_column);
      int pos_a = left->FindColumn(lt, lcol);
      int pos_b = left->FindColumn(rt, rcol);
      if (pos_a < 0) pos_a = static_cast<int>(left_width) + lcol;  // inner side
      if (pos_b < 0) pos_b = static_cast<int>(left_width) + rcol;
      residual.push_back({pos_a, pos_b});
    }
    return std::unique_ptr<BatchOp>(std::make_unique<BatchIndexNLJoinOp>(
        &node, state, std::move(left), inner_table, inner_key_col,
        outer_key_pos, std::move(inner_filters), std::move(residual)));
  }

  auto right_res = BuildBatch(*node.right, state);
  if (!right_res.ok()) return right_res.status();
  std::unique_ptr<BatchOp> right = std::move(right_res.value());

  const size_t left_width = left->schema().size();
  auto bind_side = [&](const std::string& table, const std::string& column,
                       int* pos) -> bool {
    const int t = q.TableIndex(table);
    const int c = ctx->db->table(q.tables[t]).ColumnIndex(column);
    int p = left->FindColumn(t, c);
    if (p >= 0) {
      *pos = p;
      return true;
    }
    p = right->FindColumn(t, c);
    if (p >= 0) {
      *pos = static_cast<int>(left_width) + p;
      return false;
    }
    *pos = -1;
    return false;
  };

  std::vector<BoundEquality> all_conditions;
  int left_key_pos = -1;
  int right_key_pos = -1;
  for (size_t i = 0; i < node.join_idxs.size(); ++i) {
    const auto& jp = q.joins[node.join_idxs[i]];
    int pos_l, pos_r;
    bind_side(jp.left_table, jp.left_column, &pos_l);
    bind_side(jp.right_table, jp.right_column, &pos_r);
    if (pos_l < 0 || pos_r < 0) {
      return Status::Internal("join predicate binding failed");
    }
    if (i == 0) {
      const int a = std::min(pos_l, pos_r);
      const int b = std::max(pos_l, pos_r);
      if (a >= static_cast<int>(left_width) ||
          b < static_cast<int>(left_width)) {
        return Status::Internal("join key not crossing children");
      }
      left_key_pos = a;
      right_key_pos = b - static_cast<int>(left_width);
    } else {
      all_conditions.push_back({pos_l, pos_r});
    }
  }

  switch (node.op) {
    case OpType::kHashJoin:
      return std::unique_ptr<BatchOp>(std::make_unique<BatchHashJoinOp>(
          &node, state, std::move(left), std::move(right), left_key_pos,
          right_key_pos, std::move(all_conditions)));
    case OpType::kMergeJoin:
      return std::unique_ptr<BatchOp>(std::make_unique<BatchMergeJoinOp>(
          &node, state, std::move(left), std::move(right), left_key_pos,
          right_key_pos, std::move(all_conditions)));
    case OpType::kMaterialNLJoin: {
      std::vector<BoundEquality> conds = std::move(all_conditions);
      conds.push_back(
          {left_key_pos, right_key_pos + static_cast<int>(left_width)});
      return std::unique_ptr<BatchOp>(std::make_unique<BatchMaterialNLJoinOp>(
          &node, state, std::move(left), std::move(right), std::move(conds)));
    }
    default:
      return Status::Internal("unsupported join operator in builder");
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

ExecutionOutcome RunTreeBatch(const PlanNode& root, ExecContext* ctx,
                              double budget, std::vector<Row>* results,
                              bool spilled) {
  ctx->meter.Reset();
  ctx->meter.set_budget(budget);
  ctx->instr.Reset();
  ctx->page_reads_charged = 0;
  ctx->page_hits_charged = 0;

  // Observability mirrors the scalar RunTree: one "exec.plan" span per
  // (partial) execution, one "exec.node" child per finished operator.
  obs::Span exec_span;
  if (ctx->tracer != nullptr) {
    exec_span = obs::Tracer::BeginUnder(ctx->tracer, "exec.plan",
                                        ctx->trace_parent, ctx->trace_id);
    ctx->instr.EnableTiming(true);
    obs::Tracer* tracer = ctx->tracer;
    const uint64_t parent = exec_span.id();
    const uint64_t trace = exec_span.trace_id();
    ctx->instr.SetFinishHook(
        [tracer, parent, trace](const PlanNode* node,
                                const NodeCounters& nc) {
          obs::Span s =
              obs::Tracer::BeginUnder(tracer, "exec.node", parent, trace);
          s.Num("op", static_cast<double>(static_cast<int>(node->op)))
              .Num("tuples_out", static_cast<double>(nc.tuples_out))
              .Num("tuples_scanned", static_cast<double>(nc.tuples_scanned))
              .Num("node_wall_seconds", nc.wall_seconds);
          s.End();
        });
  } else {
    ctx->instr.EnableTiming(false);
    ctx->instr.SetFinishHook(nullptr);
  }

  ExecutionOutcome out;
  BatchExecState state(ctx);
  auto built = BuildBatch(root, &state);
  if (!built.ok()) {
    out.status = ExecResult::kAborted;
    out.build_failed = true;
    out.build_status = built.status();
    if (exec_span.enabled()) {
      exec_span.Flag("build_failed", true)
          .Str("signature", PlanSignature(root));
      exec_span.End();
    }
    return out;
  }
  BatchOp* op = built.value().get();
  const uint16_t root_slot = op->slot();
  const size_t ncols = op->schema().size();
  obs::Histogram* fill_hist =
      ctx->metrics != nullptr
          ? ctx->metrics->GetHistogram(
                "bouquet_exec_batch_rows",
                "Rows per batch produced at the executor root",
                obs::BatchSizeBuckets())
          : nullptr;

  storage::StorageManager* sm =
      ctx->db != nullptr ? ctx->db->storage() : nullptr;
  std::unique_ptr<storage::SpillWriter> spill;
  if (spilled && sm != nullptr) {
    // Mirror the scalar engine: spilled output is jettisoned from the
    // accounting but physically lands in temp pages through the pool.
    spill = std::make_unique<storage::SpillWriter>(sm, ncols);
  }

  ColumnBatch batch;
  batch.Configure(ncols);
  int64_t emitted = 0;
  ExecResult status = ExecResult::kDone;
  for (;;) {
    batch.Reset();
    const ExecResult st = op->NextBatch(&batch);
    if (st == ExecResult::kAborted) {
      status = ExecResult::kAborted;
      break;
    }
    int64_t ok_rows = 0;
    const bool ok = state.Replay(batch.tape.events(), root_slot, &ok_rows);
    if (batch.n > 0) {
      state.batches_produced++;
      state.rows_produced += batch.n;
      if (fill_hist != nullptr) {
        fill_hist->Observe(static_cast<double>(batch.n));
      }
    }
    // Rows whose emit charge did not complete before the abort are data the
    // scalar engine would never have produced; truncate them.
    emitted += ok_rows;
    if (results != nullptr || (spill != nullptr && spill->ok())) {
      Row r(ncols);
      for (int64_t i = 0; i < ok_rows; ++i) {
        for (size_t c = 0; c < ncols; ++c) r[c] = batch.cols[c][i];
        if (spill != nullptr) {
          if (spill->ok()) spill->Append(r);
        } else {
          results->push_back(r);
        }
      }
    }
    if (!ok) {
      status = ExecResult::kAborted;
      break;
    }
    if (st == ExecResult::kDone) break;
  }

  out.status = status;
  out.rows_emitted = emitted;
  out.cost_charged = ctx->meter.charged();
  out.page_reads = ctx->page_reads_charged;
  out.page_hits = ctx->page_hits_charged;
  if (exec_span.enabled()) {
    obs::Span bspan = obs::Tracer::BeginUnder(ctx->tracer, "exec.batch",
                                              exec_span.id(),
                                              exec_span.trace_id());
    bspan.Num("batch_size", static_cast<double>(ctx->batch_size))
        .Num("batches", static_cast<double>(state.batches_produced))
        .Num("batch_rows", static_cast<double>(state.rows_produced));
    bspan.End();
    exec_span.Num("budget", budget)
        .Num("charged", out.cost_charged)
        .Num("rows", static_cast<double>(out.rows_emitted))
        .Num("page_reads", static_cast<double>(out.page_reads))
        .Num("page_hits", static_cast<double>(out.page_hits))
        .Flag("completed", out.status == ExecResult::kDone)
        .Flag("spilled", spilled);
    exec_span.End();
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<BatchOp>> BuildBatchExecutor(const PlanNode& root,
                                                    BatchExecState* state) {
  ExecContext* ctx = state->ctx();
  assert(ctx->query && ctx->db && ctx->catalog && ctx->cost_model);
  (void)ctx;
  return BuildBatch(root, state);
}

ExecutionOutcome ExecutePlanBatch(const PlanNode& root, ExecContext* ctx,
                                  double budget, std::vector<Row>* results) {
  return RunTreeBatch(root, ctx, budget, results, /*spilled=*/false);
}

ExecutionOutcome ExecuteSpilledBatch(const PlanNode& subtree_root,
                                     ExecContext* ctx, double budget) {
  return RunTreeBatch(subtree_root, ctx, budget, /*results=*/nullptr,
                      /*spilled=*/true);
}

}  // namespace bouquet

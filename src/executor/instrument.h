// Runtime instrumentation: per-plan-node tuple counters.
//
// Mirrors PostgreSQL's Instrumentation structure, which the paper identifies
// (Section 5.4) as the pre-existing engine facility that makes cost-limited
// execution and run-time selectivity monitoring cheap to add. The bouquet
// driver reads these counters to maintain the running selectivity location
// q_run (Section 5.2).

#ifndef BOUQUET_EXECUTOR_INSTRUMENT_H_
#define BOUQUET_EXECUTOR_INSTRUMENT_H_

#include <cstdint>
#include <unordered_map>

#include "optimizer/plan.h"

namespace bouquet {

/// Counters collected for one plan node during (partial) execution.
struct NodeCounters {
  int64_t tuples_out = 0;      ///< rows emitted by the node so far
  int64_t tuples_scanned = 0;  ///< base rows examined (scans only)
  bool finished = false;       ///< node ran to completion
};

/// Registry of counters keyed by plan node identity.
class Instrumentation {
 public:
  NodeCounters& ForNode(const PlanNode* node) { return counters_[node]; }

  /// Counters for a node, or nullptr if it never executed.
  const NodeCounters* Find(const PlanNode* node) const;

  void Reset() { counters_.clear(); }

 private:
  std::unordered_map<const PlanNode*, NodeCounters> counters_;
};

}  // namespace bouquet

#endif  // BOUQUET_EXECUTOR_INSTRUMENT_H_

// Runtime instrumentation: per-plan-node tuple counters.
//
// Mirrors PostgreSQL's Instrumentation structure, which the paper identifies
// (Section 5.4) as the pre-existing engine facility that makes cost-limited
// execution and run-time selectivity monitoring cheap to add. The bouquet
// driver reads these counters to maintain the running selectivity location
// q_run (Section 5.2).
//
// For the observability layer (src/obs) the registry additionally carries
// optional per-node wall timing (first touch -> completion) and a
// finished-node hook, so every operator that runs to completion can be
// emitted as a trace span without the operators knowing about tracing.
// Both are off by default and cost nothing when unused.

#ifndef BOUQUET_EXECUTOR_INSTRUMENT_H_
#define BOUQUET_EXECUTOR_INSTRUMENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/lint.h"
#include "optimizer/plan.h"

namespace bouquet {

/// Counters collected for one plan node during (partial) execution.
///
/// Counters are batch-aware: producers may account one tuple at a time (the
/// scalar engine) or add whole batches at once via AddOut/AddScanned (the
/// vectorized engine's charge-replay). Consumers (q_run harvesting, spans)
/// only ever read totals, so granularity is invisible to them.
struct NodeCounters {
  int64_t tuples_out = 0;      ///< rows emitted by the node so far
  int64_t tuples_scanned = 0;  ///< base rows examined (scans only)
  bool finished = false;       ///< node ran to completion
  /// First touch -> completion, seconds; 0 unless timing was enabled and
  /// the node finished. This is pipeline wall time — the span from the
  /// node's first activity to its completion — NOT a per-Next() sum; it is
  /// therefore comparable between the tuple-at-a-time and batch engines,
  /// which reach identical counters through different call shapes.
  double wall_seconds = 0.0;
  /// First-touch stamp (only meaningful while timing is enabled).
  std::chrono::steady_clock::time_point first_touch;

  /// Bulk (batch-granularity) additions.
  void AddOut(int64_t n) { tuples_out += n; }
  void AddScanned(int64_t n) { tuples_scanned += n; }
};

/// Registry of counters keyed by plan node identity.
class Instrumentation {
 public:
  /// Invoked (synchronously, on the executing thread) when a node finishes.
  using FinishHook =
      std::function<void(const PlanNode* node, const NodeCounters& counters)>;

  /// Wall-clock telemetry only: per-node timing attribution for exec.node
  /// spans. Never read by q_run learning, the meter, or tape replay.
  BOUQUET_NONDETERMINISM_OK static std::chrono::steady_clock::time_point
  WallNow() {
    return std::chrono::steady_clock::now();
  }

  NodeCounters& ForNode(const PlanNode* node) {
    auto [it, inserted] = counters_.try_emplace(node);
    if (inserted && timing_) {
      it->second.first_touch = WallNow();
    }
    return it->second;
  }

  /// Alias of ForNode that reads as intent at call sites which only want
  /// the first-touch side effect (e.g. the batch engine's charge replay,
  /// which touches a node before applying any of its counters).
  NodeCounters& Touch(const PlanNode* node) { return ForNode(node); }

  /// Marks a node complete: sets `finished`, stamps `wall_seconds` (when
  /// timing is enabled), and fires the finish hook (when set). Operators
  /// call this instead of writing `finished` directly. Idempotent: a second
  /// finish (e.g. an exhausted iterator pulled again) neither re-stamps the
  /// wall time nor re-fires the hook, so nodes cannot grow their attributed
  /// wall clock or emit duplicate spans after completing.
  void FinishNode(const PlanNode* node) {
    NodeCounters& nc = ForNode(node);
    if (nc.finished) return;
    nc.finished = true;
    if (timing_) {
      nc.wall_seconds = std::chrono::duration<double>(WallNow() -
                                                      nc.first_touch)
                            .count();
    }
    if (finish_hook_) finish_hook_(node, nc);
  }

  /// Counters for a node, or nullptr if it never executed.
  const NodeCounters* Find(const PlanNode* node) const;

  /// Enables first-touch/finish wall timing for subsequently created
  /// counters (typically set once by the tracing driver before execution).
  void EnableTiming(bool on) { timing_ = on; }
  bool timing_enabled() const { return timing_; }

  void SetFinishHook(FinishHook hook) { finish_hook_ = std::move(hook); }

  /// Clears counters; timing flag and hook persist across executions of the
  /// same context (Reset is "jettison intermediate results", not "forget
  /// how to observe").
  void Reset() { counters_.clear(); }

 private:
  std::unordered_map<const PlanNode*, NodeCounters> counters_;
  bool timing_ = false;
  FinishHook finish_hook_;
};

}  // namespace bouquet

#endif  // BOUQUET_EXECUTOR_INSTRUMENT_H_

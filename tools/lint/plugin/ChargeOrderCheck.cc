#include "ChargeOrderCheck.h"

#include "BouquetLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace bouquet {

namespace {

/// True if `E` (sans parens/casts) contains a top-level binary +/-,
/// i.e. the right-hand side sums multiple terms in one expression.
bool IsAdditiveExpr(const Expr *E) {
  E = E->IgnoreParenImpCasts();
  if (const auto *BO = dyn_cast<BinaryOperator>(E)) {
    return BO->getOpcode() == BO_Add || BO->getOpcode() == BO_Sub;
  }
  return false;
}

bool IsLiteral(const Expr *E) {
  E = E->IgnoreParenImpCasts();
  return isa<FloatingLiteral>(E) || isa<IntegerLiteral>(E);
}

}  // namespace

void ChargeOrderCheck::registerMatchers(MatchFinder *Finder) {
  auto ChargedField = memberExpr(member(fieldDecl().bind("field")));

  Finder->addMatcher(
      binaryOperator(isAssignmentOperator(), hasLHS(ChargedField))
          .bind("assign"),
      this);
  // ++f / f++ / --f / f-- are fine (single scalar step); no matcher needed.

  // Bulk reductions are banned module-wide in accounting dirs, independent
  // of what they reduce into: the reduction order is the library's choice.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::std::accumulate", "::std::reduce",
                   "::std::transform_reduce", "::std::inner_product"))))
          .bind("bulk"),
      this);
}

void ChargeOrderCheck::check(const MatchFinder::MatchResult &Result) {
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("bulk")) {
    StringRef File = Result.SourceManager->getFilename(
        Result.SourceManager->getSpellingLoc(Call->getBeginLoc()));
    if (!IsAccountingPath(File)) return;
    diag(Call->getBeginLoc(),
         "reassociable bulk reduction in an accounting-critical module; "
         "charges must be applied one scalar add at a time");
    return;
  }

  const auto *Assign = Result.Nodes.getNodeAs<BinaryOperator>("assign");
  const auto *Field = Result.Nodes.getNodeAs<FieldDecl>("field");
  if (Assign == nullptr || Field == nullptr) return;
  if (!HasAnnotation(Field, kChargedTag)) return;

  const Expr *RHS = Assign->getRHS();
  switch (Assign->getOpcode()) {
    case BO_AddAssign:
      if (IsAdditiveExpr(RHS)) {
        diag(Assign->getBeginLoc(),
             "compound add to charged field %0 sums multiple terms in one "
             "expression; the reassociation changes FP charge order — apply "
             "one term per statement")
            << Field;
      }
      return;
    case BO_Assign:
      if (!IsLiteral(RHS)) {
        diag(Assign->getBeginLoc(),
             "assignment to charged field %0 from a non-literal expression; "
             "charges accrue only through scalar adds (replay writebacks "
             "need an explicit NOLINT with reason)")
            << Field;
      }
      return;
    default:
      diag(Assign->getBeginLoc(),
           "operator '%0' on charged field %1; charges are monotone scalar "
           "adds")
          << BinaryOperator::getOpcodeStr(Assign->getOpcode()) << Field;
      return;
  }
}

}  // namespace bouquet
}  // namespace tidy
}  // namespace clang

// Shared helpers for the bouquet-* clang-tidy checks: module scoping (which
// files are accounting-critical), annotation lookup, and the annotation
// vocabulary shared with src/common/lint.h and the portable engine
// (../bouquet_lint.py). Keep the three in lockstep: a scope or tag that
// exists in only one engine is a check that silently stopped running for
// half the CI matrix.

#ifndef BOUQUET_TOOLS_LINT_PLUGIN_BOUQUET_LINT_UTILS_H_
#define BOUQUET_TOOLS_LINT_PLUGIN_BOUQUET_LINT_UTILS_H_

#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace bouquet {

// Annotation tags produced by src/common/lint.h.
inline constexpr llvm::StringRef kChargedTag = "bouquet::charged";
inline constexpr llvm::StringRef kNondetOkTag = "bouquet::nondeterminism_ok";

/// True when `File` (a path as spelled by the SourceManager) lies in a
/// module whose code feeds charged cost, abort points, or replay state.
/// Mirrors ACCOUNTING_DIRS in ../bouquet_lint.py.
inline bool IsAccountingPath(llvm::StringRef File) {
  for (llvm::StringRef Dir :
       {"src/executor/", "src/storage/", "src/ess/", "src/bouquet/",
        "tests/static/lint/"}) {
    size_t Pos = File.find(Dir);
    if (Pos != llvm::StringRef::npos &&
        (Pos == 0 || File[Pos - 1] == '/')) {
      return true;
    }
  }
  return false;
}

/// True for src/storage/buffer_manager.{h,cc}, the only files allowed to
/// touch the physical pin layer directly.
inline bool IsBufferManagerFile(llvm::StringRef File) {
  return File.ends_with("src/storage/buffer_manager.h") ||
         File.ends_with("src/storage/buffer_manager.cc");
}

/// True when `D` (or any redeclaration) carries
/// [[clang::annotate("<Tag>")]].
inline bool HasAnnotation(const Decl *D, llvm::StringRef Tag) {
  if (D == nullptr) return false;
  for (const Decl *Redecl : D->redecls()) {
    for (const auto *A : Redecl->specific_attrs<AnnotateAttr>()) {
      if (A->getAnnotation() == Tag) return true;
    }
  }
  return false;
}

/// Walks up the DeclContext chain from `D` looking for a function, method,
/// or record annotated with `Tag` (the escape-hatch scope rule: annotating
/// a function covers everything in its body).
inline bool EnclosingScopeHasAnnotation(const Decl *D, llvm::StringRef Tag) {
  for (const DeclContext *DC = D ? D->getDeclContext() : nullptr;
       DC != nullptr; DC = DC->getParent()) {
    if (const auto *Ctx = dyn_cast<Decl>(DC)) {
      if (HasAnnotation(Ctx, Tag)) return true;
    }
  }
  return false;
}

}  // namespace bouquet
}  // namespace tidy
}  // namespace clang

#endif  // BOUQUET_TOOLS_LINT_PLUGIN_BOUQUET_LINT_UTILS_H_

#include "DiscardedStatusCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace bouquet {

void DiscardedStatusCheck::registerMatchers(MatchFinder *Finder) {
  // (void)call(...) — C-style cast to void wrapping any call expression.
  // Scoped to calls: `(void)variable;` marks an unused value, which is
  // harmless; `(void)call();` throws away a result someone computed.
  Finder->addMatcher(
      cStyleCastExpr(hasDestinationType(voidType()),
                     hasSourceExpression(ignoringParenImpCasts(callExpr())))
          .bind("cast"),
      this);
}

void DiscardedStatusCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Cast = Result.Nodes.getNodeAs<CStyleCastExpr>("cast");
  if (Cast == nullptr || !Cast->getBeginLoc().isValid()) return;
  diag(Cast->getBeginLoc(),
       "(void)-cast silently discards a call result; Status/Result are "
       "[[nodiscard]] and the cast is the only loophole — handle the result "
       "or add NOLINT(bouquet-discarded-status) with the reason it is safe "
       "to drop");
}

}  // namespace bouquet
}  // namespace tidy
}  // namespace clang

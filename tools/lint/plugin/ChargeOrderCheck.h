// bouquet-charge-order: fields tagged BOUQUET_CHARGED (the CostMeter
// accumulator, context page counters) mutate only one scalar add at a time.
//
// The batch engine replays the scalar engine's per-unit charges from the
// metering tape; floating-point addition is not associative, so a bulk sum
// (std::accumulate) or a compound right-hand side (`f += a + b`) applied on
// one side but not the other can differ in the last bit — enough to move a
// budget-abort point across engines and void the MSO bound.
//
// Sanctioned forms: `f += unit`, `++f`/`f++`, and literal resets
// (`f = 0.0`). The replay writeback (RestoreCharged) carries
// NOLINT(bouquet-charge-order) with its reason. Fixture:
// tests/static/lint/fixtures/fail_charge_order.cc.

#ifndef BOUQUET_TOOLS_LINT_PLUGIN_CHARGE_ORDER_CHECK_H_
#define BOUQUET_TOOLS_LINT_PLUGIN_CHARGE_ORDER_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace bouquet {

class ChargeOrderCheck : public ClangTidyCheck {
 public:
  ChargeOrderCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace bouquet
}  // namespace tidy
}  // namespace clang

#endif  // BOUQUET_TOOLS_LINT_PLUGIN_CHARGE_ORDER_CHECK_H_

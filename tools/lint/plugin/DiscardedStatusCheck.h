// bouquet-discarded-status: no silently dropped Status/Result.
//
// Status, Result<T>, and PageGuard are [[nodiscard]], so a plain discard is
// already a -Wunused-result warning (-Werror in CI). The one loophole is a
// (void) cast — and a loophole with no recorded reason is exactly how I/O
// errors vanish. This check flags every (void)-cast call; sanctioned drops
// carry NOLINT(bouquet-discarded-status) with the justification inline.
// Fixture: tests/static/lint/fixtures/fail_discarded_status.cc.

#ifndef BOUQUET_TOOLS_LINT_PLUGIN_DISCARDED_STATUS_CHECK_H_
#define BOUQUET_TOOLS_LINT_PLUGIN_DISCARDED_STATUS_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace bouquet {

class DiscardedStatusCheck : public ClangTidyCheck {
 public:
  DiscardedStatusCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace bouquet
}  // namespace tidy
}  // namespace clang

#endif  // BOUQUET_TOOLS_LINT_PLUGIN_DISCARDED_STATUS_CHECK_H_

// bouquet-determinism: no nondeterministic sources inside accounting-
// critical modules (src/executor, src/storage, src/ess, src/bouquet).
//
// The MSO guarantee needs the scalar engine, the batch metering tape, and
// the buffer-manager accounting simulation to produce bit-identical charged
// cost and abort points. Any value that differs between two runs of the
// same logical input — clocks, rand(), the environment, pointer-keyed
// ordering, unordered-container iteration order — can leak into that state
// and break replay equality in ways no unit test reliably catches.
//
// Escape: [[clang::annotate("bouquet::nondeterminism_ok")]] (spelled
// BOUQUET_NONDETERMINISM_OK, src/common/lint.h) on the enclosing function
// or record, for telemetry-only uses. Fixture:
// tests/static/lint/fixtures/fail_determinism.cc.

#ifndef BOUQUET_TOOLS_LINT_PLUGIN_DETERMINISM_CHECK_H_
#define BOUQUET_TOOLS_LINT_PLUGIN_DETERMINISM_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace bouquet {

class DeterminismCheck : public ClangTidyCheck {
 public:
  DeterminismCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace bouquet
}  // namespace tidy
}  // namespace clang

#endif  // BOUQUET_TOOLS_LINT_PLUGIN_DETERMINISM_CHECK_H_

// bouquet-trace-name: span/metric name literals passed to
// Tracer::Begin/BeginUnder/StartSpan/StartSpanUnder and
// MetricsRegistry::Get{Counter,Gauge,Histogram} must appear in
// scripts/trace_schema.json (known_span_names / known_metric_names).
//
// The trace-schema CI job validates emitted traces at run time; this check
// moves the same contract to analysis time, so a typo'd or unregistered
// name fails the build instead of the nightly. Non-literal names are
// flagged too: a name the schema checker cannot see is a name nobody
// audits. Option `TraceSchemaPath` points at the schema (set by
// run_static_analysis.sh). Fixture:
// tests/static/lint/fixtures/fail_trace_name.cc.

#ifndef BOUQUET_TOOLS_LINT_PLUGIN_TRACE_NAME_CHECK_H_
#define BOUQUET_TOOLS_LINT_PLUGIN_TRACE_NAME_CHECK_H_

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/StringSet.h"

namespace clang {
namespace tidy {
namespace bouquet {

class TraceNameCheck : public ClangTidyCheck {
 public:
  TraceNameCheck(StringRef Name, ClangTidyContext *Context);
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

 private:
  const std::string SchemaPath;
  bool SchemaLoaded = false;
  llvm::StringSet<> SpanNames;
  llvm::StringSet<> MetricNames;
};

}  // namespace bouquet
}  // namespace tidy
}  // namespace clang

#endif  // BOUQUET_TOOLS_LINT_PLUGIN_TRACE_NAME_CHECK_H_

#include "DeterminismCheck.h"

#include "BouquetLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace bouquet {

namespace {

/// The function containing a matched expression, found through the bound
/// ancestor (clang-tidy's matchers bind it for us below).
const FunctionDecl *EnclosingFunction(
    const MatchFinder::MatchResult &Result) {
  return Result.Nodes.getNodeAs<FunctionDecl>("func");
}

bool Escaped(const MatchFinder::MatchResult &Result) {
  const FunctionDecl *FD = EnclosingFunction(Result);
  return FD != nullptr && (HasAnnotation(FD, kNondetOkTag) ||
                           EnclosingScopeHasAnnotation(FD, kNondetOkTag));
}

}  // namespace

void DeterminismCheck::registerMatchers(MatchFinder *Finder) {
  auto InFunction = hasAncestor(functionDecl().bind("func"));

  // rand()/srand()/getenv(): free functions with global or environment
  // state. `now()` on any *_clock (steady_clock, system_clock, custom
  // clocks follow the naming convention).
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::rand", "::srand",
                                              "::std::rand", "::std::srand",
                                              "::getenv", "::std::getenv"))),
               InFunction)
          .bind("libcall"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasName("now"),
                   hasDeclContext(recordDecl(matchesName("_clock$"))))),
               InFunction)
          .bind("clock"),
      this);

  // std::random_device: flag its construction (every use starts there).
  Finder->addMatcher(
      cxxConstructExpr(hasType(cxxRecordDecl(hasName("::std::random_device"))),
                       InFunction)
          .bind("rng"),
      this);

  // Pointer-keyed ordered containers: iteration order is address order.
  Finder->addMatcher(
      valueDecl(hasType(classTemplateSpecializationDecl(
                    hasAnyName("::std::map", "::std::multimap", "::std::set",
                               "::std::multiset"),
                    hasTemplateArgument(0, refersToType(pointerType())))))
          .bind("ptrkey"),
      this);

  // Range-for over an unordered container: the emitted sequence (and any
  // abort-truncated prefix) depends on the hash function and load factor.
  Finder->addMatcher(
      cxxForRangeStmt(
          hasRangeInit(expr(hasType(cxxRecordDecl(hasAnyName(
              "::std::unordered_map", "::std::unordered_multimap",
              "::std::unordered_set", "::std::unordered_multiset"))))),
          InFunction)
          .bind("unordered_for"),
      this);
}

void DeterminismCheck::check(const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  StringRef Message;
  if (const auto *E = Result.Nodes.getNodeAs<CallExpr>("libcall")) {
    Loc = E->getBeginLoc();
    Message = "nondeterministic library call in an accounting-critical "
              "module; values from it must never feed charge/replay state";
  } else if (const auto *E = Result.Nodes.getNodeAs<CallExpr>("clock")) {
    Loc = E->getBeginLoc();
    Message = "wall-clock read in an accounting-critical module; annotate "
              "the enclosing function BOUQUET_NONDETERMINISM_OK if this is "
              "telemetry-only";
  } else if (const auto *E = Result.Nodes.getNodeAs<CXXConstructExpr>("rng")) {
    Loc = E->getBeginLoc();
    Message = "std::random_device in an accounting-critical module";
  } else if (const auto *D = Result.Nodes.getNodeAs<ValueDecl>("ptrkey")) {
    Loc = D->getBeginLoc();
    Message = "pointer-keyed ordered container: iteration order is "
              "address-dependent and differs across runs";
  } else if (const auto *S =
                 Result.Nodes.getNodeAs<CXXForRangeStmt>("unordered_for")) {
    Loc = S->getBeginLoc();
    Message = "iteration over an unordered container has unspecified order; "
              "sort keys first or annotate the enclosing function "
              "BOUQUET_NONDETERMINISM_OK";
  } else {
    return;
  }

  if (!Loc.isValid()) return;
  StringRef File = Result.SourceManager->getFilename(
      Result.SourceManager->getSpellingLoc(Loc));
  if (!IsAccountingPath(File)) return;
  if (Escaped(Result)) return;
  if (const auto *D = Result.Nodes.getNodeAs<ValueDecl>("ptrkey")) {
    if (HasAnnotation(D, kNondetOkTag) ||
        EnclosingScopeHasAnnotation(D, kNondetOkTag)) {
      return;
    }
  }
  diag(Loc, "%0") << Message;
}

}  // namespace bouquet
}  // namespace tidy
}  // namespace clang

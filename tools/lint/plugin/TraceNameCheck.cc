#include "TraceNameCheck.h"

#include "BouquetLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/JSON.h"
#include "llvm/Support/MemoryBuffer.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace bouquet {

TraceNameCheck::TraceNameCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      SchemaPath(Options.get("TraceSchemaPath", "scripts/trace_schema.json")) {
  auto Buf = llvm::MemoryBuffer::getFile(SchemaPath);
  if (!Buf) return;
  auto Parsed = llvm::json::parse((*Buf)->getBuffer());
  if (!Parsed) {
    llvm::consumeError(Parsed.takeError());
    return;
  }
  const auto *Obj = Parsed->getAsObject();
  if (Obj == nullptr) return;
  auto Load = [Obj](StringRef Key, llvm::StringSet<> *Out) {
    if (const auto *Arr = Obj->getArray(Key)) {
      for (const auto &V : *Arr) {
        if (auto S = V.getAsString()) Out->insert(*S);
      }
    }
  };
  Load("known_span_names", &SpanNames);
  Load("known_metric_names", &MetricNames);
  SchemaLoaded = true;
}

void TraceNameCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "TraceSchemaPath", SchemaPath);
}

void TraceNameCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("Begin", "BeginUnder", "StartSpan",
                              "StartSpanUnder"),
                   hasDeclContext(recordDecl(hasName("Tracer"))))))
          .bind("span_call"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("GetCounter", "GetGauge", "GetHistogram"),
                   hasDeclContext(recordDecl(hasName("MetricsRegistry"))))))
          .bind("metric_call"),
      this);
}

void TraceNameCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *SpanCall = Result.Nodes.getNodeAs<CallExpr>("span_call");
  const auto *MetricCall = Result.Nodes.getNodeAs<CallExpr>("metric_call");
  const CallExpr *Call = SpanCall != nullptr ? SpanCall : MetricCall;
  if (Call == nullptr || !SchemaLoaded) return;

  // Find the name argument: the first parameter of type const char*/
  // StringRef by position — Tracer::Begin takes the tracer first, the
  // member spellings take the name first.
  const Expr *NameArg = nullptr;
  for (unsigned I = 0; I < Call->getNumArgs(); ++I) {
    const Expr *Arg = Call->getArg(I)->IgnoreParenImpCasts();
    if (Arg->getType()->isPointerType() || isa<StringLiteral>(Arg)) {
      NameArg = Arg;
      break;
    }
  }
  if (NameArg == nullptr) return;

  StringRef What = SpanCall != nullptr ? "span" : "metric";
  const llvm::StringSet<> &Names =
      SpanCall != nullptr ? SpanNames : MetricNames;

  const auto *Lit = dyn_cast<StringLiteral>(NameArg);
  if (Lit == nullptr) {
    diag(Call->getBeginLoc(),
         "non-literal %0 name defeats schema checking; pass a literal from "
         "scripts/trace_schema.json")
        << What;
    return;
  }
  if (!Names.contains(Lit->getString())) {
    diag(Lit->getBeginLoc(),
         "%0 name \"%1\" is not in scripts/trace_schema.json; add it to the "
         "schema (and teach the trace-schema CI job) or fix the typo")
        << What << Lit->getString();
  }
}

}  // namespace bouquet
}  // namespace tidy
}  // namespace clang

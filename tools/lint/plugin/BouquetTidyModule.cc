// clang-tidy module registering the bouquet-* check family. Built as a
// shared library and loaded with `clang-tidy -load libbouquet_tidy.so
// -checks='bouquet-*'` (run_static_analysis.sh does this when the plugin
// was built). The portable fallback engine ../bouquet_lint.py implements
// the same five checks token-level; both are validated against the same
// fixtures by scripts/check_lint_fixtures.py, which is what keeps the two
// implementations honest relative to each other.

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "ChargeOrderCheck.h"
#include "DeterminismCheck.h"
#include "DiscardedStatusCheck.h"
#include "PageGuardCheck.h"
#include "TraceNameCheck.h"

namespace clang {
namespace tidy {
namespace bouquet {

class BouquetModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<DeterminismCheck>("bouquet-determinism");
    Factories.registerCheck<ChargeOrderCheck>("bouquet-charge-order");
    Factories.registerCheck<PageGuardCheck>("bouquet-page-guard");
    Factories.registerCheck<DiscardedStatusCheck>("bouquet-discarded-status");
    Factories.registerCheck<TraceNameCheck>("bouquet-trace-name");
  }
};

static ClangTidyModuleRegistry::Add<BouquetModule> X(
    "bouquet-module",
    "Domain-invariant checks for the plan-bouquet MSO guarantee: "
    "determinism, charge order, pin discipline, status handling, and "
    "trace-schema conformance.");

}  // namespace bouquet
}  // namespace tidy

// Anchor so -load keeps the registration object file.
volatile int BouquetTidyModuleAnchorSource = 0;

}  // namespace clang

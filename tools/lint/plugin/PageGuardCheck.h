// bouquet-page-guard: outside src/storage/buffer_manager.*, results of
// BufferManager::Pin/PinNew must be bound to a PageGuard, and Unpin is
// never called directly.
//
// A temporary-consumed pin (`bm.Pin(id).data()[0]`) releases the frame at
// the end of the full expression, so the pointer read races eviction; a
// discarded pin is a pin/unpin pulse that perturbs pinned_frames/
// pinned_peak telemetry; a direct Unpin bypasses the guard's dirty-flag
// bookkeeping. [[nodiscard]] on PageGuard catches plain discards at
// compile time — this check closes the temporary-consumption and direct-
// Unpin gaps the attribute cannot see. Fixture:
// tests/static/lint/fixtures/fail_page_guard.cc.

#ifndef BOUQUET_TOOLS_LINT_PLUGIN_PAGE_GUARD_CHECK_H_
#define BOUQUET_TOOLS_LINT_PLUGIN_PAGE_GUARD_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace bouquet {

class PageGuardCheck : public ClangTidyCheck {
 public:
  PageGuardCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace bouquet
}  // namespace tidy
}  // namespace clang

#endif  // BOUQUET_TOOLS_LINT_PLUGIN_PAGE_GUARD_CHECK_H_

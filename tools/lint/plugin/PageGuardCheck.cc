#include "PageGuardCheck.h"

#include "BouquetLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace bouquet {

void PageGuardCheck::registerMatchers(MatchFinder *Finder) {
  // Any Unpin() member call: sites outside buffer_manager.* are filtered
  // by path in check(). Matching by name (not class) intentionally also
  // covers mocks/stand-ins — the discipline is repo-wide.
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasName("Unpin"))))
          .bind("unpin"),
      this);

  // Pin/PinNew consumed as a temporary: a member access hangs directly off
  // the call result.
  Finder->addMatcher(
      memberExpr(hasObjectExpression(ignoringParenImpCasts(
                     cxxMemberCallExpr(
                         callee(cxxMethodDecl(hasAnyName("Pin", "PinNew"))))
                         .bind("pin_temp"))))
          .bind("temp_use"),
      this);

  // Pin/PinNew as a discarded full expression (the result is destroyed at
  // the ';'): the call's immediate non-cleanup parent is a CompoundStmt.
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName("Pin", "PinNew"))))
          .bind("pin"),
      this);
}

void PageGuardCheck::check(const MatchFinder::MatchResult &Result) {
  auto InScope = [&](SourceLocation Loc) {
    if (!Loc.isValid()) return false;
    StringRef File = Result.SourceManager->getFilename(
        Result.SourceManager->getSpellingLoc(Loc));
    return !File.empty() && !IsBufferManagerFile(File);
  };

  if (const auto *Unpin =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("unpin")) {
    if (!InScope(Unpin->getBeginLoc())) return;
    diag(Unpin->getBeginLoc(),
         "direct Unpin() call; page pins are released only by their owning "
         "PageGuard");
    return;
  }

  if (const auto *Pin =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("pin_temp")) {
    if (!InScope(Pin->getBeginLoc())) return;
    diag(Pin->getBeginLoc(),
         "%0() result consumed as a temporary; the pin is released at the "
         "end of the statement — bind it to a PageGuard for the access "
         "lifetime")
        << Pin->getMethodDecl();
    return;
  }

  const auto *Pin = Result.Nodes.getNodeAs<CXXMemberCallExpr>("pin");
  if (Pin == nullptr || !InScope(Pin->getBeginLoc())) return;
  // Walk past implicit nodes to the first semantic parent; a discarded call
  // sits (via ExprWithCleanups) directly under a CompoundStmt.
  DynTypedNode Node = DynTypedNode::create(*Pin);
  ASTContext &Ctx = *Result.Context;
  for (;;) {
    auto Parents = Ctx.getParents(Node);
    if (Parents.empty()) return;
    Node = Parents[0];
    if (Node.get<ExprWithCleanups>() != nullptr ||
        Node.get<CXXBindTemporaryExpr>() != nullptr ||
        Node.get<MaterializeTemporaryExpr>() != nullptr ||
        Node.get<ImplicitCastExpr>() != nullptr) {
      continue;
    }
    break;
  }
  if (Node.get<CompoundStmt>() != nullptr) {
    diag(Pin->getBeginLoc(),
         "%0() result is not bound to a PageGuard; a discarded pin is an "
         "unpin pulse that distorts pin telemetry and can never be read")
        << Pin->getMethodDecl();
  }
}

}  // namespace bouquet
}  // namespace tidy
}  // namespace clang

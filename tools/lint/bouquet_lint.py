#!/usr/bin/env python3
"""Portable engine for the bouquet-* domain lint checks.

The checks encode repo-specific invariants the MSO guarantee depends on
(see DESIGN.md section 13 for the catalog):

  bouquet-determinism       no nondeterministic sources (clocks, rand,
                            getenv, pointer-keyed ordering, iteration over
                            unordered containers) inside accounting-critical
                            modules: src/executor, src/storage, src/ess,
                            src/bouquet. Escape: BOUQUET_NONDETERMINISM_OK
                            on the enclosing function (common/lint.h).
  bouquet-charge-order      fields tagged BOUQUET_CHARGED mutate only one
                            scalar add at a time (`f += unit`, `++f`) or by
                            literal reset (`f = 0.0`); std::accumulate and
                            friends are banned in accounting modules. Bulk
                            or reassociated sums change FP association and
                            can move a budget-abort point across engines.
  bouquet-page-guard        outside src/storage/buffer_manager.*, results
                            of BufferManager::Pin/PinNew must be bound to a
                            PageGuard (no discarded or temporary-consumed
                            pins) and Unpin is never called directly.
  bouquet-discarded-status  `(void)call(...)` casts require a recorded
                            justification; plain discards of Status /
                            Result<T> / PageGuard are compile errors via
                            [[nodiscard]], and the cast is the only
                            loophole, so the loophole needs a reason.
  bouquet-trace-name        span/metric name literals passed to
                            Tracer::Begin/BeginUnder/StartSpan and
                            MetricsRegistry::Get{Counter,Gauge,Histogram}
                            must appear in scripts/trace_schema.json, so
                            schema drift fails at analysis time instead of
                            in the runtime trace-schema CI job.

Statement-level escapes use clang-tidy comment syntax, which this engine
honors too: `// NOLINT(bouquet-…): reason` and `// NOLINTNEXTLINE(bouquet-…)`.

Output format matches clang-tidy (`file:line:col: warning: msg [check]`) so
scripts/check_lint_fixtures.py can drive either engine. Exit codes:
0 = clean, 1 = findings, 2 = usage/configuration error. Stdlib only.

This engine is intentionally token-level (with comment/string stripping and
brace matching, not a real parser): it runs everywhere, including build
images without Clang. The clang-tidy plugin in this directory implements
the same checks AST-accurately and is loaded by run_static_analysis.sh
whenever Clang development headers are available.
"""

import argparse
import bisect
import json
import os
import re
import sys

ALL_CHECKS = (
    "bouquet-determinism",
    "bouquet-charge-order",
    "bouquet-page-guard",
    "bouquet-discarded-status",
    "bouquet-trace-name",
)

# Modules whose code feeds charged cost, abort points, or replay state.
# tests/static/lint/ opts its fixtures in so the self-test gate exercises
# the module-scoped checks.
ACCOUNTING_DIRS = re.compile(
    r"(^|/)(src/(executor|storage|ess|bouquet)|tests/static/lint)/")

BUFFER_MANAGER_FILES = re.compile(r"(^|/)src/storage/buffer_manager\.(h|cc)$")

NOLINT_RE = re.compile(r"NOLINT(NEXTLINE)?(?:\(([^)]*)\))?")


class SourceFile:
    """A file plus comment/string-stripped views and NOLINT bookkeeping."""

    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel
        self.text = text
        self.clean = strip_comments_and_strings(text)
        # line starts for offset -> (line, col)
        self.line_starts = [0]
        for m in re.finditer(r"\n", text):
            self.line_starts.append(m.end())
        self.nolint = self._collect_nolint(text)

    def linecol(self, offset):
        line = bisect.bisect_right(self.line_starts, offset)
        col = offset - self.line_starts[line - 1] + 1
        return line, col

    def _collect_nolint(self, text):
        """Maps line number -> set of suppressed checks ('*' = all)."""
        suppressed = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in NOLINT_RE.finditer(line):
                target = lineno + 1 if m.group(1) else lineno
                checks = m.group(2)
                entry = suppressed.setdefault(target, set())
                if checks is None:
                    entry.add("*")
                else:
                    entry.update(c.strip() for c in checks.split(","))
        return suppressed

    def suppressed(self, lineno, check):
        entry = self.nolint.get(lineno, ())
        return "*" in entry or check in entry


def strip_comments_and_strings(text):
    """Replaces comments and string/char literal bodies with spaces,
    preserving offsets and newlines so positions map 1:1."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            for k in range(i + 1, min(j, n)):
                out[k] = " "
            i = min(j, n - 1) + 1
        else:
            i += 1
    return "".join(out)


def match_brace_span(clean, open_idx):
    """Returns offset just past the brace matching clean[open_idx] == '{'."""
    depth = 0
    for i in range(open_idx, len(clean)):
        if clean[i] == "{":
            depth += 1
        elif clean[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(clean)


def statement_start(clean, idx):
    """Offset just past the previous ';', '{', or '}' before idx."""
    for i in range(idx - 1, -1, -1):
        if clean[i] in ";{}":
            return i + 1
    return 0


def call_close_paren(clean, open_idx):
    """Offset of the ')' matching clean[open_idx] == '('."""
    depth = 0
    for i in range(open_idx, len(clean)):
        if clean[i] == "(":
            depth += 1
        elif clean[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(clean) - 1


class Finding:
    def __init__(self, src, offset, check, message):
        self.src = src
        self.line, self.col = src.linecol(offset)
        self.check = check
        self.message = message

    def render(self):
        return (f"{self.src.rel}:{self.line}:{self.col}: warning: "
                f"{self.message} [{self.check}]")


def report(findings, src, offset, check, message):
    f = Finding(src, offset, check, message)
    if not src.suppressed(f.line, check):
        findings.append(f)


# --------------------------------------------------------------------------
# bouquet-determinism
# --------------------------------------------------------------------------

NONDET_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*random_device\b|\brandom_device\b"),
     "std::random_device is a nondeterministic source"),
    (re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("),
     "rand()/srand() is a nondeterministic (global-state) source"),
    (re.compile(r"\b(?:std\s*::\s*)?getenv\s*\("),
     "getenv() makes accounting depend on the environment"),
    (re.compile(r"\b\w*_clock\s*::\s*now\s*\("),
     "wall-clock reads are nondeterministic"),
    # Pointer in the KEY position only: `map<T*, …>` / `set<T*>`; pointer
    # values (`map<string, T*>`) order by their deterministic keys.
    (re.compile(r"\bstd\s*::\s*(?:multi)?(?:map|set)\s*<\s*[^,<>;]*\*\s*[,>]"),
     "pointer-keyed ordered container: iteration order is address-dependent"),
)

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<")
DECL_NAME_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:GUARDED_BY\s*\([^)]*\)\s*)?"
                          r"(?:=[^;]*)?;")
ESCAPE_MACRO = "BOUQUET_NONDETERMINISM_OK"


def nondet_escape_spans(src):
    """Character spans covered by a BOUQUET_NONDETERMINISM_OK annotation:
    from the macro through the end of the next brace-matched body."""
    spans = []
    for m in re.finditer(re.escape(ESCAPE_MACRO), src.clean):
        open_idx = src.clean.find("{", m.end())
        if open_idx == -1:
            spans.append((m.start(), len(src.clean)))
        else:
            spans.append((m.start(), match_brace_span(src.clean, open_idx)))
    return spans


def unordered_names(src):
    """Identifiers declared (in this file) with an unordered container type.
    Heuristic: the declarator name is the identifier that ends the
    declaration statement containing `unordered_…<`."""
    names = set()
    flat = re.sub(r"\s+", " ", src.clean)
    for m in UNORDERED_DECL_RE.finditer(flat):
        # Walk to the ';' closing this declaration, skipping nested <>/().
        tail = flat[m.start():flat.find(";", m.start()) + 1]
        dm = DECL_NAME_RE.search(tail)
        if dm:
            names.add(dm.group(1))
    # Common aliases in this codebase: iterating `.first`/`second` of a
    # `where`-style map via an iterator also counts, but plain heuristics
    # stop at declared names.
    return names


def check_determinism(src, findings):
    if not ACCOUNTING_DIRS.search(src.rel):
        return
    escapes = nondet_escape_spans(src)

    def escaped(offset):
        return any(a <= offset < b for a, b in escapes)

    for pattern, message in NONDET_PATTERNS:
        for m in pattern.finditer(src.clean):
            if not escaped(m.start()):
                report(findings, src, m.start(), "bouquet-determinism",
                       message)
    names = unordered_names(src)
    if not names:
        return
    alt = "|".join(re.escape(n) for n in sorted(names))
    # Range-for over an unordered member/variable declared in this file, or
    # explicit iterator walks over one.
    iter_res = (
        re.compile(r"for\s*\([^;()]*:\s*(?:[\w.\->]+(?:->|\.))?(" + alt +
                   r")\s*\)"),
        re.compile(r"\b(" + alt + r")\s*(?:\.|->)\s*c?begin\s*\("),
    )
    for rex in iter_res:
        for m in rex.finditer(src.clean):
            if not escaped(m.start()):
                report(
                    findings, src, m.start(), "bouquet-determinism",
                    f"iteration over unordered container '{m.group(1)}' has "
                    "unspecified order; sort keys first or annotate the "
                    "enclosing function BOUQUET_NONDETERMINISM_OK if the "
                    "order provably never feeds charge/replay state")


# --------------------------------------------------------------------------
# bouquet-charge-order
# --------------------------------------------------------------------------

CHARGED_DECL_RE = re.compile(
    r"BOUQUET_CHARGED\s+[\w:<>,\s]*?\b([A-Za-z_]\w*)\s*(?:=[^;]*)?;")
BULK_REDUCE_RE = re.compile(
    r"\bstd\s*::\s*(accumulate|reduce|transform_reduce|inner_product)\s*\(")
NUMERIC_LITERAL_RE = re.compile(r"^[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?"
                                r"[fFlLuU]*$")


def collect_charged_fields(sources):
    names = set()
    for src in sources:
        for m in CHARGED_DECL_RE.finditer(src.clean):
            names.add(m.group(1))
    return names


def top_level_additive(expr):
    """True if expr has a top-level binary +/- (reassociable compound)."""
    depth = 0
    prev = " "
    for i, c in enumerate(expr):
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif c in "+-" and depth == 0:
            nxt = expr[i + 1] if i + 1 < len(expr) else " "
            # unary sign / increment / member-arrow are not binary adds
            if c == "-" and nxt == ">":
                continue
            if nxt == c:  # ++ / --
                continue
            if prev.strip() == "" and i == 0:
                continue  # leading unary sign
            if prev in "eE" and nxt.isdigit():
                continue  # exponent literal like 1e-3
            if prev in "=(,+*-/%<>&|^ " and prev != " ":
                continue  # unary after operator
            return True
        if not c.isspace():
            prev = c
    return False


def check_charge_order(src, findings, charged):
    if not ACCOUNTING_DIRS.search(src.rel):
        return
    for m in BULK_REDUCE_RE.finditer(src.clean):
        report(findings, src, m.start(), "bouquet-charge-order",
               f"std::{m.group(1)} is a reassociable bulk reduction; "
               "charges must be applied one scalar add at a time")
    if not charged:
        return
    alt = "|".join(re.escape(n) for n in sorted(charged))
    mut_re = re.compile(
        r"\b(" + alt + r")\s*(\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|=)([^;=]"
        r"[^;]*);")
    for m in mut_re.finditer(src.clean):
        name, op, rhs = m.group(1), m.group(2), m.group(3).strip()
        if op == "=":
            if rhs and NUMERIC_LITERAL_RE.match(rhs):
                continue  # literal reset (Reset(), zero-init)
            report(findings, src, m.start(), "bouquet-charge-order",
                   f"assignment to charged field '{name}' from a non-literal "
                   "expression; charges accrue only through scalar adds "
                   "(replay writebacks need an explicit NOLINT with reason)")
        elif op == "+=":
            if top_level_additive(rhs):
                report(findings, src, m.start(), "bouquet-charge-order",
                       f"compound add to charged field '{name}' sums multiple "
                       "terms in one expression; the reassociation changes "
                       "FP charge order — apply one term per statement")
        else:
            report(findings, src, m.start(), "bouquet-charge-order",
                   f"operator '{op}' on charged field '{name}'; charges are "
                   "monotone scalar adds")


# --------------------------------------------------------------------------
# bouquet-page-guard
# --------------------------------------------------------------------------

PIN_CALL_RE = re.compile(r"(?:\.|->)\s*(Pin|PinNew)\s*\(")
UNPIN_CALL_RE = re.compile(r"(?:\.|->)\s*Unpin\s*\(")


def check_page_guard(src, findings):
    if BUFFER_MANAGER_FILES.search(src.rel):
        return
    for m in UNPIN_CALL_RE.finditer(src.clean):
        report(findings, src, m.start(), "bouquet-page-guard",
               "direct Unpin() call; page pins are released only by their "
               "owning PageGuard")
    for m in PIN_CALL_RE.finditer(src.clean):
        start = statement_start(src.clean, m.start())
        head = src.clean[start:m.start()]
        close = call_close_paren(src.clean, src.clean.find("(", m.end() - 1))
        tail = src.clean[close + 1:close + 4].lstrip()
        if tail.startswith(".") or tail.startswith("->"):
            report(findings, src, m.start(), "bouquet-page-guard",
                   f"{m.group(1)}() result consumed as a temporary; the pin "
                   "is released at the end of the statement — bind it to a "
                   "PageGuard for the access lifetime")
            continue
        if "=" not in head and "return" not in head:
            report(findings, src, m.start(), "bouquet-page-guard",
                   f"{m.group(1)}() result is not bound to a PageGuard; a "
                   "discarded pin is an unpin pulse that distorts pin "
                   "telemetry and can never be read")


# --------------------------------------------------------------------------
# bouquet-discarded-status
# --------------------------------------------------------------------------

VOID_CAST_RE = re.compile(r"\(\s*void\s*\)\s*([A-Za-z_:][\w:.\->]*\s*\()")


def check_discarded_status(src, findings):
    for m in VOID_CAST_RE.finditer(src.clean):
        report(findings, src, m.start(), "bouquet-discarded-status",
               "(void)-cast silently discards a call result; Status/Result "
               "are [[nodiscard]] and the cast is the only loophole — "
               "handle the result or add NOLINT(bouquet-discarded-status) "
               "with the reason it is safe to drop")


# --------------------------------------------------------------------------
# bouquet-trace-name
# --------------------------------------------------------------------------

SPAN_CALL_RE = re.compile(
    r"(?:Tracer\s*::\s*Begin(?:Under)?|(?:\.|->)\s*StartSpan)\s*\(")
METRIC_CALL_RE = re.compile(r"(?:\.|->)\s*Get(Counter|Gauge|Histogram)\s*\(")
STRING_LIT_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def first_literal_in_call(src, open_paren):
    close = call_close_paren(src.clean, open_paren)
    m = STRING_LIT_RE.search(src.text, open_paren, close)
    return m


def is_declaration_context(clean, idx):
    """True when the qualified name starting at idx is preceded by a type
    (return type of a declaration/definition) rather than an expression."""
    i = idx - 1
    while i >= 0 and (clean[i].isalnum() or clean[i] in "_:"):
        i -= 1  # swallow enclosing qualifiers like `obs::`
    while i >= 0 and clean[i].isspace():
        i -= 1
    if i < 0 or not (clean[i].isalnum() or clean[i] in "_>*&"):
        return False
    j = i
    while j >= 0 and (clean[j].isalnum() or clean[j] == "_"):
        j -= 1
    return clean[j + 1:i + 1] != "return"


def check_trace_name(src, findings, schema):
    if schema is None or not re.search(r"(^|/)(src|tests/static/lint)/",
                                       src.rel):
        return
    span_names = set(schema.get("known_span_names", ()))
    metric_names = set(schema.get("known_metric_names", ()))
    for rex, names, what in ((SPAN_CALL_RE, span_names, "span"),
                             (METRIC_CALL_RE, metric_names, "metric")):
        for m in rex.finditer(src.clean):
            if is_declaration_context(src.clean, m.start()):
                continue  # `Span Tracer::Begin(...)` definition, not a call
            open_paren = src.clean.find("(", m.end() - 1)
            lit = first_literal_in_call(src, open_paren)
            if lit is None:
                report(findings, src, m.start(), "bouquet-trace-name",
                       f"non-literal {what} name defeats schema checking; "
                       "pass a literal from scripts/trace_schema.json")
            elif lit.group(1) not in names:
                report(findings, src, lit.start(), "bouquet-trace-name",
                       f'{what} name "{lit.group(1)}" is not in '
                       "scripts/trace_schema.json; add it to the schema "
                       "(and teach the trace-schema CI job) or fix the typo")


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

def load_sources(root, paths):
    sources = []
    for p in sorted(paths):
        ap = os.path.abspath(p)
        rel = os.path.relpath(ap, root).replace(os.sep, "/")
        try:
            with open(ap, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"error: cannot read {p}: {e}", file=sys.stderr)
            sys.exit(2)
        sources.append(SourceFile(ap, rel, text))
    return sources


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="C++ sources/headers to lint")
    ap.add_argument("--root", default=None,
                    help="repo root for module scoping (default: nearest "
                    "ancestor of this script)")
    ap.add_argument("--schema", default=None,
                    help="trace_schema.json path (default: "
                    "<root>/scripts/trace_schema.json)")
    ap.add_argument("--checks", default=",".join(ALL_CHECKS),
                    help="comma-separated subset of checks to run")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        print("\n".join(ALL_CHECKS))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    enabled = {c.strip() for c in args.checks.split(",") if c.strip()}
    unknown = enabled.difference(ALL_CHECKS)
    if unknown:
        print(f"error: unknown checks: {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    schema = None
    schema_path = args.schema or os.path.join(root, "scripts",
                                              "trace_schema.json")
    if os.path.exists(schema_path):
        with open(schema_path, "r", encoding="utf-8") as f:
            schema = json.load(f)
    elif "bouquet-trace-name" in enabled:
        print(f"error: trace schema not found at {schema_path} "
              "(needed by bouquet-trace-name; pass --schema)",
              file=sys.stderr)
        return 2

    sources = load_sources(root, args.files)
    charged = collect_charged_fields(sources)
    findings = []
    for src in sources:
        if "bouquet-determinism" in enabled:
            check_determinism(src, findings)
        if "bouquet-charge-order" in enabled:
            check_charge_order(src, findings, charged)
        if "bouquet-page-guard" in enabled:
            check_page_guard(src, findings)
        if "bouquet-discarded-status" in enabled:
            check_discarded_status(src, findings)
        if "bouquet-trace-name" in enabled:
            check_trace_name(src, findings, schema)

    findings.sort(key=lambda f: (f.src.rel, f.line, f.col, f.check))
    for f in findings:
        print(f.render())
    if findings:
        print(f"bouquet-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Zero-findings sweep: run every bouquet-* check over the repo's sources.

Thin wrapper around bouquet_lint.py that discovers the file set at run time
(so ctest and run_static_analysis.sh share one definition of "the sweep"
instead of each globbing its own): all *.cc/*.h under src/, which is the
surface the checks are scoped to. Exit codes pass through the engine's:
0 = clean, 1 = findings, 2 = configuration error.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bouquet_lint  # noqa: E402


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--checks", default=",".join(bouquet_lint.ALL_CHECKS))
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    files = []
    for dirpath, _, names in os.walk(os.path.join(root, "src")):
        for name in names:
            if name.endswith((".cc", ".h")):
                files.append(os.path.join(dirpath, name))
    if not files:
        print(f"error: no sources under {root}/src", file=sys.stderr)
        return 2
    return bouquet_lint.main(
        ["--root", root, "--checks", args.checks] + sorted(files))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

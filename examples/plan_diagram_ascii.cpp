// Visualizing a 2D plan diagram, its isocost contours, and a bouquet
// discovery trajectory as ASCII art — the textual analogue of the paper's
// Figures 6 and 9.
//
// Letters = optimal plan regions (the plan diagram). '#' overlays the
// frontier points of the isocost contours. The second map shows one
// optimized-bouquet run: '*' marks the q_run trajectory climbing from the
// origin (bottom-left) toward the actual location '@'.
//
// Build & run:  ./build/examples/plan_diagram_ascii [sel1 sel2]

#include <cstdio>
#include <cstdlib>
#include <set>

#include "bouquet/bouquet.h"
#include "bouquet/simulator.h"
#include "common/str_util.h"
#include "ess/posp_generator.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

int main(int argc, char** argv) {
  using namespace bouquet;
  double s1 = 0.3, s2 = 0.5;
  if (argc == 3) {
    s1 = std::atof(argv[1]);
    s2 = std::atof(argv[2]);
  }

  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec query = Make2DHQ8a(tpch);
  const EssGrid grid(query, {48, 48});
  QueryOptimizer opt(query, tpch, CostParams::Postgres());
  const PlanDiagram diagram =
      GeneratePosp(query, tpch, CostParams::Postgres(), grid);
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);

  std::printf("2D plan diagram for %s (x = %s, y = %s), %d POSP plans\n\n",
              query.name.c_str(), query.error_dims[0].label.c_str(),
              query.error_dims[1].label.c_str(), diagram.num_plans());

  // Contour membership lookup.
  std::set<uint64_t> frontier;
  for (const auto& c : bouquet.contours) {
    frontier.insert(c.points.begin(), c.points.end());
  }

  // Map plan ids to letters by region size (largest = 'A').
  const auto fractions = diagram.RegionFractions();
  std::vector<int> order(diagram.num_plans());
  for (int i = 0; i < diagram.num_plans(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return fractions[a] > fractions[b];
  });
  std::vector<char> letter(diagram.num_plans(), '?');
  for (size_t i = 0; i < order.size(); ++i) {
    letter[order[i]] =
        i < 26 ? static_cast<char>('A' + i)
               : static_cast<char>('a' + std::min<size_t>(i - 26, 25));
  }

  // Panel 1: plan regions + contour frontier.
  for (int y = grid.resolution(1) - 1; y >= 0; --y) {
    std::printf("  ");
    for (int x = 0; x < grid.resolution(0); ++x) {
      const uint64_t linear = grid.LinearIndex({x, y});
      const char c = frontier.count(linear) ? '#'
                                            : letter[diagram.plan_at(linear)];
      std::putchar(c);
    }
    std::putchar('\n');
  }
  std::printf("  (x: %s .. %s, y likewise; '#' = isocost contour "
              "frontiers)\n\n",
              FormatPct(grid.axis(0).front()).c_str(),
              FormatPct(grid.axis(0).back()).c_str());

  std::printf("  Plans by region share:");
  for (size_t i = 0; i < order.size() && i < 8; ++i) {
    std::printf("  %c=%.0f%%", letter[order[i]], fractions[order[i]] * 100);
  }
  std::printf("\n\n");

  // Panel 2: a discovery trajectory.
  const GridPoint qa_pt = {grid.AxisFloor(0, s1), grid.AxisFloor(1, s2)};
  const uint64_t qa = grid.LinearIndex(qa_pt);
  BouquetSimulator sim(bouquet, diagram, &opt);
  const SimResult run = sim.RunOptimized(qa);
  std::set<uint64_t> trajectory;
  for (const GridPoint& p : run.qrun_trace) {
    trajectory.insert(grid.LinearIndex(p));
  }
  std::printf("Optimized bouquet discovery toward q_a = (%s, %s): %d "
              "executions, sub-optimality %.2f\n\n",
              FormatPct(grid.axis(0)[qa_pt[0]]).c_str(),
              FormatPct(grid.axis(1)[qa_pt[1]]).c_str(), run.num_executions,
              sim.SubOpt(run, qa));
  for (int y = grid.resolution(1) - 1; y >= 0; --y) {
    std::printf("  ");
    for (int x = 0; x < grid.resolution(0); ++x) {
      const uint64_t linear = grid.LinearIndex({x, y});
      char c = '.';
      if (frontier.count(linear)) c = '#';
      if (trajectory.count(linear)) c = '*';
      if (linear == qa) c = '@';
      std::putchar(c);
    }
    std::putchar('\n');
  }
  std::printf("  ('*' = q_run trajectory from the origin, '@' = actual "
              "location, '#' = contours)\n");
  return 0;
}

// Side-by-side robustness comparison of the three strategies the paper
// evaluates — the native optimizer (NAT), SEER robust plan selection, and
// the plan bouquet (BOU) — on any of the ten benchmark error spaces.
//
// Build & run:  ./build/examples/compare_baselines [space_name]
// Space names: 3D_H_Q5 3D_H_Q7 4D_H_Q8 5D_H_Q7 3D_DS_Q15 3D_DS_Q96
//              4D_DS_Q7 4D_DS_Q26 4D_DS_Q91 5D_DS_Q19

#include <cstdio>
#include <string>

#include "bouquet/bounds.h"
#include "bouquet/bouquet.h"
#include "bouquet/simulator.h"
#include "ess/posp_generator.h"
#include "robustness/metrics.h"
#include "robustness/native.h"
#include "robustness/seer.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

int main(int argc, char** argv) {
  using namespace bouquet;
  const std::string name = argc > 1 ? argv[1] : "3D_DS_Q96";

  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace(name, tpch, tpcds);
  const Catalog& catalog = space.benchmark == "H" ? tpch : tpcds;
  std::printf("Error space %s: %zu relations, %d error-prone join "
              "selectivities\n",
              name.c_str(), space.query.tables.size(), space.query.NumDims());

  const EssGrid grid = EssGrid::WithDefaultResolution(space.query);
  QueryOptimizer opt(space.query, catalog, CostParams::Postgres());
  PospStats stats;
  const PlanDiagram diagram =
      GeneratePosp(space.query, catalog, CostParams::Postgres(), grid,
                   PospOptions{}, &stats);
  std::printf("POSP: %d plans over %llu locations (%.2fs compile time)\n\n",
              diagram.num_plans(),
              static_cast<unsigned long long>(grid.num_points()),
              stats.wall_seconds);

  // NAT.
  const RobustnessProfile nat = ComputeNativeProfile(diagram, &opt);
  // SEER.
  const SeerResult seer_red = SeerReduce(diagram, &opt, 0.2);
  const RobustnessProfile seer =
      ComputeAssignmentProfile(diagram, &opt, seer_red.plan_at);
  // BOU.
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);
  BouquetSimulator sim(bouquet, diagram, &opt);
  const BouquetProfile basic = ComputeBouquetProfile(sim, false);
  const BouquetProfile optimized = ComputeBouquetProfile(sim, true);

  std::printf("%-24s %-10s %-10s %-8s %-10s\n", "strategy", "MSO", "ASO",
              "plans", "MaxHarm");
  std::printf("%-24s %-10.3g %-10.3g %-8d %-10s\n", "NAT (native)", nat.mso,
              nat.aso, nat.num_plans, "-");
  std::printf("%-24s %-10.3g %-10.3g %-8d %-10.2f\n", "SEER", seer.mso,
              seer.aso, seer_red.plans_after,
              MaxHarm(seer.subopt_worst, nat.subopt_worst));
  std::printf("%-24s %-10.3g %-10.3g %-8d %-10.2f\n", "BOU (basic)",
              basic.mso, basic.aso, bouquet.cardinality(),
              MaxHarm(basic.subopt, nat.subopt_worst));
  std::printf("%-24s %-10.3g %-10.3g %-8d %-10.2f\n", "BOU (optimized)",
              optimized.mso, optimized.aso, bouquet.cardinality(),
              MaxHarm(optimized.subopt, nat.subopt_worst));
  std::printf("\nBOU guarantee: MSO <= %.1f; avg partial executions: basic "
              "%.1f, optimized %.1f\n",
              MultiDMsoBound(2.0, bouquet.rho(), 0.2), basic.avg_executions,
              optimized.avg_executions);
  return 0;
}

// The "canned query" deployment loop (Section 4.2): compile the bouquet
// once, persist it, then serve many invocations — each with a different
// (unknown) actual selectivity — from the saved artifact, feeding the
// discovered selectivities back into a workload error log.
//
// Build & run:  ./build/examples/compile_once_run_many

#include <cstdio>
#include <sstream>

#include "bouquet/driver.h"
#include "bouquet/serialize.h"
#include "common/str_util.h"
#include "ess/posp_generator.h"
#include "query/error_log.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

int main() {
  using namespace bouquet;

  // --- Offline: generate data, compile the bouquet, persist it. ---------
  Database db;
  MakeTpchDatabase(&db);
  Catalog catalog;
  SyncTpchCatalog(db, &catalog);
  QuerySpec query = Make2DHQ8a(catalog);  // constants bound per invocation

  QueryOptimizer opt(query, catalog, CostParams::Postgres());
  const EssGrid grid(query, {20, 20});
  const PlanDiagram diagram =
      GeneratePosp(query, catalog, CostParams::Postgres(), grid);
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);

  std::stringstream storage;  // stand-in for a catalog table / file
  if (!SaveBouquet(diagram, bouquet, storage).ok()) {
    std::printf("save failed\n");
    return 1;
  }
  std::printf("Compiled once: %d bouquet plans, %zu contours, %zu bytes "
              "persisted\n\n",
              bouquet.cardinality(), bouquet.contours.size(),
              storage.str().size());

  // --- Online: reload and serve invocations with varying q_a. -----------
  auto loaded = LoadBouquet(query, storage);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }

  SelectivityErrorLog log;
  const double locations[][2] = {
      {0.02, 0.08}, {0.45, 0.3}, {0.003, 0.9}, {0.7, 0.7}};
  std::printf("%-22s %-8s %-10s %-12s %s\n", "q_a (actual)", "execs",
              "rows", "cost units", "discovered q_run");
  for (const auto& loc : locations) {
    QuerySpec bound = query;
    const auto qa = BindSelectionConstants(&bound, catalog,
                                           {loc[0], loc[1]});
    QueryOptimizer run_opt(bound, catalog, CostParams::Postgres());
    BouquetDriver driver(*loaded->bouquet, *loaded->diagram, &run_opt, &db);
    const DriverResult res = driver.RunOptimized();
    std::string discovered = "-";
    if (!res.discovered_selectivities.empty()) {
      discovered = StrPrintf("(%s, %s)",
                             FormatPct(res.discovered_selectivities[0]).c_str(),
                             FormatPct(res.discovered_selectivities[1]).c_str());
      // Feed the workload history: the optimizer's default estimate vs the
      // discovered truth, per predicate.
      for (size_t d = 0; d < bound.error_dims.size(); ++d) {
        const auto& f = bound.filters[bound.error_dims[d].predicate_index];
        log.Record(SelectivityErrorLog::FilterKey(f), 1.0 / 3.0,
                   res.discovered_selectivities[d]);
      }
    }
    std::printf("(%5.1f%%, %5.1f%%)       %-8d %-10zu %-12s %s\n",
                qa[0] * 100, qa[1] * 100, res.num_executions,
                res.rows.size(), FormatSci(res.total_cost_units).c_str(),
                discovered.c_str());
  }

  std::printf("\nWorkload history now covers %zu predicates; error-prone "
              "at factor >= 3:\n",
              log.num_keys());
  for (const auto& key : log.ErrorProneKeys(3.0)) {
    std::printf("  %s (max error factor %.1fx over %lld runs)\n", key.c_str(),
                log.Stats(key).max_error_factor,
                log.Stats(key).observations);
  }
  return 0;
}

// End-to-end robust execution on real (generated) TPC-H data.
//
// Demonstrates the full run-time side of the bouquet: a query whose two
// selection selectivities are unknown at compile time is executed through
// cost-limited partial executions — first with the basic algorithm, then
// with the optimized one (spill-mode learning + early contour jumps) — and
// compared against the native optimizer acting on a badly wrong estimate.
//
// Build & run:  ./build/examples/tpch_robust_execution [actual_sel1 actual_sel2]

#include <cstdio>
#include <cstdlib>

#include "bouquet/driver.h"
#include "common/str_util.h"
#include "ess/posp_generator.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

int main(int argc, char** argv) {
  using namespace bouquet;

  double sel1 = 0.337, sel2 = 0.456;  // the paper's 2D_H_Q8a location
  if (argc == 3) {
    sel1 = std::atof(argv[1]);
    sel2 = std::atof(argv[2]);
  }

  // 1. Generate a scaled-down TPC-H database and compute exact statistics.
  Database db;
  TpchDataOptions data_opts;
  data_opts.mini_scale = 1.0;  // lineitem = 60k rows
  MakeTpchDatabase(&db, data_opts);
  Catalog catalog;
  SyncTpchCatalog(db, &catalog);
  std::printf("Generated TPC-H mini database: lineitem=%lld orders=%lld "
              "part=%lld\n",
              static_cast<long long>(db.table("lineitem").num_rows()),
              static_cast<long long>(db.table("orders").num_rows()),
              static_cast<long long>(db.table("part").num_rows()));

  // 2. The query: part x lineitem x orders with error-prone selections on
  //    p_retailprice and o_totalprice. Constants are bound so the *actual*
  //    selectivities equal the requested location (the optimizer does not
  //    get to see this).
  QuerySpec query = Make2DHQ8a(catalog);
  const auto qa = BindSelectionConstants(&query, catalog, {sel1, sel2});
  std::printf("Actual location q_a = (%s, %s)\n\n", FormatPct(qa[0]).c_str(),
              FormatPct(qa[1]).c_str());

  // 3. Compile-time phase: POSP over the 2D ESS, contours, bouquet.
  QueryOptimizer opt(query, catalog, CostParams::Postgres());
  const EssGrid grid(query, {24, 24});
  const PlanDiagram diagram =
      GeneratePosp(query, catalog, CostParams::Postgres(), grid);
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);
  std::printf("Bouquet: %d plans across %zu contours (rho=%d, budgets %s "
              ".. %s)\n\n",
              bouquet.cardinality(), bouquet.contours.size(), bouquet.rho(),
              FormatSci(bouquet.contours.front().budget).c_str(),
              FormatSci(bouquet.contours.back().budget).c_str());

  BouquetDriver driver(bouquet, diagram, &opt, &db);

  // 4. Run both bouquet variants.
  const DriverResult basic = driver.RunBasic();
  std::printf("Basic BOU:     %2d executions, %zu rows, %s cost units, "
              "%.3f s\n",
              basic.num_executions, basic.rows.size(),
              FormatSci(basic.total_cost_units).c_str(), basic.wall_seconds);
  const DriverResult optimized = driver.RunOptimized();
  std::printf("Optimized BOU: %2d executions, %zu rows, %s cost units, "
              "%.3f s\n",
              optimized.num_executions, optimized.rows.size(),
              FormatSci(optimized.total_cost_units).c_str(),
              optimized.wall_seconds);

  // 5. Compare with NAT (magic-number estimate) and the oracle.
  const Plan nat_plan = opt.OptimizeDefault();
  const DriverResult nat = driver.RunSinglePlan(*nat_plan.root);
  const Plan oracle_plan = opt.OptimizeAt(qa);
  const DriverResult oracle = driver.RunSinglePlan(*oracle_plan.root);
  std::printf("NAT (default): %2d execution,  %zu rows, %s cost units\n", 1,
              nat.rows.size(), FormatSci(nat.total_cost_units).c_str());
  std::printf("Oracle:        %2d execution,  %zu rows, %s cost units\n\n", 1,
              oracle.rows.size(), FormatSci(oracle.total_cost_units).c_str());

  std::printf("Sub-optimality vs oracle: NAT %.2f | basic BOU %.2f | "
              "optimized BOU %.2f\n",
              nat.total_cost_units / oracle.total_cost_units,
              basic.total_cost_units / oracle.total_cost_units,
              optimized.total_cost_units / oracle.total_cost_units);

  if (basic.rows.size() != oracle.rows.size() ||
      optimized.rows.size() != oracle.rows.size()) {
    std::printf("ERROR: result cardinalities disagree!\n");
    return 1;
  }
  std::printf("All strategies returned identical result cardinalities.\n");
  return 0;
}

// Using the library on a user-defined schema and query.
//
// Shows the minimal steps to bring your own workload: define catalog
// metadata, describe the query's join graph and predicates, declare which
// selectivities are error-prone, and ask for a bouquet with a guaranteed
// worst-case multiplier.
//
// The scenario: a web-analytics star schema where the events-fact-to-user
// join selectivity and a session-length filter are unpredictable.

#include <cstdio>

#include "bouquet/bounds.h"
#include "bouquet/bouquet.h"
#include "bouquet/simulator.h"
#include "common/str_util.h"
#include "ess/posp_generator.h"
#include "robustness/native.h"

int main() {
  using namespace bouquet;

  // 1. Catalog: a fact table and two dimensions, all columns indexed.
  Catalog catalog;
  catalog.AddTable(Catalog::MakeTable(
      "events", /*rows=*/20'000'000, /*width_bytes=*/96,
      {"ev_user_id", "ev_page_id", "ev_duration"}, /*ndv=*/500'000));
  catalog.AddTable(Catalog::MakeTable("users", 500'000, 128,
                                      {"u_user_id", "u_country"}, 500'000));
  catalog.AddTable(Catalog::MakeTable("pages", 50'000, 160,
                                      {"pg_page_id", "pg_section"}, 50'000));

  // 2. The query: events joined to both dimensions, with a duration filter.
  QuerySpec q;
  q.name = "analytics_q1";
  q.tables = {"events", "users", "pages"};
  q.joins = {
      {"events", "ev_user_id", "users", "u_user_id", /*default_sel=*/-1.0},
      {"events", "ev_page_id", "pages", "pg_page_id", -1.0},
  };
  q.filters = {{"events", "ev_duration", CompareOp::kGreater,
                SelectionPredicate::kNoConstant, -1.0}};

  // 3. Error dimensions: the user-join selectivity (bot traffic skews it by
  //    orders of magnitude) and the duration filter.
  ErrorDimension user_join;
  user_join.kind = DimKind::kJoin;
  user_join.predicate_index = 0;
  user_join.hi = 1.0 / 500'000;  // PK-FK cap
  user_join.lo = user_join.hi * 1e-3;
  user_join.label = "events-users";
  ErrorDimension duration;
  duration.kind = DimKind::kSelection;
  duration.predicate_index = 0;
  duration.lo = 1e-4;
  duration.hi = 1.0;
  duration.label = "ev_duration";
  q.error_dims = {user_join, duration};

  const Status valid = q.Validate(catalog);
  if (!valid.ok()) {
    std::printf("invalid workload: %s\n", valid.ToString().c_str());
    return 1;
  }

  // 4. Compile-time phase.
  const EssGrid grid(q, {32, 32});
  QueryOptimizer opt(q, catalog, CostParams::Postgres());
  const PlanDiagram diagram =
      GeneratePosp(q, catalog, CostParams::Postgres(), grid);
  BouquetParams params;  // r = 2, lambda = 0.2
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt, params);

  std::printf("POSP plans: %d  ->  bouquet: %d plans on %zu contours "
              "(rho=%d)\n",
              diagram.num_plans(), bouquet.cardinality(),
              bouquet.contours.size(), bouquet.rho());
  std::printf("Guaranteed MSO: %.1f  (Equation-8 refinement: %.1f)\n\n",
              MultiDMsoBound(params.ratio, bouquet.rho(), params.lambda),
              EquationEightBound(bouquet));

  // 5. How bad could the classical optimizer get, and what does the bouquet
  //    deliver instead?
  const RobustnessProfile nat = ComputeNativeProfile(diagram, &opt);
  BouquetSimulator sim(bouquet, diagram, &opt);
  const BouquetProfile bou = ComputeBouquetProfile(sim, /*optimized=*/true);
  std::printf("Native optimizer: MSO = %.0f, ASO = %.2f\n", nat.mso, nat.aso);
  std::printf("Plan bouquet:     MSO = %.2f, ASO = %.2f  (avg %.1f partial "
              "executions per query)\n",
              bou.mso, bou.aso, bou.avg_executions);

  // 6. Inspect one discovery run at a nasty location: high duration
  //    selectivity, moderate join selectivity.
  GridPoint pt = {grid.AxisFloor(0, user_join.hi * 0.05),
                  grid.AxisFloor(1, 0.7)};
  const uint64_t qa = grid.LinearIndex(pt);
  const SimResult run = sim.RunOptimized(qa);
  std::printf("\nDiscovery trace at q_a=(%s of PK cap, %s duration):\n",
              FormatPct(grid.SelectivityAt(qa)[0] / user_join.hi).c_str(),
              FormatPct(grid.SelectivityAt(qa)[1]).c_str());
  for (const auto& step : run.steps) {
    std::printf("  contour %d: plan %d, budget %-10s charged %-10s%s%s\n",
                step.contour + 1, step.plan_id,
                FormatSci(step.budget).c_str(),
                FormatSci(step.charged).c_str(),
                step.learned_dim >= 0
                    ? StrPrintf(" [learning dim %d]", step.learned_dim).c_str()
                    : "",
                step.completed ? "  -> completed" : "");
  }
  std::printf("Sub-optimality: %.2f (bound %.1f)\n", sim.SubOpt(run, qa),
              MultiDMsoBound(params.ratio, bouquet.rho(), params.lambda));
  return 0;
}

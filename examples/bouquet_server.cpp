// The bouquet server: the Section 4.2 deployment model behind a socket.
// Form-based query templates are registered up front; clients connect over
// the length-prefixed binary wire protocol (src/net/wire.h) and send QUERY
// frames carrying only per-invocation constants. The serving path is the
// full src/net/ stack: epoll reactors, same-template request batching,
// per-tenant admission control, and MSO-safe load shedding (overflow
// requests are answered DEGRADED by the template's precompiled safe plan
// instead of being dropped).
//
// Observability is live, not dump-on-exit: METRICS frames return the
// Prometheus text exposition and TRACE_DUMP frames return the tracer's
// JSONL at any moment during serving; a graceful shutdown (SHUTDOWN frame,
// SIGINT, or SIGTERM) drains in-flight work and writes the final trace to
// --trace PATH.
//
// Modes:
//   bouquet_server --serve [--port N] [--trace PATH]
//       Serve until SIGINT/SIGTERM or a SHUTDOWN frame.
//   bouquet_server --loopback [--requests N] [--trace PATH]
//       In-process demo: starts the server on an ephemeral port, runs a
//       bursty single-template + multi-tenant + overload workload against
//       it over real sockets, prints wire-fetched metrics, then shuts down
//       over the wire. (Default mode when no flag is given.)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  using namespace bouquet;
  using namespace bouquet::net;

  bool serve = false;
  uint16_t port = 0;
  int requests = 256;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve") {
      serve = true;
    } else if (arg == "--loopback") {
      serve = false;
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--requests" && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::printf(
          "usage: %s [--serve|--loopback] [--port N] [--requests N] "
          "[--trace PATH]\n",
          argv[0]);
      return 2;
    }
  }

  const Catalog catalog = MakeTpchCatalog(1.0);
  obs::Tracer tracer(1 << 16);
  obs::MetricsRegistry metrics;

  ServiceOptions sopts;
  sopts.num_threads = 8;
  sopts.grid_resolution = 24;
  sopts.tracer = &tracer;
  sopts.metrics = &metrics;
  BouquetService service(catalog, sopts);

  ServerOptions nopts;
  nopts.port = port;
  nopts.num_reactors = 2;
  nopts.router.batch_window_ms = 2.0;
  nopts.router.max_batch = 32;
  nopts.router.max_queue_depth = 256;
  nopts.router.max_inflight_batches = 8;
  nopts.trace_path = trace_path;
  nopts.tracer = &tracer;
  nopts.metrics = &metrics;
  BouquetServer server(&service, nopts);

  // Three "forms": same join graph, different error spaces.
  std::vector<QuerySpec> templates;
  templates.push_back(MakeEqQuery(catalog));
  templates.push_back(Make2DHQ8a(catalog));
  {
    QuerySpec narrow = MakeEqQuery(catalog);
    narrow.name = "EQ-narrow";
    narrow.error_dims[0].lo = 1e-3;
    templates.push_back(narrow);
  }
  for (const QuerySpec& t : templates) {
    const Status st = server.RegisterTemplate(t);
    if (!st.ok()) {
      std::printf("register failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  const Status started = server.Start();
  if (!started.ok()) {
    std::printf("start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("bouquet_server: %zu templates on 127.0.0.1:%u (%s mode)\n",
              templates.size(), server.port(),
              serve ? "serve" : "loopback");

  if (serve) {
    // Serve until a signal or a wire-level SHUTDOWN. The handler only sets
    // a flag; a watcher thread translates it into the graceful drain.
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    std::thread watcher([&server] {
      while (g_signal == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      server.RequestShutdown();
    });
    server.Wait();  // SHUTDOWN frames also land here
    g_signal = g_signal == 0 ? SIGTERM : g_signal;
    watcher.join();
    std::printf("drained; final metrics:\n%s",
                metrics.ExportPrometheus().c_str());
    return 0;
  }

  // ---- Loopback demo -----------------------------------------------------
  auto client_or = BlockingClient::Connect(server.port());
  if (!client_or.ok()) {
    std::printf("connect failed: %s\n",
                client_or.status().ToString().c_str());
    return 1;
  }
  BlockingClient client = std::move(client_or).value();
  if (!client.Hello().ok()) {
    std::printf("handshake failed\n");
    return 1;
  }

  // Phase 1 — bursty single-template traffic: pipeline everything, so the
  // router coalesces same-template requests and exactly one compile runs.
  uint64_t next_id = 1;
  const std::string hot = templates[0].name;
  for (int i = 0; i < requests; ++i) {
    QueryMsg q;
    q.request_id = next_id++;
    q.tenant_id = static_cast<uint32_t>(i % 4);  // multi-tenant WFQ
    q.template_name = hot;
    q.selectivities = {0.002 + 0.9 * ((i * 13) % 89) / 88.0};
    if (!client.SendFrame(EncodeQuery(q)).ok()) return 1;
  }
  int completed = 0, degraded = 0, errors = 0;
  for (int i = 0; i < requests; ++i) {
    auto frame_or = client.RecvFrame();
    if (!frame_or.ok()) {
      std::printf("recv failed: %s\n",
                  frame_or.status().ToString().c_str());
      return 1;
    }
    if (static_cast<FrameType>(frame_or.value().type) == FrameType::kError) {
      ++errors;
      continue;
    }
    ResultMsg r;
    if (!DecodeResult(frame_or.value(), &r).ok()) return 1;
    if ((r.flags & kResultCompleted) != 0) ++completed;
    if ((r.flags & kResultDegraded) != 0) ++degraded;
  }
  const ServiceStats after_burst = service.stats();
  std::printf(
      "burst: %d requests -> %d completed (%d degraded, %d errors), "
      "%llu compilations, %llu batches (mean %.1f req/batch)\n",
      requests, completed, degraded, errors,
      static_cast<unsigned long long>(after_burst.compilations),
      static_cast<unsigned long long>(after_burst.batches),
      after_burst.batches == 0
          ? 0.0
          : static_cast<double>(after_burst.batch_requests) /
                after_burst.batches);

  // Phase 2 — the other templates, interleaved across tenants.
  for (int i = 0; i < 24; ++i) {
    QueryMsg q;
    q.request_id = next_id++;
    q.tenant_id = static_cast<uint32_t>(i % 3);
    const QuerySpec& t = templates[1 + i % 2];
    q.template_name = t.name;
    q.selectivities.assign(t.NumDims(), 0.05 + 0.01 * (i % 7));
    auto out = client.Query(q);
    if (!out.ok() || !out->ok) {
      std::printf("mixed-phase query %d failed\n", i);
      return 1;
    }
  }

  // Phase 3 — live observability over the wire, mid-serving.
  auto metrics_or = client.MetricsText();
  if (!metrics_or.ok()) return 1;
  std::printf("\n--- /metrics over the wire (excerpt) ---\n");
  const std::string& text = metrics_or.value();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (line.rfind("net_", 0) == 0 || line.rfind("service_", 0) == 0) {
      std::printf("%s\n", line.c_str());
    }
    pos = eol + 1;
  }
  auto trace_or = client.TraceJsonl();
  if (!trace_or.ok()) return 1;
  std::printf("--- trace over the wire: %zu bytes of JSONL ---\n",
              trace_or.value().size());

  // Phase 4 — graceful wire-initiated shutdown (drains, exports --trace).
  if (!client.ShutdownServer().ok()) {
    std::printf("shutdown handshake failed\n");
    return 1;
  }
  server.Wait();
  if (!trace_path.empty()) {
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  return completed == 0 ? 1 : 0;
}

// A miniature bouquet "server": the Section 4.2 deployment model at serving
// scale. Form-based query templates arrive concurrently with varying
// bindings; the BouquetService compiles each template once (single-flight,
// POSP sharded across the pool), caches the compiled bundle, and serves
// every later invocation from the cache. A warm-start round-trip shows how
// a restarted server skips cold compilation entirely.
//
// The run is fully observable: every request becomes a span tree in an
// obs::Tracer (exported as JSONL when a path is given) and the service
// feeds an obs::MetricsRegistry whose Prometheus-text dump — the /metrics
// endpoint of a real server — is printed before exit.
//
// Build & run:  ./build/examples/bouquet_server [trace.jsonl]

#include <algorithm>
#include <cstdio>
#include <future>
#include <vector>

#include "bouquet/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "service/template_key.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

int main(int argc, char** argv) {
  using namespace bouquet;

  const Catalog catalog = MakeTpchCatalog(1.0);
  obs::Tracer tracer(1 << 15);
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.num_threads = 8;
  opts.grid_resolution = 24;
  opts.tracer = &tracer;
  opts.metrics = &metrics;

  // Three "forms": same join graph, different error spaces.
  std::vector<QuerySpec> templates;
  templates.push_back(MakeEqQuery(catalog));
  templates.push_back(Make2DHQ8a(catalog));
  {
    QuerySpec narrow = MakeEqQuery(catalog);
    narrow.name = "EQ-narrow";
    narrow.error_dims[0].lo = 1e-3;
    templates.push_back(narrow);
  }

  BouquetService service(catalog, opts);
  std::printf("bouquet_server: %d templates, %d worker threads\n\n",
              static_cast<int>(templates.size()), opts.num_threads);

  // --- Serve a concurrent mixed workload. -------------------------------
  const int kRequests = 96;
  std::vector<std::future<Result<ServiceResult>>> inflight;
  inflight.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ServiceRequest req;
    req.query = templates[i % templates.size()];
    const int dims = req.query.NumDims();
    req.actual_selectivities.assign(dims, 0.0);
    for (int d = 0; d < dims; ++d) {
      req.actual_selectivities[d] =
          0.002 + 0.9 * ((i * 13 + d * 7) % 89) / 88.0;
    }
    inflight.push_back(service.Submit(std::move(req)));
  }

  int completed = 0, hits = 0, shared = 0;
  double worst_latency = 0.0;
  for (auto& f : inflight) {
    auto res = f.get();
    if (!res.ok()) {
      std::printf("request failed: %s\n", res.status().ToString().c_str());
      return 1;
    }
    completed += res->sim.completed ? 1 : 0;
    hits += res->cache_hit ? 1 : 0;
    shared += res->shared_compile ? 1 : 0;
    worst_latency = std::max(worst_latency, res->latency_seconds);
  }

  const ServiceStats s = service.stats();
  std::printf("served %d/%d requests\n", completed, kRequests);
  std::printf("  compilations:  %llu (one per template — single-flight)\n",
              static_cast<unsigned long long>(s.compilations));
  // hits vs shared-compile waits depends on thread interleaving; their sum
  // (requests that did not pay a fresh compile) is deterministic.
  std::printf("  warm requests: %d/%d (cache hits + single-flight waits)\n",
              hits + shared, kRequests);
  std::printf("  compile time:  %.2fs total; execute time: %.4fs total\n",
              s.compile_seconds, s.execute_seconds);
  std::printf("  mean latency:  %.2fms, worst %.2fms (worst = cold "
              "compile)\n\n",
              1000.0 * s.latency_seconds / s.requests,
              1000.0 * worst_latency);

  // --- Warm restart: persist one template, reload into a new service. ---
  const QuerySpec& hot = templates[0];
  auto bundle = service.GetOrCompile(hot);
  if (!bundle.ok()) return 1;
  const char* path = "/tmp/bouquet_server_warm.bouquet";
  if (!SaveBouquetToFile(*(*bundle)->diagram, *(*bundle)->bouquet, path)
           .ok()) {
    std::printf("persist failed\n");
    return 1;
  }

  BouquetService restarted(catalog, opts);
  if (!restarted.WarmStart(hot, path).ok()) {
    std::printf("warm start failed\n");
    return 1;
  }
  ServiceRequest req;
  req.query = hot;
  req.actual_selectivities = {0.25};
  auto res = restarted.Run(req);
  if (!res.ok()) return 1;
  std::printf("after restart + warm start: cache_hit=%d, compilations=%llu, "
              "latency %.2fms\n",
              res->cache_hit ? 1 : 0,
              static_cast<unsigned long long>(
                  restarted.stats().compilations),
              1000.0 * res->latency_seconds);
  std::remove(path);

  // --- Observability dump: the /metrics endpoint + the JSONL trace. -----
  std::printf("\n--- metrics (Prometheus text format) ---\n%s",
              metrics.ExportPrometheus().c_str());
  std::printf("--- trace: %zu spans buffered, %llu dropped ---\n",
              tracer.Snapshot().size(),
              static_cast<unsigned long long>(tracer.dropped()));
  if (argc > 1) {
    const Status st = tracer.ExportJsonlFile(argv[1]);
    if (!st.ok()) {
      std::printf("trace export failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("trace written to %s\n", argv[1]);
  }
  return 0;
}
